module critter

go 1.24
