#!/usr/bin/env bash
# Load-generation smoke for the service core, run by CI:
#
#   1. build critter-serve and critter-load,
#   2. boot a coordinator (2 runners, small queue so the 429 backpressure
#      path is reachable) plus one joined worker process,
#   3. drive it with 8 concurrent clients and a 50% duplicate mix — the
#      duplicates exercise dedup/memoization, the rest genuinely execute,
#   4. gate the resulting submit/e2e latency percentiles and throughput
#      against the committed BENCH_service.json with cmd/benchdiff.
#
# The gates are deliberately generous (shared CI runners are noisy and
# the workload saturates the machine by design); they exist to catch
# order-of-magnitude service regressions, not percent-level drift.
#
# Usage: scripts/service-load.sh  (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
server_pid=""
worker_pid=""
cleanup() {
  for pid in "$worker_pid" "$server_pid"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "=== build"
go build -o "$workdir/critter-serve" ./cmd/critter-serve
go build -o "$workdir/critter-load" ./cmd/critter-load

echo "=== boot coordinator"
"$workdir/critter-serve" -addr 127.0.0.1:0 -runners 2 -queue 8 >"$workdir/serve.log" 2>&1 &
server_pid=$!
base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's/^critter-serve: listening on \(http:\/\/.*\)$/\1/p' "$workdir/serve.log" | head -n 1)
  [[ -n "$base" ]] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$base" ]] || { echo "server never announced its address:"; cat "$workdir/serve.log"; exit 1; }
echo "coordinator at $base"

echo "=== join one worker"
"$workdir/critter-serve" -mode=worker -join "$base" -name ci-worker >"$workdir/worker.log" 2>&1 &
worker_pid=$!

echo "=== drive load (8 clients, 16 jobs, 50% duplicates)"
"$workdir/critter-load" -base "$base" -clients 8 -jobs 16 -dup 0.5 | tee "$workdir/service-bench.txt"

echo "=== worker roster shows the joined worker"
curl -fsS "$base/v1/workers" | tee "$workdir/workers.json" | grep -q '"ci-worker"'

echo "=== gate against BENCH_service.json"
go run ./cmd/benchdiff -baseline BENCH_service.json "$workdir/service-bench.txt"

echo "=== shut down"
kill -TERM "$worker_pid" 2>/dev/null || true
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server ignored SIGTERM"; exit 1
fi
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "service load test passed"
