#!/usr/bin/env bash
# Strategy-shootout smoke, run by CI:
#
#   1. run cmd/critter-shootout over the four golden-backed workloads at
#      quick scale (seed 42, noise 0.05, online policy, eps 0.125 — the
#      golden-grid configuration),
#   2. cross-check the exhaustive reference sweeps byte-for-byte against
#      the committed golden envelopes (-golden-dir), tying the scoreboard's
#      ground truth to the repo's determinism anchor,
#   3. require the surrogate strategy to land within epsilon (5%) of the
#      true optimum on at least 2 workloads while executing at most half of
#      the exhaustive sweep's kernels (-require 2),
#   4. gate every scoreboard number exactly (ratio 1.0) against the
#      committed BENCH_shootout.json with cmd/benchdiff — the shootout is
#      fully deterministic, so any drift is a real behavior change and must
#      ship with a regenerated baseline:
#
#        go run ./cmd/critter-shootout -scale quick \
#          -markdown BENCH_shootout.md -baseline-out BENCH_shootout.json
#
# Usage: scripts/shootout-smoke.sh  (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "=== build"
go build -o "$workdir/critter-shootout" ./cmd/critter-shootout

echo "=== shootout (quick scale, golden cross-check, surrogate acceptance)"
"$workdir/critter-shootout" -scale quick \
  -golden-dir internal/autotune/testdata \
  -require 2 -require-frac 0.5 \
  | tee "$workdir/shootout-bench.txt"

echo "=== gate against BENCH_shootout.json"
go run ./cmd/benchdiff -baseline BENCH_shootout.json "$workdir/shootout-bench.txt"

echo "shootout smoke passed"
