#!/usr/bin/env bash
# End-to-end smoke test of the critter-serve HTTP service, run by CI:
#
#   1. build and boot critter-serve (durable store on) on a kernel-chosen
#      port,
#   2. submit a quick-scale candmc job matching the golden-envelope
#      parameters (seed 42, noise 0.05, eps 0.5+0.125, exhaustive,
#      default policies, cold),
#   3. follow the SSE event stream until the terminal `event: done`,
#   4. fetch the result envelope and diff its grid byte-for-byte against
#      the committed golden grid with cmd/envelopediff,
#   5. check the accumulated profile endpoint serves a decodable profile,
#   6. resubmit the identical body and require a memoized (dedupOf) answer,
#      then assert the observability surface: the job's span trace,
#      /v1/metrics (JSON) naming the counter families, and /metrics
#      (Prometheus text) reporting jobs_completed_total >= 1,
#      memo_hits_total >= 1, and kernels_memoized_total >= 1 (the
#      sweep-scoped kernel memo fired during the job),
#   7. shut the server down gracefully (SIGTERM) and require a clean exit,
#   8. RESTART against the same store directory and require the finished
#      job, its envelope (golden-diffed again), and the persisted profile
#      (persistedAt set) to have survived,
#   9. shut the restarted server down gracefully too.
#
# Usage: scripts/service-smoke.sh  (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

# boot_server LOGFILE [extra args...]: start critter-serve and scrape the
# announced base URL into $base.
boot_server() {
  local logfile=$1; shift
  "$workdir/critter-serve" -addr 127.0.0.1:0 -store "$workdir/store" "$@" >"$logfile" 2>&1 &
  server_pid=$!
  base=""
  for _ in $(seq 1 100); do
    base=$(sed -n 's/^critter-serve: listening on \(http:\/\/.*\)$/\1/p' "$logfile" | head -n 1)
    [[ -n "$base" ]] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$logfile"; exit 1; }
    sleep 0.1
  done
  [[ -n "$base" ]] || { echo "server never announced its address:"; cat "$logfile"; exit 1; }
  echo "server at $base"
}

# stop_server LOGFILE: SIGTERM the server and require a clean, logged exit.
stop_server() {
  local logfile=$1
  kill -TERM "$server_pid"
  for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$server_pid" 2>/dev/null; then
    echo "server ignored SIGTERM"; exit 1
  fi
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
  grep -q 'shutting down' "$logfile"
}

echo "=== build"
go build -o "$workdir/critter-serve" ./cmd/critter-serve

echo "=== boot (durable store at $workdir/store)"
boot_server "$workdir/serve.log"

echo "=== catalog"
curl -fsS "$base/v1/workloads" | tee "$workdir/workloads.json" | grep -q '"candmc"'

echo "=== submit (quick-scale candmc, golden parameters)"
curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' -d '{
  "workload": "candmc", "scale": "quick",
  "eps": [0.5, 0.125], "seed": 42, "noiseSigma": 0.05,
  "strategy": "exhaustive", "warmStart": false
}' | tee "$workdir/submit.json"
echo
job=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$workdir/submit.json" | head -n 1)
[[ -n "$job" ]] || { echo "no job id in submit response"; exit 1; }
echo "submitted $job"

echo "=== follow SSE to completion"
# The stream ends by itself after the terminal event; --max-time bounds a
# hang, and the last event must be `done` (not failed/canceled).
curl -fsSN --max-time 600 "$base/v1/jobs/$job/events" | tee "$workdir/events.sse"
grep -q '^event: sweep$' "$workdir/events.sse"
last_event=$(grep '^event: ' "$workdir/events.sse" | tail -n 1)
[[ "$last_event" == "event: done" ]] || { echo "stream ended with '$last_event', want 'event: done'"; exit 1; }

echo "=== diff the served envelope against the committed golden grid"
curl -fsS "$base/v1/jobs/$job/result" >"$workdir/result.json"
go run ./cmd/envelopediff \
  -golden internal/autotune/testdata/envelope_candmc_exhaustive.golden.json \
  "$workdir/result.json"

echo "=== accumulated profile is served and non-trivial"
curl -fsS "$base/v1/profiles/candmc" >"$workdir/profile.json"
grep -q '"schemaVersion"' "$workdir/profile.json"
grep -q '"kernels"' "$workdir/profile.json"
grep -q '"persistedAt"' "$workdir/profile.json"

echo "=== resubmission of the identical body is memoized"
curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' -d '{
  "workload": "candmc", "scale": "quick",
  "eps": [0.5, 0.125], "seed": 42, "noiseSigma": 0.05,
  "strategy": "exhaustive", "warmStart": false
}' | tee "$workdir/submit2.json" | grep -q "\"dedupOf\": *\"$job\""
echo

echo "=== span trace of the finished job"
curl -fsS "$base/v1/jobs/$job/trace" >"$workdir/trace.json"
grep -q '"traceSchemaVersion"' "$workdir/trace.json"
grep -q '"kind": *"sweep"' "$workdir/trace.json"
grep -q '"kind": *"round"' "$workdir/trace.json"

echo "=== metrics: JSON snapshot names the counter families"
curl -fsS "$base/v1/metrics" >"$workdir/metrics.json"
for fam in jobs_completed_total memo_hits_total memo_entry_hits kernels_executed_total kernels_memoized_total; do
  grep -q "\"$fam\"" "$workdir/metrics.json" || { echo "/v1/metrics is missing $fam"; exit 1; }
done

echo "=== metrics: Prometheus text reports the run"
curl -fsS "$base/metrics" >"$workdir/metrics.prom"
grep -q '^# TYPE jobs_completed_total counter$' "$workdir/metrics.prom"
completed=$(awk '$1 == "jobs_completed_total" {print $2}' "$workdir/metrics.prom")
[[ -n "$completed" && "$completed" -ge 1 ]] || { echo "jobs_completed_total = '$completed', want >= 1"; exit 1; }
memo_hits=$(awk '$1 == "memo_hits_total" {print $2}' "$workdir/metrics.prom")
[[ -n "$memo_hits" && "$memo_hits" -ge 1 ]] || { echo "memo_hits_total = '$memo_hits', want >= 1"; exit 1; }
executed=$(awk -F' ' '/^kernels_executed_total{workload="candmc"}/ {print $2}' "$workdir/metrics.prom")
[[ -n "$executed" && "$executed" -ge 1 ]] || { echo "kernels_executed_total = '$executed', want >= 1"; exit 1; }
# The sweep-scoped kernel memo must have answered skip decisions during the
# job's warm (post-first-sweep) grid cells.
memoized=$(awk -F' ' '/^kernels_memoized_total{workload="candmc"}/ {print $2}' "$workdir/metrics.prom")
[[ -n "$memoized" && "$memoized" -ge 1 ]] || { echo "kernels_memoized_total = '$memoized', want >= 1"; exit 1; }

echo "=== graceful shutdown"
stop_server "$workdir/serve.log"

echo "=== restart against the same store"
boot_server "$workdir/serve2.log"
grep -q 'durable store at' "$workdir/serve2.log"

echo "=== finished job survived the restart"
curl -fsS "$base/v1/jobs/$job" | tee "$workdir/replayed.json" | grep -q '"state": *"done"'

echo "=== replayed envelope still matches the golden grid byte-for-byte"
curl -fsS "$base/v1/jobs/$job/result" >"$workdir/result2.json"
go run ./cmd/envelopediff \
  -golden internal/autotune/testdata/envelope_candmc_exhaustive.golden.json \
  "$workdir/result2.json"

echo "=== persisted profile survived the restart"
curl -fsS "$base/v1/profiles/candmc" >"$workdir/profile2.json"
grep -q '"kernels"' "$workdir/profile2.json"
grep -q '"persistedAt"' "$workdir/profile2.json"

echo "=== graceful shutdown (restarted server)"
stop_server "$workdir/serve2.log"

echo "service smoke test passed"
