// Budgeted-search: tune the CANDMC QR study under the four built-in
// search strategies and compare their cost/quality trade-off.
//
//   - Exhaustive is the paper's protocol: every configuration, once, at the
//     target tolerance.
//   - RandomSample{N: 5} evaluates a third of the space, deterministically
//     sampled, for a hard evaluation budget.
//   - SuccessiveHalving starts with every configuration at a loosened
//     tolerance (cheap: loose tolerances skip most kernels) and halves the
//     survivor set and the tolerance each rung, pruning on Critter's
//     predicted times. Its extra low-fidelity evaluations pay off when
//     target-tolerance runs are expensive — tight tolerances, or studies
//     like CAPITAL whose kernel models persist across configurations —
//     while on reset-per-config studies at loose tolerances exhaustive
//     search can be cheaper.
//   - Surrogate{N: 5} spends the same budget as the random sample but
//     model-guided: after a seeded initial design it fits a quadratic
//     regression surrogate on the predicted times observed so far and
//     picks each next configuration by expected improvement. Its plan is
//     ProfileAware — the executor feeds it the live merged kernel profile
//     after every round, and the acquisition widens its exploration
//     margin when the observed kernel noise is high.
//
// Results stream in completion order through Tuner.Stream — the iterator
// the serving path consumes — and the whole comparison runs under one
// cancellable context.
//
// Run with: go run ./examples/budgeted-search
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"critter"
)

func main() {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	study := critter.CandmcQR(critter.QuickScale())
	fmt.Printf("study %s: space of %d configurations", study.Name, study.Size())
	for _, d := range study.Space.Dims {
		fmt.Printf("  [%s: %d points]", d.Name, d.Size())
	}
	fmt.Println()

	for _, strategy := range []critter.Strategy{
		critter.Exhaustive{},
		critter.RandomSample{N: 5, Seed: 7},
		critter.SuccessiveHalving{},
		critter.Surrogate{N: 5, Seed: 7},
	} {
		tn := critter.Tuner{
			Study:    study,
			EpsList:  []float64{1.0 / 128},
			Machine:  machine,
			Seed:     7,
			Policies: []critter.Policy{critter.Online},
			Strategy: strategy,
		}
		for sw, err := range tn.Stream(ctx) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s evaluations %2d  tuning %.5fs  selected %d (%s)  err 2^%.1f\n",
				strategy.Name(), len(sw.Configs), sw.TuneWall,
				sw.Selected, study.Label(sw.Selected), sw.MeanLogExecErr)
		}
	}
}
