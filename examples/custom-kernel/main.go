// Custom-kernel: instrument arbitrary segments of application code as
// Critter kernels — the facility the paper uses for CAPITAL's
// block-to-cyclic redistribution (Section V-D) — and watch the aggregate
// channel machinery propagate models across a 2D grid under the eager
// policy.
//
// The program is a toy iterative solver on a 4x4 grid: each iteration packs
// a halo (custom kernel), exchanges it along rows and columns, and applies
// a smoother (custom kernel). Under eager propagation, each kernel is
// switched off everywhere once one rank finds it predictable and its model
// has been propagated along a cartesian basis of channels.
//
// Run with: go run ./examples/custom-kernel
package main

import (
	"fmt"
	"log"

	"critter"
	"critter/internal/grid"
)

func main() {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.04

	world := critter.NewWorld(16, machine, 31)
	err := world.Run(func(c *critter.RawComm) {
		prof, comm := critter.NewProfiler(c, critter.Options{
			Policy: critter.Eager,
			Eps:    0.2,
		})
		g := grid.New2D(comm, 4, 4)

		const nLocal = 1024
		field := make([]float64, nLocal)
		halo := make([]float64, 64)
		norm := make([]float64, 1)
		for iter := 0; iter < 120; iter++ {
			// A user-defined kernel: signature ("halo-pack", sizes),
			// a flop estimate for the machine model, and the code.
			prof.Kernel("halo-pack", nLocal, 64, 0, 0, 2e3, func() {
				for i := range halo {
					halo[i] = field[i*(nLocal/64)]
				}
			})
			// Exchange along both grid dimensions; these bcasts carry
			// the eager policy's model aggregation across the grid's
			// cartesian channels.
			g.Row.Bcast(iter%4, halo)
			g.Col.Bcast(iter%4, halo)
			prof.Kernel("smooth", nLocal, 0, 0, 0, 3e4, func() {
				for i := 1; i < nLocal-1; i++ {
					field[i] = 0.25*field[i-1] + 0.5*field[i] + 0.25*field[i+1]
				}
			})
			g.All.Allreduce([]float64{field[0]}, norm, 0)
		}
		rep := prof.Report()
		if c.Rank() == 0 {
			fmt.Printf("iterations: 120 on a 4x4 grid\n")
			fmt.Printf("aggregate channels registered: %d (full-grid basis: %v)\n",
				prof.Aggregates(), prof.HasFullGridAggregate())
			fmt.Printf("kernels propagated across the grid: %d of %d signatures\n",
				prof.PropagatedKernels(), prof.KernelCount())
			fmt.Printf("executed %d, skipped %d; wall %.6fs vs predicted %.6fs\n",
				rep.Executed, rep.Skipped, rep.Wall, rep.Predicted)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
