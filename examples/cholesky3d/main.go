// Cholesky3D: factor an SPD matrix with the CAPITAL-style recursive
// communication-avoiding Cholesky on a 4x4x4 processor grid, verify the
// factorization numerically, then autotune its 15 configurations (block
// size x base-case strategy) with eager propagation — the paper's headline
// experiment (Figure 4a: up to 7.1x tuning speedup at 98% accuracy).
//
// Run with: go run ./examples/cholesky3d
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"critter"
	"critter/internal/blas"
	"critter/internal/capital"
	"critter/internal/grid"
)

func main() {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05

	// --- Part 1: one factorization with full execution, verified. ---
	cfg := capital.Config{N: 128, B: 16, BB: 2, Strategy: 2, C: 4}
	world := critter.NewWorld(64, machine, 11)
	err := world.Run(func(c *critter.RawComm) {
		prof, comm := critter.NewProfiler(c, critter.Options{Policy: critter.Conditional, Eps: 0})
		g := grid.New3D(comm, cfg.C)
		ch := capital.New(prof, g, cfg)
		ch.Run()
		l := ch.GatherFactor(ch.L)
		rep := prof.Report() // collective: every rank participates
		if c.Rank() != 0 {
			return
		}
		n := cfg.N
		a := capital.DenseA(n)
		llt := make([]float64, n*n)
		blas.Dgemm(false, true, n, n, n, 1, l, n, l, n, 0, llt, n)
		num, den := 0.0, 0.0
		for i := range llt {
			d := llt[i] - a[i]
			num += d * d
			den += a[i] * a[i]
		}
		fmt.Printf("factorized %dx%d on a %d^3 grid: ||A-LL^T||/||A|| = %.2e\n",
			n, n, cfg.C, math.Sqrt(num/den))
		fmt.Printf("virtual execution time %.5fs; BSP costs: %.3g words, %.0f supersteps, %.3g flops\n",
			rep.Wall, rep.BSPCommCrit, rep.BSPSyncCrit, rep.BSPCompCrit)
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 2: autotune all 15 configurations with eager propagation,
	// through the Tuner (the exhaustive strategy is the default and
	// reproduces the paper's protocol; a context bounds the sweep). This
	// experiment is itself a registered workload — "cholesky3d" in the
	// default registry, with the conditional-vs-eager comparison as its
	// declared default policies — so it is resolved by name here, exactly
	// as critter-tune -study cholesky3d or a critter-serve job would.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	wl, ok := critter.LookupWorkload("cholesky3d")
	if !ok {
		log.Fatal("workload cholesky3d is not registered")
	}
	scale, err := critter.WorkloadScale(wl, "default")
	if err != nil {
		log.Fatal(err)
	}
	study := wl.Build(scale)
	res, err := critter.Tuner{
		Study:    study,
		EpsList:  []float64{0.125},
		Machine:  machine,
		Seed:     11,
		Policies: wl.Policies(), // conditional, eager
	}.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	cond, eager := res.Sweeps[0][0], res.Sweeps[1][0]
	fmt.Printf("\nexhaustive search over %d configurations (eps = 2^-3):\n", study.Size())
	fmt.Printf("  conditional execution: %.5fs\n", cond.TuneWall)
	fmt.Printf("  eager propagation:     %.5fs  (%.1fx faster)\n",
		eager.TuneWall, cond.TuneWall/eager.TuneWall)
	fmt.Printf("  full execution:        %.5fs  (eager is %.1fx faster)\n",
		eager.FullWall, eager.FullWall/eager.TuneWall)
	fmt.Printf("  eager prediction error: 2^%.1f; selected config %d (%s), optimal %d\n",
		eager.MeanLogExecErr, eager.Selected, study.Label(eager.Selected), eager.Optimal)
}
