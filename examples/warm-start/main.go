// Warm-start: tune the CANDMC QR study cold, export what the run learned
// as a kernel Profile, and tune again warm-started from it — the
// transfer-learning loop of the Estimator redesign.
//
// The cold run pays the paper's full price: every kernel signature must be
// executed until its own confidence interval converges (plus one full
// reference execution per configuration, in both runs). The warm run seeds
// every configuration's estimator with the prior's kernel models and fitted
// family extrapolators, so signatures the prior already predicts skip after
// a single validation execution — and, because extrapolation is enabled,
// signatures the prior never saw can be skipped through their routine
// family's fit. The executed-kernel counts make the difference concrete.
//
// The same profile also transfers across scales: the per-signature models
// stop matching when the matrix grows, but the family fits keep predicting,
// which the final cross-scale run demonstrates.
//
// Run with: go run ./examples/warm-start
package main

import (
	"context"
	"fmt"
	"log"

	"critter"
)

func main() {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05
	ctx := context.Background()

	study := critter.CandmcQR(critter.QuickScale())
	base := critter.Tuner{
		Study:       study,
		EpsList:     []float64{1.0 / 8},
		Machine:     machine,
		Seed:        11,
		Policies:    []critter.Policy{critter.Online},
		Extrapolate: true,
	}
	fmt.Printf("study %s: %d configurations, eps 2^-3, online propagation\n\n",
		study.Name, study.Size())

	// Cold: nothing known in advance.
	cold, err := base.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	coldSweep := cold.Sweeps[0][0]
	report("cold", study, coldSweep)

	// The sweep's exported profile is the transferable artifact. (On disk
	// this is critter-tune's -profile-out / -profile-in pair; here it just
	// changes hands in memory, through the same serialized form.)
	encoded, err := coldSweep.Profile.Encode()
	if err != nil {
		log.Fatal(err)
	}
	prior, err := critter.DecodeProfile(encoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported profile: %d kernel models (%d samples), %d families (%d points), %d path keys\n\n",
		len(prior.Kernels), prior.Samples(), len(prior.Families), prior.FamilyPointCount(), len(prior.PathFreqs))

	// Warm: the same study again, seeded with the prior. WarmStart
	// decorates the search strategy; Tuner.Prior is the equivalent field
	// form.
	warm := base
	warm.Strategy = critter.WarmStart(critter.Exhaustive{}, prior)
	warmRes, err := warm.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	warmSweep := warmRes.Sweeps[0][0]
	report("warm", study, warmSweep)
	fmt.Printf("\nwarm start executed %d fewer kernels (%.1f%% of cold)\n",
		coldSweep.Executed-warmSweep.Executed,
		100*float64(warmSweep.Executed)/float64(coldSweep.Executed))

	// Cross-scale transfer: grow the matrix 2x. Per-signature models no
	// longer match (different tile sizes), but the family fits still
	// predict — only the extrapolator transfers.
	scale := critter.QuickScale()
	scale.CandmcM *= 2
	scale.CandmcN *= 2
	bigStudy := critter.CandmcQR(scale)
	big := base
	big.Study = bigStudy
	bigCold, err := big.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	big.Prior = prior
	bigWarm, err := big.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-scale (%dx%d matrix): cold executed %d, warm-from-small-scale executed %d\n",
		scale.CandmcM, scale.CandmcN,
		bigCold.Sweeps[0][0].Executed, bigWarm.Sweeps[0][0].Executed)
}

func report(label string, study critter.Study, sw critter.SweepResult) {
	fmt.Printf("%-5s executed %6d  skipped %6d (%.1f%% skipped)  tuning %.5fs  selected %d (%s)\n",
		label, sw.Executed, sw.Skipped,
		100*float64(sw.Skipped)/float64(sw.Executed+sw.Skipped),
		sw.TuneWall, sw.Selected, study.Label(sw.Selected))
}
