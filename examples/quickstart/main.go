// Quickstart: profile a small iterative SPMD program with Critter and watch
// selective execution kick in.
//
// The program runs 200 iterations of a compute kernel followed by an
// allreduce on 8 simulated ranks. Under a confidence tolerance of 12.5%,
// Critter executes each kernel until its sample-mean confidence interval is
// tight enough, then replaces further invocations with the model mean: the
// virtual wall time drops far below the predicted execution time while the
// prediction stays accurate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"critter"
)

func main() {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05 // ~5% run-to-run variability per kernel

	// Reference: full execution (eps <= 0 disables skipping).
	full := run(machine, 0)
	// Approximate: skip kernels once predictable to 12.5%.
	approx := run(machine, 0.125)

	fmt.Printf("full execution:      %.6fs (every kernel executed)\n", full.Wall)
	fmt.Printf("selective execution: %.6fs wall, %.6fs predicted\n", approx.Wall, approx.Predicted)
	fmt.Printf("executed %d kernels, skipped %d\n", approx.Executed, approx.Skipped)
	fmt.Printf("prediction error vs full run: %.2f%%\n",
		100*abs(approx.Predicted-full.Wall)/full.Wall)
	fmt.Printf("profiling speedup: %.1fx\n", full.Wall/approx.Wall)
}

func run(machine critter.Machine, eps float64) critter.Report {
	world := critter.NewWorld(8, machine, 7)
	var report critter.Report
	err := world.Run(func(c *critter.RawComm) {
		prof, comm := critter.NewProfiler(c, critter.Options{
			Policy: critter.Online,
			Eps:    eps,
		})
		buf := make([]float64, 512)
		sum := make([]float64, 512)
		for iter := 0; iter < 200; iter++ {
			// A "computation kernel": name + dimensions form the
			// signature, the flop count drives the machine model, and
			// the closure does the actual work.
			prof.Kernel("stencil", 512, 0, 0, 0, 5e4, func() {
				for i := range buf {
					buf[i] = 0.5*buf[i] + 1
				}
			})
			// A communication kernel, intercepted and selectively
			// executed with agreement across all participants.
			comm.Allreduce(buf, sum, 0)
		}
		r := prof.Report()
		if c.Rank() == 0 {
			report = r
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return report
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
