// QR2D: factor a tall matrix with the CANDMC-style pipelined 2D Householder
// QR (TSQR panels + Householder reconstruction), verify the triangular
// factor through the Gram identity A^T A = R^T R, and compare the two panel
// algorithms (TSQR vs CholeskyQR2) under the profiler.
//
// Run with: go run ./examples/qr2d
package main

import (
	"fmt"
	"log"
	"math"

	"critter"
	"critter/internal/blas"
	"critter/internal/candmc"
	"critter/internal/grid"
)

func main() {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05

	for _, panel := range []candmc.PanelMethod{candmc.PanelTSQR, candmc.PanelCholQR2} {
		cfg := candmc.Config{
			M: 512, N: 128, B: 8,
			PR: 8, PC: 8,
			Panel: panel,
		}
		world := critter.NewWorld(64, machine, 23)
		err := world.Run(func(c *critter.RawComm) {
			prof, comm := critter.NewProfiler(c, critter.Options{Policy: critter.Conditional, Eps: 0})
			g := grid.New2D(comm, cfg.PR, cfg.PC)
			a := candmc.NewMatrix(g, cfg)
			a.FillGeneral(23)
			orig := a.GatherDense(0)
			candmc.QR(prof, a, cfg)
			r := a.GatherDense(0)
			rep := prof.Report() // collective: every rank participates
			if c.Rank() != 0 {
				return
			}
			m, n := cfg.M, cfg.N
			for j := 0; j < n; j++ {
				for i := j + 1; i < m; i++ {
					r[i+j*m] = 0
				}
			}
			ata := make([]float64, n*n)
			rtr := make([]float64, n*n)
			blas.Dgemm(true, false, n, n, m, 1, orig, m, orig, m, 0, ata, n)
			blas.Dgemm(true, false, n, n, m, 1, r, m, r, m, 0, rtr, n)
			num, den := 0.0, 0.0
			for i := range ata {
				d := ata[i] - rtr[i]
				num += d * d
				den += ata[i] * ata[i]
			}
			fmt.Printf("%-8s panel: %dx%d b=%d on %dx%d grid: ||A^TA-R^TR||/||A^TA|| = %.2e, exec %.5fs, %d kernel signatures\n",
				cfg.Panel, m, n, cfg.B, cfg.PR, cfg.PC,
				math.Sqrt(num/den), rep.Wall, prof.KernelCount())
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Autotune block size and grid shape (the paper's Figure 5a study).
	// The experiment is the registered "qr2d" workload (online propagation
	// as its declared default policy), resolved by name through the
	// registry like any CLI or service job. This deliberately uses the
	// legacy Experiment wrapper: pre-Tuner code keeps compiling and
	// produces bit-identical results (see the migration notes in the
	// README and examples/budgeted-search for the Tuner API).
	wl, ok := critter.LookupWorkload("qr2d")
	if !ok {
		log.Fatal("workload qr2d is not registered")
	}
	scale, err := critter.WorkloadScale(wl, "default")
	if err != nil {
		log.Fatal(err)
	}
	study := wl.Build(scale)
	res, err := critter.Experiment{
		Study:    study,
		EpsList:  []float64{0.25},
		Machine:  machine,
		Seed:     23,
		Policies: wl.Policies(), // online
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	sw := res.Sweeps[0][0]
	fmt.Printf("\ntuned %d configurations: %.4fs selective vs %.4fs full (%.2fx), err 2^%.1f\n",
		study.Size(), sw.TuneWall, sw.FullWall, sw.FullWall/sw.TuneWall, sw.MeanLogExecErr)
	fmt.Printf("best configuration: %d (%s)\n", sw.Selected, study.Label(sw.Selected))
}
