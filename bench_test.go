package critter_test

// Benchmark harness: one benchmark per figure (panel group) of the paper's
// evaluation, plus the ablation benches called out in DESIGN.md and
// microbenchmarks of the substrate. Each figure benchmark runs the full
// experiment behind the figure at QuickScale and prints the regenerated
// series on its first iteration, so `go test -bench=.` output contains the
// same rows the paper plots; cmd/figures regenerates them at DefaultScale.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/figures"
	"critter/internal/mpi"
	"critter/internal/sim"
	"critter/internal/stats"
)

func benchMachine() sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0.05
	return m
}

// benchEps is a reduced tolerance sweep (2^0 .. 2^-4) keeping benches fast.
func benchEps() []float64 { return autotune.DefaultEpsList()[:5] }

// --- Figure 3: BSP cost trade-offs and execution-time breakdowns ---

func benchFig3(b *testing.B, study autotune.Study) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f3, err := figures.RunFig3(study, benchMachine(), 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f3.Print(os.Stdout)
		}
	}
}

// BenchmarkFig3Capital regenerates Figure 3a/3e/3i (CAPITAL Cholesky).
func BenchmarkFig3Capital(b *testing.B) {
	benchFig3(b, autotune.CapitalCholesky(autotune.QuickScale()))
}

// BenchmarkFig3SlateChol regenerates Figure 3b/3f/3j (SLATE Cholesky).
func BenchmarkFig3SlateChol(b *testing.B) {
	benchFig3(b, autotune.SlateCholesky(autotune.QuickScale()))
}

// BenchmarkFig3Candmc regenerates Figure 3c/3g/3k (CANDMC QR).
func BenchmarkFig3Candmc(b *testing.B) {
	benchFig3(b, autotune.CandmcQR(autotune.QuickScale()))
}

// BenchmarkFig3SlateQR regenerates Figure 3d/3h/3l (SLATE QR).
func BenchmarkFig3SlateQR(b *testing.B) {
	benchFig3(b, autotune.SlateQR(autotune.QuickScale()))
}

// --- Figures 4 and 5: tuning time and prediction error vs tolerance ---

func benchTuning(b *testing.B, study autotune.Study) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tn, err := figures.RunTuning(study, benchMachine(), 42, benchEps())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tn.PrintAll(os.Stdout)
		}
	}
}

// BenchmarkFig4CapitalTuning regenerates Figure 4a/4e/4g (CAPITAL, all five
// policies including eager propagation).
func BenchmarkFig4CapitalTuning(b *testing.B) {
	benchTuning(b, autotune.CapitalCholesky(autotune.QuickScale()))
}

// BenchmarkFig4SlateCholTuning regenerates Figure 4b/4c/4d/4f/4h.
func BenchmarkFig4SlateCholTuning(b *testing.B) {
	benchTuning(b, autotune.SlateCholesky(autotune.QuickScale()))
}

// BenchmarkFig5CandmcTuning regenerates Figure 5a/5c/5e/5g.
func BenchmarkFig5CandmcTuning(b *testing.B) {
	benchTuning(b, autotune.CandmcQR(autotune.QuickScale()))
}

// BenchmarkFig5SlateQRTuning regenerates Figure 5b/5d/5f/5h.
func BenchmarkFig5SlateQRTuning(b *testing.B) {
	benchTuning(b, autotune.SlateQR(autotune.QuickScale()))
}

// --- Concurrent sweep executor ---

// BenchmarkParallelSweep measures the concurrent sweep executor on the full
// four-policy x five-tolerance grid of a study: workers=1 is the sequential
// path, workers=GOMAXPROCS the default pool. The results are bit-identical
// across worker counts (each sweep owns an identically-seeded world), so
// the wall-clock ratio is pure multi-core speedup.
func BenchmarkParallelSweep(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 1 && n != counts[1] {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			study := autotune.SlateCholesky(autotune.QuickScale())
			for i := 0; i < b.N; i++ {
				_, err := autotune.Experiment{
					Study:   study,
					EpsList: benchEps(),
					Machine: benchMachine(),
					Seed:    42,
					Workers: workers,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSuite measures the suite executor across all four case
// studies sharing one worker pool at a single tolerance.
func BenchmarkParallelSuite(b *testing.B) {
	mk := func(st autotune.Study) autotune.Experiment {
		return autotune.Experiment{
			Study:   st,
			EpsList: []float64{0.125},
			Machine: benchMachine(),
			Seed:    42,
		}
	}
	for i := 0; i < b.N; i++ {
		_, err := autotune.ExperimentSuite{
			Experiments: []autotune.Experiment{
				mk(autotune.CapitalCholesky(autotune.QuickScale())),
				mk(autotune.SlateCholesky(autotune.QuickScale())),
				mk(autotune.CandmcQR(autotune.QuickScale())),
				mk(autotune.SlateQR(autotune.QuickScale())),
			},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md section 4) ---

// BenchmarkAblationFreqPropagation isolates the sqrt(alpha) confidence
// credit: online propagation versus conditional execution (which never
// credits counts) on the same study; the metric of interest is executions
// saved at equal tolerance.
func BenchmarkAblationFreqPropagation(b *testing.B) {
	study := autotune.SlateCholesky(autotune.QuickScale())
	for i := 0; i < b.N; i++ {
		res, err := autotune.Experiment{
			Study:    study,
			EpsList:  []float64{0.125},
			Machine:  benchMachine(),
			Seed:     42,
			Policies: []critter.Policy{critter.Conditional, critter.Online},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cond, online := res.Sweeps[0][0], res.Sweeps[1][0]
			fmt.Printf("# ablation freq-propagation: conditional executed %d, online executed %d (%.1f%% saved), err cond 2^%.2f online 2^%.2f\n",
				cond.Executed, online.Executed,
				100*(1-float64(online.Executed)/float64(cond.Executed)),
				cond.MeanLogExecErr, online.MeanLogExecErr)
		}
	}
}

// BenchmarkAblationEager isolates cross-configuration model reuse: eager
// propagation versus conditional execution on CAPITAL (whose kernels recur
// across configurations).
func BenchmarkAblationEager(b *testing.B) {
	study := autotune.CapitalCholesky(autotune.QuickScale())
	for i := 0; i < b.N; i++ {
		res, err := autotune.Experiment{
			Study:    study,
			EpsList:  []float64{0.125},
			Machine:  benchMachine(),
			Seed:     42,
			Policies: []critter.Policy{critter.Conditional, critter.Eager},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cond, eager := res.Sweeps[0][0], res.Sweeps[1][0]
			fmt.Printf("# ablation eager: tuning time conditional %.4gs, eager %.4gs (%.2fx), err cond 2^%.2f eager 2^%.2f\n",
				cond.TuneWall, eager.TuneWall, cond.TuneWall/eager.TuneWall,
				cond.MeanLogExecErr, eager.MeanLogExecErr)
		}
	}
}

// BenchmarkAblationNoise sweeps the machine noise level: prediction error
// floors scale with environment variability (the paper's Stampede2
// discussion).
func BenchmarkAblationNoise(b *testing.B) {
	study := autotune.CapitalCholesky(autotune.QuickScale())
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{0.01, 0.05, 0.15} {
			m := sim.DefaultMachine()
			m.NoiseSigma = sigma
			res, err := autotune.Experiment{
				Study:    study,
				EpsList:  []float64{0.125},
				Machine:  m,
				Seed:     42,
				Policies: []critter.Policy{critter.Online},
			}.Run()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				sw := res.Sweeps[0][0]
				fmt.Printf("# ablation noise sigma=%.2f: mean log2 err %.2f, executed %d skipped %d\n",
					sigma, sw.MeanLogExecErr, sw.Executed, sw.Skipped)
			}
		}
	}
}

// BenchmarkAblationCollectiveModel compares tree versus flat collective
// cost models: the separation of BSP synchronization costs in Figure 3
// depends on the log-p factor.
func BenchmarkAblationCollectiveModel(b *testing.B) {
	study := autotune.CapitalCholesky(autotune.QuickScale())
	for i := 0; i < b.N; i++ {
		for _, tree := range []bool{true, false} {
			m := benchMachine()
			m.CollectiveTree = tree
			reports, err := autotune.FullOnly(study, m, 42)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("# ablation collectives tree=%v: config0 exec %.4gs, config4 exec %.4gs\n",
					tree, reports[0].Wall, reports[4].Wall)
			}
		}
	}
}

// BenchmarkAblationExtrapolation measures the line-fitting extension
// (Section VIII future work) on a CANDMC-like workload with many one-off
// kernel signatures: executions saved and prediction error added by
// extrapolating kernel models across input sizes.
func BenchmarkAblationExtrapolation(b *testing.B) {
	workload := func(p *critter.Profiler, cc *critter.Comm) {
		for _, n := range []int{8, 12, 16, 24, 32} {
			for i := 0; i < 20; i++ {
				p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
			}
		}
		for n := 9; n <= 31; n++ {
			p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
		}
	}
	run := func(extrapolate bool) (critter.Report, int64) {
		w := mpi.NewWorld(1, benchMachine(), 9)
		var rep critter.Report
		var skips int64
		if err := w.Run(func(c *mpi.Comm) {
			p, cc := critter.New(c, critter.Options{
				Policy: critter.Conditional, Eps: 0.2, Extrapolate: extrapolate,
			})
			workload(p, cc)
			rep = p.Report()
			skips = p.ExtrapolatedSkips()
		}); err != nil {
			b.Fatal(err)
		}
		return rep, skips
	}
	for i := 0; i < b.N; i++ {
		base, _ := run(false)
		ext, skips := run(true)
		if i == 0 {
			fmt.Printf("# ablation extrapolation: baseline executed %d, with line-fitting %d (%d extrapolated skips), wall %.3gs -> %.3gs\n",
				base.Executed, ext.Executed, skips, base.Wall, ext.Wall)
		}
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkMPIAllreduce measures the simulated runtime's collective cost
// (host time, not virtual time) at 8 ranks.
func BenchmarkMPIAllreduce(b *testing.B) {
	m := benchMachine()
	w := mpi.NewWorld(8, m, 1)
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) {
		in := make([]float64, 256)
		out := make([]float64, 256)
		for i := 0; i < b.N; i++ {
			c.Allreduce(in, out, mpi.OpSum)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMPIPingPong measures point-to-point matching cost.
func BenchmarkMPIPingPong(b *testing.B) {
	w := mpi.NewWorld(2, benchMachine(), 1)
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) {
		buf := make([]float64, 128)
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, buf)
				c.Recv(1, 1, buf)
			} else {
				c.Recv(0, 0, buf)
				c.Send(0, 1, buf)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProfilerKernel measures the per-invocation interception overhead
// of a computation kernel (decision + model update, no skip).
func BenchmarkProfilerKernel(b *testing.B) {
	w := mpi.NewWorld(1, benchMachine(), 1)
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) {
		p, _ := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: 0})
		for i := 0; i < b.N; i++ {
			p.Kernel("bench", 8, 8, 8, 0, 1e3, func() {})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProfilerCollective measures the interception overhead of a
// profiled broadcast across 8 ranks (includes the internal allreduce).
func BenchmarkProfilerCollective(b *testing.B) {
	w := mpi.NewWorld(8, benchMachine(), 1)
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) {
		_, cc := critter.New(c, critter.Options{Policy: critter.Online, Eps: 0})
		buf := make([]float64, 64)
		for i := 0; i < b.N; i++ {
			cc.Bcast(0, buf)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWelford measures the statistics accumulator.
func BenchmarkWelford(b *testing.B) {
	var w stats.Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 17))
	}
	if w.Count() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}
