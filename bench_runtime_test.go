package critter_test

// The Runtime benchmark suite: the perf trajectory of the simulation
// substrate (mpi + critter + autotune executor) is tracked by named
// benchmarks whose numbers are committed to BENCH_runtime.json and gated in
// CI (cmd/benchdiff):
//
//   - BenchmarkPropagation: the propagation microbench. One iteration is a
//     realistic profiler step under online propagation — a handful of
//     computation kernels followed by a profiled collective and a profiled
//     ring Sendrecv — against a populated path frequency table, so the
//     piggyback path (pathset snapshot, merge, adopt) dominates. The gated
//     metric is allocs/op.
//   - BenchmarkFullSweep: the full-sweep macrobench. One iteration is one
//     complete (policy, eps) sweep of the SLATE Cholesky study at QuickScale
//     through the Tuner. The tracked metric is ns/op (wall time).
//   - BenchmarkPropagationDES / BenchmarkFullSweepDES: the same workloads
//     pinned to the discrete-event world scheduler (mpi.SchedEvent), so the
//     trajectory of both execution modes stays visible regardless of which
//     one SchedAuto resolves to on the CI host. Virtual-clock results are
//     identical across the pair — only the throughput may differ.
//
// Run the suite with:
//
//	go test -run '^$' -bench 'Propagation|FullSweep' -benchmem -count=5 .
//
// and compare against the committed baseline with:
//
//	go run ./cmd/benchdiff -baseline BENCH_runtime.json bench.txt
//
// After an intentional perf change, rewrite the baseline from a fresh
// measurement with `go run ./cmd/benchdiff -update bench.txt`.

import (
	"context"
	"testing"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
)

// propagationKernels populates the rank's path frequency table with distinct
// kernel signatures so every propagation point moves a realistically sized
// table (the paper's studies profile tens to hundreds of signatures).
const propagationKernels = 48

// BenchmarkPropagation measures the profiler's piggyback propagation path:
// per iteration, four kernel interceptions, one profiled allreduce (internal
// allreduce + pathset merge), and one profiled symmetric Sendrecv exchange
// on a ring (combined internal exchange), at 8 ranks under online
// propagation with skipping disabled so every step propagates counts.
// allocs/op is the CI-gated metric (BENCH_runtime.json).
func BenchmarkPropagation(b *testing.B) { benchPropagation(b, mpi.SchedAuto) }

// BenchmarkPropagationDES is BenchmarkPropagation pinned to the
// discrete-event scheduler.
func BenchmarkPropagationDES(b *testing.B) { benchPropagation(b, mpi.SchedEvent) }

func benchPropagation(b *testing.B, sched mpi.SchedulerKind) {
	w := mpi.NewWorld(8, benchMachine(), 7)
	w.SetScheduler(sched)
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm) {
		p, cc := critter.New(c, critter.Options{Policy: critter.Online, Eps: 0})
		for k := 0; k < propagationKernels; k++ {
			p.Kernel("seed", k, k, k, 0, 100, func() {})
		}
		buf := make([]float64, 32)
		ring := make([]float64, 16)
		// Pairwise symmetric exchange partner (butterfly stage 0): ranks
		// 2k <-> 2k+1, same tag both ways, so the combined Sendrecv
		// protocol engages.
		pair := c.Rank() ^ 1
		for i := 0; i < b.N; i++ {
			for k := 0; k < 4; k++ {
				p.Kernel("step", k, 8, 8, 0, 1e3, func() {})
			}
			cc.Allreduce(buf, buf, mpi.OpMax)
			cc.Sendrecv(pair, 5, ring, pair, 5, ring)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFullSweep measures one complete (policy, eps) sweep — full
// reference execution plus selective execution per configuration — of the
// SLATE Cholesky study at QuickScale, through the Tuner on a single worker.
// ns/op is the tracked wall-time metric (BENCH_runtime.json).
func BenchmarkFullSweep(b *testing.B) { benchFullSweep(b, mpi.SchedAuto) }

// BenchmarkFullSweepDES is BenchmarkFullSweep pinned to the discrete-event
// scheduler.
func BenchmarkFullSweepDES(b *testing.B) { benchFullSweep(b, mpi.SchedEvent) }

func benchFullSweep(b *testing.B, sched mpi.SchedulerKind) {
	study := autotune.SlateCholesky(autotune.QuickScale())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := autotune.Tuner{
			Study:     study,
			EpsList:   []float64{0.125},
			Machine:   benchMachine(),
			Seed:      42,
			Policies:  []critter.Policy{critter.Online},
			Scheduler: sched,
			Workers:   1,
		}.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sweeps) != 1 || len(res.Sweeps[0]) != 1 {
			b.Fatal("unexpected result shape")
		}
	}
}
