package analysis

import (
	"go/ast"
	"reflect"
	"strings"
)

// SchemaTag makes JSON schema drift compile-time visible: in any struct
// that participates in a JSON schema (at least one field carries a `json`
// tag), every exported non-embedded field must carry an explicit `json`
// tag — including `json:"-"` for deliberate exclusions. The versioned
// envelope, profile, and job request/response schemas are long-lived
// on-disk and on-wire artifacts; a new untagged field would silently
// marshal under its Go name and change the schema without anyone choosing
// a wire name or bumping the schema version.
var SchemaTag = &Analyzer{
	Name: "schematag",
	Doc:  "require explicit json tags on every exported field of JSON-schema structs",
	Run:  runSchemaTag,
}

func runSchemaTag(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			if !hasJSONTag(st) {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					continue // embedded fields inline their own schema
				}
				if _, tagged := jsonTag(field); tagged {
					continue
				}
				for _, name := range field.Names {
					if name.IsExported() {
						pass.Reportf(name.Pos(),
							"exported field %s of a JSON-schema struct has no json tag; choose a wire name explicitly (or exclude it with `json:\"-\"`)",
							name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// hasJSONTag reports whether any field of the struct carries a json tag.
func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if _, ok := jsonTag(field); ok {
			return true
		}
	}
	return false
}

// jsonTag extracts the field's json struct tag.
func jsonTag(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
	return tag.Lookup("json")
}
