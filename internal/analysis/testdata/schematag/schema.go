// Fixture for the schematag analyzer: a struct that participates in a JSON
// schema (any field tagged) must tag every exported field explicitly.
package fixture

// envelope participates in a schema and misses tags on two fields.
type envelope struct {
	SchemaVersion int       `json:"schemaVersion"`
	Study         string    `json:"study"`
	Grid          []float64 // want "exported field Grid of a JSON-schema struct has no json tag"
	Seed          int64     // want "exported field Seed of a JSON-schema struct has no json tag"

	internalNote string // unexported: not part of the wire schema
}

// fullyTagged is clean: every exported field chose a wire name, including a
// deliberate exclusion.
type fullyTagged struct {
	Name    string   `json:"name"`
	Configs []int    `json:"configs,omitempty"`
	Scratch []byte   `json:"-"`
	header  struct{} //nolint:unused
}

// plain carries no json tags at all, so it does not participate in a
// schema and is exempt.
type plain struct {
	X int
	Y string
}

// embedded fields inline their own schema and are skipped.
type withEmbed struct {
	fullyTagged
	Extra int `json:"extra"`
}
