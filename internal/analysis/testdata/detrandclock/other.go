package fixture

import "time"

func elsewhere() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
