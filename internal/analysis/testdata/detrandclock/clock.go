// Fixture for the detrand clock-injection allowlist: this file is named
// clock.go, so when the fixture is loaded as critter/internal/obs its
// time.Now reference is the sanctioned injection point and must not be
// flagged — while the same reference in any other file of the package
// (other.go) still is.
package fixture

import "time"

type clock func() time.Time

func wallClock() clock { return time.Now }
