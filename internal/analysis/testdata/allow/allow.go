// Fixture for the //lint:allow escape hatch: a directive with a reason
// suppresses that analyzer on its line (or the line below); a bare
// directive without a reason suppresses nothing, and a directive for a
// different analyzer doesn't either.
package fixture

import "time"

func suppressed() {
	_ = time.Now() //lint:allow detrand boot banner timestamp, never enters an envelope
	//lint:allow detrand measured by the bench harness, not the simulation
	_ = time.Now()
}

func notSuppressed() {
	//lint:allow detrand
	_ = time.Now() // want "time.Now reads the wall clock"
	//lint:allow maporder wrong analyzer named
	_ = time.Now() // want "time.Now reads the wall clock"
}
