// Fixture for the maporder analyzer: order-sensitive work inside a range
// over a map is flagged; the collect-then-sort pattern and commutative
// folds are sanctioned.
package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func flaggedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over a map"
	}
	return out
}

func flaggedFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation into sum"
	}
	return sum
}

func flaggedStringConcat(m map[string]int) string {
	var s string
	for k := range m {
		s += k // want "string concatenation into s"
	}
	return s
}

func flaggedOutput(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over a map writes output"
	}
}

func flaggedBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString inside range over a map writes output"
	}
	return b.String()
}

// sortedKeys is the sanctioned pattern: collect, sort, then do the
// order-sensitive work over the sorted slice.
func sortedKeys(m map[string]float64) (string, float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s string
	var sum float64
	for _, k := range keys {
		s += k
		sum += m[k]
	}
	return s, sum
}

// commutative folds don't depend on visit order.
func sanctionedFolds(m map[string]int) (int, int, map[string]int) {
	n := 0
	best := 0
	out := make(map[string]int, len(m))
	for k, v := range m {
		n += v // integer addition commutes
		if v > best {
			best = v
		}
		out[k] = v * 2 // keyed writes are order-independent
	}
	return n, best, out
}

// a per-iteration temporary cannot leak iteration order.
func sanctionedTemp(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// sortFunc variants count as sanctioned sorters too.
func sortedStructs(m map[string]int) []pair {
	var out []pair
	for k, v := range m {
		out = append(out, pair{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type pair struct {
	k string
	v int
}
