// Test files are exempt from maporder: tests compare and report in
// arbitrary order; the invariant protects envelopes, profiles, and logs.
package fixture

func testOnlyHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // no want: _test.go files are exempt
	}
	return out
}
