// Fixture for the detrand analyzer: wall-clock reads and global math/rand
// draws are flagged in deterministic layers; explicit seeding and pure time
// arithmetic are sanctioned.
package fixture

import (
	"math/rand"
	"time"
)

func flagged() {
	_ = time.Now()                   // want "time.Now reads the wall clock"
	_ = time.Since(time.Time{})      // want "time.Since reads the wall clock"
	time.Sleep(time.Millisecond)     // want "time.Sleep reads the wall clock"
	_ = time.After(time.Second)      // want "time.After reads the wall clock"
	_ = rand.Float64()               // want "math/rand.Float64 draws from the process-global random source"
	_ = rand.Intn(10)                // want "math/rand.Intn draws from the process-global random source"
	rand.Shuffle(3, func(i, j int) { // want "math/rand.Shuffle draws from the process-global random source"
	})
}

func sanctioned() {
	// Explicitly seeded generators are the sanctioned pattern.
	rng := rand.New(rand.NewSource(42))
	_ = rng.Float64()
	_ = rng.Intn(10)

	// Pure constructors and arithmetic are deterministic.
	t := time.Unix(0, 0)
	_ = t.Add(3 * time.Second)
	_ = time.Duration(17) * time.Millisecond
	_, _ = time.Parse(time.RFC3339, "2021-01-01T00:00:00Z")
}
