// Fixture for the ctxfirst analyzer: context.Context must be the first
// parameter.
package fixture

import "context"

func good(ctx context.Context, n int) {}

func bad(n int, ctx context.Context) {} // want "context.Context is parameter 2"

func worse(a, b string, ctx context.Context, n int) {} // want "context.Context is parameter 3"

type iface interface {
	Good(ctx context.Context, q string)
	Bad(q string, ctx context.Context) // want "context.Context is parameter 2"
}

type recv struct{}

func (recv) Method(n int, ctx context.Context) {} // want "context.Context is parameter 2"

var lit = func(n int, ctx context.Context) {} // want "context.Context is parameter 2"

// multi-name parameter groups count positionally.
func grouped(a, b int, ctx context.Context) {} // want "context.Context is parameter 3"
