package fixture

import (
	"sync"        // want "outside fabric.go/world.go/sched.go"
	"sync/atomic" // want "outside fabric.go/world.go/sched.go"
)

var strayMu sync.Mutex
var strayFlag atomic.Int64

func stray() {
	strayMu.Lock()
	strayFlag.Add(1)
	strayMu.Unlock()
}
