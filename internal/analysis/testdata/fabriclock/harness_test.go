// Test files synchronize their own harnesses, not the runtime: exempt.
package fixture

import "sync"

var testMu sync.Mutex // no want: _test.go files are exempt

func lockedInTest() {
	testMu.Lock()
	defer testMu.Unlock()
}
