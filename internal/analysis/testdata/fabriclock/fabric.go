// Fixture for the fabriclock analyzer: fabric.go and world.go are the
// sanctioned homes for raw synchronization in internal/mpi.
package fixture

import "sync"

var fabricMu sync.Mutex

func lockedInFabric() {
	fabricMu.Lock()
	defer fabricMu.Unlock()
}
