package fixture

import "sync/atomic"

var aborted atomic.Bool

func abort() { aborted.Store(true) }
