// Fixture for the fabriclock analyzer: sched.go is sanctioned alongside
// fabric.go and world.go — it confines the discrete-event scheduler's
// run-queue state.
package fixture

import "sync"

var schedMu sync.Mutex

func lockedInSched() {
	schedMu.Lock()
	defer schedMu.Unlock()
}
