package analysis

import (
	"go/token"
	"go/types"
	"strings"
)

// DetRand forbids wall-clock reads and global math/rand draws in the
// deterministic layers. The simulation's reproducibility contract — a
// fixed seed yields bitwise-identical envelopes at any worker count — only
// holds because every timestamp comes from the per-rank virtual clock
// (sim.Clock) and every random variate from a seeded splitmix64 stream
// (sim.RNG). One stray time.Now or rand.Float64 silently breaks golden
// byte-identity; only internal/service and the binaries may touch real
// time. Explicitly seeded generators (rand.New(rand.NewSource(seed))) are
// fine and stay allowed.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock and global math/rand use in the deterministic layers",
	Run:  runDetRand,
}

// wallClock lists the time-package functions that read the real clock or
// arm real timers. Pure constructors and arithmetic (time.Duration,
// time.Date, t.Add, Parse...) are allowed: they are deterministic.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// clockInjectionFile is the one sanctioned wall-clock reference in a
// deterministic layer: obs.WallClock returns time.Now as an injectable
// obs.Clock, and tracers stamp wall time through it only when the
// service layer or a binary installed one. Allowlisting the single file
// (not the whole package) keeps any other obs file bound by the rule.
func clockInjectionFile(pass *Pass, pos token.Pos) bool {
	return basePath(pass.Pkg.Path()) == "critter/internal/obs" &&
		fileBase(pass.Fset, pos) == "clock.go"
}

func runDetRand(pass *Pass) error {
	if !deterministicLayer(pass.Pkg.Path()) {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClock[fn.Name()] && !clockInjectionFile(pass, id.Pos()) {
				pass.Reportf(id.Pos(),
					"time.%s reads the wall clock in a deterministic layer; use the virtual clock (sim.Clock) — only internal/service and cmd/ may touch real time",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Top-level functions draw from the process-global source; the
			// New* constructors build explicitly seeded generators, which
			// is exactly the sanctioned pattern.
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(id.Pos(),
					"%s.%s draws from the process-global random source in a deterministic layer; seed a sim.RNG (or rand.New with a fixed seed) instead",
					fn.Pkg().Path(), fn.Name())
			}
		}
	}
	return nil
}
