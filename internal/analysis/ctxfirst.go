package analysis

import (
	"go/ast"
)

// CtxFirst enforces the Go convention that a context.Context parameter is
// the first parameter. The tuner, sweep executor, and service layer all
// plumb cancellation through explicit contexts (Tuner.Run, Stream,
// Scheduler submission); keeping ctx first keeps that plumbing greppable
// and prevents the "context buried in an options struct three params in"
// drift that makes cancellation paths invisible in review.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context parameters must come first",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
			case *ast.FuncLit:
				ft = n.Type
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if mft, ok := m.Type.(*ast.FuncType); ok {
						checkCtxFirst(pass, mft)
					}
				}
				return true
			default:
				return true
			}
			checkCtxFirst(pass, ft)
			return true
		})
	}
	return nil
}

func checkCtxFirst(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	// Walk parameters left to right; a field list entry may declare several
	// names, so track the positional index explicitly.
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && isNamedType(tv.Type, "context", "Context") && index > 0 {
			pass.Reportf(field.Type.Pos(),
				"context.Context is parameter %d; it must be the first parameter", index+1)
		}
		index += n
	}
}
