package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags order-sensitive work inside `range` over a map in the
// deterministic layers. Go randomizes map iteration order per range, so any
// loop body whose effect depends on visit order — appending to a slice that
// outlives the loop, accumulating a float or string, or writing to an
// output stream — produces run-to-run-different results and breaks the
// golden envelopes' byte-identity.
//
// The sanctioned pattern (ubiquitous in internal/critter) is: collect into
// a slice, sort it, then do the order-sensitive work over the sorted slice.
// An append is therefore not flagged when the destination slice is passed
// to a sort call (sort.Slice, slices.Sort, ...) later in the same function.
// Commutative folds — integer counting, map writes keyed independently of
// visit order, min/max via comparison — are order-insensitive and stay
// allowed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work in range-over-map in the deterministic layers",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !deterministicLayer(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			// Tests compare and report in arbitrary order freely; the
			// invariant protects envelopes, profiles, and logs, and the
			// determinism tests themselves assert on sorted artifacts.
			continue
		}
		// Track the enclosing function body so the post-loop sort check can
		// scan the statements that follow the range loop.
		var enclosing []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				enclosing = enclosing[:len(enclosing)-1]
				return true
			}
			enclosing = append(enclosing, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.TypesInfo, rs) {
				return true
			}
			checkMapRange(pass, rs, enclosingFuncBody(enclosing))
			return true
		})
	}
	return nil
}

// isMapRange reports whether rs ranges over a value of map type.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// enclosingFuncBody returns the body of the innermost enclosing function
// (declaration or literal) on the node stack, or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range runs its own check; don't double-report
			// its body against the outer loop.
			if n != rs && isMapRange(info, n) {
				return false
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, funcBody, n)
		case *ast.CallExpr:
			if name, ok := outputCall(info, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside range over a map writes output in map iteration order; collect into a slice, sort it, then write", name)
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) || i >= len(as.Lhs) {
				continue
			}
			dst := as.Lhs[i]
			if !declaredOutside(info, dst, rs.Pos(), rs.End()) {
				continue // per-iteration temporary; order can't leak out
			}
			if sortedAfter(info, funcBody, rs.End(), rootIdent(dst)) {
				continue // the sanctioned collect-then-sort pattern
			}
			pass.Reportf(call.Pos(),
				"append to %s inside range over a map accumulates in map iteration order; sort %s after the loop (sort.Slice / slices.Sort) or iterate sorted keys",
				exprText(dst), exprText(dst))
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 {
			return
		}
		dst := as.Lhs[0]
		if !declaredOutside(info, dst, rs.Pos(), rs.End()) {
			return
		}
		tv, ok := info.Types[dst]
		if !ok {
			return
		}
		switch t := tv.Type.Underlying().(type) {
		case *types.Basic:
			switch {
			case t.Info()&types.IsFloat != 0 || t.Info()&types.IsComplex != 0:
				pass.Reportf(as.Pos(),
					"float accumulation into %s inside range over a map is order-dependent (FP addition is non-associative); iterate sorted keys instead",
					exprText(dst))
			case t.Info()&types.IsString != 0:
				pass.Reportf(as.Pos(),
					"string concatenation into %s inside range over a map depends on map iteration order; iterate sorted keys instead",
					exprText(dst))
			}
		}
	}
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortFuncs are the sanctioned post-loop sorters: a flagged append is
// forgiven when its destination reaches one of these later in the function.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj (the append destination's root object) is
// referenced by a sanctioned sort call positioned after pos in funcBody.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, pos token.Pos, id *ast.Ident) bool {
	if funcBody == nil || id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name, ok := pkgFuncIn(info, call, sortFuncs)
		if !ok {
			return true
		}
		_ = name
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if use, ok := m.(*ast.Ident); ok && info.Uses[use] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// pkgFuncIn resolves a call against a pkgPath -> allowed-names table.
func pkgFuncIn(info *types.Info, call *ast.CallExpr, table map[string]map[string]bool) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return "", false
	}
	names := table[fn.Pkg().Path()]
	if names == nil || !names[fn.Name()] {
		return "", false
	}
	return fn.Pkg().Path() + "." + fn.Name(), true
}

// outputCall reports whether call writes to an output stream: fmt printers
// bound to a writer/stdout, or Write*/Encode methods on a receiver.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if name, ok := pkgFunc(info, call, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
		return "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Signature().Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Printf", "Print", "Println":
		return "(" + fn.Signature().Recv().Type().String() + ")." + fn.Name(), true
	}
	return "", false
}

// exprText renders a short expression (identifier or selector chain) for
// diagnostics.
func exprText(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	}
	return "expression"
}
