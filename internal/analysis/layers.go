package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// The repo's layering contract, shared by the analyzers:
//
// Everything under the module — the root critter package and
// critter/internal/... — is a *deterministic layer*: it runs inside the
// virtual-time simulation or transforms its outputs, so wall-clock reads,
// global randomness, and map-iteration-order-dependent work are all bugs
// that break bit-identical envelopes. The only layers allowed to touch
// real time are the service layer (job timestamps, SSE), the binaries
// under cmd/, the examples, and this tooling package itself.

// exemptLayers are module packages allowed to read the wall clock and
// iterate maps in arbitrary order.
var exemptLayers = map[string]bool{
	"critter/internal/service":  true,
	"critter/internal/analysis": true,
}

// deterministicLayer reports whether the package at path is bound by the
// determinism invariants (detrand, maporder).
func deterministicLayer(path string) bool {
	path = basePath(path)
	if exemptLayers[path] {
		return false
	}
	if path == "critter" {
		return true
	}
	return strings.HasPrefix(path, "critter/internal/")
}

// basePath strips the loader's "_test" suffix from external test units so
// layer predicates treat them like their base package.
func basePath(path string) string { return strings.TrimSuffix(path, "_test") }

// fileBase returns the basename of the file containing pos.
func fileBase(fset *token.FileSet, pos token.Pos) string {
	return filepath.Base(fset.Position(pos).Filename)
}

// isTestFile reports whether f is a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// calleeFunc resolves a call's static callee to a *types.Func (package
// function or method); nil for builtins, function values, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgFunc returns the name of the called package-level function when call
// statically targets a function (not method) in the package at pkgPath.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Signature().Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// rootIdent returns the leftmost identifier of an expression like
// x, x.f, x.f[i], or (*x).f; nil when there is none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the object behind expression e was
// declared outside the [lo, hi] node span (i.e. it outlives the span).
func declaredOutside(info *types.Info, e ast.Expr, lo, hi token.Pos) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
