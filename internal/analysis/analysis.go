// Package analysis is critter's project-specific static-analysis suite: a
// set of analyzers that machine-enforce the repo's determinism and
// concurrency invariants, plus the package-loading and diagnostic plumbing
// the cmd/critterlint driver runs them with.
//
// The paper's value proposition rests on statistically valid, reproducible
// execution-path analysis. This repo encodes that as hard invariants —
// bit-identical golden envelopes, virtual-time-only simulation,
// deterministic sweeps at any worker count — which until now were guarded
// only by after-the-fact tests. The analyzers move those invariants into
// the type-checker's seat so CI fails at the offending line:
//
//   - detrand: no wall-clock or global math/rand in the deterministic
//     layers (everything except internal/service, cmd/, and examples/).
//   - maporder: no order-sensitive work (unsorted appends, float or string
//     accumulation, output writes) inside `range` over a map in the
//     deterministic layers.
//   - fabriclock: raw sync/atomic use in internal/mpi is restricted to
//     fabric.go and world.go, locking in the PR-4 lock architecture.
//   - schematag: a struct that participates in the JSON schema (has any
//     `json` tag) must tag every exported field, so schema drift is
//     compile-time visible.
//   - ctxfirst: context.Context parameters come first, per Go convention
//     and so cancellation plumbing stays greppable.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic) but is built on the standard library's go/ast and
// go/types only, so the module keeps its zero-dependency property. The
// one sanctioned escape hatch is a trailing or preceding comment
//
//	//lint:allow <analyzer> <reason>
//
// with a mandatory reason; a bare directive without a reason does not
// suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring the x/tools analysis API.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:allow directives.
	Name string
	// Doc is a one-paragraph description: the invariant it encodes and why.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one loaded package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The analyzer name is
// attached by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// All returns the full critterlint analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand,
		MapOrder,
		FabricLock,
		SchemaTag,
		CtxFirst,
	}
}

// ByName resolves a comma-separated analyzer list against the suite; an
// empty spec selects every analyzer.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", strings.TrimSpace(name))
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to pkg, filters findings through the
// lint:allow suppression comments, and returns the surviving diagnostics in
// file/position order.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	allows := collectAllows(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if allows.suppressed(pkg.Fset, d) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowSet records, per file and line, which analyzers a lint:allow
// directive suppresses. A directive on line N suppresses findings on line N
// (trailing comment) and line N+1 (preceding comment).
type allowSet map[string]map[int][]string

// allowPrefix is the directive the driver honors. The full form is
// "//lint:allow <analyzer> <reason>"; the reason is mandatory.
const allowPrefix = "lint:allow"

func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				// fields[0] is the analyzer name; a reason (>= 1 more word)
				// is required for the directive to take effect.
				if len(fields) < 2 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return set
}

func (s allowSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}
