package analysis

// Package loading for the analyzer suite. The loader leans on the go
// command itself (`go list -deps -test -export`) to enumerate packages,
// pick build-constraint-relevant files, and produce compiled export data
// for every dependency, then type-checks only the packages under analysis
// from source. That keeps the suite on the standard library alone: imports
// resolve through go/importer's gc export-data reader instead of a
// vendored copy of golang.org/x/tools.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded analysis unit: a type-checked package with its
// syntax. For ordinary packages the unit holds GoFiles plus in-package
// test files; external test packages (package foo_test) load as their own
// unit with Path "<path>_test".
type Package struct {
	// Path is the package's import path (with a "_test" suffix for
	// external test units); layer predicates key off it.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listing is the subset of `go list -json` output the loader consumes.
type listing struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	ForTest      string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// realPath strips go list's test-variant suffix: the listing for a package
// recompiled against a test build prints as "path [forTest.test]".
func realPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// exportSet resolves import paths to compiled export-data files, with the
// test-variant overlay go list -test produces: an external test unit of
// package P must see P (and anything recompiled against P's test build)
// through the "[P.test]" variants so identifiers from in-package test
// files resolve.
type exportSet struct {
	plain    map[string]string            // import path -> export file
	variants map[string]map[string]string // forTest -> import path -> export file
}

func (e *exportSet) lookupFor(forTest string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if forTest != "" {
			if file, ok := e.variants[forTest][path]; ok && file != "" {
				return os.Open(file)
			}
		}
		file, ok := e.plain[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]*listing, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var out []*listing
	dec := json.NewDecoder(&stdout)
	for {
		var l listing
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		out = append(out, &l)
	}
	return out, nil
}

const listFields = "-json=ImportPath,Dir,Name,Standard,ForTest,Export,GoFiles,TestGoFiles,XTestGoFiles"

// LoadPatterns loads every module package matching the go list patterns
// (run from dir) as analysis units: one unit per package covering its
// GoFiles and in-package test files, plus one unit per external test
// package.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}

	// One sweep with -deps -test -export yields export data for every
	// dependency (stdlib included) and every test-variant recompile.
	all, err := goList(dir, append([]string{"-deps", "-test", "-export", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := &exportSet{plain: map[string]string{}, variants: map[string]map[string]string{}}
	byPath := map[string]*listing{}
	for _, l := range all {
		if strings.HasSuffix(l.ImportPath, ".test") {
			continue // synthesized test main
		}
		if l.ForTest != "" {
			m := exports.variants[l.ForTest]
			if m == nil {
				m = map[string]string{}
				exports.variants[l.ForTest] = m
			}
			m[realPath(l.ImportPath)] = l.Export
			continue
		}
		exports.plain[l.ImportPath] = l.Export
		if isTarget[l.ImportPath] {
			byPath[l.ImportPath] = l
		}
	}

	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, path := range paths {
		l := byPath[path]
		files := make([]string, 0, len(l.GoFiles)+len(l.TestGoFiles))
		files = append(files, l.GoFiles...)
		files = append(files, l.TestGoFiles...)
		// The unit with in-package test files is a test-variant build:
		// resolve its imports (and later, importers of it) accordingly.
		forTest := ""
		if len(l.TestGoFiles) > 0 {
			forTest = l.ImportPath
		}
		pkg, err := checkFiles(fset, l.ImportPath, l.Dir, files, exports.lookupFor(forTest))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)

		if len(l.XTestGoFiles) > 0 {
			xpkg, err := checkFiles(fset, l.ImportPath+"_test", l.Dir, l.XTestGoFiles,
				exports.lookupFor(l.ImportPath))
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	return pkgs, nil
}

// LoadFixture loads one directory of Go files as a single package for
// analyzer fixture tests. importPath is what layer predicates see, so a
// fixture can impersonate e.g. "critter/internal/sim" or
// "critter/internal/service".
func LoadFixture(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)

	// Collect the fixture's imports and ask the go command for their
	// export data (fixtures import only the standard library).
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := &exportSet{plain: map[string]string{}}
	if len(imports) > 0 {
		args := []string{"-deps", "-export", listFields}
		for p := range imports {
			args = append(args, p)
		}
		sort.Strings(args[3:])
		all, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, l := range all {
			exports.plain[l.ImportPath] = l.Export
		}
	}
	return checkFiles(fset, importPath, dir, files, exports.lookupFor(""))
}

// checkFiles parses and type-checks one package's files, resolving imports
// through compiled export data via the lookup function.
func checkFiles(fset *token.FileSet, path, dir string, filenames []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	gc := importer.ForCompiler(fset, "gc", lookup)
	var typeErrs []string
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			return gc.Import(p)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
