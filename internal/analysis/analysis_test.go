package analysis

// The fixture harness mirrors golang.org/x/tools/go/analysis/analysistest:
// each testdata/<analyzer> directory is one Go package annotated with
//
//	// want "regexp"
//
// comments on the lines where diagnostics are expected (several per line
// allowed). The harness loads the fixture under a chosen import path — so
// one fixture can impersonate a deterministic layer or an exempt one — runs
// the analyzer, and requires an exact match: every want satisfied, every
// diagnostic wanted.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one `// want "..."` expectation; quotes inside the pattern
// are not supported (none of the fixtures need them).
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file string // basename
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), line, m[1], err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// checkFixture loads testdata/<name> under importPath, runs the analyzers,
// and matches diagnostics against the fixture's want comments. When
// expectDiags is false the fixture's wants are ignored and any diagnostic
// at all is an error (the exempt-layer negative case).
func checkFixture(t *testing.T, analyzers []*Analyzer, name, importPath string, expectDiags bool) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := LoadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(analyzers, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !expectDiags {
		for _, d := range diags {
			t.Errorf("%s as %s: unexpected diagnostic %s: %s (%s)",
				name, importPath, pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		return
	}
	wants := collectWants(t, dir)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic %s: %s (%s)", name, pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", name, w.file, w.line, w.re)
		}
	}
}

func TestDetRand(t *testing.T) {
	suite := []*Analyzer{DetRand}
	checkFixture(t, suite, "detrand", "critter/internal/sim", true)
	// The same file is clean when it lives in an exempt layer.
	checkFixture(t, suite, "detrand", "critter/internal/service", false)
}

func TestDetRandClockInjection(t *testing.T) {
	suite := []*Analyzer{DetRand}
	// In internal/obs only clock.go is the sanctioned wall-clock injection
	// point; other.go's time.Now is still flagged.
	checkFixture(t, suite, "detrandclock", "critter/internal/obs", true)
}

func TestMapOrder(t *testing.T) {
	suite := []*Analyzer{MapOrder}
	checkFixture(t, suite, "maporder", "critter/internal/critter", true)
	checkFixture(t, suite, "maporder", "critter/internal/service", false)
}

func TestFabricLock(t *testing.T) {
	suite := []*Analyzer{FabricLock}
	checkFixture(t, suite, "fabriclock", "critter/internal/mpi", true)
	// Any other package may synchronize however it likes.
	checkFixture(t, suite, "fabriclock", "critter/internal/critter", false)
}

func TestSchemaTag(t *testing.T) {
	checkFixture(t, []*Analyzer{SchemaTag}, "schematag", "critter/internal/autotune", true)
}

func TestCtxFirst(t *testing.T) {
	checkFixture(t, []*Analyzer{CtxFirst}, "ctxfirst", "critter/internal/autotune", true)
}

func TestLintAllow(t *testing.T) {
	// The allow fixture holds real violations: one suppressed by a
	// well-formed //lint:allow with a reason, one annotated with a bare
	// directive that must NOT suppress.
	checkFixture(t, []*Analyzer{DetRand, MapOrder}, "allow", "critter/internal/sim", true)
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := ByName("detrand, maporder")
	if err != nil || len(two) != 2 || two[0] != DetRand || two[1] != MapOrder {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not error")
	}
}

// TestRepoIsClean is the meta-test: the full suite over the whole module
// must be finding-free, so the invariant list and the tree cannot drift
// apart. A new violation anywhere fails this test with the offending line.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPatterns(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader is dropping targets", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(All(), pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
