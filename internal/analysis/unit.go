package analysis

// Vet unit-checker protocol: when critterlint runs under
// `go vet -vettool=...`, the go command invokes it once per package with a
// JSON config file describing the compilation unit — source files plus a
// map from import paths to already-compiled export data. This file decodes
// that config and type-checks the unit, mirroring what
// golang.org/x/tools/go/analysis/unitchecker does, on the standard library
// alone.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// UnitConfig is the subset of vet's JSON unit config the driver consumes.
type UnitConfig struct {
	ID          string            `json:"ID"`
	Compiler    string            `json:"Compiler"`
	Dir         string            `json:"Dir"`
	ImportPath  string            `json:"ImportPath"`
	GoVersion   string            `json:"GoVersion"`
	GoFiles     []string          `json:"GoFiles"`
	ImportMap   map[string]string `json:"ImportMap"`
	PackageFile map[string]string `json:"PackageFile"`
	VetxOnly    bool              `json:"VetxOnly"`
	VetxOutput  string            `json:"VetxOutput"`

	SucceedOnTypecheckFailure bool `json:"SucceedOnTypecheckFailure"`
}

// LoadUnit reads a vet unit config and type-checks the package it
// describes. The returned config is non-nil whenever the file itself could
// be decoded, so callers can honor SucceedOnTypecheckFailure.
func LoadUnit(cfgPath string) (*Package, *UnitConfig, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("decoding vet config %s: %w", cfgPath, err)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	// vet hands the in-package test variant as "path [path.test]" and the
	// external test package as "path_test [path.test]"; layer predicates
	// want the base path.
	pkg, err := checkFiles(token.NewFileSet(), realPath(cfg.ImportPath), cfg.Dir, cfg.GoFiles, lookup)
	if err != nil {
		return nil, cfg, err
	}
	return pkg, cfg, nil
}
