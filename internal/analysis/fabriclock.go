package analysis

import (
	"strings"
)

// FabricLock restricts raw synchronization primitives in internal/mpi to
// fabric.go, world.go, and sched.go. The PR-4 lock architecture gives
// every rank its own mailbox and shards collectives eight ways precisely
// so there is no world-global lock; it lives in fabric.go and world.go,
// and the discrete-event scheduler's run-queue state (one mutex plus
// per-rank resume channels) is confined to sched.go. Any other file in
// the package importing sync or sync/atomic is a regression vector — new
// shared state should route through the fabric (or move into the
// sanctioned files with a design note). Test files are exempt: they
// synchronize their own harnesses, not the runtime.
var FabricLock = &Analyzer{
	Name: "fabriclock",
	Doc:  "restrict raw sync/atomic use in internal/mpi to fabric.go, world.go, and sched.go",
	Run:  runFabricLock,
}

// fabricLockFiles are the files sanctioned to hold locks in internal/mpi.
var fabricLockFiles = map[string]bool{
	"fabric.go": true,
	"world.go":  true,
	"sched.go":  true,
}

func runFabricLock(pass *Pass) error {
	if basePath(pass.Pkg.Path()) != "critter/internal/mpi" {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) || fabricLockFiles[fileBase(pass.Fset, f.Package)] {
			continue
		}
		for _, spec := range f.Imports {
			switch strings.Trim(spec.Path.Value, `"`) {
			case "sync", "sync/atomic":
				pass.Reportf(spec.Pos(),
					"import of %s outside fabric.go/world.go/sched.go: the mpi lock architecture (per-rank mailboxes, sharded collectives, event-scheduler run queue, no world-global lock) is confined to those files — route synchronization through the fabric or move this into a sanctioned file",
					spec.Path.Value)
			}
		}
	}
	return nil
}
