// Package slate implements task-style tiled dense factorizations on 2D
// block-cyclic process grids, modeled on SLATE's potrf and geqrf routines
// (Gates et al.), the second and fourth case studies of the paper. Tiles of
// a tunable size are distributed round-robin over a pr-by-pc grid; tile
// dependencies are satisfied with nonblocking point-to-point communication
// (isend/recv), matching the kernel population the paper reports for SLATE.
package slate

import (
	"fmt"
	"math"

	"critter/internal/critter"
	"critter/internal/grid"
	"critter/internal/mpi"
)

// TileMatrix stores the locally owned nb-by-nb tiles of an (mt*nb)x(nt*nb)
// matrix distributed block-cyclically: tile (I, J) lives on grid rank
// (I mod pr, J mod pc). Tiles are column-major.
type TileMatrix struct {
	G      *grid.Grid2D
	NB     int
	MT, NT int
	// tiles holds local tile storage indexed i*NT+j (nil = absent). A dense
	// slice, not a map: tile lookups sit in the factorizations' innermost
	// loops and the index space (MT*NT pointers) is small.
	tiles [][]float64
	// pool, when non-nil, supplies tile storage (world buffer pool). Pooled
	// tiles have unspecified initial contents, which is sound because every
	// tile the factorizations touch is fully overwritten by a Fill* call
	// before its first read; Release returns the storage when the matrix is
	// done. Message payloads are captured at issue time (mpi.Isend), so no
	// in-flight message ever aliases tile storage.
	pool *mpi.BufPool
}

// NewTileMatrix creates an empty tile matrix of mt-by-nt tiles. Tile
// storage draws from the world's buffer pool when the executor installed
// one; call Release when the matrix (and any aliases of its tiles) is dead.
func NewTileMatrix(g *grid.Grid2D, mt, nt, nb int) *TileMatrix {
	return &TileMatrix{
		G: g, NB: nb, MT: mt, NT: nt,
		tiles: make([][]float64, mt*nt),
		pool:  g.All.Raw().World().BufPoolOf(),
	}
}

// Release recycles every tile's storage back to the buffer pool and empties
// the matrix. The caller asserts no live references to any tile remain.
// No-op without a pool.
func (t *TileMatrix) Release() {
	if t.pool == nil {
		return
	}
	for ix, tl := range t.tiles {
		if tl != nil {
			t.pool.Put(tl)
			t.tiles[ix] = nil
		}
	}
}

// Owner returns the grid rank owning tile (i, j).
func (t *TileMatrix) Owner(i, j int) int {
	return t.G.RankOf(i%t.G.PR, j%t.G.PC)
}

// Mine reports whether the calling rank owns tile (i, j).
func (t *TileMatrix) Mine(i, j int) bool { return t.Owner(i, j) == t.G.All.Rank() }

// Tile returns (allocating if needed) the local tile (i, j); it panics if
// the tile is not local.
func (t *TileMatrix) Tile(i, j int) []float64 {
	if !t.Mine(i, j) {
		panic(fmt.Sprintf("slate: tile (%d,%d) not owned by rank %d", i, j, t.G.All.Rank()))
	}
	ix := i*t.NT + j
	tl := t.tiles[ix]
	if tl == nil {
		if t.pool != nil {
			tl = t.pool.Get(t.NB * t.NB)
		} else {
			tl = make([]float64, t.NB*t.NB)
		}
		t.tiles[ix] = tl
	}
	return tl
}

// SetTile installs data as local tile (i, j).
func (t *TileMatrix) SetTile(i, j int, data []float64) { t.tiles[i*t.NT+j] = data }

// FillSymmetricPD fills the lower tiles (i >= j) with the deterministic
// symmetric positive definite test matrix
// A[i][j] = 1/(1+|i-j|) + boost*delta_ij, which is strictly diagonally
// dominant and locally computable on every rank.
func (t *TileMatrix) FillSymmetricPD() {
	n := t.NT * t.NB
	boost := 4 + 2*math.Log(float64(n))
	for i := 0; i < t.MT; i++ {
		for j := 0; j <= i && j < t.NT; j++ {
			if !t.Mine(i, j) {
				continue
			}
			tl := t.Tile(i, j)
			for c := 0; c < t.NB; c++ {
				for r := 0; r < t.NB; r++ {
					gi, gj := i*t.NB+r, j*t.NB+c
					v := spdEntry(gi, gj, boost)
					tl[r+c*t.NB] = v
				}
			}
		}
	}
}

func spdEntry(i, j int, boost float64) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	v := 1.0 / float64(1+d)
	if i == j {
		v += boost
	}
	return v
}

// FillGeneral fills all local tiles with a deterministic dense test matrix.
func (t *TileMatrix) FillGeneral(seed uint64) {
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			if !t.Mine(i, j) {
				continue
			}
			tl := t.Tile(i, j)
			for c := 0; c < t.NB; c++ {
				for r := 0; r < t.NB; r++ {
					gi, gj := i*t.NB+r, j*t.NB+c
					tl[r+c*t.NB] = generalEntry(gi, gj, seed)
				}
			}
		}
	}
}

// generalEntry is a deterministic pseudo-random value in [-1, 1) derived
// from the global coordinates, so every rank generates consistent data.
func generalEntry(i, j int, seed uint64) float64 {
	h := seed + uint64(i)*0x9e3779b97f4a7c15 + uint64(j)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return 2*float64(h>>11)/(1<<53) - 1
}

// GatherDense assembles the full matrix on grid rank root using the raw
// (unprofiled) communicator, zero-filling tiles that were never written.
// Verification traffic must not enter the kernel profiles.
func (t *TileMatrix) GatherDense(root int) []float64 {
	raw := t.G.All.Raw()
	me := raw.Rank()
	m, n := t.MT*t.NB, t.NT*t.NB
	var full []float64
	if me == root {
		full = make([]float64, m*n)
	}
	buf := make([]float64, t.NB*t.NB)
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			owner := t.Owner(i, j)
			tag := 1<<20 + i*t.NT + j
			switch {
			case owner == root && me == root:
				if tl := t.tiles[i*t.NT+j]; tl != nil {
					copyTileIntoDense(full, m, tl, i, j, t.NB)
				}
			case me == owner:
				tl := t.tiles[i*t.NT+j]
				if tl == nil {
					tl = buf
					for k := range tl {
						tl[k] = 0
					}
				}
				raw.Send(root, tag, tl)
			case me == root:
				raw.Recv(owner, tag, buf)
				copyTileIntoDense(full, m, buf, i, j, t.NB)
			}
		}
	}
	return full
}

func copyTileIntoDense(full []float64, ld int, tile []float64, i, j, nb int) {
	for c := 0; c < nb; c++ {
		copy(full[i*nb+(j*nb+c)*ld:i*nb+(j*nb+c)*ld+nb], tile[c*nb:(c+1)*nb])
	}
}

// tileBcast moves one buffer from owner to every rank in recips (sorted,
// distinct grid ranks) using profiled isend/recv. Every rank must call it
// with identical arguments; returns the tile contents on ranks in recips and
// on the owner, nil elsewhere. Isend requests are appended to reqs for
// deferred completion. A non-nil pool supplies receive buffers that the
// caller recycles (Put) once the tile is consumed.
func tileBcast(cc *critter.Comm, owner int, recips []int, tag int, buf []float64, words int, reqs *[]*critter.Request, pool *mpi.BufPool) []float64 {
	me := cc.Rank()
	if me == owner {
		for _, r := range recips {
			if r != owner {
				*reqs = append(*reqs, cc.Isend(r, tag, buf))
			}
		}
		return buf
	}
	for _, r := range recips {
		if r == me {
			var in []float64
			if pool != nil {
				in = pool.Get(words)
			} else {
				in = make([]float64, words)
			}
			cc.Recv(owner, tag, in)
			return in
		}
	}
	return nil
}

// rankScratch reuses the recipient-set and sorted-recipient storage across
// the thousands of tile broadcasts of one factorization, which would
// otherwise allocate a fresh map and slice each (the sweep executor's
// allocation budget is dominated by exactly this kind of per-step churn).
type rankScratch struct {
	marks []bool
	ranks []int
}

func newRankScratch(size int) *rankScratch {
	return &rankScratch{marks: make([]bool, size), ranks: make([]int, 0, size)}
}

// reset clears and returns the reusable recipient mark vector, indexed by
// grid rank. A dense bool vector, not a map: recipient sets are built per
// tile broadcast and the rank space is small.
func (s *rankScratch) reset() []bool {
	clear(s.marks)
	return s.marks
}

// sorted returns the currently marked ranks in increasing order, valid
// until the next reset (scanning the marks in index order sorts for free).
func (s *rankScratch) sorted() []int {
	out := s.ranks[:0]
	for r, m := range s.marks {
		if m {
			out = append(out, r)
		}
	}
	s.ranks = out
	return out
}
