package slate

import (
	"fmt"

	"critter/internal/blas"
	"critter/internal/critter"
)

// CholConfig parameterizes SLATE's tiled Cholesky (potrf): matrix dimension
// N, tile size NB, lookahead depth (0 or 1), and the process grid shape.
// These are the tuning dimensions of the paper's second case study
// (Section V-C: pipeline depth v%2, tile size 256+64*floor(v/2)).
type CholConfig struct {
	N         int
	NB        int
	Lookahead int
	PR, PC    int
}

// Validate checks the configuration against the communicator size.
func (c CholConfig) Validate(worldSize int) error {
	if c.N%c.NB != 0 {
		return fmt.Errorf("slate: N=%d not divisible by NB=%d", c.N, c.NB)
	}
	if c.PR*c.PC != worldSize {
		return fmt.Errorf("slate: grid %dx%d != world %d", c.PR, c.PC, worldSize)
	}
	if c.Lookahead < 0 || c.Lookahead > 1 {
		return fmt.Errorf("slate: lookahead %d not in {0,1}", c.Lookahead)
	}
	return nil
}

// Cholesky runs the tiled right-looking Cholesky factorization with
// lookahead pipelining. The lower tiles of a are overwritten by L. All
// kernels (potrf, trsm, syrk, gemm) and all tile communication (isend/recv)
// run through the profiler.
func Cholesky(p *critter.Profiler, a *TileMatrix, cfg CholConfig) {
	nt := a.NT
	nb := a.NB
	cc := a.G.All
	me := cc.Rank()

	// panelTiles caches the factored column-k tiles this rank received:
	// panelTiles[k][i] is L(i,k) for locally needed i.
	panelTiles := make(map[int]map[int][]float64)
	sc := newRankScratch(cc.Size())
	// Received panel tiles recycle through the world's buffer pool (when
	// the executor threaded one) and cache maps through a local freelist,
	// once their panel's updates complete; tiles aliasing the matrix's own
	// storage are never pooled. At most lookahead+1 panels are live, so
	// the steady state allocates nothing.
	bufs := cc.Raw().World().BufPoolOf()
	var cachePool []map[int][]float64
	panelRecv := make(map[int][][]float64)
	newCache := func() map[int][]float64 {
		if n := len(cachePool); n > 0 {
			m := cachePool[n-1]
			cachePool = cachePool[:n-1]
			clear(m)
			return m
		}
		return make(map[int][]float64)
	}
	retirePanel := func(k int) {
		for _, b := range panelRecv[k] {
			bufs.Put(b)
		}
		delete(panelRecv, k)
		if m, ok := panelTiles[k]; ok {
			cachePool = append(cachePool, m)
			delete(panelTiles, k)
		}
	}

	// panel factors tile column k: potrf on the diagonal tile, trsm below,
	// then broadcasts each L(i,k) to the ranks that will consume it.
	panel := func(k int, reqs *[]*critter.Request) {
		cache := newCache()
		panelTiles[k] = cache
		diagOwner := a.Owner(k, k)
		if me == diagOwner {
			lkk := a.Tile(k, k)
			if err := p.Potrf(nb, lkk, nb); err != nil {
				_ = err // tolerated during selective execution (garbage inputs)
			}
		}
		// L(k,k) goes to owners of tiles (i,k), i>k (the trsm workers).
		need := sc.reset()
		for i := k + 1; i < nt; i++ {
			if o := a.Owner(i, k); o != diagOwner {
				need[o] = true
			}
		}
		var lkk []float64
		if got := tileBcast(cc, diagOwner, sc.sorted(), tag(k, k, 0, nt), tileOrNil(a, k, k, me == diagOwner), nb*nb, reqs, bufs); got != nil {
			lkk = got
			if me != diagOwner {
				panelRecv[k] = append(panelRecv[k], got)
			}
		}
		if me == diagOwner {
			cache[k] = a.Tile(k, k)
		} else if lkk != nil {
			cache[k] = lkk
		}
		// trsm: L(i,k) = A(i,k) * L(k,k)^-T for local tiles below.
		for i := k + 1; i < nt; i++ {
			if !a.Mine(i, k) {
				continue
			}
			p.Trsm(blas.Right, blas.Lower, true, blas.NonUnit, nb, nb, 1, cache[k], nb, a.Tile(i, k), nb)
		}
		// Broadcast each L(i,k) to the ranks holding trailing tiles that
		// consume it: row i holders (left operand) and column i holders
		// (transposed right operand).
		for i := k + 1; i < nt; i++ {
			owner := a.Owner(i, k)
			need := sc.reset()
			for j := k + 1; j <= i; j++ {
				if o := a.Owner(i, j); o != owner {
					need[o] = true
				}
			}
			for i2 := i; i2 < nt; i2++ {
				if o := a.Owner(i2, i); o != owner {
					need[o] = true
				}
			}
			got := tileBcast(cc, owner, sc.sorted(), tag(k, i, 1, nt), tileOrNil(a, i, k, me == owner), nb*nb, reqs, bufs)
			if got != nil {
				cache[i] = got
				if me != owner {
					panelRecv[k] = append(panelRecv[k], got)
				}
			}
		}
	}

	// updateColumn applies panel k's update to tile column j of the
	// trailing matrix: A(i,j) -= L(i,k) L(j,k)^T (syrk on the diagonal).
	updateColumn := func(j, k int) {
		cache := panelTiles[k]
		for i := j; i < nt; i++ {
			if !a.Mine(i, j) {
				continue
			}
			lik, ljk := cache[i], cache[j]
			if lik == nil || ljk == nil {
				panic(fmt.Sprintf("slate: rank %d missing panel tiles for update (%d,%d) from panel %d", me, i, j, k))
			}
			if i == j {
				p.Syrk(blas.Lower, false, nb, nb, -1, ljk, nb, 1, a.Tile(j, j), nb)
			} else {
				p.Gemm(false, true, nb, nb, nb, -1, lik, nb, ljk, nb, 1, a.Tile(i, j), nb)
			}
		}
	}

	var reqs []*critter.Request
	if nt > 0 {
		panel(0, &reqs)
	}
	for k := 0; k < nt; k++ {
		if k+1 < nt {
			// Lookahead column: complete the next panel's column first.
			updateColumn(k+1, k)
			if cfg.Lookahead >= 1 {
				// Pipelined: factor the next panel before the bulk update,
				// so its tiles are in flight during the trailing update.
				panel(k+1, &reqs)
			}
		}
		for j := k + 2; j < nt; j++ {
			updateColumn(j, k)
		}
		if cfg.Lookahead == 0 && k+1 < nt {
			panel(k+1, &reqs)
		}
		retirePanel(k)
		critter.Waitall(reqs)
		reqs = reqs[:0]
	}
}

func tileOrNil(a *TileMatrix, i, j int, mine bool) []float64 {
	if mine {
		return a.Tile(i, j)
	}
	return nil
}

// tag builds a unique message tag for panel k, tile row i, and phase.
func tag(k, i, phase, nt int) int { return (k*nt+i)*8 + phase }
