package slate

import (
	"fmt"

	"critter/internal/critter"
)

// QRConfig parameterizes SLATE's tiled Householder QR (geqrf): matrix shape
// M x N, tile size NB, inner blocking IB (the paper's "smaller panel width"
// w), and the process grid. These are the tuning dimensions of the paper's
// fourth case study (Section V-C: w = 8*2^(v%3), panel width
// 256+64*floor(v/3)%7, grid 64/2^floor(v/21) x 4*2^floor(v/21)).
type QRConfig struct {
	M, N   int
	NB     int
	IB     int
	PR, PC int
}

// Validate checks the configuration against the communicator size.
func (c QRConfig) Validate(worldSize int) error {
	switch {
	case c.M%c.NB != 0 || c.N%c.NB != 0:
		return fmt.Errorf("slate: dims %dx%d not divisible by NB=%d", c.M, c.N, c.NB)
	case c.M < c.N:
		return fmt.Errorf("slate: QR requires M >= N (%d < %d)", c.M, c.N)
	case c.IB < 1 || c.IB > c.NB:
		return fmt.Errorf("slate: IB=%d outside [1, NB=%d]", c.IB, c.NB)
	case c.PR*c.PC != worldSize:
		return fmt.Errorf("slate: grid %dx%d != world %d", c.PR, c.PC, worldSize)
	}
	return nil
}

// QR runs the tiled Householder QR factorization: geqrt on diagonal tiles,
// tpqrt chains down each tile column, and gemqrt/tpmqrt updates across the
// trailing tiles, communicating tiles with profiled isend/recv. On return,
// tile rows k hold the R factor in tiles (k, j), j >= k; the lower tiles
// hold the Householder reflectors.
func QR(p *critter.Profiler, a *TileMatrix, cfg QRConfig) {
	mt, nt, nb, ib := a.MT, a.NT, a.NB, cfg.IB
	cc := a.G.All
	me := cc.Rank()
	sc := newRankScratch(cc.Size())
	vWords := nb*nb + ib*nb // a V tile with its stacked T factor

	tagOf := func(k, i, j, phase int) int {
		return ((k*mt+i)*(nt+1)+j)*8 + phase
	}

	for k := 0; k < nt; k++ {
		var reqs []*critter.Request
		diagOwner := a.Owner(k, k)

		// Factor the diagonal tile and broadcast [V|T] along tile row k.
		var vkk, tkk []float64
		if me == diagOwner {
			vkk = a.Tile(k, k)
			tkk = make([]float64, ib*nb)
			tau := make([]float64, nb)
			p.Geqrt(nb, nb, ib, vkk, nb, tkk, ib, tau)
		}
		rowNeed := sc.reset()
		for j := k + 1; j < nt; j++ {
			if o := a.Owner(k, j); o != diagOwner {
				rowNeed[o] = true
			}
		}
		var send []float64
		if me == diagOwner {
			send = append(append([]float64(nil), vkk...), tkk...)
		}
		if got := tileBcast(cc, diagOwner, sc.sorted(), tagOf(k, k, 0, 0), send, vWords, &reqs, nil); got != nil && me != diagOwner {
			vkk, tkk = got[:nb*nb], got[nb*nb:]
		}
		// Apply Q_kk^T to the rest of tile row k.
		for j := k + 1; j < nt; j++ {
			if !a.Mine(k, j) {
				continue
			}
			p.Gemqrt(true, nb, nb, nb, ib, vkk, nb, tkk, ib, a.Tile(k, j), nb)
		}

		// tpqrt chain down tile column k. The running R starts as the
		// upper triangle of the factored diagonal tile and migrates from
		// owner to owner; each step leaves V(i,k)/T(i,k) at the owner of
		// tile (i,k) and broadcasts them along tile row i.
		var r []float64
		if me == diagOwner {
			r = make([]float64, nb*nb)
			for c := 0; c < nb; c++ {
				for rr := 0; rr <= c; rr++ {
					r[rr+c*nb] = vkk[rr+c*nb]
				}
			}
		}
		cur := diagOwner
		vT := make(map[int][2][]float64) // i -> {V(i,k), T(i,k)} if needed locally
		for i := k + 1; i < mt; i++ {
			o := a.Owner(i, k)
			if o != cur {
				if me == cur {
					reqs = append(reqs, cc.Isend(o, tagOf(k, i, 0, 1), r))
				} else if me == o {
					r = make([]float64, nb*nb)
					cc.Recv(cur, tagOf(k, i, 0, 1), r)
				}
			}
			var vik, tik []float64
			if me == o {
				vik = a.Tile(i, k)
				tik = make([]float64, ib*nb)
				p.Tpqrt(nb, nb, ib, r, nb, vik, nb, tik, ib)
			}
			need := sc.reset()
			for j := k + 1; j < nt; j++ {
				if ow := a.Owner(i, j); ow != o {
					need[ow] = true
				}
			}
			var vsend []float64
			if me == o {
				vsend = append(append([]float64(nil), vik...), tik...)
			}
			if got := tileBcast(cc, o, sc.sorted(), tagOf(k, i, 0, 3), vsend, vWords, &reqs, nil); got != nil {
				vT[i] = [2][]float64{got[:nb*nb], got[nb*nb:]}
			} else if me == o {
				vT[i] = [2][]float64{vik, tik}
			}
			cur = o
		}
		// Return the fully reduced R to the diagonal tile.
		if cur != diagOwner {
			if me == cur {
				reqs = append(reqs, cc.Isend(diagOwner, tagOf(k, k, 0, 2), r))
			} else if me == diagOwner {
				cc.Recv(cur, tagOf(k, k, 0, 2), r)
			}
		}
		if me == diagOwner {
			for c := 0; c < nb; c++ {
				for rr := 0; rr <= c; rr++ {
					vkk[rr+c*nb] = r[rr+c*nb]
				}
			}
		}

		// Pair updates: for every trailing column j the top tile (k,j)
		// migrates down the chain, combined with each local tile (i,j).
		for j := k + 1; j < nt; j++ {
			topOwner := a.Owner(k, j)
			var top []float64
			if me == topOwner {
				top = a.Tile(k, j)
			}
			cur := topOwner
			for i := k + 1; i < mt; i++ {
				o := a.Owner(i, j)
				if o != cur {
					if me == cur {
						reqs = append(reqs, cc.Isend(o, tagOf(k, i, j, 4), top))
					} else if me == o {
						top = make([]float64, nb*nb)
						cc.Recv(cur, tagOf(k, i, j, 4), top)
					}
				}
				if me == o {
					pair := vT[i]
					if pair[0] == nil {
						panic(fmt.Sprintf("slate: rank %d missing V(%d,%d) for update of (%d,%d)", me, i, k, i, j))
					}
					p.Tpmqrt(true, nb, nb, nb, ib, pair[0], nb, pair[1], ib, top, nb, a.Tile(i, j), nb)
				}
				cur = o
			}
			if cur != topOwner {
				if me == cur {
					reqs = append(reqs, cc.Isend(topOwner, tagOf(k, k, j, 5), top))
				} else if me == topOwner {
					top = make([]float64, nb*nb)
					cc.Recv(cur, tagOf(k, k, j, 5), top)
				}
			}
			if me == topOwner {
				// The chain may have migrated the top tile into a fresh
				// buffer even when it ended here; write it back.
				copy(a.Tile(k, j), top)
			}
		}
		critter.Waitall(reqs)
	}
}
