package slate

import (
	"math"
	"testing"

	"critter/internal/blas"
	"critter/internal/critter"
	"critter/internal/grid"
	"critter/internal/mpi"
	"critter/internal/sim"
)

func runGrid(t *testing.T, pr, pc int, eps float64, policy critter.Policy,
	body func(p *critter.Profiler, g *grid.Grid2D)) {
	t.Helper()
	m := sim.DefaultMachine()
	w := mpi.NewWorld(pr*pc, m, 11)
	if err := w.Run(func(c *mpi.Comm) {
		p, cc := critter.New(c, critter.Options{Policy: policy, Eps: eps})
		g := grid.New2D(cc, pr, pc)
		body(p, g)
	}); err != nil {
		t.Fatalf("world: %v", err)
	}
}

func frob(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestCholConfigValidate(t *testing.T) {
	ok := CholConfig{N: 64, NB: 8, PR: 2, PC: 2}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CholConfig{
		{N: 65, NB: 8, PR: 2, PC: 2},
		{N: 64, NB: 8, PR: 2, PC: 3},
		{N: 64, NB: 8, PR: 2, PC: 2, Lookahead: 2},
	}
	for i, c := range bad {
		if c.Validate(4) == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func testCholeskyResidual(t *testing.T, pr, pc, n, nb, la int) {
	cfg := CholConfig{N: n, NB: nb, Lookahead: la, PR: pr, PC: pc}
	if err := cfg.Validate(pr * pc); err != nil {
		t.Fatal(err)
	}
	runGrid(t, pr, pc, 0, critter.Conditional, func(p *critter.Profiler, g *grid.Grid2D) {
		nt := n / nb
		a := NewTileMatrix(g, nt, nt, nb)
		a.FillSymmetricPD()
		ref := a.GatherDense(0)
		Cholesky(p, a, cfg)
		l := a.GatherDense(0)
		if g.All.Rank() != 0 {
			return
		}
		// Zero above-diagonal, rebuild A, compare.
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				l[i+j*n] = 0
				ref[i+j*n] = ref[j+i*n] // mirror lower reference for comparison
			}
		}
		llt := make([]float64, n*n)
		blas.Dgemm(false, true, n, n, n, 1, l, n, l, n, 0, llt, n)
		diff := make([]float64, n*n)
		for i := range diff {
			diff[i] = llt[i] - ref[i]
		}
		if rel := frob(diff) / frob(ref); rel > 1e-10 {
			t.Errorf("grid %dx%d n=%d nb=%d la=%d: ||A-LL^T||/||A|| = %g", pr, pc, n, nb, la, rel)
		}
	})
}

func TestCholeskyResidual2x2(t *testing.T)       { testCholeskyResidual(t, 2, 2, 48, 8, 0) }
func TestCholeskyResidualLookahead(t *testing.T) { testCholeskyResidual(t, 2, 2, 48, 8, 1) }
func TestCholeskyResidual1x4(t *testing.T)       { testCholeskyResidual(t, 1, 4, 32, 8, 0) }
func TestCholeskyResidual4x1(t *testing.T)       { testCholeskyResidual(t, 4, 1, 32, 8, 1) }
func TestCholeskyResidual2x3(t *testing.T)       { testCholeskyResidual(t, 2, 3, 36, 6, 0) }

func TestCholeskyLookaheadSameFactor(t *testing.T) {
	// Lookahead reorders operations but must produce the same factor.
	n, nb := 32, 8
	var l0, l1 []float64
	for _, la := range []int{0, 1} {
		cfg := CholConfig{N: n, NB: nb, Lookahead: la, PR: 2, PC: 2}
		runGrid(t, 2, 2, 0, critter.Conditional, func(p *critter.Profiler, g *grid.Grid2D) {
			a := NewTileMatrix(g, n/nb, n/nb, nb)
			a.FillSymmetricPD()
			Cholesky(p, a, cfg)
			got := a.GatherDense(0)
			if g.All.Rank() == 0 {
				if la == 0 {
					l0 = got
				} else {
					l1 = got
				}
			}
		})
	}
	for i := range l0 {
		if math.Abs(l0[i]-l1[i]) > 1e-11 {
			t.Fatalf("lookahead changed the factor at %d: %g vs %g", i, l0[i], l1[i])
		}
	}
}

func TestCholeskySelectiveExecutionRuns(t *testing.T) {
	// Under selective execution numerics are garbage, but the schedule
	// must complete without hangs and skip a nontrivial number of kernels.
	cfg := CholConfig{N: 64, NB: 8, Lookahead: 0, PR: 2, PC: 2}
	runGrid(t, 2, 2, 0.4, critter.Online, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewTileMatrix(g, 8, 8, 8)
		a.FillSymmetricPD()
		Cholesky(p, a, cfg)
		rep := p.Report()
		if g.All.Rank() == 0 && rep.Skipped == 0 {
			t.Error("no kernels skipped at loose tolerance")
		}
	})
}

func testQRGram(t *testing.T, pr, pc, m, n, nb, ib int) {
	cfg := QRConfig{M: m, N: n, NB: nb, IB: ib, PR: pr, PC: pc}
	if err := cfg.Validate(pr * pc); err != nil {
		t.Fatal(err)
	}
	runGrid(t, pr, pc, 0, critter.Conditional, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewTileMatrix(g, m/nb, n/nb, nb)
		a.FillGeneral(5)
		orig := a.GatherDense(0)
		QR(p, a, cfg)
		r := a.GatherDense(0)
		if g.All.Rank() != 0 {
			return
		}
		// R is the upper triangle; A^T A must equal R^T R.
		for j := 0; j < n; j++ {
			for i := j + 1; i < m; i++ {
				r[i+j*m] = 0
			}
		}
		ata := make([]float64, n*n)
		rtr := make([]float64, n*n)
		blas.Dgemm(true, false, n, n, m, 1, orig, m, orig, m, 0, ata, n)
		blas.Dgemm(true, false, n, n, m, 1, r, m, r, m, 0, rtr, n)
		diff := make([]float64, n*n)
		for i := range diff {
			diff[i] = ata[i] - rtr[i]
		}
		if rel := frob(diff) / frob(ata); rel > 1e-10 {
			t.Errorf("grid %dx%d %dx%d nb=%d ib=%d: ||A^TA - R^TR||/||A^TA|| = %g",
				pr, pc, m, n, nb, ib, rel)
		}
	})
}

func TestQRGram2x2(t *testing.T)         { testQRGram(t, 2, 2, 64, 32, 8, 4) }
func TestQRGramInnerBlock1(t *testing.T) { testQRGram(t, 2, 2, 48, 16, 8, 8) }
func TestQRGram4x1(t *testing.T)         { testQRGram(t, 4, 1, 64, 16, 8, 2) }
func TestQRGram1x4(t *testing.T)         { testQRGram(t, 1, 4, 32, 32, 8, 4) }

func TestQRSquare(t *testing.T) { testQRGram(t, 2, 2, 32, 32, 8, 4) }

func TestQRConfigValidate(t *testing.T) {
	if (QRConfig{M: 32, N: 64, NB: 8, IB: 4, PR: 2, PC: 2}).Validate(4) == nil {
		t.Error("M < N accepted")
	}
	if (QRConfig{M: 64, N: 32, NB: 8, IB: 16, PR: 2, PC: 2}).Validate(4) == nil {
		t.Error("IB > NB accepted")
	}
}

func TestTileMatrixOwnership(t *testing.T) {
	runGrid(t, 2, 2, 0, critter.Conditional, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewTileMatrix(g, 4, 4, 8)
		owners := map[int]bool{}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				owners[a.Owner(i, j)] = true
				if a.Owner(i, j) != g.RankOf(i%2, j%2) {
					t.Errorf("tile (%d,%d) owner %d", i, j, a.Owner(i, j))
				}
			}
		}
		if len(owners) != 4 {
			t.Errorf("expected 4 distinct owners, got %d", len(owners))
		}
	})
}
