package sim

import (
	"fmt"
	"math"
)

// Machine is an alpha-beta-gamma cost model of a distributed-memory computer.
// All times are in (virtual) seconds, sizes in bytes, work in flops.
//
//   - Alpha: per-message latency (one network traversal).
//   - Beta: inverse bandwidth, seconds per byte.
//   - Gamma: seconds per floating-point operation at peak.
//   - CollectiveTree: if true, collectives over p ranks cost
//     ceil(log2 p) * (Alpha + Beta*n) (binomial-tree style); if false they
//     cost a single Alpha + Beta*n super-step (flat BSP model).
//   - NoiseSigma: shape parameter of the multiplicative log-normal noise
//     applied to every sampled kernel duration. Zero disables noise.
//   - ComputeEfficiency maps a kernel's arithmetic intensity to sustained
//     fraction of peak; small kernels run far below peak on real machines,
//     which is what makes per-signature distributions differ.
//
// Defaults approximate one Stampede2 KNL node group: 1-2 us latency,
// ~12.5 GB/s injection bandwidth shared per rank, ~3 Tflop/s node across 64
// ranks (~46 Gflop/s per rank).
type Machine struct {
	Alpha      float64 // latency, seconds
	Beta       float64 // seconds per byte
	Gamma      float64 // seconds per flop at peak
	NoiseSigma float64 // log-normal sigma for duration noise

	// CollectiveTree selects log-p tree collectives (true) or flat
	// single-step collectives (false).
	CollectiveTree bool

	// MinEfficiency is the sustained fraction of peak for tiny kernels;
	// efficiency rises toward 1 as kernel flops grow past EffScaleFlops.
	MinEfficiency float64
	EffScaleFlops float64
}

// DefaultMachine returns the calibrated model used by the experiments.
func DefaultMachine() Machine {
	return Machine{
		Alpha:          2e-6,
		Beta:           1.0 / 2.0e9, // 2 GB/s per-rank effective bandwidth
		Gamma:          1.0 / 20e9,  // 20 Gflop/s sustained per rank
		NoiseSigma:     0.05,
		CollectiveTree: true,
		MinEfficiency:  0.05,
		EffScaleFlops:  5e6,
	}
}

// Validate reports whether the model parameters are usable.
func (m Machine) Validate() error {
	switch {
	case m.Alpha < 0:
		return fmt.Errorf("sim: negative Alpha %g", m.Alpha)
	case m.Beta < 0:
		return fmt.Errorf("sim: negative Beta %g", m.Beta)
	case m.Gamma < 0:
		return fmt.Errorf("sim: negative Gamma %g", m.Gamma)
	case m.NoiseSigma < 0:
		return fmt.Errorf("sim: negative NoiseSigma %g", m.NoiseSigma)
	case m.MinEfficiency <= 0 || m.MinEfficiency > 1:
		return fmt.Errorf("sim: MinEfficiency %g outside (0,1]", m.MinEfficiency)
	}
	return nil
}

// PtToPtTime returns the noiseless cost of moving n bytes point-to-point.
func (m Machine) PtToPtTime(n int) float64 {
	return m.Alpha + m.Beta*float64(n)
}

// CollectiveTime returns the noiseless cost of a collective moving n bytes
// among p ranks. Reductions and broadcasts share this shape; the caller can
// scale n for all-gather-style operations where volume grows with p.
func (m Machine) CollectiveTime(n, p int) float64 {
	if p <= 1 {
		return 0
	}
	steps := 1.0
	if m.CollectiveTree {
		steps = math.Ceil(math.Log2(float64(p)))
	}
	return steps * (m.Alpha + m.Beta*float64(n))
}

// ComputeTime returns the noiseless cost of a computational kernel performing
// the given flops, accounting for reduced efficiency of small kernels.
func (m Machine) ComputeTime(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	eff := 1.0
	if m.EffScaleFlops > 0 {
		eff = m.MinEfficiency + (1-m.MinEfficiency)*(flops/(flops+m.EffScaleFlops))
	}
	return flops * m.Gamma / eff
}

// Noise draws one multiplicative noise factor from the stream rng.
func (m Machine) Noise(rng *RNG) float64 {
	if m.NoiseSigma == 0 {
		return 1
	}
	return rng.LogNormal(m.NoiseSigma)
}

// Clock is a per-rank virtual clock. It is confined to its rank's goroutine;
// cross-rank synchronization happens by exchanging timestamps inside the
// message-passing runtime, never by sharing a Clock.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. Negative advances are
// ignored: virtual time never runs backward.
func (c *Clock) Advance(dt float64) {
	if dt > 0 {
		c.now += dt
	}
}

// AdvanceTo moves the clock to at least t.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero (used between tuning configurations).
func (c *Clock) Reset() { c.now = 0 }
