// Package sim provides the virtual-time substrate used by the simulated
// message-passing runtime: per-rank clocks, an alpha-beta-gamma machine model
// that assigns costs to computation and communication, and deterministic
// noise streams that emulate run-to-run performance variability of a real
// machine (the paper's experiments ran on Stampede2, where variability was
// observed to be high).
//
// All randomness is derived from splitmix64 streams seeded from (experiment
// seed, rank, kernel signature), so a fixed seed yields bitwise-identical
// virtual timings across runs regardless of goroutine scheduling.
package sim

import "math"

// RNG is a splitmix64 pseudo-random generator. It is tiny, allocation-free,
// and statistically adequate for timing-noise synthesis. The zero value is a
// valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. Two uniforms are consumed per call.
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normal variate with unit median and the given
// sigma (the shape parameter of the underlying normal).
func (r *RNG) LogNormal(sigma float64) float64 {
	return math.Exp(sigma * r.NormFloat64())
}

// Mix combines seed material into a single stream seed. It hashes each word
// through the splitmix64 finalizer so nearby inputs yield unrelated streams.
func Mix(words ...uint64) uint64 {
	var h uint64 = 0x2545f4914f6cdd1d
	for _, w := range words {
		h ^= w + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return h
}

// HashString folds a string into seed material for Mix.
func HashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
