package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(uint8) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(1234)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestLogNormalMedianAndPositivity(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	above := 0
	for i := 0; i < n; i++ {
		x := r.LogNormal(0.3)
		if x <= 0 {
			t.Fatalf("log-normal produced non-positive %g", x)
		}
		if x > 1 {
			above++
		}
	}
	frac := float64(above) / n
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("log-normal median fraction above 1 = %g, want ~0.5", frac)
	}
}

func TestMixSensitivity(t *testing.T) {
	a := Mix(1, 2, 3)
	b := Mix(1, 2, 4)
	c := Mix(1, 3, 2)
	if a == b || a == c || b == c {
		t.Fatalf("Mix collisions: %x %x %x", a, b, c)
	}
	if Mix(1, 2, 3) != a {
		t.Fatal("Mix is not deterministic")
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("gemm") == HashString("syrk") {
		t.Fatal("HashString collision on distinct inputs")
	}
	if HashString("x") != HashString("x") {
		t.Fatal("HashString not deterministic")
	}
}

func TestMachineValidate(t *testing.T) {
	m := DefaultMachine()
	if err := m.Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
	bad := m
	bad.Alpha = -1
	if bad.Validate() == nil {
		t.Error("negative alpha accepted")
	}
	bad = m
	bad.MinEfficiency = 0
	if bad.Validate() == nil {
		t.Error("zero MinEfficiency accepted")
	}
	bad = m
	bad.NoiseSigma = -0.1
	if bad.Validate() == nil {
		t.Error("negative noise accepted")
	}
}

func TestPtToPtTimeMonotone(t *testing.T) {
	m := DefaultMachine()
	if m.PtToPtTime(0) != m.Alpha {
		t.Errorf("zero-byte message should cost alpha, got %g", m.PtToPtTime(0))
	}
	prev := 0.0
	for _, n := range []int{1, 10, 100, 1000, 100000} {
		c := m.PtToPtTime(n)
		if c <= prev {
			t.Errorf("cost not increasing at %d bytes", n)
		}
		prev = c
	}
}

func TestCollectiveTimeTreeVsFlat(t *testing.T) {
	m := DefaultMachine()
	m.CollectiveTree = true
	tree := m.CollectiveTime(1024, 16)
	m.CollectiveTree = false
	flat := m.CollectiveTime(1024, 16)
	if tree <= flat {
		t.Errorf("tree collective (%g) should cost more than flat (%g) for p=16", tree, flat)
	}
	if m.CollectiveTime(1024, 1) != 0 {
		t.Error("single-rank collective should be free")
	}
}

func TestComputeTimeEfficiency(t *testing.T) {
	m := DefaultMachine()
	// Per-flop cost must decrease with kernel size (efficiency rises).
	small := m.ComputeTime(1e3) / 1e3
	large := m.ComputeTime(1e9) / 1e9
	if small <= large {
		t.Errorf("per-flop cost should shrink with size: small %g, large %g", small, large)
	}
	if m.ComputeTime(0) != 0 || m.ComputeTime(-5) != 0 {
		t.Error("non-positive flops should cost zero")
	}
	// Large kernels approach gamma.
	if ratio := large / m.Gamma; ratio > 1.05 {
		t.Errorf("large-kernel per-flop cost %g too far above gamma %g", large, m.Gamma)
	}
}

func TestNoiseDisabled(t *testing.T) {
	m := DefaultMachine()
	m.NoiseSigma = 0
	r := NewRNG(5)
	for i := 0; i < 10; i++ {
		if f := m.Noise(r); f != 1 {
			t.Fatalf("noise with sigma=0 should be 1, got %g", f)
		}
	}
}

func TestNoiseMeanNearOne(t *testing.T) {
	m := DefaultMachine()
	m.NoiseSigma = 0.05
	r := NewRNG(11)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += m.Noise(r)
	}
	mean := sum / n
	if mean < 0.99 || mean > 1.02 {
		t.Errorf("noise mean = %g, want ~exp(sigma^2/2)=1.00125", mean)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(1.5)
	c.Advance(-3) // ignored
	if c.Now() != 1.5 {
		t.Fatalf("clock = %g, want 1.5", c.Now())
	}
	c.AdvanceTo(1.0) // no rewind
	if c.Now() != 1.5 {
		t.Fatal("AdvanceTo rewound the clock")
	}
	c.AdvanceTo(2.5)
	if c.Now() != 2.5 {
		t.Fatalf("clock = %g, want 2.5", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestClockAdvanceNeverNegativeProperty(t *testing.T) {
	if err := quick.Check(func(steps []float64) bool {
		var c Clock
		prev := 0.0
		for _, dt := range steps {
			c.Advance(dt)
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
