package service

// The job-submission surface: the wire-level JobRequest, its strict JSON
// decoding, and validation against a workload registry. Every field a
// request can set is checked here — the scheduler and the HTTP layer only
// ever see fully resolved specs, and a malformed request is a plain error
// (the HTTP layer's 400), never a panic or a half-built job.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/workload"
)

// Request-size guards: a tuning grid is policies x eps sweeps, each a full
// simulation, so unbounded lists are a denial of service, not a use case.
const (
	maxEpsPerJob      = 64
	maxPoliciesPerJob = 16
)

// JobRequest is the JSON body of POST /v1/jobs. Zero-valued fields take
// the documented defaults; pointers distinguish "absent" from zero values
// that are meaningful (seed 0, noise 0).
type JobRequest struct {
	// Workload names a registered workload. Required.
	Workload string `json:"workload"`
	// Scale names one of the workload's declared scale presets. Default:
	// the workload's first (preferred) preset.
	Scale string `json:"scale,omitempty"`
	// Policies lists selective-execution policy names. Default: the
	// workload's declared default policies.
	Policies []string `json:"policies,omitempty"`
	// Eps lists the confidence tolerances to sweep. Default: [0.125].
	Eps []float64 `json:"eps,omitempty"`
	// Strategy is a search-strategy spec ("exhaustive", "random:N",
	// "halving[:ETA]"). Default: exhaustive.
	Strategy string `json:"strategy,omitempty"`
	// Seed seeds every sweep's world. Default: 42.
	Seed *uint64 `json:"seed,omitempty"`
	// NoiseSigma is the simulated machine's noise. Default: 0.05.
	NoiseSigma *float64 `json:"noiseSigma,omitempty"`
	// Extrapolate enables family-model extrapolation in the selective
	// profilers (how warm starts transfer across scales).
	Extrapolate bool `json:"extrapolate,omitempty"`
	// WarmStart seeds the job from the service's accumulated profile for
	// this workload, when one exists. Default: true.
	WarmStart *bool `json:"warmStart,omitempty"`
	// Dedup lets this submission coalesce with an identical in-flight or
	// memoized job (same fingerprint: workload, scale, policies, eps,
	// strategy, seed, noise, extrapolate, warmStart) instead of executing
	// again. Default: true. Disable for jobs that must run regardless —
	// e.g. to re-measure wall-clock behaviour.
	Dedup *bool `json:"dedup,omitempty"`
}

// jobSpec is a fully resolved, validated job: everything runJob needs,
// with no name left to resolve and no list left to bound-check.
type jobSpec struct {
	workload    workload.Workload
	scaleName   string
	scale       autotune.Scale
	policies    []critter.Policy
	policyNames []string
	eps         []float64
	strategy    autotune.Strategy
	seed        uint64
	noise       float64
	extrapolate bool
	warm        bool
	dedup       bool
	// fingerprint content-addresses the work: two specs with the same
	// fingerprint run byte-identical simulations (given the same prior),
	// so they are safe to coalesce.
	fingerprint string
	// req is the normalized request — every default filled in, every name
	// canonical — so a spec can be shipped to a worker process and
	// re-resolved there into the identical spec.
	req JobRequest
}

// ParseJobRequest strictly decodes a JSON job submission and validates it
// against reg (nil means the default workload registry): unknown fields,
// trailing data, unknown workloads/scales/policies/strategies, and
// non-finite or oversized tolerance lists are all errors.
func ParseJobRequest(reg *workload.Registry, data []byte) (*jobSpec, error) {
	if reg == nil {
		reg = workload.Default()
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("service: decode job request: %w", err)
	}
	// A second document after the first is a malformed request, not data
	// to silently ignore.
	if dec.More() {
		return nil, fmt.Errorf("service: decode job request: trailing data after JSON body")
	}
	return resolveJobRequest(reg, req)
}

// resolveJobRequest validates a decoded request and fills defaults.
func resolveJobRequest(reg *workload.Registry, req JobRequest) (*jobSpec, error) {
	if req.Workload == "" {
		return nil, fmt.Errorf("service: job request: missing workload (registered: %s)", joinOr(reg.Names(), "none"))
	}
	w, ok := reg.Lookup(req.Workload)
	if !ok {
		return nil, fmt.Errorf("service: job request: unknown workload %q (registered: %s)", req.Workload, joinOr(reg.Names(), "none"))
	}

	spec := &jobSpec{
		workload:    w,
		seed:        42,
		noise:       0.05,
		extrapolate: req.Extrapolate,
		warm:        true,
	}
	if req.Seed != nil {
		spec.seed = *req.Seed
	}
	if req.NoiseSigma != nil {
		if math.IsNaN(*req.NoiseSigma) || math.IsInf(*req.NoiseSigma, 0) || *req.NoiseSigma < 0 {
			return nil, fmt.Errorf("service: job request: bad noiseSigma %v", *req.NoiseSigma)
		}
		spec.noise = *req.NoiseSigma
	}
	if req.WarmStart != nil {
		spec.warm = *req.WarmStart
	}

	spec.scaleName = req.Scale
	if spec.scaleName == "" {
		spec.scaleName = w.Scales()[0].Name
	}
	scale, err := workload.ScaleOf(w, spec.scaleName)
	if err != nil {
		return nil, fmt.Errorf("service: job request: %w", err)
	}
	spec.scale = scale

	names := req.Policies
	if len(names) == 0 {
		for _, p := range w.Policies() {
			names = append(names, p.String())
		}
	}
	if len(names) > maxPoliciesPerJob {
		return nil, fmt.Errorf("service: job request: %d policies exceeds the limit of %d", len(names), maxPoliciesPerJob)
	}
	for _, name := range names {
		p, err := critter.ParsePolicy(name)
		if err != nil {
			return nil, fmt.Errorf("service: job request: %w", err)
		}
		spec.policies = append(spec.policies, p)
		spec.policyNames = append(spec.policyNames, p.String())
	}

	spec.eps = req.Eps
	if len(spec.eps) == 0 {
		spec.eps = []float64{0.125}
	}
	if len(spec.eps) > maxEpsPerJob {
		return nil, fmt.Errorf("service: job request: %d tolerances exceeds the limit of %d", len(spec.eps), maxEpsPerJob)
	}
	for _, e := range spec.eps {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("service: job request: bad eps %v", e)
		}
	}

	strategySpec := req.Strategy
	if strategySpec == "" {
		strategySpec = "exhaustive"
	}
	strat, err := autotune.ParseStrategy(strategySpec, spec.seed)
	if err != nil {
		return nil, fmt.Errorf("service: job request: %w", err)
	}
	spec.strategy = strat

	spec.dedup = true
	if req.Dedup != nil {
		spec.dedup = *req.Dedup
	}

	// Strategy names round-trip through ParseStrategy, so the normalized
	// request re-resolves to an identical spec on a worker.
	spec.req = JobRequest{
		Workload:    w.Name(),
		Scale:       spec.scaleName,
		Policies:    append([]string(nil), spec.policyNames...),
		Eps:         append([]float64(nil), spec.eps...),
		Strategy:    spec.strategy.Name(),
		Seed:        &spec.seed,
		NoiseSigma:  &spec.noise,
		Extrapolate: spec.extrapolate,
		WarmStart:   &spec.warm,
		Dedup:       &spec.dedup,
	}
	spec.fingerprint = fingerprintSpec(spec)
	return spec, nil
}

// fingerprintSpec content-addresses a resolved spec: SHA-256 over the
// canonical JSON of every field that determines the simulation's output.
// Dedup itself is excluded — it is routing policy, not work identity.
func fingerprintSpec(spec *jobSpec) string {
	canon := struct {
		Workload    string    `json:"workload"`
		Scale       string    `json:"scale"`
		Policies    []string  `json:"policies"`
		Eps         []float64 `json:"eps"`
		Strategy    string    `json:"strategy"`
		Seed        uint64    `json:"seed"`
		NoiseSigma  float64   `json:"noiseSigma"`
		Extrapolate bool      `json:"extrapolate"`
		WarmStart   bool      `json:"warmStart"`
	}{
		Workload:    spec.workload.Name(),
		Scale:       spec.scaleName,
		Policies:    spec.policyNames,
		Eps:         spec.eps,
		Strategy:    spec.strategy.Name(),
		Seed:        spec.seed,
		NoiseSigma:  spec.noise,
		Extrapolate: spec.extrapolate,
		WarmStart:   spec.warm,
	}
	data, err := json.Marshal(canon)
	if err != nil {
		// Every field above is a plain value; Marshal cannot fail.
		panic(fmt.Sprintf("service: fingerprint marshal: %v", err))
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data))
}

// joinOr renders a comma-joined list, or fallback when it is empty.
func joinOr(names []string, fallback string) string {
	if len(names) == 0 {
		return fallback
	}
	return strings.Join(names, ", ")
}
