package service

// Fuzzing of the job-submission gate: whatever bytes arrive in a POST
// /v1/jobs body, ParseJobRequest either rejects them with an error (the
// HTTP layer's 400) or returns a fully resolved spec — never a panic,
// never a half-built job. Under plain `go test` the seed corpus runs as
// ordinary unit tests.

import (
	"math"
	"strings"
	"testing"
)

func FuzzParseJobRequest(f *testing.F) {
	for _, seed := range []string{
		`{"workload":"candmc"}`,
		`{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125]}`,
		`{"workload":"capital","strategy":"halving:3","seed":7,"noiseSigma":0.1}`,
		`{"workload":"slate-qr","strategy":"random:16","warmStart":false,"extrapolate":true}`,
		`{"workload":"slate-qr","strategy":"surrogate:16","seed":3}`,
		`{"workload":"candmc","strategy":"surrogate:8:2"}`,
		`{"workload":"candmc","strategy":"surrogate:0"}`,
		`{"workload":"candmc","strategy":"surrogate:8:"}`,
		`{"workload":"cholesky3d","eps":[1,0.5,0.25]}`,
		`{"workload":"bogus"}`,
		`{"workload":"candmc","scale":"huge"}`,
		`{"workload":"candmc","policies":["bogus"]}`,
		`{"workload":"candmc","eps":[1e999]}`,
		`{"workload":"candmc","eps":["x"]}`,
		`{"workload":"candmc","strategy":"random:-1"}`,
		`{"workload":"candmc","seed":-1}`,
		`{"workload":"candmc","noiseSigma":"high"}`,
		`{"workload":"candmc","unknown":true}`,
		`{"workload":"candmc"}{"workload":"candmc"}`,
		`{}`, `[]`, `null`, `42`, `"candmc"`, ``, `{`, "\x00\x01\x02",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJobRequest(nil, data)
		if err != nil {
			if spec != nil {
				t.Fatalf("ParseJobRequest returned both a spec and error %v", err)
			}
			return
		}
		// An accepted spec must be fully resolved and runnable.
		if spec.workload == nil || spec.strategy == nil {
			t.Fatalf("accepted spec is half-built: %+v", spec)
		}
		if len(spec.eps) == 0 || len(spec.eps) > maxEpsPerJob {
			t.Fatalf("accepted spec has %d eps values", len(spec.eps))
		}
		for _, e := range spec.eps {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("accepted spec carries non-finite eps %v", e)
			}
		}
		if len(spec.policies) == 0 || len(spec.policies) > maxPoliciesPerJob {
			t.Fatalf("accepted spec has %d policies", len(spec.policies))
		}
		if len(spec.policyNames) != len(spec.policies) {
			t.Fatalf("policy name/value mismatch: %v vs %v", spec.policyNames, spec.policies)
		}
		if math.IsNaN(spec.noise) || math.IsInf(spec.noise, 0) || spec.noise < 0 {
			t.Fatalf("accepted spec carries bad noise %v", spec.noise)
		}
		if spec.scaleName == "" {
			t.Fatal("accepted spec has no scale name")
		}
		st := spec.workload.Build(spec.scale)
		if st.Size() <= 0 || st.WorldSize <= 0 || st.Run == nil {
			t.Fatalf("accepted spec builds a degenerate study: %+v", st)
		}
		if spec.strategy.Name() == "" {
			t.Fatal("accepted spec has an unnamed strategy")
		}
	})
}

// TestParseJobRequestErrors pins the informative error paths the fuzzer
// only proves are non-panicking.
func TestParseJobRequestErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`{"workload":"bogus"}`, "unknown workload"},
		{`{"workload":"bogus"}`, "candmc"}, // the error enumerates the catalog
		{`{}`, "missing workload"},
		{`{"workload":"candmc","scale":"huge"}`, `unknown scale "huge"`},
		{`{"workload":"candmc","scale":"huge"}`, "quick"}, // enumerates the presets
		{`{"workload":"candmc","policies":["warp"]}`, "policy"},
		{`{"workload":"candmc","strategy":"bogus"}`, "unknown strategy"},
		{`{"workload":"candmc","noiseSigma":-1}`, "noiseSigma"},
		{`{"workload":"candmc","unknownField":1}`, "unknown field"},
		{`{"workload":"candmc"} trailing`, "trailing data"},
	}
	for _, tc := range cases {
		_, err := ParseJobRequest(nil, []byte(tc.in))
		if err == nil {
			t.Errorf("ParseJobRequest(%s) succeeded", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseJobRequest(%s) error %q does not mention %q", tc.in, err, tc.want)
		}
	}

	// Oversized lists are rejected before any simulation could start.
	big := `{"workload":"candmc","eps":[` + strings.Repeat("0.5,", maxEpsPerJob) + `0.5]}`
	if _, err := ParseJobRequest(nil, []byte(big)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized eps list: err = %v", err)
	}
}
