package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/workload"
)

// submitWait submits a JSON job and waits for its terminal state.
func submitWait(t *testing.T, s *Scheduler, body string) JobStatus {
	t.Helper()
	st, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatalf("SubmitJSON(%s): %v", body, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	final, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait(%s): %v", st.ID, err)
	}
	return final
}

// closeNow shuts a scheduler down with a short deadline.
func closeNow(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestWarmStartAcrossJobs is the service-level acceptance test: two
// sequential jobs on the same workload, where the second warm-starts from
// the ProfileStore's merged profile of the first and executes measurably
// fewer kernels.
func TestWarmStartAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	s := New(Config{Runners: 1})
	defer closeNow(t, s)

	const body = `{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125],"seed":11,"extrapolate":true}`

	cold := submitWait(t, s, body)
	if cold.State != StateDone {
		t.Fatalf("cold job state %s (err %q)", cold.State, cold.Error)
	}
	if cold.WarmStart {
		t.Error("first job claims a warm start from an empty store")
	}
	if got := s.Store().Workloads(); len(got) != 1 || got[0] != "candmc" {
		t.Fatalf("store holds %v after the first job, want [candmc]", got)
	}

	warm := submitWait(t, s, body)
	if warm.State != StateDone {
		t.Fatalf("warm job state %s (err %q)", warm.State, warm.Error)
	}
	if !warm.WarmStart {
		t.Error("second job did not warm-start from the store")
	}

	coldEnv, _ := s.Result(cold.ID)
	warmEnv, _ := s.Result(warm.ID)
	if coldEnv == nil || warmEnv == nil {
		t.Fatal("finished jobs have no result envelopes")
	}
	coldExec := coldEnv.Result.Sweeps[0][0].Executed
	warmExec := warmEnv.Result.Sweeps[0][0].Executed
	if coldExec == 0 {
		t.Fatal("cold job executed no kernels")
	}
	if warmExec >= coldExec {
		t.Errorf("warm-started job executed %d kernels, want fewer than the cold job's %d", warmExec, coldExec)
	}
	t.Logf("cold executed %d, warm executed %d (%.1f%%)", coldExec, warmExec, 100*float64(warmExec)/float64(coldExec))

	// The warm job's envelope records the prior it was seeded with.
	if warmEnv.Prior == nil || warmEnv.Prior.Kernels == 0 {
		t.Errorf("warm envelope's prior summary is empty: %+v", warmEnv.Prior)
	}
}

// blockingRegistry builds a registry with one tiny workload whose study
// blocks until gate is closed, for queue/cancellation tests.
func blockingRegistry(gate chan struct{}) *workload.Registry {
	reg := workload.NewRegistry()
	err := reg.Register(workload.Def{
		WorkloadName: "block",
		Description:  "test workload that blocks until released",
		BuildFunc: func(s autotune.Scale) autotune.Study {
			return autotune.Study{
				Name: "block",
				// Two configurations: cancellation is observed at
				// configuration boundaries, so a canceled sweep needs a
				// boundary after the blocking first config to land on.
				Space:      autotune.NewSpace(autotune.IntsDim("v", 0, 1)),
				WorldSize:  1,
				Policies:   []critter.Policy{critter.Conditional},
				ResetStats: true,
				Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
					<-gate
				},
			}
		},
	})
	if err != nil {
		panic(err)
	}
	return reg
}

// TestQueueBounded: submissions beyond the queue capacity fail fast with
// ErrQueueFull instead of blocking or growing without bound.
func TestQueueBounded(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 2})
	defer closeNow(t, s)

	// dedup off: these submissions are intentionally identical, and the
	// test is about queue capacity, not coalescing.
	const body = `{"workload":"block","dedup":false}`
	running, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the runner to pop the first job, freeing its queue slot.
	waitState(t, s, running.ID, StateRunning)
	var queued []JobStatus
	for i := 0; i < 2; i++ {
		st, err := s.SubmitJSON([]byte(body))
		if err != nil {
			t.Fatalf("submission %d into a non-full queue: %v", i, err)
		}
		queued = append(queued, st)
	}
	if _, err := s.SubmitJSON([]byte(body)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submission into a full queue: err = %v, want ErrQueueFull", err)
	}

	// Canceling a queued job frees its slot immediately — capacity
	// counts waiting work, not terminal records.
	canceled, err := s.Cancel(queued[1].ID)
	if err != nil || canceled.State != StateCanceled {
		t.Fatalf("cancel queued: %v, %v", canceled.State, err)
	}
	refill, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatalf("submission after canceling a queued job: %v", err)
	}
	queued = []JobStatus{queued[0], refill}

	// A rejected submission burns nothing: after release, everything
	// drains and a new submission works.
	close(gate)
	for _, st := range append([]JobStatus{running}, queued...) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		final, err := s.Wait(ctx, st.ID)
		cancel()
		if err != nil || final.State != StateDone {
			t.Fatalf("job %s after release: %+v, %v", st.ID, final.State, err)
		}
	}
	if st := submitWait(t, s, body); st.State != StateDone {
		t.Fatalf("post-drain submission state %s", st.State)
	}
}

// waitState polls until the job reaches want (or fails the test).
func waitState(t *testing.T, s *Scheduler, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached terminal state %s waiting for %s (err %q)", id, st.State, want, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
}

// TestCancelQueuedAndRunning: canceling a queued job skips it entirely;
// canceling a running job aborts its world and lands in canceled state.
func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 4})
	defer closeNow(t, s)

	// dedup off: the queued duplicate must stay an independent job so the
	// test exercises queued-state cancellation, not follower detachment.
	const body = `{"workload":"block","dedup":false}`
	running, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)
	queued, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: immediate terminal state, no result.
	st, err := s.Cancel(queued.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: %+v, %v", st.State, err)
	}
	if env, ok := s.Result(queued.ID); !ok || env != nil {
		t.Errorf("canceled queued job has an envelope: %v %v", env, ok)
	}
	if _, err := s.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("re-cancel: err = %v, want ErrFinished", err)
	}

	// Cancel the running job, then release the gate: the blocked first
	// configuration completes, and the cancellation lands at the next
	// configuration boundary, aborting the sweep.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := s.Wait(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("canceled running job state %s", final.State)
	}
	if !strings.Contains(final.Error, "cancel") {
		t.Errorf("canceled job error %q does not mention cancellation", final.Error)
	}

	// Unknown jobs are a lookup error, not a panic.
	if _, err := s.Cancel("job-999"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

// TestHistoryPruning: terminal jobs beyond MaxHistory are evicted oldest
// first, while queued and running jobs never count against the cap.
func TestHistoryPruning(t *testing.T) {
	gate := make(chan struct{})
	close(gate) // jobs finish immediately
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 8, MaxHistory: 2})
	defer closeNow(t, s)

	// dedup off: five independent terminal records, not one execution
	// plus four memo hits.
	const body = `{"workload":"block","dedup":false}`
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, submitWait(t, s, body).ID)
	}
	// The two newest terminal jobs survive; the three oldest are gone.
	for _, id := range ids[:3] {
		if _, ok := s.Status(id); ok {
			t.Errorf("evicted job %s still resolvable", id)
		}
	}
	for _, id := range ids[3:] {
		st, ok := s.Status(id)
		if !ok || st.State != StateDone {
			t.Errorf("retained job %s: ok=%v state=%v", id, ok, st.State)
		}
		if env, ok := s.Result(id); !ok || env == nil {
			t.Errorf("retained job %s lost its envelope", id)
		}
	}
	if n := len(s.Jobs()); n != 2 {
		t.Errorf("job list has %d entries, want 2", n)
	}
}

// TestEventStreamReplayAndLive: a subscriber attaching mid-run sees the
// full history (replay + live) ending in exactly one terminal event, in
// done/total order.
func TestEventStreamReplayAndLive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	s := New(Config{Runners: 1})
	defer closeNow(t, s)

	st, err := s.SubmitJSON([]byte(`{"workload":"candmc","scale":"quick","policies":["online","local"],"eps":[0.5,0.125],"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := s.Subscribe(st.ID)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer sub.Close()

	events := append([]Event(nil), sub.Past...)
	if sub.C != nil {
		timeout := time.After(5 * time.Minute)
	collect:
		for {
			select {
			case ev, open := <-sub.C:
				if !open {
					break collect
				}
				events = append(events, ev)
			case <-timeout:
				t.Fatal("event stream never terminated")
			}
		}
	}
	if n := sub.Dropped(); n != 0 {
		t.Fatalf("attentive subscriber dropped %d events", n)
	}

	if len(events) == 0 || events[0].Type != "queued" {
		t.Fatalf("event stream does not start with queued: %v", events)
	}
	last := events[len(events)-1]
	if last.Type != "done" {
		t.Fatalf("event stream does not end with done: %v", events)
	}
	sweeps := 0
	prevDone := 0
	for _, ev := range events {
		if ev.Job != st.ID {
			t.Errorf("event for wrong job: %+v", ev)
		}
		if ev.Type != "sweep" {
			continue
		}
		sweeps++
		if ev.Done != prevDone+1 {
			t.Errorf("sweep events out of order: done %d after %d", ev.Done, prevDone)
		}
		prevDone = ev.Done
		if ev.Policy == "" || ev.Eps == 0 {
			t.Errorf("sweep event missing its grid cell: %+v", ev)
		}
	}
	if sweeps != st.SweepsTotal || sweeps != 4 {
		t.Errorf("saw %d sweep events, want %d", sweeps, st.SweepsTotal)
	}
	if last.Done != sweeps || last.Total != sweeps {
		t.Errorf("terminal event counts %d/%d, want %d/%d", last.Done, last.Total, sweeps, sweeps)
	}

	// A subscriber attaching after the end gets the whole history as
	// replay with no live channel.
	after, ok := s.Subscribe(st.ID)
	if !ok || after.C != nil {
		t.Fatalf("post-terminal Subscribe: ok=%v live=%v", ok, after.C)
	}
	defer after.Close()
	if len(after.Past) != len(events) {
		t.Errorf("post-terminal replay has %d events, want %d", len(after.Past), len(events))
	}
}
