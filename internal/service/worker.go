package service

// Worker is the client side of the lease protocol: a separate process
// (critter-serve -mode=worker -join=<url>) that registers against a
// coordinator's JSON API, polls for leases, executes them through the same
// executeSpec path the coordinator's local runners use — so results are
// byte-identical wherever a job lands — and streams sweep events back as
// heartbeats.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/sim"
	"critter/internal/workload"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	// Required.
	Base string
	// Name labels the worker in GET /v1/workers; defaults to "worker".
	Name string
	// Registry resolves leased workloads; nil means the process-global
	// default registry. It must agree with the coordinator's registry for
	// the workloads this worker will execute.
	Registry *workload.Registry
	// Machine is the simulated machine model; the zero value means
	// sim.DefaultMachine(). It must match the coordinator's for results
	// to be interchangeable.
	Machine sim.Machine
	// Workers bounds each leased job's sweep pool; 0 means GOMAXPROCS.
	Workers int
	// Scheduler picks the world scheduler leased jobs run under; the zero
	// value is mpi.SchedAuto. Results are byte-identical under every
	// choice, so workers need not agree with the coordinator here.
	Scheduler mpi.SchedulerKind
	// Poll is the idle delay between lease polls when the queue is empty.
	// 0 means 500ms.
	Poll time.Duration
	// Client is the HTTP client to use; nil means http.DefaultClient.
	Client *http.Client
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Worker executes leased jobs against a remote coordinator.
type Worker struct {
	opts WorkerOptions
	id   string
	ttl  time.Duration
	// completed counts jobs this worker finished (posted a result for),
	// for tests and logs.
	completed int
}

// NewWorker validates options and builds a worker; Run does the work.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Base == "" {
		return nil, fmt.Errorf("service: worker needs a coordinator base URL")
	}
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Registry == nil {
		opts.Registry = workload.Default()
	}
	if (opts.Machine == sim.Machine{}) {
		opts.Machine = sim.DefaultMachine()
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	return &Worker{opts: opts}, nil
}

// Completed reports how many leased jobs this worker has finished.
func (w *Worker) Completed() int { return w.completed }

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Run registers and serves leases until ctx is done. Transient coordinator
// failures (including coordinator restarts, which invalidate the worker's
// registration) are retried with re-registration; Run only returns on ctx
// cancellation.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := w.register(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("worker: register: %v (retrying)", err)
			if !sleepCtx(ctx, w.opts.Poll) {
				return ctx.Err()
			}
			continue
		}
		w.logf("worker: registered as %s (lease ttl %s)", w.id, w.ttl)
		if err := w.serve(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("worker: %v (re-registering)", err)
			if !sleepCtx(ctx, w.opts.Poll) {
				return ctx.Err()
			}
		}
	}
}

// errReregister signals that the coordinator forgot this worker (404 on a
// worker route) — typically a coordinator restart.
var errReregister = fmt.Errorf("service: worker registration lost")

// serve polls for leases until ctx is done or the registration is lost.
func (w *Worker) serve(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		grant, err := w.lease(ctx)
		if err != nil {
			return err
		}
		if grant == nil {
			if !sleepCtx(ctx, w.opts.Poll) {
				return ctx.Err()
			}
			continue
		}
		w.runLease(ctx, grant)
	}
}

// register obtains a worker ID and the lease TTL.
func (w *Worker) register(ctx context.Context) error {
	var resp struct {
		Worker      string `json:"worker"`
		LeaseMillis int64  `json:"leaseMillis"`
	}
	code, err := w.post(ctx, "/v1/workers", map[string]string{"name": w.opts.Name}, &resp)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("service: register worker: HTTP %d", code)
	}
	if resp.Worker == "" || resp.LeaseMillis < 1 {
		return fmt.Errorf("service: register worker: malformed response")
	}
	w.id = resp.Worker
	w.ttl = time.Duration(resp.LeaseMillis) * time.Millisecond
	return nil
}

// lease polls for one grant; nil means no work available.
func (w *Worker) lease(ctx context.Context) (*LeaseGrant, error) {
	var grant LeaseGrant
	code, err := w.post(ctx, "/v1/workers/"+w.id+"/lease", nil, &grant)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return &grant, nil
	case http.StatusNoContent:
		return nil, nil
	case http.StatusNotFound:
		return nil, errReregister
	default:
		return nil, fmt.Errorf("service: lease poll: HTTP %d", code)
	}
}

// runLease executes one granted job and posts its result. The lease is
// kept alive two ways: every completed sweep posts an event immediately,
// and a background ticker heartbeats through long sweep gaps. A 404/409
// from either cancels the execution — the lease is gone, finishing the
// work would be wasted.
func (w *Worker) runLease(ctx context.Context, grant *LeaseGrant) {
	reqData, err := json.Marshal(grant.Request)
	if err != nil {
		w.fail(ctx, grant.Job, fmt.Sprintf("marshal request: %v", err))
		return
	}
	spec, err := ParseJobRequest(w.opts.Registry, reqData)
	if err != nil {
		w.fail(ctx, grant.Job, fmt.Sprintf("resolve leased request: %v", err))
		return
	}
	var prior *critter.Profile
	if len(grant.Prior) > 0 {
		prior, err = critter.DecodeProfile(grant.Prior)
		if err != nil {
			w.fail(ctx, grant.Job, fmt.Sprintf("decode prior: %v", err))
			return
		}
	}

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	heartbeat := w.ttl / 3
	if heartbeat < 50*time.Millisecond {
		heartbeat = 50 * time.Millisecond
	}
	// leaseLost flips when a post bounces with 404/409: the coordinator
	// requeued or reassigned the job, so finishing it would be wasted.
	var leaseLost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-jobCtx.Done():
				return
			case <-t.C:
				if err := w.postEvents(jobCtx, grant.Job, nil); err != nil {
					w.logf("worker: heartbeat %s: %v", grant.Job, err)
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	env, merged, runErr := executeSpec(jobCtx, spec, w.opts.Machine, w.opts.Workers, w.opts.Scheduler, prior, nil, func(sw autotune.SweepResult, swErr error) {
		ev := Event{
			Type: "sweep", Job: grant.Job,
			Policy: sw.Policy.String(), Eps: sw.Eps,
			Executed: sw.Executed, Skipped: sw.Skipped,
			Memoized: sw.KernelsMemoized,
		}
		if swErr != nil {
			ev.Error = swErr.Error()
		}
		if err := w.postEvents(jobCtx, grant.Job, []Event{ev}); err != nil {
			w.logf("worker: post sweep %s: %v", grant.Job, err)
			leaseLost.Store(true)
			cancel()
		}
	})
	cancel()
	<-hbDone

	if leaseLost.Load() || ctx.Err() != nil {
		// Lease gone, or the worker itself is shutting down: nothing
		// useful to post.
		return
	}

	result := map[string]any{}
	if env != nil {
		envData, err := json.Marshal(env)
		if err == nil {
			result["envelope"] = json.RawMessage(envData)
		}
	}
	if merged != nil {
		profData, err := merged.Encode()
		if err == nil {
			result["profile"] = json.RawMessage(profData)
		}
	}
	if runErr != nil {
		result["error"] = runErr.Error()
	}
	code, err := w.post(ctx, "/v1/workers/"+w.id+"/jobs/"+grant.Job+"/result", result, nil)
	if err != nil || code >= 300 {
		w.logf("worker: post result %s: code %d err %v", grant.Job, code, err)
		return
	}
	w.completed++
	w.logf("worker: completed %s", grant.Job)
}

// fail reports a job the worker could not even start.
func (w *Worker) fail(ctx context.Context, jobID, msg string) {
	w.logf("worker: %s: %s", jobID, msg)
	code, err := w.post(ctx, "/v1/workers/"+w.id+"/jobs/"+jobID+"/result", map[string]any{"error": msg}, nil)
	if err != nil || code >= 300 {
		w.logf("worker: post failure %s: code %d err %v", jobID, code, err)
	}
}

// postEvents ships a sweep-event batch (empty = pure heartbeat).
func (w *Worker) postEvents(ctx context.Context, jobID string, events []Event) error {
	body := map[string]any{"events": events}
	code, err := w.post(ctx, "/v1/workers/"+w.id+"/jobs/"+jobID+"/events", body, nil)
	if err != nil {
		return err
	}
	if code == http.StatusNotFound || code == http.StatusConflict {
		return fmt.Errorf("lease lost (HTTP %d)", code)
	}
	if code >= 300 {
		return fmt.Errorf("HTTP %d", code)
	}
	return nil
}

// post sends one JSON request and decodes the response into out (when
// non-nil and the response has a body). Returns the status code.
func (w *Worker) post(ctx context.Context, path string, body any, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Base+path, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// sleepCtx sleeps d or until ctx is done; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
