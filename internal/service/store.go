package service

import (
	"sort"
	"sync"

	"critter/internal/critter"
)

// ProfileStore accumulates the learned kernel profiles of completed jobs,
// keyed by workload name. Later jobs on the same workload warm-start from
// the merged prior, so a service that keeps tuning the same problems
// executes fewer and fewer kernels — the in-memory form of the
// transfer-learning loop that critter-tune's -profile-in/-profile-out pair
// runs through files.
//
// Merging goes through critter.MergeProfiles, which returns a fresh
// artifact, so a profile handed out by Get is immutable: jobs holding it
// as their prior never observe later merges.
type ProfileStore struct {
	mu         sync.RWMutex
	byWorkload map[string]*critter.Profile
}

// NewProfileStore returns an empty store.
func NewProfileStore() *ProfileStore {
	return &ProfileStore{byWorkload: make(map[string]*critter.Profile)}
}

// Get returns the merged profile accumulated for a workload, or nil when
// no job has contributed yet. The returned profile is never mutated by the
// store; it is safe to share across concurrently running jobs.
func (s *ProfileStore) Get(workload string) *critter.Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byWorkload[workload]
}

// Merge folds p into the workload's accumulated profile. A nil p is a
// no-op, so callers can pass a failed sweep's absent export unconditionally.
func (s *ProfileStore) Merge(workload string, p *critter.Profile) {
	if p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byWorkload[workload] = critter.MergeProfiles(s.byWorkload[workload], p)
}

// Workloads returns the names with accumulated profiles, sorted.
func (s *ProfileStore) Workloads() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byWorkload))
	for name := range s.byWorkload {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
