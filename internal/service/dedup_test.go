package service

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestDedupCoalescesConcurrentSubmissions is the dedup acceptance test:
// eight identical concurrent submissions produce exactly one Tuner
// execution, eight byte-identical result envelopes, and eight complete
// event streams. The blocking workload pins the primary mid-run so every
// follower attaches while it is provably still executing.
func TestDedupCoalescesConcurrentSubmissions(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 16})
	defer closeNow(t, s)

	const n = 8
	const body = `{"workload":"block","eps":[0.25],"seed":7,"warmStart":false}`

	// Submit all eight concurrently. Dedup defaults to on.
	statuses := make([]JobStatus, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.SubmitJSON([]byte(body))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every submission names the same fingerprint; exactly one is the
	// primary, the other seven are deduped onto it.
	ids := map[string]bool{}
	var primary string
	deduped := 0
	for _, st := range statuses {
		if st.Fingerprint == "" || st.Fingerprint != statuses[0].Fingerprint {
			t.Fatalf("fingerprint mismatch: %+v vs %+v", st, statuses[0])
		}
		if ids[st.ID] {
			t.Fatalf("duplicate job ID %s", st.ID)
		}
		ids[st.ID] = true
		if st.Deduped {
			deduped++
			if st.DedupOf == "" {
				t.Errorf("deduped job %s has no DedupOf", st.ID)
			}
		} else {
			primary = st.ID
		}
	}
	if deduped != n-1 || primary == "" {
		t.Fatalf("got %d deduped of %d submissions (primary %q), want %d", deduped, n, primary, n-1)
	}
	for _, st := range statuses {
		if st.Deduped && st.DedupOf != primary {
			t.Errorf("job %s follows %s, want primary %s", st.ID, st.DedupOf, primary)
		}
	}

	// Attach a subscription to every job before releasing the gate, so
	// each stream must deliver the terminal event live.
	subs := make([]*Subscription, n)
	for i, st := range statuses {
		sub, ok := s.Subscribe(st.ID)
		if !ok {
			t.Fatalf("Subscribe(%s): unknown job", st.ID)
		}
		defer sub.Close()
		subs[i] = sub
	}

	close(gate)

	// All eight reach done, having run the Tuner exactly once.
	for _, st := range statuses {
		final := waitDone(t, s, st.ID)
		if final.State != StateDone {
			t.Fatalf("job %s finished %s (err %q)", st.ID, final.State, final.Error)
		}
	}
	if runs := s.TunerRuns(); runs != 1 {
		t.Errorf("executed %d Tuner runs for %d identical submissions, want exactly 1", runs, n)
	}

	// Every stream ends with a done event for its own job ID.
	for i, sub := range subs {
		sawDone := false
		timeout := time.After(time.Minute)
		for !sawDone {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					t.Fatalf("stream %d (%s) closed before its done event", i, statuses[i].ID)
				}
				if ev.Job != statuses[i].ID {
					t.Errorf("stream %d carries event for %s, want %s", i, ev.Job, statuses[i].ID)
				}
				if ev.Type == "done" {
					sawDone = true
				}
			case <-timeout:
				t.Fatalf("stream %d (%s) never delivered a done event", i, statuses[i].ID)
			}
		}
		if d := sub.Dropped(); d != 0 {
			t.Errorf("stream %d dropped %d events", i, d)
		}
	}

	// All eight envelopes are byte-identical.
	ref := envelopeJSON(t, s, statuses[0].ID)
	for _, st := range statuses[1:] {
		if got := envelopeJSON(t, s, st.ID); !bytes.Equal(got, ref) {
			t.Errorf("envelope for %s differs from %s:\n%s\nvs\n%s", st.ID, statuses[0].ID, got, ref)
		}
	}

	// A ninth identical submission after completion is a memo hit: it is
	// born terminal with the same envelope and runs nothing.
	ninth, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatalf("memo submit: %v", err)
	}
	if !ninth.Deduped || ninth.State != StateDone {
		t.Fatalf("memo-hit status %+v, want deduped+done", ninth)
	}
	if got := envelopeJSON(t, s, ninth.ID); !bytes.Equal(got, ref) {
		t.Errorf("memoized envelope differs:\n%s\nvs\n%s", got, ref)
	}
	if runs := s.TunerRuns(); runs != 1 {
		t.Errorf("memo hit re-executed the Tuner (%d runs)", runs)
	}
}

// TestDedupOptOutAndBoundaries: dedup:false submissions never coalesce,
// and differing specs produce differing fingerprints.
func TestDedupOptOutAndBoundaries(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 16})
	defer closeNow(t, s)

	a, err := s.SubmitJSON([]byte(`{"workload":"block","eps":[0.25],"seed":7,"warmStart":false,"dedup":false}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SubmitJSON([]byte(`{"workload":"block","eps":[0.25],"seed":7,"warmStart":false,"dedup":false}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Deduped || b.Deduped {
		t.Errorf("dedup:false submissions coalesced: %+v %+v", a, b)
	}
	// The dedup flag itself is routing policy, not work identity: the
	// fingerprint ignores it.
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("identical specs fingerprint differently: %s vs %s", a.Fingerprint, b.Fingerprint)
	}

	// Any material field change moves the fingerprint.
	seen := map[string]string{a.Fingerprint: "base"}
	for name, body := range map[string]string{
		"seed":     `{"workload":"block","eps":[0.25],"seed":8,"warmStart":false,"dedup":false}`,
		"eps":      `{"workload":"block","eps":[0.5],"seed":7,"warmStart":false,"dedup":false}`,
		"strategy": `{"workload":"block","eps":[0.25],"seed":7,"strategy":"random:3","warmStart":false,"dedup":false}`,
		"warm":     `{"workload":"block","eps":[0.25],"seed":7,"warmStart":true,"dedup":false}`,
	} {
		st, err := s.SubmitJSON([]byte(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[st.Fingerprint]; dup {
			t.Errorf("%s collides with %s on fingerprint %s", name, prev, st.Fingerprint)
		}
		seen[st.Fingerprint] = name
	}

	close(gate)
	for id := range map[string]bool{a.ID: true, b.ID: true} {
		waitDone(t, s, id)
	}
}

// waitDone waits for a job's terminal state with a test-friendly timeout.
func waitDone(t *testing.T, s *Scheduler, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// envelopeJSON fetches a finished job's envelope and renders it to
// canonical JSON for byte comparison.
func envelopeJSON(t *testing.T, s *Scheduler, id string) []byte {
	t.Helper()
	env, ok := s.Result(id)
	if !ok || env == nil {
		t.Fatalf("job %s has no result envelope", id)
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("marshal envelope for %s: %v", id, err)
	}
	return data
}
