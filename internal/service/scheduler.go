// Package service turns tuning runs into schedulable jobs: a Scheduler
// with a bounded queue and per-job contexts wraps the autotune Tuner,
// streams completion-ordered progress events (reusing Tuner.Stream), and
// shares a ProfileStore so later jobs warm-start from what earlier jobs on
// the same workload learned. On top of that sit three production
// capabilities: identical submissions coalesce onto one execution
// (dedup.go semantics live in this file and persist.go), finished jobs and
// merged profiles survive restarts through an optional durable store
// (persist.go), and queued jobs can be leased to remote worker processes
// with heartbeat-driven requeue on worker death (lease.go, worker.go). The
// HTTP layer (http.go, served by cmd/critter-serve) exposes it all as a
// versioned JSON API.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/sim"
	"critter/internal/store"
	"critter/internal/workload"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification of a running job, delivered in
// completion order (the order Tuner.Stream yields sweeps, not grid order).
// It is also the SSE payload shape of GET /v1/jobs/{id}/events.
type Event struct {
	// Type is queued, started, sweep, requeued, lagged, done, failed, or
	// canceled. requeued means the job's worker lease expired and it went
	// back to the queue; lagged is synthesized per subscriber by the SSE
	// layer when backpressure dropped events (it never appears in the
	// stored history).
	Type string `json:"type"`
	// Job is the job ID the event belongs to.
	Job string `json:"job"`
	// Policy and Eps identify the completed sweep's grid cell (sweep
	// events only; empty/zero otherwise). Eps is always emitted — 0 is a
	// legitimate sweep tolerance (selective execution disabled), so
	// omitting it would leave that cell unidentifiable.
	Policy string  `json:"policy,omitempty"`
	Eps    float64 `json:"eps"`
	// Done and Total count completed vs scheduled sweeps.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Executed and Skipped are the completed sweep's kernel counts,
	// always emitted on sweep events (0 executed is information, not
	// absence).
	Executed int64 `json:"executed"`
	Skipped  int64 `json:"skipped"`
	// Memoized counts the skipped kernels whose skip decision was answered
	// by the sweep-scoped kernel memo rather than a fresh predictability
	// test (a subset of Skipped; sweep events only).
	Memoized int64 `json:"memoized"`
	// Error carries a sweep's or the job's failure, when there is one.
	Error string `json:"error,omitempty"`
	// Worker names the worker process involved: the leasing worker on
	// started/sweep events of leased jobs, the dead worker on requeued
	// events.
	Worker string `json:"worker,omitempty"`
	// Dropped counts the events a slow subscriber lost (lagged events
	// only).
	Dropped int `json:"dropped,omitempty"`
}

// JobStatus is the public snapshot of one job, and the JSON shape of
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Workload    string    `json:"workload"`
	Scale       string    `json:"scale"`
	Strategy    string    `json:"strategy"`
	Policies    []string  `json:"policies"`
	Eps         []float64 `json:"eps"`
	Seed        uint64    `json:"seed"`
	NoiseSigma  float64   `json:"noiseSigma"`
	Extrapolate bool      `json:"extrapolate"`
	// WarmStart reports whether the job actually applied a stored prior
	// (requested warm start AND the store had one for the workload).
	WarmStart bool `json:"warmStart"`
	// Fingerprint content-addresses the job's work; identical submissions
	// share it, and dedup coalesces on it.
	Fingerprint string `json:"fingerprint"`
	// Deduped marks a job that never executed itself: it coalesced onto
	// DedupOf's execution and shares that job's result envelope
	// byte-for-byte.
	Deduped bool   `json:"deduped,omitempty"`
	DedupOf string `json:"dedupOf,omitempty"`
	// Worker names the worker process currently holding the job's lease,
	// and Attempts counts execution attempts (lease expiries requeue and
	// increment it).
	Worker      string    `json:"worker,omitempty"`
	Attempts    int       `json:"attempts,omitempty"`
	SweepsDone  int       `json:"sweepsDone"`
	SweepsTotal int       `json:"sweepsTotal"`
	Error       string    `json:"error,omitempty"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started,omitzero"`
	Finished    time.Time `json:"finished,omitzero"`
}

// subscriber is one bounded event-stream attachment. Slow consumers lose
// events (dropped counts them) instead of blocking the scheduler.
type subscriber struct {
	ch      chan Event
	dropped int
}

// job is the scheduler's internal record of one submission.
type job struct {
	id   string
	spec *jobSpec // nil only for jobs replayed from the durable store

	mu          sync.Mutex
	state       State
	err         error
	envelope    *autotune.Envelope
	events      []Event
	subs        map[int]*subscriber
	nextSub     int
	cancel      context.CancelFunc // set while running locally
	warmApplied bool
	sweepsDone  int
	sweepsTotal int
	submitted   time.Time
	started     time.Time
	finished    time.Time
	done        chan struct{} // closed on terminal state

	// Dedup wiring: a follower mirrors its primary's events and shares
	// its envelope; a primary fans out to its live followers.
	deduped   bool
	dedupOf   string
	primary   *job   // followers: set until the primary terminates
	followers []*job // primaries: live followers to mirror into

	// Lease wiring for jobs executing on a remote worker.
	worker        string
	leaseDeadline time.Time
	attempts      int

	// trace collects the job's span events while it executes on a local
	// runner (GET /v1/jobs/{id}/trace). Nil for leased, replayed, and
	// born-terminal jobs, and when Config.TraceEvents disables tracing.
	trace *obs.Ring

	// replay is the status snapshot of a job restored from the durable
	// store, returned verbatim by statusLocked (spec is nil for these).
	replay *JobStatus
}

// deliverLocked appends an event to this job's history and offers it to
// every subscriber, dropping for any whose bounded buffer is full. Callers
// hold j.mu.
func (j *job) deliverLocked(ev Event) {
	j.events = append(j.events, ev)
	for _, sb := range j.subs {
		select {
		case sb.ch <- ev:
		default:
			sb.dropped++
		}
	}
}

// emitLocked delivers an event and mirrors it — job ID rewritten, progress
// fields copied — into every live follower. Callers hold j.mu; follower
// locks nest inside (lock order: primary.mu before follower.mu).
func (j *job) emitLocked(ev Event) {
	j.deliverLocked(ev)
	for _, f := range j.followers {
		f.mu.Lock()
		f.state = j.state
		f.warmApplied = j.warmApplied
		f.sweepsDone = j.sweepsDone
		f.started = j.started
		f.worker = j.worker
		f.attempts = j.attempts
		fv := ev
		fv.Job = f.id
		f.deliverLocked(fv)
		f.mu.Unlock()
	}
}

// closeSubsLocked detaches and closes every subscriber channel after the
// terminal event has been emitted. Callers hold j.mu.
func (j *job) closeSubsLocked() {
	for idx, sb := range j.subs {
		delete(j.subs, idx)
		close(sb.ch)
	}
}

// statusLocked snapshots the job. Callers hold j.mu.
func (j *job) statusLocked() JobStatus {
	if j.replay != nil {
		st := *j.replay
		st.Policies = append([]string(nil), st.Policies...)
		st.Eps = append([]float64(nil), st.Eps...)
		return st
	}
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Workload:    j.spec.workload.Name(),
		Scale:       j.spec.scaleName,
		Strategy:    j.spec.strategy.Name(),
		Policies:    append([]string(nil), j.spec.policyNames...),
		Eps:         append([]float64(nil), j.spec.eps...),
		Seed:        j.spec.seed,
		NoiseSigma:  j.spec.noise,
		Extrapolate: j.spec.extrapolate,
		WarmStart:   j.warmApplied,
		Fingerprint: j.spec.fingerprint,
		Deduped:     j.deduped,
		DedupOf:     j.dedupOf,
		Worker:      j.worker,
		Attempts:    j.attempts,
		SweepsDone:  j.sweepsDone,
		SweepsTotal: j.sweepsTotal,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Config configures a Scheduler.
type Config struct {
	// Registry resolves job workloads; nil means the process-global
	// default registry.
	Registry *workload.Registry
	// Machine is the simulated machine model; its NoiseSigma is
	// overridden per job. The zero value means sim.DefaultMachine().
	Machine sim.Machine
	// QueueSize bounds the pending-job queue; Submit fails with
	// ErrQueueFull beyond it. 0 means 16.
	QueueSize int
	// Runners is how many jobs execute concurrently in this process. 0
	// means 1: jobs run strictly in submission order, each one's profile
	// warm-starting the next. Negative means no local runners at all —
	// jobs execute only when remote workers lease them.
	Runners int
	// Workers bounds each job's sweep pool (Tuner.Workers); 0 means
	// GOMAXPROCS.
	Workers int
	// Scheduler picks the world scheduler every job's sweeps run under
	// (Tuner.Scheduler). The zero value is mpi.SchedAuto. Results are
	// byte-identical under every choice — this is a throughput knob only.
	Scheduler mpi.SchedulerKind
	// Store accumulates learned profiles across jobs; nil means a fresh
	// store private to this scheduler.
	Store *ProfileStore
	// Durable persists finished jobs (envelopes included) and merged
	// profiles across restarts; nil means in-memory only. The scheduler
	// replays it on construction and appends on every completion. The
	// caller retains ownership and closes it after Close. See persist.go
	// for the exact restart semantics.
	Durable *store.Store
	// MaxHistory bounds how many finished (terminal) jobs are retained
	// for Status/Result lookups; beyond it the oldest terminal jobs are
	// evicted, envelopes and event histories included, so a long-running
	// server cannot grow without bound. Queued and running jobs never
	// count against it. 0 means 256; negative disables eviction.
	MaxHistory int
	// LeaseTTL bounds how long a worker may hold a leased job between
	// heartbeats before the janitor requeues it. 0 means 10s.
	LeaseTTL time.Duration
	// SubBuffer bounds each event subscriber's channel; a consumer that
	// falls further behind loses intermediate events (flagged by the SSE
	// layer with a lagged event) instead of blocking the scheduler. 0
	// means 64.
	SubBuffer int
	// Logf, when set, receives operational log lines (persistence
	// failures, lease requeues). nil discards them.
	Logf func(format string, args ...any)
	// Metrics is the registry the scheduler registers its instrument set
	// on (served by the HTTP layer at /v1/metrics and /metrics); nil means
	// a private registry, still reachable through Scheduler.Metrics. The
	// registry must not already hold the scheduler's metric names.
	Metrics *obs.Registry
	// MaxMemo bounds the memoized-result cache (fingerprint -> finished
	// job); beyond it the least recently used entries are evicted, so
	// fingerprint-varying clients cannot grow the cache without bound.
	// 0 means 1024; negative disables memoization.
	MaxMemo int
	// TraceEvents bounds each locally executed job's in-memory trace ring
	// (GET /v1/jobs/{id}/trace keeps the last TraceEvents span events). 0
	// means 4096; negative disables per-job tracing.
	TraceEvents int
}

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("service: scheduler is shutting down")

// ErrFinished is returned by Cancel for jobs already in a terminal state.
var ErrFinished = errors.New("service: job already finished")

// Scheduler executes submitted tuning jobs on a fixed set of runner
// goroutines and any number of remote workers, with a bounded queue,
// per-job cancellation, completion-order progress events, request
// dedup/memoization, durable history, and a shared warm-start profile
// store.
type Scheduler struct {
	cfg     Config
	reg     *workload.Registry
	store   *ProfileStore
	durable *store.Store
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// tunerRuns counts Tuner executions started by this process's
	// runners — the witness that dedup coalesced instead of re-running.
	tunerRuns atomic.Int64

	// mu guards everything below; cond (tied to mu) wakes runners when
	// pending grows or the scheduler closes. Lock order: mu before any
	// job's mu, a primary job's mu before its followers' — never the
	// reverse.
	mu          sync.Mutex
	cond        *sync.Cond
	pending     []*job // the bounded queue; canceling a queued job removes it here
	jobs        map[string]*job
	order       []string
	nextID      int
	closed      bool
	inflight    map[string]*job      // fingerprint -> executing primary (dedup on)
	memo        *memoCache           // fingerprint -> finished cold job (dedup on, warm off)
	persisted   map[string]time.Time // workload -> last durable profile write
	workers     map[string]*workerState
	nextWorker  int
	stopJanitor chan struct{}

	// met is the registered instrument set (obs.go); never nil.
	met *schedMetrics
}

// New starts a scheduler: its runner and janitor goroutines live until
// Close. When cfg.Durable is set, history and profiles are replayed from
// it before the first runner starts.
func New(cfg Config) *Scheduler {
	if cfg.Registry == nil {
		cfg.Registry = workload.Default()
	}
	if (cfg.Machine == sim.Machine{}) {
		cfg.Machine = sim.DefaultMachine()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 16
	}
	if cfg.Runners == 0 {
		cfg.Runners = 1
	}
	if cfg.Runners < 0 {
		cfg.Runners = 0
	}
	if cfg.Store == nil {
		cfg.Store = NewProfileStore()
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = 256
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 64
	}
	if cfg.MaxMemo == 0 {
		cfg.MaxMemo = 1024
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.TraceEvents == 0 {
		cfg.TraceEvents = 4096
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:         cfg,
		reg:         cfg.Registry,
		store:       cfg.Store,
		durable:     cfg.Durable,
		baseCtx:     ctx,
		stop:        stop,
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		memo:        newMemoCache(cfg.MaxMemo),
		persisted:   make(map[string]time.Time),
		workers:     make(map[string]*workerState),
		stopJanitor: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.met = newSchedMetrics(s, cfg.Metrics)
	if s.durable != nil {
		s.durable.SetOnCompact(s.onCompact)
	}
	s.replayDurable()
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.nextJob()
				if !ok {
					return
				}
				s.runJob(j)
			}
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.janitor()
	}()
	return s
}

// logf forwards to cfg.Logf when set.
func (s *Scheduler) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// nextJob blocks until a pending job is available or the scheduler is
// closed and drained.
func (s *Scheduler) nextJob() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.pending) == 0 {
		return nil, false
	}
	j := s.pending[0]
	s.pending = s.pending[1:]
	return j, true
}

// Store returns the scheduler's shared profile store.
func (s *Scheduler) Store() *ProfileStore { return s.store }

// Metrics returns the registry carrying the scheduler's instrument set —
// the one behind GET /v1/metrics and GET /metrics.
func (s *Scheduler) Metrics() *obs.Registry { return s.met.reg }

// Trace returns a job's collected span events (oldest first) and how many
// older events its bounded ring overwrote. The second result is false for
// unknown jobs; a known job without a trace (leased to a worker, replayed
// from the durable store, born terminal, or tracing disabled) returns an
// empty slice.
func (s *Scheduler) Trace(id string) ([]obs.Event, uint64, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return nil, 0, false
	}
	j.mu.Lock()
	ring := j.trace
	j.mu.Unlock()
	if ring == nil {
		return []obs.Event{}, 0, true
	}
	return ring.Events(), ring.Dropped(), true
}

// Registry returns the registry jobs resolve workloads against.
func (s *Scheduler) Registry() *workload.Registry { return s.reg }

// TunerRuns reports how many Tuner executions this process's runners have
// started. Deduped and memoized submissions never increment it.
func (s *Scheduler) TunerRuns() int64 { return s.tunerRuns.Load() }

// RetryAfterHint estimates, in whole seconds, how long a client should
// wait before resubmitting after ErrQueueFull. It is a coarse heuristic
// (queue depth over runner count), clamped to [1, 60].
func (s *Scheduler) RetryAfterHint() int {
	runners := s.cfg.Runners
	if runners <= 0 {
		// Lease-only scheduler: drain rate depends on remote workers we
		// cannot see from here.
		return 5
	}
	hint := s.cfg.QueueSize / runners
	if hint < 1 {
		hint = 1
	}
	if hint > 60 {
		hint = 60
	}
	return hint
}

// ProfileInfo returns the encoded merged profile for a workload plus the
// time it was last durably persisted (zero when the scheduler has no
// durable store or the profile has not been written yet).
func (s *Scheduler) ProfileInfo(name string) ([]byte, time.Time, bool) {
	p := s.store.Get(name)
	if p == nil {
		return nil, time.Time{}, false
	}
	data, err := p.Encode()
	if err != nil {
		return nil, time.Time{}, false
	}
	s.mu.Lock()
	at := s.persisted[name]
	s.mu.Unlock()
	return data, at, true
}

// SubmitJSON parses, validates, and enqueues a JSON job submission (the
// body of POST /v1/jobs). Validation failures are returned verbatim for
// the HTTP layer's 400; ErrQueueFull maps to 429 and ErrClosed to 503.
func (s *Scheduler) SubmitJSON(data []byte) (JobStatus, error) {
	spec, err := ParseJobRequest(s.reg, data)
	if err != nil {
		return JobStatus{}, err
	}
	return s.submit(spec)
}

// submit enqueues a resolved spec, or — when dedup is enabled and an
// identical job is executing or memoized — coalesces onto it without
// consuming a queue slot.
func (s *Scheduler) submit(spec *jobSpec) (JobStatus, error) {
	now := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}

	if spec.dedup {
		if p, ok := s.inflight[spec.fingerprint]; ok {
			st, recs := s.attachFollowerLocked(p, spec, now)
			s.mu.Unlock()
			s.met.jobsSubmitted.Inc()
			s.met.dedupCoalesced.Inc()
			if st.State.terminal() {
				s.met.jobFinished(st.State)
			}
			if len(recs) > 0 {
				s.persistJobs(recs)
			}
			s.pruneHistory()
			return st, nil
		}
		if doneID, ok := s.memo.get(spec.fingerprint); ok {
			if d, live := s.jobs[doneID]; live {
				if st, recs, ok := s.memoHitLocked(d, spec, now); ok {
					s.memo.hit(spec.fingerprint)
					s.mu.Unlock()
					s.met.jobsSubmitted.Inc()
					s.met.memoHits.Inc()
					s.met.jobFinished(st.State)
					s.persistJobs(recs)
					s.pruneHistory()
					return st, nil
				}
			}
		}
	}

	// The pending list is the bound: running jobs have left it, and
	// canceled queued jobs are removed immediately, so capacity counts
	// only work that is genuinely waiting. Coalesced submissions above
	// never consume a slot.
	if len(s.pending) >= s.cfg.QueueSize {
		s.mu.Unlock()
		s.met.queueRejected.Inc()
		return JobStatus{}, ErrQueueFull
	}
	j := &job{
		spec:        spec,
		state:       StateQueued,
		subs:        make(map[int]*subscriber),
		sweepsTotal: len(spec.policies) * len(spec.eps),
		submitted:   now,
		done:        make(chan struct{}),
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	// Record the queued event before the job becomes reachable: once it
	// is on the queue a runner may start it immediately, and "started"
	// must never precede "queued" in the event history. The job is still
	// private here, so no lock is needed for the append.
	j.events = append(j.events, Event{Type: "queued", Job: j.id, Total: j.sweepsTotal})
	s.pending = append(s.pending, j)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if spec.dedup {
		s.inflight[spec.fingerprint] = j
	}
	s.cond.Signal()
	s.mu.Unlock()

	s.met.jobsSubmitted.Inc()
	if spec.dedup {
		s.met.memoMisses.Inc()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), nil
}

// attachFollowerLocked coalesces a new submission onto an executing
// primary: the follower replays the primary's history under its own ID,
// mirrors subsequent events, and shares the final envelope. Caller holds
// s.mu. Returns persistence records only when the primary turned out to be
// terminal already (the follower is then born terminal and must persist
// itself; live followers persist when the primary terminates).
func (s *Scheduler) attachFollowerLocked(p *job, spec *jobSpec, now time.Time) (JobStatus, []persistedJob) {
	f := &job{
		spec:      spec,
		subs:      make(map[int]*subscriber),
		submitted: now,
		done:      make(chan struct{}),
		deduped:   true,
	}
	s.nextID++
	f.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[f.id] = f
	s.order = append(s.order, f.id)

	p.mu.Lock()
	defer p.mu.Unlock()
	f.dedupOf = p.id
	f.state = p.state
	f.err = p.err
	f.warmApplied = p.warmApplied
	f.sweepsDone = p.sweepsDone
	f.sweepsTotal = p.sweepsTotal
	f.started = p.started
	f.worker = p.worker
	f.attempts = p.attempts
	// Replay the primary's history under the follower's identity.
	for _, ev := range p.events {
		ev.Job = f.id
		f.events = append(f.events, ev)
	}
	if p.state.terminal() {
		// The primary finished between the inflight lookup and acquiring
		// its lock: the follower is born terminal, sharing the final
		// envelope (immutable once terminal, so serialization stays
		// byte-identical).
		f.envelope = p.envelope
		f.finished = now
		close(f.done)
		f.mu.Lock()
		st := f.statusLocked()
		f.mu.Unlock()
		return st, []persistedJob{{status: st, envelope: f.envelope, request: spec.req}}
	}
	f.primary = p
	p.followers = append(p.followers, f)
	f.mu.Lock()
	st := f.statusLocked()
	f.mu.Unlock()
	return st, nil
}

// memoHitLocked satisfies a submission from a memoized finished job: the
// new job is born terminal, sharing the stored envelope. Caller holds
// s.mu; returns ok=false when the memoized job cannot back a result (no
// envelope survived), in which case the caller falls through to a real
// execution.
func (s *Scheduler) memoHitLocked(d *job, spec *jobSpec, now time.Time) (JobStatus, []persistedJob, bool) {
	d.mu.Lock()
	env := d.envelope
	total := d.sweepsTotal
	dID := d.id
	d.mu.Unlock()
	if env == nil {
		return JobStatus{}, nil, false
	}

	f := &job{
		spec:        spec,
		state:       StateDone,
		envelope:    env,
		subs:        make(map[int]*subscriber),
		sweepsDone:  total,
		sweepsTotal: total,
		submitted:   now,
		started:     now,
		finished:    now,
		done:        make(chan struct{}),
		deduped:     true,
		dedupOf:     dID,
	}
	s.nextID++
	f.id = fmt.Sprintf("job-%d", s.nextID)
	f.events = []Event{
		{Type: "queued", Job: f.id, Total: total},
		{Type: "done", Job: f.id, Done: total, Total: total},
	}
	close(f.done)
	s.jobs[f.id] = f
	s.order = append(s.order, f.id)
	f.mu.Lock()
	st := f.statusLocked()
	f.mu.Unlock()
	return st, []persistedJob{{status: st, envelope: env, request: spec.req}}, true
}

// lookup resolves a job by ID.
func (s *Scheduler) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// pruneHistory evicts the oldest terminal jobs beyond MaxHistory, cleaning
// their memo entries and durable records along the way. Called after a job
// reaches a terminal state, outside any job lock (s.mu is taken first,
// each candidate's j.mu second — the scheduler's lock order).
func (s *Scheduler) pruneHistory() {
	if s.cfg.MaxHistory < 0 {
		return
	}
	s.mu.Lock()
	var terminal []string
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		isTerminal := j.state.terminal()
		j.mu.Unlock()
		if isTerminal {
			terminal = append(terminal, id)
		}
	}
	if len(terminal) <= s.cfg.MaxHistory {
		s.mu.Unlock()
		return
	}
	evict := make(map[string]bool, len(terminal)-s.cfg.MaxHistory)
	evicted := make([]string, 0, len(terminal)-s.cfg.MaxHistory)
	for _, id := range terminal[:len(terminal)-s.cfg.MaxHistory] {
		evict[id] = true
		evicted = append(evicted, id)
		delete(s.jobs, id)
	}
	for _, id := range evicted {
		s.memo.removeJob(id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !evict[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
	s.mu.Unlock()

	if s.durable == nil {
		return
	}
	for _, id := range evicted {
		if err := s.durable.Delete(kindJob, id, time.Now()); err != nil {
			s.logf("service: durable delete %s: %v", id, err)
		}
	}
}

// Status snapshots a job.
func (s *Scheduler) Status(id string) (JobStatus, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), true
}

// Jobs snapshots every job in submission order (replayed history first).
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Status(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// Result returns a finished job's envelope: the full self-describing
// result of the run, partial grids included for failed jobs. It is nil
// until the job reaches a terminal state (and stays nil for jobs canceled
// before they started).
func (s *Scheduler) Result(id string) (*autotune.Envelope, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.envelope, true
}

// Cancel stops a job: a queued job is marked canceled and skipped when a
// runner pops it; a locally running job's context is canceled, aborting
// its sweeps at the next configuration boundary; a leased job is
// terminated immediately (the worker's later posts get ErrLeaseLost); a
// deduped follower detaches alone, leaving the shared execution running
// for everyone else — canceling the primary, by contrast, cancels the
// whole coalesced group. Canceling a finished job returns ErrFinished.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	// Pull the job out of the pending queue first (s.mu strictly before
	// j.mu): a canceled queued job must free its queue slot immediately,
	// not when a busy runner eventually pops and discards it.
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	switch {
	case j.state.terminal():
		st := j.statusLocked()
		j.mu.Unlock()
		return st, ErrFinished
	case j.primary != nil:
		// Live follower: detach from the primary, then cancel alone.
		p := j.primary
		j.mu.Unlock()
		p.mu.Lock()
		for i, f := range p.followers {
			if f == j {
				p.followers = append(p.followers[:i], p.followers[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
	case j.state == StateRunning && j.cancel != nil:
		// Locally running: the terminal transition happens in runJob when
		// the stream drains; this just triggers it.
		j.cancel()
		st := j.statusLocked()
		j.mu.Unlock()
		return st, nil
	default:
		// Queued, or leased to a worker: terminate directly below.
		j.mu.Unlock()
	}

	if !s.terminate(j, StateCanceled, context.Canceled, nil, "canceled") {
		// Lost the race with completion.
		st, _ := s.Status(id)
		return st, ErrFinished
	}
	st, _ := s.Status(id)
	return st, nil
}

// Subscription is one live attachment to a job's event stream, returned by
// Subscribe.
type Subscription struct {
	// Past replays every event emitted before the subscription attached.
	Past []Event
	// C streams subsequent events. It is nil when the job was already
	// terminal (Past is then the complete history), and is closed after
	// the terminal event is delivered — or earlier, without one, when the
	// consumer was too slow to receive it; check Dropped on close.
	C <-chan Event

	j   *job
	sb  *subscriber
	idx int
}

// Dropped reports how many events this subscription lost to backpressure.
func (sub *Subscription) Dropped() int {
	if sub.sb == nil {
		return 0
	}
	sub.j.mu.Lock()
	defer sub.j.mu.Unlock()
	return sub.sb.dropped
}

// Close detaches the subscription. It is safe to call more than once and
// after the job finished.
func (sub *Subscription) Close() {
	if sub.sb == nil {
		return
	}
	sub.j.mu.Lock()
	defer sub.j.mu.Unlock()
	if _, still := sub.j.subs[sub.idx]; still {
		delete(sub.j.subs, sub.idx)
		close(sub.sb.ch)
	}
}

// Subscribe attaches to a job's event stream: a replay of past events plus
// a bounded live channel for the rest. Slow consumers lose intermediate
// events rather than blocking the scheduler — Subscription.Dropped counts
// the losses, and the SSE layer surfaces them as a lagged event.
func (s *Scheduler) Subscribe(id string) (*Subscription, bool) {
	j, found := s.lookup(id)
	if !found {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	sub := &Subscription{Past: append([]Event(nil), j.events...), j: j}
	if j.state.terminal() {
		return sub, true
	}
	sb := &subscriber{ch: make(chan Event, s.cfg.SubBuffer)}
	sub.sb = sb
	sub.idx = j.nextSub
	j.nextSub++
	j.subs[sub.idx] = sb
	sub.C = sb.ch
	return sub, true
}

// Wait blocks until the job reaches a terminal state (or ctx is done) and
// returns its final status.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	j, ok := s.lookup(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	st, _ := s.Status(id)
	return st, nil
}

// Close shuts the scheduler down gracefully: no new submissions, queued
// and running jobs are given until ctx is done to finish, then everything
// still running is canceled. Close returns when every runner has exited.
// Jobs leased to remote workers are not waited for; their result posts
// after Close fail with ErrLeaseLost or a closed listener.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stopJanitor)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.stop() // cancels every running job's context
		<-finished
		return ctx.Err()
	}
}

// runJob executes one popped job end to end on the calling runner.
func (s *Scheduler) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	spec := j.spec
	var prior *critter.Profile
	if spec.warm {
		prior = s.store.Get(spec.workload.Name())
	}
	var ring *obs.Ring
	if s.cfg.TraceEvents > 0 {
		ring = obs.NewRing(s.cfg.TraceEvents, obs.WallClock())
	}

	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued: never started.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.warmApplied = prior != nil
	j.attempts++
	j.started = time.Now()
	j.trace = ring
	j.emitLocked(Event{Type: "started", Job: j.id, Total: j.sweepsTotal})
	j.mu.Unlock()

	// The interface must stay untyped-nil when tracing is off: a typed-nil
	// *Ring would slip past the executor's nil checks and panic on Emit.
	var tracer obs.Tracer
	if ring != nil {
		tracer = ring
		ring.Emit(obs.Event{Kind: obs.KindJob, Phase: obs.PhaseBegin, Name: spec.workload.Name(), Job: j.id})
	}
	kernExec := s.met.kernelsExecuted.With(spec.workload.Name())
	kernSkip := s.met.kernelsSkipped.With(spec.workload.Name())
	kernMemo := s.met.kernelsMemoized.With(spec.workload.Name())

	s.tunerRuns.Add(1)
	env, merged, err := executeSpec(ctx, spec, s.cfg.Machine, s.cfg.Workers, s.cfg.Scheduler, prior, tracer, func(sw autotune.SweepResult, swErr error) {
		if sw.Executed > 0 {
			kernExec.Add(sw.Executed)
		}
		if sw.Skipped > 0 {
			kernSkip.Add(sw.Skipped)
		}
		if sw.KernelsMemoized > 0 {
			kernMemo.Add(sw.KernelsMemoized)
		}
		j.mu.Lock()
		j.sweepsDone++
		ev := Event{
			Type: "sweep", Job: j.id,
			Policy: sw.Policy.String(), Eps: sw.Eps,
			Done: j.sweepsDone, Total: j.sweepsTotal,
			Executed: sw.Executed, Skipped: sw.Skipped,
			Memoized: sw.KernelsMemoized,
		}
		if swErr != nil {
			ev.Error = swErr.Error()
		}
		j.emitLocked(ev)
		j.mu.Unlock()
	})
	if ring != nil {
		ev := obs.Event{Kind: obs.KindJob, Phase: obs.PhaseEnd, Name: spec.workload.Name(), Job: j.id}
		if err != nil {
			ev.Error = err.Error()
		}
		ring.Emit(ev)
	}

	// What the job learned feeds the store, partial grids included: a
	// timed-out run's completed sweeps are still valid statistics.
	s.mergeProfile(spec.workload.Name(), merged)

	state := StateDone
	typ := "done"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state, typ = StateCanceled, "canceled"
	default:
		state, typ = StateFailed, "failed"
	}
	s.terminate(j, state, err, env, typ)
}

// terminate drives a job (and its live followers) to a terminal state,
// updates the dedup maps, persists the outcome, and prunes history. It is
// the single terminal-transition path — runners, lease completion, the
// janitor's give-up, and cancellation all funnel through it. Reports false
// when the job was already terminal. Callers must not hold s.mu or any
// job lock.
func (s *Scheduler) terminate(j *job, state State, err error, env *autotune.Envelope, typ string) bool {
	now := time.Now()

	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = err
	j.envelope = env
	// j.worker stays: the terminal status records where the job ran. The
	// janitor skips terminal jobs, so the lease bookkeeping is moot.
	j.leaseDeadline = time.Time{}
	j.finished = now
	ev := Event{Type: typ, Job: j.id, Done: j.sweepsDone, Total: j.sweepsTotal}
	if err != nil {
		ev.Error = err.Error()
	}
	j.deliverLocked(ev)
	j.closeSubsLocked()
	close(j.done)
	worker := j.worker
	started := j.started
	followers := j.followers
	j.followers = nil
	recs := []persistedJob{{status: j.statusLocked(), envelope: env, request: j.persistRequest()}}
	j.mu.Unlock()

	// Followers share the outcome and the envelope pointer: the envelope
	// is immutable once terminal, so every follower's serialized result
	// is byte-identical to the primary's.
	transitioned := 0
	for _, f := range followers {
		f.mu.Lock()
		if f.state.terminal() {
			f.mu.Unlock()
			continue
		}
		transitioned++
		f.state = state
		f.err = err
		f.envelope = env
		f.worker = worker
		f.sweepsDone = ev.Done
		f.finished = now
		f.primary = nil
		fv := ev
		fv.Job = f.id
		f.deliverLocked(fv)
		f.closeSubsLocked()
		close(f.done)
		recs = append(recs, persistedJob{status: f.statusLocked(), envelope: env, request: f.persistRequest()})
		f.mu.Unlock()
	}

	// One s.mu section clears the in-flight registration and installs the
	// memo entry atomically, so a concurrent submit sees exactly one of
	// them — there is no window where an identical job would re-execute.
	// Memoization applies only to deterministic runs: dedup on, warm
	// start off (a warm run's output depends on the evolving profile
	// store), and a clean finish.
	s.mu.Lock()
	if j.spec != nil && j.spec.dedup {
		if s.inflight[j.spec.fingerprint] == j {
			delete(s.inflight, j.spec.fingerprint)
		}
		if state == StateDone && !j.spec.warm && env != nil {
			if evicted := s.memo.put(j.spec.fingerprint, j.id); evicted > 0 {
				s.met.memoEvictions.Add(int64(evicted))
			}
		}
	}
	for _, w := range s.workers {
		delete(w.jobs, j.id)
	}
	s.mu.Unlock()

	s.met.jobFinished(state)
	for i := 0; i < transitioned; i++ {
		s.met.jobFinished(state)
	}
	if !started.IsZero() {
		s.met.jobDuration.Observe(now.Sub(started).Seconds())
	}

	s.persistJobs(recs)
	s.pruneHistory()
	return true
}

// persistRequest returns the job's normalized request for the durable
// record. Callers hold j.mu.
func (j *job) persistRequest() JobRequest {
	if j.spec == nil {
		return JobRequest{}
	}
	return j.spec.req
}

// mergeProfile folds a finished run's learned profile into the shared
// store and persists the merged result durably.
func (s *Scheduler) mergeProfile(name string, p *critter.Profile) {
	if p == nil {
		return
	}
	s.store.Merge(name, p)
	if s.durable == nil {
		return
	}
	merged := s.store.Get(name)
	if merged == nil {
		return
	}
	data, err := merged.Encode()
	if err != nil {
		s.logf("service: encode profile %s: %v", name, err)
		return
	}
	now := time.Now()
	if err := s.durable.Append(store.Record{Kind: kindProfile, Key: name, At: now, Data: data}); err != nil {
		s.logf("service: persist profile %s: %v", name, err)
		return
	}
	s.mu.Lock()
	s.persisted[name] = now
	s.mu.Unlock()
}

// placeSweep stores a completed sweep into its (policy, eps) grid cell.
// With duplicate tolerances in the eps list the first unfilled matching
// cell wins — identical cells run identical worlds, so the values are
// interchangeable.
func placeSweep(res *autotune.Result, filled [][]bool, sw autotune.SweepResult) {
	for pi, pol := range res.Policies {
		if pol != sw.Policy {
			continue
		}
		for ei, eps := range res.EpsList {
			if eps == sw.Eps && !filled[pi][ei] {
				res.Sweeps[pi][ei] = sw
				filled[pi][ei] = true
				return
			}
		}
	}
}
