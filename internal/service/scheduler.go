// Package service turns tuning runs into schedulable jobs: a Scheduler
// with a bounded queue and per-job contexts wraps the autotune Tuner,
// streams completion-ordered progress events (reusing Tuner.Stream), and
// shares a ProfileStore so later jobs warm-start from what earlier jobs on
// the same workload learned. The HTTP layer (http.go, served by
// cmd/critter-serve) exposes it as a versioned JSON API.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/sim"
	"critter/internal/workload"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification of a running job, delivered in
// completion order (the order Tuner.Stream yields sweeps, not grid order).
// It is also the SSE payload shape of GET /v1/jobs/{id}/events.
type Event struct {
	// Type is queued, started, sweep, done, failed, or canceled.
	Type string `json:"type"`
	// Job is the job ID the event belongs to.
	Job string `json:"job"`
	// Policy and Eps identify the completed sweep's grid cell (sweep
	// events only; empty/zero otherwise). Eps is always emitted — 0 is a
	// legitimate sweep tolerance (selective execution disabled), so
	// omitting it would leave that cell unidentifiable.
	Policy string  `json:"policy,omitempty"`
	Eps    float64 `json:"eps"`
	// Done and Total count completed vs scheduled sweeps.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Executed and Skipped are the completed sweep's kernel counts,
	// always emitted on sweep events (0 executed is information, not
	// absence).
	Executed int64 `json:"executed"`
	Skipped  int64 `json:"skipped"`
	// Error carries a sweep's or the job's failure, when there is one.
	Error string `json:"error,omitempty"`
}

// JobStatus is the public snapshot of one job, and the JSON shape of
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Workload    string    `json:"workload"`
	Scale       string    `json:"scale"`
	Strategy    string    `json:"strategy"`
	Policies    []string  `json:"policies"`
	Eps         []float64 `json:"eps"`
	Seed        uint64    `json:"seed"`
	NoiseSigma  float64   `json:"noiseSigma"`
	Extrapolate bool      `json:"extrapolate"`
	// WarmStart reports whether the job actually applied a stored prior
	// (requested warm start AND the store had one for the workload).
	WarmStart   bool      `json:"warmStart"`
	SweepsDone  int       `json:"sweepsDone"`
	SweepsTotal int       `json:"sweepsTotal"`
	Error       string    `json:"error,omitempty"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started,omitzero"`
	Finished    time.Time `json:"finished,omitzero"`
}

// job is the scheduler's internal record of one submission.
type job struct {
	id   string
	spec *jobSpec

	mu          sync.Mutex
	state       State
	err         error
	envelope    *autotune.Envelope
	events      []Event
	subs        map[int]chan Event
	nextSub     int
	cancel      context.CancelFunc // set while running
	warmApplied bool
	sweepsDone  int
	sweepsTotal int
	submitted   time.Time
	started     time.Time
	finished    time.Time
	done        chan struct{} // closed on terminal state
}

// emitLocked appends an event and fans it out to subscribers. Callers hold
// j.mu. Subscriber channels are buffered to the job's maximal event count,
// so sends never block.
func (j *job) emitLocked(ev Event) {
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		ch <- ev
	}
}

// maxEvents bounds how many events one job can emit: queued + started +
// one per sweep + one terminal.
func (j *job) maxEvents() int { return j.sweepsTotal + 3 }

// closeSubsLocked detaches and closes every subscriber channel after the
// terminal event has been emitted. Callers hold j.mu.
func (j *job) closeSubsLocked() {
	for idx, ch := range j.subs {
		delete(j.subs, idx)
		close(ch)
	}
}

// statusLocked snapshots the job. Callers hold j.mu.
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Workload:    j.spec.workload.Name(),
		Scale:       j.spec.scaleName,
		Strategy:    j.spec.strategy.Name(),
		Policies:    append([]string(nil), j.spec.policyNames...),
		Eps:         append([]float64(nil), j.spec.eps...),
		Seed:        j.spec.seed,
		NoiseSigma:  j.spec.noise,
		Extrapolate: j.spec.extrapolate,
		WarmStart:   j.warmApplied,
		SweepsDone:  j.sweepsDone,
		SweepsTotal: j.sweepsTotal,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Config configures a Scheduler.
type Config struct {
	// Registry resolves job workloads; nil means the process-global
	// default registry.
	Registry *workload.Registry
	// Machine is the simulated machine model; its NoiseSigma is
	// overridden per job. The zero value means sim.DefaultMachine().
	Machine sim.Machine
	// QueueSize bounds the pending-job queue; Submit fails with
	// ErrQueueFull beyond it. 0 means 16.
	QueueSize int
	// Runners is how many jobs execute concurrently. 0 means 1: jobs run
	// strictly in submission order, each one's profile warm-starting the
	// next.
	Runners int
	// Workers bounds each job's sweep pool (Tuner.Workers); 0 means
	// GOMAXPROCS.
	Workers int
	// Store accumulates learned profiles across jobs; nil means a fresh
	// store private to this scheduler.
	Store *ProfileStore
	// MaxHistory bounds how many finished (terminal) jobs are retained
	// for Status/Result lookups; beyond it the oldest terminal jobs are
	// evicted, envelopes and event histories included, so a long-running
	// server cannot grow without bound. Queued and running jobs never
	// count against it. 0 means 256; negative disables eviction.
	MaxHistory int
}

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("service: scheduler is shutting down")

// ErrFinished is returned by Cancel for jobs already in a terminal state.
var ErrFinished = errors.New("service: job already finished")

// Scheduler executes submitted tuning jobs on a fixed set of runner
// goroutines, with a bounded queue, per-job cancellation, completion-order
// progress events, and a shared warm-start profile store.
type Scheduler struct {
	cfg     Config
	reg     *workload.Registry
	store   *ProfileStore
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// mu guards everything below; cond (tied to mu) wakes runners when
	// pending grows or the scheduler closes. Lock order: mu before any
	// job's mu — runners release mu before touching the popped job.
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*job // the bounded queue; canceling a queued job removes it here
	jobs    map[string]*job
	order   []string
	nextID  int
	closed  bool
}

// New starts a scheduler: its runner goroutines live until Close.
func New(cfg Config) *Scheduler {
	if cfg.Registry == nil {
		cfg.Registry = workload.Default()
	}
	if (cfg.Machine == sim.Machine{}) {
		cfg.Machine = sim.DefaultMachine()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 16
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.Store == nil {
		cfg.Store = NewProfileStore()
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = 256
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		reg:     cfg.Registry,
		store:   cfg.Store,
		baseCtx: ctx,
		stop:    stop,
		jobs:    make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.nextJob()
				if !ok {
					return
				}
				s.runJob(j)
			}
		}()
	}
	return s
}

// nextJob blocks until a pending job is available or the scheduler is
// closed and drained.
func (s *Scheduler) nextJob() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.pending) == 0 {
		return nil, false
	}
	j := s.pending[0]
	s.pending = s.pending[1:]
	return j, true
}

// Store returns the scheduler's shared profile store.
func (s *Scheduler) Store() *ProfileStore { return s.store }

// Registry returns the registry jobs resolve workloads against.
func (s *Scheduler) Registry() *workload.Registry { return s.reg }

// SubmitJSON parses, validates, and enqueues a JSON job submission (the
// body of POST /v1/jobs). Validation failures are returned verbatim for
// the HTTP layer's 400; ErrQueueFull and ErrClosed map to 503.
func (s *Scheduler) SubmitJSON(data []byte) (JobStatus, error) {
	spec, err := ParseJobRequest(s.reg, data)
	if err != nil {
		return JobStatus{}, err
	}
	return s.submit(spec)
}

// submit enqueues a resolved spec.
func (s *Scheduler) submit(spec *jobSpec) (JobStatus, error) {
	j := &job{
		spec:        spec,
		state:       StateQueued,
		subs:        make(map[int]chan Event),
		sweepsTotal: len(spec.policies) * len(spec.eps),
		submitted:   time.Now(),
		done:        make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	// The pending list is the bound: running jobs have left it, and
	// canceled queued jobs are removed immediately, so capacity counts
	// only work that is genuinely waiting.
	if len(s.pending) >= s.cfg.QueueSize {
		s.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	// Record the queued event before the job becomes reachable: once it
	// is on the queue a runner may start it immediately, and "started"
	// must never precede "queued" in the event history. The job is still
	// private here, so no lock is needed for the append.
	j.events = append(j.events, Event{Type: "queued", Job: j.id, Total: j.sweepsTotal})
	s.pending = append(s.pending, j)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.cond.Signal()
	s.mu.Unlock()

	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), nil
}

// lookup resolves a job by ID.
func (s *Scheduler) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// pruneHistory evicts the oldest terminal jobs beyond MaxHistory. Called
// after a job reaches a terminal state, outside any job lock (s.mu is
// taken first, each candidate's j.mu second — the scheduler's lock
// order).
func (s *Scheduler) pruneHistory() {
	if s.cfg.MaxHistory < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var terminal []string
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		isTerminal := j.state.terminal()
		j.mu.Unlock()
		if isTerminal {
			terminal = append(terminal, id)
		}
	}
	if len(terminal) <= s.cfg.MaxHistory {
		return
	}
	evict := make(map[string]bool, len(terminal)-s.cfg.MaxHistory)
	for _, id := range terminal[:len(terminal)-s.cfg.MaxHistory] {
		evict[id] = true
		delete(s.jobs, id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !evict[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// Status snapshots a job.
func (s *Scheduler) Status(id string) (JobStatus, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), true
}

// Jobs snapshots every job in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Status(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// Result returns a finished job's envelope: the full self-describing
// result of the run, partial grids included for failed jobs. It is nil
// until the job reaches a terminal state (and stays nil for jobs canceled
// before they started).
func (s *Scheduler) Result(id string) (*autotune.Envelope, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.envelope, true
}

// Cancel stops a job: a queued job is marked canceled and skipped when a
// runner pops it; a running job's context is canceled, aborting its sweeps
// at the next configuration boundary. Canceling a finished job returns
// ErrFinished.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	// Pull the job out of the pending queue first (s.mu strictly before
	// j.mu): a canceled queued job must free its queue slot immediately,
	// not when a busy runner eventually pops and discards it.
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	var retErr error
	prune := false
	switch {
	case j.state == StateQueued:
		// Either removed from pending above, or popped by a runner that
		// has not started it yet — the runner's own state check will
		// skip it either way.
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		j.emitLocked(Event{Type: "canceled", Job: j.id, Done: j.sweepsDone, Total: j.sweepsTotal, Error: j.err.Error()})
		j.closeSubsLocked()
		close(j.done)
		prune = true
	case j.state == StateRunning:
		// The terminal transition happens in runJob when the stream
		// drains; this just triggers it.
		j.cancel()
	default:
		retErr = ErrFinished
	}
	st := j.statusLocked()
	j.mu.Unlock()
	if prune {
		// Outside j.mu: pruning takes s.mu first, then job locks (the
		// scheduler's lock order).
		s.pruneHistory()
	}
	return st, retErr
}

// Subscribe returns a replay of the job's past events plus a live channel
// for the rest, and an unsubscribe func. The live channel is nil when the
// job is already terminal (the replay is complete); otherwise it is closed
// after the terminal event is delivered.
func (s *Scheduler) Subscribe(id string) (past []Event, live <-chan Event, unsubscribe func(), ok bool) {
	j, found := s.lookup(id)
	if !found {
		return nil, nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	past = append([]Event(nil), j.events...)
	if j.state.terminal() {
		return past, nil, func() {}, true
	}
	ch := make(chan Event, j.maxEvents())
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = ch
	unsubscribe = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, still := j.subs[idx]; still {
			delete(j.subs, idx)
			close(ch)
		}
	}
	return past, ch, unsubscribe, true
}

// Wait blocks until the job reaches a terminal state (or ctx is done) and
// returns its final status.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	j, ok := s.lookup(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	st, _ := s.Status(id)
	return st, nil
}

// Close shuts the scheduler down gracefully: no new submissions, queued
// and running jobs are given until ctx is done to finish, then everything
// still running is canceled. Close returns when every runner has exited.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.stop() // cancels every running job's context
		<-finished
		return ctx.Err()
	}
}

// runJob executes one popped job end to end on the calling runner.
func (s *Scheduler) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	spec := j.spec
	var prior *critter.Profile
	if spec.warm {
		prior = s.store.Get(spec.workload.Name())
	}

	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued: never started.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.warmApplied = prior != nil
	j.started = time.Now()
	j.emitLocked(Event{Type: "started", Job: j.id, Total: j.sweepsTotal})
	j.mu.Unlock()

	study := spec.workload.Build(spec.scale)
	machine := s.cfg.Machine
	machine.NoiseSigma = spec.noise
	tn := autotune.Tuner{
		Study:       study,
		EpsList:     spec.eps,
		Machine:     machine,
		Seed:        spec.seed,
		Policies:    spec.policies,
		Strategy:    spec.strategy,
		Prior:       prior,
		Extrapolate: spec.extrapolate,
		Workers:     s.cfg.Workers,
	}

	// Stream the grid: sweeps arrive in completion order for the event
	// feed and are placed back into their (policy, eps) cells, rebuilding
	// exactly the grid Tuner.Run would have returned (failed cells
	// zeroed).
	res := &autotune.Result{
		Study:    study.Name,
		Strategy: spec.strategy.Name(),
		Policies: spec.policies,
		EpsList:  spec.eps,
		Sweeps:   make([][]autotune.SweepResult, len(spec.policies)),
	}
	filled := make([][]bool, len(spec.policies))
	for pi := range res.Sweeps {
		res.Sweeps[pi] = make([]autotune.SweepResult, len(spec.eps))
		filled[pi] = make([]bool, len(spec.eps))
	}
	var errs []error
	for sw, err := range tn.Stream(ctx) {
		if err == nil {
			placeSweep(res, filled, sw)
		} else {
			errs = append(errs, err)
		}
		j.mu.Lock()
		j.sweepsDone++
		ev := Event{
			Type: "sweep", Job: j.id,
			Policy: sw.Policy.String(), Eps: sw.Eps,
			Done: j.sweepsDone, Total: j.sweepsTotal,
			Executed: sw.Executed, Skipped: sw.Skipped,
		}
		if err != nil {
			ev.Error = err.Error()
		}
		j.emitLocked(ev)
		j.mu.Unlock()
	}

	// What the job learned feeds the store, partial grids included: a
	// timed-out run's completed sweeps are still valid statistics.
	merged := autotune.MergedProfile(res)
	s.store.Merge(spec.workload.Name(), merged)

	env := &autotune.Envelope{
		SchemaVersion: autotune.ResultSchemaVersion,
		Study:         study.Name,
		Scale:         spec.scaleName,
		Seed:          spec.seed,
		NoiseSigma:    spec.noise,
		Strategy:      spec.strategy.Name(),
		Profiles:      autotune.ProfileSummaries(res),
		Result:        res,
	}
	if prior != nil {
		sum := autotune.Summarize("", 0, prior)
		env.Prior = &sum
	}

	err := errors.Join(errs...)
	state := StateDone
	typ := "done"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state, typ = StateCanceled, "canceled"
	default:
		state, typ = StateFailed, "failed"
	}

	j.mu.Lock()
	j.state = state
	j.err = err
	j.envelope = env
	j.finished = time.Now()
	ev := Event{Type: typ, Job: j.id, Done: j.sweepsDone, Total: j.sweepsTotal}
	if err != nil {
		ev.Error = err.Error()
	}
	j.emitLocked(ev)
	j.closeSubsLocked()
	close(j.done)
	j.mu.Unlock()

	s.pruneHistory()
}

// placeSweep stores a completed sweep into its (policy, eps) grid cell.
// With duplicate tolerances in the eps list the first unfilled matching
// cell wins — identical cells run identical worlds, so the values are
// interchangeable.
func placeSweep(res *autotune.Result, filled [][]bool, sw autotune.SweepResult) {
	for pi, pol := range res.Policies {
		if pol != sw.Policy {
			continue
		}
		for ei, eps := range res.EpsList {
			if eps == sw.Eps && !filled[pi][ei] {
				res.Sweeps[pi][ei] = sw
				filled[pi][ei] = true
				return
			}
		}
	}
}
