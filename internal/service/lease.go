package service

// The multi-node surface: remote workers (critter-serve -mode=worker)
// register here, poll for job leases, stream sweep events back (every post
// doubles as a heartbeat that extends the lease), and post final results.
// Liveness is deadline-driven: the janitor goroutine requeues any leased
// job whose deadline passed — at the FRONT of the queue, so recovered work
// runs next — and a job that burns maxLeaseAttempts leases is failed
// rather than requeued forever. A dead worker therefore degrades
// throughput; it never loses a job.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
)

// maxLeaseAttempts bounds how many times a job is handed out before the
// scheduler gives up and fails it: a job that kills three workers in a row
// is more likely poison than unlucky.
const maxLeaseAttempts = 3

// ErrUnknownWorker is returned for a worker ID the scheduler does not
// know — never registered, or forgotten after going quiet. The worker's
// recovery is to register again; the HTTP layer maps it to 404.
var ErrUnknownWorker = errors.New("service: unknown worker (register again)")

// ErrLeaseLost is returned when a worker posts against a job it no longer
// holds: the lease expired and the job was requeued, completed elsewhere,
// or canceled. The worker should drop the job; the HTTP layer maps it to
// 409.
var ErrLeaseLost = errors.New("service: lease no longer held")

// workerState is the scheduler's view of one registered worker.
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	jobs     map[string]bool // job IDs currently leased to this worker
}

// WorkerStatus is one entry of GET /v1/workers.
type WorkerStatus struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	LastSeen time.Time `json:"lastSeen"`
	Jobs     []string  `json:"jobs,omitempty"`
}

// LeaseGrant is one leased job: the normalized request a worker re-resolves
// into the identical spec, plus the warm-start prior the scheduler would
// have applied locally (encoded profile), plus the lease length.
type LeaseGrant struct {
	Job         string          `json:"job"`
	Request     JobRequest      `json:"request"`
	Prior       json.RawMessage `json:"prior,omitempty"`
	LeaseMillis int64           `json:"leaseMillis"`
}

// RegisterWorker admits a worker and returns its ID plus the lease TTL it
// must heartbeat within.
func (s *Scheduler) RegisterWorker(name string) (string, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", 0, ErrClosed
	}
	s.nextWorker++
	id := fmt.Sprintf("w-%d", s.nextWorker)
	s.workers[id] = &workerState{id: id, name: name, lastSeen: time.Now(), jobs: make(map[string]bool)}
	return id, s.cfg.LeaseTTL, nil
}

// Workers snapshots every registered worker, ordered by ID.
func (s *Scheduler) Workers() []WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, 0, len(s.workers))
	for _, w := range s.workers {
		ws := WorkerStatus{ID: w.id, Name: w.name, LastSeen: w.lastSeen}
		for id := range w.jobs {
			ws.Jobs = append(ws.Jobs, id)
		}
		sort.Strings(ws.Jobs)
		out = append(out, ws)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// LeaseJob hands the worker the next queued job, or (nil, nil) when the
// queue is empty. The job transitions to running with a lease deadline;
// the grant carries everything the worker needs to execute it remotely.
func (s *Scheduler) LeaseJob(workerID string) (*LeaseGrant, error) {
	now := time.Now()
	s.mu.Lock()
	w, ok := s.workers[workerID]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownWorker
	}
	w.lastSeen = now

	var j *job
	for len(s.pending) > 0 {
		cand := s.pending[0]
		s.pending = s.pending[1:]
		cand.mu.Lock()
		if cand.state == StateQueued {
			j = cand // keep cand.mu held; released below
			break
		}
		// Canceled while queued; a runner popping it would skip it too.
		cand.mu.Unlock()
	}
	if j == nil {
		s.mu.Unlock()
		return nil, nil
	}
	w.jobs[j.id] = true

	var prior *critter.Profile
	if j.spec.warm {
		prior = s.store.Get(j.spec.workload.Name())
	}
	j.state = StateRunning
	j.worker = workerID
	j.leaseDeadline = now.Add(s.cfg.LeaseTTL)
	j.attempts++
	j.warmApplied = prior != nil
	if j.started.IsZero() {
		j.started = now
	}
	j.emitLocked(Event{Type: "started", Job: j.id, Total: j.sweepsTotal, Worker: workerID})
	grant := &LeaseGrant{
		Job:         j.id,
		Request:     j.spec.req,
		LeaseMillis: leaseMillis(s.cfg.LeaseTTL),
	}
	j.mu.Unlock()
	s.mu.Unlock()

	if prior != nil {
		if data, err := prior.Encode(); err == nil {
			grant.Prior = data
		}
	}
	return grant, nil
}

// leaseMillis renders a TTL for the wire, at least 1. Milliseconds, not
// seconds: rounding a sub-second TTL up to whole seconds would tell the
// worker to heartbeat slower than the lease actually expires.
func leaseMillis(ttl time.Duration) int64 {
	ms := ttl.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// ExtendLease is the worker heartbeat: it extends the job's lease deadline
// and folds any completed-sweep events into the job's stream (Done/Total
// are recomputed server-side; an empty batch is a pure heartbeat).
func (s *Scheduler) ExtendLease(workerID, jobID string, events []Event) error {
	now := time.Now()
	s.mu.Lock()
	w, ok := s.workers[workerID]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownWorker
	}
	w.lastSeen = now
	j, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		return ErrLeaseLost
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.worker != workerID {
		return ErrLeaseLost
	}
	workloadName := j.spec.workload.Name()
	j.leaseDeadline = now.Add(s.cfg.LeaseTTL)
	for _, ev := range events {
		if ev.Type != "sweep" {
			continue
		}
		// Worker-supplied counts feed monotone counters; negative values
		// (a broken or hostile worker) must not panic the coordinator.
		if ev.Executed > 0 {
			s.met.kernelsExecuted.With(workloadName).Add(ev.Executed)
		}
		if ev.Skipped > 0 {
			s.met.kernelsSkipped.With(workloadName).Add(ev.Skipped)
		}
		if ev.Memoized > 0 {
			s.met.kernelsMemoized.With(workloadName).Add(ev.Memoized)
		}
		j.sweepsDone++
		j.emitLocked(Event{
			Type: "sweep", Job: j.id,
			Policy: ev.Policy, Eps: ev.Eps,
			Done: j.sweepsDone, Total: j.sweepsTotal,
			Executed: ev.Executed, Skipped: ev.Skipped,
			Memoized: ev.Memoized,
			Error:    ev.Error,
			Worker:   workerID,
		})
	}
	return nil
}

// CompleteLease finishes a leased job with the worker's result: the
// envelope it produced, the merged profile it learned (shipped separately
// because sweep profiles never serialize into envelopes), and an error
// message for failed runs.
func (s *Scheduler) CompleteLease(workerID, jobID string, envData, profileData []byte, errMsg string) error {
	now := time.Now()
	s.mu.Lock()
	w, ok := s.workers[workerID]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownWorker
	}
	w.lastSeen = now
	j, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		return ErrLeaseLost
	}

	j.mu.Lock()
	if j.state != StateRunning || j.worker != workerID {
		j.mu.Unlock()
		return ErrLeaseLost
	}
	// Take ownership against the janitor: push the deadline far out so the
	// expiry scan skips this job until terminate below lands the terminal
	// state. j.worker stays set so the final status records where the job
	// ran.
	j.leaseDeadline = now.Add(24 * time.Hour)
	workloadName := j.spec.workload.Name()
	j.mu.Unlock()

	var env *autotune.Envelope
	if len(envData) > 0 {
		e, err := autotune.DecodeEnvelope(envData)
		if err != nil && errMsg == "" {
			errMsg = fmt.Sprintf("worker returned undecodable envelope: %v", err)
		}
		env = e
	}
	if len(profileData) > 0 {
		p, err := critter.DecodeProfile(profileData)
		if err != nil {
			s.logf("service: worker %s profile for %s: %v", workerID, jobID, err)
		} else {
			s.mergeProfile(workloadName, p)
		}
	}
	state, typ := StateDone, "done"
	var jerr error
	if errMsg != "" {
		state, typ = StateFailed, "failed"
		jerr = errors.New(errMsg)
	}
	s.terminate(j, state, jerr, env, typ)
	return nil
}

// janitor periodically expires dead leases and forgets quiet workers. It
// runs until Close.
func (s *Scheduler) janitor() {
	interval := s.cfg.LeaseTTL / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopJanitor:
			return
		case now := <-t.C:
			s.expireLeases(now)
		}
	}
}

// expireLeases requeues every leased job whose deadline passed (front of
// the queue — recovered work should not wait behind fresh submissions),
// fails jobs that exhausted their attempts, and forgets workers that have
// been quiet for 3 lease TTLs while holding nothing.
func (s *Scheduler) expireLeases(now time.Time) {
	var giveUp []*job
	s.mu.Lock()
	for wid, w := range s.workers {
		for id := range w.jobs {
			j := s.jobs[id]
			if j == nil {
				delete(w.jobs, id)
				continue
			}
			j.mu.Lock()
			if j.state.terminal() {
				// Canceled (or otherwise finished) while leased; release
				// the roster entry.
				j.mu.Unlock()
				delete(w.jobs, id)
				continue
			}
			if j.state != StateRunning || j.worker != wid || !now.After(j.leaseDeadline) {
				j.mu.Unlock()
				continue
			}
			delete(w.jobs, id)
			s.met.leaseExpiries.Inc()
			if j.attempts >= maxLeaseAttempts {
				j.mu.Unlock()
				giveUp = append(giveUp, j)
				continue
			}
			j.state = StateQueued
			j.worker = ""
			j.leaseDeadline = time.Time{}
			// Progress restarts from zero: the next executor replays the
			// whole grid (sweeps are deterministic, so nothing is lost but
			// time).
			j.sweepsDone = 0
			attempts := j.attempts
			j.emitLocked(Event{Type: "requeued", Job: j.id, Total: j.sweepsTotal, Worker: wid})
			j.mu.Unlock()
			s.pending = append([]*job{j}, s.pending...)
			s.cond.Signal()
			s.met.jobsRequeued.Inc()
			s.logf("service: requeued %s after worker %s lease expired (attempt %d/%d)", id, wid, attempts, maxLeaseAttempts)
		}
		if len(w.jobs) == 0 && now.Sub(w.lastSeen) > 3*s.cfg.LeaseTTL {
			delete(s.workers, wid)
		}
	}
	s.mu.Unlock()

	for _, j := range giveUp {
		err := fmt.Errorf("service: lease expired %d times; giving up", maxLeaseAttempts)
		s.met.leaseGiveups.Inc()
		s.terminate(j, StateFailed, err, nil, "failed")
		s.logf("service: failed %s: %v", j.id, err)
	}
}
