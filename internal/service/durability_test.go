package service

import (
	"bytes"
	"testing"

	"critter/internal/store"
)

// TestRestartDurability is the restart acceptance test, in three lives of
// one store directory:
//
//	life 1: run a cold job to completion, shut down cleanly.
//	life 2: reopen; verify the finished job replayed. Queue a job on a
//	        runner-less scheduler and shut down with it still pending —
//	        the crash-with-queued-work case.
//	life 3: reopen; the finished job is still queryable with a
//	        byte-identical envelope, the never-started job is gone (the
//	        documented reject-on-restart semantics), the persisted
//	        profile warm-starts a new job into strictly fewer executed
//	        kernels than the cold run, and a resubmission of the cold
//	        spec is served from the replayed memo without re-executing.
func TestRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	dir := t.TempDir()
	const coldBody = `{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125],"seed":11,"warmStart":false}`

	// Life 1: cold job to completion.
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Runners: 1, Durable: st1})
	cold := submitWait(t, s1, coldBody)
	if cold.State != StateDone {
		t.Fatalf("cold job finished %s (err %q)", cold.State, cold.Error)
	}
	coldEnv := envelopeJSON(t, s1, cold.ID)
	coldExec := mustExecuted(t, s1, cold.ID)
	closeNow(t, s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: the finished job replayed; park a fresh job on a
	// runner-less scheduler and "crash" with it queued.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Runners: -1, Durable: st2})
	replayed, ok := s2.Status(cold.ID)
	if !ok || replayed.State != StateDone {
		t.Fatalf("job %s after restart: ok=%v status %+v", cold.ID, ok, replayed)
	}
	if got := envelopeJSON(t, s2, cold.ID); !bytes.Equal(got, coldEnv) {
		t.Errorf("replayed envelope differs from the original:\n%s\nvs\n%s", got, coldEnv)
	}
	queued, err := s2.SubmitJSON([]byte(`{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.25],"seed":99,"warmStart":false}`))
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != StateQueued {
		t.Fatalf("job on a runner-less scheduler is %s, want queued", queued.State)
	}
	if queued.ID == cold.ID {
		t.Fatalf("replay did not advance job IDs: new job reused %s", cold.ID)
	}
	closeNow(t, s2)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 3: history and profiles survived; queued-but-unstarted did not.
	st3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st3.Close(); err != nil {
			t.Error(err)
		}
	}()
	s3 := New(Config{Runners: 1, Durable: st3})
	defer closeNow(t, s3)

	if again, ok := s3.Status(cold.ID); !ok || again.State != StateDone {
		t.Fatalf("job %s after second restart: ok=%v status %+v", cold.ID, ok, again)
	}
	if got := envelopeJSON(t, s3, cold.ID); !bytes.Equal(got, coldEnv) {
		t.Error("second replay corrupted the envelope")
	}
	if _, ok := s3.Status(queued.ID); ok {
		t.Errorf("queued-but-unstarted job %s survived the restart; restart semantics say it is rejected", queued.ID)
	}
	if _, at, ok := s3.ProfileInfo("candmc"); !ok || at.IsZero() {
		t.Errorf("persisted profile after restart: ok=%v persistedAt=%v", ok, at)
	}

	// The durable profile warm-starts new work: strictly fewer executed
	// kernels than the cold run, with no job yet executed in this life.
	warm := submitWait(t, s3, `{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125],"seed":11,"warmStart":true}`)
	if warm.State != StateDone {
		t.Fatalf("warm job finished %s (err %q)", warm.State, warm.Error)
	}
	if !warm.WarmStart {
		t.Error("restarted scheduler did not warm-start from the durable profile")
	}
	warmExec := mustExecuted(t, s3, warm.ID)
	if warmExec >= coldExec {
		t.Errorf("warm job executed %d kernels, want strictly fewer than the cold run's %d", warmExec, coldExec)
	}
	t.Logf("cold executed %d, warm-after-restart executed %d", coldExec, warmExec)

	// The memo replayed too: the cold spec resubmitted is served from
	// history without another Tuner run.
	runsBefore := s3.TunerRuns()
	memo, err := s3.SubmitJSON([]byte(coldBody))
	if err != nil {
		t.Fatal(err)
	}
	if !memo.Deduped || memo.State != StateDone {
		t.Fatalf("resubmitted cold spec after restart: %+v, want a memo hit", memo)
	}
	if got := envelopeJSON(t, s3, memo.ID); !bytes.Equal(got, coldEnv) {
		t.Error("memoized envelope after restart differs from the original")
	}
	if runs := s3.TunerRuns(); runs != runsBefore {
		t.Errorf("memo hit after restart re-executed the Tuner (%d -> %d runs)", runsBefore, runs)
	}
}

// mustExecuted returns the executed-kernel count of a finished job's only
// sweep.
func mustExecuted(t *testing.T, s *Scheduler, id string) int64 {
	t.Helper()
	env, ok := s.Result(id)
	if !ok || env == nil || env.Result == nil || len(env.Result.Sweeps) == 0 || len(env.Result.Sweeps[0]) == 0 {
		t.Fatalf("job %s has no sweep results", id)
	}
	return env.Result.Sweeps[0][0].Executed
}
