package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestLeaseExpiryAndGiveUp exercises the lease state machine with a fake
// worker that keeps dying: each expired lease requeues the job at the
// front with progress reset, and the third death fails it rather than
// requeueing forever.
func TestLeaseExpiryAndGiveUp(t *testing.T) {
	s := New(Config{Registry: blockingRegistry(make(chan struct{})), Runners: -1, LeaseTTL: 200 * time.Millisecond})
	defer closeNow(t, s)

	st, err := s.SubmitJSON([]byte(`{"workload":"block","eps":[0.25],"warmStart":false}`))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.LeaseJob("w-bogus"); err != ErrUnknownWorker {
		t.Errorf("lease with unregistered worker: %v, want ErrUnknownWorker", err)
	}

	wid, ttl, err := s.RegisterWorker("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if ttl != 200*time.Millisecond {
		t.Errorf("registered TTL %v", ttl)
	}

	requeues := 0
	for attempt := 1; attempt <= maxLeaseAttempts; attempt++ {
		grant, err := s.LeaseJob(wid)
		if err != nil {
			t.Fatalf("lease attempt %d: %v", attempt, err)
		}
		if grant == nil || grant.Job != st.ID {
			t.Fatalf("lease attempt %d granted %+v, want job %s", attempt, grant, st.ID)
		}
		if grant.Request.Workload != "block" {
			t.Errorf("grant request %+v", grant.Request)
		}
		running, _ := s.Status(st.ID)
		if running.State != StateRunning || running.Worker != wid || running.Attempts != attempt {
			t.Fatalf("leased status %+v (attempt %d)", running, attempt)
		}
		// Report one sweep, then die: no more heartbeats.
		if err := s.ExtendLease(wid, st.ID, []Event{{Type: "sweep", Policy: "conditional", Eps: 0.25, Executed: 1}}); err != nil {
			t.Fatalf("heartbeat attempt %d: %v", attempt, err)
		}
		if mid, _ := s.Status(st.ID); mid.SweepsDone != 1 {
			t.Errorf("sweep event not folded in: %+v", mid)
		}

		// Wait for the janitor to notice the dead lease.
		deadline := time.Now().Add(5 * time.Second)
		for {
			cur, _ := s.Status(st.ID)
			if attempt < maxLeaseAttempts && cur.State == StateQueued {
				if cur.SweepsDone != 0 {
					t.Errorf("requeued job kept progress: %+v", cur)
				}
				requeues++
				break
			}
			if attempt == maxLeaseAttempts && cur.State == StateFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d: job stuck in %s", attempt, cur.State)
			}
			time.Sleep(10 * time.Millisecond)
		}

		// The lease really is gone: posting against it is rejected.
		if err := s.ExtendLease(wid, st.ID, nil); err != ErrLeaseLost {
			t.Errorf("heartbeat after expiry: %v, want ErrLeaseLost", err)
		}
	}

	final, _ := s.Status(st.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("after %d dead leases: %+v, want failed with an error", maxLeaseAttempts, final)
	}
	if requeues != maxLeaseAttempts-1 {
		t.Errorf("saw %d requeues, want %d", requeues, maxLeaseAttempts-1)
	}
	sub, ok := s.Subscribe(st.ID)
	if !ok {
		t.Fatal("finished job has no event history")
	}
	defer sub.Close()
	var requeueEvents int
	for _, ev := range sub.Past {
		if ev.Type == "requeued" {
			requeueEvents++
			if ev.Worker != wid {
				t.Errorf("requeued event names worker %q, want %q", ev.Worker, wid)
			}
		}
	}
	if requeueEvents != maxLeaseAttempts-1 {
		t.Errorf("event history has %d requeued events, want %d", requeueEvents, maxLeaseAttempts-1)
	}
}

// TestWorkerExecutesLeasedJob runs a real Worker against a runner-less
// coordinator over HTTP: the job completes remotely with an envelope
// byte-identical to a local run, and the learned profile lands in the
// coordinator's store.
func TestWorkerExecutesLeasedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	const body = `{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125],"seed":11,"warmStart":false}`

	// Reference envelope from a plain local scheduler.
	local := New(Config{Runners: 1})
	ref := submitWait(t, local, body)
	refEnv := envelopeJSON(t, local, ref.ID)
	closeNow(t, local)

	s := New(Config{Runners: -1, LeaseTTL: 5 * time.Second})
	defer closeNow(t, s)
	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()

	w, err := NewWorker(WorkerOptions{Base: ts.URL, Name: "remote-1", Poll: 20 * time.Millisecond, Client: ts.Client(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(ctx) }()
	defer func() {
		cancel()
		<-workerDone
	}()

	st, err := s.SubmitJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("remote job finished %s (err %q)", final.State, final.Error)
	}
	if final.Worker == "" {
		t.Error("finished status does not name the worker that ran it")
	}
	if got := envelopeJSON(t, s, st.ID); !bytes.Equal(got, refEnv) {
		t.Errorf("remote envelope differs from the local run:\n%s\nvs\n%s", got, refEnv)
	}
	if s.Store().Get("candmc") == nil {
		t.Error("worker's learned profile never reached the coordinator's store")
	}
	workers := s.Workers()
	if len(workers) != 1 || workers[0].Name != "remote-1" {
		t.Errorf("worker roster %+v", workers)
	}
}

// TestWorkerDeathMidSweepJobStillCompletes is the fault-tolerance
// acceptance test: a worker leases a job, reports progress, and dies
// mid-run; the janitor requeues the job and a healthy worker finishes it.
func TestWorkerDeathMidSweepJobStillCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	// The TTL balances two clocks: the doomed worker's death is detected
	// after one TTL, and the healthy worker must heartbeat well inside it
	// while sweep execution saturates the CPU.
	s := New(Config{Runners: -1, LeaseTTL: 2 * time.Second})
	defer closeNow(t, s)
	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()

	st, err := s.SubmitJSON([]byte(`{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125],"seed":11,"warmStart":false}`))
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes the lease, reports a sweep mid-flight, then
	// vanishes without completing.
	doomed, _, err := s.RegisterWorker("doomed")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.LeaseJob(doomed)
	if err != nil || grant == nil || grant.Job != st.ID {
		t.Fatalf("doomed lease: %+v, %v", grant, err)
	}
	if err := s.ExtendLease(doomed, st.ID, []Event{{Type: "sweep", Policy: "online", Eps: 0.125, Executed: 10}}); err != nil {
		t.Fatal(err)
	}

	// Wait for the requeue, then bring up a healthy real worker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Status(st.ID)
		if cur.State == StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never requeued after worker death (state %s)", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	w, err := NewWorker(WorkerOptions{Base: ts.URL, Name: "healthy", Poll: 20 * time.Millisecond, Client: ts.Client(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(ctx) }()
	defer func() {
		cancel()
		<-workerDone
	}()

	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s after worker death (err %q), want done", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("finished after %d attempts, want 2 (one dead, one healthy)", final.Attempts)
	}
	if final.SweepsDone != final.SweepsTotal {
		t.Errorf("finished with %d/%d sweeps", final.SweepsDone, final.SweepsTotal)
	}
	sub, ok := s.Subscribe(st.ID)
	if !ok {
		t.Fatal("no event history")
	}
	defer sub.Close()
	sawRequeue := false
	for _, ev := range sub.Past {
		if ev.Type == "requeued" && ev.Worker == doomed {
			sawRequeue = true
		}
	}
	if !sawRequeue {
		t.Error("event history never recorded the requeue")
	}
	if env, ok := s.Result(st.ID); !ok || env == nil || env.Result == nil {
		t.Error("recovered job has no result envelope")
	}
}
