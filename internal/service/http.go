package service

// The versioned HTTP JSON API over the Scheduler, served by
// cmd/critter-serve:
//
//	POST   /v1/jobs                 submit a tuning job (JobRequest body)
//	GET    /v1/jobs                 list every job's status
//	GET    /v1/jobs/{id}            one job's status
//	DELETE /v1/jobs/{id}            cancel a job
//	GET    /v1/jobs/{id}/events     completion-ordered progress (SSE)
//	GET    /v1/jobs/{id}/result     a finished job's result envelope
//	GET    /v1/jobs/{id}/trace      a locally executed job's span events
//	GET    /v1/metrics              the metrics registry as JSON
//	GET    /metrics                 the same, Prometheus text format
//	GET    /v1/workloads            the registry's workload catalog
//	GET    /v1/profiles/{workload}  the accumulated warm-start profile
//	POST   /v1/workers              register a worker process
//	GET    /v1/workers              list registered workers
//	POST   /v1/workers/{id}/lease   lease the next queued job (204 = none)
//	POST   /v1/workers/{id}/jobs/{job}/events   sweep events / heartbeat
//	POST   /v1/workers/{id}/jobs/{job}/result   final result of a lease
//
// Responses are JSON; errors are {"error": "..."} with conventional
// status codes (400 malformed request, 404 unknown resource, 409 wrong
// state or lost lease, 429 queue full — with a Retry-After header and a
// retryAfterSeconds field — and 503 shutting down).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"critter/internal/obs"
)

// maxJobBodyBytes bounds a job-submission body; a tuning request is a few
// hundred bytes of JSON, so anything larger is garbage or abuse.
const maxJobBodyBytes = 1 << 20

// maxWorkerBodyBytes bounds worker posts; a result carries a full envelope
// plus a merged profile, which for large grids runs to megabytes.
const maxWorkerBodyBytes = 64 << 20

// Server is the http.Handler wrapping a Scheduler.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer builds the API surface over a scheduler.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /v1/jobs", srv.submit)
	srv.mux.HandleFunc("GET /v1/jobs", srv.list)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.status)
	srv.mux.HandleFunc("DELETE /v1/jobs/{id}", srv.cancel)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/events", srv.events)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/result", srv.result)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/trace", srv.trace)
	srv.mux.HandleFunc("GET /v1/metrics", srv.metricsJSON)
	srv.mux.HandleFunc("GET /metrics", srv.metricsProm)
	srv.mux.HandleFunc("GET /v1/workloads", srv.workloads)
	srv.mux.HandleFunc("GET /v1/profiles/{workload}", srv.profile)
	srv.mux.HandleFunc("POST /v1/workers", srv.registerWorker)
	srv.mux.HandleFunc("GET /v1/workers", srv.listWorkers)
	srv.mux.HandleFunc("POST /v1/workers/{id}/lease", srv.lease)
	srv.mux.HandleFunc("POST /v1/workers/{id}/jobs/{job}/events", srv.workerEvents)
	srv.mux.HandleFunc("POST /v1/workers/{id}/jobs/{job}/result", srv.workerResult)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeIgnoringError writes p to a response body, deliberately discarding
// the write error: once a body write fails the client connection is gone
// and there is no channel left to report the failure on. Centralizing the
// discard here keeps every handler suppression-free.
func writeIgnoringError(w io.Writer, p []byte) {
	_, _ = w.Write(p)
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// v is always one of the package's own response shapes; failing to
		// marshal one is a programming error worth surfacing loudly.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeIgnoringError(w, append(data, '\n'))
}

// writeError emits the {"error": ...} shape.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	st, err := s.sched.SubmitJSON(body)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not failure: tell the client when to come back.
		retry := s.sched.RetryAfterHint()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":             err.Error(),
			"retryAfterSeconds": retry,
		})
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.Jobs()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.sched.Cancel(id)
	switch {
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusNotFound, err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	env, ok := s.sched.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if env == nil {
		st, _ := s.sched.Status(id)
		writeError(w, http.StatusConflict, fmt.Errorf("job %s has no result yet (state %s)", id, st.State))
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// trace returns a job's collected span events (see obs.Event). Jobs that
// did not execute on a local runner — leased, replayed, born terminal, or
// tracing disabled — return an empty event list rather than 404: the job
// exists, it just has nothing traced.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, dropped, ok := s.sched.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":                id,
		"traceSchemaVersion": obs.TraceSchemaVersion,
		"dropped":            dropped,
		"events":             events,
	})
}

// metricsJSON serves the registry snapshot as JSON.
func (s *Server) metricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"metrics": s.sched.Metrics().Snapshot()})
}

// metricsProm serves the registry in the Prometheus text exposition
// format, rendered to a buffer first so a failure can still 500.
func (s *Server) metricsProm(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.sched.Metrics().WritePrometheus(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	writeIgnoringError(w, buf.Bytes())
}

// events streams a job's progress as server-sent events: each event is
// `event: <type>` + `data: <Event JSON>`, replaying the job's history
// first, then following live until the terminal event (done, failed, or
// canceled), after which the stream ends. Subscriber buffers are bounded:
// a consumer that cannot keep up loses intermediate events and receives a
// synthetic `lagged` event (with the drop count) before its terminal
// event, which is re-synthesized from the job's final status when the real
// one was among the casualties.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sub, ok := s.sched.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	defer sub.Close()

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) (terminal bool) {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		if canFlush {
			flusher.Flush()
		}
		return State(ev.Type).terminal()
	}
	finish := func() {
		// The channel closed without us seeing a terminal event: either
		// the consumer lagged past it, or the subscription raced the
		// terminal transition. Flag drops, then synthesize the terminal
		// event from the final status (state names double as terminal
		// event types).
		if n := sub.Dropped(); n > 0 {
			s.sched.met.sseLagged.Inc()
			s.sched.met.sseDropped.Add(int64(n))
			send(Event{Type: "lagged", Job: id, Dropped: n})
		}
		st, ok := s.sched.Status(id)
		if !ok || !st.State.terminal() {
			return
		}
		send(Event{
			Type: string(st.State), Job: id,
			Done: st.SweepsDone, Total: st.SweepsTotal,
			Error: st.Error,
		})
	}
	for _, ev := range sub.Past {
		if send(ev) {
			return
		}
	}
	if sub.C == nil {
		finish()
		return
	}
	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				finish()
				return
			}
			if send(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// workloadInfo is one catalog entry of GET /v1/workloads.
type workloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Policies is the default selective-execution policy list.
	Policies []string `json:"policies"`
	// Scales maps each declared scale preset to the configuration count
	// of the workload's space at that preset.
	Scales map[string]int `json:"scales"`
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, wl := range s.sched.Registry().List() {
		info := workloadInfo{
			Name:        wl.Name(),
			Description: wl.Describe(),
			Scales:      make(map[string]int),
		}
		for _, p := range wl.Policies() {
			info.Policies = append(info.Policies, p.String())
		}
		for _, preset := range wl.Scales() {
			info.Scales[preset.Name] = wl.Space(preset.Scale).Size()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// profileResponse is the shape of GET /v1/profiles/{workload}: the
// accumulated profile plus its durability provenance.
type profileResponse struct {
	Workload string `json:"workload"`
	// PersistedAt is when the profile was last written to the durable
	// store; absent when the server runs without one (the profile then
	// dies with the process).
	PersistedAt *time.Time      `json:"persistedAt,omitempty"`
	Profile     json.RawMessage `json:"profile"`
}

func (s *Server) profile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("workload")
	data, at, ok := s.sched.ProfileInfo(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no accumulated profile for workload %q", name))
		return
	}
	resp := profileResponse{Workload: name, Profile: data}
	if !at.IsZero() {
		resp.PersistedAt = &at
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) registerWorker(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
			return
		}
	}
	id, ttl, err := s.sched.RegisterWorker(req.Name)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"worker":      id,
		"leaseMillis": leaseMillis(ttl),
	})
}

func (s *Server) listWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": s.sched.Workers()})
}

// writeWorkerError maps lease-protocol errors onto status codes workers
// key their recovery off: 404 register again, 409 drop the job.
func writeWorkerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrLeaseLost):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) lease(w http.ResponseWriter, r *http.Request) {
	grant, err := s.sched.LeaseJob(r.PathValue("id"))
	if err != nil {
		writeWorkerError(w, err)
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) workerEvents(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Events []Event `json:"events"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWorkerBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
			return
		}
	}
	if err := s.sched.ExtendLease(r.PathValue("id"), r.PathValue("job"), req.Events); err != nil {
		writeWorkerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) workerResult(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Envelope json.RawMessage `json:"envelope,omitempty"`
		Profile  json.RawMessage `json:"profile,omitempty"`
		Error    string          `json:"error,omitempty"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWorkerBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if err := s.sched.CompleteLease(r.PathValue("id"), r.PathValue("job"), req.Envelope, req.Profile, req.Error); err != nil {
		writeWorkerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
