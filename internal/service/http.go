package service

// The versioned HTTP JSON API over the Scheduler, served by
// cmd/critter-serve:
//
//	POST   /v1/jobs                 submit a tuning job (JobRequest body)
//	GET    /v1/jobs                 list every job's status
//	GET    /v1/jobs/{id}            one job's status
//	DELETE /v1/jobs/{id}            cancel a job
//	GET    /v1/jobs/{id}/events     completion-ordered progress (SSE)
//	GET    /v1/jobs/{id}/result     a finished job's result envelope
//	GET    /v1/workloads            the registry's workload catalog
//	GET    /v1/profiles/{workload}  the accumulated warm-start profile
//
// Responses are JSON; errors are {"error": "..."} with conventional
// status codes (400 malformed request, 404 unknown resource, 409 wrong
// state, 503 queue full or shutting down).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxJobBodyBytes bounds a job-submission body; a tuning request is a few
// hundred bytes of JSON, so anything larger is garbage or abuse.
const maxJobBodyBytes = 1 << 20

// Server is the http.Handler wrapping a Scheduler.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer builds the API surface over a scheduler.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /v1/jobs", srv.submit)
	srv.mux.HandleFunc("GET /v1/jobs", srv.list)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.status)
	srv.mux.HandleFunc("DELETE /v1/jobs/{id}", srv.cancel)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/events", srv.events)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/result", srv.result)
	srv.mux.HandleFunc("GET /v1/workloads", srv.workloads)
	srv.mux.HandleFunc("GET /v1/profiles/{workload}", srv.profile)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeIgnoringError writes p to a response body, deliberately discarding
// the write error: once a body write fails the client connection is gone
// and there is no channel left to report the failure on. Centralizing the
// discard here keeps every handler suppression-free.
func writeIgnoringError(w io.Writer, p []byte) {
	_, _ = w.Write(p)
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// v is always one of the package's own response shapes; failing to
		// marshal one is a programming error worth surfacing loudly.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeIgnoringError(w, append(data, '\n'))
}

// writeError emits the {"error": ...} shape.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	st, err := s.sched.SubmitJSON(body)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.Jobs()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.sched.Cancel(id)
	switch {
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusNotFound, err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	env, ok := s.sched.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if env == nil {
		st, _ := s.sched.Status(id)
		writeError(w, http.StatusConflict, fmt.Errorf("job %s has no result yet (state %s)", id, st.State))
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// events streams a job's progress as server-sent events: each event is
// `event: <type>` + `data: <Event JSON>`, replaying the job's history
// first, then following live until the terminal event (done, failed, or
// canceled), after which the stream ends.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	past, live, unsubscribe, ok := s.sched.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	defer func() {
		if unsubscribe != nil {
			unsubscribe()
		}
	}()

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) (terminal bool) {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		if canFlush {
			flusher.Flush()
		}
		return State(ev.Type).terminal()
	}
	for _, ev := range past {
		if send(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, open := <-live:
			if !open || send(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// workloadInfo is one catalog entry of GET /v1/workloads.
type workloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Policies is the default selective-execution policy list.
	Policies []string `json:"policies"`
	// Scales maps each declared scale preset to the configuration count
	// of the workload's space at that preset.
	Scales map[string]int `json:"scales"`
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, wl := range s.sched.Registry().List() {
		info := workloadInfo{
			Name:        wl.Name(),
			Description: wl.Describe(),
			Scales:      make(map[string]int),
		}
		for _, p := range wl.Policies() {
			info.Policies = append(info.Policies, p.String())
		}
		for _, preset := range wl.Scales() {
			info.Scales[preset.Name] = wl.Space(preset.Scale).Size()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) profile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("workload")
	p := s.sched.Store().Get(name)
	if p == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no accumulated profile for workload %q", name))
		return
	}
	data, err := p.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeIgnoringError(w, append(data, '\n'))
}
