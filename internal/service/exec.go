package service

// The one execution path for a resolved job spec. Local runners
// (scheduler.go) and remote workers (worker.go) both call executeSpec, so
// a job produces the identical envelope wherever it runs — the property
// the dedup and lease machinery lean on.

import (
	"context"
	"errors"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/sim"
)

// executeSpec runs one resolved job to completion: it streams the tuning
// grid (sweeps arrive in completion order and are placed back into their
// (policy, eps) cells, rebuilding exactly the grid Tuner.Run would have
// returned, failed cells zeroed), invokes onSweep for every finished sweep
// in completion order, and returns the result envelope, the merged learned
// profile (partial grids included — a canceled run's completed sweeps are
// still valid statistics), and the joined sweep errors. tracer, when
// non-nil, receives the run's span events (sweep/config/strategy/round);
// tracing is observational only — the envelope is byte-identical either
// way.
func executeSpec(ctx context.Context, spec *jobSpec, machine sim.Machine, workers int, sched mpi.SchedulerKind, prior *critter.Profile, tracer obs.Tracer, onSweep func(sw autotune.SweepResult, err error)) (*autotune.Envelope, *critter.Profile, error) {
	study := spec.workload.Build(spec.scale)
	machine.NoiseSigma = spec.noise
	tn := autotune.Tuner{
		Study:       study,
		EpsList:     spec.eps,
		Machine:     machine,
		Seed:        spec.seed,
		Policies:    spec.policies,
		Strategy:    spec.strategy,
		Prior:       prior,
		Extrapolate: spec.extrapolate,
		Scheduler:   sched,
		Workers:     workers,
		Tracer:      tracer,
	}

	res := &autotune.Result{
		Study:    study.Name,
		Strategy: spec.strategy.Name(),
		Policies: spec.policies,
		EpsList:  spec.eps,
		Sweeps:   make([][]autotune.SweepResult, len(spec.policies)),
	}
	filled := make([][]bool, len(spec.policies))
	for pi := range res.Sweeps {
		res.Sweeps[pi] = make([]autotune.SweepResult, len(spec.eps))
		filled[pi] = make([]bool, len(spec.eps))
	}
	var errs []error
	for sw, err := range tn.Stream(ctx) {
		if err == nil {
			placeSweep(res, filled, sw)
		} else {
			errs = append(errs, err)
		}
		if onSweep != nil {
			onSweep(sw, err)
		}
	}

	merged := autotune.MergedProfile(res)
	env := &autotune.Envelope{
		SchemaVersion: autotune.ResultSchemaVersion,
		Study:         study.Name,
		Scale:         spec.scaleName,
		Seed:          spec.seed,
		NoiseSigma:    spec.noise,
		Strategy:      spec.strategy.Name(),
		Profiles:      autotune.ProfileSummaries(res),
		Result:        res,
	}
	if prior != nil {
		sum := autotune.Summarize("", 0, prior)
		env.Prior = &sum
	}
	return env, merged, errors.Join(errs...)
}
