package service

// The memoized-result cache: fingerprint -> finished cold job, bounded
// LRU. Memo entries let an identical re-submission be answered with a
// born-terminal job sharing the stored envelope (see memoHitLocked), so
// the cache is pure optimization — evicting an entry only means the next
// identical submission re-executes. Bounding it matters because
// fingerprints are user-controlled: without a cap, a client iterating
// seeds would grow the map for the life of the process.
//
// All methods are called with the scheduler's mu held; the cache adds no
// locking of its own.

import "container/list"

// memoEntry is one cached fingerprint: the finished job backing it and
// how many submissions it has satisfied.
type memoEntry struct {
	fingerprint string
	jobID       string
	hits        int64
}

// memoCache is the LRU. order's front is the most recently used entry;
// eviction pops the back.
type memoCache struct {
	max     int
	entries map[string]*list.Element // fingerprint -> element (*memoEntry value)
	byJob   map[string]string        // job ID -> fingerprint (jobs have one fingerprint)
	order   *list.List
}

// newMemoCache builds a cache holding at most max entries; max <= 0
// disables memoization (put becomes a no-op).
func newMemoCache(max int) *memoCache {
	return &memoCache{
		max:     max,
		entries: make(map[string]*list.Element),
		byJob:   make(map[string]string),
		order:   list.New(),
	}
}

// get resolves a fingerprint to its memoized job ID, promoting the entry
// to most-recently-used. It does not count a hit — the lookup may still
// fall through to a real execution (see memoHitLocked); callers call hit
// once the entry actually backed a result.
func (c *memoCache) get(fp string) (string, bool) {
	el, ok := c.entries[fp]
	if !ok {
		return "", false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memoEntry).jobID, true
}

// hit records one satisfied submission against the entry.
func (c *memoCache) hit(fp string) {
	if el, ok := c.entries[fp]; ok {
		el.Value.(*memoEntry).hits++
	}
}

// put installs (or refreshes) a fingerprint's backing job and returns how
// many entries were evicted to make room.
func (c *memoCache) put(fp, jobID string) int {
	if c.max <= 0 {
		return 0
	}
	if el, ok := c.entries[fp]; ok {
		e := el.Value.(*memoEntry)
		delete(c.byJob, e.jobID)
		e.jobID = jobID
		c.byJob[jobID] = fp
		c.order.MoveToFront(el)
		return 0
	}
	e := &memoEntry{fingerprint: fp, jobID: jobID}
	c.entries[fp] = c.order.PushFront(e)
	c.byJob[jobID] = fp
	evicted := 0
	for c.order.Len() > c.max {
		back := c.order.Back()
		old := back.Value.(*memoEntry)
		c.order.Remove(back)
		delete(c.entries, old.fingerprint)
		delete(c.byJob, old.jobID)
		evicted++
	}
	return evicted
}

// removeJob drops the entry backed by a job (history eviction removes the
// envelope the memo would need).
func (c *memoCache) removeJob(jobID string) {
	fp, ok := c.byJob[jobID]
	if !ok {
		return
	}
	delete(c.byJob, jobID)
	if el, ok := c.entries[fp]; ok {
		c.order.Remove(el)
		delete(c.entries, fp)
	}
}

// len reports the live entry count.
func (c *memoCache) len() int { return c.order.Len() }

// hitCounts returns (fingerprint, hits) pairs in most-recently-used
// order — the shape the per-entry metrics callback samples.
func (c *memoCache) hitCounts() []memoEntry {
	out := make([]memoEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*memoEntry))
	}
	return out
}
