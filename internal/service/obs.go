package service

// The scheduler's instrument set: every counter, gauge, and histogram it
// registers on its obs.Registry, plus the callback gauges that sample
// scheduler state at snapshot time. Centralizing the registrations keeps
// metric names in one place — the catalog below is the one the README's
// Observability section documents and scripts/service-smoke.sh asserts on.

import (
	"critter/internal/obs"
	"critter/internal/store"
)

// jobDurationBuckets are the job_duration_seconds histogram bounds: tuning
// jobs span quick CI smoke runs (tens of milliseconds) to full-scale
// studies (minutes).
var jobDurationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 25, 125}

// schedMetrics holds the scheduler's registered instruments. Hot-path
// cells are plain fields; state-derived readings (queue depth, store
// size) are callback gauges registered in newSchedMetrics.
type schedMetrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsCanceled  *obs.Counter
	queueRejected *obs.Counter
	jobDuration   *obs.Histogram

	dedupCoalesced *obs.Counter
	memoHits       *obs.Counter
	memoMisses     *obs.Counter
	memoEvictions  *obs.Counter

	leaseExpiries *obs.Counter
	jobsRequeued  *obs.Counter
	leaseGiveups  *obs.Counter

	sseLagged  *obs.Counter
	sseDropped *obs.Counter

	storeCompactions    *obs.Counter
	storeCompactDropped *obs.Counter
	storeCompactBytes   *obs.Counter

	kernelsExecuted *obs.CounterVec
	kernelsSkipped  *obs.CounterVec
	kernelsMemoized *obs.CounterVec
}

// newSchedMetrics registers the scheduler's instrument set on reg. The
// callback gauges close over s and take s.mu (and job locks, in the
// scheduler's lock order) when sampled; callers must not snapshot the
// registry while holding scheduler locks.
func newSchedMetrics(s *Scheduler, reg *obs.Registry) *schedMetrics {
	m := &schedMetrics{
		reg: reg,

		jobsSubmitted: reg.Counter("jobs_submitted_total", "Accepted job submissions, coalesced and memoized ones included."),
		jobsCompleted: reg.Counter("jobs_completed_total", "Jobs that reached the done state."),
		jobsFailed:    reg.Counter("jobs_failed_total", "Jobs that reached the failed state."),
		jobsCanceled:  reg.Counter("jobs_canceled_total", "Jobs that reached the canceled state."),
		queueRejected: reg.Counter("queue_rejections_total", "Submissions rejected because the queue was full (HTTP 429)."),
		jobDuration:   reg.Histogram("job_duration_seconds", "Wall time from job start to terminal state.", jobDurationBuckets...),

		dedupCoalesced: reg.Counter("dedup_coalesced_total", "Submissions coalesced onto an identical in-flight execution."),
		memoHits:       reg.Counter("memo_hits_total", "Submissions answered from the memoized-result cache."),
		memoMisses:     reg.Counter("memo_misses_total", "Dedup-enabled submissions that found no usable memo entry and executed."),
		memoEvictions:  reg.Counter("memo_evictions_total", "Memo entries evicted by the LRU bound (Config.MaxMemo)."),

		leaseExpiries: reg.Counter("lease_expiries_total", "Worker leases the janitor found expired."),
		jobsRequeued:  reg.Counter("jobs_requeued_total", "Leased jobs requeued after their worker went quiet."),
		leaseGiveups:  reg.Counter("lease_giveups_total", "Jobs failed after exhausting their lease attempts."),

		sseLagged:  reg.Counter("sse_lagged_total", "SSE subscribers that lost events to backpressure (lagged events sent)."),
		sseDropped: reg.Counter("sse_dropped_events_total", "Events dropped across all lagged SSE subscribers."),

		storeCompactions:    reg.Counter("store_compactions_total", "Durable-store log compactions."),
		storeCompactDropped: reg.Counter("store_compact_records_dropped_total", "Stale record versions discarded by compactions."),
		storeCompactBytes:   reg.Counter("store_compact_bytes_reclaimed_total", "Write-ahead log bytes reclaimed by compactions."),

		kernelsExecuted: reg.CounterVec("kernels_executed_total", "Kernels actually executed by finished sweeps.", "workload"),
		kernelsSkipped:  reg.CounterVec("kernels_skipped_total", "Kernels skipped by selective execution in finished sweeps.", "workload"),
		kernelsMemoized: reg.CounterVec("kernels_memoized_total", "Skipped kernels whose decision came from the sweep-scoped kernel memo (subset of kernels_skipped_total).", "workload"),
	}

	reg.GaugeFunc("queue_depth", "Jobs waiting in the bounded queue.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.pending))
	})
	reg.GaugeFunc("jobs_running", "Jobs executing on this process's runners.", func() float64 {
		return float64(s.countRunning(false))
	})
	reg.GaugeFunc("jobs_leased", "Jobs leased to remote workers.", func() float64 {
		return float64(s.countRunning(true))
	})
	reg.GaugeFunc("tuner_runs", "Tuner executions started by this process's runners.", func() float64 {
		return float64(s.TunerRuns())
	})
	reg.GaugeFunc("memo_entries", "Live entries in the memoized-result cache.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.memo.len())
	})
	reg.GaugeVecFunc("memo_entry_hits", "Submissions satisfied per memo entry, most recently used first.", []string{"fingerprint"}, func() []obs.Sample {
		s.mu.Lock()
		entries := s.memo.hitCounts()
		s.mu.Unlock()
		out := make([]obs.Sample, 0, len(entries))
		for _, e := range entries {
			out = append(out, obs.Sample{Labels: []string{e.fingerprint}, Value: float64(e.hits)})
		}
		return out
	})
	if s.durable != nil {
		reg.GaugeFunc("store_log_bytes", "Durable-store write-ahead log size.", func() float64 {
			return float64(s.durable.LogSize())
		})
		reg.GaugeFunc("store_records", "Live records in the durable store.", func() float64 {
			return float64(s.durable.Len())
		})
	}
	return m
}

// jobFinished counts one job's terminal transition.
func (m *schedMetrics) jobFinished(state State) {
	switch state {
	case StateDone:
		m.jobsCompleted.Inc()
	case StateFailed:
		m.jobsFailed.Inc()
	case StateCanceled:
		m.jobsCanceled.Inc()
	}
}

// onCompact is the durable store's compaction callback: one log line plus
// the three compaction counters.
func (s *Scheduler) onCompact(cs store.CompactStats) {
	s.met.storeCompactions.Inc()
	s.met.storeCompactDropped.Add(int64(cs.RecordsDropped))
	s.met.storeCompactBytes.Add(cs.BytesReclaimed)
	s.logf("service: store compacted: kept %d records, dropped %d, reclaimed %d bytes (snapshot %d bytes)",
		cs.RecordsKept, cs.RecordsDropped, cs.BytesReclaimed, cs.SnapshotBytes)
}

// countRunning tallies jobs in the running state, split by whether a
// remote worker holds them (leased) or a local runner does.
func (s *Scheduler) countRunning(leased bool) int {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	n := 0
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == StateRunning && (j.worker != "") == leased {
			n++
		}
		j.mu.Unlock()
	}
	return n
}
