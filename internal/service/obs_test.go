package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"critter/internal/obs"
)

// findFamily locates one metric family in the scheduler's snapshot.
func findFamily(t *testing.T, s *Scheduler, name string) obs.FamilySnapshot {
	t.Helper()
	for _, f := range s.Metrics().Snapshot() {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("metric family %q is not registered", name)
	return obs.FamilySnapshot{}
}

// counterValue reads an unlabeled counter or gauge cell by family name.
func counterValue(t *testing.T, s *Scheduler, name string) float64 {
	t.Helper()
	f := findFamily(t, s, name)
	if len(f.Metrics) != 1 {
		t.Fatalf("family %q has %d cells, want 1", name, len(f.Metrics))
	}
	return f.Metrics[0].Value
}

// gatedWriter is a ResponseWriter whose first Write blocks until release
// is closed, so an SSE handler can be held mid-stream while the scheduler
// races ahead and overflows the handler's bounded subscription.
type gatedWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	header  http.Header
	started sync.Once
	first   chan struct{} // closed when the handler attempts its first Write
	release chan struct{} // Writes block until this is closed
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{
		header:  make(http.Header),
		first:   make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (w *gatedWriter) Header() http.Header { return w.header }
func (w *gatedWriter) WriteHeader(int)     {}
func (w *gatedWriter) Write(p []byte) (int, error) {
	w.started.Do(func() { close(w.first) })
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// eventTypes parses an SSE body into its `event:` type sequence.
func eventTypes(body string) []string {
	var types []string
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "event: "); ok {
			types = append(types, rest)
		}
	}
	return types
}

// TestSSELaggedResynthesis pins the slow-subscriber contract: a consumer
// that falls behind a SubBuffer-sized window loses intermediate events but
// receives exactly one lagged event (with the drop count) followed by a
// terminal event re-synthesized from the job's final status — never a
// stream that just ends mid-run. The lag is deterministic: the handler's
// first Write is held while the job runs to completion, so the one-slot
// subscription buffer keeps the sweep event and drops the terminal one.
func TestSSELaggedResynthesis(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, SubBuffer: 1})
	defer closeNow(t, s)
	srv := NewServer(s)

	st, err := s.SubmitJSON([]byte(`{"workload":"block","eps":[0.5],"dedup":false,"warmStart":false}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)

	// Drive the SSE handler against the gated writer. It subscribes (replay:
	// queued, started) and blocks writing the first replayed event.
	w := newGatedWriter()
	r := httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil)
	r.SetPathValue("id", st.ID)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.events(w, r)
	}()
	<-w.first

	// Let the job finish while the handler is stuck: the sweep event fills
	// the one-slot buffer and the real done event is dropped.
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	final, err := s.Wait(ctx, st.ID)
	cancel()
	if err != nil || final.State != StateDone {
		t.Fatalf("job did not finish: %+v, %v", final, err)
	}

	close(w.release)
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatal("SSE handler never returned")
	}

	w.mu.Lock()
	body := w.buf.String()
	w.mu.Unlock()
	types := eventTypes(body)
	want := []string{"queued", "started", "sweep", "lagged", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("SSE event sequence %v, want %v\nbody:\n%s", types, want, body)
	}

	// The lagged event carries the drop count; the synthesized terminal
	// event carries the job's real final progress.
	var lagged, terminal Event
	for _, line := range strings.Split(body, "\n") {
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("unparsable SSE data %q: %v", data, err)
		}
		switch ev.Type {
		case "lagged":
			lagged = ev
		case "done":
			terminal = ev
		}
	}
	if lagged.Dropped != 1 {
		t.Errorf("lagged event reports %d drops, want 1", lagged.Dropped)
	}
	if terminal.Done != 1 || terminal.Total != 1 {
		t.Errorf("synthesized terminal event counts %d/%d, want 1/1", terminal.Done, terminal.Total)
	}

	if v := counterValue(t, s, "sse_lagged_total"); v != 1 {
		t.Errorf("sse_lagged_total = %v, want 1", v)
	}
	if v := counterValue(t, s, "sse_dropped_events_total"); v != 1 {
		t.Errorf("sse_dropped_events_total = %v, want 1", v)
	}
}

// TestMemoLRUEviction pins the memo cache's LRU bound: MaxMemo entries
// survive, the oldest is evicted first, an evicted fingerprint re-executes
// on resubmission, and the eviction/hit/miss counters plus the per-entry
// hit gauge track it all.
func TestMemoLRUEviction(t *testing.T) {
	gate := make(chan struct{})
	close(gate) // jobs finish immediately
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 8, MaxMemo: 2})
	defer closeNow(t, s)

	// Three distinct fingerprints (the seed differs), memo capacity two.
	body := func(seed int) string {
		return `{"workload":"block","eps":[0.5],"seed":` + string(rune('0'+seed)) + `,"warmStart":false}`
	}
	a := submitWait(t, s, body(1))
	b := submitWait(t, s, body(2))
	c := submitWait(t, s, body(3))
	for _, st := range []JobStatus{a, b, c} {
		if st.State != StateDone || st.DedupOf != "" {
			t.Fatalf("cold job %+v did not execute cleanly", st)
		}
	}
	if v := counterValue(t, s, "memo_evictions_total"); v != 1 {
		t.Fatalf("memo_evictions_total after 3 inserts into capacity 2 = %v, want 1", v)
	}
	if v := counterValue(t, s, "memo_entries"); v != 2 {
		t.Fatalf("memo_entries = %v, want 2", v)
	}

	// B is still memoized: the resubmission is born terminal off B's
	// envelope and promotes B to most-recently-used.
	hitB, err := s.SubmitJSON([]byte(body(2)))
	if err != nil {
		t.Fatal(err)
	}
	if hitB.State != StateDone || hitB.DedupOf != b.ID {
		t.Fatalf("memoized resubmission %+v, want done dedupOf %s", hitB, b.ID)
	}
	if v := counterValue(t, s, "memo_hits_total"); v != 1 {
		t.Errorf("memo_hits_total = %v, want 1", v)
	}

	// A was evicted (oldest), so its resubmission executes again — and its
	// re-memoization evicts C, which B's hit pushed behind it.
	reA := submitWait(t, s, body(1))
	if reA.State != StateDone || reA.DedupOf != "" {
		t.Fatalf("evicted fingerprint resubmission %+v, want a fresh execution", reA)
	}
	if v := counterValue(t, s, "memo_evictions_total"); v != 2 {
		t.Errorf("memo_evictions_total after re-memoizing A = %v, want 2", v)
	}
	if v := counterValue(t, s, "memo_misses_total"); v != 4 {
		t.Errorf("memo_misses_total = %v, want 4 (three cold runs plus A's re-execution)", v)
	}

	// The per-entry hit gauge samples live entries MRU-first; B's hit is
	// on the books even though A's re-memoization reordered the cache.
	hits := findFamily(t, s, "memo_entry_hits")
	var hitVals []float64
	for _, m := range hits.Metrics {
		hitVals = append(hitVals, m.Value)
	}
	if len(hitVals) != 2 || hitVals[0] != 0 || hitVals[1] != 1 {
		t.Errorf("memo_entry_hits = %v, want [0 1] (fresh A first, once-hit B behind it)", hitVals)
	}
}

// TestMetricsAndTraceEndpoints drives the three observability endpoints
// over real HTTP: the JSON snapshot, the Prometheus text exposition, and
// a finished job's span trace.
func TestMetricsAndTraceEndpoints(t *testing.T) {
	gate := make(chan struct{})
	close(gate)
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1})
	defer closeNow(t, s)
	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()
	client := ts.Client()

	st := submitWait(t, s, `{"workload":"block","eps":[0.5],"warmStart":false}`)
	if st.State != StateDone {
		t.Fatalf("job state %s", st.State)
	}

	// JSON snapshot: every family has a name and kind, and the counters
	// the smoke script asserts on are present with the expected values.
	var snap struct {
		Metrics []obs.FamilySnapshot `json:"metrics"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/metrics", &snap); code != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", code)
	}
	byName := make(map[string]obs.FamilySnapshot, len(snap.Metrics))
	for _, f := range snap.Metrics {
		if f.Name == "" || f.Kind == "" {
			t.Errorf("family %+v is missing name or kind", f)
		}
		byName[f.Name] = f
	}
	for name, want := range map[string]float64{
		"jobs_submitted_total": 1,
		"jobs_completed_total": 1,
		"memo_hits_total":      0,
		"queue_depth":          0,
	} {
		f, ok := byName[name]
		if !ok || len(f.Metrics) != 1 {
			t.Errorf("snapshot family %q missing or multi-cell: %+v", name, f)
			continue
		}
		if f.Metrics[0].Value != want {
			t.Errorf("%s = %v, want %v", name, f.Metrics[0].Value, want)
		}
	}
	if f, ok := byName["kernels_executed_total"]; !ok || len(f.Labels) != 1 || f.Labels[0] != "workload" {
		t.Errorf("kernels_executed_total is not labeled by workload: %+v", f)
	}

	// Prometheus text: correct content type, HELP/TYPE headers, and every
	// sample line in the name{labels} value shape.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Prometheus content type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE jobs_completed_total counter",
		"jobs_completed_total 1",
		"# TYPE job_duration_seconds histogram",
		`job_duration_seconds_bucket{le="+Inf"} 1`,
		`kernels_executed_total{workload="block"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text is missing %q", want)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("Prometheus sample line %q is not `name value`", line)
		}
	}

	// Trace endpoint: the finished job's span events, job begin/end
	// bracketing sweep and config spans, wall-stamped throughout.
	var trace struct {
		Job                string      `json:"job"`
		TraceSchemaVersion int         `json:"traceSchemaVersion"`
		Dropped            uint64      `json:"dropped"`
		Events             []obs.Event `json:"events"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/jobs/"+st.ID+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if trace.Job != st.ID || trace.TraceSchemaVersion != obs.TraceSchemaVersion {
		t.Errorf("trace header %+v", trace)
	}
	if len(trace.Events) < 4 {
		t.Fatalf("trace has %d events, want at least job begin/end around a sweep pair", len(trace.Events))
	}
	first, last := trace.Events[0], trace.Events[len(trace.Events)-1]
	if first.Kind != obs.KindJob || first.Phase != obs.PhaseBegin {
		t.Errorf("trace starts with %+v, want job begin", first)
	}
	if last.Kind != obs.KindJob || last.Phase != obs.PhaseEnd || last.Error != "" {
		t.Errorf("trace ends with %+v, want clean job end", last)
	}
	kinds := make(map[string]int)
	for _, ev := range trace.Events {
		kinds[ev.Kind]++
		if ev.WallNanos == 0 {
			t.Errorf("event %+v has no wall stamp", ev)
		}
	}
	if kinds[obs.KindSweep] != 2 || kinds[obs.KindConfig] < 2 {
		t.Errorf("trace kind counts %v, want one sweep pair and config spans", kinds)
	}

	// Unknown jobs 404; a scheduler with tracing disabled serves an empty
	// (not missing) trace for known jobs.
	if code := getJSON(t, client, ts.URL+"/v1/jobs/job-99/trace", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown trace: status %d, want 404", code)
	}

	s2 := New(Config{Registry: blockingRegistry(gate), Runners: 1, TraceEvents: -1})
	defer closeNow(t, s2)
	st2 := submitWait(t, s2, `{"workload":"block","eps":[0.5],"warmStart":false}`)
	events, dropped, ok := s2.Trace(st2.ID)
	if !ok || dropped != 0 || len(events) != 0 {
		t.Errorf("disabled tracing: ok=%v dropped=%d events=%d, want ok with an empty trace", ok, dropped, len(events))
	}
}
