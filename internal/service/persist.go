package service

// Durable persistence over internal/store: what survives a restart, and
// exactly how a scheduler rebuilds itself from the log.
//
// Two record kinds live in the store:
//
//   - "job": one record per finished job, written at the terminal
//     transition — the status snapshot, the normalized request, and the
//     result envelope (shared by deduped jobs, duplicated in the log so
//     replay needs no cross-record resolution).
//   - "profile": the merged per-workload profile, rewritten after every
//     run that learned something (latest record wins, by store
//     semantics).
//
// Restart semantics, by design and covered by TestRestartDurability:
// finished jobs replay with their envelopes and a single terminal event
// (the full event history is not persisted); replayed profiles warm-start
// new jobs exactly as if the process had never died; queued-but-unstarted
// and still-running jobs are NOT persisted and are simply gone after a
// restart — the client that submitted them observes a 404 and resubmits.
// Rejecting rather than resuming keeps the log append-only at terminal
// transitions and makes the replay path deterministic: nothing in the
// store ever describes work in progress. Job IDs continue after the
// highest replayed ID, so replayed and new jobs never collide.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/store"
)

// Durable record kinds.
const (
	kindJob     = "job"
	kindProfile = "profile"
)

// jobRecord is the persisted form of one finished job.
type jobRecord struct {
	Status   JobStatus       `json:"status"`
	Request  JobRequest      `json:"request"`
	Envelope json.RawMessage `json:"envelope,omitempty"`
}

// persistedJob is the in-memory staging of a jobRecord, collected under
// job locks and written outside them.
type persistedJob struct {
	status   JobStatus
	request  JobRequest
	envelope *autotune.Envelope
}

// persistJobs appends one durable record per finished job. Persistence
// failures are logged, not fatal: the scheduler keeps serving from memory.
func (s *Scheduler) persistJobs(recs []persistedJob) {
	if s.durable == nil {
		return
	}
	for _, rec := range recs {
		jr := jobRecord{Status: rec.status, Request: rec.request}
		if rec.envelope != nil {
			data, err := json.Marshal(rec.envelope)
			if err != nil {
				s.logf("service: marshal envelope for %s: %v", rec.status.ID, err)
			} else {
				jr.Envelope = data
			}
		}
		data, err := json.Marshal(jr)
		if err != nil {
			s.logf("service: marshal job record %s: %v", rec.status.ID, err)
			continue
		}
		err = s.durable.Append(store.Record{Kind: kindJob, Key: rec.status.ID, At: rec.status.Finished, Data: data})
		if err != nil {
			s.logf("service: persist job %s: %v", rec.status.ID, err)
		}
	}
}

// replayDurable rebuilds jobs, profiles, and the memo map from the durable
// store. Called from New before any runner starts, so no locking is
// needed. Individual corrupt records are skipped with a log line; replay
// never fails the scheduler.
func (s *Scheduler) replayDurable() {
	if s.durable == nil {
		return
	}
	for _, rec := range s.durable.Records() {
		switch rec.Kind {
		case kindProfile:
			p, err := critter.DecodeProfile(rec.Data)
			if err != nil {
				s.logf("service: replay profile %s: %v", rec.Key, err)
				continue
			}
			s.store.Merge(rec.Key, p)
			s.persisted[rec.Key] = rec.At
		case kindJob:
			if err := s.replayJob(rec.Data); err != nil {
				s.logf("service: replay job %s: %v", rec.Key, err)
			}
		default:
			s.logf("service: replay: unknown record kind %q (key %s)", rec.Kind, rec.Key)
		}
	}
}

// replayJob restores one finished job from its durable record.
func (s *Scheduler) replayJob(data []byte) error {
	var jr jobRecord
	if err := json.Unmarshal(data, &jr); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	st := jr.Status
	if st.ID == "" || !st.State.terminal() {
		return fmt.Errorf("record is not a finished job (id %q, state %q)", st.ID, st.State)
	}
	if _, exists := s.jobs[st.ID]; exists {
		return fmt.Errorf("duplicate job record %s", st.ID)
	}

	j := &job{
		id:          st.ID,
		state:       st.State,
		subs:        make(map[int]*subscriber),
		warmApplied: st.WarmStart,
		sweepsDone:  st.SweepsDone,
		sweepsTotal: st.SweepsTotal,
		submitted:   st.Submitted,
		started:     st.Started,
		finished:    st.Finished,
		done:        make(chan struct{}),
		deduped:     st.Deduped,
		dedupOf:     st.DedupOf,
		attempts:    st.Attempts,
		replay:      &st,
	}
	if st.Error != "" {
		j.err = errors.New(st.Error)
	}
	if len(jr.Envelope) > 0 {
		env, err := autotune.DecodeEnvelope(jr.Envelope)
		if err != nil {
			s.logf("service: replay envelope of %s: %v", st.ID, err)
		} else {
			j.envelope = env
		}
	}
	// The event history is not persisted; a replayed job exposes its one
	// terminal event (state names double as terminal event types).
	j.events = []Event{{
		Type: string(st.State), Job: st.ID,
		Done: st.SweepsDone, Total: st.SweepsTotal,
		Error: st.Error,
	}}
	close(j.done)
	s.jobs[st.ID] = j
	s.order = append(s.order, st.ID)
	if n, ok := jobIDNumber(st.ID); ok && n > s.nextID {
		s.nextID = n
	}
	// Rebuild the memo: a replayed job backs future identical
	// submissions under the same conditions a live one would — dedup on,
	// warm start off, finished clean, envelope intact.
	if st.State == StateDone && j.envelope != nil && st.Fingerprint != "" &&
		jr.Request.Dedup != nil && *jr.Request.Dedup &&
		jr.Request.WarmStart != nil && !*jr.Request.WarmStart {
		if evicted := s.memo.put(st.Fingerprint, st.ID); evicted > 0 {
			s.met.memoEvictions.Add(int64(evicted))
		}
	}
	return nil
}

// jobIDNumber extracts N from "job-N".
func jobIDNumber(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// PersistedAt reports when a workload's merged profile was last durably
// written; zero time (and false) when it never was.
func (s *Scheduler) PersistedAt(workload string) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.persisted[workload]
	return at, ok
}
