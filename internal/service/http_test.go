package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"critter/internal/autotune"
	"critter/internal/critter"
)

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd drives the whole API surface over a real HTTP server:
// catalog, submission, SSE progress, result envelope, accumulated profile,
// and the error paths.
func TestHTTPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	sched := New(Config{Runners: 1})
	defer closeNow(t, sched)
	ts := httptest.NewServer(NewServer(sched))
	defer ts.Close()
	client := ts.Client()

	// The catalog lists every registered workload with its presets.
	var catalog struct {
		Workloads []struct {
			Name        string         `json:"name"`
			Description string         `json:"description"`
			Policies    []string       `json:"policies"`
			Scales      map[string]int `json:"scales"`
		} `json:"workloads"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/workloads", &catalog); code != http.StatusOK {
		t.Fatalf("GET /v1/workloads: status %d", code)
	}
	byName := map[string]bool{}
	for _, w := range catalog.Workloads {
		byName[w.Name] = true
		if w.Description == "" || len(w.Policies) == 0 || len(w.Scales) == 0 {
			t.Errorf("catalog entry %q is incomplete: %+v", w.Name, w)
		}
	}
	for _, name := range []string{"capital", "slate-chol", "candmc", "slate-qr", "cholesky3d", "qr2d"} {
		if !byName[name] {
			t.Errorf("catalog is missing workload %q", name)
		}
	}

	// Malformed submissions are 400s with an error body.
	for _, bad := range []string{
		``, `{`, `[]`, `{"workload":"bogus"}`, `{"workload":"candmc","scale":"huge"}`,
		`{"workload":"candmc","eps":[0.1],"unknown":1}`, `{"workload":"candmc","strategy":"bogus"}`,
	} {
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400 (body %s)", bad, resp.StatusCode, body)
			continue
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %q: error body %q is not the {\"error\": ...} shape", bad, body)
		}
	}

	// Unknown resources are 404s.
	if code := getJSON(t, client, ts.URL+"/v1/jobs/job-99", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, client, ts.URL+"/v1/profiles/candmc", nil); code != http.StatusNotFound {
		t.Errorf("GET profile before any job: status %d, want 404", code)
	}

	// Submit a real job.
	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"candmc","scale":"quick","policies":["online"],"eps":[0.125],"seed":11,"warmStart":false}`))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST job: status %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Workload != "candmc" || st.Scale != "quick" || st.SweepsTotal != 1 {
		t.Fatalf("submitted status %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location header %q", loc)
	}

	// The result endpoint answers 409 until the job finishes.
	if code := getJSON(t, client, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict && code != http.StatusOK {
		t.Errorf("GET result while running: status %d, want 409 (or 200 if already done)", code)
	}

	// Follow the SSE stream to completion.
	events := readSSE(t, client, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if last.Type != "done" {
		t.Fatalf("SSE stream ended with %q: %+v", last.Type, events)
	}
	sawSweep := false
	for _, ev := range events {
		if ev.Type == "sweep" && ev.Policy == "online" && ev.Eps == 0.125 && ev.Executed > 0 {
			sawSweep = true
		}
	}
	if !sawSweep {
		t.Errorf("SSE stream carried no populated sweep event: %+v", events)
	}

	// Status reflects completion; the envelope decodes through the
	// version-gated decoder.
	if code := getJSON(t, client, ts.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
		t.Fatalf("GET job: status %d", code)
	}
	if st.State != StateDone || st.SweepsDone != 1 {
		t.Fatalf("finished status %+v", st)
	}
	envResp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	envBody, _ := io.ReadAll(envResp.Body)
	envResp.Body.Close()
	if envResp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d, body %s", envResp.StatusCode, envBody)
	}
	env, err := autotune.DecodeEnvelope(envBody)
	if err != nil {
		t.Fatalf("result envelope does not decode: %v", err)
	}
	if env.Study != "candmc-qr" || env.Scale != "quick" || env.Seed != 11 || env.Result == nil {
		t.Fatalf("envelope %+v", env)
	}
	if got := env.Result.Sweeps[0][0].Executed; got == 0 {
		t.Error("served grid has an empty sweep")
	}

	// The job list includes it, the accumulated profile is now served,
	// and canceling a finished job is a 409.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Errorf("GET /v1/jobs: status %d, %d jobs", code, len(list.Jobs))
	}
	var prof struct {
		Workload    string          `json:"workload"`
		PersistedAt *time.Time      `json:"persistedAt"`
		Profile     json.RawMessage `json:"profile"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/profiles/candmc", &prof); code != http.StatusOK {
		t.Fatalf("GET profile: status %d", code)
	}
	if prof.Workload != "candmc" {
		t.Errorf("profile response names workload %q", prof.Workload)
	}
	if prof.PersistedAt != nil {
		t.Error("profile claims durable persistence on a store-less server")
	}
	if _, err := critter.DecodeProfile(prof.Profile); err != nil {
		t.Errorf("served profile does not decode: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	delResp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE finished job: status %d, want 409", delResp.StatusCode)
	}
}

// TestHTTPQueueFull429 drives the backpressure path over the wire: a full
// queue answers 429 with a Retry-After header and a structured JSON body,
// while malformed submissions stay 400.
func TestHTTPQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Registry: blockingRegistry(gate), Runners: 1, QueueSize: 1})
	// t.Cleanup runs after the deferred close(gate), so the blocked
	// runner is released before the scheduler shuts down.
	t.Cleanup(func() { closeNow(t, s) })
	defer close(gate)
	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()
	client := ts.Client()

	// Fill the runner, then the queue. dedup off so the bodies don't
	// coalesce; the first job must be running (its queue slot freed)
	// before the second can reliably occupy the whole queue.
	submit := func() (JobStatus, int) {
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"workload":"block","dedup":false}`))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st JobStatus
		if resp.StatusCode == http.StatusAccepted {
			if err := json.Unmarshal(data, &st); err != nil {
				t.Fatalf("decode submit response %q: %v", data, err)
			}
		}
		return st, resp.StatusCode
	}
	first, code := submit()
	if code != http.StatusAccepted {
		t.Fatalf("first submission: status %d", code)
	}
	waitState(t, s, first.ID, StateRunning)
	if _, code := submit(); code != http.StatusAccepted {
		t.Fatalf("queue-filling submission: status %d", code)
	}

	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"block","dedup":false}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d (body %s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	var e struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retryAfterSeconds"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" || e.RetryAfterSeconds < 1 {
		t.Errorf("429 body %q does not carry error + retryAfterSeconds", body)
	}

	// Malformed input is still a 400, not a 429.
	resp, err = client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submission: status %d, want 400", resp.StatusCode)
	}
}

// readSSE consumes a server-sent-event stream until it ends, returning the
// decoded events.
func readSSE(t *testing.T, client *http.Client, url string) []Event {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	var eventType string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if ev.Type != eventType {
				t.Errorf("SSE event field %q disagrees with data type %q", eventType, ev.Type)
			}
			events = append(events, ev)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	return events
}
