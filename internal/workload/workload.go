// Package workload makes tuning problems first-class, registrable values.
// A Workload names a problem, describes it, declares its configuration
// space, default selective-execution policies, and named scale presets, and
// builds the runnable autotune.Study for a given scale. A Registry maps
// flag/API names to Workloads; the process-global Default registry carries
// the paper's four case studies plus the two example workloads, and
// downstream users add their own through Register (re-exported by the
// critter facade), which the CLIs, the figures generator, and the service
// layer then resolve by name — no switch statement to extend.
//
// The package sits above internal/autotune (it imports Study, Space, and
// Scale from it); autotune's legacy ParseStudy/ParseScale remain as thin
// wrappers that delegate back here through a resolver installed at init,
// so pre-registry call sites keep working against the registry.
package workload

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"critter/internal/autotune"
	"critter/internal/critter"
)

// ScalePreset is one named problem size a workload declares, e.g.
// {"quick", QuickScale()}. Presets are what the CLIs' and the service's
// scale fields resolve against.
type ScalePreset struct {
	Name  string
	Scale autotune.Scale
}

// Workload is a first-class tuning problem: everything the harness needs to
// list it, size it, and run it, behind a name.
type Workload interface {
	// Name is the registry key, as used in flags and the JSON API.
	Name() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Space returns the configuration space at the given scale.
	Space(s autotune.Scale) autotune.Space
	// Build constructs the runnable study at the given scale.
	Build(s autotune.Scale) autotune.Study
	// Policies lists the selective-execution policies evaluated by
	// default when a caller does not choose its own.
	Policies() []critter.Policy
	// Scales lists the workload's named scale presets, preferred first.
	Scales() []ScalePreset
}

// Def is a declarative Workload implementation: fill the fields, register
// the value. BuildFunc is the only required field besides the name.
type Def struct {
	// WorkloadName is the registry key.
	WorkloadName string
	// Description is the one-line listing text.
	Description string
	// BuildFunc constructs the study at a scale.
	BuildFunc func(autotune.Scale) autotune.Study
	// DefaultPolicies is the policy list evaluated when the caller does
	// not choose; empty falls back to the built study's own list.
	DefaultPolicies []critter.Policy
	// ScalePresets are the named problem sizes; empty falls back to the
	// shared default/quick pair.
	ScalePresets []ScalePreset
}

// Name implements Workload.
func (d Def) Name() string { return d.WorkloadName }

// Describe implements Workload.
func (d Def) Describe() string { return d.Description }

// Space implements Workload via the built study's declared space.
func (d Def) Space(s autotune.Scale) autotune.Space { return d.Build(s).Space }

// Build implements Workload.
func (d Def) Build(s autotune.Scale) autotune.Study { return d.BuildFunc(s) }

// Policies implements Workload; an empty DefaultPolicies falls back to the
// study's own declared list (at the first preset's scale, which the
// built-in studies declare scale-independently).
func (d Def) Policies() []critter.Policy {
	if len(d.DefaultPolicies) > 0 {
		return d.DefaultPolicies
	}
	return d.Build(d.firstScale()).Policies
}

// Scales implements Workload, defaulting to the shared default/quick pair.
func (d Def) Scales() []ScalePreset {
	if len(d.ScalePresets) > 0 {
		return d.ScalePresets
	}
	return []ScalePreset{
		{Name: "default", Scale: autotune.DefaultScale()},
		{Name: "quick", Scale: autotune.QuickScale()},
	}
}

func (d Def) firstScale() autotune.Scale { return d.Scales()[0].Scale }

// Registry maps workload names to Workloads. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Workload
	order  []string // registration order, for stable listings
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Workload)}
}

// Register adds w under its name. Empty names and duplicates are errors:
// a registry is a namespace, and silently replacing a workload would make
// results irreproducible.
func (r *Registry) Register(w Workload) error {
	// Catch typed nils (e.g. (*Def)(nil)) before the first method call
	// dereferences them: a nil pointer in a non-nil interface passes a
	// plain == nil check.
	if w == nil || (reflect.ValueOf(w).Kind() == reflect.Pointer && reflect.ValueOf(w).IsNil()) {
		return fmt.Errorf("workload: Register(nil)")
	}
	name := w.Name()
	if name == "" {
		return fmt.Errorf("workload: register: empty workload name")
	}
	// A Def without its builder would register fine and then panic the
	// first time anything resolves it (catalog listings build the study
	// to size the space); reject it at the door instead — value or
	// pointer, both satisfy Workload.
	missingBuild := false
	switch d := w.(type) {
	case Def:
		missingBuild = d.BuildFunc == nil
	case *Def:
		missingBuild = d.BuildFunc == nil // nil *Def was rejected above
	}
	if missingBuild {
		return fmt.Errorf("workload: register %q: Def.BuildFunc is required", name)
	}
	// Every consumer of the catalog (scale resolution, markdown and JSON
	// listings) indexes the first declared preset, so an empty preset
	// list is rejected here rather than panicking there. Def can never
	// trip this (its Scales falls back to default/quick); this guards
	// hand-rolled Workload implementations.
	if len(w.Scales()) == 0 {
		return fmt.Errorf("workload: register %q: at least one scale preset is required", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("workload: register: %q already registered", name)
	}
	r.byName[name] = w
	r.order = append(r.order, name)
	return nil
}

// Lookup resolves a workload by name.
func (r *Registry) Lookup(name string) (Workload, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w, ok := r.byName[name]
	return w, ok
}

// List returns every registered workload in registration order (built-ins
// first, in the paper's presentation order).
func (r *Registry) List() []Workload {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Workload, len(r.order))
	for i, name := range r.order {
		out[i] = r.byName[name]
	}
	return out
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// ScaleNames returns the union of every registered workload's preset
// names, sorted, for error messages and listings.
func (r *Registry) ScaleNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range r.List() {
		for _, p := range w.Scales() {
			if !seen[p.Name] {
				seen[p.Name] = true
				out = append(out, p.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// defaultRegistry is the process-global registry the package-level
// functions (and autotune's legacy parsers) resolve against.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Register adds w to the default registry.
func Register(w Workload) error { return defaultRegistry.Register(w) }

// mustRegister registers a built-in; a failure is a programming error.
func mustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// Lookup resolves a workload by name in the default registry.
func Lookup(name string) (Workload, bool) { return defaultRegistry.Lookup(name) }

// List returns the default registry's workloads in registration order.
func List() []Workload { return defaultRegistry.List() }

// Names returns the default registry's workload names in registration
// order.
func Names() []string { return defaultRegistry.Names() }

// ParseStudy resolves a workload name in reg (nil means the default
// registry) and builds its study at the given scale. The error enumerates
// the registered names.
func ParseStudy(reg *Registry, name string, s autotune.Scale) (autotune.Study, error) {
	if reg == nil {
		reg = defaultRegistry
	}
	w, ok := reg.Lookup(name)
	if !ok {
		return autotune.Study{}, fmt.Errorf("workload: unknown workload %q (want %s)",
			name, strings.Join(reg.Names(), ", "))
	}
	return w.Build(s), nil
}

// ResolveStudy resolves a workload name and one of its declared scale
// presets together, building the study — the canonical name-to-study path
// for the CLIs and the service: the scale namespace is the chosen
// workload's own presets, so a preset declared only by some other
// workload does not resolve here. Both error paths enumerate the valid
// names.
func ResolveStudy(reg *Registry, workloadName, scaleName string) (autotune.Study, error) {
	if reg == nil {
		reg = defaultRegistry
	}
	w, ok := reg.Lookup(workloadName)
	if !ok {
		return autotune.Study{}, fmt.Errorf("workload: unknown workload %q (want %s)",
			workloadName, strings.Join(reg.Names(), ", "))
	}
	s, err := ScaleOf(w, scaleName)
	if err != nil {
		return autotune.Study{}, err
	}
	return w.Build(s), nil
}

// ScaleOf resolves one of w's declared scale presets by name. The error
// enumerates w's preset names.
func ScaleOf(w Workload, name string) (autotune.Scale, error) {
	presets := w.Scales()
	for _, p := range presets {
		if p.Name == name {
			return p.Scale, nil
		}
	}
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}
	return autotune.Scale{}, fmt.Errorf("workload: %s: unknown scale %q (want %s)",
		w.Name(), name, strings.Join(names, ", "))
}

// ParseScale resolves a scale name against the union of the default
// registry's declared presets: the first workload declaring the name wins
// (the built-ins all share the default/quick pair). The error enumerates
// every declared preset name. This is the legacy workload-agnostic
// namespace behind autotune.ParseScale and the facade; callers that know
// their workload should resolve through ScaleOf (or ResolveStudy), which
// restricts the namespace to that workload's own presets.
func ParseScale(name string) (autotune.Scale, error) {
	for _, w := range defaultRegistry.List() {
		for _, p := range w.Scales() {
			if p.Name == name {
				return p.Scale, nil
			}
		}
	}
	return autotune.Scale{}, fmt.Errorf("workload: unknown scale %q (want %s)",
		name, strings.Join(defaultRegistry.ScaleNames(), ", "))
}

// resolver adapts the default registry to autotune's legacy
// ParseStudy/ParseScale surface.
type resolver struct{}

func (resolver) ResolveStudy(name string, s autotune.Scale) (autotune.Study, error) {
	return ParseStudy(nil, name, s)
}

func (resolver) ResolveScale(name string) (autotune.Scale, error) { return ParseScale(name) }

func init() { autotune.SetResolver(resolver{}) }
