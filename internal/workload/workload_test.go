package workload

import (
	"os"
	"strings"
	"testing"

	"critter/internal/autotune"
	"critter/internal/critter"
)

// TestDefaultRegistryContents pins the shipped catalog: the paper's four
// case studies plus the two example workloads, in registration order.
func TestDefaultRegistryContents(t *testing.T) {
	want := []string{"capital", "slate-chol", "candmc", "slate-qr", "cholesky3d", "qr2d"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("default registry has %v, want at least %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("default registry order %v, want prefix %v", got, want)
		}
	}
	for _, name := range want {
		w, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if w.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, w.Name())
		}
		if w.Describe() == "" {
			t.Errorf("workload %q has no description", name)
		}
		if len(w.Policies()) == 0 {
			t.Errorf("workload %q declares no default policies", name)
		}
		if len(w.Scales()) == 0 {
			t.Errorf("workload %q declares no scale presets", name)
		}
		for _, preset := range w.Scales() {
			st := w.Build(preset.Scale)
			if st.Size() <= 0 || st.WorldSize <= 0 || st.Run == nil {
				t.Errorf("workload %q at scale %q builds a degenerate study", name, preset.Name)
			}
			if sp := w.Space(preset.Scale); sp.Size() != st.Size() {
				t.Errorf("workload %q at scale %q: Space size %d != study size %d",
					name, preset.Name, sp.Size(), st.Size())
			}
		}
	}
}

// TestBuildsMatchConstructors proves registry resolution is the same
// studies the constructors build — the property the golden-envelope tests
// rely on.
func TestBuildsMatchConstructors(t *testing.T) {
	q := autotune.QuickScale()
	cases := []struct {
		workload string
		study    autotune.Study
	}{
		{"capital", autotune.CapitalCholesky(q)},
		{"slate-chol", autotune.SlateCholesky(q)},
		{"candmc", autotune.CandmcQR(q)},
		{"slate-qr", autotune.SlateQR(q)},
		{"cholesky3d", autotune.CapitalCholesky(q)},
		{"qr2d", autotune.CandmcQR(q)},
	}
	for _, tc := range cases {
		st, err := ParseStudy(nil, tc.workload, q)
		if err != nil {
			t.Fatalf("ParseStudy(%q): %v", tc.workload, err)
		}
		if st.Name != tc.study.Name || st.Size() != tc.study.Size() || st.WorldSize != tc.study.WorldSize {
			t.Errorf("ParseStudy(%q) = {%s %d %d}, want {%s %d %d}",
				tc.workload, st.Name, st.Size(), st.WorldSize,
				tc.study.Name, tc.study.Size(), tc.study.WorldSize)
		}
	}
}

// TestExampleWorkloadPolicies pins the example workloads' declared default
// policies: the comparisons their example mains print.
func TestExampleWorkloadPolicies(t *testing.T) {
	cases := map[string][]critter.Policy{
		"cholesky3d": {critter.Conditional, critter.Eager},
		"qr2d":       {critter.Online},
	}
	for name, want := range cases {
		w, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		got := w.Policies()
		if len(got) != len(want) {
			t.Fatalf("%s policies = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s policies = %v, want %v", name, got, want)
			}
		}
	}
}

// TestRegistryErrors covers the namespace rules: empty names, duplicates,
// and nil registrations are rejected.
func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("Register(nil) succeeded")
	}
	if err := r.Register(Def{WorkloadName: ""}); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := r.Register(Def{WorkloadName: "no-builder"}); err == nil {
		t.Error("Register of a Def without BuildFunc succeeded")
	}
	if err := r.Register(&Def{WorkloadName: "no-builder-ptr"}); err == nil {
		t.Error("Register of a *Def without BuildFunc succeeded")
	}
	if err := r.Register((*Def)(nil)); err == nil {
		t.Error("Register of a typed-nil *Def succeeded")
	}
	if err := r.Register(noScales{}); err == nil {
		t.Error("Register of a workload with no scale presets succeeded")
	}
	def := Def{WorkloadName: "x", BuildFunc: autotune.CandmcQR}
	if err := r.Register(def); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(def); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if _, ok := r.Lookup("x"); !ok {
		t.Error("Lookup after Register failed")
	}
	if n := len(r.List()); n != 1 {
		t.Errorf("List length = %d, want 1", n)
	}
}

// noScales is a hand-rolled Workload that declares no scale presets —
// invalid, and rejected at registration.
type noScales struct{}

func (noScales) Name() string                          { return "no-scales" }
func (noScales) Describe() string                      { return "invalid test workload" }
func (noScales) Space(s autotune.Scale) autotune.Space { return autotune.Space{} }
func (noScales) Build(s autotune.Scale) autotune.Study { return autotune.Study{} }
func (noScales) Policies() []critter.Policy            { return nil }
func (noScales) Scales() []ScalePreset                 { return nil }

// TestParseStudyErrorEnumerates checks the unknown-workload error names
// every registered workload, mirroring the old switch-based message.
func TestParseStudyErrorEnumerates(t *testing.T) {
	_, err := ParseStudy(nil, "bogus", autotune.QuickScale())
	if err == nil {
		t.Fatal("ParseStudy(bogus) succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate workload %q", err, name)
		}
	}
}

// TestParseScaleErrorEnumerates checks the unknown-scale error enumerates
// the declared preset names (the registry-backed form of the satellite
// requirement).
func TestParseScaleErrorEnumerates(t *testing.T) {
	if _, err := ParseScale("default"); err != nil {
		t.Fatalf("ParseScale(default): %v", err)
	}
	if _, err := ParseScale("quick"); err != nil {
		t.Fatalf("ParseScale(quick): %v", err)
	}
	_, err := ParseScale("bogus")
	if err == nil {
		t.Fatal("ParseScale(bogus) succeeded")
	}
	for _, name := range []string{"default", "quick"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate scale %q", err, name)
		}
	}

	// Per-workload resolution enumerates that workload's own presets.
	w, _ := Lookup("candmc")
	_, err = ScaleOf(w, "huge")
	if err == nil || !strings.Contains(err.Error(), "default") || !strings.Contains(err.Error(), "quick") {
		t.Errorf("ScaleOf error %q does not enumerate candmc's presets", err)
	}
}

// TestResolveStudy covers the combined name-to-study path the CLIs use:
// the scale namespace is the chosen workload's own presets.
func TestResolveStudy(t *testing.T) {
	st, err := ResolveStudy(nil, "candmc", "quick")
	if err != nil || st.Name != "candmc-qr" {
		t.Fatalf("ResolveStudy(candmc, quick) = %q, %v", st.Name, err)
	}
	if _, err := ResolveStudy(nil, "bogus", "quick"); err == nil || !strings.Contains(err.Error(), "candmc") {
		t.Errorf("unknown workload error %v does not enumerate the catalog", err)
	}
	if _, err := ResolveStudy(nil, "candmc", "huge"); err == nil || !strings.Contains(err.Error(), "quick") {
		t.Errorf("unknown scale error %v does not enumerate candmc's presets", err)
	}

	// A preset declared by one workload does not leak into another's
	// namespace through this path.
	reg := NewRegistry()
	for _, d := range []Def{
		{WorkloadName: "a", BuildFunc: autotune.CandmcQR,
			ScalePresets: []ScalePreset{{Name: "tiny", Scale: autotune.QuickScale()}}},
		{WorkloadName: "b", BuildFunc: autotune.CandmcQR},
	} {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ResolveStudy(reg, "b", "tiny"); err == nil {
		t.Error("workload a's preset resolved for workload b")
	}
	if _, err := ResolveStudy(reg, "a", "tiny"); err != nil {
		t.Errorf("workload a's own preset failed to resolve: %v", err)
	}
}

// TestAutotuneParsersDelegate checks the legacy autotune surface is a thin
// wrapper over this registry: same resolutions, same failures.
func TestAutotuneParsersDelegate(t *testing.T) {
	q := autotune.QuickScale()
	st, err := autotune.ParseStudy("qr2d", q)
	if err != nil {
		t.Fatalf("autotune.ParseStudy(qr2d): %v", err)
	}
	if st.Name != "candmc-qr" {
		t.Errorf("autotune.ParseStudy(qr2d).Name = %q", st.Name)
	}
	if _, err := autotune.ParseStudy("bogus", q); err == nil {
		t.Error("autotune.ParseStudy(bogus) succeeded")
	}
	if _, err := autotune.ParseScale("quick"); err != nil {
		t.Errorf("autotune.ParseScale(quick): %v", err)
	}
	if _, err := autotune.ParseScale("bogus"); err == nil {
		t.Error("autotune.ParseScale(bogus) succeeded")
	}
}

// TestREADMEWorkloadTable pins the README's generated workload table to
// MarkdownTable's output: regenerating the docs is running this test with
// the new output pasted between the markers.
func TestREADMEWorkloadTable(t *testing.T) {
	const begin = "<!-- BEGIN WORKLOAD TABLE (generated: go test ./internal/workload -run TestREADMEWorkloadTable) -->\n"
	const end = "<!-- END WORKLOAD TABLE -->"
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(readme)
	i := strings.Index(s, begin)
	if i < 0 {
		t.Fatalf("README.md is missing the %q marker", strings.TrimSpace(begin))
	}
	rest := s[i+len(begin):]
	j := strings.Index(rest, end)
	if j < 0 {
		t.Fatalf("README.md is missing the %q marker", end)
	}
	if got, want := rest[:j], MarkdownTable(nil); got != want {
		t.Errorf("README workload table is stale; regenerate it from MarkdownTable:\nwant:\n%s\ngot:\n%s", want, got)
	}
}
