package workload

// The default registry's contents: the paper's four case studies under
// their historical flag names, plus the two example workloads — the
// eager-propagation CAPITAL demo of examples/cholesky3d and the
// online-propagation CANDMC demo of examples/qr2d — so every problem the
// repository ships is resolvable by name through one surface.

import (
	"critter/internal/autotune"
	"critter/internal/critter"
)

func init() {
	mustRegister(Def{
		WorkloadName: "capital",
		Description:  "CAPITAL recursive communication-avoiding Cholesky: 15 configs (block size x base-case strategy), kernels persist across configs (eager propagation applies)",
		BuildFunc:    autotune.CapitalCholesky,
	})
	mustRegister(Def{
		WorkloadName: "slate-chol",
		Description:  "SLATE tile-based Cholesky: 20 configs (lookahead depth x tile size), kernel models reset per config",
		BuildFunc:    autotune.SlateCholesky,
	})
	mustRegister(Def{
		WorkloadName: "candmc",
		Description:  "CANDMC pipelined 2D Householder QR with TSQR panels: 15 configs (block size x grid shape)",
		BuildFunc:    autotune.CandmcQR,
	})
	mustRegister(Def{
		WorkloadName: "slate-qr",
		Description:  "SLATE communication-avoiding QR: 63 configs (inner block x tile size x grid shape)",
		BuildFunc:    autotune.SlateQR,
	})

	// The example workloads: the same factorizations the examples drive,
	// tuned the way the example mains tune them (their default policies
	// are the comparison each example prints).
	mustRegister(Def{
		WorkloadName:    "cholesky3d",
		Description:     "examples/cholesky3d: CAPITAL Cholesky tuned with eager propagation against the conditional baseline (the paper's headline Figure 4a experiment)",
		BuildFunc:       autotune.CapitalCholesky,
		DefaultPolicies: []critter.Policy{critter.Conditional, critter.Eager},
	})
	mustRegister(Def{
		WorkloadName:    "qr2d",
		Description:     "examples/qr2d: CANDMC pipelined 2D QR tuned with online critical-path propagation (the paper's Figure 5a study)",
		BuildFunc:       autotune.CandmcQR,
		DefaultPolicies: []critter.Policy{critter.Online},
	})
}
