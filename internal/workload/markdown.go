package workload

import (
	"fmt"
	"strings"
)

// MarkdownTable renders a registry's catalog (nil means the default
// registry) as a GitHub-flavored markdown table — the generated workload
// table in the README's Tuner section. A test pins the README copy to this
// output, so the docs can never drift from what the registry serves.
func MarkdownTable(reg *Registry) string {
	if reg == nil {
		reg = defaultRegistry
	}
	var b strings.Builder
	b.WriteString("| workload | configurations | default policies | scales | description |\n")
	b.WriteString("| --- | --- | --- | --- | --- |\n")
	for _, w := range reg.List() {
		presets := w.Scales()
		var scaleNames []string
		for _, p := range presets {
			scaleNames = append(scaleNames, p.Name)
		}
		var policies []string
		for _, p := range w.Policies() {
			policies = append(policies, p.String())
		}
		fmt.Fprintf(&b, "| `%s` | %d | %s | %s | %s |\n",
			w.Name(), w.Space(presets[0].Scale).Size(),
			strings.Join(policies, ", "), strings.Join(scaleNames, ", "),
			w.Describe())
	}
	return b.String()
}
