package autotune_test

// Fuzzing of the flag-parsing gates: whatever the input, a parser either
// returns an error or a fully usable value — no panics, no half-built
// studies or strategies. Under plain `go test` these run their seed corpus
// as ordinary unit tests.
//
// This is an external test package: ParseStudy and ParseScale now resolve
// through the workload registry, whose package imports autotune, so the
// registry import (and the resolver it installs) must come from outside.

import (
	"testing"

	. "critter/internal/autotune"
	_ "critter/internal/workload" // installs the registry resolver
)

func FuzzParseStudy(f *testing.F) {
	for _, seed := range []string{"capital", "slate-chol", "candmc", "slate-qr",
		"cholesky3d", "qr2d", "", "CAPITAL", "slate-qr ", "bogus"} {
		f.Add(seed)
	}
	scale := QuickScale()
	f.Fuzz(func(t *testing.T, name string) {
		st, err := ParseStudy(name, scale)
		if err != nil {
			return
		}
		if st.Name == "" || st.Size() <= 0 || st.WorldSize <= 0 || st.Run == nil {
			t.Fatalf("ParseStudy(%q) returned a half-built study: %+v", name, st)
		}
		if st.Space.Size() != st.Size() {
			t.Fatalf("ParseStudy(%q): space size %d != %d", name, st.Space.Size(), st.Size())
		}
		for v := 0; v < st.Size(); v++ {
			if st.Label(v) == "" {
				t.Fatalf("ParseStudy(%q): config %d has no label", name, v)
			}
		}
	})
}

func FuzzParseScale(f *testing.F) {
	for _, seed := range []string{"default", "quick", "", "huge", "Default"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ParseScale(name)
		if err != nil {
			return
		}
		for _, st := range []Study{CapitalCholesky(s), SlateCholesky(s), CandmcQR(s), SlateQR(s)} {
			if st.Size() <= 0 || st.WorldSize <= 0 {
				t.Fatalf("ParseScale(%q) built a degenerate study %s", name, st.Name)
			}
		}
	})
}

func FuzzParseStrategy(f *testing.F) {
	for _, seed := range []string{"exhaustive", "random:8", "random:0", "random:", "halving",
		"halving:3", "halving:1", "exhaustive:1", "random:-5", "bogus", "", "random:9999999",
		"surrogate:6", "surrogate:0", "surrogate:", "surrogate:3:2", "surrogate:3:0",
		"surrogate:3:-1", "surrogate:9999999:7", "surrogate:2:9999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		strat, err := ParseStrategy(spec, 7)
		if err != nil {
			return
		}
		if strat.Name() == "" {
			t.Fatalf("ParseStrategy(%q) returned an unnamed strategy", spec)
		}
		// Whatever the parsed parameters, the plan over a small space must
		// stay inside the space and terminate.
		sp := NewSpace(IntsDim("v", 0, 1, 2, 3, 4, 5))
		plan := strat.Plan(sp, 0.25)
		var prev []ConfigResult
		for rounds := 0; ; rounds++ {
			if rounds > 64 {
				t.Fatalf("ParseStrategy(%q): plan did not terminate", spec)
			}
			round, ok := plan.Next(prev)
			if !ok || len(round.Configs) == 0 {
				break
			}
			if round.Eps < 0.25 || round.Eps > 1 {
				t.Fatalf("ParseStrategy(%q): round eps %g outside [target, 1]", spec, round.Eps)
			}
			prev = prev[:0]
			for _, v := range round.Configs {
				if v < 0 || v >= sp.Size() {
					t.Fatalf("ParseStrategy(%q): config %d outside [0, %d)", spec, v, sp.Size())
				}
				prev = append(prev, ConfigResult{Config: v})
			}
		}
	})
}
