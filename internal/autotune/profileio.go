package autotune

import (
	"fmt"
	"os"
	"path/filepath"

	"critter/internal/critter"
)

// WriteProfileFile persists a kernel profile as indented JSON with a
// trailing newline — the on-disk convention shared by the CLIs'
// -profile-out flags (and read back by -profile-in via
// critter.DecodeProfile). A nil profile is an error: the run exported
// nothing to persist.
//
// The write is atomic: the bytes go to a temporary file in the target
// directory which is then renamed over path, so a run killed mid-write (a
// -timeout expiry, a ^C) can never leave a truncated profile behind for a
// later -profile-in to choke on.
func WriteProfileFile(path string, p *critter.Profile) error {
	if p == nil {
		return fmt.Errorf("autotune: no profile to write: every sweep failed or exported nothing")
	}
	data, err := p.Encode()
	if err != nil {
		return err
	}
	// The temp file sits beside the target (same filesystem, so the
	// rename is atomic) and is opened exactly like os.WriteFile would
	// open the target — mode 0644 with the caller's umask applied — so
	// the published file's permissions match the pre-atomic behavior.
	dir, base := filepath.Split(path)
	tmpPath := filepath.Join(dir, "."+base+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpPath, path)
}
