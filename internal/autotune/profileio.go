package autotune

import (
	"fmt"
	"os"

	"critter/internal/critter"
)

// WriteProfileFile persists a kernel profile as indented JSON with a
// trailing newline — the on-disk convention shared by the CLIs'
// -profile-out flags (and read back by -profile-in via
// critter.DecodeProfile). A nil profile is an error: the run exported
// nothing to persist.
func WriteProfileFile(path string, p *critter.Profile) error {
	if p == nil {
		return fmt.Errorf("autotune: no profile to write: every sweep failed or exported nothing")
	}
	data, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
