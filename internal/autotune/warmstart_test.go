package autotune

import (
	"context"
	"reflect"
	"testing"

	"critter/internal/critter"
)

// TestTunerDefaultEstimatorBitIdentical is the redesign's acceptance
// contract: with the default estimator and no prior, Tuner.Run is
// bit-identical to an explicitly constructed CI-mean estimator (the
// refactored pre-redesign path).
func TestTunerDefaultEstimatorBitIdentical(t *testing.T) {
	base := Tuner{
		Study:    CandmcQR(QuickScale()),
		EpsList:  []float64{0.5, 0.125},
		Machine:  quickMachine(),
		Seed:     7,
		Policies: []critter.Policy{critter.Conditional, critter.Online},
		Workers:  2,
	}
	def, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	expl := base
	expl.NewEstimator = func() critter.Estimator { return critter.NewCIMeanEstimator(false) }
	got, err := expl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, got) {
		t.Error("explicit CI-mean estimator differs from the default path")
	}
}

// TestSweepProfilesExported checks that every successful sweep carries its
// learned profile: non-empty kernel models and path frequencies, pooled
// across ranks and configurations.
func TestSweepProfilesExported(t *testing.T) {
	res, err := Tuner{
		Study:    SlateCholesky(QuickScale()),
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     3,
		Policies: []critter.Policy{critter.Conditional},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prof := res.Sweeps[0][0].Profile
	if prof == nil || len(prof.Kernels) == 0 || len(prof.PathFreqs) == 0 {
		t.Fatalf("sweep profile missing or empty: %+v", prof)
	}
	if prof.SchemaVersion != critter.ProfileSchemaVersion || prof.Estimator != "ci-mean" {
		t.Errorf("profile not self-describing: version %d estimator %q", prof.SchemaVersion, prof.Estimator)
	}
	// SlateCholesky resets statistics between configurations; the archive
	// must still span the whole space, so the profile has to know kernels
	// from configurations with different tile sizes.
	if sum := Summarize(critter.Conditional.String(), 0.25, prof); sum.Samples == 0 || sum.PathKeys == 0 {
		t.Errorf("summary empty: %+v", sum)
	}
	if mp := MergedProfile(res); mp == nil || len(mp.Kernels) < len(prof.Kernels) {
		t.Error("MergedProfile lost kernels")
	}
	// The profile survives an encode/decode cycle (the -profile-out path).
	data, err := prof.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := critter.DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, prof) {
		t.Error("sweep profile does not survive serialization")
	}
}

// TestEagerProfileNotInflated is the regression test for eager-policy
// profile pooling: eager propagation installs one pooled sample set on
// every rank, and the cross-rank export must deduplicate those shared
// copies instead of summing them once per rank. Before the fix an 8-rank
// eager sweep reported ~6x more samples than kernels it executed.
func TestEagerProfileNotInflated(t *testing.T) {
	res, err := Tuner{
		Study:    CapitalCholesky(QuickScale()),
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     5,
		Policies: []critter.Policy{critter.Eager},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sw := res.Sweeps[0][0]
	if sw.Profile == nil || len(sw.Profile.Kernels) == 0 {
		t.Fatal("eager sweep exported no profile")
	}
	pooled := 0
	for _, km := range sw.Profile.Kernels {
		if km.Pooled {
			pooled++
		}
	}
	if pooled == 0 {
		t.Error("no kernel model marked pooled despite eager propagation")
	}
	// The export must not re-sum the shared pooled copies once per rank
	// (which multiplied sample counts by nearly the world size, 8 here).
	// A modest excess over the executed count remains legitimate: eager's
	// live pooling is itself approximate — an imported model replaces a
	// rank's accumulator wholesale, so successive partial pools can
	// re-merge a few samples — but that is bounded far below the
	// per-rank blowup.
	if got := sw.Profile.Samples(); got > 2*sw.Executed {
		t.Errorf("profile holds %d samples for %d executed kernels (pooled copies re-summed per rank?)",
			got, sw.Executed)
	}
}

// TestWarmStartReducesExecutions is the transfer acceptance criterion: a
// profile exported from one run and loaded as a prior measurably reduces
// the executed-kernel count on a second run of the same study, without
// degrading the search result.
func TestWarmStartReducesExecutions(t *testing.T) {
	base := Tuner{
		Study:       CandmcQR(QuickScale()),
		EpsList:     []float64{0.125},
		Machine:     quickMachine(),
		Seed:        11,
		Policies:    []critter.Policy{critter.Online},
		Extrapolate: true,
	}
	cold, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldSweep := cold.Sweeps[0][0]
	if coldSweep.Profile == nil {
		t.Fatal("cold run exported no profile")
	}

	warmTuner := base
	warmTuner.Prior = coldSweep.Profile
	warm, err := warmTuner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	warmSweep := warm.Sweeps[0][0]
	if warmSweep.Executed >= coldSweep.Executed {
		t.Errorf("warm run executed %d kernels, cold executed %d — the prior must reduce executions",
			warmSweep.Executed, coldSweep.Executed)
	}
	if len(warmSweep.Configs) != len(coldSweep.Configs) {
		t.Errorf("warm run evaluated %d configs, cold %d", len(warmSweep.Configs), len(coldSweep.Configs))
	}
	// The warm run still tunes: its selection must come from the evaluated
	// space. (Its reference executions are not bit-compared against the
	// cold run's — executing fewer selective kernels consumes fewer noise
	// draws, shifting later configurations' noise streams.)
	evaluated := map[int]bool{}
	for _, cr := range warmSweep.Configs {
		evaluated[cr.Config] = true
	}
	if !evaluated[warmSweep.Selected] {
		t.Errorf("warm run selected config %d outside the evaluated set", warmSweep.Selected)
	}
}

// TestWarmStartStrategyDecorator checks the Strategy carrier: decorating
// any strategy threads the prior into every sweep exactly like Tuner.Prior,
// planning is delegated untouched, and the decorated name marks the run.
func TestWarmStartStrategyDecorator(t *testing.T) {
	base := Tuner{
		Study:    CandmcQR(QuickScale()),
		EpsList:  []float64{0.125},
		Machine:  quickMachine(),
		Seed:     11,
		Policies: []critter.Policy{critter.Online},
	}
	cold, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prior := cold.Sweeps[0][0].Profile

	viaPrior := base
	viaPrior.Prior = prior
	a, err := viaPrior.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	viaStrategy := base
	viaStrategy.Strategy = WarmStart(Exhaustive{}, prior)
	b, err := viaStrategy.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if b.Strategy != "warm:exhaustive" {
		t.Errorf("decorated strategy named %q, want warm:exhaustive", b.Strategy)
	}
	if !reflect.DeepEqual(a.Sweeps, b.Sweeps) {
		t.Error("WarmStart strategy and Tuner.Prior produced different sweeps")
	}
	// A nil prior decorates to the inner strategy unchanged; a nil inner
	// defaults to Exhaustive.
	if got := WarmStart(RandomSample{N: 3, Seed: 1}, nil); got.Name() != "random:3" {
		t.Errorf("WarmStart with nil prior renamed the strategy: %q", got.Name())
	}
	if got := WarmStart(nil, prior); got.Name() != "warm:exhaustive" {
		t.Errorf("WarmStart(nil, prior) = %q, want warm:exhaustive", got.Name())
	}
}

// TestWarmStartForwardsProfileAware checks the decorator against the new
// optional interface: WarmStart delegates Plan to the inner strategy
// untouched, so an inner ProfileAware plan keeps receiving the live merged
// profile — a warm start must not silently disconnect a model-guided
// strategy from its feedback loop.
func TestWarmStartForwardsProfileAware(t *testing.T) {
	base := Tuner{
		Study:    rampStudy(8),
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     13,
		Policies: []critter.Policy{critter.Online},
	}
	cold, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prior := cold.Sweeps[0][0].Profile
	if prior == nil {
		t.Fatal("cold run exported no profile")
	}

	probe, calls := newProfileProbe(Surrogate{N: 5, Seed: 13})
	warm := base
	warm.Strategy = WarmStart(probe, prior)
	res, err := warm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "warm:probe:surrogate:5" {
		t.Errorf("strategy recorded as %q", res.Strategy)
	}
	if len(*calls) == 0 {
		t.Fatal("warm-started ProfileAware plan never received a profile")
	}
	for _, prof := range *calls {
		if prof == nil {
			t.Fatal("ObserveProfile fed a nil profile through WarmStart")
		}
	}
}
