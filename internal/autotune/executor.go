package autotune

// The concurrent sweep executor. Every (study, policy, eps) sweep is
// independent given its own deterministic world seeded identically, so the
// full evaluation grid — within one Tuner or across several — is dispatched
// to a bounded pool of worker goroutines. Each job writes into a
// preallocated result slot, making results bit-identical to the sequential
// path regardless of worker count or completion order. Cancellation is
// cooperative: workers skip pending jobs once the context is done, and a
// running sweep aborts its world at the next configuration boundary.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/sim"
)

// Progress describes one completed sweep — successful, failed, or skipped
// on cancellation — for shared progress reporting across concurrently
// running tuners. Done always reaches Total, so consumers may treat
// Done == Total as end-of-run.
type Progress struct {
	Study  string
	Policy critter.Policy
	Eps    float64
	Done   int   // sweeps completed so far under this reporter
	Total  int   // total sweeps scheduled under this reporter
	Err    error // non-nil when this sweep failed or was cancelled
}

// progressSink serializes completion callbacks from concurrent workers and
// tracks the done/total counts. A nil callback disables reporting; the
// counters still advance so Total is meaningful if jobs are added later.
type progressSink struct {
	mu    sync.Mutex
	fn    func(Progress)
	done  int
	total int
}

// grow registers n more scheduled sweeps. Called while building jobs,
// before any worker runs.
func (ps *progressSink) grow(n int) { ps.total += n }

// report records one completed sweep and invokes the callback, serialized.
func (ps *progressSink) report(study string, pol critter.Policy, eps float64, err error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.done++
	if ps.fn != nil {
		ps.fn(Progress{Study: study, Policy: pol, Eps: eps, Done: ps.done, Total: ps.total, Err: err})
	}
}

// scratch is the reusable per-worker arena threaded through the executor:
// every world a worker creates shares one data-plane buffer pool, so
// consecutive sweeps (and configurations within them) recycle each other's
// message payload buffers instead of reallocating the same tile-sized
// slices thousands of times, and one kernel memo, so consecutive sweeps of
// the same study skip re-interning each configuration's kernel signatures
// and recycle retired profiler arenas (see critter.KernelMemo). A scratch
// belongs to exactly one worker goroutine at a time; the pool and memo it
// hands to worlds are themselves concurrency safe (the world's ranks share
// them).
type scratch struct {
	bufs *mpi.BufPool
	memo *critter.KernelMemo
}

// newScratch builds one worker's arena. Each worker owns its pool and memo
// outright: no cross-worker contention, and the memory dies with the run
// instead of pinning the largest study's buffers for the process lifetime.
func newScratch() *scratch {
	return &scratch{bufs: mpi.NewBufPool(), memo: critter.NewKernelMemo()}
}

// world creates a sweep world wired to this worker's arena.
func (s *scratch) world(size int, machine sim.Machine, seed uint64) *mpi.World {
	w := mpi.NewWorld(size, machine, seed)
	if s != nil {
		w.SetBufPool(s.bufs)
	}
	return w
}

// sweepJob is one (study, policy, eps) cell of the evaluation grid. It owns
// its result slot exclusively, so workers share no mutable state beyond the
// progress sink.
type sweepJob struct {
	study   Study
	strat   Strategy
	pol     critter.Policy
	eps     float64
	machine sim.Machine
	seed    uint64
	// prior warm-starts the selective profiler; extrapolate and newEst
	// configure its estimator (see the matching Tuner fields).
	prior       *critter.Profile
	extrapolate bool
	newEst      func() critter.Estimator
	// tracer receives the sweep's span events (see Tuner.Tracer); nil
	// disables tracing for this job at the cost of one branch.
	tracer obs.Tracer
	// sched selects the world scheduler (see Tuner.Scheduler); the zero
	// value lets the world auto-select by size.
	sched mpi.SchedulerKind
	// memo is the worker's cross-config kernel memoization cache,
	// installed by run from the worker's scratch arena. Nil disables
	// memoization (results are byte-identical either way).
	memo *critter.KernelMemo
	out  *SweepResult
	sink *progressSink
	// emit, when non-nil, receives the finished sweep (or a zeroed one
	// tagged with the cell's policy and eps on failure) for streaming
	// consumers. Called exactly once per job, after the slot is final.
	emit func(SweepResult, error)
}

// run simulates the sweep in a fresh world — wired to the worker's arena —
// and stores rank 0's view. A done context skips the simulation entirely;
// failure or cancellation zeroes the slot. With a tracer installed the
// sweep is bracketed by begin/end span events, the end event carrying the
// sweep's virtual totals and the process heap growth observed across the
// span (approximate under concurrent sweeps — TotalAlloc is
// process-global).
func (j sweepJob) run(ctx context.Context, sc *scratch) error {
	var allocStart uint64
	if j.tracer != nil {
		j.tracer.Emit(obs.Event{
			Kind: obs.KindSweep, Phase: obs.PhaseBegin,
			Policy: j.pol.String(), Eps: j.eps,
		})
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocStart = ms.TotalAlloc
	}
	var err error
	if err = ctx.Err(); err == nil {
		j.memo = sc.memo
		w := sc.world(j.study.WorldSize, j.machine, j.seed)
		w.SetScheduler(j.sched)
		w.SetTracer(j.tracer)
		err = w.Run(func(c *mpi.Comm) {
			sr := runSweep(ctx, c, j)
			if c.Rank() == 0 {
				*j.out = sr
			}
		})
	}
	if err != nil {
		*j.out = SweepResult{}
		err = fmt.Errorf("autotune: %s: policy %s eps %g: %w", j.study.Name, j.pol, j.eps, err)
	}
	if j.tracer != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		ev := obs.Event{
			Kind: obs.KindSweep, Phase: obs.PhaseEnd,
			Policy: j.pol.String(), Eps: j.eps,
			Virtual: j.out.TuneWall, FullVirtual: j.out.FullWall,
			Executed: j.out.Executed, Skipped: j.out.Skipped,
			Memoized:   j.out.KernelsMemoized,
			AllocBytes: ms.TotalAlloc - allocStart,
		}
		if err != nil {
			ev.Error = err.Error()
		}
		j.tracer.Emit(ev)
	}
	j.sink.report(j.study.Name, j.pol, j.eps, err)
	if j.emit != nil {
		sw := *j.out
		if err != nil {
			sw.Policy, sw.Eps = j.pol, j.eps
		}
		j.emit(sw, err)
	}
	return err
}

// forEachBounded runs fn(i, worker) for every i in [0, n) on at most
// workers goroutines (0 or negative means runtime.GOMAXPROCS(0); 1 recovers
// the sequential path). worker identifies the executing pool slot, so
// callers can thread one scratch arena per worker. The index channel is
// buffered to n, so feeding it never blocks a worker. It is the one pool
// implementation shared by the sweep executor and the full-only pass.
func forEachBounded(n, workers int, fn func(i, worker int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				fn(i, worker)
			}
		}(w)
	}
	wg.Wait()
}

// runJobs executes jobs on at most workers goroutines — each carrying its
// own scratch arena — and returns the per-job errors in job order, nil
// entries for successes. A failed sweep never blocks the others.
func runJobs(ctx context.Context, jobs []sweepJob, workers int) []error {
	errs := make([]error, len(jobs))
	var scratches sync.Map // worker -> *scratch, created lazily per pool slot
	forEachBounded(len(jobs), workers, func(i, worker int) {
		sc, ok := scratches.Load(worker)
		if !ok {
			sc, _ = scratches.LoadOrStore(worker, newScratch())
		}
		errs[i] = jobs[i].run(ctx, sc.(*scratch))
	})
	return errs
}

// ExperimentSuite runs several experiments — typically the four case
// studies of the paper's evaluation — through one shared bounded worker
// pool, so a wide study's sweeps backfill the pool while a narrow one
// drains. It is a compatibility wrapper over RunTuners.
type ExperimentSuite struct {
	Experiments []Experiment

	// Workers bounds the pool shared by every experiment; zero (or
	// negative) means runtime.GOMAXPROCS(0). Per-experiment Workers
	// fields are ignored.
	Workers int
	// Progress, when non-nil, receives every sweep completion across the
	// whole suite with suite-wide Done/Total counts. Invocations are
	// serialized. Per-experiment Progress callbacks are ignored, like
	// Workers.
	Progress func(Progress)
}

// Run executes every sweep of every experiment. The returned slice is
// aligned with Experiments; an experiment whose sweeps all succeed gets its
// *Result, one with any failed sweep gets nil. The error joins every
// per-study failure (each tagged with study, policy, and eps) rather than
// dropping them, and is nil only if all studies succeed.
func (s ExperimentSuite) Run() ([]*Result, error) {
	tuners := make([]Tuner, len(s.Experiments))
	for i, e := range s.Experiments {
		tuners[i] = e.Tuner()
	}
	results, errs := RunTuners(context.Background(), tuners, s.Workers, s.Progress)
	var failures []error
	for i, err := range errs {
		if err != nil {
			results[i] = nil
			failures = append(failures, err)
		}
	}
	return results, errors.Join(failures...)
}
