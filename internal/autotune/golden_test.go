package autotune_test

// Golden-envelope equality tests: the full result grids of all four case
// studies — eager propagation (CAPITAL) and the successive-halving strategy
// included — are pinned byte-for-byte against committed golden JSON. The
// simulation substrate underneath (mpi fabric, pathset propagation, sweep
// executor) may be rebuilt freely, but these tests prove the sweep results
// stay bit-identical: any refactor that perturbs virtual-time determinism,
// pathset merging, or estimator feeding order fails here.
//
// Studies are resolved by name through the workload registry (ParseStudy),
// the same path the CLIs and the service layer take, so the tests also pin
// that registry resolution changes nothing about the results.
//
// Regenerate with:
//
//	go test ./internal/autotune -run TestGoldenEnvelope -update-golden

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	. "critter/internal/autotune"
	"critter/internal/sim"
	_ "critter/internal/workload" // installs the registry resolver
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden envelope files")

// goldenMachine is the fixed machine model behind the golden grids.
func goldenMachine() sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0.05
	return m
}

// goldenCases enumerates the pinned (study, strategy) grid. Exhaustive runs
// every study under its full policy list (eager included for CAPITAL);
// halving exercises the rung-pruning path on every study.
func goldenCases(t *testing.T) []struct {
	name  string
	study Study
	strat Strategy
	eps   []float64
} {
	t.Helper()
	halving := func() Strategy {
		s, err := ParseStrategy("halving", 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	study := func(name string) Study {
		st, err := ParseStudy(name, QuickScale())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	return []struct {
		name  string
		study Study
		strat Strategy
		eps   []float64
	}{
		{"capital_exhaustive", study("capital"), Exhaustive{}, []float64{0.5, 0.125}},
		{"slate-chol_exhaustive", study("slate-chol"), Exhaustive{}, []float64{0.5, 0.125}},
		{"candmc_exhaustive", study("candmc"), Exhaustive{}, []float64{0.5, 0.125}},
		{"slate-qr_exhaustive", study("slate-qr"), Exhaustive{}, []float64{0.125}},
		{"capital_halving", study("capital"), halving(), []float64{0.125}},
		{"slate-chol_halving", study("slate-chol"), halving(), []float64{0.125}},
		{"candmc_halving", study("candmc"), halving(), []float64{0.125}},
		{"slate-qr_halving", study("slate-qr"), halving(), []float64{0.125}},
	}
}

// TestGoldenEnvelope runs each pinned case and compares the serialized
// result grid byte-for-byte against its golden file.
func TestGoldenEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grids run full sweeps")
	}
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := Tuner{
				Study:    tc.study,
				EpsList:  tc.eps,
				Machine:  goldenMachine(),
				Seed:     42,
				Strategy: tc.strat,
			}.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "envelope_"+tc.name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("result grid diverges from golden %s: sweep results are no longer bit-identical\n(regenerate with -update-golden only if the change is intended)", path)
			}
		})
	}
}
