package autotune

// Envelope decoding with schema-version gating. Encoding lives wherever an
// Envelope value is marshaled (the CLIs, the service layer); decoding is
// centralized here so every reader applies the same compatibility window:
// version 2 (the first self-describing envelope, no profile fields) through
// the current ResultSchemaVersion are accepted, anything newer is rejected
// with a clear error instead of being silently half-read.

import (
	"encoding/json"
	"fmt"
)

// envelopeMinSchemaVersion is the oldest envelope layout this build reads.
// Version 1 was a bare Result grid with no envelope around it, so it is
// not decodable as an Envelope at all.
const envelopeMinSchemaVersion = 2

// DecodeEnvelope parses a serialized tuning-run envelope (critter-tune
// -json output, the service's job results), validating its schema version:
// versions 2 through ResultSchemaVersion decode (older versions simply
// leave the later fields empty), unknown future versions are rejected.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	// Probe the version first so a future layout is rejected before any
	// field of it is misinterpreted.
	var probe struct {
		SchemaVersion *int `json:"schemaVersion"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("autotune: decode envelope: %w", err)
	}
	switch {
	case probe.SchemaVersion == nil:
		return nil, fmt.Errorf("autotune: decode envelope: missing schemaVersion (schema version 1 files are bare result grids, not envelopes)")
	case *probe.SchemaVersion < envelopeMinSchemaVersion:
		return nil, fmt.Errorf("autotune: decode envelope: schemaVersion %d predates the envelope format (this build reads %d through %d)",
			*probe.SchemaVersion, envelopeMinSchemaVersion, ResultSchemaVersion)
	case *probe.SchemaVersion > ResultSchemaVersion:
		return nil, fmt.Errorf("autotune: decode envelope: unknown future schemaVersion %d (this build reads %d through %d)",
			*probe.SchemaVersion, envelopeMinSchemaVersion, ResultSchemaVersion)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("autotune: decode envelope: %w", err)
	}
	return &env, nil
}
