package autotune

import (
	"math"
	"testing"

	"critter/internal/critter"
	"critter/internal/sim"
)

func quickMachine() sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0.05
	return m
}

func TestDefaultEpsList(t *testing.T) {
	eps := DefaultEpsList()
	if len(eps) != 11 || eps[0] != 1 || eps[10] != math.Pow(2, -10) {
		t.Fatalf("eps list = %v", eps)
	}
}

func TestScalesValidate(t *testing.T) {
	// Every configuration of every study must pass its library Validate
	// (the Run closures panic otherwise; here we only exercise the
	// constructors and Describe).
	for _, s := range []Scale{DefaultScale(), QuickScale()} {
		for _, st := range []Study{CapitalCholesky(s), SlateCholesky(s), CandmcQR(s), SlateQR(s)} {
			if st.NumConfigs <= 0 || st.WorldSize <= 0 {
				t.Errorf("%s: bad dims", st.Name)
			}
			for v := 0; v < st.NumConfigs; v++ {
				if st.Describe(v) == "" {
					t.Errorf("%s config %d has no description", st.Name, v)
				}
			}
		}
	}
}

func TestConfigSpaceSizesMatchPaper(t *testing.T) {
	s := DefaultScale()
	if got := CapitalCholesky(s).NumConfigs; got != 15 {
		t.Errorf("capital configs = %d, want 15", got)
	}
	if got := SlateCholesky(s).NumConfigs; got != 20 {
		t.Errorf("slate cholesky configs = %d, want 20", got)
	}
	if got := CandmcQR(s).NumConfigs; got != 15 {
		t.Errorf("candmc configs = %d, want 15", got)
	}
	if got := SlateQR(s).NumConfigs; got != 63 {
		t.Errorf("slate qr configs = %d, want 63", got)
	}
}

func TestFullOnlyCapitalQuick(t *testing.T) {
	st := CapitalCholesky(QuickScale())
	reports, err := FullOnly(st, quickMachine(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != st.NumConfigs {
		t.Fatalf("got %d reports", len(reports))
	}
	for v, r := range reports {
		if r.Wall <= 0 || r.BSPCompCrit <= 0 || r.BSPCommCrit <= 0 {
			t.Errorf("config %d: degenerate report %+v", v, r)
		}
		if r.Skipped != 0 {
			t.Errorf("config %d: full-only run skipped %d kernels", v, r.Skipped)
		}
	}
	// BSP synchronization cost must decrease with larger base-case block
	// (fewer recursion levels): config 4 (largest b) vs config 0.
	if reports[4].BSPSyncCrit >= reports[0].BSPSyncCrit {
		t.Errorf("sync cost should fall with block size: b-small %g, b-large %g",
			reports[0].BSPSyncCrit, reports[4].BSPSyncCrit)
	}
}

func TestSweepCapitalQuick(t *testing.T) {
	st := CapitalCholesky(QuickScale())
	exp := Experiment{
		Study:    st,
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     5,
		Policies: []critter.Policy{critter.Conditional, critter.Eager},
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	cond := res.Sweeps[0][0]
	eager := res.Sweeps[1][0]
	if len(cond.Configs) != st.NumConfigs {
		t.Fatalf("conditional covered %d configs", len(cond.Configs))
	}
	if cond.TuneWall <= 0 || cond.FullWall <= 0 {
		t.Fatal("degenerate sweep timings")
	}
	// Selective execution must be no slower than full execution.
	if cond.TuneWall > cond.FullWall*1.05 {
		t.Errorf("conditional tuning (%g) slower than full (%g)", cond.TuneWall, cond.FullWall)
	}
	// Eager reuses models across configs: it must skip more than
	// conditional does.
	if eager.Skipped <= cond.Skipped {
		t.Errorf("eager skipped %d, conditional %d; eager should skip more",
			eager.Skipped, cond.Skipped)
	}
	// Prediction error should be bounded at this tolerance.
	for _, cr := range cond.Configs {
		if math.IsInf(cr.ExecErr, 0) || math.IsNaN(cr.ExecErr) {
			t.Errorf("config %d: bad error %v", cr.Config, cr.ExecErr)
		}
	}
}

func TestSweepSlateCholQuickErrorShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	// The per-sweep noise streams make single-seed error comparisons
	// flaky, so assert the systematic properties across several seeds:
	// tighter tolerance always executes more kernels, and the comp-time
	// prediction error does not grow on average (Fig. 4d).
	st := SlateCholesky(QuickScale())
	var errDiffSum float64
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		res, err := Experiment{
			Study:    st,
			EpsList:  []float64{0.5, 0.03125},
			Machine:  quickMachine(),
			Seed:     seed,
			Policies: []critter.Policy{critter.Online},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		loose, tight := res.Sweeps[0][0], res.Sweeps[0][1]
		// Tighter tolerance => more executions, at every seed.
		if tight.Executed <= loose.Executed {
			t.Errorf("seed %d: tight eps executed %d <= loose %d", seed, tight.Executed, loose.Executed)
		}
		errDiffSum += tight.MeanLogCompErr - loose.MeanLogCompErr
	}
	if mean := errDiffSum / float64(len(seeds)); mean >= 0.5 {
		t.Errorf("comp error grew with tighter tolerance: mean log2 diff %.2f over %d seeds", mean, len(seeds))
	}
}

// TestCandmcOnlineNoDeadlock is a regression test: the Online policy over
// CANDMC's symmetric TSQR Sendrecv exchanges once deadlocked because the
// internal piggyback messages cross-paired (send-with-send instead of
// send-with-recv), letting the two sides reach different skip decisions.
func TestCandmcOnlineNoDeadlock(t *testing.T) {
	st := CandmcQR(QuickScale())
	exp := Experiment{
		Study:    st,
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     4,
		Policies: []critter.Policy{critter.Online},
	}
	if _, err := exp.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAprioriIncludesOfflinePass(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	st := CandmcQR(QuickScale())
	exp := Experiment{
		Study:    st,
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     4,
		Policies: []critter.Policy{critter.Conditional, critter.APriori},
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	cond, apriori := res.Sweeps[0][0], res.Sweeps[1][0]
	// The extra full execution prevents any speedup relative to
	// conditional execution (Section VI-B).
	if apriori.TuneWall <= cond.TuneWall {
		t.Errorf("apriori tuning %g should exceed conditional %g (extra offline pass)",
			apriori.TuneWall, cond.TuneWall)
	}
}

func TestOptimalConfigSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	// Section VI-C: Critter's selected configuration achieves performance
	// close to the optimum. With simulated noise the argmin may differ;
	// check the selected config's full time is within 10% of optimal.
	st := CapitalCholesky(QuickScale())
	exp := Experiment{
		Study:    st,
		EpsList:  []float64{0.125},
		Machine:  quickMachine(),
		Seed:     8,
		Policies: []critter.Policy{critter.Online},
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	sw := res.Sweeps[0][0]
	fullOf := func(v int) float64 {
		for _, cr := range sw.Configs {
			if cr.Config == v {
				return cr.Full.Wall
			}
		}
		return math.NaN()
	}
	sel, opt := fullOf(sw.Selected), fullOf(sw.Optimal)
	if sel > opt*1.10 {
		t.Errorf("selected config %d (%.4gs) more than 10%% off optimal %d (%.4gs)",
			sw.Selected, sel, sw.Optimal, opt)
	}
}
