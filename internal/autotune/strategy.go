package autotune

// Search strategies: the policy deciding WHICH configurations of a space a
// sweep evaluates (and at what tolerance), as opposed to the profiler's
// Policy, which decides HOW each configuration's kernels are selectively
// executed. The paper's evaluation is the Exhaustive strategy; RandomSample
// and SuccessiveHalving trade coverage for budget, in the spirit of the
// Bayesian and transfer-learned samplers of related autotuning work.

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
	"strings"

	"critter/internal/critter"
	"critter/internal/sim"
)

// Round is one batch of configurations a strategy asks the runner to
// evaluate. Eps is the confidence tolerance for the batch's selective
// executions; rung-based strategies loosen it on early rounds.
type Round struct {
	Configs []int
	Eps     float64
}

// Plan is one sweep's iteration of a Strategy. Next returns the next round
// given the results of the previous one (nil on the first call); returning
// ok == false (or an empty round) ends the sweep.
//
// A Plan may be stateful: the runner creates one per sweep. Because every
// rank of a sweep's simulated world drives its own identical copy of the
// plan, Next must be deterministic in its inputs — the ConfigResults it
// receives are collective (identical on every rank), so pruning on
// Selective.Predicted keeps all ranks in agreement.
type Plan interface {
	Next(prev []ConfigResult) (Round, bool)
}

// ProfileAware is an optional interface a Plan may implement to receive the
// sweep's live learned state: after each completed round the executor pools
// every rank's profiler export (Profiler.GlobalProfile — a collective whose
// result is identical on every rank) and feeds it to the plan before the
// next Next call. Model-guided strategies use it to learn mid-run — e.g.
// the Surrogate plan re-derives its exploration margin from the measured
// kernel noise.
//
// The Plan contract extends naturally: ObserveProfile receives identical
// arguments on every rank of a sweep, and a plan's later Next decisions
// must remain deterministic in everything it has observed, so all ranks
// keep agreeing. Implementations must not retain p past the call unless
// they treat it as immutable (it is shared with nothing else, but mutating
// it would desynchronize nothing — it is a per-round snapshot — while
// wasting the copy).
type ProfileAware interface {
	ObserveProfile(p *critter.Profile)
}

// Strategy plans which configurations a sweep evaluates. Implementations
// must be immutable values: one Strategy is shared by every concurrent
// sweep of a Tuner, and Plan is called once per sweep per rank.
type Strategy interface {
	// Name identifies the strategy in flags and serialized results.
	Name() string
	// Plan starts one sweep over the space at target tolerance eps.
	Plan(sp Space, eps float64) Plan
}

// oneShot is a single-round plan.
type oneShot struct {
	round Round
	done  bool
}

func (p *oneShot) Next(prev []ConfigResult) (Round, bool) {
	if p.done {
		return Round{}, false
	}
	p.done = true
	return p.round, true
}

// Exhaustive evaluates every configuration in index order at the sweep's
// tolerance — the paper's protocol, and the default strategy. Results are
// bit-identical to the pre-Tuner Experiment path.
type Exhaustive struct{}

// Name implements Strategy.
func (Exhaustive) Name() string { return "exhaustive" }

// Plan implements Strategy.
func (Exhaustive) Plan(sp Space, eps float64) Plan {
	configs := make([]int, sp.Size())
	for i := range configs {
		configs[i] = i
	}
	return &oneShot{round: Round{Configs: configs, Eps: eps}}
}

// RandomSample evaluates N configurations drawn uniformly without
// replacement from a deterministic stream seeded with Seed, for budgeted
// tuning of spaces too large to sweep. N >= the space size degenerates to
// Exhaustive order-shuffled.
type RandomSample struct {
	N    int
	Seed uint64
}

// Name implements Strategy.
func (r RandomSample) Name() string { return fmt.Sprintf("random:%d", r.N) }

// Plan implements Strategy. The sample depends only on (Seed, space size),
// so every (policy, eps) cell of a tuning grid evaluates the same subset
// and stays comparable across cells.
func (r RandomSample) Plan(sp Space, eps float64) Plan {
	size := sp.Size()
	n := r.N
	if n <= 0 || n > size {
		n = size
	}
	// Partial Fisher-Yates: the first n entries of a seeded permutation.
	perm := make([]int, size)
	for i := range perm {
		perm[i] = i
	}
	rng := sim.NewRNG(sim.Mix(r.Seed, uint64(size), 0x73616d706c65)) // "sample"
	for i := 0; i < n; i++ {
		j := i + rng.Intn(size-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &oneShot{round: Round{Configs: perm[:n], Eps: eps}}
}

// SuccessiveHalving prunes the space across tolerance rungs: the first rung
// evaluates every configuration at a loosened tolerance (cheap, because
// loose tolerances skip most kernels), then each following rung keeps the
// best 1/Eta of the survivors by Critter's predicted execution time and
// halves the tolerance, until the final rung reaches the sweep's target
// tolerance with at most Eta configurations left. Total evaluations are at
// most Eta/(Eta-1) times the space size, but almost all of them run at
// loose tolerances.
type SuccessiveHalving struct {
	// Eta is the pruning factor per rung; 0 means 2.
	Eta int
}

// Name implements Strategy.
func (sh SuccessiveHalving) Name() string {
	if e := sh.eta(); e != 2 {
		return fmt.Sprintf("halving:%d", e)
	}
	return "halving"
}

func (sh SuccessiveHalving) eta() int {
	if sh.Eta < 2 {
		return 2
	}
	return sh.Eta
}

// Plan implements Strategy.
func (sh SuccessiveHalving) Plan(sp Space, eps float64) Plan {
	eta := sh.eta()
	// Rung survivor counts: size, ceil(size/eta), ... down to <= eta.
	rungs := 1
	for n := sp.Size(); n > eta; n = (n + eta - 1) / eta {
		rungs++
	}
	configs := make([]int, sp.Size())
	for i := range configs {
		configs[i] = i
	}
	return &halvingPlan{eta: eta, rungs: rungs, targetEps: eps, survivors: configs}
}

// halvingPlan is the per-sweep state of SuccessiveHalving.
type halvingPlan struct {
	eta       int
	rungs     int
	rung      int
	targetEps float64
	survivors []int
}

func (p *halvingPlan) Next(prev []ConfigResult) (Round, bool) {
	if p.rung > 0 {
		if p.rung >= p.rungs {
			return Round{}, false
		}
		p.survivors = prune(prev, (len(p.survivors)+p.eta-1)/p.eta)
	}
	eps := p.targetEps
	if eps > 0 {
		// Loosen by 2x per remaining rung, capped at the maximal
		// meaningful tolerance of 1.
		if eps = eps * float64(int64(1)<<uint(p.rungs-1-p.rung)); eps > 1 {
			eps = 1
		}
	}
	p.rung++
	return Round{Configs: p.survivors, Eps: eps}, true
}

// prune keeps the n results with the smallest predicted execution times,
// breaking ties by configuration index, and returns their config indices in
// ascending order (deterministic on every rank — the (Predicted, Config)
// key is a total order over a round's results, so the unstable sort cannot
// introduce rank divergence).
func prune(results []ConfigResult, n int) []int {
	sorted := make([]ConfigResult, len(results))
	copy(sorted, results)
	slices.SortFunc(sorted, func(a, b ConfigResult) int {
		if c := cmp.Compare(a.Selective.Predicted, b.Selective.Predicted); c != 0 {
			return c
		}
		return cmp.Compare(a.Config, b.Config)
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	keep := make([]int, n)
	for i := 0; i < n; i++ {
		keep[i] = sorted[i].Config
	}
	// Ascending config order keeps the evaluation order stable.
	slices.Sort(keep)
	return keep
}

// StrategyNames documents the flag grammar accepted by ParseStrategy. Every
// grammar head ParseStrategy accepts must appear here (pinned by
// TestStrategyNamesComplete, which also round-trips each strategy's Name
// back through the parser).
const StrategyNames = "exhaustive, random:N, halving[:ETA], surrogate:N[:BATCH]"

// ParseStrategy resolves a strategy flag spec: "exhaustive", "random:N"
// (N sampled configurations, seeded with seed), "halving" with an optional
// ":ETA" pruning factor, or "surrogate:N" (model-guided search over an
// evaluation budget of N, seeded with seed) with an optional ":BATCH"
// proposals-per-round count.
func ParseStrategy(spec string, seed uint64) (Strategy, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "exhaustive":
		if hasArg {
			return nil, fmt.Errorf("autotune: strategy exhaustive takes no argument, got %q", spec)
		}
		return Exhaustive{}, nil
	case "random":
		n, err := strconv.Atoi(arg)
		if !hasArg || err != nil || n < 1 {
			return nil, fmt.Errorf("autotune: strategy random wants a positive sample count, e.g. random:8, got %q", spec)
		}
		return RandomSample{N: n, Seed: seed}, nil
	case "halving":
		if !hasArg {
			return SuccessiveHalving{}, nil
		}
		eta, err := strconv.Atoi(arg)
		if err != nil || eta < 2 {
			return nil, fmt.Errorf("autotune: strategy halving wants an integer pruning factor >= 2, got %q", spec)
		}
		return SuccessiveHalving{Eta: eta}, nil
	case "surrogate":
		narg, barg, hasBatch := strings.Cut(arg, ":")
		n, err := strconv.Atoi(narg)
		if !hasArg || err != nil || n < 1 {
			return nil, fmt.Errorf("autotune: strategy surrogate wants a positive evaluation budget, e.g. surrogate:8 or surrogate:8:2, got %q", spec)
		}
		s := Surrogate{N: n, Seed: seed}
		if hasBatch {
			b, err := strconv.Atoi(barg)
			if err != nil || b < 1 {
				return nil, fmt.Errorf("autotune: strategy surrogate wants a positive batch size, e.g. surrogate:8:2, got %q", spec)
			}
			s.Batch = b
		}
		return s, nil
	}
	return nil, fmt.Errorf("autotune: unknown strategy %q (want %s)", spec, StrategyNames)
}
