package autotune

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"critter/internal/critter"
)

// TestTunerExhaustiveMatchesExperiment is the redesign's core contract: the
// Tuner with the Exhaustive strategy reproduces the legacy Experiment
// bit-for-bit, at any worker count.
func TestTunerExhaustiveMatchesExperiment(t *testing.T) {
	exp := Experiment{
		Study:    CapitalCholesky(QuickScale()),
		EpsList:  []float64{0.5, 0.125},
		Machine:  quickMachine(),
		Seed:     7,
		Policies: []critter.Policy{critter.Conditional, critter.Online},
		Workers:  1,
	}
	legacy, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tn := exp.Tuner()
		tn.Workers = workers
		got, err := tn.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, got) {
			t.Errorf("Tuner (Workers: %d) differs from Experiment", workers)
		}
	}
}

// TestTunerNilStrategyAndContext checks the defaults: nil Strategy means
// Exhaustive and a nil context means Background.
func TestTunerNilStrategyAndContext(t *testing.T) {
	res, err := Tuner{
		Study:   tinyStudy("tiny"),
		EpsList: []float64{0.25},
		Machine: quickMachine(),
		Seed:    3,
	}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "exhaustive" {
		t.Errorf("default strategy recorded as %q, want exhaustive", res.Strategy)
	}
	if len(res.Sweeps[0][0].Configs) != 2 {
		t.Errorf("exhaustive covered %d configs, want 2", len(res.Sweeps[0][0].Configs))
	}
}

// TestRandomSampleStrategy checks the budgeted sampler: exactly N distinct
// in-range configurations, the same subset in every grid cell and across
// runs, and a different subset under a different seed.
func TestRandomSampleStrategy(t *testing.T) {
	st := CapitalCholesky(QuickScale())
	run := func(seed uint64) *Result {
		res, err := Tuner{
			Study:    st,
			EpsList:  []float64{0.5, 0.25},
			Machine:  quickMachine(),
			Seed:     5,
			Policies: []critter.Policy{critter.Conditional},
			Strategy: RandomSample{N: 5, Seed: seed},
			Workers:  2,
		}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(9)
	if res.Strategy != "random:5" {
		t.Errorf("strategy recorded as %q", res.Strategy)
	}
	subset := func(sw SweepResult) map[int]bool {
		out := map[int]bool{}
		for _, cr := range sw.Configs {
			if cr.Config < 0 || cr.Config >= st.Size() {
				t.Fatalf("sampled config %d outside [0, %d)", cr.Config, st.Size())
			}
			out[cr.Config] = true
		}
		return out
	}
	first := subset(res.Sweeps[0][0])
	if len(first) != 5 || len(res.Sweeps[0][0].Configs) != 5 {
		t.Fatalf("sampled %d distinct configs (%d evaluations), want 5", len(first), len(res.Sweeps[0][0].Configs))
	}
	if second := subset(res.Sweeps[0][1]); !reflect.DeepEqual(first, second) {
		t.Errorf("grid cells sampled different subsets: %v vs %v", first, second)
	}
	if rerun := subset(run(9).Sweeps[0][0]); !reflect.DeepEqual(first, rerun) {
		t.Errorf("re-run sampled a different subset: %v vs %v", first, rerun)
	}
	if other := subset(run(10).Sweeps[0][0]); reflect.DeepEqual(first, other) {
		t.Errorf("seed 10 sampled the same subset as seed 9: %v", first)
	}
	// The selected configuration must come from the evaluated subset.
	if !first[res.Sweeps[0][0].Selected] {
		t.Errorf("selected config %d was never evaluated", res.Sweeps[0][0].Selected)
	}
}

// rampStudy is a synthetic study whose configurations get slower with the
// index (config v runs kernels of cost ~(v+1)), so predicted-time pruning
// has a meaningful ordering.
func rampStudy(n int) Study {
	return Study{
		Name:      "ramp",
		Space:     NewSpace(IntsDim("cost", seqInts(n)...)),
		WorldSize: 2,
		Policies:  []critter.Policy{critter.Online},
		Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
			for i := 0; i < 6; i++ {
				p.Kernel("work", v+1, 0, 0, 0, float64((v+1)*2000), func() {})
			}
			cc.Barrier()
		},
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestSuccessiveHalvingPrunes checks the rung structure: survivor counts
// shrink by eta per rung, tolerances tighten toward the target, the final
// rung runs at the sweep's tolerance, and the selection comes from the
// evaluated set.
func TestSuccessiveHalvingPrunes(t *testing.T) {
	const n, eps = 16, 0.125
	res, err := Tuner{
		Study:    rampStudy(n),
		EpsList:  []float64{eps},
		Machine:  quickMachine(),
		Seed:     11,
		Strategy: SuccessiveHalving{},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sw := res.Sweeps[0][0]
	// Rungs: 16 at eps*8, 8 at eps*4, 4 at eps*2, 2 at eps.
	wantSizes := []int{16, 8, 4, 2}
	wantEps := []float64{1, 0.5, 0.25, 0.125}
	var gotSizes []int
	var gotEps []float64
	for i := 0; i < len(sw.Configs); {
		e := sw.Configs[i].Eps
		j := i
		for j < len(sw.Configs) && sw.Configs[j].Eps == e {
			j++
		}
		gotSizes = append(gotSizes, j-i)
		gotEps = append(gotEps, e)
		i = j
	}
	if !reflect.DeepEqual(gotSizes, wantSizes) || !reflect.DeepEqual(gotEps, wantEps) {
		t.Fatalf("rungs (size@eps) = %v @ %v, want %v @ %v", gotSizes, gotEps, wantSizes, wantEps)
	}
	evaluated := map[int]bool{}
	for _, cr := range sw.Configs {
		evaluated[cr.Config] = true
	}
	if !evaluated[sw.Selected] {
		t.Errorf("selected config %d was never evaluated", sw.Selected)
	}
	// The ramp makes low indices fastest; the final rung must hold
	// low-cost survivors, not the slow tail.
	for _, cr := range sw.Configs[len(sw.Configs)-2:] {
		if cr.Config >= n/2 {
			t.Errorf("final rung kept slow config %d (space of %d, ascending cost)", cr.Config, n)
		}
	}
}

// TestTunerCancelMidGrid cancels the context from inside the first
// configuration of a long sweep: Run must return promptly with an error
// satisfying errors.Is(err, context.Canceled), no deadlock, and a zeroed
// cell for the cancelled sweep.
func TestTunerCancelMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	st := tinyStudy("cancel-study")
	st.NumConfigs = 500
	run := st.Run
	st.Run = func(p *critter.Profiler, cc *critter.Comm, v int) {
		once.Do(cancel)
		run(p, cc, v)
	}
	res, err := Tuner{
		Study:   st,
		EpsList: []float64{0.5, 0.25, 0.125},
		Machine: quickMachine(),
		Seed:    2,
		Workers: 2,
	}.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run dropped the result grid")
	}
	for ei := range res.EpsList {
		if sw := res.Sweeps[0][ei]; len(sw.Configs) != 0 {
			t.Errorf("cancelled sweep %d kept %d partial configs, want zeroed cell", ei, len(sw.Configs))
		}
	}
}

// TestTunerCancelSkipsPendingJobs checks that a context cancelled before
// Run starts skips every sweep without simulating anything.
func TestTunerCancelSkipsPendingJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var events []Progress
	res, err := Tuner{
		Study:    tinyStudy("tiny"),
		EpsList:  []float64{0.5, 0.25},
		Machine:  quickMachine(),
		Seed:     2,
		Progress: func(ev Progress) { events = append(events, ev) },
	}.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Sweeps[0]) != 2 {
		t.Fatal("result grid shape lost on cancellation")
	}
	// Progress still reaches Done == Total, with every sweep erred.
	if len(events) != 2 || events[1].Done != 2 || events[1].Total != 2 {
		t.Fatalf("progress events %+v, want 2 reaching 2/2", events)
	}
	for _, ev := range events {
		if !errors.Is(ev.Err, context.Canceled) {
			t.Errorf("progress err = %v, want context.Canceled", ev.Err)
		}
	}
}

// TestTunerStream checks the streaming runner: one (result, error) pair per
// grid cell in completion order, with the full grid covered.
func TestTunerStream(t *testing.T) {
	eps := []float64{1, 0.5, 0.25}
	tn := Tuner{
		Study:   tinyStudy("tiny"),
		EpsList: eps,
		Machine: quickMachine(),
		Seed:    3,
		Workers: 3,
	}
	seen := map[float64]int{}
	for sw, err := range tn.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if len(sw.Configs) != 2 {
			t.Errorf("streamed sweep eps %g covered %d configs", sw.Eps, len(sw.Configs))
		}
		seen[sw.Eps]++
	}
	for _, e := range eps {
		if seen[e] != 1 {
			t.Errorf("eps %g streamed %d times, want 1", e, seen[e])
		}
	}
	// Streamed sweeps must match the batch path bit-for-bit.
	res, err := tn.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for sw, err := range tn.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		ei := -1
		for i, e := range eps {
			if e == sw.Eps {
				ei = i
			}
		}
		if !reflect.DeepEqual(res.Sweeps[0][ei], sw) {
			t.Errorf("streamed sweep eps %g differs from batch result", sw.Eps)
		}
	}
}

// TestTunerStreamEarlyBreak stops consuming after the first sweep; the
// iterator must cancel the rest and return without deadlocking or leaking
// the pool.
func TestTunerStreamEarlyBreak(t *testing.T) {
	tn := Tuner{
		Study:   tinyStudy("tiny"),
		EpsList: []float64{1, 0.5, 0.25, 0.125},
		Machine: quickMachine(),
		Seed:    3,
		Workers: 2,
	}
	n := 0
	for _, err := range tn.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		break
	}
	if n != 1 {
		t.Fatalf("consumed %d sweeps after break, want 1", n)
	}
}

// TestExperimentPartialResults checks the partial-result fix: when one
// policy's sweeps fail, Run returns the grid with the failed cells zeroed
// and the healthy cells intact, alongside the joined error.
func TestExperimentPartialResults(t *testing.T) {
	st := tinyStudy("half-broken")
	run := st.Run
	st.Run = func(p *critter.Profiler, cc *critter.Comm, v int) {
		if p.Policy() == critter.Local {
			panic("local breaks")
		}
		run(p, cc, v)
	}
	res, err := Experiment{
		Study:    st,
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     2,
		Policies: []critter.Policy{critter.Conditional, critter.Local},
	}.Run()
	if err == nil {
		t.Fatal("failing sweep reported no error")
	}
	if !strings.Contains(err.Error(), "local breaks") || !strings.Contains(err.Error(), "policy local") {
		t.Errorf("error %q does not identify the failing sweep", err)
	}
	if res == nil {
		t.Fatal("partial results dropped: got nil grid")
	}
	if good := res.Sweeps[0][0]; len(good.Configs) != 2 {
		t.Errorf("healthy sweep lost: %d configs", len(good.Configs))
	}
	if bad := res.Sweeps[1][0]; len(bad.Configs) != 0 {
		t.Errorf("failed sweep not zeroed: %+v", bad)
	}
}

// TestFullOnlyParallelDeterminism checks that the parallelized full-only
// pass is bit-identical at any worker count (each configuration runs in its
// own identically seeded world).
func TestFullOnlyParallelDeterminism(t *testing.T) {
	st := CapitalCholesky(QuickScale())
	seq, err := FullOnlyCtx(context.Background(), st, quickMachine(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FullOnlyCtx(context.Background(), st, quickMachine(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FullOnly differs between 1 and 4 workers")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := FullOnlyCtx(cancelled, st, quickMachine(), 3, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FullOnly err = %v", err)
	}
	if len(reports) != st.Size() {
		t.Errorf("cancelled FullOnly returned %d report slots, want %d", len(reports), st.Size())
	}
}

// TestEnvelopeRoundTrip checks the self-describing serialization: an
// Envelope survives a JSON round trip, including the policy names inside
// the result grid.
func TestEnvelopeRoundTrip(t *testing.T) {
	res, err := Tuner{
		Study:    tinyStudy("tiny"),
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     4,
		Strategy: RandomSample{N: 1, Seed: 4},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	env := Envelope{
		SchemaVersion: ResultSchemaVersion,
		Study:         "tiny",
		Scale:         "quick",
		Seed:          4,
		NoiseSigma:    0.05,
		Strategy:      "random:1",
		Profiles:      ProfileSummaries(res),
		Result:        res,
	}
	if len(env.Profiles) != 1 || env.Profiles[0].Kernels == 0 {
		t.Fatalf("profile summaries missing or empty: %+v", env.Profiles)
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back Envelope
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// The full per-sweep profiles and the memoization counter are
	// deliberately not serialized (the envelope carries summaries;
	// -profile-out persists the artifact; kernels_memoized_total carries
	// the counter), so the round trip is checked against a stripped copy.
	want := env
	stripped := *res
	stripped.Sweeps = make([][]SweepResult, len(res.Sweeps))
	for pi := range res.Sweeps {
		stripped.Sweeps[pi] = make([]SweepResult, len(res.Sweeps[pi]))
		for ei, sw := range res.Sweeps[pi] {
			sw.Profile = nil
			sw.KernelsMemoized = 0
			sw.Configs = append([]ConfigResult(nil), sw.Configs...)
			for ci := range sw.Configs {
				sw.Configs[ci].Full.Memoized = 0
				sw.Configs[ci].Selective.Memoized = 0
			}
			stripped.Sweeps[pi][ei] = sw
		}
	}
	want.Result = &stripped
	if !reflect.DeepEqual(want, back) {
		t.Fatalf("round trip changed the envelope:\n%+v\n%+v", want, back)
	}
	if back.SchemaVersion != 3 || back.Result.Strategy != "random:1" {
		t.Errorf("envelope not self-describing: version %d strategy %q", back.SchemaVersion, back.Result.Strategy)
	}
	if len(back.Profiles) != 1 || back.Profiles[0].Kernels != env.Profiles[0].Kernels {
		t.Errorf("profile summaries lost in round trip: %+v", back.Profiles)
	}
}
