package autotune_test

// Tracing is observational: installing a Tracer must not perturb a single
// byte of the result grid. These tests run the same tuning grid with and
// without a tracer and require byte-identical envelopes, then check the
// trace itself is structurally sound (sweep/config spans pair up, virtual
// time is populated, propagation rounds appear).

import (
	"context"
	"encoding/json"
	"testing"

	. "critter/internal/autotune"
	"critter/internal/obs"
	_ "critter/internal/workload" // installs the registry resolver
)

// traceTuner builds the fixed small grid both runs share.
func traceTuner(t *testing.T) Tuner {
	t.Helper()
	study, err := ParseStudy("candmc", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	return Tuner{
		Study:   study,
		EpsList: []float64{0.5, 0.125},
		Machine: goldenMachine(),
		Seed:    42,
		Workers: 2,
	}
}

// TestTracingDoesNotPerturbResults is the acceptance gate for the tracing
// hooks: a traced run's envelope is byte-identical to an untraced one.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps")
	}
	encode := func(tracer obs.Tracer) []byte {
		tn := traceTuner(t)
		tn.Tracer = tracer
		res, err := tn.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	plain := encode(nil)
	ring := obs.NewRing(1<<16, nil)
	traced := encode(ring)
	if string(plain) != string(traced) {
		t.Fatal("traced run's envelope differs from the untraced run: tracing is no longer purely observational")
	}

	events := ring.Events()
	if ring.Dropped() != 0 {
		t.Fatalf("trace ring dropped %d events; size the ring up", ring.Dropped())
	}
	if len(events) == 0 {
		t.Fatal("traced run emitted no events")
	}

	// Span structure: every kind that forms spans has matching begin and
	// end counts, config ordinals pair up within their sweep, and the
	// deterministic layers stamped virtual time on round events.
	type spanID struct {
		kind   string
		policy string
		eps    float64
		config int
	}
	begins := make(map[spanID]int)
	counts := make(map[string]int)
	rounds, virtualStamped := 0, 0
	for _, ev := range events {
		counts[ev.Kind+"/"+ev.Phase]++
		if ev.Kind == obs.KindRound {
			rounds++
			if ev.Virtual > 0 {
				virtualStamped++
			}
			continue
		}
		id := spanID{kind: ev.Kind, policy: ev.Policy, eps: ev.Eps, config: ev.Config}
		switch ev.Phase {
		case obs.PhaseBegin:
			begins[id]++
		case obs.PhaseEnd:
			begins[id]--
			if begins[id] < 0 {
				t.Fatalf("end without begin for span %+v", id)
			}
		}
	}
	for id, n := range begins {
		if n != 0 {
			t.Errorf("span %+v left %d unpaired begins", id, n)
		}
	}
	grid := traceTuner(t)
	wantSweeps := len(grid.Study.Policies) * len(grid.EpsList)
	if counts[obs.KindSweep+"/"+obs.PhaseBegin] != wantSweeps {
		t.Errorf("saw %d sweep begins, want %d", counts[obs.KindSweep+"/"+obs.PhaseBegin], wantSweeps)
	}
	if counts[obs.KindConfig+"/"+obs.PhaseEnd] == 0 {
		t.Error("trace has no config spans")
	}
	if rounds == 0 || virtualStamped == 0 {
		t.Errorf("trace has %d round events (%d with virtual time), want both nonzero", rounds, virtualStamped)
	}
}
