package autotune

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"critter/internal/critter"
)

// TestWriteProfileFileAtomic: the write lands complete and readable, the
// temp file is gone, and overwriting an existing profile replaces it in
// one step.
func TestWriteProfileFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.json")

	p := &critter.Profile{
		Estimator: "ci-mean",
		Kernels: map[critter.Key]critter.KernelModel{
			critter.CompKey("gemm", 8, 8, 8, 0): {Count: 4, Mean: 1e-6, M2: 1e-14},
		},
	}
	if err := WriteProfileFile(path, p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("profile file is missing the trailing newline")
	}
	back, err := critter.DecodeProfile(data)
	if err != nil {
		t.Fatalf("written profile does not decode: %v", err)
	}
	if back.Samples() != 4 {
		t.Errorf("round-tripped profile has %d samples, want 4", back.Samples())
	}
	// Permissions match what a plain os.WriteFile(…, 0o644) produces
	// under the same umask — the atomic write must not widen them.
	ref := filepath.Join(dir, "ref")
	if err := os.WriteFile(ref, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	refInfo, err := os.Stat(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ref); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != refInfo.Mode().Perm() {
		t.Errorf("profile file mode = %v, %v; want %v (os.WriteFile under this umask)", fi.Mode(), err, refInfo.Mode().Perm())
	}

	// Overwrite: the rename replaces the old artifact wholesale.
	p2 := &critter.Profile{Estimator: "ci-mean"}
	if err := WriteProfileFile(path, p2); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data2), "gemm") {
		t.Error("overwrite kept stale content")
	}

	// No temp-file residue in the target directory either way.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "prof.json" {
			t.Errorf("stray file %q left beside the profile", e.Name())
		}
	}

	// A nil profile stays an error and must not touch the target.
	if err := WriteProfileFile(path, nil); err == nil {
		t.Error("WriteProfileFile(nil) succeeded")
	}
	if after, _ := os.ReadFile(path); string(after) != string(data2) {
		t.Error("failed write modified the existing profile")
	}
}

// TestWriteProfileFileBadDir: a missing target directory fails cleanly
// (the temp file is created in the target dir, so the error surfaces
// before any bytes are written anywhere else).
func TestWriteProfileFileBadDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "prof.json")
	if err := WriteProfileFile(path, &critter.Profile{}); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}
