package autotune

import (
	"fmt"

	"critter/internal/candmc"
	"critter/internal/capital"
	"critter/internal/critter"
	"critter/internal/grid"
	"critter/internal/slate"
)

// Scale sizes the four case studies. The paper's experiments ran on 512 to
// 4096 KNL cores with matrices up to 131072; the simulated reproduction
// keeps the configuration-space *shapes* (15/20/15/63 points with the same
// parameter formulas) at laptop scale. Paper-scale counts per study appear
// in the comments of the study constructors.
type Scale struct {
	// CapitalN/CapitalC: CAPITAL factors an N x N matrix on a C^3 grid.
	CapitalN, CapitalC, CapitalBB int
	// SlateCholN and tile list; grid PRxPC fixed square.
	SlateCholN  int
	SlateCholNB []int
	SlateCholPR int
	SlateCholPC int
	// CANDMC: M x N, block sizes 2^j multiples, three grid shapes.
	CandmcM, CandmcN int
	CandmcB0         int // b = B0 * 2^(v%5)
	CandmcGrids      [3][2]int
	// SLATE QR: M x N, inner blocks, tile list, three grid shapes.
	SlateQRM, SlateQRN int
	SlateQRIB0         int // ib = IB0 * 2^(v%3)
	SlateQRNB          []int
	SlateQRGrids       [3][2]int
}

// DefaultScale targets 64 simulated ranks (32 for SLATE QR), a few seconds
// per full sweep.
func DefaultScale() Scale {
	return Scale{
		CapitalN: 256, CapitalC: 4, CapitalBB: 2,
		SlateCholN:  240,
		SlateCholNB: []int{12, 16, 20, 24, 30, 40, 48, 60, 80, 120},
		SlateCholPR: 8, SlateCholPC: 8,
		CandmcM: 1024, CandmcN: 256, CandmcB0: 2,
		CandmcGrids: [3][2]int{{8, 8}, {16, 4}, {32, 2}},
		SlateQRM:    240, SlateQRN: 120, SlateQRIB0: 2,
		SlateQRNB:    []int{12, 20, 24, 30, 40, 60, 120},
		SlateQRGrids: [3][2]int{{16, 2}, {8, 4}, {4, 8}},
	}
}

// Resolver resolves study and scale names through a workload registry.
// internal/workload installs one at init (it imports this package, so the
// registry cannot live here); ParseStudy and ParseScale are thin wrappers
// over it, preserved for pre-registry call sites.
type Resolver interface {
	// ResolveStudy builds the named workload's study at the given scale.
	ResolveStudy(name string, s Scale) (Study, error)
	// ResolveScale resolves a named scale preset.
	ResolveScale(name string) (Scale, error)
}

// resolver is the installed workload registry adapter. Installation
// happens in package init (importing critter/internal/workload, the
// critter facade, or anything built on them), strictly before any parse
// call, so no synchronization is needed.
var resolver Resolver

// SetResolver installs the workload registry adapter ParseStudy and
// ParseScale delegate to. Called by internal/workload's init.
func SetResolver(r Resolver) { resolver = r }

// ParseStudy resolves a workload name at the given scale through the
// registered workload registry. It is a thin compatibility wrapper over
// the registry in critter/internal/workload; new code should resolve
// workloads there (or through the critter facade) directly.
func ParseStudy(name string, s Scale) (Study, error) {
	if resolver == nil {
		return Study{}, fmt.Errorf("autotune: no workload registry installed (import critter/internal/workload)")
	}
	return resolver.ResolveStudy(name, s)
}

// ParseScale resolves a scale-preset name through the registered workload
// registry; the registry's error enumerates the declared preset names. A
// thin compatibility wrapper, like ParseStudy.
func ParseScale(name string) (Scale, error) {
	if resolver == nil {
		return Scale{}, fmt.Errorf("autotune: no workload registry installed (import critter/internal/workload)")
	}
	return resolver.ResolveScale(name)
}

// QuickScale is a miniature space for tests: 8 ranks, tiny matrices.
func QuickScale() Scale {
	return Scale{
		CapitalN: 32, CapitalC: 2, CapitalBB: 2,
		SlateCholN:  48,
		SlateCholNB: []int{6, 8, 12, 16, 24, 48, 6, 8, 12, 16},
		SlateCholPR: 4, SlateCholPC: 2,
		CandmcM: 128, CandmcN: 64, CandmcB0: 1,
		CandmcGrids: [3][2]int{{4, 2}, {8, 1}, {2, 4}},
		SlateQRM:    48, SlateQRN: 24, SlateQRIB0: 1,
		SlateQRNB:    []int{4, 6, 8, 12, 24, 4, 6},
		SlateQRGrids: [3][2]int{{4, 2}, {2, 4}, {8, 1}},
	}
}

// CapitalCholesky is the paper's first case study: 15 configurations,
// block size b = b0 * 2^(v%5) and base-case strategy ceil((v+1)/5)
// (paper: 16384^2 matrix, 512 cores, b = 128*2^(v%5)). Kernel models are
// kept across configurations (recurring kernel signatures), so eager
// propagation is evaluated, as in Figure 4a.
func CapitalCholesky(s Scale) Study {
	world := s.CapitalC * s.CapitalC * s.CapitalC
	b0 := s.CapitalN / 128
	if b0 < s.CapitalBB {
		b0 = s.CapitalBB
	}
	cfgOf := func(v int) capital.Config {
		return capital.Config{
			N:        s.CapitalN,
			B:        b0 << (v % 5),
			BB:       s.CapitalBB,
			Strategy: 1 + v/5,
			C:        s.CapitalC,
		}
	}
	bs := make([]int, 5)
	for j := range bs {
		bs[j] = b0 << j
	}
	return Study{
		Name:       "capital-cholesky",
		Space:      NewSpace(IntsDim("b", bs...), IntsDim("strat", 1, 2, 3)),
		NumConfigs: 15,
		WorldSize:  world,
		ResetStats: false,
		Policies: []critter.Policy{
			critter.Conditional, critter.Eager, critter.Local,
			critter.Online, critter.APriori,
		},
		Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
			cfg := cfgOf(v)
			if err := cfg.Validate(world); err != nil {
				panic(err)
			}
			g := grid.New3D(cc, s.CapitalC)
			ch := capital.New(p, g, cfg)
			ch.Run()
		},
		Describe: func(v int) string {
			cfg := cfgOf(v)
			return fmt.Sprintf("b=%d strat=%d", cfg.B, cfg.Strategy)
		},
	}
}

// SlateCholesky is the paper's second case study: 20 configurations,
// lookahead depth v%2 and tile size NB[v/2] (paper: 65536^2 matrix, 1024
// cores, tiles 256+64*floor(v/2)).
func SlateCholesky(s Scale) Study {
	world := s.SlateCholPR * s.SlateCholPC
	cfgOf := func(v int) slate.CholConfig {
		return slate.CholConfig{
			N:         s.SlateCholN,
			NB:        s.SlateCholNB[v/2],
			Lookahead: v % 2,
			PR:        s.SlateCholPR,
			PC:        s.SlateCholPC,
		}
	}
	return Study{
		Name:       "slate-cholesky",
		Space:      NewSpace(IntsDim("la", 0, 1), IntsDim("nb", s.SlateCholNB...)),
		NumConfigs: 2 * len(s.SlateCholNB),
		WorldSize:  world,
		ResetStats: true,
		Policies: []critter.Policy{
			critter.Conditional, critter.Local, critter.Online, critter.APriori,
		},
		Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
			cfg := cfgOf(v)
			if err := cfg.Validate(world); err != nil {
				panic(err)
			}
			g := grid.New2D(cc, cfg.PR, cfg.PC)
			a := slate.NewTileMatrix(g, cfg.N/cfg.NB, cfg.N/cfg.NB, cfg.NB)
			a.FillSymmetricPD()
			slate.Cholesky(p, a, cfg)
			a.Release()
		},
		Describe: func(v int) string {
			cfg := cfgOf(v)
			return fmt.Sprintf("nb=%d la=%d", cfg.NB, cfg.Lookahead)
		},
	}
}

// CandmcQR is the paper's third case study: 15 configurations, block size
// b = b0 * 2^(v%5) and grid shapes by v/5 (paper: 131072x8192 matrix, 4096
// cores, b = 8*2^(v%5), grids 64*2^j x 64/2^j).
func CandmcQR(s Scale) Study {
	world := s.CandmcGrids[0][0] * s.CandmcGrids[0][1]
	cfgOf := func(v int) candmc.Config {
		g := s.CandmcGrids[v/5]
		return candmc.Config{
			M: s.CandmcM, N: s.CandmcN,
			B:  s.CandmcB0 << (v % 5),
			PR: g[0], PC: g[1],
			Panel: candmc.PanelTSQR,
		}
	}
	bs := make([]int, 5)
	for j := range bs {
		bs[j] = s.CandmcB0 << j
	}
	return Study{
		Name:       "candmc-qr",
		Space:      NewSpace(IntsDim("b", bs...), GridsDim("grid", s.CandmcGrids[:]...)),
		NumConfigs: 15,
		WorldSize:  world,
		ResetStats: true,
		Policies: []critter.Policy{
			critter.Conditional, critter.Local, critter.Online, critter.APriori,
		},
		Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
			cfg := cfgOf(v)
			if err := cfg.Validate(world); err != nil {
				panic(err)
			}
			g := grid.New2D(cc, cfg.PR, cfg.PC)
			a := candmc.NewMatrix(g, cfg)
			a.FillGeneral(7)
			candmc.QR(p, a, cfg)
		},
		Describe: func(v int) string {
			cfg := cfgOf(v)
			return fmt.Sprintf("b=%d grid=%dx%d", cfg.B, cfg.PR, cfg.PC)
		},
	}
}

// SlateQR is the paper's fourth case study: 63 configurations, inner block
// ib = ib0 * 2^(v%3), tile size NB[(v/3)%7], grid shapes by v/21 (paper:
// 65536x4096 matrix, 256 cores, w = 8*2^(v%3), panel 256+64*(floor(v/3)%7),
// grids 64/2^j x 4*2^j).
func SlateQR(s Scale) Study {
	world := s.SlateQRGrids[0][0] * s.SlateQRGrids[0][1]
	cfgOf := func(v int) slate.QRConfig {
		g := s.SlateQRGrids[v/21]
		return slate.QRConfig{
			M: s.SlateQRM, N: s.SlateQRN,
			NB: s.SlateQRNB[(v/3)%7],
			IB: s.SlateQRIB0 << (v % 3),
			PR: g[0], PC: g[1],
		}
	}
	ibs := make([]int, 3)
	for j := range ibs {
		ibs[j] = s.SlateQRIB0 << j
	}
	return Study{
		Name: "slate-qr",
		Space: NewSpace(IntsDim("ib", ibs...), IntsDim("nb", s.SlateQRNB...),
			GridsDim("grid", s.SlateQRGrids[:]...)),
		NumConfigs: 63,
		WorldSize:  world,
		ResetStats: true,
		Policies: []critter.Policy{
			critter.Conditional, critter.Local, critter.Online, critter.APriori,
		},
		Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
			cfg := cfgOf(v)
			if err := cfg.Validate(world); err != nil {
				panic(err)
			}
			g := grid.New2D(cc, cfg.PR, cfg.PC)
			a := slate.NewTileMatrix(g, cfg.M/cfg.NB, cfg.N/cfg.NB, cfg.NB)
			a.FillGeneral(3)
			slate.QR(p, a, cfg)
			a.Release()
		},
		Describe: func(v int) string {
			cfg := cfgOf(v)
			return fmt.Sprintf("ib=%d nb=%d grid=%dx%d", cfg.IB, cfg.NB, cfg.PR, cfg.PC)
		},
	}
}
