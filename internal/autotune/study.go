// Package autotune implements the paper's evaluation harness: search over a
// library's configuration space, executed either fully (the reference) or
// selectively under one of Critter's policies at a confidence tolerance
// epsilon, with the measurement protocol of Section VI-A — a full execution
// directly prior to each approximated one, prediction error relative to
// that full execution, and tuning cost as the total (virtual) time of the
// selective executions.
//
// The central type is the Tuner (tuner.go), which composes a Study (a
// configuration Space plus an SPMD runner), a search Strategy (Exhaustive —
// the paper's protocol — RandomSample, or SuccessiveHalving), and a
// context-aware concurrent executor. The evaluation grid is embarrassingly
// parallel: each (policy, eps) sweep runs in its own simulated world seeded
// identically, so the Tuner dispatches sweeps to a bounded worker pool (see
// executor.go) and produces results that are bit-identical at any worker
// count. Experiment and ExperimentSuite are compatibility wrappers over the
// Tuner, preserved from the exhaustive-only API.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/sim"
)

// Study is one library's tuning problem: a configuration space and an SPMD
// runner executing one configuration under a profiler.
type Study struct {
	// Name identifies the study (e.g. "capital-cholesky").
	Name string
	// Space declares the configuration space as named dimensions, letting
	// strategies decode indices and move along axes. When empty, the
	// legacy NumConfigs/Describe pair below defines the space.
	Space Space
	// NumConfigs is the size of the search space. Legacy: superseded by
	// Space; consulted only when Space is empty.
	NumConfigs int
	// WorldSize is the rank count the study's grids require.
	WorldSize int
	// ResetStats requests discarding kernel models between configurations,
	// as the paper does for SLATE's and CANDMC's algorithms (whose kernels
	// change with the configuration's tile/block sizes); CAPITAL keeps its
	// models, which eager propagation exploits across configurations.
	ResetStats bool
	// Run executes configuration v on the calling rank.
	Run func(p *critter.Profiler, cc *critter.Comm, v int)
	// Describe labels configuration v for reports. Legacy: when nil, the
	// Space's "name=value" join is used instead.
	Describe func(v int) string
	// Policies lists the selective-execution policies the paper evaluates
	// for this study (eager only for the bulk-synchronous CAPITAL).
	Policies []critter.Policy
}

// space resolves the study's configuration space, wrapping the legacy
// NumConfigs count when no dimensions are declared.
func (s Study) space() Space {
	if s.Space.Size() > 0 {
		return s.Space
	}
	return legacySpace(s.NumConfigs)
}

// Size returns the number of configurations in the study's space.
func (s Study) Size() int {
	if n := s.Space.Size(); n > 0 {
		return n
	}
	return s.NumConfigs
}

// Label renders configuration v for reports: the study's own Describe
// formatter when set, else the space's "name=value" join.
func (s Study) Label(v int) string {
	if s.Describe != nil {
		return s.Describe(v)
	}
	return s.space().Describe(v)
}

// ConfigResult captures one configuration's reference and selective runs.
type ConfigResult struct {
	Config    int
	Eps       float64 // tolerance this evaluation ran at (rung strategies loosen early rounds)
	Full      critter.Report
	Selective critter.Report
	ExecErr   float64 // |predicted - full| / full execution time
	CompErr   float64 // same for critical-path computation time
}

// SweepResult aggregates one (policy, epsilon) pass over the configurations
// the sweep's strategy evaluated (the whole space under Exhaustive).
type SweepResult struct {
	Policy  critter.Policy `json:"Policy"`
	Eps     float64        `json:"Eps"`
	Configs []ConfigResult `json:"Configs"`

	TuneWall       float64 `json:"TuneWall"`       // total selective-execution virtual time (the tuning cost)
	FullWall       float64 `json:"FullWall"`       // total full-execution virtual time over the evaluated configs (the red line)
	KernelTime     float64 `json:"KernelTime"`     // sum over configs of max-rank executed-kernel time
	CompKernelTime float64 `json:"CompKernelTime"` // same, computation kernels only
	// MeanLogExecErr/MeanLogCompErr are the log2 geometric-mean prediction
	// errors over every evaluation performed; under a rung strategy that
	// includes the loosened-tolerance rungs, not just target-eps runs.
	MeanLogExecErr float64 `json:"MeanLogExecErr"`
	MeanLogCompErr float64 `json:"MeanLogCompErr"`
	Selected       int     `json:"Selected"` // argmin of predicted times (Critter's choice); rung strategies compare each config's last evaluation
	Optimal        int     `json:"Optimal"`  // argmin of full execution times among evaluated configs
	Executed       int64   `json:"Executed"`
	Skipped        int64   `json:"Skipped"`

	// KernelsMemoized counts the skips whose predictability decision was
	// replayed from the worker's cross-config memoization layer
	// (critter.KernelMemo) instead of re-derived. Excluded from JSON:
	// memoization is observational and its hit counts depend on sweep
	// scheduling, so envelopes stay byte-identical with or without it.
	// Surfaced operationally as the kernels_memoized_total metric.
	KernelsMemoized int64 `json:"-"`

	// Profile is what the sweep's selective executions learned, merged
	// across every configuration and rank: kernel models, fitted family
	// extrapolators, and critical-path frequencies. Feed it back through
	// Tuner.Prior (or WarmStart) to warm-start a later run. Excluded from
	// JSON — the Envelope carries per-sweep summaries instead; persist the
	// full artifact with Profile.Encode (critter-tune -profile-out).
	Profile *critter.Profile `json:"-"`
}

// Experiment drives exhaustive sweeps of one study over policies and
// tolerances. It is a compatibility wrapper over Tuner with the Exhaustive
// strategy and no cancellation; new code should use Tuner directly.
type Experiment struct {
	Study    Study
	EpsList  []float64
	Machine  sim.Machine
	Seed     uint64
	Policies []critter.Policy // overrides Study.Policies when non-nil

	// Workers bounds how many sweeps are simulated concurrently. Zero (or
	// negative) means runtime.GOMAXPROCS(0); 1 recovers the sequential
	// path. Every worker count yields bit-identical results, because each
	// sweep runs in its own world seeded with Seed.
	Workers int
	// Progress, when non-nil, is invoked after each sweep completes.
	// Invocations are serialized; the callback must not call back into
	// the experiment.
	Progress func(Progress)
}

// Result holds every sweep of a tuning run, indexed [policy][eps].
type Result struct {
	Study    string
	Strategy string
	Policies []critter.Policy
	EpsList  []float64
	Sweeps   [][]SweepResult
}

// Tuner converts the experiment to the equivalent exhaustive Tuner.
func (e Experiment) Tuner() Tuner {
	return Tuner{
		Study:    e.Study,
		EpsList:  e.EpsList,
		Machine:  e.Machine,
		Seed:     e.Seed,
		Policies: e.Policies,
		Strategy: Exhaustive{},
		Workers:  e.Workers,
		Progress: e.Progress,
	}
}

// Run executes every (policy, eps) sweep of the experiment through the
// Tuner. The result grid is always returned — cells of failed sweeps are
// zeroed — alongside the joined per-sweep errors (nil when every sweep
// succeeded), matching ExperimentSuite's partial-result semantics.
func (e Experiment) Run() (*Result, error) {
	return e.Tuner().Run(context.Background())
}

// FullOnly runs every configuration once with full execution, returning the
// per-configuration reports (the data of Figure 3: BSP cost trade-offs and
// execution-time breakdowns). It parallelizes across configurations on the
// default worker pool; see FullOnlyCtx for bounded pools and cancellation.
func FullOnly(study Study, machine sim.Machine, seed uint64) ([]critter.Report, error) {
	return FullOnlyCtx(context.Background(), study, machine, seed, 0)
}

// FullOnlyCtx is FullOnly with caller-controlled cancellation and pool
// size (workers; 0 or negative means runtime.GOMAXPROCS(0)). Each
// configuration runs in its own world seeded with seed, so results are
// bit-identical at any worker count. The report slice is always returned
// with failed or skipped configurations zeroed, alongside the joined
// errors.
func FullOnlyCtx(ctx context.Context, study Study, machine sim.Machine, seed uint64, workers int) ([]critter.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := study.Size()
	reports := make([]critter.Report, n)
	errs := make([]error, n)
	var scratches sync.Map // worker -> *scratch
	forEachBounded(n, workers, func(v, worker int) {
		sc, ok := scratches.Load(worker)
		if !ok {
			sc, _ = scratches.LoadOrStore(worker, newScratch())
		}
		errs[v] = fullOnlyConfig(ctx, study, machine, seed, v, sc.(*scratch), &reports[v])
	})
	return reports, errors.Join(errs...)
}

// fullOnlyConfig runs one configuration with full execution in its own
// world — wired to the worker's arena — storing rank 0's report.
func fullOnlyConfig(ctx context.Context, study Study, machine sim.Machine, seed uint64, v int, sc *scratch, out *critter.Report) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("autotune: %s: config %d: %w", study.Name, v, err)
	}
	w := sc.world(study.WorldSize, machine, seed)
	err := w.Run(func(c *mpi.Comm) {
		p, cc := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: 0})
		p.StartConfig(true)
		study.Run(p, cc, v)
		rep := p.Report()
		if c.Rank() == 0 {
			*out = rep
		}
	})
	if err != nil {
		*out = critter.Report{}
		return fmt.Errorf("autotune: %s: config %d: %w", study.Name, v, err)
	}
	return nil
}

// EpsList is the tolerance sweep eps = 2^0 .. 2^-(n-1).
func EpsList(n int) []float64 {
	out := make([]float64, n)
	e := 1.0
	for i := range out {
		out[i] = e
		e /= 2
	}
	return out
}

// DefaultEpsList is the paper's tolerance sweep: eps = 2^0 .. 2^-10.
func DefaultEpsList() []float64 { return EpsList(11) }
