// Package autotune implements the paper's evaluation harness: exhaustive
// search over a library's configuration space, executed either fully (the
// reference) or selectively under one of Critter's policies at a confidence
// tolerance epsilon, with the measurement protocol of Section VI-A — a full
// execution directly prior to each approximated one, prediction error
// relative to that full execution, and tuning cost as the total (virtual)
// time of the selective executions.
//
// The evaluation grid is embarrassingly parallel: each (policy, eps) sweep
// runs in its own simulated world seeded identically, so Experiment and
// ExperimentSuite dispatch sweeps to a bounded worker pool (see executor.go)
// and produce results that are bit-identical at any worker count.
package autotune

import (
	"errors"
	"fmt"

	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/sim"
	"critter/internal/stats"
)

// Study is one library's tuning problem: a configuration space and an SPMD
// runner executing one configuration under a profiler.
type Study struct {
	// Name identifies the study (e.g. "capital-cholesky").
	Name string
	// NumConfigs is the size of the exhaustive search space.
	NumConfigs int
	// WorldSize is the rank count the study's grids require.
	WorldSize int
	// ResetStats requests discarding kernel models between configurations,
	// as the paper does for SLATE's and CANDMC's algorithms (whose kernels
	// change with the configuration's tile/block sizes); CAPITAL keeps its
	// models, which eager propagation exploits across configurations.
	ResetStats bool
	// Run executes configuration v on the calling rank.
	Run func(p *critter.Profiler, cc *critter.Comm, v int)
	// Describe labels configuration v (for reports).
	Describe func(v int) string
	// Policies lists the selective-execution policies the paper evaluates
	// for this study (eager only for the bulk-synchronous CAPITAL).
	Policies []critter.Policy
}

// ConfigResult captures one configuration's reference and selective runs.
type ConfigResult struct {
	Config    int
	Full      critter.Report
	Selective critter.Report
	ExecErr   float64 // |predicted - full| / full execution time
	CompErr   float64 // same for critical-path computation time
}

// SweepResult aggregates one (policy, epsilon) pass over the whole space.
type SweepResult struct {
	Policy  critter.Policy
	Eps     float64
	Configs []ConfigResult

	TuneWall       float64 // total selective-execution virtual time (the tuning cost)
	FullWall       float64 // total full-execution virtual time (the red line)
	KernelTime     float64 // sum over configs of max-rank executed-kernel time
	CompKernelTime float64 // same, computation kernels only
	MeanLogExecErr float64 // log2 geometric-mean prediction error
	MeanLogCompErr float64
	Selected       int // argmin of predicted times (Critter's choice)
	Optimal        int // argmin of full execution times
	Executed       int64
	Skipped        int64
}

// Experiment drives sweeps of one study over policies and tolerances.
type Experiment struct {
	Study    Study
	EpsList  []float64
	Machine  sim.Machine
	Seed     uint64
	Policies []critter.Policy // overrides Study.Policies when non-nil

	// Workers bounds how many sweeps are simulated concurrently. Zero (or
	// negative) means runtime.GOMAXPROCS(0); 1 recovers the sequential
	// path. Every worker count yields bit-identical results, because each
	// sweep runs in its own world seeded with Seed.
	Workers int
	// Progress, when non-nil, is invoked after each sweep completes.
	// Invocations are serialized; the callback must not call back into
	// the experiment.
	Progress func(Progress)
}

// Result holds every sweep of an experiment, indexed [policy][eps].
type Result struct {
	Study    string
	Policies []critter.Policy
	EpsList  []float64
	Sweeps   [][]SweepResult
}

// policies resolves the experiment's policy list: the explicit override,
// else the study's own list, else (when the resolved list is empty) the
// paper's four-policy default.
func (e Experiment) policies() []critter.Policy {
	policies := e.Policies
	if policies == nil {
		policies = e.Study.Policies
	}
	if len(policies) == 0 {
		policies = []critter.Policy{critter.Conditional, critter.Local, critter.Online, critter.APriori}
	}
	return policies
}

// build preallocates the result grid and one sweep job per (policy, eps)
// cell, each pointing at its result slot so workers never contend.
func (e Experiment) build(sink *progressSink) (*Result, []sweepJob) {
	policies := e.policies()
	res := &Result{
		Study:    e.Study.Name,
		Policies: policies,
		EpsList:  e.EpsList,
		Sweeps:   make([][]SweepResult, len(policies)),
	}
	jobs := make([]sweepJob, 0, len(policies)*len(e.EpsList))
	for pi, pol := range policies {
		res.Sweeps[pi] = make([]SweepResult, len(e.EpsList))
		for ei, eps := range e.EpsList {
			jobs = append(jobs, sweepJob{
				study:   e.Study,
				pol:     pol,
				eps:     eps,
				machine: e.Machine,
				seed:    e.Seed,
				out:     &res.Sweeps[pi][ei],
				sink:    sink,
			})
		}
	}
	sink.grow(len(jobs))
	return res, jobs
}

// Run executes every (policy, eps) sweep of the experiment, each in a fresh
// world seeded with Seed, dispatching them to a pool of Workers goroutines.
// Result ordering is fixed by the policy and tolerance lists, not completion
// order, and the values are identical to a sequential (Workers: 1) run.
func (e Experiment) Run() (*Result, error) {
	sink := &progressSink{fn: e.Progress}
	res, jobs := e.build(sink)
	if err := errors.Join(runJobs(jobs, e.Workers)...); err != nil {
		return nil, err
	}
	return res, nil
}

// runSweep performs one (policy, eps) exhaustive pass: per configuration, a
// full reference execution followed by the approximated one (Section VI-A).
// Collective; the returned value is meaningful on every rank.
func runSweep(c *mpi.Comm, study Study, pol critter.Policy, eps float64) SweepResult {
	ref, refComm := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: 0})
	tuned, tunedComm := critter.New(c, critter.Options{Policy: pol, Eps: eps})
	sr := SweepResult{Policy: pol, Eps: eps}
	var execErrs, compErrs []float64
	bestPred, bestFull := -1.0, -1.0
	for v := 0; v < study.NumConfigs; v++ {
		// Full execution directly prior to the approximated one.
		ref.StartConfig(true)
		study.Run(ref, refComm, v)
		full := ref.Report()

		var sel critter.Report
		if pol == critter.APriori && eps > 0 {
			// Offline iteration: full execution under online propagation
			// to obtain critical-path execution counts (and samples).
			tuned.StartConfig(study.ResetStats)
			tuned.SetPolicy(critter.Online)
			tuned.SetEps(0)
			study.Run(tuned, tunedComm, v)
			offline := tuned.Report()
			freqs := tuned.GlobalPathFreqs()
			sr.TuneWall += offline.Wall
			sr.KernelTime += offline.KernelTime
			sr.CompKernelTime += offline.CompKernel
			tuned.SetAprioriFreq(freqs)
			tuned.SetPolicy(critter.APriori)
			tuned.SetEps(eps)
			tuned.StartConfig(false) // keep the offline pass's samples
			study.Run(tuned, tunedComm, v)
			sel = tuned.Report()
		} else {
			tuned.StartConfig(study.ResetStats)
			study.Run(tuned, tunedComm, v)
			sel = tuned.Report()
		}

		cr := ConfigResult{
			Config:    v,
			Full:      full,
			Selective: sel,
			ExecErr:   stats.RelErr(sel.Predicted, full.Wall),
			CompErr:   stats.RelErr(sel.PredictedComp, full.PredictedComp),
		}
		sr.Configs = append(sr.Configs, cr)
		sr.TuneWall += sel.Wall
		sr.FullWall += full.Wall
		sr.KernelTime += sel.KernelTime
		sr.CompKernelTime += sel.CompKernel
		sr.Executed += sel.Executed
		sr.Skipped += sel.Skipped
		execErrs = append(execErrs, cr.ExecErr)
		compErrs = append(compErrs, cr.CompErr)
		if bestPred < 0 || sel.Predicted < bestPred {
			bestPred = sel.Predicted
			sr.Selected = v
		}
		if bestFull < 0 || full.Wall < bestFull {
			bestFull = full.Wall
			sr.Optimal = v
		}
	}
	sr.MeanLogExecErr = stats.MeanLogErr(execErrs)
	sr.MeanLogCompErr = stats.MeanLogErr(compErrs)
	return sr
}

// FullOnly runs every configuration once with full execution, returning the
// per-configuration reports (the data of Figure 3: BSP cost trade-offs and
// execution-time breakdowns).
func FullOnly(study Study, machine sim.Machine, seed uint64) ([]critter.Report, error) {
	reports := make([]critter.Report, study.NumConfigs)
	w := mpi.NewWorld(study.WorldSize, machine, seed)
	err := w.Run(func(c *mpi.Comm) {
		p, cc := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: 0})
		for v := 0; v < study.NumConfigs; v++ {
			p.StartConfig(true)
			study.Run(p, cc, v)
			rep := p.Report()
			if c.Rank() == 0 {
				reports[v] = rep
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("autotune: %s: %w", study.Name, err)
	}
	return reports, nil
}

// EpsList is the tolerance sweep eps = 2^0 .. 2^-(n-1).
func EpsList(n int) []float64 {
	out := make([]float64, n)
	e := 1.0
	for i := range out {
		out[i] = e
		e /= 2
	}
	return out
}

// DefaultEpsList is the paper's tolerance sweep: eps = 2^0 .. 2^-10.
func DefaultEpsList() []float64 { return EpsList(11) }
