package autotune

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"critter/internal/critter"
)

// schemaV2Envelope is a literal critter-tune output from the schema-2 era:
// no prior, no profiles — those fields did not exist yet.
const schemaV2Envelope = `{
  "schemaVersion": 2,
  "study": "candmc-qr",
  "scale": "quick",
  "seed": 42,
  "noiseSigma": 0.05,
  "strategy": "exhaustive",
  "result": {
    "Study": "candmc-qr",
    "Strategy": "exhaustive",
    "Policies": ["online"],
    "EpsList": [0.125],
    "Sweeps": [[{
      "Policy": "online",
      "Eps": 0.125,
      "Configs": null,
      "TuneWall": 1.5,
      "FullWall": 3,
      "KernelTime": 0.5,
      "CompKernelTime": 0.25,
      "MeanLogExecErr": -3,
      "MeanLogCompErr": -4,
      "Selected": 2,
      "Optimal": 2,
      "Executed": 100,
      "Skipped": 900
    }]]
  }
}`

// TestDecodeEnvelopeV2BackCompat: a schema-2 envelope (no profile fields)
// must decode cleanly and survive a round trip — the profile-era fields
// stay absent, everything else is preserved.
func TestDecodeEnvelopeV2BackCompat(t *testing.T) {
	env, err := DecodeEnvelope([]byte(schemaV2Envelope))
	if err != nil {
		t.Fatalf("DecodeEnvelope(v2): %v", err)
	}
	if env.SchemaVersion != 2 || env.Study != "candmc-qr" || env.Scale != "quick" ||
		env.Seed != 42 || env.NoiseSigma != 0.05 || env.Strategy != "exhaustive" {
		t.Errorf("v2 header fields lost: %+v", env)
	}
	if env.Prior != nil || env.Profiles != nil {
		t.Errorf("v2 envelope grew profile fields: prior=%v profiles=%v", env.Prior, env.Profiles)
	}
	if env.Result == nil || len(env.Result.Sweeps) != 1 || len(env.Result.Sweeps[0]) != 1 {
		t.Fatalf("v2 result grid lost: %+v", env.Result)
	}
	sw := env.Result.Sweeps[0][0]
	if sw.Policy != critter.Online || sw.Eps != 0.125 || sw.Executed != 100 || sw.Skipped != 900 {
		t.Errorf("v2 sweep fields lost: %+v", sw)
	}

	// Round trip: marshal the decoded value and decode it again; the two
	// decoded envelopes must be identical (the marshal leaves no residue
	// of the missing schema-3 fields).
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "profiles") || strings.Contains(string(out), "prior") {
		t.Errorf("re-encoded v2 envelope grew profile fields: %s", out)
	}
	back, err := DecodeEnvelope(out)
	if err != nil {
		t.Fatalf("DecodeEnvelope(round trip): %v", err)
	}
	if !reflect.DeepEqual(env, back) {
		t.Errorf("v2 envelope did not round-trip:\nfirst:  %+v\nsecond: %+v", env, back)
	}
}

// TestDecodeEnvelopeVersionGate: future versions and pre-envelope layouts
// are rejected with errors that say what happened.
func TestDecodeEnvelopeVersionGate(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"future", `{"schemaVersion": 99}`, "unknown future schemaVersion 99"},
		{"next", `{"schemaVersion": 4}`, "unknown future schemaVersion 4"},
		{"v1-bare-grid", `{"schemaVersion": 1}`, "predates the envelope format"},
		{"zero", `{"schemaVersion": 0}`, "predates the envelope format"},
		{"missing", `{"study": "candmc-qr"}`, "missing schemaVersion"},
		{"not-json", `]`, "decode envelope"},
		{"wrong-type", `{"schemaVersion": "three"}`, "decode envelope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeEnvelope([]byte(tc.in))
			if err == nil {
				t.Fatalf("DecodeEnvelope(%s) succeeded", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeEnvelopeCurrent: the current schema version decodes, profile
// summaries included.
func TestDecodeEnvelopeCurrent(t *testing.T) {
	env := Envelope{
		SchemaVersion: ResultSchemaVersion,
		Study:         "slate-cholesky",
		Scale:         "quick",
		Seed:          7,
		NoiseSigma:    0.05,
		Strategy:      "halving",
		Profiles:      []ProfileSummary{{Policy: "online", Eps: 0.125, Kernels: 3, Samples: 12}},
		Result:        &Result{Study: "slate-cholesky", Strategy: "halving"},
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatalf("DecodeEnvelope(current): %v", err)
	}
	if !reflect.DeepEqual(&env, back) {
		t.Errorf("current envelope did not round-trip:\nin:  %+v\nout: %+v", env, back)
	}
}
