package autotune

import (
	"reflect"
	"strings"
	"testing"
)

func TestSpaceEncodeDecodeRoundTrip(t *testing.T) {
	sp := NewSpace(IntsDim("ib", 1, 2, 4), IntsDim("nb", 4, 6, 8, 12, 24, 4, 6),
		GridsDim("grid", [2]int{4, 2}, [2]int{2, 4}, [2]int{8, 1}))
	if sp.Size() != 63 {
		t.Fatalf("size = %d, want 63", sp.Size())
	}
	for v := 0; v < sp.Size(); v++ {
		coords := sp.Decode(v)
		if got := sp.Encode(coords); got != v {
			t.Fatalf("Encode(Decode(%d)) = %d", v, got)
		}
		for i, d := range sp.Dims {
			if coords[i] < 0 || coords[i] >= d.Size() {
				t.Fatalf("config %d: coord %d out of range for %s", v, coords[i], d.Name)
			}
		}
	}
	// Dims[0] varies fastest: the first dimension's coordinate is v % 3.
	if c := sp.Decode(5); c[0] != 2 || c[1] != 1 || c[2] != 0 {
		t.Errorf("Decode(5) = %v, want [2 1 0]", c)
	}
}

func TestSpaceDescribeAndValue(t *testing.T) {
	sp := NewSpace(IntsDim("b", 2, 4, 8), GridsDim("grid", [2]int{8, 8}, [2]int{16, 4}))
	if got := sp.Describe(4); got != "b=4 grid=16x4" {
		t.Errorf("Describe(4) = %q", got)
	}
	if got := sp.Value(4, "grid"); got != "16x4" {
		t.Errorf("Value(4, grid) = %q", got)
	}
	if got := sp.Value(4, "nope"); got != "" {
		t.Errorf("Value of unknown dim = %q, want empty", got)
	}
	if sp.Axis("b") != 0 || sp.Axis("grid") != 1 || sp.Axis("x") != -1 {
		t.Error("Axis lookup broken")
	}
}

// TestBuiltinSpacesMatchLegacyEncoding pins the ported Space declarations
// to the paper's flat config numbering: every study's Space size equals its
// legacy NumConfigs, and the decoded dimension values match the parameters
// the legacy Describe strings report.
func TestBuiltinSpacesMatchLegacyEncoding(t *testing.T) {
	for _, s := range []Scale{DefaultScale(), QuickScale()} {
		for _, st := range []Study{CapitalCholesky(s), SlateCholesky(s), CandmcQR(s), SlateQR(s)} {
			if st.Space.Size() != st.NumConfigs {
				t.Errorf("%s: Space size %d != NumConfigs %d", st.Name, st.Space.Size(), st.NumConfigs)
			}
			for v := 0; v < st.Size(); v++ {
				desc := st.Label(v)
				for _, d := range st.Space.Dims {
					val := st.Space.Value(v, d.Name)
					if !containsParam(desc, d.Name, val) {
						t.Fatalf("%s config %d: legacy label %q disagrees with space %s=%s",
							st.Name, v, desc, d.Name, val)
					}
				}
			}
		}
	}
}

// containsParam reports whether the legacy "name=value" label includes the
// given pair as a whole token.
func containsParam(desc, name, val string) bool {
	token := name + "=" + val
	for _, part := range strings.Fields(desc) {
		if part == token {
			return true
		}
	}
	return false
}

func TestLegacySpaceFallback(t *testing.T) {
	st := Study{Name: "legacy", NumConfigs: 5}
	if st.Size() != 5 {
		t.Fatalf("Size = %d, want 5", st.Size())
	}
	if got := st.Label(3); got != "config=3" {
		t.Errorf("legacy label = %q", got)
	}
	st.Describe = func(v int) string { return "custom" }
	if got := st.Label(3); got != "custom" {
		t.Errorf("Describe override ignored: %q", got)
	}
	// The wrapped space still supports strategies.
	plan := Exhaustive{}.Plan(st.space(), 0.5)
	round, ok := plan.Next(nil)
	if !ok || !reflect.DeepEqual(round.Configs, []int{0, 1, 2, 3, 4}) {
		t.Errorf("exhaustive plan over legacy space = %v", round.Configs)
	}
}
