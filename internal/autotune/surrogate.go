package autotune

// Model-guided search: the Surrogate strategy fits a deterministic
// ridge-regression surrogate (internal/surrogate) on the Estimator's
// predicted times — cheap, low-fidelity observations the sweep produces
// anyway — and proposes the next round of configurations by expected
// improvement. This is the repo's rung past exhaustive/random/halving, in
// the spirit of the Bayesian autotuners of the related literature, and the
// first strategy to exploit the ProfileAware hook: the live merged profile
// tunes the acquisition's exploration margin to the observed kernel noise.

import (
	"fmt"
	"math"
	"slices"

	"critter/internal/critter"
	"critter/internal/sim"
	"critter/internal/surrogate"
)

// Surrogate evaluates up to N configurations chosen by a regression
// surrogate with expected-improvement acquisition: a seeded initial design,
// then Batch proposals per round, each round refitting the model on every
// prediction observed so far. N >= the space size degenerates to an
// exhaustive sweep in model-guided order.
//
// All evaluations run at the sweep's target tolerance — the surrogate's
// cheap fidelity is the Estimator's predicted time, not a loosened
// tolerance — so the observations it learns from are exactly the
// Selective.Predicted values the sweep reports.
type Surrogate struct {
	// N is the total evaluation budget (clamped to the space size).
	N int
	// Seed seeds the initial design's sampling stream.
	Seed uint64
	// Batch is the number of configurations proposed per model round; 0
	// means 1 (pure sequential expected improvement).
	Batch int
}

// Name implements Strategy.
func (s Surrogate) Name() string {
	if s.Batch > 0 {
		return fmt.Sprintf("surrogate:%d:%d", s.N, s.Batch)
	}
	return fmt.Sprintf("surrogate:%d", s.N)
}

// Plan implements Strategy. The plan depends only on (Seed, space, eps) and
// the collective ConfigResults and profiles it observes, all identical on
// every rank, so ranks stay in agreement round by round.
func (s Surrogate) Plan(sp Space, eps float64) Plan {
	size := sp.Size()
	n := s.N
	if n <= 0 || n > size {
		n = size
	}
	batch := s.Batch
	if batch <= 0 {
		batch = 1
	}
	if batch > n {
		batch = n
	}
	// The initial design: a seeded sample large enough to anchor the first
	// fit (one point per dimension plus intercept headroom), at least one
	// batch, never more than the budget.
	init := len(sp.Dims) + 2
	if init < batch {
		init = batch
	}
	if init > n {
		init = n
	}
	perm := make([]int, size)
	for i := range perm {
		perm[i] = i
	}
	rng := sim.NewRNG(sim.Mix(s.Seed, uint64(size), 0x7375727267)) // "surrg"
	for i := 0; i < init; i++ {
		j := i + rng.Intn(size-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	first := append([]int(nil), perm[:init]...)
	slices.Sort(first)
	sizes := make([]int, len(sp.Dims))
	for i, d := range sp.Dims {
		sizes[i] = d.Size()
	}
	p := &surrogatePlan{
		sp:    sp,
		eps:   eps,
		n:     n,
		batch: batch,
		first: first,
		model: surrogate.New(sizes, 0),
		seen:  make([]bool, size),
		xi:    defaultXi,
	}
	for _, v := range first {
		p.seen[v] = true
	}
	p.proposed = len(first)
	return p
}

// defaultXi is the exploration margin (in log-time units) used until the
// live profile supplies a measured noise level.
const defaultXi = 0.01

// surrogatePlan is the per-sweep state of Surrogate. Every rank of a sweep
// drives its own identical copy; all of its decisions are pure functions of
// collective inputs.
type surrogatePlan struct {
	sp       Space
	eps      float64
	n        int
	batch    int
	first    []int
	started  bool
	proposed int
	seen     []bool
	model    *surrogate.Model
	obs      []surrogate.Obs
	// xi is the expected-improvement exploration margin in log-time units.
	// ObserveProfile re-derives it each round from the live merged
	// profile's kernel-level noise, so a noisy machine widens the margin
	// (more exploration) and a quiet one narrows it.
	xi float64
}

// Next implements Plan.
func (p *surrogatePlan) Next(prev []ConfigResult) (Round, bool) {
	// Absorb the previous round's predictions as observations, in
	// evaluation order (identical on every rank).
	for _, cr := range prev {
		y := cr.Selective.Predicted
		if y <= 0 {
			// Degenerate prediction (failed or zero-cost config): observe
			// a floor instead of -Inf so one bad cell cannot poison the
			// fit.
			y = math.SmallestNonzeroFloat64
		}
		p.obs = append(p.obs, surrogate.Obs{Coords: p.sp.Decode(cr.Config), Y: math.Log(y)})
	}
	if !p.started {
		p.started = true
		return Round{Configs: p.first, Eps: p.eps}, true
	}
	k := p.n - p.proposed
	if k <= 0 {
		return Round{}, false
	}
	if k > p.batch {
		k = p.batch
	}
	next := p.propose(k)
	if len(next) == 0 {
		return Round{}, false
	}
	p.proposed += len(next)
	return Round{Configs: next, Eps: p.eps}, true
}

// propose fits the surrogate on everything observed so far and returns the
// k unevaluated configurations with the highest expected improvement,
// ties broken by lower predicted mean then lower configuration index, in
// ascending index order for a stable evaluation order.
func (p *surrogatePlan) propose(k int) []int {
	best := math.Inf(1)
	for _, o := range p.obs {
		if o.Y < best {
			best = o.Y
		}
	}
	fitted := p.model.Fit(p.obs) == nil && p.model.Fitted()
	type cand struct {
		v    int
		ei   float64
		mean float64
	}
	cands := make([]cand, 0, p.sp.Size())
	for v := 0; v < p.sp.Size(); v++ {
		if p.seen[v] {
			continue
		}
		c := cand{v: v}
		if fitted {
			mean, std := p.model.Predict(p.sp.Decode(v))
			c.mean = mean
			c.ei = surrogate.ExpectedImprovement(mean, std, best, p.xi)
		}
		cands = append(cands, c)
	}
	slices.SortFunc(cands, func(a, b cand) int {
		switch {
		case a.ei > b.ei:
			return -1
		case a.ei < b.ei:
			return 1
		case a.mean < b.mean:
			return -1
		case a.mean > b.mean:
			return 1
		default:
			return a.v - b.v
		}
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].v
		p.seen[cands[i].v] = true
	}
	slices.Sort(out)
	return out
}

// ObserveProfile implements ProfileAware: the live merged profile's
// kernel-level noise (median coefficient of variation across kernel
// models) becomes the acquisition's exploration margin. Log-time responses
// make the CV directly comparable to the margin's units. Deterministic:
// the per-kernel CVs are collected and sorted before the median, so map
// iteration order never leaks into the decision.
func (p *surrogatePlan) ObserveProfile(prof *critter.Profile) {
	if prof == nil {
		return
	}
	cvs := make([]float64, 0, len(prof.Kernels))
	for _, km := range prof.Kernels {
		if km.Count < 2 || km.Mean <= 0 {
			continue
		}
		cv := math.Sqrt(km.M2/float64(km.Count)) / km.Mean
		if !math.IsNaN(cv) && !math.IsInf(cv, 0) {
			cvs = append(cvs, cv)
		}
	}
	if len(cvs) == 0 {
		return
	}
	slices.Sort(cvs)
	xi := cvs[len(cvs)/2]
	p.xi = min(max(xi, 0.001), 0.25)
}
