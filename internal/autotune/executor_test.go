package autotune

import (
	"reflect"
	"strings"
	"testing"

	"critter/internal/critter"
)

// tinyStudy is a minimal synthetic study for executor tests: two
// configurations of a single computation kernel on two ranks.
func tinyStudy(name string) Study {
	return Study{
		Name:       name,
		NumConfigs: 2,
		WorldSize:  2,
		Policies:   []critter.Policy{critter.Conditional},
		Run: func(p *critter.Profiler, cc *critter.Comm, v int) {
			n := 4 << v
			for i := 0; i < 8; i++ {
				p.Kernel("work", n, 0, 0, 0, float64(n*n), func() {})
			}
			cc.Barrier()
		},
		Describe: func(v int) string { return "tiny" },
	}
}

// panicStudy fails on every configuration.
func panicStudy() Study {
	st := tinyStudy("boom-study")
	st.Run = func(p *critter.Profiler, cc *critter.Comm, v int) {
		panic("kaboom")
	}
	return st
}

// TestRunParallelDeterminism is the executor's core contract: a pool of
// four workers must return SweepResults identical to the sequential path,
// because every sweep runs in its own world seeded identically.
func TestRunParallelDeterminism(t *testing.T) {
	exp := Experiment{
		Study:    CapitalCholesky(QuickScale()),
		EpsList:  []float64{0.5, 0.125},
		Machine:  quickMachine(),
		Seed:     7,
		Policies: []critter.Policy{critter.Conditional, critter.Online},
		Workers:  1,
	}
	seq, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	exp.Workers = 4
	par, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		for pi := range seq.Sweeps {
			for ei := range seq.Sweeps[pi] {
				if !reflect.DeepEqual(seq.Sweeps[pi][ei], par.Sweeps[pi][ei]) {
					t.Errorf("policy %s eps %g: parallel sweep differs from sequential",
						seq.Policies[pi], seq.EpsList[ei])
				}
			}
		}
		t.Fatal("Workers: 4 result differs from Workers: 1")
	}
}

// TestRunDefaultWorkers checks that the zero value (no Workers field set)
// still runs every sweep and fills the whole result grid in order.
func TestRunDefaultWorkers(t *testing.T) {
	eps := []float64{1, 0.5, 0.25}
	res, err := Experiment{
		Study:   tinyStudy("tiny"),
		EpsList: eps,
		Machine: quickMachine(),
		Seed:    3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 1 || len(res.Sweeps[0]) != len(eps) {
		t.Fatalf("sweep grid %dx%d, want 1x%d", len(res.Sweeps), len(res.Sweeps[0]), len(eps))
	}
	for ei, sw := range res.Sweeps[0] {
		if sw.Eps != eps[ei] {
			t.Errorf("slot %d holds eps %g, want %g (ordering broken)", ei, sw.Eps, eps[ei])
		}
		if len(sw.Configs) != 2 {
			t.Errorf("slot %d covered %d configs", ei, len(sw.Configs))
		}
	}
}

// TestEmptyPolicyOverrideFallsBack guards the policy-resolution fallback: a
// non-nil empty Policies override must still yield the four-policy default,
// not a silent zero-sweep no-op.
func TestEmptyPolicyOverrideFallsBack(t *testing.T) {
	st := tinyStudy("tiny")
	st.Policies = nil
	res, err := Experiment{
		Study:    st,
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     1,
		Policies: []critter.Policy{},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 4 || len(res.Sweeps) != 4 {
		t.Fatalf("empty override resolved to %v, want the four-policy default", res.Policies)
	}
}

// TestSuitePropagatesErrors checks that ExperimentSuite reports every
// failing study (tagged with study, policy, and eps) instead of dropping
// errors, while still returning the results of the studies that succeeded.
func TestSuitePropagatesErrors(t *testing.T) {
	mk := func(st Study) Experiment {
		return Experiment{Study: st, EpsList: []float64{0.25}, Machine: quickMachine(), Seed: 2}
	}
	var events []Progress
	suite := ExperimentSuite{
		Experiments: []Experiment{mk(tinyStudy("ok-study")), mk(panicStudy())},
		Workers:     2,
		Progress:    func(ev Progress) { events = append(events, ev) },
	}
	results, err := suite.Run()
	if err == nil {
		t.Fatal("suite dropped the failing study's error")
	}
	for _, want := range []string{"boom-study", "kaboom", "conditional"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("suite error %q does not mention %q", err, want)
		}
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0] == nil || len(results[0].Sweeps) != 1 {
		t.Error("successful study's result was dropped alongside the failure")
	}
	if results[1] != nil {
		t.Error("failed study should yield a nil result")
	}
	// Failed sweeps still count toward progress, so Done reaches Total.
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2 (failures must report too)", len(events))
	}
	if last := events[len(events)-1]; last.Done != 2 || last.Total != 2 {
		t.Errorf("final progress %d/%d, want 2/2", last.Done, last.Total)
	}
	failed := 0
	for _, ev := range events {
		if ev.Err != nil {
			failed++
			if ev.Study != "boom-study" {
				t.Errorf("failure reported for %q, want boom-study", ev.Study)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d progress events carried an error, want 1", failed)
	}
}

// TestSuiteSharedProgress checks that a suite reports one completion per
// sweep with suite-wide counts, serialized across workers.
func TestSuiteSharedProgress(t *testing.T) {
	eps := []float64{1, 0.5}
	var events []Progress
	suite := ExperimentSuite{
		Experiments: []Experiment{
			{Study: tinyStudy("a"), EpsList: eps, Machine: quickMachine(), Seed: 1},
			{Study: tinyStudy("b"), EpsList: eps, Machine: quickMachine(), Seed: 1},
		},
		Workers:  4,
		Progress: func(ev Progress) { events = append(events, ev) },
	}
	if _, err := suite.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d progress events, want 4", len(events))
	}
	byStudy := map[string]int{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 4 {
			t.Errorf("event %d: done %d/%d, want %d/4", i, ev.Done, ev.Total, i+1)
		}
		byStudy[ev.Study]++
	}
	if byStudy["a"] != 2 || byStudy["b"] != 2 {
		t.Errorf("per-study completions %v, want 2 each", byStudy)
	}
}
