package autotune_test

// Cross-scheduler determinism suite: every golden (study, strategy) case —
// all four case studies, eager propagation (CAPITAL) and successive
// halving included — is re-run with the world scheduler pinned to each
// concrete mode, and the serialized result grid must match the committed
// golden file byte-for-byte. TestGoldenEnvelope covers whatever SchedAuto
// resolves to on the host running the tests; pinning both modes here makes
// the invariance unconditional: the scheduler (and the sweep executor's
// kernel memo, which is always attached and predates none of these golden
// files) is a pure throughput choice that can never leak into results.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	. "critter/internal/autotune"
	"critter/internal/mpi"
)

// TestSchedulerInvariance pins each golden case to the goroutine and the
// discrete-event scheduler in turn and demands the golden bytes both times.
func TestSchedulerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler-invariance grids run full sweeps")
	}
	scheds := []mpi.SchedulerKind{mpi.SchedGoroutine, mpi.SchedEvent}
	for _, tc := range goldenCases(t) {
		for _, sched := range scheds {
			t.Run(tc.name+"/"+sched.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Tuner{
					Study:     tc.study,
					EpsList:   tc.eps,
					Machine:   goldenMachine(),
					Seed:      42,
					Strategy:  tc.strat,
					Scheduler: sched,
				}.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join("testdata", "envelope_"+tc.name+".golden.json")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (regenerate with TestGoldenEnvelope -update-golden): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("scheduler %s diverges from golden %s: results must be byte-identical under every scheduler", sched, path)
				}
			})
		}
	}
}
