package autotune

// A configuration space with named, typed dimensions. Space replaces the
// opaque (NumConfigs, Describe) pair of the original Study API: strategies
// can decode a flat configuration index into per-dimension coordinates and
// move along individual axes, and reports can label configurations without
// the study supplying a bespoke formatter.

import (
	"fmt"
	"strings"
)

// Dim is one named axis of a configuration space. Values holds the labels
// of the points along the axis, in axis order; the axis length is
// len(Values).
type Dim struct {
	Name   string
	Values []string
}

// Size returns the number of points along the axis.
func (d Dim) Size() int { return len(d.Values) }

// IntsDim builds a dimension whose points are integers (block sizes, tile
// sizes, lookahead depths, ...).
func IntsDim(name string, vals ...int) Dim {
	d := Dim{Name: name, Values: make([]string, len(vals))}
	for i, v := range vals {
		d.Values[i] = fmt.Sprintf("%d", v)
	}
	return d
}

// GridsDim builds a dimension whose points are 2D processor-grid shapes,
// labeled "PRxPC".
func GridsDim(name string, grids ...[2]int) Dim {
	d := Dim{Name: name, Values: make([]string, len(grids))}
	for i, g := range grids {
		d.Values[i] = fmt.Sprintf("%dx%d", g[0], g[1])
	}
	return d
}

// Space is the cartesian product of its dimensions. Configurations are
// indexed 0..Size()-1 in mixed-radix order with Dims[0] varying fastest,
// matching the paper's flat config numbering (e.g. CAPITAL's
// b = b0*2^(v%5), strategy = 1 + v/5 is the space [b-dim of radix 5,
// strategy-dim of radix 3]).
//
// The zero value is an empty space of size 0; Study falls back to its
// legacy NumConfigs/Describe fields in that case.
type Space struct {
	Dims []Dim
}

// NewSpace builds a space from its dimensions, fastest-varying first.
func NewSpace(dims ...Dim) Space { return Space{Dims: dims} }

// Size returns the number of configurations: the product of the dimension
// lengths, or 0 for the empty space.
func (s Space) Size() int {
	if len(s.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range s.Dims {
		n *= d.Size()
	}
	return n
}

// Decode splits a flat configuration index into per-dimension coordinates,
// one per dimension in Dims order. The index must lie in [0, Size()).
func (s Space) Decode(v int) []int {
	coords := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		coords[i] = v % d.Size()
		v /= d.Size()
	}
	return coords
}

// Encode is the inverse of Decode: it folds per-dimension coordinates back
// into the flat configuration index.
func (s Space) Encode(coords []int) int {
	v, stride := 0, 1
	for i, d := range s.Dims {
		v += coords[i] * stride
		stride *= d.Size()
	}
	return v
}

// Axis returns the index of the dimension with the given name, or -1.
func (s Space) Axis(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Value returns the label of configuration v's point along the named
// dimension ("" if the dimension does not exist).
func (s Space) Value(v int, name string) string {
	i := s.Axis(name)
	if i < 0 {
		return ""
	}
	return s.Dims[i].Values[s.Decode(v)[i]]
}

// Describe labels configuration v as "name=value" pairs joined by spaces,
// in Dims order.
func (s Space) Describe(v int) string {
	coords := s.Decode(v)
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.Name + "=" + d.Values[coords[i]]
	}
	return strings.Join(parts, " ")
}

// legacySpace wraps a bare configuration count as a single anonymous
// dimension, so pre-Space studies keep working under the Tuner.
func legacySpace(n int) Space {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", i)
	}
	return Space{Dims: []Dim{{Name: "config", Values: vals}}}
}
