package autotune

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"critter/internal/critter"
	"critter/internal/mpi"
)

// TestSurrogateStrategy checks the model-guided sampler: at most N distinct
// in-range configurations, the budget exactly spent when the space is
// larger, a selection from the evaluated set, and bit-identical sweeps
// across re-runs.
func TestSurrogateStrategy(t *testing.T) {
	const n = 6
	st := rampStudy(16)
	run := func() *Result {
		res, err := Tuner{
			Study:    st,
			EpsList:  []float64{0.25},
			Machine:  quickMachine(),
			Seed:     9,
			Strategy: Surrogate{N: n, Seed: 9},
		}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Strategy != "surrogate:6" {
		t.Errorf("strategy recorded as %q", res.Strategy)
	}
	sw := res.Sweeps[0][0]
	evaluated := map[int]bool{}
	for _, cr := range sw.Configs {
		if cr.Config < 0 || cr.Config >= st.Size() {
			t.Fatalf("proposed config %d outside [0, %d)", cr.Config, st.Size())
		}
		if evaluated[cr.Config] {
			t.Fatalf("config %d evaluated twice — the budget must buy distinct points", cr.Config)
		}
		evaluated[cr.Config] = true
		if cr.Eps != 0.25 {
			t.Errorf("config %d ran at eps %g, want the target 0.25 (the surrogate's cheap fidelity is the predicted time, not a loosened tolerance)", cr.Config, cr.Eps)
		}
	}
	if len(evaluated) != n {
		t.Fatalf("evaluated %d distinct configs, want the full budget %d", len(evaluated), n)
	}
	if !evaluated[sw.Selected] {
		t.Errorf("selected config %d was never evaluated", sw.Selected)
	}
	// The ramp's costs rise with the index; a model-guided search that
	// learned anything must not select from the slowest half.
	if sw.Selected >= st.Size()/2 {
		t.Errorf("surrogate selected slow config %d on an ascending-cost ramp of %d", sw.Selected, st.Size())
	}
	if rerun := run(); !reflect.DeepEqual(res, rerun) {
		t.Error("re-run produced a different result grid")
	}
	// A budget at or above the space size degenerates to full coverage.
	full := Surrogate{N: 99, Seed: 9}
	if full.Name() != "surrogate:99" {
		t.Errorf("Name() = %q", full.Name())
	}
	sp := st.Space
	plan := full.Plan(sp, 0.25)
	covered := map[int]bool{}
	var prev []ConfigResult
	for {
		round, ok := plan.Next(prev)
		if !ok || len(round.Configs) == 0 {
			break
		}
		prev = prev[:0]
		for _, v := range round.Configs {
			covered[v] = true
			prev = append(prev, ConfigResult{Config: v, Selective: critter.Report{Predicted: float64(v + 1)}})
		}
	}
	if len(covered) != sp.Size() {
		t.Errorf("budget >= space covered %d of %d configs", len(covered), sp.Size())
	}
}

// TestSurrogateSeedVariesDesign pins the seeding contract: different seeds
// draw different initial designs (the strategy's only stochastic input),
// while equal seeds draw identical ones.
func TestSurrogateSeedVariesDesign(t *testing.T) {
	sp := NewSpace(IntsDim("v", seqInts(24)...))
	first := func(seed uint64) []int {
		round, ok := Surrogate{N: 8, Seed: seed}.Plan(sp, 0.25).Next(nil)
		if !ok {
			t.Fatal("no first round")
		}
		return round.Configs
	}
	if a, b := first(1), first(1); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed drew different designs: %v vs %v", a, b)
	}
	if a, b := first(1), first(2); reflect.DeepEqual(a, b) {
		t.Errorf("seeds 1 and 2 drew the same design: %v", a)
	}
}

// TestSurrogateWorkerSchedulerInvariance is the acceptance criterion for
// the new strategy: serialized result grids are byte-identical at any
// worker count and under both pinned world schedulers.
func TestSurrogateWorkerSchedulerInvariance(t *testing.T) {
	base := Tuner{
		Study:    CapitalCholesky(QuickScale()),
		EpsList:  []float64{0.125},
		Machine:  quickMachine(),
		Seed:     42,
		Policies: []critter.Policy{critter.Online},
		Strategy: Surrogate{N: 6, Seed: 42},
	}
	marshal := func(tn Tuner) string {
		res, err := tn.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	want := marshal(base)
	for _, workers := range []int{1, 4} {
		for _, sched := range []mpi.SchedulerKind{mpi.SchedGoroutine, mpi.SchedEvent} {
			tn := base
			tn.Workers = workers
			tn.Scheduler = sched
			if got := marshal(tn); got != want {
				t.Errorf("surrogate sweep diverges at workers=%d sched=%s", workers, sched)
			}
		}
	}
}

// profileProbe decorates a strategy to record every ObserveProfile feed,
// for asserting the executor's ProfileAware plumbing. The recorder is
// shared by every rank's plan copy (ranks run concurrently under the
// goroutine scheduler), hence the mutex.
type profileProbe struct {
	inner Strategy
	mu    *sync.Mutex
	calls *[]*critter.Profile
}

func (s profileProbe) Name() string { return "probe:" + s.inner.Name() }

func (s profileProbe) Plan(sp Space, eps float64) Plan {
	return probePlan{Plan: s.inner.Plan(sp, eps), probe: s}
}

type probePlan struct {
	Plan
	probe profileProbe
}

func (p probePlan) ObserveProfile(prof *critter.Profile) {
	p.probe.mu.Lock()
	defer p.probe.mu.Unlock()
	*p.probe.calls = append(*p.probe.calls, prof)
	if inner, ok := p.Plan.(ProfileAware); ok {
		inner.ObserveProfile(prof)
	}
}

// newProfileProbe wraps a strategy with a fresh recorder.
func newProfileProbe(inner Strategy) (profileProbe, *[]*critter.Profile) {
	calls := &[]*critter.Profile{}
	return profileProbe{inner: inner, mu: &sync.Mutex{}, calls: calls}, calls
}

// TestProfileAwareFedEveryRound checks the executor's feeding contract:
// after each completed round, every rank's plan copy receives the live
// merged profile — non-nil, and identical across ranks round by round
// (profiles from the same round carry the same sample count; the world has
// rampStudy's two ranks, so each distinct profile appears exactly twice).
func TestProfileAwareFedEveryRound(t *testing.T) {
	st := rampStudy(8) // WorldSize 2
	probe, calls := newProfileProbe(SuccessiveHalving{})
	_, err := Tuner{
		Study:    st,
		EpsList:  []float64{0.25},
		Machine:  quickMachine(),
		Seed:     6,
		Strategy: probe,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Halving over 8 configs runs 3 rungs (8, 4, 2); one feed per rank per
	// completed round.
	const ranks, rounds = 2, 3
	if len(*calls) != ranks*rounds {
		t.Fatalf("ObserveProfile called %d times, want %d (%d ranks x %d rounds)", len(*calls), ranks*rounds, ranks, rounds)
	}
	bySamples := map[int64]int{}
	for _, prof := range *calls {
		if prof == nil {
			t.Fatal("ObserveProfile fed a nil profile")
		}
		if len(prof.Kernels) == 0 {
			t.Error("ObserveProfile fed an empty profile after a completed round")
		}
		bySamples[prof.Samples()]++
	}
	for samples, n := range bySamples {
		if n%ranks != 0 {
			t.Errorf("profile with %d samples seen %d times — ranks diverged (want multiples of %d)", samples, n, ranks)
		}
	}
	// Plans that do not implement ProfileAware must not be fed: the plain
	// strategies' plans would not even compile a call, so assert via the
	// tuner's behavior — their sweeps are byte-identical with the probe
	// removed (covered by the golden envelope suite, which pins every
	// non-aware strategy bit-for-bit).
}

// TestSurrogateObserveProfileAdaptsXi unit-checks the live-profile hook:
// a noisy merged profile widens the exploration margin, a quiet one
// narrows it, clamped into [0.001, 0.25], and nil/empty profiles leave it
// untouched.
func TestSurrogateObserveProfileAdaptsXi(t *testing.T) {
	sp := NewSpace(IntsDim("v", seqInts(8)...))
	plan := Surrogate{N: 4, Seed: 1}.Plan(sp, 0.25).(*surrogatePlan)
	if plan.xi != defaultXi {
		t.Fatalf("initial xi %g, want %g", plan.xi, defaultXi)
	}
	plan.ObserveProfile(nil)
	plan.ObserveProfile(&critter.Profile{})
	if plan.xi != defaultXi {
		t.Errorf("nil/empty profile moved xi to %g", plan.xi)
	}
	noisy := &critter.Profile{Kernels: map[critter.Key]critter.KernelModel{
		{}: {Count: 10, Mean: 1, M2: 10}, // CV = 1 -> clamped to 0.25
	}}
	plan.ObserveProfile(noisy)
	if plan.xi != 0.25 {
		t.Errorf("noisy profile set xi %g, want clamp 0.25", plan.xi)
	}
	quiet := &critter.Profile{Kernels: map[critter.Key]critter.KernelModel{
		{}: {Count: 10, Mean: 1, M2: 0}, // CV = 0 -> clamped to 0.001
	}}
	plan.ObserveProfile(quiet)
	if plan.xi != 0.001 {
		t.Errorf("quiet profile set xi %g, want clamp 0.001", plan.xi)
	}
}

// TestPruneDeterministicTieBreak is the regression test for prune's sort
// rewrite: equal predicted times break by configuration index, the keep
// set is returned ascending, and the outcome is independent of the input
// order (the (Predicted, Config) key totally orders any round's results,
// so the unstable slices.SortFunc cannot leak input order).
func TestPruneDeterministicTieBreak(t *testing.T) {
	mk := func(cfg int, pred float64) ConfigResult {
		return ConfigResult{Config: cfg, Selective: critter.Report{Predicted: pred}}
	}
	results := []ConfigResult{mk(5, 3), mk(7, 1), mk(2, 1), mk(1, 2), mk(9, 1)}
	want := []int{2, 7} // ties at predicted 1 break by config: 2, 7, 9
	if got := prune(results, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("prune = %v, want %v", got, want)
	}
	// Every rotation of the input yields the same keep set.
	for shift := 1; shift < len(results); shift++ {
		rotated := append(append([]ConfigResult{}, results[shift:]...), results[:shift]...)
		if got := prune(rotated, 2); !reflect.DeepEqual(got, want) {
			t.Errorf("prune(rotation %d) = %v, want %v", shift, got, want)
		}
	}
	// n beyond the input keeps everything, ascending.
	if got := prune(results, 99); !reflect.DeepEqual(got, []int{1, 2, 5, 7, 9}) {
		t.Errorf("prune(all) = %v", got)
	}
	if got := prune(nil, 3); len(got) != 0 {
		t.Errorf("prune(nil) = %v, want empty", got)
	}
}

// TestStrategyNamesComplete pins the flag grammar: every parseable
// strategy's Name round-trips through ParseStrategy to an equivalent
// value, and StrategyNames mentions every grammar head the parser accepts
// (so -h output and error messages can never fall behind a new strategy).
func TestStrategyNamesComplete(t *testing.T) {
	const seed = 7
	strategies := []Strategy{
		Exhaustive{},
		RandomSample{N: 8, Seed: seed},
		SuccessiveHalving{},
		SuccessiveHalving{Eta: 3},
		Surrogate{N: 6, Seed: seed},
		Surrogate{N: 6, Seed: seed, Batch: 2},
	}
	for _, s := range strategies {
		back, err := ParseStrategy(s.Name(), seed)
		if err != nil {
			t.Errorf("ParseStrategy(%q) (a Name the code emitted): %v", s.Name(), err)
			continue
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("ParseStrategy(%q) = %#v, want the original %#v", s.Name(), back, s)
		}
		if back.Name() != s.Name() {
			t.Errorf("re-parsed Name %q != original %q", back.Name(), s.Name())
		}
	}
	// Grammar heads: each must appear in StrategyNames and parse from a
	// representative spec. A new case in ParseStrategy without a
	// StrategyNames mention fails here.
	heads := map[string]string{
		"exhaustive": "exhaustive",
		"random":     "random:4",
		"halving":    "halving",
		"surrogate":  "surrogate:4",
	}
	for head, example := range heads {
		if !containsHead(StrategyNames, head) {
			t.Errorf("StrategyNames %q does not mention grammar head %q", StrategyNames, head)
		}
		if _, err := ParseStrategy(example, seed); err != nil {
			t.Errorf("representative spec %q: %v", example, err)
		}
	}
}

// containsHead reports whether the comma-separated grammar list names the
// given head (at a term boundary, not as a substring of another head).
func containsHead(names, head string) bool {
	for _, term := range strings.Split(names, ",") {
		term = strings.TrimSpace(term)
		term, _, _ = strings.Cut(term, ":")
		term, _, _ = strings.Cut(term, "[")
		if term == head {
			return true
		}
	}
	return false
}
