package autotune

// Warm-started tuning: a Strategy decorator that seeds every sweep's world
// with a kernel profile exported by an earlier run. This is the
// transfer-learning direction of the related autotuning literature (reuse
// statistics from prior tuning sessions) expressed in this codebase's
// terms: the prior's kernel models let signatures skip after a single
// validation execution, and — with Tuner.Extrapolate — its fitted family
// models skip even never-before-seen signatures, which is what transfers
// across problem scales.

import "critter/internal/critter"

// priorCarrier is the interface runSweep probes for a strategy-attached
// warm-start prior. Tuner.Prior, when set, takes precedence.
type priorCarrier interface {
	Prior() *critter.Profile
}

// warmStart decorates an inner Strategy with a prior profile. Planning
// delegates to the inner strategy untouched; only the sweep's profiler
// seeding changes.
type warmStart struct {
	inner Strategy
	prior *critter.Profile
}

// WarmStart returns inner decorated with a warm-start prior for every
// sweep it plans. A nil inner means Exhaustive; a nil prior returns inner
// unchanged (cold), so WarmStart(s, loadOrNil()) composes safely.
func WarmStart(inner Strategy, prior *critter.Profile) Strategy {
	if inner == nil {
		inner = Exhaustive{}
	}
	if prior == nil {
		return inner
	}
	return warmStart{inner: inner, prior: prior}
}

// Name implements Strategy: the inner name tagged as warm-started, so
// serialized results distinguish warm from cold runs.
func (w warmStart) Name() string { return "warm:" + w.inner.Name() }

// Plan implements Strategy by delegating to the inner strategy.
func (w warmStart) Plan(sp Space, eps float64) Plan { return w.inner.Plan(sp, eps) }

// Prior implements priorCarrier.
func (w warmStart) Prior() *critter.Profile { return w.prior }
