package autotune

// The Tuner is the central control flow of the autotuning harness: it
// composes a Study (the space and its runner), a Strategy (which
// configurations to evaluate, at what tolerance), and the concurrent sweep
// executor, under caller-controlled cancellation. Experiment and
// ExperimentSuite (study.go, executor.go) are thin compatibility wrappers
// over it.

import (
	"context"
	"errors"
	"iter"

	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/sim"
	"critter/internal/stats"
)

// Tuner drives sweeps of one study over policies and tolerances, each sweep
// enumerated by a search Strategy, on a bounded worker pool.
type Tuner struct {
	// Study is the tuning problem: configuration space plus runner.
	Study Study
	// EpsList is the grid of target confidence tolerances.
	EpsList []float64
	// Machine is the simulated machine model.
	Machine sim.Machine
	// Seed seeds every sweep's world identically.
	Seed uint64
	// Policies overrides Study.Policies when non-nil.
	Policies []critter.Policy
	// Strategy picks the configurations each sweep evaluates; nil means
	// Exhaustive, which reproduces the paper's protocol bit-for-bit.
	Strategy Strategy

	// Prior warm-starts every sweep's selective profiler from a profile
	// exported by an earlier run (SweepResult.Profile, critter-tune
	// -profile-out): kernels predicted by the prior skip sooner, shrinking
	// the executed-kernel count. The reference (full) executions are never
	// warm-started. Takes precedence over a WarmStart strategy's prior.
	Prior *critter.Profile
	// Extrapolate enables family-model extrapolation (Section VIII's
	// line-fitting extension) in the default estimator of every sweep's
	// selective profiler. This is how warm starts transfer across scales:
	// a prior's fitted families predict kernel sizes never seen before.
	Extrapolate bool
	// NewEstimator, when non-nil, supplies the prediction model for each
	// sweep's selective profiler, overriding the default CI-mean estimator
	// (and Extrapolate). Called once per rank per sweep; every call must
	// return a fresh, independent instance.
	NewEstimator func() critter.Estimator

	// Scheduler selects the world scheduler for every sweep. The zero
	// value (mpi.SchedAuto) picks the single-goroutine discrete-event loop
	// for small worlds and goroutine-per-rank above the threshold; either
	// explicit kind forces that engine. Results are byte-identical under
	// every setting — the scheduler decides execution order, never
	// virtual-time outcomes.
	Scheduler mpi.SchedulerKind

	// Workers bounds how many sweeps are simulated concurrently. Zero (or
	// negative) means runtime.GOMAXPROCS(0); 1 recovers the sequential
	// path. Every worker count yields bit-identical results, because each
	// sweep runs in its own world seeded with Seed.
	Workers int
	// Progress, when non-nil, is invoked after each sweep completes (or is
	// abandoned to cancellation). Invocations are serialized; the callback
	// must not call back into the tuner.
	Progress func(Progress)

	// Tracer, when non-nil, receives span events from every sweep: sweep
	// begin/end, strategy planning rounds, per-configuration spans, and
	// the profiler's kernel-propagation rounds (rank 0 of each world).
	// Events within one sweep arrive in deterministic order; events of
	// concurrently running sweeps interleave. Tracing is observational
	// only — results and envelopes are byte-identical with it on or off —
	// and the nil default costs one branch per potential event.
	Tracer obs.Tracer
}

// strategy resolves the search strategy, defaulting to Exhaustive.
func (t Tuner) strategy() Strategy {
	if t.Strategy == nil {
		return Exhaustive{}
	}
	return t.Strategy
}

// policies resolves the tuner's policy list: the explicit override, else
// the study's own list, else (when the resolved list is empty) the paper's
// four-policy default.
func (t Tuner) policies() []critter.Policy {
	policies := t.Policies
	if policies == nil {
		policies = t.Study.Policies
	}
	if len(policies) == 0 {
		policies = []critter.Policy{critter.Conditional, critter.Local, critter.Online, critter.APriori}
	}
	return policies
}

// build preallocates the result grid and one sweep job per (policy, eps)
// cell, each pointing at its result slot so workers never contend.
func (t Tuner) build(sink *progressSink) (*Result, []sweepJob) {
	policies := t.policies()
	strat := t.strategy()
	res := &Result{
		Study:    t.Study.Name,
		Strategy: strat.Name(),
		Policies: policies,
		EpsList:  t.EpsList,
		Sweeps:   make([][]SweepResult, len(policies)),
	}
	jobs := make([]sweepJob, 0, len(policies)*len(t.EpsList))
	for pi, pol := range policies {
		res.Sweeps[pi] = make([]SweepResult, len(t.EpsList))
		for ei, eps := range t.EpsList {
			jobs = append(jobs, sweepJob{
				study:       t.Study,
				strat:       strat,
				pol:         pol,
				eps:         eps,
				machine:     t.Machine,
				seed:        t.Seed,
				prior:       t.Prior,
				extrapolate: t.Extrapolate,
				newEst:      t.NewEstimator,
				tracer:      t.Tracer,
				sched:       t.Scheduler,
				out:         &res.Sweeps[pi][ei],
				sink:        sink,
			})
		}
	}
	sink.grow(len(jobs))
	return res, jobs
}

// Run executes every (policy, eps) sweep of the tuner, each in a fresh
// world seeded with Seed, dispatching them to a pool of Workers goroutines.
// Result ordering is fixed by the policy and tolerance lists, not
// completion order, and the values are identical to a sequential
// (Workers: 1) run.
//
// Cancelling ctx stops the grid promptly: running sweeps abandon their
// world at the next configuration boundary and pending sweeps are skipped.
// The result grid is always returned — failed or cancelled cells are
// zeroed — alongside the joined per-sweep errors; on cancellation the error
// satisfies errors.Is(err, ctx.Err()).
func (t Tuner) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sink := &progressSink{fn: t.Progress}
	res, jobs := t.build(sink)
	err := errors.Join(runJobs(ctx, jobs, t.Workers)...)
	return res, err
}

// Stream runs the tuner like Run but yields each sweep as it completes, in
// completion order, for serving and streaming consumers. The SweepResult's
// Policy and Eps fields identify the grid cell; a failed or skipped sweep
// yields a zeroed result (with Policy and Eps still set) and its error.
// Exactly one (result, error) pair is yielded per grid cell unless the
// consumer breaks early, which cancels the remaining sweeps before the
// iterator returns; no goroutines outlive the loop.
func (t Tuner) Stream(ctx context.Context) iter.Seq2[SweepResult, error] {
	return func(yield func(SweepResult, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		sink := &progressSink{fn: t.Progress}
		_, jobs := t.build(sink)
		type item struct {
			sweep SweepResult
			err   error
		}
		// Buffered to the job count: job completions never block on a
		// consumer that has stopped reading.
		out := make(chan item, len(jobs))
		for i := range jobs {
			jobs[i].emit = func(sw SweepResult, err error) { out <- item{sw, err} }
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			runJobs(ctx, jobs, t.Workers)
		}()
		stopped := false
		for range jobs {
			it := <-out
			if !stopped && !yield(it.sweep, it.err) {
				stopped = true
				cancel() // stop the pool, then drain its completions
			}
		}
		<-done
	}
}

// RunTuners executes several tuners through one shared bounded worker pool
// (workers; 0 or negative means GOMAXPROCS), so a wide study's sweeps
// backfill the pool while a narrow one drains. Per-tuner Workers and
// Progress fields are ignored; progress, when non-nil, receives every sweep
// completion with pool-wide Done/Total counts. Both returned slices are
// aligned with tuners: every result grid is non-nil (failed cells zeroed),
// and errs[i] joins tuner i's per-sweep failures.
func RunTuners(ctx context.Context, tuners []Tuner, workers int, progress func(Progress)) ([]*Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sink := &progressSink{fn: progress}
	results := make([]*Result, len(tuners))
	var all []sweepJob
	spans := make([][2]int, len(tuners))
	for i, t := range tuners {
		start := len(all)
		res, jobs := t.build(sink)
		results[i] = res
		all = append(all, jobs...)
		spans[i] = [2]int{start, len(all)}
	}
	jobErrs := runJobs(ctx, all, workers)
	errs := make([]error, len(tuners))
	for i := range tuners {
		errs[i] = errors.Join(jobErrs[spans[i][0]:spans[i][1]]...)
	}
	return results, errs
}

// cancelError carries a context error through the simulated world's abort
// machinery: the first rank to observe cancellation panics with it, the
// world unwinds every other rank, and the sweep's error unwraps to the
// context error (so errors.Is(err, context.Canceled) holds).
type cancelError struct{ err error }

func (c cancelError) Error() string { return "sweep canceled: " + c.err.Error() }
func (c cancelError) Unwrap() error { return c.err }

// runSweep performs one (policy, eps) pass over the configurations the
// strategy selects: per configuration, a full reference execution directly
// prior to the approximated one (the measurement protocol of Section VI-A).
// Collective; the returned value is meaningful on every rank. Cancellation
// is checked at every configuration boundary and aborts the whole world.
func runSweep(ctx context.Context, c *mpi.Comm, j sweepJob) SweepResult {
	study, pol, eps, strat := j.study, j.pol, j.eps, j.strat
	// The tuner's explicit prior wins; otherwise a WarmStart strategy may
	// carry one. The reference profiler always starts cold: it is the
	// ground truth the selective run is judged against.
	prior := j.prior
	if pp, ok := strat.(priorCarrier); ok && prior == nil {
		prior = pp.Prior()
	}
	opts := critter.Options{
		Policy:      pol,
		Eps:         eps,
		Extrapolate: j.extrapolate,
		Prior:       prior,
		Memo:        j.memo,
	}
	if j.newEst != nil {
		opts.Estimator = j.newEst()
	}
	ref, refComm := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: 0, Memo: j.memo})
	tuned, tunedComm := critter.New(c, opts)
	// Trace from rank 0 only, mirroring the profiler's convention: one
	// deterministic event stream per sweep, not one per rank.
	tr := j.tracer
	if c.Rank() != 0 {
		tr = nil
	}
	sr := SweepResult{Policy: pol, Eps: eps}
	var execErrs, compErrs []float64
	plan := strat.Plan(study.space(), eps)
	// ProfileAware plans receive the live merged profile after every round.
	// The type assertion resolves identically on every rank (all ranks hold
	// the same plan type), so the collective GlobalProfile below is entered
	// by all ranks or none.
	profileAware, _ := plan.(ProfileAware)
	var prev []ConfigResult
	roundNo := 0
	for {
		round, ok := plan.Next(prev)
		if !ok || len(round.Configs) == 0 {
			break
		}
		roundNo++
		if tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.KindStrategy, Phase: obs.PhasePoint,
				Policy: pol.String(), Eps: eps,
				Round: roundNo, Configs: len(round.Configs),
			})
		}
		roundStart := len(sr.Configs)
		for _, v := range round.Configs {
			if ctx.Err() != nil {
				panic(cancelError{ctx.Err()})
			}
			if tr != nil {
				tr.Emit(obs.Event{
					Kind: obs.KindConfig, Phase: obs.PhaseBegin,
					Policy: pol.String(), Eps: eps,
					Config: len(sr.Configs) + 1, Round: roundNo,
				})
			}
			// Full execution directly prior to the approximated one. The
			// configuration's memo key lets the reference run publish its
			// interner for the selective run (and all later sweeps of the
			// same worker) to adopt.
			ck := critter.ConfigKey(study.Name, v)
			ref.StartConfigKeyed(true, ck)
			study.Run(ref, refComm, v)
			full := ref.Report()

			var sel critter.Report
			if pol == critter.APriori && round.Eps > 0 {
				// Offline iteration: full execution under online
				// propagation to obtain critical-path execution counts
				// (and samples).
				tuned.StartConfigKeyed(study.ResetStats, ck)
				tuned.SetPolicy(critter.Online)
				tuned.SetEps(0)
				study.Run(tuned, tunedComm, v)
				offline := tuned.Report()
				freqs := tuned.GlobalPathFreqs()
				sr.TuneWall += offline.Wall
				sr.KernelTime += offline.KernelTime
				sr.CompKernelTime += offline.CompKernel
				sr.KernelsMemoized += offline.Memoized
				tuned.SetAprioriFreq(freqs)
				tuned.SetPolicy(critter.APriori)
				tuned.SetEps(round.Eps)
				tuned.StartConfig(false) // keep the offline pass's samples
				study.Run(tuned, tunedComm, v)
				sel = tuned.Report()
			} else {
				tuned.SetEps(round.Eps)
				tuned.StartConfigKeyed(study.ResetStats, ck)
				study.Run(tuned, tunedComm, v)
				sel = tuned.Report()
			}

			cr := ConfigResult{
				Config:    v,
				Eps:       round.Eps,
				Full:      full,
				Selective: sel,
				ExecErr:   stats.RelErr(sel.Predicted, full.Wall),
				CompErr:   stats.RelErr(sel.PredictedComp, full.PredictedComp),
			}
			sr.Configs = append(sr.Configs, cr)
			sr.TuneWall += sel.Wall
			sr.FullWall += full.Wall
			sr.KernelTime += sel.KernelTime
			sr.CompKernelTime += sel.CompKernel
			sr.Executed += sel.Executed
			sr.Skipped += sel.Skipped
			sr.KernelsMemoized += sel.Memoized
			execErrs = append(execErrs, cr.ExecErr)
			compErrs = append(compErrs, cr.CompErr)
			if tr != nil {
				tr.Emit(obs.Event{
					Kind: obs.KindConfig, Phase: obs.PhaseEnd,
					Policy: pol.String(), Eps: eps,
					Config: len(sr.Configs), Round: roundNo,
					Virtual: sel.Wall, FullVirtual: full.Wall,
					Executed: sel.Executed, Skipped: sel.Skipped,
				})
			}
		}
		prev = sr.Configs[roundStart:]
		if profileAware != nil {
			// Collective: every rank gathers and folds the identical merged
			// profile, so plan state advances in lockstep across ranks. Fed
			// after the round's results exist and before the next planning
			// decision, mirroring how prev reaches Next.
			profileAware.ObserveProfile(tuned.GlobalProfile())
		}
	}
	sr.Selected, sr.Optimal = argmins(sr.Configs)
	sr.MeanLogExecErr = stats.MeanLogErr(execErrs)
	sr.MeanLogCompErr = stats.MeanLogErr(compErrs)
	// Export what the sweep learned, pooled across ranks (collective).
	// The archive inside the profiler spans every configuration, so
	// studies that reset statistics between configurations still yield
	// their full union.
	sr.Profile = tuned.GlobalProfileRoot(0)
	// The sweep is done with its profilers: donate their dense arenas and
	// estimator slabs back to the worker's memo for the next sweep.
	ref.Retire()
	tuned.Retire()
	return sr
}

// argmins picks the sweep's Selected (minimal predicted time) and Optimal
// (minimal full time) configurations. When a rung strategy evaluates a
// configuration more than once, only its last — most refined — evaluation
// competes, so a pruned configuration's stale loose-tolerance prediction
// cannot outrank a survivor's target-tolerance one. Under a single-round
// strategy every evaluation is the last, reproducing the original
// first-minimum scan exactly.
func argmins(configs []ConfigResult) (selected, optimal int) {
	last := make(map[int]int, len(configs))
	for i, cr := range configs {
		last[cr.Config] = i
	}
	bestPred, bestFull := -1.0, -1.0
	for i, cr := range configs {
		if last[cr.Config] != i {
			continue
		}
		if bestPred < 0 || cr.Selective.Predicted < bestPred {
			bestPred = cr.Selective.Predicted
			selected = cr.Config
		}
		if bestFull < 0 || cr.Full.Wall < bestFull {
			bestFull = cr.Full.Wall
			optimal = cr.Config
		}
	}
	return selected, optimal
}

// ResultSchemaVersion identifies the JSON layout emitted by critter-tune
// -json (an Envelope). Version 1 was the bare Result grid; version 2 added
// the self-describing envelope; version 3 added per-sweep profile
// summaries (and the optional prior summary).
const ResultSchemaVersion = 3

// ProfileSummary condenses one sweep's exported kernel profile for the
// envelope: enough to see how much a run learned (and compare warm against
// cold runs) without embedding the full artifact, which critter-tune
// -profile-out persists separately.
type ProfileSummary struct {
	// Policy identifies the sweep the profile came from; empty for
	// summaries not tied to one sweep (a -profile-in prior), whose Eps is
	// then meaningless. Eps is always emitted: 0 is a legitimate sweep
	// tolerance (selective execution disabled).
	Policy       string  `json:"policy,omitempty"`
	Eps          float64 `json:"eps"`
	Estimator    string  `json:"estimator,omitempty"`
	Kernels      int     `json:"kernels"`
	Samples      int64   `json:"samples"`
	Families     int     `json:"families"`
	FamilyPoints int     `json:"familyPoints"`
	PathKeys     int     `json:"pathKeys"`
}

// Summarize condenses a profile for an envelope. pol and eps identify the
// sweep and are supplied by the caller; empty/zero mean "not tied to one
// sweep" (the prior summary).
func Summarize(pol string, eps float64, p *critter.Profile) ProfileSummary {
	s := ProfileSummary{Policy: pol, Eps: eps}
	if p == nil {
		return s
	}
	s.Estimator = p.Estimator
	s.Kernels = len(p.Kernels)
	s.Samples = p.Samples()
	s.Families = len(p.Families)
	s.FamilyPoints = p.FamilyPointCount()
	s.PathKeys = len(p.PathFreqs)
	return s
}

// ProfileSummaries condenses every sweep profile of a result grid, in grid
// order (policy-major), skipping sweeps that exported nothing (failed or
// cancelled cells).
func ProfileSummaries(res *Result) []ProfileSummary {
	if res == nil {
		return nil
	}
	var out []ProfileSummary
	for pi, pol := range res.Policies {
		for ei, eps := range res.EpsList {
			if sw := res.Sweeps[pi][ei]; sw.Profile != nil {
				out = append(out, Summarize(pol.String(), eps, sw.Profile))
			}
		}
	}
	return out
}

// MergedProfile merges every sweep's exported profile of a result grid into
// one artifact — the run's total learned state, suitable for -profile-out
// and later warm starts. Returns nil when no sweep exported anything.
func MergedProfile(res *Result) *critter.Profile {
	if res == nil {
		return nil
	}
	var merged *critter.Profile
	for pi := range res.Sweeps {
		for ei := range res.Sweeps[pi] {
			if p := res.Sweeps[pi][ei].Profile; p != nil {
				merged = critter.MergeProfiles(merged, p)
			}
		}
	}
	return merged
}

// Envelope is the self-describing serialization of one tuning run: the
// schema version plus every input needed to reproduce or compare the run
// (seed, scale, noise sigma, search strategy) around the result grid, and
// summaries of the kernel profiles the run imported and exported.
type Envelope struct {
	SchemaVersion int     `json:"schemaVersion"`
	Study         string  `json:"study"`
	Scale         string  `json:"scale"`
	Seed          uint64  `json:"seed"`
	NoiseSigma    float64 `json:"noiseSigma"`
	Strategy      string  `json:"strategy"`
	// Prior summarizes the warm-start profile the run was seeded with
	// (-profile-in), nil for cold runs.
	Prior *ProfileSummary `json:"prior,omitempty"`
	// Profiles summarizes each sweep's exported profile in grid order.
	Profiles []ProfileSummary `json:"profiles,omitempty"`
	Result   *Result          `json:"result"`
}
