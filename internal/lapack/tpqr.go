package lapack

import "critter/internal/blas"

// Dtpqrt2 computes a QR factorization of the (n+m)-by-n "triangular on top
// of pentagonal" pair [A; B] with L=0 (B fully general): A is n-by-n upper
// triangular and is overwritten by the updated R; B is m-by-n and is
// overwritten by the essential parts of the Householder vectors (the top
// n-by-n identity block of V is implicit). T (n-by-n upper triangular)
// receives the block reflector factor.
func Dtpqrt2(m, n int, a []float64, lda int, b []float64, ldb int, t []float64, ldt int) {
	tau := make([]float64, n)
	for j := 0; j < n; j++ {
		// Generate the reflector from [A[j,j]; B[:, j]].
		beta, tj := Dlarfg(m+1, a[j+j*lda], b[j*ldb:], 1)
		tau[j] = tj
		a[j+j*lda] = beta
		// Apply H_j to the remaining columns of the pair.
		if tj != 0 {
			for jj := j + 1; jj < n; jj++ {
				w := a[j+jj*lda]
				for i := 0; i < m; i++ {
					w += b[i+j*ldb] * b[i+jj*ldb]
				}
				w *= tj
				a[j+jj*lda] -= w
				for i := 0; i < m; i++ {
					b[i+jj*ldb] -= b[i+j*ldb] * w
				}
			}
		}
	}
	// Build T: T[0:j, j] = T[0:j, 0:j] * (-tau_j * V[:,0:j]^T V[:,j]).
	for j := 0; j < n; j++ {
		t[j+j*ldt] = tau[j]
		for i := 0; i < j; i++ {
			s := 0.0
			for r := 0; r < m; r++ {
				s += b[r+i*ldb] * b[r+j*ldb]
			}
			t[i+j*ldt] = -tau[j] * s
		}
		for i := 0; i < j; i++ {
			s := 0.0
			for r := i; r < j; r++ {
				s += t[i+r*ldt] * t[r+j*ldt]
			}
			t[i+j*ldt] = s
		}
	}
}

// Dtpqrt computes a blocked QR factorization of the pair [A; B] (L=0) with
// inner block size ib, storing per-block T factors stacked in t (ldt >= ib),
// as in LAPACK DTPQRT.
func Dtpqrt(m, n, ib int, a []float64, lda int, b []float64, ldb int, t []float64, ldt int) {
	if ib < 1 {
		ib = 1
	}
	for j := 0; j < n; j += ib {
		jb := min(ib, n-j)
		Dtpqrt2(m, jb, a[j+j*lda:], lda, b[j*ldb:], ldb, t[j*ldt:], ldt)
		if j+jb < n {
			// Apply the block reflector to the trailing columns of the pair:
			// top rows A[j:j+jb, j+jb:] and all of B[:, j+jb:].
			tpApplyLeftTrans(m, n-j-jb, jb,
				b[j*ldb:], ldb,
				t[j*ldt:], ldt,
				a[j+(j+jb)*lda:], lda,
				b[(j+jb)*ldb:], ldb)
		}
	}
}

// tpApplyLeftTrans applies Q^T = (I - V' T V'^T)^T with V' = [I_k; V] to the
// stacked pair [Atop (k-by-n); B (m-by-n)]:
//
//	W = T^T (Atop + V^T B); Atop -= W; B -= V W.
func tpApplyLeftTrans(m, n, k int, v []float64, ldv int, t []float64, ldt int, atop []float64, ldat int, b []float64, ldb int) {
	w := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			s := atop[l+j*ldat]
			for i := 0; i < m; i++ {
				s += v[i+l*ldv] * b[i+j*ldb]
			}
			w[l+j*k] = s
		}
	}
	blas.Dtrmm(blas.Left, blas.Upper, true, blas.NonUnit, k, n, 1, t, ldt, w, k)
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			atop[l+j*ldat] -= w[l+j*k]
		}
	}
	blas.Dgemm(false, false, m, n, k, -1, v, ldv, w, k, 1, b, ldb)
}

// tpApplyLeftNoTrans applies Q = I - V' T V'^T to the stacked pair.
func tpApplyLeftNoTrans(m, n, k int, v []float64, ldv int, t []float64, ldt int, atop []float64, ldat int, b []float64, ldb int) {
	w := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			s := atop[l+j*ldat]
			for i := 0; i < m; i++ {
				s += v[i+l*ldv] * b[i+j*ldb]
			}
			w[l+j*k] = s
		}
	}
	blas.Dtrmm(blas.Left, blas.Upper, false, blas.NonUnit, k, n, 1, t, ldt, w, k)
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			atop[l+j*ldat] -= w[l+j*k]
		}
	}
	blas.Dgemm(false, false, m, n, k, -1, v, ldv, w, k, 1, b, ldb)
}

// Dtpmqrt applies Q^T (trans=true) or Q (trans=false) of a Dtpqrt
// factorization (V m-by-k in v, per-block T factors in t with inner block
// ib) from the left to the stacked pair [Atop (k-by-n); B (m-by-n)].
func Dtpmqrt(trans bool, m, n, k, ib int, v []float64, ldv int, t []float64, ldt int, atop []float64, ldat int, b []float64, ldb int) {
	if ib < 1 {
		ib = 1
	}
	if trans {
		for j := 0; j < k; j += ib {
			jb := min(ib, k-j)
			tpApplyLeftTrans(m, n, jb, v[j*ldv:], ldv, t[j*ldt:], ldt, atop[j:], ldat, b, ldb)
		}
		return
	}
	start := ((k - 1) / ib) * ib
	for j := start; j >= 0; j -= ib {
		jb := min(ib, k-j)
		tpApplyLeftNoTrans(m, n, jb, v[j*ldv:], ldv, t[j*ldt:], ldt, atop[j:], ldat, b, ldb)
	}
}
