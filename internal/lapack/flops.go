package lapack

// Flop-count formulas for the kernels, used by the profiler's machine model
// to assign virtual durations. Leading-order terms follow the standard
// LAPACK operation counts.

// GemmFlops returns the flop count of C += op(A)op(B) with op(A) m-by-k.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// SyrkFlops returns the flop count of a rank-k update of an n-by-n triangle.
func SyrkFlops(n, k int) float64 { return float64(n) * float64(n+1) * float64(k) }

// TrsmFlops returns the flop count of a triangular solve with an m-by-n
// right-hand side (triangle on the given side).
func TrsmFlops(left bool, m, n int) float64 {
	if left {
		return float64(n) * float64(m) * float64(m)
	}
	return float64(m) * float64(n) * float64(n)
}

// TrmmFlops returns the flop count of a triangular multiply.
func TrmmFlops(left bool, m, n int) float64 { return TrsmFlops(left, m, n) }

// PotrfFlops returns the flop count of an n-by-n Cholesky factorization.
func PotrfFlops(n int) float64 { fn := float64(n); return fn * fn * fn / 3 }

// TrtriFlops returns the flop count of an n-by-n triangular inversion.
func TrtriFlops(n int) float64 { fn := float64(n); return fn * fn * fn / 3 }

// GetrfFlops returns the flop count of an m-by-n LU factorization.
func GetrfFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	if m >= n {
		return fm*fn*fn - fn*fn*fn/3
	}
	return fn*fm*fm - fm*fm*fm/3
}

// GeqrfFlops returns the flop count of an m-by-n Householder QR (m >= n).
func GeqrfFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2*fm*fn*fn - 2*fn*fn*fn/3
}

// OrmqrFlops returns the flop count of applying k reflectors (from an
// m-by-k factorization) to an m-by-n matrix from the left.
func OrmqrFlops(m, n, k int) float64 {
	fm, fn, fk := float64(m), float64(n), float64(k)
	return 4*fm*fn*fk - 2*fn*fk*fk
}

// OrgqrFlops returns the flop count of forming m-by-k explicit Q from k
// reflectors.
func OrgqrFlops(m, k int) float64 { return OrmqrFlops(m, k, k) }

// TpqrtFlops returns the flop count of the triangular-pentagonal QR of an
// n-by-n triangle stacked on an m-by-n block (L=0).
func TpqrtFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2*fm*fn*fn + 2*fn*fn*fn/3
}

// TpmqrtFlops returns the flop count of applying a tpqrt block reflector
// (V m-by-k) to a stacked pair with n columns.
func TpmqrtFlops(m, n, k int) float64 {
	fm, fn, fk := float64(m), float64(n), float64(k)
	return 4*fm*fn*fk + 2*fn*fk*fk
}
