package lapack

import (
	"math"

	"critter/internal/blas"
)

// Dlarfg generates an elementary Householder reflector H = I - tau*v*v^T
// such that H*[alpha; x] = [beta; 0], with v = [1; x'] (x overwritten by the
// tail of v). It returns (beta, tau).
func Dlarfg(n int, alpha float64, x []float64, incx int) (beta, tau float64) {
	if n <= 1 {
		return alpha, 0
	}
	xnorm := blas.Dnrm2(n-1, x, incx)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -math.Copysign(math.Hypot(alpha, xnorm), alpha)
	tau = (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	blas.Dscal(n-1, scale, x, incx)
	return beta, tau
}

// Dgeqr2 computes an unblocked Householder QR factorization of the m-by-n
// matrix a in place: R in the upper triangle, the reflectors' essential
// parts below the diagonal, and scalar factors in tau (length min(m,n)).
func Dgeqr2(m, n int, a []float64, lda int, tau []float64) {
	k := min(m, n)
	for j := 0; j < k; j++ {
		beta, t := Dlarfg(m-j, a[j+j*lda], a[j+1+j*lda:], 1)
		tau[j] = t
		a[j+j*lda] = beta
		if t != 0 && j < n-1 {
			// Apply H_j to A[j:m, j+1:n]: A -= tau * v * (v^T A).
			applyReflectorLeft(m-j, n-j-1, a[j+j*lda:], t, a[j+(j+1)*lda:], lda)
		}
	}
}

// applyReflectorLeft applies H = I - tau*v*v^T to the rows of the r-by-c
// block C, where v = [1; vcol[1:r]] and vcol[0] is the (ignored) beta slot.
func applyReflectorLeft(r, c int, vcol []float64, tau float64, cm []float64, ldc int) {
	for j := 0; j < c; j++ {
		col := cm[j*ldc : j*ldc+r]
		w := col[0]
		for i := 1; i < r; i++ {
			w += vcol[i] * col[i]
		}
		w *= tau
		col[0] -= w
		for i := 1; i < r; i++ {
			col[i] -= vcol[i] * w
		}
	}
}

// Dlarft forms the upper-triangular block reflector factor T (k-by-k) for
// the forward, column-wise reflectors stored in the m-by-k matrix v (unit
// lower trapezoidal, essential parts below the diagonal) with scalars tau.
func Dlarft(m, k int, v []float64, ldv int, tau []float64, t []float64, ldt int) {
	for i := 0; i < k; i++ {
		ti := tau[i]
		t[i+i*ldt] = ti
		if i == 0 || ti == 0 {
			for j := 0; j < i; j++ {
				t[j+i*ldt] = 0
			}
			continue
		}
		// w = V[:, 0:i]^T * v_i  (v_i has implicit 1 at row i).
		for j := 0; j < i; j++ {
			s := v[i+j*ldv] // V[i,j] * v_i[i]=1
			for r := i + 1; r < m; r++ {
				s += v[r+j*ldv] * v[r+i*ldv]
			}
			t[j+i*ldt] = -ti * s
		}
		// T[0:i, i] = T[0:i, 0:i] * w (in place, upper triangular).
		for j := 0; j < i; j++ {
			s := 0.0
			for r := j; r < i; r++ {
				s += t[j+r*ldt] * t[r+i*ldt]
			}
			t[j+i*ldt] = s
		}
	}
}

// Dlarfb applies the block reflector Q = I - V*T*V^T (or its transpose) from
// the left to the m-by-n matrix C, with V m-by-k unit lower trapezoidal and
// T k-by-k upper triangular: C := (I - V T^op V^T) C.
func Dlarfb(trans bool, m, n, k int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int) {
	if k == 0 {
		return
	}
	// W = V^T * C, k-by-n (V's unit diagonal applied explicitly).
	w := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			s := c[l+j*ldc] // unit diagonal of V at row l
			for i := l + 1; i < m; i++ {
				s += v[i+l*ldv] * c[i+j*ldc]
			}
			w[l+j*k] = s
		}
	}
	// W = T^op * W.
	blas.Dtrmm(blas.Left, blas.Upper, trans, blas.NonUnit, k, n, 1, t, ldt, w, k)
	// C -= V * W.
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			wl := w[l+j*k]
			if wl == 0 {
				continue
			}
			c[l+j*ldc] -= wl
			for i := l + 1; i < m; i++ {
				c[i+j*ldc] -= v[i+l*ldv] * wl
			}
		}
	}
}

// Dgeqrf computes a blocked Householder QR factorization with panel width
// nb, equivalent to Dgeqr2 in its outputs.
func Dgeqrf(m, n, nb int, a []float64, lda int, tau []float64) {
	k := min(m, n)
	if nb < 1 {
		nb = 1
	}
	t := make([]float64, nb*nb)
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		Dgeqr2(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb])
		if j+jb < n {
			Dlarft(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], t, nb)
			Dlarfb(true, m-j, n-j-jb, jb, a[j+j*lda:], lda, t, nb, a[j+(j+jb)*lda:], lda)
		}
	}
}

// Dorm2r applies Q (trans=false) or Q^T (trans=true) from the left to the
// m-by-n matrix c, where Q is defined by the k reflectors of a Dgeqr2/Dgeqrf
// factorization stored in a (m-by-k) and tau.
func Dorm2r(trans bool, m, n, k int, a []float64, lda int, tau []float64, c []float64, ldc int) {
	if trans {
		for i := 0; i < k; i++ {
			applyReflectorToC(m, n, i, a, lda, tau[i], c, ldc)
		}
		return
	}
	for i := k - 1; i >= 0; i-- {
		applyReflectorToC(m, n, i, a, lda, tau[i], c, ldc)
	}
}

func applyReflectorToC(m, n, i int, a []float64, lda int, tau float64, c []float64, ldc int) {
	if tau == 0 {
		return
	}
	for j := 0; j < n; j++ {
		w := c[i+j*ldc]
		for r := i + 1; r < m; r++ {
			w += a[r+i*lda] * c[r+j*ldc]
		}
		w *= tau
		c[i+j*ldc] -= w
		for r := i + 1; r < m; r++ {
			c[r+j*ldc] -= a[r+i*lda] * w
		}
	}
}

// Dorgqr forms the first k columns of Q explicitly into q (m-by-k) from a
// Dgeqr2/Dgeqrf factorization in a and tau.
func Dorgqr(m, k int, a []float64, lda int, tau []float64, q []float64, ldq int) {
	for j := 0; j < k; j++ {
		for i := 0; i < m; i++ {
			q[i+j*ldq] = 0
		}
		q[j+j*ldq] = 1
	}
	Dorm2r(false, m, k, k, a, lda, tau, q, ldq)
}

// Dgeqrt computes a blocked QR factorization of the m-by-n tile a with inner
// block size ib, storing the reflectors in a and the ib-by-ib triangular T
// factors of each block column stacked in t (ldt >= ib, one ib-column group
// per panel block, as in LAPACK DGEQRT).
func Dgeqrt(m, n, ib int, a []float64, lda int, t []float64, ldt int, tau []float64) {
	k := min(m, n)
	if ib < 1 {
		ib = 1
	}
	for j := 0; j < k; j += ib {
		jb := min(ib, k-j)
		Dgeqr2(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb])
		Dlarft(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], t[j*ldt:], ldt)
		if j+jb < n {
			Dlarfb(true, m-j, n-j-jb, jb, a[j+j*lda:], lda, t[j*ldt:], ldt, a[j+(j+jb)*lda:], lda)
		}
	}
}

// Dgemqrt applies Q^T (trans=true) or Q (trans=false) of a Dgeqrt
// factorization (v m-by-k, t with inner block ib) from the left to the
// m-by-n matrix c.
func Dgemqrt(trans bool, m, n, k, ib int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int) {
	if ib < 1 {
		ib = 1
	}
	if trans {
		for j := 0; j < k; j += ib {
			jb := min(ib, k-j)
			Dlarfb(true, m-j, n, jb, v[j+j*ldv:], ldv, t[j*ldt:], ldt, c[j:], ldc)
		}
		return
	}
	start := ((k - 1) / ib) * ib
	for j := start; j >= 0; j -= ib {
		jb := min(ib, k-j)
		Dlarfb(false, m-j, n, jb, v[j+j*ldv:], ldv, t[j*ldt:], ldt, c[j:], ldc)
	}
}
