package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"critter/internal/blas"
	"critter/internal/sim"
)

func randMat(m, n int, seed uint64) []float64 {
	r := sim.NewRNG(seed)
	a := make([]float64, m*n)
	for i := range a {
		a[i] = 2*r.Float64() - 1
	}
	return a
}

// spdMat builds a well-conditioned SPD matrix A = G*G^T + n*I.
func spdMat(n int, seed uint64) []float64 {
	g := randMat(n, n, seed)
	a := make([]float64, n*n)
	blas.Dgemm(false, true, n, n, n, 1, g, n, g, n, 0, a, n)
	for i := 0; i < n; i++ {
		a[i+i*n] += float64(n)
	}
	return a
}

func frobNorm(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestDpotrfReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdMat(n, uint64(n))
		l := append([]float64(nil), a...)
		if err := Dpotrf(n, l, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Zero the strict upper triangle of L.
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				l[i+j*n] = 0
			}
		}
		llt := make([]float64, n*n)
		blas.Dgemm(false, true, n, n, n, 1, l, n, l, n, 0, llt, n)
		for i := range llt {
			llt[i] -= a[i]
		}
		if rel := frobNorm(llt) / frobNorm(a); rel > 1e-12 {
			t.Errorf("n=%d: ||A-LL^T||/||A|| = %g", n, rel)
		}
	}
}

func TestDpotrfRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1} // eigenvalues 1, -1
	err := Dpotrf(2, a, 2)
	if err == nil {
		t.Fatal("expected ErrNotPD")
	}
	if _, ok := err.(ErrNotPD); !ok {
		t.Fatalf("got %T, want ErrNotPD", err)
	}
}

func TestDtrtriIdentity(t *testing.T) {
	for _, n := range []int{1, 3, 8, 20} {
		a := spdMat(n, uint64(100+n))
		if err := Dpotrf(n, a, n); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				a[i+j*n] = 0
			}
		}
		l := append([]float64(nil), a...)
		if err := Dtrtri(n, a, n); err != nil {
			t.Fatal(err)
		}
		// L * L^{-1} must be the identity.
		prod := make([]float64, n*n)
		blas.Dgemm(false, false, n, n, n, 1, l, n, a, n, 0, prod, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod[i+j*n]-want) > 1e-11 {
					t.Fatalf("n=%d: (L*Linv)[%d,%d] = %g", n, i, j, prod[i+j*n])
				}
			}
		}
	}
}

func TestDtrtriSingular(t *testing.T) {
	a := []float64{1, 2, 0, 0} // zero at (1,1)
	if err := Dtrtri(2, a, 2); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestDgetrfReconstruction(t *testing.T) {
	for _, dims := range [][2]int{{5, 5}, {8, 5}, {5, 8}, {16, 16}} {
		m, n := dims[0], dims[1]
		a := randMat(m, n, uint64(m*37+n))
		lu := append([]float64(nil), a...)
		ipiv := make([]int, min(m, n))
		if err := Dgetrf(m, n, lu, m, ipiv); err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		k := min(m, n)
		// Build L (m-by-k unit lower) and U (k-by-n upper).
		l := make([]float64, m*k)
		u := make([]float64, k*n)
		for j := 0; j < k; j++ {
			l[j+j*m] = 1
			for i := j + 1; i < m; i++ {
				l[i+j*m] = lu[i+j*m]
			}
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= min(j, k-1); i++ {
				u[i+j*k] = lu[i+j*m]
			}
		}
		pa := make([]float64, m*n)
		blas.Dgemm(false, false, m, n, k, 1, l, m, u, k, 0, pa, m)
		// Apply recorded swaps to A to get P*A.
		ref := append([]float64(nil), a...)
		for j := 0; j < k; j++ {
			p := ipiv[j]
			if p != j {
				for c := 0; c < n; c++ {
					ref[j+c*m], ref[p+c*m] = ref[p+c*m], ref[j+c*m]
				}
			}
		}
		for i := range pa {
			pa[i] -= ref[i]
		}
		if rel := frobNorm(pa) / frobNorm(a); rel > 1e-12 {
			t.Errorf("%dx%d: ||PA-LU||/||A|| = %g", m, n, rel)
		}
	}
}

func TestDgetrfNoPiv(t *testing.T) {
	// Diagonally dominant matrices admit unpivoted LU.
	n := 10
	a := spdMat(n, 7)
	lu := append([]float64(nil), a...)
	if err := DgetrfNoPiv(n, n, lu, n); err != nil {
		t.Fatal(err)
	}
	l := make([]float64, n*n)
	u := make([]float64, n*n)
	for j := 0; j < n; j++ {
		l[j+j*n] = 1
		for i := j + 1; i < n; i++ {
			l[i+j*n] = lu[i+j*n]
		}
		for i := 0; i <= j; i++ {
			u[i+j*n] = lu[i+j*n]
		}
	}
	prod := make([]float64, n*n)
	blas.Dgemm(false, false, n, n, n, 1, l, n, u, n, 0, prod, n)
	for i := range prod {
		prod[i] -= a[i]
	}
	if rel := frobNorm(prod) / frobNorm(a); rel > 1e-12 {
		t.Errorf("unpivoted LU residual %g", rel)
	}
}

// qrResidual factors a copy of A and returns (||A-QR||/||A||, ||Q^TQ-I||).
func qrResidual(t *testing.T, m, n, nb int, a []float64) (float64, float64) {
	t.Helper()
	qr := append([]float64(nil), a...)
	tau := make([]float64, min(m, n))
	if nb <= 0 {
		Dgeqr2(m, n, qr, m, tau)
	} else {
		Dgeqrf(m, n, nb, qr, m, tau)
	}
	k := min(m, n)
	q := make([]float64, m*k)
	Dorgqr(m, k, qr, m, tau, q, m)
	// R: k-by-n upper triangle of qr.
	r := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= min(j, k-1); i++ {
			r[i+j*k] = qr[i+j*m]
		}
	}
	res := make([]float64, m*n)
	blas.Dgemm(false, false, m, n, k, 1, q, m, r, k, 0, res, m)
	for i := range res {
		res[i] -= a[i]
	}
	// Orthogonality: Q^T Q - I.
	qtq := make([]float64, k*k)
	blas.Dgemm(true, false, k, k, m, 1, q, m, q, m, 0, qtq, k)
	for i := 0; i < k; i++ {
		qtq[i+i*k] -= 1
	}
	return frobNorm(res) / frobNorm(a), frobNorm(qtq)
}

func TestDgeqr2AndDgeqrf(t *testing.T) {
	for _, dims := range [][2]int{{6, 6}, {12, 5}, {20, 8}, {33, 17}} {
		m, n := dims[0], dims[1]
		a := randMat(m, n, uint64(m+n*13))
		for _, nb := range []int{0, 1, 3, 8} { // 0 => unblocked geqr2
			res, orth := qrResidual(t, m, n, nb, a)
			if res > 1e-12 {
				t.Errorf("%dx%d nb=%d: QR residual %g", m, n, nb, res)
			}
			if orth > 1e-12 {
				t.Errorf("%dx%d nb=%d: orthogonality %g", m, n, nb, orth)
			}
		}
	}
}

func TestBlockedMatchesUnblockedQR(t *testing.T) {
	m, n := 14, 9
	a := randMat(m, n, 5)
	qr1 := append([]float64(nil), a...)
	tau1 := make([]float64, n)
	Dgeqr2(m, n, qr1, m, tau1)
	qr2 := append([]float64(nil), a...)
	tau2 := make([]float64, n)
	Dgeqrf(m, n, 4, qr2, m, tau2)
	for i := range qr1 {
		if math.Abs(qr1[i]-qr2[i]) > 1e-11 {
			t.Fatalf("blocked/unblocked factor mismatch at %d: %g vs %g", i, qr1[i], qr2[i])
		}
	}
}

func TestDorm2rAppliesQT(t *testing.T) {
	m, n := 10, 4
	a := randMat(m, n, 21)
	qr := append([]float64(nil), a...)
	tau := make([]float64, n)
	Dgeqr2(m, n, qr, m, tau)
	// Q^T * A must equal [R; 0].
	c := append([]float64(nil), a...)
	Dorm2r(true, m, n, n, qr, m, tau, c, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := 0.0
			if i <= j {
				want = qr[i+j*m]
			}
			if math.Abs(c[i+j*m]-want) > 1e-11 {
				t.Errorf("(Q^T A)[%d,%d] = %g, want %g", i, j, c[i+j*m], want)
			}
		}
	}
	// Applying Q then Q^T is the identity.
	c2 := randMat(m, 3, 22)
	orig := append([]float64(nil), c2...)
	Dorm2r(false, m, 3, n, qr, m, tau, c2, m)
	Dorm2r(true, m, 3, n, qr, m, tau, c2, m)
	for i := range c2 {
		if math.Abs(c2[i]-orig[i]) > 1e-11 {
			t.Fatalf("Q Q^T != I at %d", i)
		}
	}
}

func TestDgeqrtMatchesGeqrf(t *testing.T) {
	m, n := 12, 8
	a := randMat(m, n, 31)
	for _, ib := range []int{1, 2, 4, 8} {
		v := append([]float64(nil), a...)
		tmat := make([]float64, ib*n)
		tau := make([]float64, n)
		Dgeqrt(m, n, ib, v, m, tmat, ib, tau)
		ref := append([]float64(nil), a...)
		tauRef := make([]float64, n)
		Dgeqr2(m, n, ref, m, tauRef)
		for i := range v {
			if math.Abs(v[i]-ref[i]) > 1e-11 {
				t.Fatalf("ib=%d: geqrt factor differs from geqr2 at %d", ib, i)
			}
		}
		// Dgemqrt(Q^T) on A yields R.
		c := append([]float64(nil), a...)
		Dgemqrt(true, m, n, n, ib, v, m, tmat, ib, c, m)
		for j := 0; j < n; j++ {
			for i := j + 1; i < m; i++ {
				if math.Abs(c[i+j*m]) > 1e-10 {
					t.Errorf("ib=%d: below-diagonal residue %g at (%d,%d)", ib, c[i+j*m], i, j)
				}
			}
		}
		// Q then Q^T is identity.
		x := randMat(m, 2, 33)
		orig := append([]float64(nil), x...)
		Dgemqrt(false, m, 2, n, ib, v, m, tmat, ib, x, m)
		Dgemqrt(true, m, 2, n, ib, v, m, tmat, ib, x, m)
		for i := range x {
			if math.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("ib=%d: gemqrt roundtrip failed", ib)
			}
		}
	}
}

func TestDtpqrtFactorization(t *testing.T) {
	// Stack an upper-triangular R0 on a general B and verify the combined
	// factorization: [R0; B] = Q * [R; 0].
	n, m := 6, 9
	r0 := randMat(n, n, 41)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			r0[i+j*n] = 0
		}
		r0[j+j*n] += 4 // well-conditioned
	}
	b := randMat(m, n, 42)
	for _, ib := range []int{1, 2, 3, 6} {
		r := append([]float64(nil), r0...)
		v := append([]float64(nil), b...)
		tmat := make([]float64, ib*n)
		Dtpqrt(m, n, ib, r, n, v, m, tmat, ib)
		// Verify by applying Q to [R; 0]: must reproduce [R0; B].
		top := make([]float64, n*n)
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				top[i+j*n] = r[i+j*n]
			}
		}
		bot := make([]float64, m*n)
		Dtpmqrt(false, m, n, n, ib, v, m, tmat, ib, top, n, bot, m)
		for i := range top {
			if math.Abs(top[i]-r0[i]) > 1e-10 {
				t.Fatalf("ib=%d: top reconstruction error %g at %d", ib, math.Abs(top[i]-r0[i]), i)
			}
		}
		for i := range bot {
			if math.Abs(bot[i]-b[i]) > 1e-10 {
				t.Fatalf("ib=%d: bottom reconstruction error %g at %d", ib, math.Abs(bot[i]-b[i]), i)
			}
		}
	}
}

func TestDtpmqrtRoundTrip(t *testing.T) {
	n, m := 4, 7
	r0 := randMat(n, n, 51)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			r0[i+j*n] = 0
		}
		r0[j+j*n] += 3
	}
	b := randMat(m, n, 52)
	r := append([]float64(nil), r0...)
	v := append([]float64(nil), b...)
	tmat := make([]float64, 2*n)
	Dtpqrt(m, n, 2, r, n, v, m, tmat, 2)
	// Apply Q^T then Q to a random stacked pair: identity.
	topX := randMat(n, 3, 53)
	botX := randMat(m, 3, 54)
	topO := append([]float64(nil), topX...)
	botO := append([]float64(nil), botX...)
	Dtpmqrt(true, m, 3, n, 2, v, m, tmat, 2, topX, n, botX, m)
	Dtpmqrt(false, m, 3, n, 2, v, m, tmat, 2, topX, n, botX, m)
	for i := range topX {
		if math.Abs(topX[i]-topO[i]) > 1e-10 {
			t.Fatal("tpmqrt top roundtrip failed")
		}
	}
	for i := range botX {
		if math.Abs(botX[i]-botO[i]) > 1e-10 {
			t.Fatal("tpmqrt bottom roundtrip failed")
		}
	}
}

func TestDlarfgProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		n := 2 + r.Intn(10)
		alpha := 2*r.Float64() - 1
		x := make([]float64, n-1)
		for i := range x {
			x[i] = 2*r.Float64() - 1
		}
		full := append([]float64{alpha}, x...)
		normBefore := blas.Dnrm2(n, full, 1)
		xc := append([]float64(nil), x...)
		beta, tau := Dlarfg(n, alpha, xc, 1)
		// H preserves norm: |beta| == ||[alpha; x]||.
		if math.Abs(math.Abs(beta)-normBefore) > 1e-12*math.Max(1, normBefore) {
			return false
		}
		// tau in [0, 2] for real reflectors.
		return tau >= 0 && tau <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlopsFormulasPositive(t *testing.T) {
	cases := []struct {
		name string
		v    float64
	}{
		{"gemm", GemmFlops(4, 5, 6)},
		{"syrk", SyrkFlops(4, 5)},
		{"trsmL", TrsmFlops(true, 4, 5)},
		{"trsmR", TrsmFlops(false, 4, 5)},
		{"trmm", TrmmFlops(true, 4, 5)},
		{"potrf", PotrfFlops(4)},
		{"trtri", TrtriFlops(4)},
		{"getrf", GetrfFlops(6, 4)},
		{"getrfWide", GetrfFlops(4, 6)},
		{"geqrf", GeqrfFlops(6, 4)},
		{"ormqr", OrmqrFlops(6, 4, 3)},
		{"orgqr", OrgqrFlops(6, 4)},
		{"tpqrt", TpqrtFlops(6, 4)},
		{"tpmqrt", TpmqrtFlops(6, 4, 3)},
	}
	for _, c := range cases {
		if c.v <= 0 {
			t.Errorf("%s flops = %g, want positive", c.name, c.v)
		}
	}
	if GemmFlops(4, 5, 6) != 240 {
		t.Errorf("gemm flops = %g, want 240", GemmFlops(4, 5, 6))
	}
}
