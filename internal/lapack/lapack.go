// Package lapack implements the dense matrix factorization kernels the
// paper's case-study libraries invoke: Cholesky (potrf), triangular inverse
// (trtri), LU (getrf), blocked Householder QR (geqrf/geqrt and the
// application routines ormqr/gemqrt), and the triangular-pentagonal kernels
// (tpqrt/tpmqrt) used by tiled QR.
//
// Matrices are column-major with explicit leading dimensions, as in package
// blas. Routines panic on dimension errors and return an error only for
// numerical failures (non-positive-definite pivot, singular diagonal).
package lapack

import (
	"fmt"
	"math"

	"critter/internal/blas"
)

// ErrNotPD reports a non-positive-definite leading minor in Dpotrf.
type ErrNotPD struct{ Col int }

func (e ErrNotPD) Error() string {
	return fmt.Sprintf("lapack: matrix not positive definite at column %d", e.Col)
}

// ErrSingular reports an exactly zero pivot.
type ErrSingular struct{ Col int }

func (e ErrSingular) Error() string {
	return fmt.Sprintf("lapack: singular: zero pivot at column %d", e.Col)
}

// Dpotrf computes the lower-triangular Cholesky factor of the symmetric
// positive definite n-by-n matrix a in place (lower triangle referenced).
func Dpotrf(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		d := a[j+j*lda]
		for k := 0; k < j; k++ {
			d -= a[j+k*lda] * a[j+k*lda]
		}
		if d <= 0 {
			return ErrNotPD{Col: j}
		}
		d = math.Sqrt(d)
		a[j+j*lda] = d
		for i := j + 1; i < n; i++ {
			s := a[i+j*lda]
			for k := 0; k < j; k++ {
				s -= a[i+k*lda] * a[j+k*lda]
			}
			a[i+j*lda] = s / d
		}
	}
	return nil
}

// Dtrtri inverts the lower-triangular n-by-n matrix a in place (non-unit
// diagonal).
func Dtrtri(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		if a[j+j*lda] == 0 {
			return ErrSingular{Col: j}
		}
	}
	// Column j of the inverse solves L x = e_j by forward substitution.
	x := make([]float64, n)
	inv := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
		for i := j; i < n; i++ {
			s := x[i]
			for k := j; k < i; k++ {
				s -= a[i+k*lda] * x[k]
			}
			x[i] = s / a[i+i*lda]
		}
		copy(inv[j*n:j*n+n], x)
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			a[i+j*lda] = inv[i+j*n]
		}
	}
	return nil
}

// Dgetrf computes an LU factorization with partial pivoting of the m-by-n
// matrix a in place: P*A = L*U with L unit lower trapezoidal and U upper
// triangular. ipiv (length min(m,n)) records the row swapped with row i at
// step i.
func Dgetrf(m, n int, a []float64, lda int, ipiv []int) error {
	k := min(m, n)
	for j := 0; j < k; j++ {
		p := j + blas.Idamax(m-j, a[j+j*lda:], 1)
		ipiv[j] = p
		if a[p+j*lda] == 0 {
			return ErrSingular{Col: j}
		}
		if p != j {
			for c := 0; c < n; c++ {
				a[j+c*lda], a[p+c*lda] = a[p+c*lda], a[j+c*lda]
			}
		}
		piv := a[j+j*lda]
		for i := j + 1; i < m; i++ {
			a[i+j*lda] /= piv
		}
		if j+1 < m && j+1 < n {
			blas.Dger(m-j-1, n-j-1, -1,
				a[j+1+j*lda:], 1,
				a[j+(j+1)*lda:], lda,
				a[j+1+(j+1)*lda:], lda)
		}
	}
	return nil
}

// DgetrfNoPiv computes an LU factorization without pivoting; it is the
// kernel used by Householder reconstruction, where the matrix is known to
// admit an unpivoted factorization.
func DgetrfNoPiv(m, n int, a []float64, lda int) error {
	k := min(m, n)
	for j := 0; j < k; j++ {
		piv := a[j+j*lda]
		if piv == 0 {
			return ErrSingular{Col: j}
		}
		for i := j + 1; i < m; i++ {
			a[i+j*lda] /= piv
		}
		if j+1 < m && j+1 < n {
			blas.Dger(m-j-1, n-j-1, -1,
				a[j+1+j*lda:], 1,
				a[j+(j+1)*lda:], lda,
				a[j+1+(j+1)*lda:], lda)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
