package critter

import (
	"fmt"

	"critter/internal/channel"
	"critter/internal/mpi"
)

// kernelStats is the per-rank execution bookkeeping of one kernel signature
// (an entry of the set K in the paper's notation). The signature's duration
// model itself lives in the rank's Estimator.
type kernelStats struct {
	// perConfig counts executions of the kernel during the current
	// configuration; non-eager policies require at least one execution per
	// tuning iteration before skipping (Section VI-A).
	perConfig int64
	// coverage accumulates the aggregate channel over which this kernel's
	// statistics have been propagated (eager policy).
	coverage channel.Channel
	// propagated marks the kernel globally skippable under the eager
	// policy: its statistics have covered the full processor grid.
	propagated bool
}

// Options configures a Profiler.
type Options struct {
	// Policy selects the selective-execution method.
	Policy Policy
	// Eps is the confidence tolerance: a kernel is predictable when its
	// relative confidence interval falls below Eps. Eps <= 0 disables
	// selective execution entirely (full execution; the reference mode).
	Eps float64
	// AprioriFreq supplies fixed critical-path execution counts for the
	// APriori policy, measured on a preceding full execution.
	AprioriFreq map[Key]int64
	// Extrapolate enables kernel-model extrapolation across input sizes
	// (the line-fitting extension of Section VIII): a computation kernel
	// with an unseen or under-sampled signature may be skipped using a
	// least-squares fit over its routine family's (flops, mean) points.
	// Consulted only by the default estimator; a custom Estimator makes
	// its own extrapolation choice.
	Extrapolate bool
	// Estimator selects the prediction model; nil means the paper's
	// CI-mean estimator (NewCIMeanEstimator) with Extrapolate as
	// configured, which reproduces the hardwired pre-Estimator path
	// bit-for-bit. Each rank needs its own instance.
	Estimator Estimator
	// Prior warm-starts the estimator from a profile exported by an
	// earlier run (Profiler.ExportProfile / GlobalProfile). Ignored when
	// the estimator does not implement ProfileCarrier. The prior survives
	// StartConfig resets: every configuration starts from it.
	Prior *Profile
}

// Profiler is one rank's profiling state. Create one per rank with New,
// which also wraps the rank's world communicator. All ranks must construct
// their Profiler collectively (New performs communication).
type Profiler struct {
	opts  Options
	world *Comm
	rank  int
	psize int

	k    map[Key]*kernelStats
	path Pathset
	// localFreq counts kernel appearances on this rank during the current
	// configuration (the Local policy's frequency credit).
	localFreq map[Key]int64

	// aggregates is the registry of aggregate channels (Figure 2, lines
	// 16-25), keyed by hash, seeded with the world channel.
	aggregates map[uint64]channel.Channel

	// pathKernelTime attributes path time to kernels for the profiling
	// report (profile_report.go).
	pathKernelTime map[Key]float64

	// est is the rank's prediction model (estimator.go): kernel duration
	// estimates, predictability decisions, and extrapolation.
	est Estimator
	// archive accumulates profile exports across StartConfig resets, so
	// ExportProfile covers everything the run learned, not just the
	// current configuration.
	archive *Profile
	// extrapolatedSkips counts skips decided by family-model fits.
	extrapolatedSkips int64

	// Per-configuration accumulators.
	kernelTime     float64 // time spent actually executing selectable kernels
	compKernelTime float64 // same, computation kernels only
	volCommWords   float64 // local BSP communication (words)
	volSync        float64 // local BSP synchronization (messages)
	volFlops       float64 // local BSP computation (flops)
	executed       int64
	skipped        int64
}

// New creates the rank's profiler and wraps its world communicator. It is
// collective over world (an internal duplicate communicator is created for
// piggyback traffic).
func New(world *mpi.Comm, opts Options) (*Profiler, *Comm) {
	p := &Profiler{
		opts:       opts,
		rank:       world.Rank(),
		psize:      world.Size(),
		k:          make(map[Key]*kernelStats),
		localFreq:  make(map[Key]int64),
		aggregates: make(map[uint64]channel.Channel),
	}
	p.est = opts.Estimator
	if p.est == nil {
		p.est = NewCIMeanEstimator(opts.Extrapolate)
	}
	if opts.Prior != nil {
		if pc, ok := p.est.(ProfileCarrier); ok {
			pc.LoadPrior(opts.Prior)
		}
	}
	p.pathKernelTime = make(map[Key]float64)
	p.path.Kernels = make(map[Key]int64)
	ch, ok := channel.FromGroup(world.Group())
	if ok {
		p.aggregates[ch.Hash()] = ch
	}
	cc := &Comm{
		p:        p,
		user:     world,
		internal: world.Dup(),
		ch:       ch,
		chOK:     ok,
	}
	p.world = cc
	return p, cc
}

// Policy returns the active selective-execution policy.
func (p *Profiler) Policy() Policy { return p.opts.Policy }

// Eps returns the active confidence tolerance.
func (p *Profiler) Eps() float64 { return p.opts.Eps }

// Estimator returns the rank's prediction model.
func (p *Profiler) Estimator() Estimator { return p.est }

// World returns the wrapped world communicator.
func (p *Profiler) World() *Comm { return p.world }

// kernel returns (creating if absent) the stats entry for key.
func (p *Profiler) kernel(key Key) *kernelStats {
	ks, ok := p.k[key]
	if !ok {
		ks = &kernelStats{}
		p.k[key] = ks
	}
	return ks
}

// KernelCount returns the number of distinct kernel signatures profiled so
// far on this rank.
func (p *Profiler) KernelCount() int { return len(p.k) }

// Mean returns the modeled mean duration for key (0 if never sampled; a
// warm-started estimator answers from its prior before the first sample).
func (p *Profiler) Mean(key Key) float64 { return p.est.Estimate(key) }

// Samples returns the number of duration samples backing key's model.
func (p *Profiler) Samples(key Key) int64 { return p.est.Samples(key) }

// PathFreqs returns a copy of the rank's current path frequency table.
func (p *Profiler) PathFreqs() map[Key]int64 {
	out := make(map[Key]int64, len(p.path.Kernels))
	for k, v := range p.path.Kernels {
		out[k] = v
	}
	return out
}

// notePath records one appearance of key along the rank's execution path.
func (p *Profiler) notePath(key Key) {
	p.path.Kernels[key]++
	p.localFreq[key]++
}

// freqFor returns the execution-count credit the active policy grants when
// sizing key's confidence interval.
func (p *Profiler) freqFor(key Key) int64 {
	switch p.opts.Policy {
	case Local:
		return p.localFreq[key]
	case Online:
		return p.path.Kernels[key]
	case APriori:
		if f := p.opts.AprioriFreq[key]; f > 0 {
			return f
		}
	}
	return 1
}

// shouldExecute decides whether the kernel must actually run. For the eager
// policy the decision is the global propagation flag; for all other
// policies the kernel must have executed at least once this configuration
// and is skipped only when predictable at tolerance Eps under the policy's
// frequency credit.
func (p *Profiler) shouldExecute(key Key, ks *kernelStats) bool {
	if p.opts.Eps <= 0 {
		return true
	}
	if p.opts.Policy == Eager {
		return !ks.propagated
	}
	if ks.perConfig < 1 {
		return true
	}
	return !p.est.Predictable(key, p.opts.Eps, p.freqFor(key))
}

// record incorporates one measured duration for key: the estimator observes
// the sample and the per-configuration execution counters advance.
func (p *Profiler) record(key Key, ks *kernelStats, flops, dt float64) {
	p.est.Observe(key, flops, dt, p.opts.Eps)
	ks.perConfig++
	p.executed++
	p.kernelTime += dt
	if key.Kind == KindComp {
		p.compKernelTime += dt
	}
}

// snapshot captures the rank's pathset for an internal message. The
// frequency table is deep-copied only under policies that propagate counts.
func (p *Profiler) snapshot() Pathset {
	ps := p.path
	if p.opts.Policy == Online {
		ps = p.path.clone()
	} else {
		ps.Kernels = nil
	}
	return ps
}

// adopt installs the merged global pathset: metrics are already max-merged;
// the frequency table, when propagated, replaces the local one (the local
// path joins the global sub-critical path).
func (p *Profiler) adopt(g Pathset) {
	kernels := p.path.Kernels
	if g.Kernels != nil {
		kernels = make(map[Key]int64, len(g.Kernels))
		for k, v := range g.Kernels {
			kernels[k] = v
		}
	}
	p.path = Pathset{
		ExecTime: max(p.path.ExecTime, g.ExecTime),
		CompTime: max(p.path.CompTime, g.CompTime),
		CommTime: max(p.path.CommTime, g.CommTime),
		BSPComm:  max(p.path.BSPComm, g.BSPComm),
		BSPSync:  max(p.path.BSPSync, g.BSPSync),
		BSPComp:  max(p.path.BSPComp, g.BSPComp),
		Kernels:  kernels,
	}
}

// Kernel intercepts one computation kernel invocation: name and dims form
// the signature, flops drives the machine model, and run performs the
// actual numerics. When the kernel is deemed predictable, run is not called
// and the model mean is charged to the pathset instead of virtual time.
// It returns the duration charged to the path.
func (p *Profiler) Kernel(name string, d1, d2, d3, d4 int, flops float64, run func()) float64 {
	key := CompKey(name, d1, d2, d3, d4)
	ks := p.kernel(key)
	p.notePath(key)
	var dt float64
	exec := p.shouldExecute(key, ks)
	if exec && p.opts.Eps > 0 && flops > 0 {
		// Line-fitting extension: an under-sampled signature may still
		// be skipped when its routine family's fit is trustworthy.
		if est, ok := p.est.Extrapolate(key, flops, p.opts.Eps); ok &&
			!p.est.Predictable(key, p.opts.Eps, p.freqFor(key)) {
			exec = false
			dt = est
			p.extrapolatedSkips++
		}
	}
	if exec {
		dt = p.world.user.Compute(flops)
		run()
		p.record(key, ks, flops, dt)
	} else {
		if dt == 0 {
			dt = p.est.Estimate(key)
		}
		p.skipped++
	}
	p.path.ExecTime += dt
	p.path.CompTime += dt
	p.path.BSPComp += flops
	p.volFlops += flops
	p.pathKernelTime[key] += dt
	return dt
}

// StartConfig begins a new tuning configuration: the pathset, per-config
// counters, and volumetric accumulators are cleared, virtual clocks are
// reset collectively, and — when resetStats is true — all kernel models are
// discarded (the paper resets statistics between configurations of SLATE's
// and CANDMC's algorithms; eager propagation keeps its models to reuse them
// across configurations). Collective over the world communicator.
func (p *Profiler) StartConfig(resetStats bool) {
	p.world.internal.GatherAnyUntimed(nil) // align ranks before resetting clocks
	p.world.user.ResetClock()
	p.archivePathFreqs()
	p.path = Pathset{Kernels: make(map[Key]int64)}
	p.localFreq = make(map[Key]int64)
	p.pathKernelTime = make(map[Key]float64)
	p.kernelTime, p.compKernelTime = 0, 0
	p.volCommWords, p.volSync, p.volFlops = 0, 0, 0
	p.executed, p.skipped = 0, 0
	if resetStats && p.opts.Policy != Eager {
		// Archive what the estimator learned before wiping it, so the
		// run's exported profile spans every configuration. (Without a
		// reset the live estimator state persists and is merged at export
		// time instead — archiving it here would double-count samples.)
		p.archiveEstimator()
		p.k = make(map[Key]*kernelStats)
		p.est.Reset()
		p.extrapolatedSkips = 0
	} else {
		for _, ks := range p.k {
			ks.perConfig = 0
		}
	}
}

// SetEps changes the confidence tolerance (used by sweeps reusing one
// profiler).
func (p *Profiler) SetEps(eps float64) { p.opts.Eps = eps }

// SetPolicy changes the selective-execution policy (used by the a-priori
// method, whose offline pass runs under online propagation).
func (p *Profiler) SetPolicy(pol Policy) { p.opts.Policy = pol }

// ExtrapolatedSkips returns how many kernel invocations were skipped via
// family-model extrapolation rather than their own signature's model.
func (p *Profiler) ExtrapolatedSkips() int64 { return p.extrapolatedSkips }

// SetAprioriFreq installs the critical-path counts for the APriori policy.
func (p *Profiler) SetAprioriFreq(f map[Key]int64) { p.opts.AprioriFreq = f }

// Report summarizes the configuration run. Collective over the world
// communicator: critical-path metrics and kernel-time maxima reduce with
// max, volumetric metrics average over ranks.
type Report struct {
	Predicted     float64 // predicted execution time (max rank pathset)
	PredictedComp float64 // predicted critical-path computation time
	PredictedComm float64 // predicted critical-path communication time
	Wall          float64 // actual virtual time consumed (max rank clock)
	BSPCommCrit   float64 // critical-path BSP communication (words)
	BSPSyncCrit   float64 // critical-path BSP synchronization (messages)
	BSPCompCrit   float64 // critical-path BSP computation (flops)
	BSPCommVol    float64 // volumetric-average BSP communication
	BSPSyncVol    float64 // volumetric-average BSP synchronization
	BSPCompVol    float64 // volumetric-average BSP computation
	KernelTime    float64 // max over ranks: time executing selectable kernels
	CompKernel    float64 // max over ranks: time executing compute kernels
	Executed      int64   // total kernel executions across ranks
	Skipped       int64   // total kernel skips across ranks
}

// Report gathers the configuration summary; collective over world.
func (p *Profiler) Report() Report {
	in := []float64{
		p.path.ExecTime, p.path.CompTime, p.path.CommTime,
		p.path.BSPComm, p.path.BSPSync, p.path.BSPComp,
		p.world.user.Clock(), p.kernelTime, p.compKernelTime,
	}
	maxes := make([]float64, len(in))
	p.world.internal.AllreduceUntimed(in, maxes, mpi.OpMax)
	sums := make([]float64, 5)
	p.world.internal.AllreduceUntimed([]float64{
		p.volCommWords, p.volSync, p.volFlops,
		float64(p.executed), float64(p.skipped),
	}, sums, mpi.OpSum)
	fp := float64(p.psize)
	return Report{
		Predicted:     maxes[0],
		PredictedComp: maxes[1],
		PredictedComm: maxes[2],
		BSPCommCrit:   maxes[3],
		BSPSyncCrit:   maxes[4],
		BSPCompCrit:   maxes[5],
		Wall:          maxes[6],
		KernelTime:    maxes[7],
		CompKernel:    maxes[8],
		BSPCommVol:    sums[0] / fp,
		BSPSyncVol:    sums[1] / fp,
		BSPCompVol:    sums[2] / fp,
		Executed:      int64(sums[3]),
		Skipped:       int64(sums[4]),
	}
}

// GlobalPathFreqs merges the final path frequency tables across ranks,
// returning the table of the rank with the maximal predicted execution time
// (the configuration's critical path). Collective over world. Used to seed
// the APriori policy.
func (p *Profiler) GlobalPathFreqs() map[Key]int64 {
	snap := p.path.clone()
	g := p.world.internal.AllreduceAny(intMsg{Path: snap}, mergeIntMsg).(intMsg)
	out := make(map[Key]int64, len(g.Path.Kernels))
	for k, v := range g.Path.Kernels {
		out[k] = v
	}
	return out
}

// archivePathFreqs max-merges the configuration's path frequency table into
// the archive before StartConfig resets the pathset.
func (p *Profiler) archivePathFreqs() {
	if len(p.path.Kernels) == 0 {
		return
	}
	if p.archive == nil {
		p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	if p.archive.PathFreqs == nil {
		p.archive.PathFreqs = make(map[Key]int64, len(p.path.Kernels))
	}
	for k, v := range p.path.Kernels {
		p.archive.PathFreqs[k] = max(p.archive.PathFreqs[k], v)
	}
}

// archiveEstimator merges the estimator's current export into the archive;
// called only when the estimator is about to be reset, so no sample is ever
// archived twice.
func (p *Profiler) archiveEstimator() {
	pc, ok := p.est.(ProfileCarrier)
	if !ok {
		return
	}
	exp := pc.ExportProfile()
	if exp == nil || (len(exp.Kernels) == 0 && len(exp.Families) == 0) {
		return
	}
	if p.archive == nil {
		p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	p.archive.Merge(exp)
}

// ExportProfile returns this rank's learned profile: everything archived
// across configuration resets, the live estimator state, and the path
// frequencies seen so far. Samples loaded from Options.Prior are excluded,
// so chaining runs via MergeProfiles never counts a sample twice. Returns
// an empty (but non-nil) profile when the estimator does not implement
// ProfileCarrier.
func (p *Profiler) ExportProfile() *Profile {
	out := p.archive.Clone()
	if out == nil {
		out = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	if pc, ok := p.est.(ProfileCarrier); ok {
		out.Merge(pc.ExportProfile())
	}
	if out.Estimator == "" {
		out.Estimator = p.est.Name()
	}
	if len(p.path.Kernels) > 0 && out.PathFreqs == nil {
		out.PathFreqs = make(map[Key]int64, len(p.path.Kernels))
	}
	for k, v := range p.path.Kernels {
		out.PathFreqs[k] = max(out.PathFreqs[k], v)
	}
	return out
}

// GlobalProfile merges every rank's exported profile into one artifact,
// identical on every rank. Collective over the world communicator; the
// result must be treated as read-only (it is shared across ranks).
func (p *Profiler) GlobalProfile() *Profile {
	g := p.world.internal.AllreduceAny(p.ExportProfile(), func(a, b any) any {
		return mergeProfilesSameRun(a.(*Profile), b.(*Profile))
	})
	return g.(*Profile)
}

// registerChannel records a newly created communicator's channel and
// recursively builds aggregate channels (Figure 2, MPI_Comm_split).
func (p *Profiler) registerChannel(ch channel.Channel) {
	if _, ok := p.aggregates[ch.Hash()]; ok {
		return
	}
	p.aggregates[ch.Hash()] = ch
	// Combine with every known aggregate to grow the basis.
	for {
		grew := false
		for _, agg := range p.aggregates {
			comb, ok := channel.Combine(agg, ch)
			if !ok || agg.Contains(ch) {
				continue
			}
			h := comb.Hash()
			if _, exists := p.aggregates[h]; !exists {
				p.aggregates[h] = comb
				grew = true
			}
		}
		if !grew {
			break
		}
	}
}

// Aggregates returns the number of registered aggregate channels.
func (p *Profiler) Aggregates() int { return len(p.aggregates) }

// HasFullGridAggregate reports whether some registered aggregate spans the
// entire world as a cartesian basis.
func (p *Profiler) HasFullGridAggregate() bool {
	for _, agg := range p.aggregates {
		if agg.CoversWorld(p.psize) {
			return true
		}
	}
	return false
}

func (p *Profiler) String() string {
	return fmt.Sprintf("critter.Profiler{rank=%d, policy=%s, eps=%g, kernels=%d}",
		p.rank, p.opts.Policy, p.opts.Eps, len(p.k))
}
