package critter

import (
	"fmt"

	"critter/internal/channel"
	"critter/internal/mpi"
	"critter/internal/obs"
)

// kernelStats is the per-rank execution bookkeeping of one kernel signature
// (an entry of the set K in the paper's notation), stored densely by
// KernelTable id. The signature's duration model itself lives in the rank's
// Estimator.
type kernelStats struct {
	// seen marks the slot as belonging to a signature this rank has
	// actually profiled (dense storage leaves holes for ids interned only
	// by other ranks).
	seen bool
	// propagated marks the kernel globally skippable under the eager
	// policy: its statistics have covered the full processor grid.
	propagated bool
	// perConfig counts executions of the kernel during the current
	// configuration; non-eager policies require at least one execution per
	// tuning iteration before skipping (Section VI-A).
	perConfig int64
	// coverage accumulates the aggregate channel over which this kernel's
	// statistics have been propagated (eager policy).
	coverage channel.Channel
}

// Options configures a Profiler.
type Options struct {
	// Policy selects the selective-execution method.
	Policy Policy
	// Eps is the confidence tolerance: a kernel is predictable when its
	// relative confidence interval falls below Eps. Eps <= 0 disables
	// selective execution entirely (full execution; the reference mode).
	Eps float64
	// AprioriFreq supplies fixed critical-path execution counts for the
	// APriori policy, measured on a preceding full execution.
	AprioriFreq map[Key]int64
	// Extrapolate enables kernel-model extrapolation across input sizes
	// (the line-fitting extension of Section VIII): a computation kernel
	// with an unseen or under-sampled signature may be skipped using a
	// least-squares fit over its routine family's (flops, mean) points.
	// Consulted only by the default estimator; a custom Estimator makes
	// its own extrapolation choice.
	Extrapolate bool
	// Estimator selects the prediction model; nil means the paper's
	// CI-mean estimator (NewCIMeanEstimator) with Extrapolate as
	// configured, which reproduces the hardwired pre-Estimator path
	// bit-for-bit. Each rank needs its own instance.
	Estimator Estimator
	// Prior warm-starts the estimator from a profile exported by an
	// earlier run (Profiler.ExportProfile / GlobalProfile). Ignored when
	// the estimator does not implement ProfileCarrier. The prior survives
	// StartConfig resets: every configuration starts from it.
	Prior *Profile
}

// Profiler is one rank's profiling state. Create one per rank with New,
// which also wraps the rank's world communicator. All ranks must construct
// their Profiler collectively (New performs communication).
//
// Kernel signatures are interned into dense ids through a KernelTable
// shared by every rank of the world, so the per-invocation bookkeeping
// (stats, path frequencies, local counts, path attribution) lives in flat
// arrays instead of maps and pathsets propagate between ranks without
// copying. Keys reappear only at the boundaries: the Estimator, profile
// exports, and reports.
type Profiler struct {
	opts  Options
	world *Comm
	rank  int
	psize int

	// tab is the world-shared signature interner; idOf and keys are this
	// rank's private caches of it (idOf avoids the table's lock on the
	// steady-state path, keys resolves ids this rank interned itself).
	tab  *KernelTable
	idOf map[Key]uint32
	keys []Key
	// lastKey/lastID short-circuit intern for back-to-back invocations of
	// the same kernel signature (the common case inside factorization
	// loops), skipping the idOf hash.
	lastKey   Key
	lastID    uint32
	lastValid bool

	// k is the dense per-signature bookkeeping, indexed by kernel id;
	// touched counts the seen entries (KernelCount).
	k       []kernelStats
	touched int
	path    Pathset
	// localFreq counts kernel appearances on this rank during the current
	// configuration (the Local policy's frequency credit), densely by id.
	localFreq []int64

	// aggregates is the registry of aggregate channels (Figure 2, lines
	// 16-25), keyed by hash, seeded with the world channel.
	aggregates map[uint64]channel.Channel

	// pathKernelTime attributes path time to kernels for the profiling
	// report (profile_report.go), densely by id; an id is on this rank's
	// path this configuration iff localFreq[id] > 0.
	pathKernelTime []float64

	// lane is the pre-resolved typed-message lane the piggyback protocol
	// runs on (one fabric lookup at construction instead of per message).
	lane mpi.Lane[intMsg]

	// est is the rank's prediction model (estimator.go): kernel duration
	// estimates, predictability decisions, and extrapolation.
	est Estimator
	// archive accumulates profile exports across StartConfig resets, so
	// ExportProfile covers everything the run learned, not just the
	// current configuration.
	archive *Profile
	// extrapolatedSkips counts skips decided by family-model fits.
	extrapolatedSkips int64

	// trace receives kernel-propagation round events. It is non-nil only
	// on rank 0 of a world with an installed tracer (see World.SetTracer),
	// so the stream is deterministic and the disabled path is one branch.
	trace obs.Tracer

	// Per-configuration accumulators.
	kernelTime     float64 // time spent actually executing selectable kernels
	compKernelTime float64 // same, computation kernels only
	volCommWords   float64 // local BSP communication (words)
	volSync        float64 // local BSP synchronization (messages)
	volFlops       float64 // local BSP computation (flops)
	executed       int64
	skipped        int64
}

// New creates the rank's profiler and wraps its world communicator. It is
// collective over world: an internal duplicate communicator is created for
// piggyback traffic, and rank 0's KernelTable is adopted by every rank.
func New(world *mpi.Comm, opts Options) (*Profiler, *Comm) {
	p := &Profiler{
		opts:       opts,
		rank:       world.Rank(),
		psize:      world.Size(),
		idOf:       make(map[Key]uint32),
		aggregates: make(map[uint64]channel.Channel),
	}
	p.est = opts.Estimator
	if p.est == nil {
		p.est = NewCIMeanEstimator(opts.Extrapolate)
	}
	if opts.Prior != nil {
		if pc, ok := p.est.(ProfileCarrier); ok {
			pc.LoadPrior(opts.Prior)
		}
	}
	ch, ok := channel.FromGroup(world.Group())
	if ok {
		p.aggregates[ch.Hash()] = ch
	}
	internal := world.Dup()
	// Adopt one shared signature interner per world: rank 0 creates it,
	// the gather (untimed, clock-neutral at construction) hands it to all.
	var mine *KernelTable
	if p.rank == 0 {
		mine = NewKernelTable()
	}
	tabs := mpi.GatherMsgUntimed(internal, mine)
	p.tab = tabs[0]
	p.lane = mpi.LaneOf[intMsg](world.World())
	if p.rank == 0 {
		p.trace = world.World().TracerOf()
	}
	cc := &Comm{
		p:        p,
		user:     world,
		internal: internal,
		ch:       ch,
		chOK:     ok,
	}
	p.world = cc
	return p, cc
}

// Policy returns the active selective-execution policy.
func (p *Profiler) Policy() Policy { return p.opts.Policy }

// Eps returns the active confidence tolerance.
func (p *Profiler) Eps() float64 { return p.opts.Eps }

// Estimator returns the rank's prediction model.
func (p *Profiler) Estimator() Estimator { return p.est }

// World returns the wrapped world communicator.
func (p *Profiler) World() *Comm { return p.world }

// Table returns the world-shared kernel-signature interner.
func (p *Profiler) Table() *KernelTable { return p.tab }

// intern resolves key's dense id through the rank-local cache, hitting the
// shared table only on first sight.
func (p *Profiler) intern(key Key) uint32 {
	if p.lastValid && key == p.lastKey {
		return p.lastID
	}
	if id, ok := p.idOf[key]; ok {
		p.lastKey, p.lastID, p.lastValid = key, id, true
		return id
	}
	id := p.tab.Intern(key)
	p.idOf[key] = id
	if n := int(id) + 1; n > len(p.keys) {
		if n <= cap(p.keys) {
			p.keys = p.keys[:n]
		} else {
			keys := make([]Key, n, growCap(n, cap(p.keys)))
			copy(keys, p.keys)
			p.keys = keys
		}
	}
	p.keys[id] = key
	p.lastKey, p.lastID, p.lastValid = key, id, true
	return id
}

// growCap sizes a dense per-id table that must hold n entries: double the
// outgrown capacity c, bounded below by n (and a small floor).
func growCap(n, c int) int {
	c *= 2
	if c < n {
		c = n
	}
	if c < 16 {
		c = 16
	}
	return c
}

// ensure grows the dense per-id bookkeeping tables to cover id.
func (p *Profiler) ensure(id uint32) {
	n := int(id) + 1
	if n <= len(p.k) {
		return
	}
	if n <= cap(p.k) {
		// Backing arrays are allocated zeroed and cleared in place on
		// reset, so extending within capacity exposes zero slots.
		p.k = p.k[:n]
		p.localFreq = p.localFreq[:n]
		p.pathKernelTime = p.pathKernelTime[:n]
		return
	}
	c := growCap(n, cap(p.k))
	k := make([]kernelStats, n, c)
	copy(k, p.k)
	p.k = k
	lf := make([]int64, n, c)
	copy(lf, p.localFreq)
	p.localFreq = lf
	pkt := make([]float64, n, c)
	copy(pkt, p.pathKernelTime)
	p.pathKernelTime = pkt
}

// stats returns the bookkeeping slot for kernel id, marking it profiled.
// The pointer is invalidated by the next ensure/stats call that grows the
// tables; take all needed slots after a single ensure when holding two.
func (p *Profiler) stats(id uint32) *kernelStats {
	p.ensure(id)
	ks := &p.k[id]
	if !ks.seen {
		ks.seen = true
		p.touched++
	}
	return ks
}

// KernelCount returns the number of distinct kernel signatures profiled so
// far on this rank.
func (p *Profiler) KernelCount() int { return p.touched }

// Mean returns the modeled mean duration for key (0 if never sampled; a
// warm-started estimator answers from its prior before the first sample).
func (p *Profiler) Mean(key Key) float64 { return p.est.Estimate(key) }

// Samples returns the number of duration samples backing key's model.
func (p *Profiler) Samples(key Key) int64 { return p.est.Samples(key) }

// pathFreqMap rekeys a dense frequency table by Key for the map-facing
// boundaries. Ids may have been interned by any rank, so the shared table
// resolves them.
func (p *Profiler) pathFreqMap(kc kernelCounts) map[Key]int64 {
	out := make(map[Key]int64)
	for id, v := range kc.vals {
		if v != 0 {
			out[p.tab.KeyOf(uint32(id))] = v
		}
	}
	return out
}

// PathFreqs returns a copy of the rank's current path frequency table.
func (p *Profiler) PathFreqs() map[Key]int64 {
	return p.pathFreqMap(p.path.Kernels)
}

// notePath records one appearance of kernel id along the rank's execution
// path. The caller has interned id on this rank (stats), so localFreq
// covers it.
func (p *Profiler) notePath(id uint32) {
	p.path.Kernels.incr(id)
	p.localFreq[id]++
}

// freqFor returns the execution-count credit the active policy grants when
// sizing key's confidence interval.
func (p *Profiler) freqFor(key Key, id uint32) int64 {
	switch p.opts.Policy {
	case Local:
		return p.localFreq[id]
	case Online:
		return p.path.Kernels.get(id)
	case APriori:
		if f := p.opts.AprioriFreq[key]; f > 0 {
			return f
		}
	}
	return 1
}

// shouldExecute decides whether the kernel must actually run. For the eager
// policy the decision is the global propagation flag; for all other
// policies the kernel must have executed at least once this configuration
// and is skipped only when predictable at tolerance Eps under the policy's
// frequency credit.
func (p *Profiler) shouldExecute(key Key, id uint32, ks *kernelStats) bool {
	if p.opts.Eps <= 0 {
		return true
	}
	if p.opts.Policy == Eager {
		return !ks.propagated
	}
	if ks.perConfig < 1 {
		return true
	}
	return !p.est.Predictable(key, p.opts.Eps, p.freqFor(key, id))
}

// record incorporates one measured duration for key: the estimator observes
// the sample and the per-configuration execution counters advance.
func (p *Profiler) record(key Key, ks *kernelStats, flops, dt float64) {
	p.est.Observe(key, flops, dt, p.opts.Eps)
	ks.perConfig++
	p.executed++
	p.kernelTime += dt
	if key.Kind == KindComp {
		p.compKernelTime += dt
	}
}

// snapshot captures the rank's pathset for an internal message. Under
// policies that propagate counts the frequency table is frozen in place
// (copy-on-write; no copy is taken), otherwise the message carries none.
func (p *Profiler) snapshot() Pathset {
	ps := p.path
	if p.opts.Policy == Online {
		ps.Kernels = p.path.Kernels.freeze()
	} else {
		ps.Kernels = kernelCounts{}
	}
	return ps
}

// adopt installs the merged global pathset: metrics are already max-merged;
// the frequency table, when propagated, replaces the local one wholesale
// (the local path joins the global sub-critical path). The adopted table
// stays frozen — other ranks alias it — and is copied lazily by the next
// local count.
func (p *Profiler) adopt(g Pathset) {
	kernels := p.path.Kernels
	if g.Kernels.active() {
		kernels = g.Kernels
		kernels.shared = true
	}
	p.path = Pathset{
		ExecTime: max(p.path.ExecTime, g.ExecTime),
		CompTime: max(p.path.CompTime, g.CompTime),
		CommTime: max(p.path.CommTime, g.CommTime),
		BSPComm:  max(p.path.BSPComm, g.BSPComm),
		BSPSync:  max(p.path.BSPSync, g.BSPSync),
		BSPComp:  max(p.path.BSPComp, g.BSPComp),
		Kernels:  kernels,
	}
}

// Kernel intercepts one computation kernel invocation: name and dims form
// the signature, flops drives the machine model, and run performs the
// actual numerics. When the kernel is deemed predictable, run is not called
// and the model mean is charged to the pathset instead of virtual time.
// It returns the duration charged to the path.
func (p *Profiler) Kernel(name string, d1, d2, d3, d4 int, flops float64, run func()) float64 {
	key := CompKey(name, d1, d2, d3, d4)
	id := p.intern(key)
	ks := p.stats(id)
	p.notePath(id)
	var dt float64
	exec := p.shouldExecute(key, id, ks)
	if exec && p.opts.Eps > 0 && flops > 0 {
		// Line-fitting extension: an under-sampled signature may still
		// be skipped when its routine family's fit is trustworthy.
		if est, ok := p.est.Extrapolate(key, flops, p.opts.Eps); ok &&
			!p.est.Predictable(key, p.opts.Eps, p.freqFor(key, id)) {
			exec = false
			dt = est
			p.extrapolatedSkips++
		}
	}
	if exec {
		dt = p.world.user.Compute(flops)
		run()
		p.record(key, ks, flops, dt)
	} else {
		if dt == 0 {
			dt = p.est.Estimate(key)
		}
		p.skipped++
	}
	p.path.ExecTime += dt
	p.path.CompTime += dt
	p.path.BSPComp += flops
	p.volFlops += flops
	p.pathKernelTime[id] += dt
	return dt
}

// StartConfig begins a new tuning configuration: the pathset, per-config
// counters, and volumetric accumulators are cleared, virtual clocks are
// reset collectively, and — when resetStats is true — all kernel models are
// discarded (the paper resets statistics between configurations of SLATE's
// and CANDMC's algorithms; eager propagation keeps its models to reuse them
// across configurations). Collective over the world communicator.
//
// The dense per-id tables are cleared in place, so the steady state across
// configurations allocates nothing.
func (p *Profiler) StartConfig(resetStats bool) {
	resetIDs := resetStats && p.opts.Policy != Eager
	// Align ranks before resetting clocks; when the per-id bookkeeping is
	// about to be discarded anyway, the same round distributes a fresh
	// shared interner, so dense ids stay as compact as the configuration's
	// active kernel set instead of accumulating across configurations
	// (every copy-on-write snapshot copy is sized by the id high-water
	// mark).
	var freshTab *KernelTable
	if resetIDs && p.rank == 0 {
		freshTab = NewKernelTable()
	}
	tabs := mpi.GatherMsgUntimed(p.world.internal, freshTab)
	p.world.user.ResetClock()
	p.archivePathFreqs() // resolves ids through the outgoing table
	p.kernelTime, p.compKernelTime = 0, 0
	p.volCommWords, p.volSync, p.volFlops = 0, 0, 0
	p.executed, p.skipped = 0, 0
	if resetIDs {
		// Archive what the estimator learned before wiping it, so the
		// run's exported profile spans every configuration. (Without a
		// reset the live estimator state persists and is merged at export
		// time instead — archiving it here would double-count samples.)
		p.archiveEstimator()
		p.est.Reset()
		p.extrapolatedSkips = 0
		// Adopt the fresh interner and empty the per-id tables down to
		// zero length (capacity kept) so they regrow to the new, compact
		// id range.
		p.tab = tabs[0]
		clear(p.idOf)
		p.lastValid = false
		clear(p.keys)
		p.keys = p.keys[:0]
		clear(p.k)
		p.k = p.k[:0]
		p.touched = 0
		clear(p.localFreq)
		p.localFreq = p.localFreq[:0]
		clear(p.pathKernelTime)
		p.pathKernelTime = p.pathKernelTime[:0]
		kc := p.path.Kernels
		kc.reset()
		p.path = Pathset{Kernels: kernelCounts{vals: kc.vals[:0]}}
		return
	}
	kc := p.path.Kernels
	kc.reset()
	p.path = Pathset{Kernels: kc}
	clear(p.localFreq)
	clear(p.pathKernelTime)
	for i := range p.k {
		p.k[i].perConfig = 0
	}
}

// SetEps changes the confidence tolerance (used by sweeps reusing one
// profiler).
func (p *Profiler) SetEps(eps float64) { p.opts.Eps = eps }

// SetPolicy changes the selective-execution policy (used by the a-priori
// method, whose offline pass runs under online propagation).
func (p *Profiler) SetPolicy(pol Policy) { p.opts.Policy = pol }

// ExtrapolatedSkips returns how many kernel invocations were skipped via
// family-model extrapolation rather than their own signature's model.
func (p *Profiler) ExtrapolatedSkips() int64 { return p.extrapolatedSkips }

// SetAprioriFreq installs the critical-path counts for the APriori policy.
func (p *Profiler) SetAprioriFreq(f map[Key]int64) { p.opts.AprioriFreq = f }

// Report summarizes the configuration run. Collective over the world
// communicator: critical-path metrics and kernel-time maxima reduce with
// max, volumetric metrics average over ranks.
type Report struct {
	Predicted     float64 // predicted execution time (max rank pathset)
	PredictedComp float64 // predicted critical-path computation time
	PredictedComm float64 // predicted critical-path communication time
	Wall          float64 // actual virtual time consumed (max rank clock)
	BSPCommCrit   float64 // critical-path BSP communication (words)
	BSPSyncCrit   float64 // critical-path BSP synchronization (messages)
	BSPCompCrit   float64 // critical-path BSP computation (flops)
	BSPCommVol    float64 // volumetric-average BSP communication
	BSPSyncVol    float64 // volumetric-average BSP synchronization
	BSPCompVol    float64 // volumetric-average BSP computation
	KernelTime    float64 // max over ranks: time executing selectable kernels
	CompKernel    float64 // max over ranks: time executing compute kernels
	Executed      int64   // total kernel executions across ranks
	Skipped       int64   // total kernel skips across ranks
}

// reportMsg carries one rank's report contributions through the single
// fused reduction round: maxes reduce elementwise by max, sums by +.
type reportMsg struct {
	maxes [9]float64
	sums  [5]float64
}

// mergeReport folds report contributions in comm-rank order — elementwise
// max and left-to-right sums, the exact fold the former pair of untimed
// allreduces performed.
func mergeReport(a, b reportMsg) reportMsg {
	for i := range a.maxes {
		a.maxes[i] = max(a.maxes[i], b.maxes[i])
	}
	for i := range a.sums {
		a.sums[i] += b.sums[i]
	}
	return a
}

// Report gathers the configuration summary; collective over world. The max
// and sum reductions share one untimed round (clock- and noise-neutral:
// untimed rounds advance every rank to the same entry maximum and draw no
// randomness, so fusing them leaves virtual time bit-identical).
func (p *Profiler) Report() Report {
	local := reportMsg{
		maxes: [9]float64{
			p.path.ExecTime, p.path.CompTime, p.path.CommTime,
			p.path.BSPComm, p.path.BSPSync, p.path.BSPComp,
			p.world.user.Clock(), p.kernelTime, p.compKernelTime,
		},
		sums: [5]float64{
			p.volCommWords, p.volSync, p.volFlops,
			float64(p.executed), float64(p.skipped),
		},
	}
	g := mpi.AllreduceMsg(p.world.internal, local, mergeReport)
	maxes, sums := g.maxes, g.sums
	fp := float64(p.psize)
	return Report{
		Predicted:     maxes[0],
		PredictedComp: maxes[1],
		PredictedComm: maxes[2],
		BSPCommCrit:   maxes[3],
		BSPSyncCrit:   maxes[4],
		BSPCompCrit:   maxes[5],
		Wall:          maxes[6],
		KernelTime:    maxes[7],
		CompKernel:    maxes[8],
		BSPCommVol:    sums[0] / fp,
		BSPSyncVol:    sums[1] / fp,
		BSPCompVol:    sums[2] / fp,
		Executed:      int64(sums[3]),
		Skipped:       int64(sums[4]),
	}
}

// GlobalPathFreqs merges the final path frequency tables across ranks,
// returning the table of the rank with the maximal predicted execution time
// (the configuration's critical path). Collective over world. Used to seed
// the APriori policy.
func (p *Profiler) GlobalPathFreqs() map[Key]int64 {
	ps := p.path
	ps.Kernels = p.path.Kernels.freeze()
	g := p.lane.Allreduce(p.world.internal, intMsg{Path: ps}, mergeIntMsg)
	return p.pathFreqMap(g.Path.Kernels)
}

// archivePathFreqs max-merges the configuration's path frequency table into
// the archive before StartConfig resets the pathset.
func (p *Profiler) archivePathFreqs() {
	freqs := p.path.Kernels
	if !freqs.active() {
		return
	}
	archived := false
	for id, v := range freqs.vals {
		if v == 0 {
			continue
		}
		if !archived {
			archived = true
			if p.archive == nil {
				p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
			}
			if p.archive.PathFreqs == nil {
				p.archive.PathFreqs = make(map[Key]int64)
			}
		}
		key := p.tab.KeyOf(uint32(id))
		p.archive.PathFreqs[key] = max(p.archive.PathFreqs[key], v)
	}
}

// archiveEstimator merges the estimator's current export into the archive;
// called only when the estimator is about to be reset, so no sample is ever
// archived twice. Estimators implementing profileArchiver (the built-in
// one) merge directly into the archive, skipping the intermediate export
// profile this would otherwise build every configuration.
func (p *Profiler) archiveEstimator() {
	if a, ok := p.est.(profileArchiver); ok {
		if !a.hasLiveState() {
			return
		}
		if p.archive == nil {
			p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
		}
		a.archiveInto(p.archive)
		if p.archive.Estimator == "" {
			p.archive.Estimator = p.est.Name()
		}
		return
	}
	pc, ok := p.est.(ProfileCarrier)
	if !ok {
		return
	}
	exp := pc.ExportProfile()
	if exp == nil || (len(exp.Kernels) == 0 && len(exp.Families) == 0) {
		return
	}
	if p.archive == nil {
		p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	p.archive.Merge(exp)
}

// ExportProfile returns this rank's learned profile: everything archived
// across configuration resets, the live estimator state, and the path
// frequencies seen so far. Samples loaded from Options.Prior are excluded,
// so chaining runs via MergeProfiles never counts a sample twice. Returns
// an empty (but non-nil) profile when the estimator does not implement
// ProfileCarrier.
func (p *Profiler) ExportProfile() *Profile {
	out := p.archive.Clone()
	if out == nil {
		out = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	if pc, ok := p.est.(ProfileCarrier); ok {
		out.Merge(pc.ExportProfile())
	}
	if out.Estimator == "" {
		out.Estimator = p.est.Name()
	}
	for id, v := range p.path.Kernels.vals {
		if v == 0 {
			continue
		}
		if out.PathFreqs == nil {
			out.PathFreqs = make(map[Key]int64)
		}
		key := p.tab.KeyOf(uint32(id))
		out.PathFreqs[key] = max(out.PathFreqs[key], v)
	}
	return out
}

// GlobalProfile merges every rank's exported profile into one artifact,
// identical on every rank. Collective over the world communicator. Each
// rank folds the gathered exports itself — one clone then in-place merges,
// instead of a clone per fold step — in comm-rank order, so every rank
// computes the identical artifact.
func (p *Profiler) GlobalProfile() *Profile {
	profs := mpi.GatherMsgUntimed(p.world.internal, p.ExportProfile())
	out := profs[0].Clone()
	if out == nil {
		out = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	for _, o := range profs[1:] {
		out.merge(o, true)
	}
	return out
}

// registerChannel records a newly created communicator's channel and
// recursively builds aggregate channels (Figure 2, MPI_Comm_split).
func (p *Profiler) registerChannel(ch channel.Channel) {
	if _, ok := p.aggregates[ch.Hash()]; ok {
		return
	}
	p.aggregates[ch.Hash()] = ch
	// Combine with every known aggregate to grow the basis.
	for {
		grew := false
		for _, agg := range p.aggregates {
			comb, ok := channel.Combine(agg, ch)
			if !ok || agg.Contains(ch) {
				continue
			}
			h := comb.Hash()
			if _, exists := p.aggregates[h]; !exists {
				p.aggregates[h] = comb
				grew = true
			}
		}
		if !grew {
			break
		}
	}
}

// Aggregates returns the number of registered aggregate channels.
func (p *Profiler) Aggregates() int { return len(p.aggregates) }

// HasFullGridAggregate reports whether some registered aggregate spans the
// entire world as a cartesian basis.
func (p *Profiler) HasFullGridAggregate() bool {
	for _, agg := range p.aggregates {
		if agg.CoversWorld(p.psize) {
			return true
		}
	}
	return false
}

func (p *Profiler) String() string {
	return fmt.Sprintf("critter.Profiler{rank=%d, policy=%s, eps=%g, kernels=%d}",
		p.rank, p.opts.Policy, p.opts.Eps, p.touched)
}
