package critter

import (
	"fmt"

	"critter/internal/channel"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/stats"
)

// kernelStats is the per-rank execution bookkeeping of one kernel signature
// (an entry of the set K in the paper's notation), stored densely by
// KernelTable id. The signature's duration model itself lives in the rank's
// Estimator.
type kernelStats struct {
	// seen marks the slot as belonging to a signature this rank has
	// actually profiled (dense storage leaves holes for ids interned only
	// by other ranks).
	seen bool
	// propagated marks the kernel globally skippable under the eager
	// policy: its statistics have covered the full processor grid.
	propagated bool
	// perConfig counts executions of the kernel during the current
	// configuration; non-eager policies require at least one execution per
	// tuning iteration before skipping (Section VI-A).
	perConfig int64
	// coverage accumulates the aggregate channel over which this kernel's
	// statistics have been propagated (eager policy).
	coverage channel.Channel
}

// Options configures a Profiler.
type Options struct {
	// Policy selects the selective-execution method.
	Policy Policy
	// Eps is the confidence tolerance: a kernel is predictable when its
	// relative confidence interval falls below Eps. Eps <= 0 disables
	// selective execution entirely (full execution; the reference mode).
	Eps float64
	// AprioriFreq supplies fixed critical-path execution counts for the
	// APriori policy, measured on a preceding full execution.
	AprioriFreq map[Key]int64
	// Extrapolate enables kernel-model extrapolation across input sizes
	// (the line-fitting extension of Section VIII): a computation kernel
	// with an unseen or under-sampled signature may be skipped using a
	// least-squares fit over its routine family's (flops, mean) points.
	// Consulted only by the default estimator; a custom Estimator makes
	// its own extrapolation choice.
	Extrapolate bool
	// Estimator selects the prediction model; nil means the paper's
	// CI-mean estimator (NewCIMeanEstimator) with Extrapolate as
	// configured, which reproduces the hardwired pre-Estimator path
	// bit-for-bit. Each rank needs its own instance.
	Estimator Estimator
	// Prior warm-starts the estimator from a profile exported by an
	// earlier run (Profiler.ExportProfile / GlobalProfile). Ignored when
	// the estimator does not implement ProfileCarrier. The prior survives
	// StartConfig resets: every configuration starts from it.
	Prior *Profile
	// Memo, when non-nil, attaches the sweep-scoped cross-config
	// memoization cache (see KernelMemo): configurations started through
	// StartConfigKeyed adopt tables published by earlier profilers of the
	// same configuration, and Retire recycles this profiler's dense arenas
	// into the cache. Every rank of a world must receive the same memo.
	// Purely an optimization — all results are byte-identical with or
	// without one.
	Memo *KernelMemo
}

// Profiler is one rank's profiling state. Create one per rank with New,
// which also wraps the rank's world communicator. All ranks must construct
// their Profiler collectively (New performs communication).
//
// Kernel signatures are interned into dense ids through a KernelTable
// shared by every rank of the world, so the per-invocation bookkeeping
// (stats, path frequencies, local counts, path attribution) lives in flat
// arrays instead of maps and pathsets propagate between ranks without
// copying. Keys reappear only at the boundaries: the Estimator, profile
// exports, and reports.
type Profiler struct {
	opts  Options
	world *Comm
	rank  int
	psize int

	// tab is the world-shared signature interner; idOf and keys are this
	// rank's private caches of it (idOf avoids the table's lock on the
	// steady-state path, keys resolves ids this rank interned itself).
	tab  *KernelTable
	idOf map[Key]uint32
	keys []Key
	// roIDs/roKeys are the memo-published read-only intern snapshots of
	// the current configuration (nil outside a memo hit): a key present in
	// roIDs resolves without touching idOf or the table's lock, and ids
	// below len(roKeys) resolve back to keys through roKeys (keyAt). Novel
	// keys — possible only on a memo-key collision — overlay through
	// idOf/keys as usual.
	roIDs  map[Key]uint32
	roKeys []Key
	// lastKey/lastID short-circuit intern for back-to-back invocations of
	// the same kernel signature (the common case inside factorization
	// loops), skipping the idOf hash.
	lastKey   Key
	lastID    uint32
	lastValid bool

	// k is the dense per-signature bookkeeping, indexed by kernel id;
	// touched counts the seen entries (KernelCount).
	k       []kernelStats
	touched int
	path    Pathset
	// localFreq counts kernel appearances on this rank during the current
	// configuration (the Local policy's frequency credit), densely by id.
	localFreq []int64
	// pred caches propagation-point predictability outcomes per kernel id
	// (see predCache); grown in lockstep with k by ensure.
	pred []predCache

	// aggregates is the registry of aggregate channels (Figure 2, lines
	// 16-25), keyed by hash, seeded with the world channel.
	aggregates map[uint64]channel.Channel

	// pathKernelTime attributes path time to kernels for the profiling
	// report (profile_report.go), densely by id; an id is on this rank's
	// path this configuration iff localFreq[id] > 0.
	pathKernelTime []float64

	// lane is the pre-resolved typed-message lane the piggyback protocol
	// runs on (one fabric lookup at construction instead of per message).
	// flane carries the sender-to-receiver leg of the point-to-point
	// protocol as fused messages: a committed send's vote travels with its
	// data as one timed message (comm.go).
	lane  mpi.Lane[intMsg]
	flane mpi.FusedLane[intMsg]

	// est is the rank's prediction model (estimator.go): kernel duration
	// estimates, predictability decisions, and extrapolation. fast is its
	// dense id-indexed view when the estimator offers one (the built-in
	// ciMean does); nil otherwise.
	est  Estimator
	fast idEstimator
	// archive accumulates profile exports across StartConfig resets, so
	// ExportProfile covers everything the run learned, not just the
	// current configuration.
	archive *Profile
	// extrapolatedSkips counts skips decided by family-model fits.
	extrapolatedSkips int64

	// trace receives kernel-propagation round events. It is non-nil only
	// on rank 0 of a world with an installed tracer (see World.SetTracer),
	// so the stream is deterministic and the disabled path is one branch.
	trace obs.Tracer

	// memo is the attached cross-config cache (Options.Memo; nil disables
	// memoization). memoKey/memoKeyed identify the configuration started
	// by StartConfigKeyed; memoFresh marks rank 0 as owing the memo a
	// publication of the configuration's table at the next Report.
	memo      *KernelMemo
	memoKey   uint64
	memoKeyed bool
	memoFresh bool

	// Per-configuration accumulators.
	kernelTime     float64 // time spent actually executing selectable kernels
	compKernelTime float64 // same, computation kernels only
	volCommWords   float64 // local BSP communication (words)
	volSync        float64 // local BSP synchronization (messages)
	volFlops       float64 // local BSP computation (flops)
	executed       int64
	skipped        int64
	memoizedSkips  int64 // skips whose predictability decision was cache-served
	// lastMemoized marks whether the most recent shouldExecute call
	// resolved to a memo-served skip; traceRound consumes and clears it so
	// round events can distinguish memoized skips. Trace-only state: it
	// never feeds clocks, decisions, or reports.
	lastMemoized bool
}

// predCache memoizes one kernel id's propagation-point predictability
// outcomes. Estimator.Predictable is pure in (model state, eps, freq) and
// monotone nondecreasing in freq — a larger execution-count credit only
// shrinks the scaled confidence interval — so a single observation in each
// direction bounds the whole frequency axis: predictable at trueAt implies
// predictable at every freq >= trueAt, unpredictable at falseAt implies
// unpredictable at every freq <= falseAt. Zero means "no bound yet" (the
// frequency credit is always >= 1). Entries are invalidated per id when the
// model changes (record) and wholesale when eps or the whole model set
// changes (SetEps, StartConfig's statistics reset).
type predCache struct {
	trueAt  int64 // minimal freq observed predictable (0: none)
	falseAt int64 // maximal freq observed unpredictable (0: none)
}

// New creates the rank's profiler and wraps its world communicator. It is
// collective over world: an internal duplicate communicator is created for
// piggyback traffic, and rank 0's KernelTable is adopted by every rank.
func New(world *mpi.Comm, opts Options) (*Profiler, *Comm) {
	p := &Profiler{
		opts:       opts,
		rank:       world.Rank(),
		psize:      world.Size(),
		memo:       opts.Memo,
		aggregates: make(map[uint64]channel.Channel),
	}
	// Adopt a retired profiler's arena before allocating anything it could
	// supply: the dense per-id tables, the private intern cache, and — once
	// the estimator exists — its accumulator slabs.
	var slabs [][]stats.Welford
	if p.memo != nil {
		if a := p.memo.acquireArena(); a != nil {
			p.idOf = a.idOf
			p.keys = a.keys
			p.k = a.k
			p.localFreq = a.localFreq
			p.pathKernelTime = a.pathKernelTime
			p.pred = a.pred
			p.path.Kernels = kernelCounts{vals: a.counts}
			slabs = a.slabs
		}
	}
	if p.idOf == nil {
		p.idOf = make(map[Key]uint32)
	}
	p.est = opts.Estimator
	if p.est == nil {
		p.est = NewCIMeanEstimator(opts.Extrapolate)
	}
	if slabs != nil {
		if r, ok := p.est.(slabRecycler); ok {
			r.adoptSlabs(slabs)
		}
	}
	if f, ok := p.est.(idEstimator); ok {
		p.fast = f
	}
	if opts.Prior != nil {
		if pc, ok := p.est.(ProfileCarrier); ok {
			pc.LoadPrior(opts.Prior)
		}
	}
	ch, ok := channel.FromGroup(world.Group())
	if ok {
		p.aggregates[ch.Hash()] = ch
	}
	internal := world.Dup()
	// Adopt one shared signature interner per world: rank 0 creates it,
	// the gather (untimed, clock-neutral at construction) hands it to all.
	var mine *KernelTable
	if p.rank == 0 {
		mine = NewKernelTable()
	}
	tabs := mpi.GatherMsgUntimed(internal, mine)
	p.tab = tabs[0]
	p.lane = mpi.LaneOf[intMsg](world.World())
	p.flane = mpi.FusedLaneOf[intMsg](world.World())
	if p.rank == 0 {
		p.trace = world.World().TracerOf()
	}
	cc := &Comm{
		p:        p,
		user:     world,
		internal: internal,
		ch:       ch,
		chOK:     ok,
	}
	p.world = cc
	return p, cc
}

// Policy returns the active selective-execution policy.
func (p *Profiler) Policy() Policy { return p.opts.Policy }

// Eps returns the active confidence tolerance.
func (p *Profiler) Eps() float64 { return p.opts.Eps }

// Estimator returns the rank's prediction model.
func (p *Profiler) Estimator() Estimator { return p.est }

// World returns the wrapped world communicator.
func (p *Profiler) World() *Comm { return p.world }

// Table returns the world-shared kernel-signature interner.
func (p *Profiler) Table() *KernelTable { return p.tab }

// intern resolves key's dense id through the rank-local caches, hitting the
// shared table only on first sight. Under a memo hit the published read-only
// snapshot answers first — no private-cache insert, no table lock — and only
// keys the snapshot has never seen fall through to the overlay path.
func (p *Profiler) intern(key Key) uint32 {
	if p.lastValid && key == p.lastKey {
		return p.lastID
	}
	if id, ok := p.roIDs[key]; ok {
		p.lastKey, p.lastID, p.lastValid = key, id, true
		return id
	}
	if id, ok := p.idOf[key]; ok {
		p.lastKey, p.lastID, p.lastValid = key, id, true
		return id
	}
	id := p.tab.Intern(key)
	p.idOf[key] = id
	if n := int(id) + 1; n > len(p.keys) {
		if n <= cap(p.keys) {
			p.keys = p.keys[:n]
		} else {
			keys := make([]Key, n, growCap(n, cap(p.keys)))
			copy(keys, p.keys)
			p.keys = keys
		}
	}
	p.keys[id] = key
	p.lastKey, p.lastID, p.lastValid = key, id, true
	return id
}

// keyAt resolves an id this rank has interned back to its signature: through
// the memo snapshot when the id predates it, through the private keys cache
// otherwise. (The table's ids below len(roKeys) were assigned before the
// snapshot was taken, so roKeys covers exactly the ids the private cache
// does not.)
func (p *Profiler) keyAt(id uint32) Key {
	if int(id) < len(p.roKeys) {
		return p.roKeys[id]
	}
	return p.keys[id]
}

// growCap sizes a dense per-id table that must hold n entries: double the
// outgrown capacity c, bounded below by n (and a small floor).
func growCap(n, c int) int {
	c *= 2
	if c < n {
		c = n
	}
	if c < 16 {
		c = 16
	}
	return c
}

// ensure grows the dense per-id bookkeeping tables to cover id.
func (p *Profiler) ensure(id uint32) {
	n := int(id) + 1
	if n <= len(p.k) {
		return
	}
	if n <= cap(p.k) {
		// Backing arrays are allocated zeroed and cleared in place on
		// reset (and zeroed before arena donation), so extending within
		// capacity exposes zero slots.
		p.k = p.k[:n]
		p.localFreq = p.localFreq[:n]
		p.pathKernelTime = p.pathKernelTime[:n]
		p.pred = p.pred[:n]
		return
	}
	c := growCap(n, cap(p.k))
	k := make([]kernelStats, n, c)
	copy(k, p.k)
	p.k = k
	lf := make([]int64, n, c)
	copy(lf, p.localFreq)
	p.localFreq = lf
	pkt := make([]float64, n, c)
	copy(pkt, p.pathKernelTime)
	p.pathKernelTime = pkt
	pc := make([]predCache, n, c)
	copy(pc, p.pred)
	p.pred = pc
}

// stats returns the bookkeeping slot for kernel id, marking it profiled.
// The pointer is invalidated by the next ensure/stats call that grows the
// tables; take all needed slots after a single ensure when holding two.
func (p *Profiler) stats(id uint32) *kernelStats {
	p.ensure(id)
	ks := &p.k[id]
	if !ks.seen {
		ks.seen = true
		p.touched++
	}
	return ks
}

// KernelCount returns the number of distinct kernel signatures profiled so
// far on this rank.
func (p *Profiler) KernelCount() int { return p.touched }

// Mean returns the modeled mean duration for key (0 if never sampled; a
// warm-started estimator answers from its prior before the first sample).
func (p *Profiler) Mean(key Key) float64 { return p.est.Estimate(key) }

// Samples returns the number of duration samples backing key's model.
func (p *Profiler) Samples(key Key) int64 { return p.est.Samples(key) }

// estimate returns the modeled duration charged for a skipped kernel,
// through the estimator's id-indexed fast path when it offers one.
func (p *Profiler) estimate(key Key, id uint32) float64 {
	if p.fast != nil {
		return p.fast.estimateID(id, key)
	}
	return p.est.Estimate(key)
}

// pathFreqMap rekeys a dense frequency table by Key for the map-facing
// boundaries. Ids may have been interned by any rank, so the shared table
// resolves them.
func (p *Profiler) pathFreqMap(kc kernelCounts) map[Key]int64 {
	out := make(map[Key]int64)
	for id, v := range kc.vals {
		if v != 0 {
			out[p.tab.KeyOf(uint32(id))] = v
		}
	}
	return out
}

// PathFreqs returns a copy of the rank's current path frequency table.
func (p *Profiler) PathFreqs() map[Key]int64 {
	return p.pathFreqMap(p.path.Kernels)
}

// notePath records one appearance of kernel id along the rank's execution
// path. The caller has interned id on this rank (stats), so localFreq
// covers it.
func (p *Profiler) notePath(id uint32) {
	p.path.Kernels.incr(id)
	p.localFreq[id]++
}

// freqFor returns the execution-count credit the active policy grants when
// sizing key's confidence interval.
func (p *Profiler) freqFor(key Key, id uint32) int64 {
	switch p.opts.Policy {
	case Local:
		return p.localFreq[id]
	case Online:
		return p.path.Kernels.get(id)
	case APriori:
		if f := p.opts.AprioriFreq[key]; f > 0 {
			return f
		}
	}
	return 1
}

// shouldExecute decides whether the kernel must actually run. For the eager
// policy the decision is the global propagation flag; for all other
// policies the kernel must have executed at least once this configuration
// and is skipped only when predictable at tolerance Eps under the policy's
// frequency credit. Decisions replayed from the predictability cache that
// result in a skip are counted as memoized (Report.Memoized).
func (p *Profiler) shouldExecute(key Key, id uint32, ks *kernelStats) bool {
	p.lastMemoized = false
	if p.opts.Eps <= 0 {
		return true
	}
	if p.opts.Policy == Eager {
		return !ks.propagated
	}
	if ks.perConfig < 1 {
		return true
	}
	pred, hit := p.predictable(key, id, p.freqFor(key, id))
	if pred && hit {
		p.memoizedSkips++
		p.lastMemoized = true
	}
	return !pred
}

// predictable answers the propagation-point CI tolerance test through the
// per-id decision cache, reporting whether the answer was replayed. The
// steady-state skip path — a converged signature re-encountered with an
// ever-growing frequency credit — reduces to two integer compares.
func (p *Profiler) predictable(key Key, id uint32, freq int64) (pred, hit bool) {
	c := &p.pred[id]
	if c.trueAt != 0 && freq >= c.trueAt {
		return true, true
	}
	if c.falseAt != 0 && freq <= c.falseAt {
		return false, true
	}
	if p.fast != nil {
		pred = p.fast.predictableID(id, key, p.opts.Eps, freq)
	} else {
		pred = p.est.Predictable(key, p.opts.Eps, freq)
	}
	if pred {
		if c.trueAt == 0 || freq < c.trueAt {
			c.trueAt = freq
		}
	} else if freq > c.falseAt {
		c.falseAt = freq
	}
	return pred, false
}

// record incorporates one measured duration for key: the estimator observes
// the sample and the per-configuration execution counters advance. The new
// sample changes the kernel's model, so its cached predictability bounds are
// dropped.
func (p *Profiler) record(key Key, id uint32, ks *kernelStats, flops, dt float64) {
	if p.fast != nil {
		p.fast.observeID(id, key, flops, dt, p.opts.Eps)
	} else {
		p.est.Observe(key, flops, dt, p.opts.Eps)
	}
	p.pred[id] = predCache{}
	ks.perConfig++
	p.executed++
	p.kernelTime += dt
	if key.Kind == KindComp {
		p.compKernelTime += dt
	}
}

// snapshot captures the rank's pathset for an internal message. Under
// policies that propagate counts the frequency table is frozen in place
// (copy-on-write; no copy is taken), otherwise the message carries none.
func (p *Profiler) snapshot() Pathset {
	ps := p.path
	if p.opts.Policy == Online {
		ps.Kernels = p.path.Kernels.freeze()
	} else {
		ps.Kernels = kernelCounts{}
	}
	return ps
}

// adopt installs the merged global pathset: metrics are already max-merged;
// the frequency table, when propagated, replaces the local one wholesale
// (the local path joins the global sub-critical path). The adopted table
// stays frozen — other ranks alias it — and is copied lazily by the next
// local count.
func (p *Profiler) adopt(g Pathset) {
	kernels := p.path.Kernels
	if g.Kernels.active() {
		kernels = g.Kernels
		kernels.shared = true
	}
	p.path = Pathset{
		ExecTime: max(p.path.ExecTime, g.ExecTime),
		CompTime: max(p.path.CompTime, g.CompTime),
		CommTime: max(p.path.CommTime, g.CommTime),
		BSPComm:  max(p.path.BSPComm, g.BSPComm),
		BSPSync:  max(p.path.BSPSync, g.BSPSync),
		BSPComp:  max(p.path.BSPComp, g.BSPComp),
		Kernels:  kernels,
	}
}

// Kernel intercepts one computation kernel invocation: name and dims form
// the signature, flops drives the machine model, and run performs the
// actual numerics. When the kernel is deemed predictable, run is not called
// and the model mean is charged to the pathset instead of virtual time.
// It returns the duration charged to the path.
func (p *Profiler) Kernel(name string, d1, d2, d3, d4 int, flops float64, run func()) float64 {
	key := CompKey(name, d1, d2, d3, d4)
	id := p.intern(key)
	ks := p.stats(id)
	p.notePath(id)
	var dt float64
	exec := p.shouldExecute(key, id, ks)
	if exec && p.opts.Eps > 0 && flops > 0 {
		// Line-fitting extension: an under-sampled signature may still
		// be skipped when its routine family's fit is trustworthy.
		if est, ok := p.est.Extrapolate(key, flops, p.opts.Eps); ok &&
			!p.est.Predictable(key, p.opts.Eps, p.freqFor(key, id)) {
			exec = false
			dt = est
			p.extrapolatedSkips++
		}
	}
	if exec {
		dt = p.world.user.Compute(flops)
		run()
		p.record(key, id, ks, flops, dt)
	} else {
		if dt == 0 {
			dt = p.estimate(key, id)
		}
		p.skipped++
	}
	p.path.ExecTime += dt
	p.path.CompTime += dt
	p.path.BSPComp += flops
	p.volFlops += flops
	p.pathKernelTime[id] += dt
	return dt
}

// StartConfig begins a new tuning configuration: the pathset, per-config
// counters, and volumetric accumulators are cleared, virtual clocks are
// reset collectively, and — when resetStats is true — all kernel models are
// discarded (the paper resets statistics between configurations of SLATE's
// and CANDMC's algorithms; eager propagation keeps its models to reuse them
// across configurations). Collective over the world communicator.
//
// The dense per-id tables are cleared in place, so the steady state across
// configurations allocates nothing.
func (p *Profiler) StartConfig(resetStats bool) {
	p.startConfig(resetStats, 0, false)
}

// StartConfigKeyed is StartConfig for a configuration with a stable identity
// (critter.ConfigKey): with a KernelMemo attached (Options.Memo) and the
// statistics reset in effect, the configuration adopts the memo-published
// interner of an earlier run of the same configuration — or, on the first
// run anywhere, publishes its own at the next Report. Identical to
// StartConfig when no memo is attached; byte-identical in results always.
func (p *Profiler) StartConfigKeyed(resetStats bool, cfg uint64) {
	p.startConfig(resetStats, cfg, true)
}

// tabMsg is the payload of StartConfig's alignment round: a fresh interner
// to distribute, or a memo-published configuration to adopt (both nil on
// every rank but 0, and on rank 0 when ids are not being reset).
type tabMsg struct {
	tab *KernelTable
	mc  *memoConfig
}

func (p *Profiler) startConfig(resetStats bool, cfg uint64, keyed bool) {
	resetIDs := resetStats && p.opts.Policy != Eager
	// Align ranks before resetting clocks; when the per-id bookkeeping is
	// about to be discarded anyway, the same round distributes the next
	// shared interner, so dense ids stay as compact as the configuration's
	// active kernel set instead of accumulating across configurations
	// (every copy-on-write snapshot copy is sized by the id high-water
	// mark). With a memo attached, rank 0 first checks whether an earlier
	// profiler already published this configuration's interner; on a hit
	// the round distributes the published table and its read-only intern
	// snapshots instead of an empty table.
	var msg tabMsg
	if resetIDs && p.rank == 0 {
		if keyed && p.memo != nil {
			msg.mc = p.memo.lookup(cfg)
		}
		if msg.mc == nil {
			msg.tab = NewKernelTable()
		}
	}
	g := mpi.GatherMsgUntimed(p.world.internal, msg)[0]
	p.world.user.ResetClock()
	p.archivePathFreqs() // resolves ids through the outgoing table
	p.kernelTime, p.compKernelTime = 0, 0
	p.volCommWords, p.volSync, p.volFlops = 0, 0, 0
	p.executed, p.skipped, p.memoizedSkips = 0, 0, 0
	if resetIDs {
		// Archive what the estimator learned before wiping it, so the
		// run's exported profile spans every configuration. (Without a
		// reset the live estimator state persists and is merged at export
		// time instead — archiving it here would double-count samples.)
		p.archiveEstimator()
		p.est.Reset()
		p.extrapolatedSkips = 0
		p.memoKey = cfg
		p.memoKeyed = keyed && p.memo != nil
		if g.mc != nil {
			// Memo hit: adopt the published interner and snapshots.
			p.tab = g.mc.tab
			p.roIDs, p.roKeys = g.mc.idOf, g.mc.keys
			p.memoFresh = false
		} else {
			p.tab = g.tab
			p.roIDs, p.roKeys = nil, nil
			// Rank 0 owes the memo this configuration's table once the
			// run completes (one publication per world, not per rank).
			p.memoFresh = p.memoKeyed && p.rank == 0
		}
		// Empty the per-id tables down to zero length (capacity kept) so
		// they regrow to the new, compact id range.
		clear(p.idOf)
		p.lastValid = false
		clear(p.keys)
		p.keys = p.keys[:0]
		clear(p.k)
		p.k = p.k[:0]
		p.touched = 0
		clear(p.localFreq)
		p.localFreq = p.localFreq[:0]
		clear(p.pathKernelTime)
		p.pathKernelTime = p.pathKernelTime[:0]
		clear(p.pred)
		p.pred = p.pred[:0]
		kc := p.path.Kernels
		kc.reset()
		p.path = Pathset{Kernels: kernelCounts{vals: kc.vals[:0]}}
		if n := len(p.roKeys); n > 0 {
			// The configuration's id range is known up front: size the
			// dense tables once instead of growing them kernel by kernel.
			p.ensure(uint32(n - 1))
		}
		return
	}
	kc := p.path.Kernels
	kc.reset()
	p.path = Pathset{Kernels: kc}
	clear(p.localFreq)
	clear(p.pathKernelTime)
	for i := range p.k {
		p.k[i].perConfig = 0
	}
}

// SetEps changes the confidence tolerance (used by sweeps reusing one
// profiler). Cached predictability decisions are bound to the tolerance
// they were made under, so the cache is dropped wholesale.
func (p *Profiler) SetEps(eps float64) {
	p.opts.Eps = eps
	clear(p.pred)
}

// SetPolicy changes the selective-execution policy (used by the a-priori
// method, whose offline pass runs under online propagation).
func (p *Profiler) SetPolicy(pol Policy) { p.opts.Policy = pol }

// ExtrapolatedSkips returns how many kernel invocations were skipped via
// family-model extrapolation rather than their own signature's model.
func (p *Profiler) ExtrapolatedSkips() int64 { return p.extrapolatedSkips }

// SetAprioriFreq installs the critical-path counts for the APriori policy.
func (p *Profiler) SetAprioriFreq(f map[Key]int64) { p.opts.AprioriFreq = f }

// Report summarizes the configuration run. Collective over the world
// communicator: critical-path metrics and kernel-time maxima reduce with
// max, volumetric metrics average over ranks.
type Report struct {
	Predicted     float64 `json:"Predicted"`     // predicted execution time (max rank pathset)
	PredictedComp float64 `json:"PredictedComp"` // predicted critical-path computation time
	PredictedComm float64 `json:"PredictedComm"` // predicted critical-path communication time
	Wall          float64 `json:"Wall"`          // actual virtual time consumed (max rank clock)
	BSPCommCrit   float64 `json:"BSPCommCrit"`   // critical-path BSP communication (words)
	BSPSyncCrit   float64 `json:"BSPSyncCrit"`   // critical-path BSP synchronization (messages)
	BSPCompCrit   float64 `json:"BSPCompCrit"`   // critical-path BSP computation (flops)
	BSPCommVol    float64 `json:"BSPCommVol"`    // volumetric-average BSP communication
	BSPSyncVol    float64 `json:"BSPSyncVol"`    // volumetric-average BSP synchronization
	BSPCompVol    float64 `json:"BSPCompVol"`    // volumetric-average BSP computation
	KernelTime    float64 `json:"KernelTime"`    // max over ranks: time executing selectable kernels
	CompKernel    float64 `json:"CompKernel"`    // max over ranks: time executing compute kernels
	Executed      int64   `json:"Executed"`      // total kernel executions across ranks
	Skipped       int64   `json:"Skipped"`       // total kernel skips across ranks
	// Memoized counts the skips (across ranks) whose predictability
	// decision was replayed from the cross-config memoization layer rather
	// than re-derived; always <= Skipped. Excluded from serialized
	// envelopes: memoization is observational, and hit counts depend on
	// sweep order, so they must not perturb golden artifacts.
	Memoized int64 `json:"-"`
}

// reportMsg carries one rank's report contributions through the single
// fused reduction round: maxes reduce elementwise by max, sums by +.
type reportMsg struct {
	maxes [9]float64
	sums  [6]float64
}

// mergeReport folds report contributions in comm-rank order — elementwise
// max and left-to-right sums, the exact fold the former pair of untimed
// allreduces performed.
func mergeReport(a, b reportMsg) reportMsg {
	for i := range a.maxes {
		a.maxes[i] = max(a.maxes[i], b.maxes[i])
	}
	for i := range a.sums {
		a.sums[i] += b.sums[i]
	}
	return a
}

// Report gathers the configuration summary; collective over world. The max
// and sum reductions share one untimed round (clock- and noise-neutral:
// untimed rounds advance every rank to the same entry maximum and draw no
// randomness, so fusing them leaves virtual time bit-identical).
func (p *Profiler) Report() Report {
	local := reportMsg{
		maxes: [9]float64{
			p.path.ExecTime, p.path.CompTime, p.path.CommTime,
			p.path.BSPComm, p.path.BSPSync, p.path.BSPComp,
			p.world.user.Clock(), p.kernelTime, p.compKernelTime,
		},
		sums: [6]float64{
			p.volCommWords, p.volSync, p.volFlops,
			float64(p.executed), float64(p.skipped),
			float64(p.memoizedSkips),
		},
	}
	g := mpi.AllreduceMsg(p.world.internal, local, mergeReport)
	// The configuration is complete, so its interner is too: if this
	// profiler ran the configuration first (memo miss at StartConfigKeyed),
	// rank 0 publishes the table for every later profiler of the same
	// configuration — notably the selective run that follows this reference
	// run within the same sweep iteration.
	if p.memoFresh {
		p.memo.publish(p.memoKey, p.tab)
		p.memoFresh = false
	}
	maxes, sums := g.maxes, g.sums
	fp := float64(p.psize)
	return Report{
		Predicted:     maxes[0],
		PredictedComp: maxes[1],
		PredictedComm: maxes[2],
		BSPCommCrit:   maxes[3],
		BSPSyncCrit:   maxes[4],
		BSPCompCrit:   maxes[5],
		Wall:          maxes[6],
		KernelTime:    maxes[7],
		CompKernel:    maxes[8],
		BSPCommVol:    sums[0] / fp,
		BSPSyncVol:    sums[1] / fp,
		BSPCompVol:    sums[2] / fp,
		Executed:      int64(sums[3]),
		Skipped:       int64(sums[4]),
		Memoized:      int64(sums[5]),
	}
}

// Retire donates the profiler's recyclable per-rank state to the attached
// memo — dense per-id tables, the private intern cache, the path-frequency
// array, and the built-in estimator's accumulator slabs — for the next
// profiler built with Options.Memo on the same memo to adopt. The profiler
// must not be used afterwards. A no-op without a memo. Call it per rank
// once the sweep is done with the profiler (after the final Report /
// GlobalProfile).
func (p *Profiler) Retire() {
	if p.memo == nil {
		return
	}
	a := &memoArena{}
	clear(p.idOf)
	a.idOf = p.idOf
	clear(p.keys[:cap(p.keys)])
	a.keys = p.keys[:0]
	clear(p.k[:cap(p.k)])
	a.k = p.k[:0]
	clear(p.localFreq[:cap(p.localFreq)])
	a.localFreq = p.localFreq[:0]
	clear(p.pathKernelTime[:cap(p.pathKernelTime)])
	a.pathKernelTime = p.pathKernelTime[:0]
	clear(p.pred[:cap(p.pred)])
	a.pred = p.pred[:0]
	// The frequency array travels only when exclusively owned: a frozen
	// snapshot (an in-flight message, an adopted global table) may still
	// alias a shared one.
	if kc := p.path.Kernels; !kc.shared && kc.vals != nil {
		clear(kc.vals[:cap(kc.vals)])
		a.counts = kc.vals[:0]
	}
	if r, ok := p.est.(slabRecycler); ok {
		a.slabs = r.releaseSlabs()
	}
	p.memo.releaseArena(a)
	// Sever the donated state so accidental reuse fails loudly instead of
	// corrupting the adopter.
	p.memo = nil
	p.idOf, p.keys, p.k = nil, nil, nil
	p.localFreq, p.pathKernelTime, p.pred = nil, nil, nil
	p.roIDs, p.roKeys = nil, nil
	p.lastValid = false
	p.path.Kernels = kernelCounts{}
}

// GlobalPathFreqs merges the final path frequency tables across ranks,
// returning the table of the rank with the maximal predicted execution time
// (the configuration's critical path). Collective over world. Used to seed
// the APriori policy.
func (p *Profiler) GlobalPathFreqs() map[Key]int64 {
	ps := p.path
	ps.Kernels = p.path.Kernels.freeze()
	g := p.lane.Allreduce(p.world.internal, intMsg{Path: ps}, mergeIntMsg)
	return p.pathFreqMap(g.Path.Kernels)
}

// archivePathFreqs max-merges the configuration's path frequency table into
// the archive before StartConfig resets the pathset.
func (p *Profiler) archivePathFreqs() {
	freqs := p.path.Kernels
	if !freqs.active() {
		return
	}
	archived := false
	for id, v := range freqs.vals {
		if v == 0 {
			continue
		}
		if !archived {
			archived = true
			if p.archive == nil {
				p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
			}
			if p.archive.PathFreqs == nil {
				p.archive.PathFreqs = make(map[Key]int64)
			}
		}
		key := p.tab.KeyOf(uint32(id))
		p.archive.PathFreqs[key] = max(p.archive.PathFreqs[key], v)
	}
}

// archiveEstimator merges the estimator's current export into the archive;
// called only when the estimator is about to be reset, so no sample is ever
// archived twice. Estimators implementing profileArchiver (the built-in
// one) merge directly into the archive, skipping the intermediate export
// profile this would otherwise build every configuration.
func (p *Profiler) archiveEstimator() {
	if a, ok := p.est.(profileArchiver); ok {
		if !a.hasLiveState() {
			return
		}
		if p.archive == nil {
			p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
		}
		a.archiveInto(p.archive)
		if p.archive.Estimator == "" {
			p.archive.Estimator = p.est.Name()
		}
		return
	}
	pc, ok := p.est.(ProfileCarrier)
	if !ok {
		return
	}
	exp := pc.ExportProfile()
	if exp == nil || (len(exp.Kernels) == 0 && len(exp.Families) == 0) {
		return
	}
	if p.archive == nil {
		p.archive = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	p.archive.Merge(exp)
}

// ExportProfile returns this rank's learned profile: everything archived
// across configuration resets, the live estimator state, and the path
// frequencies seen so far. Samples loaded from Options.Prior are excluded,
// so chaining runs via MergeProfiles never counts a sample twice. Returns
// an empty (but non-nil) profile when the estimator does not implement
// ProfileCarrier.
func (p *Profiler) ExportProfile() *Profile {
	out := p.archive.Clone()
	if out == nil {
		out = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	if pc, ok := p.est.(ProfileCarrier); ok {
		out.Merge(pc.ExportProfile())
	}
	if out.Estimator == "" {
		out.Estimator = p.est.Name()
	}
	for id, v := range p.path.Kernels.vals {
		if v == 0 {
			continue
		}
		if out.PathFreqs == nil {
			out.PathFreqs = make(map[Key]int64)
		}
		key := p.tab.KeyOf(uint32(id))
		out.PathFreqs[key] = max(out.PathFreqs[key], v)
	}
	return out
}

// GlobalProfile merges every rank's exported profile into one artifact,
// identical on every rank. Collective over the world communicator. Each
// rank folds the gathered exports itself — one clone then in-place merges,
// instead of a clone per fold step — in comm-rank order, so every rank
// computes the identical artifact.
func (p *Profiler) GlobalProfile() *Profile {
	profs := mpi.GatherMsgUntimed(p.world.internal, p.ExportProfile())
	return mergeExports(profs)
}

// GlobalProfileRoot is GlobalProfile with the fold performed only on root:
// other ranks participate in the gather (collective) but return nil instead
// of computing a merged artifact nobody reads. The sweep executor keeps only
// rank 0's SweepResult, so the identical folds on ranks 1..P-1 were pure
// allocation churn — on the benchmark sweep they were the single largest
// allocation site after the workload's own tiles.
func (p *Profiler) GlobalProfileRoot(root int) *Profile {
	profs := mpi.GatherMsgUntimed(p.world.internal, p.ExportProfile())
	if p.rank != root {
		return nil
	}
	return mergeExports(profs)
}

// mergeExports folds gathered per-rank exports in comm-rank order: one clone
// then in-place merges.
func mergeExports(profs []*Profile) *Profile {
	out := profs[0].Clone()
	if out == nil {
		out = &Profile{SchemaVersion: ProfileSchemaVersion}
	}
	for _, o := range profs[1:] {
		out.merge(o, true)
	}
	return out
}

// registerChannel records a newly created communicator's channel and
// recursively builds aggregate channels (Figure 2, MPI_Comm_split).
func (p *Profiler) registerChannel(ch channel.Channel) {
	if _, ok := p.aggregates[ch.Hash()]; ok {
		return
	}
	p.aggregates[ch.Hash()] = ch
	// Combine with every known aggregate to grow the basis.
	for {
		grew := false
		for _, agg := range p.aggregates {
			comb, ok := channel.Combine(agg, ch)
			if !ok || agg.Contains(ch) {
				continue
			}
			h := comb.Hash()
			if _, exists := p.aggregates[h]; !exists {
				p.aggregates[h] = comb
				grew = true
			}
		}
		if !grew {
			break
		}
	}
}

// Aggregates returns the number of registered aggregate channels.
func (p *Profiler) Aggregates() int { return len(p.aggregates) }

// HasFullGridAggregate reports whether some registered aggregate spans the
// entire world as a cartesian basis.
func (p *Profiler) HasFullGridAggregate() bool {
	for _, agg := range p.aggregates {
		if agg.CoversWorld(p.psize) {
			return true
		}
	}
	return false
}

func (p *Profiler) String() string {
	return fmt.Sprintf("critter.Profiler{rank=%d, policy=%s, eps=%g, kernels=%d}",
		p.rank, p.opts.Policy, p.opts.Eps, p.touched)
}
