package critter

import (
	"testing"
)

// TestMergeIntMsgPreservesExec2 is the regression test for the combined
// Sendrecv exchange's second vote: the old merge rebuilt the message without
// Exec2, silently dropping the receive-kernel vote of any combined exchange
// folded through an allreduce. Either side voting must survive the fold.
func TestMergeIntMsgPreservesExec2(t *testing.T) {
	a := intMsg{Exec: false, Exec2: true}
	b := intMsg{Exec: true, Exec2: false}
	if got := mergeIntMsg(a, b); !got.Exec2 {
		t.Errorf("mergeIntMsg dropped a's Exec2 vote: %+v", got)
	}
	if got := mergeIntMsg(b, a); !got.Exec2 {
		t.Errorf("mergeIntMsg dropped b's Exec2 vote: %+v", got)
	}
	if got := mergeIntMsg(intMsg{}, intMsg{}); got.Exec2 {
		t.Errorf("mergeIntMsg invented an Exec2 vote: %+v", got)
	}
}

// TestKernelCountsCOW exercises the copy-on-write contract: a freeze is
// O(1) aliasing, and the next write on either side materializes a private
// copy without disturbing the other.
func TestKernelCountsCOW(t *testing.T) {
	var kc kernelCounts
	for i := 0; i < 5; i++ {
		kc.incr(uint32(i))
	}
	kc.incr(2)
	snap := kc.freeze()
	if &snap.vals[0] != &kc.vals[0] {
		t.Fatal("freeze copied the backing array; want O(1) aliasing")
	}
	// Writing through the owner must not touch the frozen snapshot.
	kc.incr(2)
	kc.incr(7)
	if snap.get(2) != 2 {
		t.Errorf("snapshot saw the owner's post-freeze write: got %d, want 2", snap.get(2))
	}
	if snap.get(7) != 0 {
		t.Errorf("snapshot saw a post-freeze id: got %d, want 0", snap.get(7))
	}
	if kc.get(2) != 3 || kc.get(7) != 1 {
		t.Errorf("owner counts wrong after COW: got %d,%d want 3,1", kc.get(2), kc.get(7))
	}
	// Writing through the snapshot copy must not touch the owner.
	snap.incr(0)
	if kc.get(0) != 1 {
		t.Errorf("owner saw the snapshot's write: got %d, want 1", kc.get(0))
	}
}

// TestMergePathAliasingSafety is the clone-audit satellite: mergePath no
// longer deep-copies, so the merged pathset's table aliases the winning
// (frozen) input. Mutating the merged result must leave the source inputs
// untouched — exactly what a receiving rank does when it adopts a merged
// global pathset and then keeps counting.
func TestMergePathAliasingSafety(t *testing.T) {
	var a, b Pathset
	for i := 0; i < 4; i++ {
		a.Kernels.incr(uint32(i))
	}
	b.Kernels.incr(9)
	a.ExecTime, b.ExecTime = 2.0, 1.0

	fa, fb := a, b
	fa.Kernels = a.Kernels.freeze()
	fb.Kernels = b.Kernels.freeze()
	merged := mergePath(fa, fb)
	if merged.ExecTime != 2.0 {
		t.Fatalf("merge picked wrong path: ExecTime %g", merged.ExecTime)
	}
	if merged.Kernels.get(0) != 1 || merged.Kernels.get(9) != 0 {
		t.Fatalf("merge did not adopt the winner's table")
	}

	// The adopter mutates its merged table; the sources must be untouched.
	merged.Kernels.incr(0)
	merged.Kernels.incr(9)
	if a.Kernels.get(0) != 1 {
		t.Errorf("source a mutated through merged pathset: id0 = %d, want 1", a.Kernels.get(0))
	}
	if b.Kernels.get(9) != 1 {
		t.Errorf("source b mutated through merged pathset: id9 = %d, want 1", b.Kernels.get(9))
	}
}

// TestKernelCountsReset verifies the allocation-lean reset: an exclusively
// owned table reuses its backing array, a frozen one is replaced so live
// snapshots keep their values.
func TestKernelCountsReset(t *testing.T) {
	var kc kernelCounts
	kc.incr(3)
	before := &kc.vals[0]
	kc.reset()
	if kc.get(3) != 0 {
		t.Fatal("reset did not clear counts")
	}
	if &kc.vals[0] != before {
		t.Error("reset of an owned table reallocated; want in-place clear")
	}
	kc.incr(3)
	snap := kc.freeze()
	kc.reset()
	kc.incr(3)
	kc.incr(3)
	if snap.get(3) != 1 {
		t.Errorf("reset of a frozen table disturbed the snapshot: got %d, want 1", snap.get(3))
	}
}

// TestKernelCountsGrowthIsLinear guards against the capacity-doubling bug
// class: repeated COW copies at a stable size must not grow capacity, and
// repeated single-id growth must stay linear in the high-water mark.
func TestKernelCountsGrowthIsLinear(t *testing.T) {
	var kc kernelCounts
	for i := 0; i < 100; i++ {
		kc.incr(uint32(i))
	}
	for i := 0; i < 40; i++ {
		kc.freeze() // somebody snapshots...
		kc.incr(5)  // ...and the owner keeps counting
	}
	if c := cap(kc.vals); c > 1024 {
		t.Errorf("COW copies inflated capacity to %d for 100 ids", c)
	}
}
