package critter

// Fuzzing of the Policy name/JSON round trips backing flag parsing and
// serialized experiment results. Under plain `go test` these run their seed
// corpus as ordinary unit tests.

import (
	"encoding/json"
	"testing"
)

// TestPolicyNullDecode pins the encoding/json convention: null leaves the
// value unchanged.
func TestPolicyNullDecode(t *testing.T) {
	p := Online
	if err := json.Unmarshal([]byte("null"), &p); err != nil || p != Online {
		t.Errorf("null decode: %v, policy %s", err, p)
	}
}

func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{"conditional", "local", "online", "apriori", "eager", "", "Eager", "policy(7)"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		p, err := ParsePolicy(name)
		if err != nil {
			return
		}
		if p.String() != name {
			t.Fatalf("ParsePolicy(%q) = %s, not a fixed point", name, p)
		}
	})
}

func FuzzPolicyUnmarshalJSON(f *testing.F) {
	f.Add([]byte(`"online"`))
	f.Add([]byte(`"eager"`))
	f.Add([]byte(`null`))
	f.Add([]byte(`42`))
	f.Add([]byte(`"bogus"`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Policy
		if err := p.UnmarshalJSON(data); err != nil {
			return
		}
		// Anything accepted must re-encode losslessly.
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Policy
		if err := json.Unmarshal(out, &back); err != nil || back != p {
			t.Fatalf("accepted %q but cannot round trip %s: %v", data, p, err)
		}
	})
}
