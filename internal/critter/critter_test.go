package critter

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"critter/internal/mpi"
	"critter/internal/sim"
)

// TestPolicyJSONRoundTrip checks that policies serialize by name and decode
// back, so critter-tune -json output can be unmarshaled into library types.
func TestPolicyJSONRoundTrip(t *testing.T) {
	for _, p := range Policies {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + p.String() + `"`; string(data) != want {
			t.Errorf("policy %s marshals to %s, want %s", p, data, want)
		}
		var back Policy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Errorf("round trip: %s -> %s", p, back)
		}
	}
	var bad Policy
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Error("unknown policy name should fail to decode")
	}
	if err := json.Unmarshal([]byte(`3`), &bad); err == nil {
		t.Error("numeric policy should fail to decode (names only)")
	}
}

func testMachine(noise float64) sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseSigma = noise
	return m
}

// runProfiled spins up a world of p ranks, builds a profiler per rank, and
// runs body. Reports from rank 0 are returned.
func runProfiled(t *testing.T, p int, noise float64, opts Options, body func(prof *Profiler, cc *Comm)) Report {
	t.Helper()
	w := mpi.NewWorld(p, testMachine(noise), 7)
	var rep Report
	var mu sync.Mutex
	if err := w.Run(func(c *mpi.Comm) {
		prof, cc := New(c, opts)
		body(prof, cc)
		r := prof.Report()
		if c.Rank() == 0 {
			mu.Lock()
			rep = r
			mu.Unlock()
		}
	}); err != nil {
		t.Fatalf("world: %v", err)
	}
	return rep
}

func TestFullExecutionNeverSkips(t *testing.T) {
	rep := runProfiled(t, 4, 0.05, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 64)
		for i := 0; i < 20; i++ {
			cc.Bcast(0, buf)
			p.Kernel("work", 8, 8, 8, 0, 1e5, func() {})
		}
	})
	if rep.Skipped != 0 {
		t.Errorf("eps=0 skipped %d kernels", rep.Skipped)
	}
	if rep.Executed == 0 {
		t.Error("nothing executed")
	}
	// With everything executed, predicted time equals wall time.
	if math.Abs(rep.Predicted-rep.Wall) > 1e-9*rep.Wall {
		t.Errorf("full execution: predicted %g != wall %g", rep.Predicted, rep.Wall)
	}
}

func TestSelectiveComputeSkipsAndPredicts(t *testing.T) {
	var execs, skips int64
	rep := runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.1}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 200; i++ {
			p.Kernel("gemm", 32, 32, 32, 0, 2*32*32*32, func() { execs++ })
		}
		skips = p.skipped
	})
	if skips == 0 {
		t.Fatal("low-noise repeated kernel was never skipped at eps=0.1")
	}
	if execs < 2 {
		t.Fatal("kernel must execute at least twice to build a CI")
	}
	if rep.Predicted <= 0 {
		t.Error("predicted time should be positive")
	}
	// Skipped executions should not consume wall time: wall < predicted.
	if rep.Wall >= rep.Predicted {
		t.Errorf("wall %g should be below predicted %g when kernels are skipped", rep.Wall, rep.Predicted)
	}
}

func TestPredictionAccuracyImprovesWithTighterEps(t *testing.T) {
	// Run the same workload fully, then selectively at two tolerances;
	// the tighter tolerance must not be less accurate (statistically this
	// holds strongly at these sample sizes).
	workload := func(p *Profiler, cc *Comm) {
		for i := 0; i < 300; i++ {
			p.Kernel("k1", 16, 16, 16, 0, 5e4, func() {})
			p.Kernel("k2", 8, 8, 8, 0, 1e4, func() {})
		}
	}
	full := runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0}, workload)
	loose := runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.5}, workload)
	tight := runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.01}, workload)
	errLoose := math.Abs(loose.Predicted-full.Predicted) / full.Predicted
	errTight := math.Abs(tight.Predicted-full.Predicted) / full.Predicted
	if errTight > 0.05 {
		t.Errorf("tight tolerance error %g too large", errTight)
	}
	if errLoose > 0.5 {
		t.Errorf("loose tolerance error %g implausibly large", errLoose)
	}
}

func TestMinimumOneExecutionPerConfig(t *testing.T) {
	runProfiled(t, 1, 0.0, Options{Policy: Conditional, Eps: 0.9}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 50; i++ {
			p.Kernel("k", 4, 4, 4, 0, 1e3, func() {})
		}
		firstConfigExecs := p.executed
		if firstConfigExecs < 1 {
			t.Fatal("no executions in first config")
		}
		p.StartConfig(false) // keep stats
		for i := 0; i < 50; i++ {
			p.Kernel("k", 4, 4, 4, 0, 1e3, func() {})
		}
		if p.executed < 1 {
			t.Error("non-eager policy must execute each kernel at least once per configuration")
		}
		if p.executed > 2 {
			t.Errorf("zero-noise predictable kernel executed %d times in second config, want 1", p.executed)
		}
	})
}

func TestOnlineFreqCreditSkipsEarlier(t *testing.T) {
	// A kernel appearing many times along the path gains sqrt(freq) CI
	// shrink under Online, so it gets skipped earlier than Conditional.
	countExecs := func(policy Policy) int64 {
		var n int64
		runProfiled(t, 1, 0.3, Options{Policy: policy, Eps: 0.12}, func(p *Profiler, cc *Comm) {
			for i := 0; i < 400; i++ {
				p.Kernel("hot", 8, 8, 8, 0, 1e4, func() {})
			}
			n = p.executed
		})
		return n
	}
	cond := countExecs(Conditional)
	online := countExecs(Online)
	if online >= cond {
		t.Errorf("online (%d execs) should skip earlier than conditional (%d)", online, cond)
	}
}

func TestCollectiveAgreementNoHang(t *testing.T) {
	// With noise, ranks' models diverge; the internal allreduce must keep
	// bcast participation consistent (a hang here fails the test by
	// timeout; data correctness checked when executed).
	runProfiled(t, 4, 0.2, Options{Policy: Conditional, Eps: 0.3}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 32)
		for i := 0; i < 100; i++ {
			if cc.Rank() == 0 {
				for j := range buf {
					buf[j] = float64(i)
				}
			}
			cc.Bcast(0, buf)
		}
	})
}

func TestSkippedCollectiveSavesWallTime(t *testing.T) {
	full := runProfiled(t, 4, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 4096)
		for i := 0; i < 50; i++ {
			cc.Bcast(0, buf)
		}
	})
	selective := runProfiled(t, 4, 0.0, Options{Policy: Conditional, Eps: 0.5}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 4096)
		for i := 0; i < 50; i++ {
			cc.Bcast(0, buf)
		}
	})
	if selective.Wall >= full.Wall {
		t.Errorf("selective wall %g not below full wall %g", selective.Wall, full.Wall)
	}
	if selective.Skipped == 0 {
		t.Error("no collectives were skipped")
	}
	// Prediction should still be close (zero noise: exact after 2 samples).
	if e := math.Abs(selective.Predicted-full.Predicted) / full.Predicted; e > 0.02 {
		t.Errorf("skip-heavy prediction error %g", e)
	}
}

func TestSendRecvAgreement(t *testing.T) {
	rep := runProfiled(t, 2, 0.1, Options{Policy: Conditional, Eps: 0.25}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 128)
		for i := 0; i < 60; i++ {
			if cc.Rank() == 0 {
				cc.Send(1, i, buf)
			} else {
				cc.Recv(0, i, buf)
			}
		}
	})
	if rep.Skipped == 0 {
		t.Error("repeated p2p should eventually be skipped")
	}
}

func TestIsendCommittedProtocol(t *testing.T) {
	runProfiled(t, 2, 0.1, Options{Policy: Conditional, Eps: 0.25}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 64)
		for i := 0; i < 60; i++ {
			if cc.Rank() == 0 {
				r := cc.Isend(1, i, buf)
				r.Wait()
			} else {
				cc.Recv(0, i, buf)
			}
		}
	})
}

func TestIrecvLazyCompletion(t *testing.T) {
	runProfiled(t, 2, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		if cc.Rank() == 0 {
			r := cc.Isend(1, 3, []float64{7, 8})
			r.Wait()
		} else {
			buf := make([]float64, 2)
			req := cc.Irecv(0, 3, buf)
			req.Wait()
			req.Wait() // idempotent
			if buf[0] != 7 || buf[1] != 8 {
				t.Errorf("irecv got %v", buf)
			}
		}
	})
}

func TestIrecvSelectiveSkipsConsistently(t *testing.T) {
	runProfiled(t, 2, 0.1, Options{Policy: Conditional, Eps: 0.3}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 32)
		for i := 0; i < 50; i++ {
			if cc.Rank() == 0 {
				r := cc.Isend(1, i, buf)
				r.Wait()
			} else {
				req := cc.Irecv(0, i, buf)
				req.Wait()
			}
		}
		if cc.Rank() == 1 && p.skipped == 0 {
			t.Error("repeated irecv never skipped at loose tolerance")
		}
	})
}

func TestP2PDataIntegrityWhenExecuted(t *testing.T) {
	runProfiled(t, 2, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		if cc.Rank() == 0 {
			cc.Send(1, 9, []float64{1, 2, 3})
		} else {
			got := make([]float64, 3)
			cc.Recv(0, 9, got)
			if got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Errorf("profiled recv got %v", got)
			}
		}
	})
}

func TestSplitRegistersAggregates(t *testing.T) {
	runProfiled(t, 16, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		// 4x4 grid.
		row, col := cc.Rank()/4, cc.Rank()%4
		rowComm := cc.Split(row, col)
		colComm := cc.Split(col, row)
		if rowComm.Size() != 4 || colComm.Size() != 4 {
			t.Errorf("split sizes %d/%d", rowComm.Size(), colComm.Size())
		}
		if !p.HasFullGridAggregate() {
			t.Error("row+column channels should compose a full-grid aggregate")
		}
		// Communicate on the split communicators.
		sum := make([]float64, 1)
		rowComm.Allreduce([]float64{1}, sum, mpi.OpSum)
		if sum[0] != 4 {
			t.Errorf("row allreduce got %v", sum[0])
		}
	})
}

func TestEagerPropagationSwitchesKernelsOff(t *testing.T) {
	runProfiled(t, 16, 0.05, Options{Policy: Eager, Eps: 0.3}, func(p *Profiler, cc *Comm) {
		row, col := cc.Rank()/4, cc.Rank()%4
		rowComm := cc.Split(row, col)
		colComm := cc.Split(col, row)
		buf := make([]float64, 32)
		for i := 0; i < 80; i++ {
			p.Kernel("tilework", 16, 16, 0, 0, 2e4, func() {})
			rowComm.Bcast(0, buf)
			colComm.Bcast(0, buf)
		}
		if p.PropagatedKernels() == 0 {
			t.Error("eager never propagated any kernel across the grid")
		}
		if p.skipped == 0 {
			t.Error("eager never skipped despite propagation")
		}
	})
}

func TestEagerModelsPersistAcrossConfigs(t *testing.T) {
	runProfiled(t, 16, 0.05, Options{Policy: Eager, Eps: 0.3}, func(p *Profiler, cc *Comm) {
		row, col := cc.Rank()/4, cc.Rank()%4
		rowComm := cc.Split(row, col)
		colComm := cc.Split(col, row)
		buf := make([]float64, 32)
		run := func() {
			for i := 0; i < 60; i++ {
				p.Kernel("tilework", 16, 16, 0, 0, 2e4, func() {})
				rowComm.Bcast(0, buf)
				colComm.Bcast(0, buf)
			}
		}
		run()
		prop := p.PropagatedKernels()
		if prop == 0 {
			t.Fatal("no propagation in first config")
		}
		p.StartConfig(true) // reset requested, but eager keeps models
		if p.PropagatedKernels() != prop {
			t.Error("eager lost propagated models at config boundary")
		}
		execsBefore := p.executed
		run()
		if p.executed-execsBefore > 10 {
			// Most kernels should be skipped from the start of config 2.
			t.Errorf("eager re-executed %d kernels in second config", p.executed-execsBefore)
		}
	})
}

func TestStartConfigResets(t *testing.T) {
	runProfiled(t, 1, 0.0, Options{Policy: Online, Eps: 0}, func(p *Profiler, cc *Comm) {
		p.Kernel("a", 1, 1, 1, 0, 1e3, func() {})
		if len(p.PathFreqs()) == 0 {
			t.Fatal("path should have entries")
		}
		p.StartConfig(true)
		if len(p.PathFreqs()) != 0 {
			t.Error("path not cleared")
		}
		if p.KernelCount() != 0 {
			t.Error("stats not cleared with resetStats=true")
		}
		if cc.Clock() != 0 {
			t.Error("clock not reset")
		}
	})
}

func TestGlobalPathFreqs(t *testing.T) {
	runProfiled(t, 4, 0.0, Options{Policy: Online, Eps: 0}, func(p *Profiler, cc *Comm) {
		// Rank 3 does extra compute to own the critical path.
		iters := 5
		if cc.Rank() == 3 {
			iters = 9
		}
		for i := 0; i < iters; i++ {
			p.Kernel("w", 2, 2, 2, 0, 1e6, func() {})
		}
		buf := make([]float64, 8)
		cc.Bcast(0, buf) // propagation point
		freqs := p.GlobalPathFreqs()
		key := CompKey("w", 2, 2, 2, 0)
		if freqs[key] != 9 {
			t.Errorf("critical-path freq = %d, want 9 (rank 3's count)", freqs[key])
		}
	})
}

func TestAPrioriUsesSuppliedFreqs(t *testing.T) {
	key := CompKey("hot", 8, 8, 8, 0)
	// With a large a-priori count, the CI shrinks by sqrt(freq), so the
	// kernel becomes skippable sooner than conditional.
	var withFreq, without int64
	runProfiled(t, 1, 0.3, Options{Policy: APriori, Eps: 0.12,
		AprioriFreq: map[Key]int64{key: 400}}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 400; i++ {
			p.Kernel("hot", 8, 8, 8, 0, 1e4, func() {})
		}
		withFreq = p.executed
	})
	runProfiled(t, 1, 0.3, Options{Policy: Conditional, Eps: 0.12}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 400; i++ {
			p.Kernel("hot", 8, 8, 8, 0, 1e4, func() {})
		}
		without = p.executed
	})
	if withFreq >= without {
		t.Errorf("apriori with freq 400 executed %d, conditional %d; want fewer", withFreq, without)
	}
}

func TestBSPAccounting(t *testing.T) {
	rep := runProfiled(t, 4, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 100)
		cc.Bcast(0, buf)                                       // 100 words, 1 sync
		cc.Allreduce(buf[:50], make([]float64, 50), mpi.OpSum) // 50 words, 1 sync
		p.Kernel("w", 1, 1, 1, 0, 1234, func() {})             // 1234 flops
	})
	if rep.BSPCommCrit != 150 {
		t.Errorf("BSP comm crit = %g, want 150", rep.BSPCommCrit)
	}
	if rep.BSPSyncCrit != 2 {
		t.Errorf("BSP sync crit = %g, want 2", rep.BSPSyncCrit)
	}
	if rep.BSPCompCrit != 1234 {
		t.Errorf("BSP comp crit = %g, want 1234", rep.BSPCompCrit)
	}
	// Volumetric equals critical here: all ranks did the same.
	if math.Abs(rep.BSPCommVol-150) > 1e-9 {
		t.Errorf("BSP comm vol = %g, want 150", rep.BSPCommVol)
	}
}

func TestPathMetricMaxPropagation(t *testing.T) {
	rep := runProfiled(t, 2, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		// Rank 1 computes more; after a collective, both ranks' pathsets
		// must carry rank 1's computation on the critical path.
		if cc.Rank() == 1 {
			p.Kernel("big", 4, 4, 4, 0, 1e7, func() {})
		}
		buf := make([]float64, 4)
		cc.Bcast(0, buf)
		if p.path.BSPComp < 1e7 {
			t.Errorf("rank %d path comp %g did not adopt critical-path flops", cc.Rank(), p.path.BSPComp)
		}
	})
	if rep.BSPCompCrit < 1e7 {
		t.Errorf("critical-path comp %g", rep.BSPCompCrit)
	}
}

func TestProfiledLapackWrappers(t *testing.T) {
	runProfiled(t, 1, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		n := 8
		r := sim.NewRNG(3)
		g := make([]float64, n*n)
		for i := range g {
			g[i] = r.Float64()
		}
		a := make([]float64, n*n)
		p.Gemm(false, true, n, n, n, 1, g, n, g, n, 0, a, n)
		for i := 0; i < n; i++ {
			a[i+i*n] += float64(n)
		}
		if err := p.Potrf(n, a, n); err != nil {
			t.Fatalf("profiled potrf: %v", err)
		}
		if err := p.Trtri(n, a, n); err != nil {
			t.Fatalf("profiled trtri: %v", err)
		}
		if p.Samples(CompKey("gemm", n, n, n, 2)) != 1 {
			t.Error("gemm kernel not recorded under expected signature")
		}
		if p.Samples(CompKey("potrf", n, 0, 0, 0)) != 1 {
			t.Error("potrf kernel not recorded")
		}
	})
}

func TestKernelSignatureDistinguishesSizes(t *testing.T) {
	runProfiled(t, 1, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		p.Kernel("gemm", 8, 8, 8, 0, 1e3, func() {})
		p.Kernel("gemm", 16, 16, 16, 0, 8e3, func() {})
		if p.KernelCount() != 2 {
			t.Errorf("kernel count = %d, want 2 distinct signatures", p.KernelCount())
		}
	})
}

func TestReportDeterministic(t *testing.T) {
	run := func() Report {
		return runProfiled(t, 4, 0.08, Options{Policy: Online, Eps: 0.2}, func(p *Profiler, cc *Comm) {
			buf := make([]float64, 256)
			for i := 0; i < 30; i++ {
				cc.Bcast(i%4, buf)
				p.Kernel("w", 8, 8, 8, 0, 5e4, func() {})
				cc.Allreduce(buf[:16], make([]float64, 16), mpi.OpSum)
			}
		})
	}
	a, b := run(), run()
	if a.Predicted != b.Predicted || a.Wall != b.Wall || a.Executed != b.Executed {
		t.Errorf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}
