package critter

import (
	"critter/internal/blas"
	"critter/internal/lapack"
)

// BLAS and LAPACK interception: the factorization libraries invoke their
// local kernels through these wrappers so the profiler can model and
// selectively execute them (Section V-D). Signatures are parameterized on
// matrix dimensions and flags. Numerical errors from skipped-upstream
// garbage inputs are swallowed during tuning, as the paper tolerates
// (inputs are reset between runs); callers that need the error (full
// execution) receive it.

func boolFlag(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Gemm profiles C = alpha*op(A)*op(B) + beta*C.
func (p *Profiler) Gemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	p.Kernel("gemm", m, n, k, boolFlag(transA)+2*boolFlag(transB),
		lapack.GemmFlops(m, n, k), func() {
			blas.Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		})
}

// Syrk profiles a symmetric rank-k update.
func (p *Profiler) Syrk(uplo blas.Uplo, trans bool, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	p.Kernel("syrk", n, k, 0, int(uplo)+2*boolFlag(trans),
		lapack.SyrkFlops(n, k), func() {
			blas.Dsyrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
		})
}

// Trsm profiles a triangular solve with an m-by-n right-hand side.
func (p *Profiler) Trsm(side blas.Side, uplo blas.Uplo, transA bool, diag blas.Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	flags := int(side) + 2*int(uplo) + 4*boolFlag(transA) + 8*int(diag)
	p.Kernel("trsm", m, n, 0, flags,
		lapack.TrsmFlops(side == blas.Left, m, n), func() {
			blas.Dtrsm(side, uplo, transA, diag, m, n, alpha, a, lda, b, ldb)
		})
}

// Trmm profiles a triangular matrix multiply.
func (p *Profiler) Trmm(side blas.Side, uplo blas.Uplo, transA bool, diag blas.Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	flags := int(side) + 2*int(uplo) + 4*boolFlag(transA) + 8*int(diag)
	p.Kernel("trmm", m, n, 0, flags,
		lapack.TrmmFlops(side == blas.Left, m, n), func() {
			blas.Dtrmm(side, uplo, transA, diag, m, n, alpha, a, lda, b, ldb)
		})
}

// Potrf profiles a Cholesky factorization. The numerical error, if any, is
// returned from executed invocations and nil from skipped ones.
func (p *Profiler) Potrf(n int, a []float64, lda int) error {
	var err error
	p.Kernel("potrf", n, 0, 0, 0, lapack.PotrfFlops(n), func() {
		err = lapack.Dpotrf(n, a, lda)
	})
	return err
}

// Trtri profiles a lower-triangular inversion.
func (p *Profiler) Trtri(n int, a []float64, lda int) error {
	var err error
	p.Kernel("trtri", n, 0, 0, 0, lapack.TrtriFlops(n), func() {
		err = lapack.Dtrtri(n, a, lda)
	})
	return err
}

// Getrf profiles an LU factorization with partial pivoting.
func (p *Profiler) Getrf(m, n int, a []float64, lda int, ipiv []int) error {
	var err error
	p.Kernel("getrf", m, n, 0, 0, lapack.GetrfFlops(m, n), func() {
		err = lapack.Dgetrf(m, n, a, lda, ipiv)
	})
	return err
}

// GetrfNoPiv profiles an unpivoted LU factorization (Householder
// reconstruction kernel).
func (p *Profiler) GetrfNoPiv(m, n int, a []float64, lda int) error {
	var err error
	p.Kernel("getrfnp", m, n, 0, 0, lapack.GetrfFlops(m, n), func() {
		err = lapack.DgetrfNoPiv(m, n, a, lda)
	})
	return err
}

// Geqrf profiles a blocked Householder QR factorization.
func (p *Profiler) Geqrf(m, n, nb int, a []float64, lda int, tau []float64) {
	p.Kernel("geqrf", m, n, nb, 0, lapack.GeqrfFlops(m, n), func() {
		lapack.Dgeqrf(m, n, nb, a, lda, tau)
	})
}

// Geqrt profiles a tile QR factorization with inner block size ib.
func (p *Profiler) Geqrt(m, n, ib int, a []float64, lda int, t []float64, ldt int, tau []float64) {
	p.Kernel("geqrt", m, n, ib, 0, lapack.GeqrfFlops(m, n), func() {
		lapack.Dgeqrt(m, n, ib, a, lda, t, ldt, tau)
	})
}

// Gemqrt profiles the application of a tile Q (or its transpose).
func (p *Profiler) Gemqrt(trans bool, m, n, k, ib int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int) {
	p.Kernel("gemqrt", m, n, k, boolFlag(trans), lapack.OrmqrFlops(m, n, k), func() {
		lapack.Dgemqrt(trans, m, n, k, ib, v, ldv, t, ldt, c, ldc)
	})
}

// Tpqrt profiles a triangular-pentagonal QR factorization.
func (p *Profiler) Tpqrt(m, n, ib int, a []float64, lda int, b []float64, ldb int, t []float64, ldt int) {
	p.Kernel("tpqrt", m, n, ib, 0, lapack.TpqrtFlops(m, n), func() {
		lapack.Dtpqrt(m, n, ib, a, lda, b, ldb, t, ldt)
	})
}

// Tpmqrt profiles the application of a tpqrt block reflector.
func (p *Profiler) Tpmqrt(trans bool, m, n, k, ib int, v []float64, ldv int, t []float64, ldt int, atop []float64, ldat int, b []float64, ldb int) {
	p.Kernel("tpmqrt", m, n, k, boolFlag(trans), lapack.TpmqrtFlops(m, n, k), func() {
		lapack.Dtpmqrt(trans, m, n, k, ib, v, ldv, t, ldt, atop, ldat, b, ldb)
	})
}

// Ormqr profiles the application of reflectors from a Geqrf factorization.
func (p *Profiler) Ormqr(trans bool, m, n, k int, a []float64, lda int, tau []float64, c []float64, ldc int) {
	p.Kernel("ormqr", m, n, k, boolFlag(trans), lapack.OrmqrFlops(m, n, k), func() {
		lapack.Dorm2r(trans, m, n, k, a, lda, tau, c, ldc)
	})
}

// Orgqr profiles the explicit formation of Q.
func (p *Profiler) Orgqr(m, k int, a []float64, lda int, tau []float64, q []float64, ldq int) {
	p.Kernel("orgqr", m, k, 0, 0, lapack.OrgqrFlops(m, k), func() {
		lapack.Dorgqr(m, k, a, lda, tau, q, ldq)
	})
}
