package critter

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"critter/internal/mpi"
	"critter/internal/stats"
)

// goldenProfile is a fixed profile exercising every field of the schema.
func goldenProfile() *Profile {
	return &Profile{
		SchemaVersion: ProfileSchemaVersion,
		Estimator:     "ci-mean",
		Kernels: map[Key]KernelModel{
			CompKey("gemm", 8, 8, 8, 0):    {Count: 12, Mean: 2.5e-5, M2: 1.5e-11, Pooled: true},
			CompKey("potrf", 16, 0, 0, 0):  {Count: 3, Mean: 4e-6, M2: 2e-13},
			CommKey("bcast", 64, 8, 1):     {Count: 7, Mean: 1.25e-6, M2: 9e-14},
			CommKey("allreduce", 32, 4, 2): {Count: 2, Mean: 8e-7, M2: 1e-15},
		},
		Families: map[string]Family{
			"gemm": {Points: []FamilyPoint{
				{Flops: 1024, Mean: 3.1e-7},
				{Flops: 8192, Mean: 2.2e-6},
				{Flops: 65536, Mean: 1.7e-5},
			}},
		},
		PathFreqs: map[Key]int64{
			CompKey("gemm", 8, 8, 8, 0): 40,
			CommKey("bcast", 64, 8, 1):  10,
		},
	}
}

// TestProfileGoldenFile pins the on-disk profile format: the canonical
// profile must encode byte-for-byte to testdata/profile.golden.json, and
// the golden file must decode back to the same value. A deliberate format
// change means regenerating the golden file (delete it and run with
// -run TestProfileGoldenFile -update-golden is not provided: re-create it
// from the failure diff) and bumping ProfileSchemaVersion if the layout is
// incompatible.
func TestProfileGoldenFile(t *testing.T) {
	goldenPath := filepath.Join("testdata", "profile.golden.json")
	got, err := goldenProfile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("encoded profile differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
	back, err := DecodeProfile(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenProfile()) {
		t.Errorf("golden file decoded to\n%+v\nwant\n%+v", back, goldenProfile())
	}
}

func TestProfileEncodeDecodeRoundTrip(t *testing.T) {
	p := goldenProfile()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip changed the profile:\n%+v\n%+v", back, p)
	}
}

func TestDecodeProfileRejectsBadInput(t *testing.T) {
	for name, data := range map[string]string{
		"not json":        `{`,
		"future schema":   `{"schemaVersion": 99}`,
		"zero schema":     `{"schemaVersion": 0}`,
		"zero count":      `{"schemaVersion": 1, "kernels": {"comp:gemm(1,2,3;0)": {"count": 0, "mean": 1}}}`,
		"negative mean":   `{"schemaVersion": 1, "kernels": {"comp:gemm(1,2,3;0)": {"count": 2, "mean": -1, "m2": 0}}}`,
		"bad key":         `{"schemaVersion": 1, "kernels": {"bogus": {"count": 2, "mean": 1, "m2": 0}}}`,
		"bad family":      `{"schemaVersion": 1, "families": {"gemm": {"points": [{"flops": 0, "mean": 1}]}}}`,
		"zero path freq":  `{"schemaVersion": 1, "pathFreqs": {"comp:gemm(1,2,3;0)": 0}}`,
		"non-finite mean": `{"schemaVersion": 1, "families": {"gemm": {"points": [{"flops": 1, "mean": 1e999}]}}}`,
		"unsorted points": `{"schemaVersion": 1, "families": {"gemm": {"points": [{"flops": 5, "mean": 1}, {"flops": 1, "mean": 1}]}}}`,
		"duplicate flops": `{"schemaVersion": 1, "families": {"gemm": {"points": [{"flops": 5, "mean": 1}, {"flops": 5, "mean": 2}]}}}`,
	} {
		if _, err := DecodeProfile([]byte(data)); err == nil {
			t.Errorf("%s: DecodeProfile accepted %s", name, data)
		}
	}
}

func TestKeyTextRoundTrip(t *testing.T) {
	keys := []Key{
		CompKey("gemm", 8, 16, 32, 3),
		CompKey("potrf", -1, 0, 0, 0),
		CommKey("bcast", 64, 8, 1),
		CommKey("send", 128, 2, -7),
		{Kind: KindComp, Name: "", P1: 1, P2: 2, P3: 3, P4: 4},
	}
	for _, k := range keys {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var back Key
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %s -> %v", k, text, back)
		}
	}
	if _, err := (Key{Name: "bad(name"}).MarshalText(); err == nil {
		t.Error("parenthesized name encoded without error")
	}
	for _, bad := range []string{"", "comp", "x:y(1,2,3;4)", "comp:g(1,2;3)", "comp:g(1,2,3)", "comp:g(a,2,3;4)", "comp:g(1,2,3;4"} {
		var k Key
		if err := k.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("UnmarshalText(%q) accepted", bad)
		}
	}
}

func FuzzKeyText(f *testing.F) {
	f.Add("comp:gemm(8,16,32;3)")
	f.Add("comm:bcast(64,8,1;0)")
	f.Add("comp:(1,2,3;4)")
	f.Add("bogus")
	f.Add("comp:g(1,2,3;4)trailer")
	f.Fuzz(func(t *testing.T, s string) {
		var k Key
		if err := k.UnmarshalText([]byte(s)); err != nil {
			return
		}
		// Anything accepted must re-encode losslessly.
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("accepted %q but cannot re-encode %v: %v", s, k, err)
		}
		var back Key
		if err := back.UnmarshalText(text); err != nil || back != k {
			t.Fatalf("accepted %q -> %v -> %s, not a fixed point: %v", s, k, text, err)
		}
	})
}

func TestProfileMerge(t *testing.T) {
	key := CompKey("gemm", 8, 8, 8, 0)
	var w1, w2, all stats.Welford
	for _, x := range []float64{1, 2, 3} {
		w1.Add(x)
		all.Add(x)
	}
	for _, x := range []float64{4, 5} {
		w2.Add(x)
		all.Add(x)
	}
	a := &Profile{
		SchemaVersion: 1,
		Kernels:       map[Key]KernelModel{key: {Count: w1.Count(), Mean: w1.Mean(), M2: w1.M2()}},
		Families:      map[string]Family{"gemm": {Points: []FamilyPoint{{Flops: 1, Mean: 1}, {Flops: 4, Mean: 4}}}},
		PathFreqs:     map[Key]int64{key: 5},
	}
	b := &Profile{
		SchemaVersion: 1,
		Kernels:       map[Key]KernelModel{key: {Count: w2.Count(), Mean: w2.Mean(), M2: w2.M2()}},
		Families:      map[string]Family{"gemm": {Points: []FamilyPoint{{Flops: 2, Mean: 2}, {Flops: 4, Mean: 8}}}},
		PathFreqs:     map[Key]int64{key: 3},
	}
	m := MergeProfiles(a, b)
	km := m.Kernels[key]
	if km.Count != all.Count() || math.Abs(km.Mean-all.Mean()) > 1e-12 {
		t.Errorf("merged kernel model %+v, want count %d mean %g", km, all.Count(), all.Mean())
	}
	wantPts := []FamilyPoint{{Flops: 1, Mean: 1}, {Flops: 2, Mean: 2}, {Flops: 4, Mean: 8}}
	if got := m.Families["gemm"].Points; !reflect.DeepEqual(got, wantPts) {
		t.Errorf("merged family points %v, want %v (b wins on equal flops)", got, wantPts)
	}
	if m.PathFreqs[key] != 5 {
		t.Errorf("merged path freq %d, want max 5", m.PathFreqs[key])
	}
	// Inputs untouched.
	if a.Kernels[key].Count != 3 || b.Kernels[key].Count != 2 {
		t.Error("MergeProfiles mutated its inputs")
	}
	// nil handling.
	if MergeProfiles(nil, nil) != nil {
		t.Error("MergeProfiles(nil, nil) != nil")
	}
	if got := MergeProfiles(nil, b); !reflect.DeepEqual(got, b) || got == b {
		t.Error("MergeProfiles(nil, b) should deep-copy b")
	}
}

// TestEstimatorDefaultMatchesExplicit is the redesign's core contract at
// the profiler level: a nil Options.Estimator and an explicit
// NewCIMeanEstimator produce bit-identical reports. Each rank constructs
// its own estimator instance (they are not shareable across ranks).
func TestEstimatorDefaultMatchesExplicit(t *testing.T) {
	run := func(explicit bool) Report {
		w := mpi.NewWorld(4, testMachine(0.05), 7)
		var rep Report
		var mu sync.Mutex
		if err := w.Run(func(c *mpi.Comm) {
			opts := Options{Policy: Online, Eps: 0.125}
			if explicit {
				opts.Estimator = NewCIMeanEstimator(false)
			}
			p, cc := New(c, opts)
			buf := make([]float64, 32)
			for i := 0; i < 40; i++ {
				p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() {})
				p.Kernel("gemm", 16, 16, 16, 0, 8e4, func() {})
				cc.Bcast(0, buf)
			}
			r := p.Report()
			if c.Rank() == 0 {
				mu.Lock()
				rep = r
				mu.Unlock()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	def := run(false)
	expl := run(true)
	if def != expl {
		t.Errorf("default estimator differs from explicit CI-mean:\n%+v\n%+v", def, expl)
	}
}

// TestProfilerExportAndPrior checks the warm-start loop at the profiler
// level: an exported profile seeded as a prior makes kernels skip after a
// single validation execution, and exports exclude prior samples so
// chaining runs does not double-count.
func TestProfilerExportAndPrior(t *testing.T) {
	workload := func(p *Profiler, cc *Comm) {
		for i := 0; i < 30; i++ {
			p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() {})
		}
	}
	var exported *Profile
	cold := runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.05}, func(p *Profiler, cc *Comm) {
		workload(p, cc)
		exported = p.ExportProfile()
	})
	if exported == nil || len(exported.Kernels) == 0 {
		t.Fatalf("export empty: %+v", exported)
	}
	key := CompKey("gemm", 8, 8, 8, 0)
	if exported.Kernels[key].Count != cold.Executed {
		t.Errorf("exported %d samples, executed %d", exported.Kernels[key].Count, cold.Executed)
	}
	if exported.PathFreqs[key] != 30 {
		t.Errorf("exported path freq %d, want 30", exported.PathFreqs[key])
	}
	var warmExported *Profile
	warm := runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.05, Prior: exported},
		func(p *Profiler, cc *Comm) {
			if p.Samples(key) != exported.Kernels[key].Count {
				t.Errorf("prior not visible: %d samples before first run", p.Samples(key))
			}
			workload(p, cc)
			warmExported = p.ExportProfile()
		})
	if warm.Executed >= cold.Executed {
		t.Errorf("warm run executed %d kernels, cold %d — prior had no effect", warm.Executed, cold.Executed)
	}
	if warm.Executed != 1 {
		t.Errorf("warm run executed %d, want exactly the one validation execution", warm.Executed)
	}
	// The warm export holds only this run's samples.
	if got := warmExported.Kernels[key].Count; got != warm.Executed {
		t.Errorf("warm export has %d samples, want %d (prior must be excluded)", got, warm.Executed)
	}
}

// TestProfilerPriorSurvivesReset checks that StartConfig's statistics reset
// returns the estimator to the prior, not to cold: every configuration of a
// warm-started sweep benefits.
func TestProfilerPriorSurvivesReset(t *testing.T) {
	key := CompKey("gemm", 8, 8, 8, 0)
	var exported *Profile
	runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.05}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 30; i++ {
			p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() {})
		}
		exported = p.ExportProfile()
	})
	runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.05, Prior: exported},
		func(p *Profiler, cc *Comm) {
			p.StartConfig(true)
			if p.Samples(key) != exported.Kernels[key].Count {
				t.Errorf("after reset: %d samples, want the prior's %d", p.Samples(key), exported.Kernels[key].Count)
			}
			execs := 0
			for i := 0; i < 10; i++ {
				p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() { execs++ })
			}
			if execs != 1 {
				t.Errorf("config after reset executed %d times, want 1 (warm)", execs)
			}
		})
}

// TestProfileArchiveSpansConfigs checks that ExportProfile covers every
// configuration of a run, not just the live state after the last reset.
func TestProfileArchiveSpansConfigs(t *testing.T) {
	k1 := CompKey("gemm", 8, 8, 8, 0)
	k2 := CompKey("gemm", 16, 16, 16, 0)
	runProfiled(t, 1, 0.05, Options{Policy: Conditional, Eps: 0.05}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 5; i++ {
			p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() {})
		}
		p.StartConfig(true) // wipes live stats, archives them
		for i := 0; i < 5; i++ {
			p.Kernel("gemm", 16, 16, 16, 0, 8e4, func() {})
		}
		exp := p.ExportProfile()
		if exp.Kernels[k1].Count == 0 || exp.Kernels[k2].Count == 0 {
			t.Errorf("export lost a configuration: %+v", exp.Kernels)
		}
		if exp.PathFreqs[k1] != 5 || exp.PathFreqs[k2] != 5 {
			t.Errorf("path freqs %v, want 5 for both configs' kernels", exp.PathFreqs)
		}
	})
}

// TestGlobalProfilePoolsRanks checks the collective export: every rank's
// samples pool into one profile, identical on all ranks.
func TestGlobalProfilePoolsRanks(t *testing.T) {
	const ranks = 4
	key := CompKey("gemm", 8, 8, 8, 0)
	profiles := make([]*Profile, ranks)
	runProfiled(t, ranks, 0.05, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 10; i++ {
			p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() {})
		}
		profiles[cc.Rank()] = p.GlobalProfile()
	})
	if profiles[0].Kernels[key].Count != 10*ranks {
		t.Errorf("global profile has %d samples, want %d", profiles[0].Kernels[key].Count, 10*ranks)
	}
	for r := 1; r < ranks; r++ {
		if !reflect.DeepEqual(profiles[0], profiles[r]) {
			t.Errorf("rank %d's global profile differs from rank 0's", r)
		}
	}
}

// TestWelfordCarrierExcludesPrior pins the eager-pooling contract: the
// nomination export carries only rank-local samples (every rank shares the
// same prior, which must enter a pooled model exactly once, through the
// layered query path), and an imported pooled model neither destroys the
// prior layer nor leaks into ExportProfile unmarked.
func TestWelfordCarrierExcludesPrior(t *testing.T) {
	key := CompKey("gemm", 8, 8, 8, 0)
	prior := &Profile{
		SchemaVersion: ProfileSchemaVersion,
		Kernels:       map[Key]KernelModel{key: {Count: 10, Mean: 2e-6, M2: 1e-13}},
	}
	est := NewCIMeanEstimator(false)
	est.(ProfileCarrier).LoadPrior(prior)
	wc := est.(WelfordCarrier)
	if _, ok := wc.ExportWelford(key); ok {
		t.Error("nomination export leaked prior samples before any local observation")
	}
	est.Observe(key, 1e4, 2.1e-6, 0.1)
	w, ok := wc.ExportWelford(key)
	if !ok || w.Count() != 1 {
		t.Errorf("nomination export has %d samples, want the 1 local one", w.Count())
	}
	if est.Samples(key) != 11 {
		t.Errorf("layered query sees %d samples, want prior 10 + 1 local", est.Samples(key))
	}
	// Import a pooled model (as if merged across 4 ranks): the prior layer
	// must survive underneath and the export must flag the pooled entry.
	var pooledW stats.Welford
	for _, x := range []float64{2e-6, 2.1e-6, 2.2e-6, 1.9e-6} {
		pooledW.Add(x)
	}
	wc.ImportWelford(key, pooledW)
	if est.Samples(key) != 10+4 {
		t.Errorf("after import: %d samples, want prior 10 + pooled 4", est.Samples(key))
	}
	exp := est.(ProfileCarrier).ExportProfile()
	km := exp.Kernels[key]
	if km.Count != 4 || !km.Pooled {
		t.Errorf("export after import: count %d pooled %v, want 4 samples marked pooled", km.Count, km.Pooled)
	}
}

// TestWelfordMoments checks the stats accessors backing serialization.
func TestWelfordMoments(t *testing.T) {
	var w stats.Welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.Add(x)
	}
	back := stats.WelfordFromMoments(w.Count(), w.Mean(), w.M2())
	if back.Count() != w.Count() || back.Mean() != w.Mean() || back.Variance() != w.Variance() {
		t.Errorf("moments round trip: %+v vs %+v", back, w)
	}
	if z := stats.WelfordFromMoments(-1, 5, 5); z.Count() != 0 {
		t.Errorf("negative count not clamped: %+v", z)
	}
	if z := stats.WelfordFromMoments(3, 5, -1); z.Variance() < 0 {
		t.Errorf("negative m2 not clamped: %+v", z)
	}
}
