package critter

import (
	"critter/internal/channel"
	"critter/internal/mpi"
	"critter/internal/obs"
)

// Comm is a profiled communicator: every operation runs the paper's path
// propagation protocol (internal piggyback messages on a duplicate
// communicator) around the user operation, which is selectively executed.
// Internal messages travel through the profiler's pre-resolved typed lane
// (mpi.Lane[intMsg]), so the piggyback path never boxes.
type Comm struct {
	p        *Profiler
	user     *mpi.Comm
	internal *mpi.Comm
	ch       channel.Channel
	chOK     bool
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.user.Rank() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.user.Size() }

// Raw returns the underlying unprofiled communicator (for clock access and
// verification traffic that must not enter the kernel profiles).
func (c *Comm) Raw() *mpi.Comm { return c.user }

// Profiler returns the owning profiler.
func (c *Comm) Profiler() *Profiler { return c.p }

// Channel returns the communicator's placement signature.
func (c *Comm) Channel() channel.Channel { return c.ch }

// stride returns the channel stride parameter used in communication-kernel
// signatures (0 for irregular groups).
func (c *Comm) stride() int {
	if !c.chOK || len(c.ch.Dims) == 0 {
		if c.chOK {
			return 1 // single-rank communicator
		}
		return 0
	}
	return c.ch.Dims[0].Stride
}

// Split partitions the profiled communicator (as MPI_Comm_split), splitting
// the internal communicator alongside and registering the new channel with
// the aggregate-channel machinery (Figure 2). Ranks passing a negative
// color receive nil.
func (c *Comm) Split(color, key int) *Comm {
	user := c.user.Split(color, key)
	internal := c.internal.Split(color, key)
	if user == nil {
		return nil
	}
	ch, ok := channel.FromGroup(user.Group())
	if ok {
		c.p.registerChannel(ch)
	}
	return &Comm{p: c.p, user: user, internal: internal, ch: ch, chOK: ok}
}

// collective intercepts one blocking collective: agree on execution via an
// internal allreduce (which also propagates pathsets), then run or skip the
// user operation, update the kernel model, and account path costs.
func (c *Comm) collective(op string, words int, bspWords float64, run func() float64) {
	p := c.p
	key := CommKey(op, words, c.user.Size(), c.stride())
	id := p.intern(key)
	ks := p.stats(id)
	p.notePath(id)
	local := intMsg{Exec: p.shouldExecute(key, id, ks), Path: p.snapshot()}
	g := c.p.lane.Allreduce(c.internal, local, mergeIntMsg)
	p.adopt(g.Path)
	p.traceRound(op)
	var dt float64
	if g.Exec {
		dt = run()
		p.record(key, id, ks, 0, dt)
	} else {
		dt = p.estimate(key, id)
		p.skipped++
	}
	p.accountComm(id, dt, bspWords)
	if p.opts.Policy == Eager {
		p.aggregateEager(c)
	}
}

// traceRound emits one kernel-propagation round event: op names the
// intercepted operation, Virtual is the rank's clock after the round's
// pathset adoption, and Memoized flags rounds whose latest local skip
// decision was replayed from the kernel memo's predictability cache
// (consumed here so an op without its own decision, like wait, never
// inherits one). p.trace is non-nil only on rank 0 of a traced world, so
// the disabled hot path costs exactly this one branch.
func (p *Profiler) traceRound(op string) {
	if p.trace == nil {
		return
	}
	ev := obs.Event{
		Kind: obs.KindRound, Phase: obs.PhasePoint,
		Name: op, Virtual: p.world.user.Clock(),
	}
	if p.lastMemoized {
		ev.Memoized = 1
		p.lastMemoized = false
	}
	p.trace.Emit(ev)
}

// accountComm adds one communication kernel's contribution to the pathset
// and volumetric accumulators. id is the kernel's interned signature.
func (p *Profiler) accountComm(id uint32, dt, bspWords float64) {
	p.path.ExecTime += dt
	p.path.CommTime += dt
	p.path.BSPComm += bspWords
	p.path.BSPSync++
	p.volCommWords += bspWords
	p.volSync++
	p.pathKernelTime[id] += dt
}

// Barrier profiles a barrier synchronization.
func (c *Comm) Barrier() {
	c.collective("barrier", 0, 0, func() float64 { return c.user.Barrier() })
}

// Bcast profiles a broadcast of buf from root.
func (c *Comm) Bcast(root int, buf []float64) {
	c.collective("bcast", len(buf), float64(len(buf)),
		func() float64 { return c.user.Bcast(root, buf) })
}

// Reduce profiles an elementwise reduction to root.
func (c *Comm) Reduce(root int, in, out []float64, op mpi.ReduceOp) {
	c.collective("reduce", len(in), float64(len(in)),
		func() float64 { return c.user.Reduce(root, in, out, op) })
}

// Allreduce profiles an elementwise all-reduction.
func (c *Comm) Allreduce(in, out []float64, op mpi.ReduceOp) {
	c.collective("allreduce", len(in), float64(len(in)),
		func() float64 { return c.user.Allreduce(in, out, op) })
}

// Allgather profiles an allgather of equal-size contributions.
func (c *Comm) Allgather(in, out []float64) {
	c.collective("allgather", len(in), float64(len(in)*(c.user.Size()-1)),
		func() float64 { return c.user.Allgather(in, out) })
}

// Gather profiles a gather to root.
func (c *Comm) Gather(root int, in, out []float64) {
	c.collective("gather", len(in), float64(len(in)*(c.user.Size()-1)),
		func() float64 { return c.user.Gather(root, in, out) })
}

// Scatter profiles a scatter from root; out is each rank's segment.
func (c *Comm) Scatter(root int, in, out []float64) {
	c.collective("scatter", len(out), float64(len(out)*(c.user.Size()-1)),
		func() float64 { return c.user.Scatter(root, in, out) })
}

// p2pKey builds the signature of a point-to-point kernel: size-2
// sub-communicator whose stride is the world-rank distance of the
// endpoints, exactly channel.P2P's stride without materializing the
// channel (this runs on every p2p interception).
func (c *Comm) p2pKey(op string, words, peer int) Key {
	a, b := c.user.Group()[c.user.Rank()], c.user.Group()[peer]
	s := b - a
	if s < 0 {
		s = -s
	}
	if s == 0 {
		s = 1 // self-message; degenerate but keep a valid stride
	}
	return CommKey(op, words, 2, s)
}

// Internal piggyback messages are tagged by direction so that a send's
// profile message can only pair with the matching receive's reply (and vice
// versa), regardless of how the application interleaves traffic between the
// same pair of ranks.
//
// The sender-to-receiver leg (sendIntTag) travels on the fused lane
// (mpi.FusedLane): a committed executing send posts its vote and its data
// as ONE timed message, while vote-only cases post an untimed aux-only
// message. The receiver-to-sender leg (recvIntTag) and the symmetric
// exchange (srIntTag) stay on the plain intMsg lane. Fusing is
// observationally invisible — the fused message's cost model is exactly
// Isend's and untimed messages never touch clocks or RNG streams — and
// saves one fabric message per committed point-to-point pair.
func sendIntTag(tag int) int { return 3 * tag }
func recvIntTag(tag int) int { return 3*tag + 1 }
func srIntTag(tag int) int   { return 3*tag + 2 }

// Send profiles a blocking send. The execution decision is agreed with the
// receiver through an internal exchange, so the pair always matches; like a
// synchronous-mode send, it completes once the receiver reaches its
// matching receive. For simultaneous bidirectional traffic on one tag use
// Sendrecv, whose combined protocol cannot deadlock.
func (c *Comm) Send(dest, tag int, buf []float64) {
	p := c.p
	key := c.p2pKey("send", len(buf), dest)
	id := p.intern(key)
	ks := p.stats(id)
	p.notePath(id)
	local := p.shouldExecute(key, id, ks)
	p.flane.Send(c.internal, dest, sendIntTag(tag), intMsg{Exec: local, Path: p.snapshot()})
	peer := c.p.lane.Recv(c.internal, dest, recvIntTag(tag))
	p.adopt(peer.Path)
	p.traceRound("send")
	exec := local || peer.Exec
	var dt float64
	if exec {
		dt = c.user.Send(dest, tag, buf)
		p.record(key, id, ks, 0, dt)
	} else {
		dt = p.estimate(key, id)
		p.skipped++
	}
	p.accountComm(id, dt, float64(len(buf)))
}

// Recv profiles a blocking receive matching either a profiled Send or a
// profiled Isend. For Isend matches the sender has already committed its
// decision and the receiver follows it.
func (c *Comm) Recv(src, tag int, buf []float64) {
	p := c.p
	key := c.p2pKey("recv", len(buf), src)
	id := p.intern(key)
	ks := p.stats(id)
	p.notePath(id)
	local := p.shouldExecute(key, id, ks)
	c.p.lane.Send(c.internal, src, recvIntTag(tag), intMsg{Exec: local, Path: p.snapshot()})
	peer, fdt, hasData := p.flane.Recv(c.internal, src, sendIntTag(tag), buf)
	p.adopt(peer.Path)
	p.traceRound("recv")
	exec := local || peer.Exec
	if peer.Committed {
		exec = peer.Exec
	}
	var dt float64
	if exec {
		if hasData {
			// A committed executing Isend fused its data into the vote
			// message; the payload is already in buf and fdt is the sampled
			// arrival duration Comm.Recv would have returned.
			dt = fdt
		} else {
			dt = c.user.Recv(src, tag, buf)
		}
		p.record(key, id, ks, 0, dt)
	} else {
		dt = p.estimate(key, id)
		p.skipped++
	}
	p.accountComm(id, dt, float64(len(buf)))
}

// Sendrecv profiles a combined send and receive. When the operation is a
// symmetric pairwise exchange (same peer and tag in both directions, the
// butterfly pattern of TSQR), a single combined internal exchange carries
// votes for both kernels, so the two sides always reach identical execution
// decisions and the pair cannot deadlock. Asymmetric usages fall back to
// Send followed by Recv.
func (c *Comm) Sendrecv(dest, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) {
	if dest != src || sendTag != recvTag {
		c.Send(dest, sendTag, sendBuf)
		c.Recv(src, recvTag, recvBuf)
		return
	}
	p := c.p
	sendKey := c.p2pKey("send", len(sendBuf), dest)
	recvKey := c.p2pKey("recv", len(recvBuf), src)
	sendID, recvID := p.intern(sendKey), p.intern(recvKey)
	// One ensure before taking both pointers: a second stats call could
	// grow the dense tables and invalidate the first.
	p.ensure(max(sendID, recvID))
	sks, rks := p.stats(sendID), p.stats(recvID)
	p.notePath(sendID)
	p.notePath(recvID)
	localSend := p.shouldExecute(sendKey, sendID, sks)
	localRecv := p.shouldExecute(recvKey, recvID, rks)
	peer := c.p.lane.Exchange(c.internal, dest, srIntTag(sendTag),
		intMsg{Exec: localSend, Exec2: localRecv, Path: p.snapshot()})
	p.adopt(peer.Path)
	p.traceRound("sendrecv")
	// My send pairs with the peer's receive and vice versa; both sides
	// compute the same OR for each direction.
	execSend := localSend || peer.Exec2
	execRecv := localRecv || peer.Exec
	var dt float64
	if execSend {
		dt = c.user.Send(dest, sendTag, sendBuf)
		p.record(sendKey, sendID, sks, 0, dt)
	} else {
		dt = p.estimate(sendKey, sendID)
		p.skipped++
	}
	p.accountComm(sendID, dt, float64(len(sendBuf)))
	if execRecv {
		dt = c.user.Recv(src, recvTag, recvBuf)
		p.record(recvKey, recvID, rks, 0, dt)
	} else {
		dt = p.estimate(recvKey, recvID)
		p.skipped++
	}
	p.accountComm(recvID, dt, float64(len(recvBuf)))
}

// Request is a profiled nonblocking operation handle.
type Request struct {
	c        *Comm
	id       uint32
	peer     int
	tag      int
	exec     bool
	irecvBuf []float64 // non-nil for Irecv: resolved lazily at Wait
	done     bool
}

// Isend profiles a nonblocking send. The execution decision is made
// unilaterally from the sender's model (a committed decision the receiver
// follows), and the receiver's pathset reply is consumed at Wait, mirroring
// Figure 2's nonblocking protocol. An executing send fuses its vote and
// data into one timed message; a skipped send posts the vote untimed.
func (c *Comm) Isend(dest, tag int, buf []float64) *Request {
	p := c.p
	key := c.p2pKey("isend", len(buf), dest)
	id := p.intern(key)
	ks := p.stats(id)
	p.notePath(id)
	exec := p.shouldExecute(key, id, ks)
	aux := intMsg{Exec: exec, Committed: true, Path: p.snapshot()}
	p.traceRound("isend")
	r := &Request{c: c, id: id, peer: dest, tag: tag, exec: exec}
	var dt float64
	if exec {
		// Vote and data fuse into one timed message with Isend's exact
		// cost model (the caller may reuse buf immediately).
		t0 := c.user.Clock()
		p.flane.Isend(c.internal, dest, sendIntTag(tag), aux, buf)
		dt = c.user.Clock() - t0
		p.record(key, id, ks, 0, dt)
	} else {
		p.flane.Send(c.internal, dest, sendIntTag(tag), aux)
		dt = p.estimate(key, id)
		p.skipped++
	}
	p.accountComm(id, dt, float64(len(buf)))
	return r
}

// Irecv posts a profiled nonblocking receive. The interception is lazy: the
// internal exchange, the execution decision, and the (possibly skipped)
// user receive all happen at Wait, which is when Figure 2's protocol
// resolves outstanding request completion. buf must stay valid until then.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return &Request{c: c, peer: src, tag: tag, irecvBuf: buf}
}

// Wait completes a profiled nonblocking operation, consuming the peer's
// internal reply and propagating its pathset.
func (r *Request) Wait() {
	if r.done {
		return
	}
	r.done = true
	if r.irecvBuf != nil {
		r.c.Recv(r.peer, r.tag, r.irecvBuf)
		return
	}
	p := r.c.p
	m := r.c.p.lane.Recv(r.c.internal, r.peer, recvIntTag(r.tag))
	p.adopt(m.Path)
	p.traceRound("wait")
}

// Waitall completes profiled requests in order.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Clock returns the rank's virtual time.
func (c *Comm) Clock() float64 { return c.user.Clock() }
