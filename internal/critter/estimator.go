package critter

import (
	"sort"

	"critter/internal/stats"
)

// The pluggable prediction layer. The paper's statistical machinery — the
// per-signature confidence-interval models that drive shouldExecute and the
// family extrapolator of Section VIII — lives behind the Estimator
// interface, selected via Options.Estimator. The built-in CI-mean estimator
// (NewCIMeanEstimator) reproduces the paper bit-for-bit and additionally
// supports persistent, transferable profiles: its learned state exports to a
// Profile (profile.go) and a prior Profile can warm-start a new run.

// Estimator models kernel durations and decides predictability. The
// Profiler consults one Estimator per rank: Observe feeds it measured
// durations, Estimate supplies the modeled duration charged for skipped
// kernels, Predictable gates the skip decision, and Extrapolate may offer a
// cross-signature estimate for an under-sampled kernel (the line-fitting
// extension). Implementations need not be safe for concurrent use; each
// rank owns its estimator exclusively.
//
// Estimators may additionally implement WelfordCarrier (required for the
// eager policy's cross-rank aggregation) and ProfileCarrier (profile export
// and warm-starting).
type Estimator interface {
	// Name identifies the estimator in options and serialized profiles.
	Name() string
	// Observe incorporates one measured duration dt for key. flops is the
	// kernel's operation count (0 for communication kernels) and eps the
	// active confidence tolerance, which extrapolating estimators use to
	// gate family-model feeding.
	Observe(key Key, flops, dt, eps float64)
	// Estimate returns the modeled duration charged for a skipped kernel
	// (0 when the key has never been observed).
	Estimate(key Key) float64
	// Samples returns the number of observations backing key's model.
	Samples(key Key) int64
	// Predictable reports whether key's model meets tolerance eps given
	// the execution-count credit freq along the current sub-critical path.
	Predictable(key Key, eps float64, freq int64) bool
	// Extrapolate returns a cross-signature estimate for a computation
	// kernel whose own model is not yet trustworthy, or ok == false when
	// the estimator does not extrapolate or the fit is untrustworthy.
	Extrapolate(key Key, flops, eps float64) (float64, bool)
	// Reset discards everything learned since construction (between tuning
	// configurations). Estimators seeded with a prior restore the prior,
	// not the empty state.
	Reset()
}

// WelfordCarrier is the optional estimator interface behind the eager
// policy's cross-rank statistics aggregation: kernel models are exported,
// pooled across a sub-communicator, and re-imported on every member.
// Estimators that do not implement it silently opt out of eager
// propagation (kernels are then never globally switched off).
type WelfordCarrier interface {
	// ExportWelford returns key's rank-local accumulator (this run's own
	// observations, excluding any prior layer — every rank of the pool
	// shares the same prior, which must enter the pooled model exactly
	// once) and whether the key has one.
	ExportWelford(key Key) (stats.Welford, bool)
	// ImportWelford installs a pooled accumulator as key's live model.
	// The model is marked as pooled: it now holds other ranks' samples
	// too, which profile exports flag so same-run rank merges deduplicate
	// the shared copies instead of re-pooling them.
	ImportWelford(key Key, w stats.Welford)
}

// ProfileCarrier is the optional estimator interface for persistent
// profiles: what the estimator learned exports to a Profile, and a prior
// Profile warm-starts it. LoadPrior layers the prior under the live models
// — it survives Reset — while ExportProfile returns only what the current
// run learned, so chaining runs via MergeProfiles never double-counts
// samples.
type ProfileCarrier interface {
	ExportProfile() *Profile
	LoadPrior(prior *Profile)
}

// ciMean is the paper's estimator: a Welford mean/variance accumulator per
// kernel signature, the normal-theory confidence interval of Section III-A
// for predictability, and (optionally) the per-routine-family log-log fit
// of extrapolate.go. A loaded prior forms a read-only layer under the live
// accumulators: queries merge the two, observations go to the live layer
// only, and Reset clears only the live layer.
type ciMean struct {
	extrapolate bool
	cur         map[Key]*stats.Welford
	prior       map[Key]stats.Welford
	families    map[string]*familyModel
	// pooled marks keys whose live accumulator was installed by eager
	// cross-rank aggregation: it holds other ranks' samples, so profile
	// exports flag it (KernelModel.Pooled) and same-run rank merges keep
	// the best copy instead of summing the shared samples p times.
	pooled map[Key]bool
	// priorProfile re-seeds the family models on Reset (Welford priors stay
	// resident in prior and need no re-seeding).
	priorProfile *Profile
}

// NewCIMeanEstimator returns the built-in confidence-interval estimator the
// Profiler uses by default. extrapolate enables the family-model line
// fitting of Section VIII (Options.Extrapolate sets it for the default
// instance).
func NewCIMeanEstimator(extrapolate bool) Estimator {
	return &ciMean{
		extrapolate: extrapolate,
		cur:         make(map[Key]*stats.Welford),
		families:    make(map[string]*familyModel),
	}
}

// Name implements Estimator.
func (e *ciMean) Name() string { return "ci-mean" }

// model returns the combined (prior + live) accumulator for key. With no
// prior layer the live accumulator is returned as-is, reproducing the
// original hardwired path bit-for-bit.
func (e *ciMean) model(key Key) stats.Welford {
	w, hasPrior := e.prior[key]
	cw, hasCur := e.cur[key]
	if !hasPrior {
		if hasCur {
			return *cw
		}
		return stats.Welford{}
	}
	if hasCur {
		w.Merge(*cw)
	}
	return w
}

// Observe implements Estimator: one Welford update, then — when
// extrapolation is on — the family feeding rule of noteFamily: a
// predictable computation-kernel model contributes its (flops, mean) point
// to its routine family.
func (e *ciMean) Observe(key Key, flops, dt, eps float64) {
	w, ok := e.cur[key]
	if !ok {
		w = &stats.Welford{}
		e.cur[key] = w
	}
	w.Add(dt)
	if !e.extrapolate || key.Kind != KindComp || flops <= 0 {
		return
	}
	m := e.model(key)
	if m.Count() < 2 || !m.Predictable(eps, 1) {
		return
	}
	fm, ok := e.families[key.Name]
	if !ok {
		fm = newFamilyModel()
		e.families[key.Name] = fm
	}
	fm.add(flops, m.Mean())
}

// Estimate implements Estimator.
func (e *ciMean) Estimate(key Key) float64 {
	m := e.model(key)
	return m.Mean()
}

// Samples implements Estimator.
func (e *ciMean) Samples(key Key) int64 {
	m := e.model(key)
	return m.Count()
}

// Predictable implements Estimator.
func (e *ciMean) Predictable(key Key, eps float64, freq int64) bool {
	m := e.model(key)
	return m.Predictable(eps, freq)
}

// Extrapolate implements Estimator: the family-model prediction of
// extrapolate.go, when enabled and trustworthy.
func (e *ciMean) Extrapolate(key Key, flops, eps float64) (float64, bool) {
	if !e.extrapolate || key.Kind != KindComp || flops <= 0 {
		return 0, false
	}
	fm, ok := e.families[key.Name]
	if !ok {
		return 0, false
	}
	return fm.predict(flops, eps)
}

// Reset implements Estimator: live models are discarded; the prior layer
// (and prior-seeded family points) survive.
func (e *ciMean) Reset() {
	e.cur = make(map[Key]*stats.Welford)
	e.families = make(map[string]*familyModel)
	e.pooled = nil
	if e.priorProfile != nil {
		e.seedFamilies(e.priorProfile)
	}
}

// ExportWelford implements WelfordCarrier: the rank-local live layer only.
// The prior is shared by every rank, so pooling it here would count it
// once per rank; it stays layered underneath and enters every query
// through model() instead.
func (e *ciMean) ExportWelford(key Key) (stats.Welford, bool) {
	w, ok := e.cur[key]
	if !ok {
		return stats.Welford{}, false
	}
	return *w, true
}

// ImportWelford implements WelfordCarrier: a pooled model replaces the
// live layer (any prior stays layered underneath, counted once) and the
// key is marked pooled for profile exports.
func (e *ciMean) ImportWelford(key Key, w stats.Welford) {
	cw := w
	e.cur[key] = &cw
	if e.pooled == nil {
		e.pooled = make(map[Key]bool)
	}
	e.pooled[key] = true
}

// ExportProfile implements ProfileCarrier: the live layer only (prior
// samples are excluded so chained runs can merge profiles without
// double-counting), plus every family point currently fitted — family
// points are snapshots keyed by flops, so re-exporting prior-seeded points
// is lossless under MergeProfiles.
func (e *ciMean) ExportProfile() *Profile {
	p := &Profile{
		SchemaVersion: ProfileSchemaVersion,
		Estimator:     e.Name(),
		Kernels:       make(map[Key]KernelModel, len(e.cur)),
		Families:      make(map[string]Family, len(e.families)),
	}
	for key, w := range e.cur {
		if w.Count() == 0 {
			continue
		}
		p.Kernels[key] = KernelModel{
			Count: w.Count(), Mean: w.Mean(), M2: w.M2(),
			Pooled: e.pooled[key],
		}
	}
	for name, fm := range e.families {
		if len(fm.points) == 0 {
			continue
		}
		pts := make([]FamilyPoint, 0, len(fm.points))
		for _, pt := range fm.points {
			pts = append(pts, FamilyPoint{Flops: pt.flops, Mean: pt.mean})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Flops < pts[j].Flops })
		p.Families[name] = Family{Points: pts}
	}
	return p
}

// LoadPrior implements ProfileCarrier. Kernel models become the read-only
// prior layer; family points seed the extrapolator. Both survive Reset.
func (e *ciMean) LoadPrior(prior *Profile) {
	if prior == nil {
		return
	}
	e.priorProfile = prior
	e.prior = make(map[Key]stats.Welford, len(prior.Kernels))
	for key, km := range prior.Kernels {
		e.prior[key] = stats.WelfordFromMoments(km.Count, km.Mean, km.M2)
	}
	e.seedFamilies(prior)
}

// seedFamilies installs the prior's family points into fresh models.
func (e *ciMean) seedFamilies(prior *Profile) {
	for name, fam := range prior.Families {
		fm, ok := e.families[name]
		if !ok {
			fm = newFamilyModel()
			e.families[name] = fm
		}
		for _, pt := range fam.Points {
			fm.add(pt.Flops, pt.Mean)
		}
	}
}
