package critter

import (
	"sort"

	"critter/internal/stats"
)

// The pluggable prediction layer. The paper's statistical machinery — the
// per-signature confidence-interval models that drive shouldExecute and the
// family extrapolator of Section VIII — lives behind the Estimator
// interface, selected via Options.Estimator. The built-in CI-mean estimator
// (NewCIMeanEstimator) reproduces the paper bit-for-bit and additionally
// supports persistent, transferable profiles: its learned state exports to a
// Profile (profile.go) and a prior Profile can warm-start a new run.

// Estimator models kernel durations and decides predictability. The
// Profiler consults one Estimator per rank: Observe feeds it measured
// durations, Estimate supplies the modeled duration charged for skipped
// kernels, Predictable gates the skip decision, and Extrapolate may offer a
// cross-signature estimate for an under-sampled kernel (the line-fitting
// extension). Implementations need not be safe for concurrent use; each
// rank owns its estimator exclusively.
//
// Estimators may additionally implement WelfordCarrier (required for the
// eager policy's cross-rank aggregation) and ProfileCarrier (profile export
// and warm-starting).
type Estimator interface {
	// Name identifies the estimator in options and serialized profiles.
	Name() string
	// Observe incorporates one measured duration dt for key. flops is the
	// kernel's operation count (0 for communication kernels) and eps the
	// active confidence tolerance, which extrapolating estimators use to
	// gate family-model feeding.
	Observe(key Key, flops, dt, eps float64)
	// Estimate returns the modeled duration charged for a skipped kernel
	// (0 when the key has never been observed).
	Estimate(key Key) float64
	// Samples returns the number of observations backing key's model.
	Samples(key Key) int64
	// Predictable reports whether key's model meets tolerance eps given
	// the execution-count credit freq along the current sub-critical path.
	Predictable(key Key, eps float64, freq int64) bool
	// Extrapolate returns a cross-signature estimate for a computation
	// kernel whose own model is not yet trustworthy, or ok == false when
	// the estimator does not extrapolate or the fit is untrustworthy.
	Extrapolate(key Key, flops, eps float64) (float64, bool)
	// Reset discards everything learned since construction (between tuning
	// configurations). Estimators seeded with a prior restore the prior,
	// not the empty state.
	Reset()
}

// WelfordCarrier is the optional estimator interface behind the eager
// policy's cross-rank statistics aggregation: kernel models are exported,
// pooled across a sub-communicator, and re-imported on every member.
// Estimators that do not implement it silently opt out of eager
// propagation (kernels are then never globally switched off).
type WelfordCarrier interface {
	// ExportWelford returns key's rank-local accumulator (this run's own
	// observations, excluding any prior layer — every rank of the pool
	// shares the same prior, which must enter the pooled model exactly
	// once) and whether the key has one.
	ExportWelford(key Key) (stats.Welford, bool)
	// ImportWelford installs a pooled accumulator as key's live model.
	// The model is marked as pooled: it now holds other ranks' samples
	// too, which profile exports flag so same-run rank merges deduplicate
	// the shared copies instead of re-pooling them.
	ImportWelford(key Key, w stats.Welford)
}

// ProfileCarrier is the optional estimator interface for persistent
// profiles: what the estimator learned exports to a Profile, and a prior
// Profile warm-starts it. LoadPrior layers the prior under the live models
// — it survives Reset — while ExportProfile returns only what the current
// run learned, so chaining runs via MergeProfiles never double-counts
// samples.
type ProfileCarrier interface {
	ExportProfile() *Profile
	LoadPrior(prior *Profile)
}

// profileArchiver is the internal fast path behind StartConfig's archiving:
// the live learned state merges straight into the profiler's archive,
// skipping the intermediate Profile an ExportProfile + Merge round trip
// would allocate every configuration.
type profileArchiver interface {
	// hasLiveState reports whether archiveInto would contribute anything.
	hasLiveState() bool
	// archiveInto merges the live state into dst, bit-identical to
	// dst.Merge(ExportProfile()).
	archiveInto(dst *Profile)
}

// ciMean is the paper's estimator: a Welford mean/variance accumulator per
// kernel signature, the normal-theory confidence interval of Section III-A
// for predictability, and (optionally) the per-routine-family log-log fit
// of extrapolate.go. A loaded prior forms a read-only layer under the live
// accumulators: queries merge the two, observations go to the live layer
// only, and Reset clears only the live layer.
type ciMean struct {
	extrapolate bool
	cur         map[Key]*stats.Welford
	prior       map[Key]stats.Welford
	families    map[string]*familyModel
	// pooled marks keys whose live accumulator was installed by eager
	// cross-rank aggregation: it holds other ranks' samples, so profile
	// exports flag it (KernelModel.Pooled) and same-run rank merges keep
	// the best copy instead of summing the shared samples p times.
	pooled map[Key]bool
	// priorProfile re-seeds the family models on Reset (Welford priors stay
	// resident in prior and need no re-seeding).
	priorProfile *Profile

	// lastKey/lastW short-circuit the cur-map lookup for back-to-back
	// queries of the same signature (Observe right after Predictable,
	// tight kernel loops), skipping the Key hash. Invalidated whenever an
	// entry pointer may change (Reset, ImportWelford).
	lastKey   Key
	lastW     *stats.Welford
	lastValid bool

	// slabs allocates live accumulators in fixed-size chunks that survive
	// Reset: configurations churn through disjoint signature sets (tile
	// sizes change), and per-key heap allocations would repay that churn
	// every configuration. Chunks never move, so map-held pointers stay
	// valid until Reset drops them.
	slabs    [][]stats.Welford
	slabUsed int // accumulators handed out from the current layout

	// byID is the dense id-indexed view of cur behind the idEstimator fast
	// path: byID[id] caches the live accumulator of the signature the
	// profiler interned as id, so the steady-state observe/estimate/
	// predictable path skips the Key hash entirely. Ids are only stable
	// within a configuration, so Reset — called exactly when the profiler
	// re-keys its id space — drops the whole view (the pointers would
	// otherwise dangle into recycled slab slots).
	byID []*stats.Welford
}

// idEstimator is the internal estimator fast path keyed by the profiler's
// dense kernel ids: every method is bit-identical to its Key-keyed
// counterpart on Estimator, minus the hash. The profiler consults it only
// when the estimator opts in (the built-in ciMean does); the Key is always
// passed alongside so cold ids can fall back to the canonical path.
type idEstimator interface {
	observeID(id uint32, key Key, flops, dt, eps float64)
	estimateID(id uint32, key Key) float64
	predictableID(id uint32, key Key, eps float64, freq int64) bool
	// invalidateID severs a cached id→accumulator association after the
	// key's live model was replaced out-of-band (eager pooling).
	invalidateID(id uint32)
}

// wByID returns the dense-cached live accumulator for id, or nil when the
// id is cold (never observed this configuration).
func (e *ciMean) wByID(id uint32) *stats.Welford {
	if int(id) < len(e.byID) {
		return e.byID[id]
	}
	return nil
}

// cacheID associates id with live accumulator w.
func (e *ciMean) cacheID(id uint32, w *stats.Welford) {
	if n := int(id) + 1; n > len(e.byID) {
		if n <= cap(e.byID) {
			e.byID = e.byID[:n]
		} else {
			c := cap(e.byID) * 2
			if c < n {
				c = n
			}
			if c < 64 {
				c = 64
			}
			grown := make([]*stats.Welford, n, c)
			copy(grown, e.byID)
			e.byID = grown
		}
	}
	e.byID[id] = w
}

// observeID implements idEstimator: Observe minus the Key hash on the
// steady-state path.
func (e *ciMean) observeID(id uint32, key Key, flops, dt, eps float64) {
	w := e.wByID(id)
	if w == nil {
		w = e.curOf(key)
		if w == nil {
			w = e.newWelford()
			e.cur[key] = w
			e.lastKey, e.lastW, e.lastValid = key, w, true
		}
		e.cacheID(id, w)
	}
	w.Add(dt)
	if !e.extrapolate || key.Kind != KindComp || flops <= 0 {
		return
	}
	m := e.model(key)
	if m.Count() < 2 || !m.Predictable(eps, 1) {
		return
	}
	fm, ok := e.families[key.Name]
	if !ok {
		fm = newFamilyModel()
		e.families[key.Name] = fm
	}
	fm.add(flops, m.Mean())
}

// estimateID implements idEstimator. With a prior layer loaded the query
// must merge it, so it falls back to the canonical path.
func (e *ciMean) estimateID(id uint32, key Key) float64 {
	if e.prior == nil {
		if w := e.wByID(id); w != nil {
			return w.Mean()
		}
	}
	return e.Estimate(key)
}

// predictableID implements idEstimator; same prior-layer fallback as
// estimateID.
func (e *ciMean) predictableID(id uint32, key Key, eps float64, freq int64) bool {
	if e.prior == nil {
		if w := e.wByID(id); w != nil {
			return w.Predictable(eps, freq)
		}
	}
	return e.Predictable(key, eps, freq)
}

// invalidateID implements idEstimator.
func (e *ciMean) invalidateID(id uint32) {
	if int(id) < len(e.byID) {
		e.byID[id] = nil
	}
}

// slabChunk is the accumulator chunk size (amortizes chunk headers without
// holding large dead spans alive).
const slabChunk = 128

// slabRecycler is the internal estimator interface behind KernelMemo's
// arena recycling: a retiring profiler extracts its estimator's accumulator
// slabs (releaseSlabs) and the next profiler's estimator adopts them
// (adoptSlabs). Slab contents need not be zeroed — newWelford zeroes each
// accumulator on handout — so donation and adoption are both O(chunks).
type slabRecycler interface {
	adoptSlabs([][]stats.Welford)
	releaseSlabs() [][]stats.Welford
}

// adoptSlabs implements slabRecycler. Only a freshly constructed estimator
// may adopt (live map entries point into the current slabs).
func (e *ciMean) adoptSlabs(s [][]stats.Welford) {
	if len(e.slabs) == 0 && e.slabUsed == 0 {
		e.slabs = s
	}
}

// releaseSlabs implements slabRecycler: hands the slabs off and severs them
// from the (now retired) estimator.
func (e *ciMean) releaseSlabs() [][]stats.Welford {
	s := e.slabs
	e.slabs = nil
	e.slabUsed = 0
	e.cur = nil
	e.byID = nil
	e.lastValid = false
	return s
}

// newWelford hands out a zeroed accumulator from the slab.
func (e *ciMean) newWelford() *stats.Welford {
	chunk, idx := e.slabUsed/slabChunk, e.slabUsed%slabChunk
	if chunk == len(e.slabs) {
		e.slabs = append(e.slabs, make([]stats.Welford, slabChunk))
	}
	e.slabUsed++
	w := &e.slabs[chunk][idx]
	*w = stats.Welford{}
	return w
}

// curOf returns the live accumulator for key (nil when none), through the
// one-entry lookup cache.
func (e *ciMean) curOf(key Key) *stats.Welford {
	if e.lastValid && key == e.lastKey {
		return e.lastW
	}
	w := e.cur[key]
	e.lastKey, e.lastW, e.lastValid = key, w, true
	return w
}

// NewCIMeanEstimator returns the built-in confidence-interval estimator the
// Profiler uses by default. extrapolate enables the family-model line
// fitting of Section VIII (Options.Extrapolate sets it for the default
// instance).
func NewCIMeanEstimator(extrapolate bool) Estimator {
	return &ciMean{
		extrapolate: extrapolate,
		cur:         make(map[Key]*stats.Welford),
		families:    make(map[string]*familyModel),
	}
}

// Name implements Estimator.
func (e *ciMean) Name() string { return "ci-mean" }

// model returns the combined (prior + live) accumulator for key. With no
// prior layer the live accumulator is returned as-is, reproducing the
// original hardwired path bit-for-bit.
func (e *ciMean) model(key Key) stats.Welford {
	cw := e.curOf(key)
	if e.prior == nil {
		if cw != nil {
			return *cw
		}
		return stats.Welford{}
	}
	w, hasPrior := e.prior[key]
	if !hasPrior {
		if cw != nil {
			return *cw
		}
		return stats.Welford{}
	}
	if cw != nil {
		w.Merge(*cw)
	}
	return w
}

// Observe implements Estimator: one Welford update, then — when
// extrapolation is on — the family feeding rule of noteFamily: a
// predictable computation-kernel model contributes its (flops, mean) point
// to its routine family.
func (e *ciMean) Observe(key Key, flops, dt, eps float64) {
	w := e.curOf(key)
	if w == nil {
		w = e.newWelford()
		e.cur[key] = w
		e.lastKey, e.lastW, e.lastValid = key, w, true
	}
	w.Add(dt)
	if !e.extrapolate || key.Kind != KindComp || flops <= 0 {
		return
	}
	m := e.model(key)
	if m.Count() < 2 || !m.Predictable(eps, 1) {
		return
	}
	fm, ok := e.families[key.Name]
	if !ok {
		fm = newFamilyModel()
		e.families[key.Name] = fm
	}
	fm.add(flops, m.Mean())
}

// Estimate implements Estimator.
func (e *ciMean) Estimate(key Key) float64 {
	m := e.model(key)
	return m.Mean()
}

// Samples implements Estimator.
func (e *ciMean) Samples(key Key) int64 {
	m := e.model(key)
	return m.Count()
}

// Predictable implements Estimator.
func (e *ciMean) Predictable(key Key, eps float64, freq int64) bool {
	m := e.model(key)
	return m.Predictable(eps, freq)
}

// Extrapolate implements Estimator: the family-model prediction of
// extrapolate.go, when enabled and trustworthy.
func (e *ciMean) Extrapolate(key Key, flops, eps float64) (float64, bool) {
	if !e.extrapolate || key.Kind != KindComp || flops <= 0 {
		return 0, false
	}
	fm, ok := e.families[key.Name]
	if !ok {
		return 0, false
	}
	return fm.predict(flops, eps)
}

// Reset implements Estimator: live models are discarded; the prior layer
// (and prior-seeded family points) survive.
func (e *ciMean) Reset() {
	clear(e.cur)
	e.families = make(map[string]*familyModel)
	e.pooled = nil
	e.lastValid = false
	e.slabUsed = 0 // all map-held slab pointers were just dropped
	clear(e.byID)
	e.byID = e.byID[:0] // ids are about to be re-keyed; drop the dense view
	if e.priorProfile != nil {
		e.seedFamilies(e.priorProfile)
	}
}

// ExportWelford implements WelfordCarrier: the rank-local live layer only.
// The prior is shared by every rank, so pooling it here would count it
// once per rank; it stays layered underneath and enters every query
// through model() instead.
func (e *ciMean) ExportWelford(key Key) (stats.Welford, bool) {
	w, ok := e.cur[key]
	if !ok {
		return stats.Welford{}, false
	}
	return *w, true
}

// ImportWelford implements WelfordCarrier: a pooled model replaces the
// live layer (any prior stays layered underneath, counted once) and the
// key is marked pooled for profile exports.
func (e *ciMean) ImportWelford(key Key, w stats.Welford) {
	cw := w
	e.cur[key] = &cw
	e.lastValid = false // the key's entry pointer just changed
	if e.pooled == nil {
		e.pooled = make(map[Key]bool)
	}
	e.pooled[key] = true
}

// ExportProfile implements ProfileCarrier: the live layer only (prior
// samples are excluded so chained runs can merge profiles without
// double-counting), plus every family point currently fitted — family
// points are snapshots keyed by flops, so re-exporting prior-seeded points
// is lossless under MergeProfiles.
func (e *ciMean) ExportProfile() *Profile {
	p := &Profile{
		SchemaVersion: ProfileSchemaVersion,
		Estimator:     e.Name(),
		Kernels:       make(map[Key]KernelModel, len(e.cur)),
		Families:      make(map[string]Family, len(e.families)),
	}
	for key, w := range e.cur {
		if w.Count() == 0 {
			continue
		}
		p.Kernels[key] = KernelModel{
			Count: w.Count(), Mean: w.Mean(), M2: w.M2(),
			Pooled: e.pooled[key],
		}
	}
	for name, fm := range e.families {
		if len(fm.points) == 0 {
			continue
		}
		pts := make([]FamilyPoint, 0, len(fm.points))
		for _, pt := range fm.points {
			pts = append(pts, FamilyPoint{Flops: pt.flops, Mean: pt.mean})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Flops < pts[j].Flops })
		p.Families[name] = Family{Points: pts}
	}
	return p
}

// hasLiveState implements profileArchiver.
func (e *ciMean) hasLiveState() bool {
	if len(e.cur) > 0 {
		return true
	}
	for _, fm := range e.families {
		if len(fm.points) > 0 {
			return true
		}
	}
	return false
}

// archiveInto implements profileArchiver: the kernel and family loops of
// Profile.Merge applied directly from the live maps. The merge direction
// (archive-side accumulator first) matches Merge exactly, so the archived
// moments are bit-identical to the ExportProfile + Merge path.
func (e *ciMean) archiveInto(dst *Profile) {
	for key, w := range e.cur {
		if w.Count() == 0 {
			continue
		}
		om := KernelModel{
			Count: w.Count(), Mean: w.Mean(), M2: w.M2(),
			Pooled: e.pooled[key],
		}
		if dst.Kernels == nil {
			dst.Kernels = make(map[Key]KernelModel, len(e.cur))
		}
		km, ok := dst.Kernels[key]
		if !ok {
			dst.Kernels[key] = om
			continue
		}
		wm := welfordOf(km)
		wm.Merge(welfordOf(om))
		dst.Kernels[key] = KernelModel{
			Count: wm.Count(), Mean: wm.Mean(), M2: wm.M2(),
			Pooled: km.Pooled || om.Pooled,
		}
	}
	for name, fm := range e.families {
		if len(fm.points) == 0 {
			continue
		}
		pts := make([]FamilyPoint, 0, len(fm.points))
		for _, pt := range fm.points {
			pts = append(pts, FamilyPoint{Flops: pt.flops, Mean: pt.mean})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Flops < pts[j].Flops })
		if dst.Families == nil {
			dst.Families = make(map[string]Family, len(e.families))
		}
		if fam, ok := dst.Families[name]; ok {
			dst.Families[name] = Family{Points: mergePoints(fam.Points, pts)}
		} else {
			dst.Families[name] = Family{Points: pts}
		}
	}
}

// LoadPrior implements ProfileCarrier. Kernel models become the read-only
// prior layer; family points seed the extrapolator. Both survive Reset.
func (e *ciMean) LoadPrior(prior *Profile) {
	if prior == nil {
		return
	}
	e.priorProfile = prior
	e.prior = make(map[Key]stats.Welford, len(prior.Kernels))
	for key, km := range prior.Kernels {
		e.prior[key] = stats.WelfordFromMoments(km.Count, km.Mean, km.M2)
	}
	e.seedFamilies(prior)
}

// seedFamilies installs the prior's family points into fresh models.
func (e *ciMean) seedFamilies(prior *Profile) {
	for name, fam := range prior.Families {
		fm, ok := e.families[name]
		if !ok {
			fm = newFamilyModel()
			e.families[name] = fm
		}
		for _, pt := range fam.Points {
			fm.add(pt.Flops, pt.Mean)
		}
	}
}
