package critter

import (
	"bytes"
	"strings"
	"testing"
)

func TestLocalProfileAttribution(t *testing.T) {
	runProfiled(t, 1, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		for i := 0; i < 5; i++ {
			p.Kernel("big", 32, 32, 32, 0, 1e6, func() {})
		}
		p.Kernel("small", 4, 4, 4, 0, 1e3, func() {})
		prof := p.LocalProfile()
		if len(prof) != 2 {
			t.Fatalf("profile has %d entries, want 2", len(prof))
		}
		if prof[0].Key.Name != "big" {
			t.Errorf("largest contributor should be 'big', got %s", prof[0].Key)
		}
		if prof[0].PathCount != 5 || prof[0].Samples != 5 {
			t.Errorf("big kernel count/samples = %d/%d", prof[0].PathCount, prof[0].Samples)
		}
		if prof[0].PathTime <= prof[1].PathTime {
			t.Error("profile not sorted by path time")
		}
	})
}

func TestCriticalPathProfileTakesMaxRank(t *testing.T) {
	runProfiled(t, 4, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		// Rank 2 runs a distinctive heavy kernel; the critical-path
		// profile seen by every rank must contain it.
		if cc.Rank() == 2 {
			p.Kernel("hotspot", 64, 64, 64, 0, 1e8, func() {})
		} else {
			p.Kernel("background", 4, 4, 4, 0, 1e3, func() {})
		}
		prof := p.CriticalPathProfile()
		found := false
		for _, kp := range prof {
			if kp.Key.Name == "hotspot" {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d: critical-path profile missing the hotspot kernel", cc.Rank())
		}
	})
}

func TestWriteProfile(t *testing.T) {
	runProfiled(t, 1, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		p.Kernel("gemm", 8, 8, 8, 0, 1e4, func() {})
		p.Kernel("syrk", 8, 8, 0, 0, 5e3, func() {})
		p.Kernel("potrf", 8, 0, 0, 0, 2e3, func() {})
		var buf bytes.Buffer
		WriteProfile(&buf, p.LocalProfile(), 2)
		out := buf.String()
		if !strings.Contains(out, "gemm") {
			t.Error("top kernel missing from report")
		}
		if !strings.Contains(out, "1 more kernels") {
			t.Error("truncation note missing")
		}
		if !strings.Contains(out, "total attributed path time") {
			t.Error("total line missing")
		}
	})
}

func TestProfileIncludesCommKernels(t *testing.T) {
	runProfiled(t, 2, 0.0, Options{Policy: Conditional, Eps: 0}, func(p *Profiler, cc *Comm) {
		buf := make([]float64, 1024)
		for i := 0; i < 3; i++ {
			cc.Bcast(0, buf)
		}
		prof := p.LocalProfile()
		found := false
		for _, kp := range prof {
			if kp.Key.Kind == KindComm && kp.Key.Name == "bcast" {
				found = true
				if kp.PathCount != 3 {
					t.Errorf("bcast path count = %d", kp.PathCount)
				}
			}
		}
		if !found {
			t.Error("communication kernel missing from profile")
		}
	})
}
