// Package critter implements the paper's contribution: an online
// execution-path profiler that accelerates distributed-memory autotuning by
// selectively executing computation and communication kernels.
//
// A kernel is a routine with a particular input size (its signature). Each
// rank maintains a statistical profile (single-pass mean and variance) per
// kernel signature; once a kernel's sample-mean confidence interval —
// optionally shrunk by the square root of its execution count along the
// current sub-critical path — falls below the confidence tolerance epsilon,
// further invocations are skipped and replaced by the model mean.
//
// Profiles and critical-path costs propagate between ranks by piggybacking
// internal messages on the application's own communication, following the
// mechanism of Figure 2 in the paper: an internal allreduce before each
// collective (doubling as the skip-decision agreement protocol), an internal
// exchange around each point-to-point pair, and a one-way internal message
// for nonblocking sends whose reply is consumed at Wait.
package critter

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a kernel as computation or communication.
type Kind uint8

// Kernel kinds.
const (
	KindComp Kind = iota
	KindComm
)

// Key is a kernel signature: a program routine together with the input-size
// parameters that determine its performance distribution.
//
// Computation kernels are parameterized on matrix dimensions and flags
// (P1..P3 dims, P4 flags such as transposition). Communication kernels are
// parameterized on message size in words (P1), sub-communicator size (P2),
// and sub-communicator stride relative to the world communicator (P3), with
// point-to-point configurations treated as size-2 sub-communicators, as in
// Section V-D of the paper.
type Key struct {
	Kind Kind
	Name string
	P1   int
	P2   int
	P3   int
	P4   int
}

// CompKey builds a computation-kernel signature.
func CompKey(name string, p1, p2, p3, p4 int) Key {
	return Key{Kind: KindComp, Name: name, P1: p1, P2: p2, P3: p3, P4: p4}
}

// CommKey builds a communication-kernel signature.
func CommKey(op string, words, commSize, commStride int) Key {
	return Key{Kind: KindComm, Name: op, P1: words, P2: commSize, P3: commStride}
}

// String renders the key for diagnostics.
func (k Key) String() string {
	if k.Kind == KindComm {
		return fmt.Sprintf("comm:%s(words=%d,size=%d,stride=%d)", k.Name, k.P1, k.P2, k.P3)
	}
	return fmt.Sprintf("comp:%s(%d,%d,%d;%d)", k.Name, k.P1, k.P2, k.P3, k.P4)
}

// MarshalText encodes the key in the stable form used by serialized
// profiles, "comp:name(p1,p2,p3;p4)" or "comm:name(p1,p2,p3;p4)", so maps
// keyed by Key serialize as readable JSON objects. Names containing '(' or
// ')' are rejected: they would make the encoding ambiguous.
func (k Key) MarshalText() ([]byte, error) {
	if strings.ContainsAny(k.Name, "()") {
		return nil, fmt.Errorf("critter: kernel name %q not encodable (contains parentheses)", k.Name)
	}
	kind := "comp"
	if k.Kind == KindComm {
		kind = "comm"
	}
	return fmt.Appendf(nil, "%s:%s(%d,%d,%d;%d)", kind, k.Name, k.P1, k.P2, k.P3, k.P4), nil
}

// UnmarshalText decodes the encoding produced by MarshalText.
func (k *Key) UnmarshalText(text []byte) error {
	s := string(text)
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("critter: bad key %q: missing kind separator", s)
	}
	var out Key
	switch kind {
	case "comp":
		out.Kind = KindComp
	case "comm":
		out.Kind = KindComm
	default:
		return fmt.Errorf("critter: bad key %q: unknown kind %q", s, kind)
	}
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return fmt.Errorf("critter: bad key %q: malformed parameter list", s)
	}
	out.Name = rest[:open]
	if strings.ContainsAny(out.Name, "()") {
		return fmt.Errorf("critter: bad key %q: parenthesized name", s)
	}
	params := rest[open+1 : len(rest)-1]
	head, p4, ok := strings.Cut(params, ";")
	if !ok {
		return fmt.Errorf("critter: bad key %q: missing flags field", s)
	}
	fields := strings.Split(head, ",")
	if len(fields) != 3 {
		return fmt.Errorf("critter: bad key %q: want 3 dims, got %d", s, len(fields))
	}
	var err error
	for i, dst := range []*int{&out.P1, &out.P2, &out.P3} {
		if *dst, err = strconv.Atoi(fields[i]); err != nil {
			return fmt.Errorf("critter: bad key %q: dim %d: %v", s, i+1, err)
		}
	}
	if out.P4, err = strconv.Atoi(p4); err != nil {
		return fmt.Errorf("critter: bad key %q: flags: %v", s, err)
	}
	*k = out
	return nil
}

// Policy selects how kernel execution counts and statistics propagate
// between ranks to drive skip decisions (Section IV-B of the paper).
type Policy uint8

// Selective-execution policies, ordered as introduced by the paper.
const (
	// Conditional execution never credits execution counts: a kernel is
	// skipped only when its unscaled confidence interval meets epsilon.
	// The most conservative method.
	Conditional Policy = iota
	// Local propagation credits each kernel's locally observed execution
	// count (no inter-rank propagation).
	Local
	// Online propagation piggybacks critical-path execution counts on
	// application communication; the count along the current sub-critical
	// path shrinks the confidence interval by sqrt(count).
	Online
	// APriori forgoes online count propagation by taking critical-path
	// counts from a preceding full execution of the configuration.
	APriori
	// Eager skips a kernel once any rank deems it predictable and its
	// statistics have been propagated across the whole processor grid via
	// aggregate channels. Kernel models persist across configurations.
	Eager
)

// String returns the policy name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case Conditional:
		return "conditional"
	case Local:
		return "local"
	case Online:
		return "online"
	case APriori:
		return "apriori"
	case Eager:
		return "eager"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// MarshalJSON encodes the policy by name, so serialized experiment results
// stay readable and stable if the numeric ordering ever changes.
func (p Policy) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(p.String())), nil
}

// UnmarshalJSON decodes a policy from its name, completing the round trip
// for serialized experiment results. Per encoding/json convention, null
// leaves the value unchanged.
func (p *Policy) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		return nil
	}
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("critter: policy must be a JSON string: %s", data)
	}
	parsed, err := ParsePolicy(name)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParsePolicy resolves a policy name as used in flags and figures.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("critter: unknown policy %q", name)
}

// Policies lists all selective-execution policies in presentation order.
var Policies = []Policy{Conditional, Local, Online, APriori, Eager}
