package critter

import "sync"

// KernelTable interns kernel signatures (Key) into dense uint32 ids. One
// table is shared by every rank of a profiled world (rank 0 creates it
// during Profiler construction and the others adopt it collectively), so a
// kernel id means the same signature on every rank and path frequency
// tables can travel between ranks as dense arrays instead of maps.
//
// Interning takes the write lock only the first time a signature is seen
// anywhere in the world; each rank additionally keeps a private id cache
// (Profiler.idOf) so the steady-state interception path touches no lock at
// all. Ids are assigned in global first-seen order, which depends on
// goroutine scheduling — nothing result-bearing may depend on id order, and
// nothing does: ids never leave the process, and every boundary artifact
// (PathFreqs, profiles, reports) is rekeyed by Key.
type KernelTable struct {
	mu   sync.RWMutex
	ids  map[Key]uint32
	keys []Key
}

// NewKernelTable returns an empty table.
func NewKernelTable() *KernelTable {
	return &KernelTable{ids: make(map[Key]uint32)}
}

// Intern returns the dense id of k, assigning the next free id on first
// sight.
func (t *KernelTable) Intern(k Key) uint32 {
	t.mu.RLock()
	id, ok := t.ids[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.ids[k]; ok {
		return id
	}
	id = uint32(len(t.keys))
	t.ids[k] = id
	t.keys = append(t.keys, k)
	return id
}

// KeyOf returns the signature interned as id. It panics on an id the table
// never assigned.
func (t *KernelTable) KeyOf(id uint32) Key {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.keys[id]
}

// Len returns how many distinct signatures the table has interned.
func (t *KernelTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.keys)
}

// snapshot copies the table's current contents: a Key→id map and the
// id-indexed key slice. The copies are immutable by construction — later
// Interns grow the table, never the snapshot — so readers may use them
// without locking. KernelMemo publishes these as the shared read-only
// intern caches of a memoized configuration.
func (t *KernelTable) snapshot() (map[Key]uint32, []Key) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make(map[Key]uint32, len(t.ids))
	for k, id := range t.ids {
		ids[k] = id
	}
	keys := make([]Key, len(t.keys))
	copy(keys, t.keys)
	return ids, keys
}
