package critter

import (
	"critter/internal/channel"
	"critter/internal/mpi"
	"critter/internal/stats"
)

// aggregateEager implements the aggregate_statistics step of Figure 2: after
// a blocking collective on communicator c, kernels that are locally
// predictable but not yet globally propagated are nominated, their models
// are merged across the sub-communicator, and their coverage is extended by
// the communicator's channel. Once a kernel's coverage composes into a
// cartesian basis of the full grid, every rank owns the identical merged
// model and the kernel is switched off everywhere.
func (p *Profiler) aggregateEager(c *Comm) {
	if !c.chOK || c.user.Size() <= 1 {
		return
	}
	// Cross-rank pooling needs direct access to the Welford accumulators;
	// estimators that do not carry them opt out of eager propagation.
	wc, ok := p.est.(WelfordCarrier)
	if !ok {
		return
	}
	ch := c.ch
	nominate := make(map[Key]stats.Welford)
	for id := range p.k {
		ks := &p.k[id]
		if !ks.seen || ks.propagated {
			continue
		}
		key := p.keyAt(uint32(id))
		w, has := wc.ExportWelford(key)
		if !has || w.Count() < 2 {
			continue
		}
		if !w.Predictable(p.opts.Eps, 1) {
			continue
		}
		if ks.coverage.Contains(ch) {
			continue
		}
		if _, ok := channel.Combine(ks.coverage, ch); !ok {
			continue
		}
		nominate[key] = w
	}
	merged := mpi.AllreduceMsg(c.internal, nominate, mergeNominations)
	if len(merged) == 0 {
		return
	}
	for key, w := range merged {
		id := p.intern(key)
		ks := p.stats(id)
		wc.ImportWelford(key, w)
		// The pooled model replaced the live one; cached predictability
		// bounds and the dense id→accumulator association no longer
		// describe it.
		p.pred[id] = predCache{}
		if p.fast != nil {
			p.fast.invalidateID(id)
		}
		if cov, ok := channel.Combine(ks.coverage, ch); ok {
			ks.coverage = cov
		}
		if ks.coverage.CoversWorld(p.psize) {
			ks.propagated = true
		}
	}
}

// mergeNominations folds nomination maps pairwise: the union of keys, with
// Welford models merged so every rank ends up with the pooled sample set.
// Pure: inputs are never mutated.
func mergeNominations(ma, mb map[Key]stats.Welford) map[Key]stats.Welford {
	if len(mb) == 0 {
		return ma
	}
	out := make(map[Key]stats.Welford, len(ma)+len(mb))
	for k, w := range ma {
		out[k] = w
	}
	for k, w := range mb {
		acc := out[k]
		acc.Merge(w)
		out[k] = acc
	}
	return out
}

// PropagatedKernels returns how many kernels the eager policy has fully
// propagated (and therefore switched off) on this rank.
func (p *Profiler) PropagatedKernels() int {
	n := 0
	for i := range p.k {
		if p.k[i].propagated {
			n++
		}
	}
	return n
}
