package critter

// Pathset is the per-rank container of critical-path costs (the pathset P of
// Figure 2). ExecTime models the execution time along the rank's current
// sub-critical path, including the model means of skipped kernels, so it is
// the configuration's execution-time prediction. The remaining metrics track
// per-metric critical paths, which may follow different execution paths than
// the time-critical one (Figure 1 of the paper): each is max-merged
// independently at every propagation point.
type Pathset struct {
	ExecTime float64 // predicted execution time along the critical path
	CompTime float64 // computation time along its own critical path
	CommTime float64 // communication time along its own critical path
	BSPComm  float64 // BSP communication cost (words moved)
	BSPSync  float64 // BSP synchronization cost (super-steps / messages)
	BSPComp  float64 // BSP computation cost (flops)

	// Kernels is the path frequency table K-tilde: for each kernel, the
	// number of appearances along the current sub-critical path. It is
	// adopted wholesale from whichever rank owns the maximal ExecTime at
	// each propagation point (Figure 2, lines 64-65). nil when the active
	// policy does not propagate counts.
	Kernels map[Key]int64
}

// clone returns a deep copy (the Kernels map is copied).
func (ps Pathset) clone() Pathset {
	out := ps
	if ps.Kernels != nil {
		out.Kernels = make(map[Key]int64, len(ps.Kernels))
		for k, v := range ps.Kernels {
			out.Kernels[k] = v
		}
	}
	return out
}

// mergePath combines two pathsets at a propagation point: metrics are
// max-merged elementwise, and the frequency table of the path with the
// larger ExecTime wins (the longest-path algorithm). Inputs are not
// mutated; the returned Kernels map aliases the winning input's.
func mergePath(a, b Pathset) Pathset {
	out := Pathset{
		ExecTime: max(a.ExecTime, b.ExecTime),
		CompTime: max(a.CompTime, b.CompTime),
		CommTime: max(a.CommTime, b.CommTime),
		BSPComm:  max(a.BSPComm, b.BSPComm),
		BSPSync:  max(a.BSPSync, b.BSPSync),
		BSPComp:  max(a.BSPComp, b.BSPComp),
	}
	if b.ExecTime > a.ExecTime {
		out.Kernels = b.Kernels
	} else {
		out.Kernels = a.Kernels
	}
	return out
}

// intMsg is the internal message piggybacked on intercepted communication.
type intMsg struct {
	// Exec is the sender's vote (or, for committed messages, decision) on
	// whether the user communication kernel must actually execute.
	Exec bool
	// Exec2 carries the second vote of a combined send+receive exchange
	// (the Sendrecv protocol): Exec votes for the issuer's send kernel,
	// Exec2 for its receive kernel.
	Exec2 bool
	// Committed marks nonblocking-send messages whose execution decision
	// was made unilaterally by the sender; the receiver must follow it.
	Committed bool
	// Path is a snapshot of the sender's pathset; its Kernels map is
	// owned by the message and must not be mutated.
	Path Pathset
}

// mergeIntMsg folds internal messages during the profiler's internal
// allreduce: any rank demanding execution forces it, and pathsets merge by
// the longest-path rule.
func mergeIntMsg(a, b any) any {
	ma, mb := a.(intMsg), b.(intMsg)
	return intMsg{
		Exec:      ma.Exec || mb.Exec,
		Committed: ma.Committed || mb.Committed,
		Path:      mergePath(ma.Path, mb.Path),
	}
}
