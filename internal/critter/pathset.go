package critter

// kernelCounts is the path frequency table K-tilde as a dense array indexed
// by KernelTable id, with copy-on-write sharing. Snapshotting for a
// piggyback message freezes the backing array (O(1), no copy); the next
// write by any holder first materializes a private copy (amortized O(active
// kernels), one allocation). This replaces the map[Key]int64 clone the old
// propagation path paid at every snapshot and adopt.
type kernelCounts struct {
	// vals[id] is the number of appearances of kernel id along the current
	// sub-critical path. Indexed by the world's shared KernelTable.
	vals []int64
	// shared marks vals as aliased by a frozen snapshot (an in-flight
	// message, or an adopted global table other ranks also hold): it must
	// be treated as immutable and copied before the next write.
	shared bool
}

// active reports whether the table is carried at all (policies that do not
// propagate counts leave it nil).
func (k *kernelCounts) active() bool { return k.vals != nil }

// get returns kernel id's count (0 when never counted).
func (k *kernelCounts) get(id uint32) int64 {
	if int(id) >= len(k.vals) {
		return 0
	}
	return k.vals[id]
}

// incr counts one appearance of kernel id, materializing a private copy
// first when the backing array is frozen or too small.
func (k *kernelCounts) incr(id uint32) {
	if k.shared || int(id) >= len(k.vals) {
		k.materialize(int(id) + 1)
	}
	k.vals[id]++
}

// materialize unshares the backing array and grows it to hold at least n
// entries. Capacity doubles only when n actually outgrows it (repeated
// interning settles into amortized O(1)); an unshare copy at unchanged size
// keeps the same capacity.
func (k *kernelCounts) materialize(n int) {
	if n < len(k.vals) {
		n = len(k.vals)
	}
	if !k.shared && n <= cap(k.vals) {
		// Exclusively owned and big enough underneath: extend in place.
		// The exposed tail is zero — backing arrays are allocated zeroed
		// and never shrunk.
		k.vals = k.vals[:n]
		return
	}
	c := cap(k.vals)
	if n > c {
		c *= 2
		if c < n {
			c = n
		}
	}
	if c < 16 {
		c = 16
	}
	vals := make([]int64, n, c)
	copy(vals, k.vals)
	k.vals, k.shared = vals, false
}

// freeze marks the table shared and returns a snapshot aliasing the same
// backing array. O(1); both the owner and the snapshot copy on their next
// write.
func (k *kernelCounts) freeze() kernelCounts {
	k.shared = true
	return kernelCounts{vals: k.vals, shared: true}
}

// reset clears every count for a new configuration, reusing the backing
// array when it is exclusively owned (the allocation-lean steady state) and
// replacing it when a frozen snapshot still aliases it.
func (k *kernelCounts) reset() {
	if k.shared {
		k.vals = make([]int64, len(k.vals))
		k.shared = false
		return
	}
	clear(k.vals)
}

// Pathset is the per-rank container of critical-path costs (the pathset P of
// Figure 2). ExecTime models the execution time along the rank's current
// sub-critical path, including the model means of skipped kernels, so it is
// the configuration's execution-time prediction. The remaining metrics track
// per-metric critical paths, which may follow different execution paths than
// the time-critical one (Figure 1 of the paper): each is max-merged
// independently at every propagation point.
type Pathset struct {
	ExecTime float64 // predicted execution time along the critical path
	CompTime float64 // computation time along its own critical path
	CommTime float64 // communication time along its own critical path
	BSPComm  float64 // BSP communication cost (words moved)
	BSPSync  float64 // BSP synchronization cost (super-steps / messages)
	BSPComp  float64 // BSP computation cost (flops)

	// Kernels is the path frequency table K-tilde: for each kernel, the
	// number of appearances along the current sub-critical path. It is
	// adopted wholesale from whichever rank owns the maximal ExecTime at
	// each propagation point (Figure 2, lines 64-65). Inactive (nil vals)
	// when the active policy does not propagate counts.
	Kernels kernelCounts
}

// mergePath combines two pathsets at a propagation point: metrics are
// max-merged elementwise, and the frequency table of the path with the
// larger ExecTime wins (the longest-path algorithm). Inputs are not
// mutated; the returned table aliases the winning input's frozen array.
func mergePath(a, b Pathset) Pathset {
	out := Pathset{
		ExecTime: max(a.ExecTime, b.ExecTime),
		CompTime: max(a.CompTime, b.CompTime),
		CommTime: max(a.CommTime, b.CommTime),
		BSPComm:  max(a.BSPComm, b.BSPComm),
		BSPSync:  max(a.BSPSync, b.BSPSync),
		BSPComp:  max(a.BSPComp, b.BSPComp),
	}
	if b.ExecTime > a.ExecTime {
		out.Kernels = b.Kernels
	} else {
		out.Kernels = a.Kernels
	}
	return out
}

// intMsg is the internal message piggybacked on intercepted communication.
type intMsg struct {
	// Exec is the sender's vote (or, for committed messages, decision) on
	// whether the user communication kernel must actually execute.
	Exec bool
	// Exec2 carries the second vote of a combined send+receive exchange
	// (the Sendrecv protocol): Exec votes for the issuer's send kernel,
	// Exec2 for its receive kernel.
	Exec2 bool
	// Committed marks nonblocking-send messages whose execution decision
	// was made unilaterally by the sender; the receiver must follow it.
	Committed bool
	// Path is a snapshot of the sender's pathset; its frequency table is
	// frozen and must not be mutated.
	Path Pathset
}

// mergeIntMsg folds internal messages during the profiler's internal
// allreduce: any rank demanding execution forces it, and pathsets merge by
// the longest-path rule. Exec2 is merged too — today's allreduce path never
// carries it (the combined Sendrecv protocol is a pairwise exchange), but a
// lossy fold here would silently drop the receive vote if it ever did.
func mergeIntMsg(a, b intMsg) intMsg {
	return intMsg{
		Exec:      a.Exec || b.Exec,
		Exec2:     a.Exec2 || b.Exec2,
		Committed: a.Committed || b.Committed,
		Path:      mergePath(a.Path, b.Path),
	}
}
