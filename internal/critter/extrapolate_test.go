package critter

import (
	"math"
	"testing"
)

func TestFamilyModelFit(t *testing.T) {
	fm := newFamilyModel()
	// Exact power-law family: t = 2e-9 * flops^1.1.
	law := func(f float64) float64 { return 2e-9 * math.Pow(f, 1.1) }
	for _, f := range []float64{1e3, 1e4, 1e5, 1e6} {
		fm.add(f, law(f))
	}
	got, ok := fm.predict(5e5, 0.1)
	if !ok {
		t.Fatal("fit should be trustworthy")
	}
	want := law(5e5)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("predict = %g, want %g", got, want)
	}
	// Bounded extrapolation: far beyond the observed range is refused.
	if _, ok := fm.predict(1e9, 0.1); ok {
		t.Error("prediction 1000x beyond range should be refused")
	}
	if _, ok := fm.predict(1, 0.1); ok {
		t.Error("prediction far below range should be refused")
	}
}

// TestFamilyModelExtrapolationClamp pins the exact extrapolation-range
// bounds: 4x beyond the largest observed flops and a quarter of the
// smallest are in range; anything past either bound is refused.
func TestFamilyModelExtrapolationClamp(t *testing.T) {
	fm := newFamilyModel()
	law := func(f float64) float64 { return 1e-9 * f }
	for _, f := range []float64{1e3, 1e4, 1e5} {
		fm.add(f, law(f))
	}
	const lo, hi = 1e3, 1e5
	for _, tc := range []struct {
		flops float64
		want  bool
	}{
		{4 * hi, true},             // exactly the upper clamp
		{4*hi + 1e-3, false},       // just past it
		{lo / 4, true},             // exactly the lower clamp
		{lo/4 - 1e-9, false},       // just below it
		{math.Sqrt(lo * hi), true}, // interior
	} {
		if _, ok := fm.predict(tc.flops, 0.5); ok != tc.want {
			t.Errorf("predict(flops=%g) ok = %v, want %v", tc.flops, ok, tc.want)
		}
	}
}

// TestFamilyModelNegativeSlopeRejected checks the sanity guard fm.b >= 0: a
// family whose duration shrinks as flops grow is physically implausible and
// must never be trusted, however small its residuals.
func TestFamilyModelNegativeSlopeRejected(t *testing.T) {
	fm := newFamilyModel()
	// A perfect inverse power law: t = 1e-3 * flops^-1. Residuals are ~0,
	// so only the slope guard can reject it.
	for _, f := range []float64{1e3, 1e4, 1e5, 1e6} {
		fm.add(f, 1e-3/f)
	}
	if _, ok := fm.predict(5e4, 0.5); ok {
		t.Error("negative-slope fit accepted")
	}
	fm.refit()
	if fm.b >= 0 {
		t.Fatalf("test premise broken: fitted slope %g not negative", fm.b)
	}
	if fm.ok {
		t.Error("refit marked a negative-slope family as trustworthy")
	}
}

// TestFamilyModelZeroDeterminantRefit checks the degenerate-fit guard:
// when every point shares one flops value the normal equations are
// singular (det == 0) and refit must refuse rather than divide by zero.
// In normal operation same-flops points replace each other in the map, so
// the singular system is forged through distinct keys directly.
func TestFamilyModelZeroDeterminantRefit(t *testing.T) {
	fm := newFamilyModel()
	// A third add at an existing flops value replaces the point in place.
	fm.add(1e3, 1e-6)
	fm.add(2e3, 2e-6)
	fm.add(2e3, 3e-6)
	if len(fm.points) != 2 {
		t.Fatalf("duplicate flops created %d points, want 2", len(fm.points))
	}
	sing := newFamilyModel()
	const f = 1e3
	for i, mean := range []float64{1e-6, 2e-6, 3e-6} {
		sing.points[uint64(i)] = familyPoint{flops: f, mean: mean}
	}
	sing.dirty = true
	if _, ok := sing.predict(f, 10); ok {
		t.Error("zero-determinant (all-equal flops) system produced a fit")
	}
	if sing.dirty || sing.ok {
		t.Errorf("refit left dirty=%v ok=%v, want false/false", sing.dirty, sing.ok)
	}
}

// TestFamilyModelFlopsBitsKeying is the regression test for the int(flops)
// truncation bug: two flops values that differ only below the integer part
// must form two distinct points (they used to collide into one), and flops
// beyond 2^63 (where int conversion overflows) must be usable as keys.
func TestFamilyModelFlopsBitsKeying(t *testing.T) {
	fm := newFamilyModel()
	law := func(f float64) float64 { return 1e-9 * f }
	fm.add(1000.25, law(1000.25))
	fm.add(1000.75, law(1000.75))
	if len(fm.points) != 2 {
		t.Fatalf("sub-integer-distinct flops collapsed: %d points, want 2", len(fm.points))
	}
	fm.add(4000.5, law(4000.5))
	if got, ok := fm.predict(2000, 0.01); !ok || math.Abs(got-law(2000))/law(2000) > 1e-9 {
		t.Errorf("fit over sub-integer-distinct points: predict = %g ok=%v, want %g", got, ok, law(2000))
	}
	// Beyond 2^63: int(flops) overflow territory.
	big := newFamilyModel()
	for _, f := range []float64{1e19, 2e19, 4e19} {
		big.add(f, law(f))
	}
	if len(big.points) != 3 {
		t.Fatalf("flops > 2^63 keys collided: %d points, want 3", len(big.points))
	}
	if _, ok := big.predict(3e19, 0.01); !ok {
		t.Error("fit over flops > 2^63 refused")
	}
}

func TestFamilyModelRejectsPoorFit(t *testing.T) {
	fm := newFamilyModel()
	// Wildly nonlinear points: residuals exceed any reasonable tolerance.
	fm.add(1e3, 1)
	fm.add(2e3, 100)
	fm.add(3e3, 1)
	if _, ok := fm.predict(2.5e3, 0.1); ok {
		t.Error("poor fit accepted")
	}
}

func TestFamilyModelNeedsThreePoints(t *testing.T) {
	fm := newFamilyModel()
	fm.add(1e3, 1e-6)
	fm.add(2e3, 2e-6)
	if _, ok := fm.predict(1.5e3, 0.5); ok {
		t.Error("two points should not make a trustworthy fit")
	}
}

func TestExtrapolationSkipsUnseenSignatures(t *testing.T) {
	runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.2, Extrapolate: true},
		func(p *Profiler, cc *Comm) {
			// Train the family on three sizes.
			for _, n := range []int{8, 16, 32} {
				flops := 2 * float64(n*n*n)
				for i := 0; i < 30; i++ {
					p.Kernel("gemm", n, n, n, 0, flops, func() {})
				}
			}
			if p.FamilyPoints("gemm") < 3 {
				t.Fatalf("family has %d points", p.FamilyPoints("gemm"))
			}
			// A brand-new size within the fitted range must be skippable
			// without a single execution of its own signature.
			ran := false
			p.Kernel("gemm", 24, 24, 24, 0, 2*24*24*24, func() { ran = true })
			if ran {
				t.Error("unseen signature executed despite a trustworthy family fit")
			}
			if p.ExtrapolatedSkips() == 0 {
				t.Error("no extrapolated skips recorded")
			}
		})
}

func TestExtrapolationDisabledByDefault(t *testing.T) {
	runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.2},
		func(p *Profiler, cc *Comm) {
			for _, n := range []int{8, 16, 32} {
				for i := 0; i < 30; i++ {
					p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
				}
			}
			ran := false
			p.Kernel("gemm", 24, 24, 24, 0, 2*24*24*24, func() { ran = true })
			if !ran {
				t.Error("unseen signature skipped without extrapolation enabled")
			}
		})
}

func TestExtrapolationPredictionStaysAccurate(t *testing.T) {
	// Compare full execution against extrapolated selective execution on
	// a workload with many one-off sizes (the CANDMC-like pattern).
	workload := func(p *Profiler, cc *Comm) {
		// Train sizes executed repeatedly, then a sweep of unique sizes.
		for _, n := range []int{8, 12, 16, 24, 32} {
			for i := 0; i < 20; i++ {
				p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
			}
		}
		for n := 9; n <= 31; n++ {
			p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
		}
	}
	full := runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0}, workload)
	ext := runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.2, Extrapolate: true}, workload)
	if ext.Skipped <= full.Skipped {
		t.Fatal("extrapolation did not increase skipping")
	}
	relErr := math.Abs(ext.Predicted-full.Wall) / full.Wall
	if relErr > 0.1 {
		t.Errorf("extrapolated prediction error %g too large", relErr)
	}
}
