package critter

import (
	"math"
	"testing"
)

func TestFamilyModelFit(t *testing.T) {
	fm := &familyModel{points: make(map[int]familyPoint)}
	// Exact power-law family: t = 2e-9 * flops^1.1.
	law := func(f float64) float64 { return 2e-9 * math.Pow(f, 1.1) }
	for _, f := range []float64{1e3, 1e4, 1e5, 1e6} {
		fm.points[int(f)] = familyPoint{flops: f, mean: law(f)}
	}
	fm.dirty = true
	got, ok := fm.predict(5e5, 0.1)
	if !ok {
		t.Fatal("fit should be trustworthy")
	}
	want := law(5e5)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("predict = %g, want %g", got, want)
	}
	// Bounded extrapolation: far beyond the observed range is refused.
	if _, ok := fm.predict(1e9, 0.1); ok {
		t.Error("prediction 1000x beyond range should be refused")
	}
	if _, ok := fm.predict(1, 0.1); ok {
		t.Error("prediction far below range should be refused")
	}
}

func TestFamilyModelRejectsPoorFit(t *testing.T) {
	fm := &familyModel{points: make(map[int]familyPoint)}
	// Wildly nonlinear points: residuals exceed any reasonable tolerance.
	fm.points[1000] = familyPoint{flops: 1e3, mean: 1}
	fm.points[2000] = familyPoint{flops: 2e3, mean: 100}
	fm.points[3000] = familyPoint{flops: 3e3, mean: 1}
	fm.dirty = true
	if _, ok := fm.predict(2.5e3, 0.1); ok {
		t.Error("poor fit accepted")
	}
}

func TestFamilyModelNeedsThreePoints(t *testing.T) {
	fm := &familyModel{points: make(map[int]familyPoint)}
	fm.points[1000] = familyPoint{flops: 1e3, mean: 1e-6}
	fm.points[2000] = familyPoint{flops: 2e3, mean: 2e-6}
	fm.dirty = true
	if _, ok := fm.predict(1.5e3, 0.5); ok {
		t.Error("two points should not make a trustworthy fit")
	}
}

func TestExtrapolationSkipsUnseenSignatures(t *testing.T) {
	runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.2, Extrapolate: true},
		func(p *Profiler, cc *Comm) {
			// Train the family on three sizes.
			for _, n := range []int{8, 16, 32} {
				flops := 2 * float64(n*n*n)
				for i := 0; i < 30; i++ {
					p.Kernel("gemm", n, n, n, 0, flops, func() {})
				}
			}
			if p.FamilyPoints("gemm") < 3 {
				t.Fatalf("family has %d points", p.FamilyPoints("gemm"))
			}
			// A brand-new size within the fitted range must be skippable
			// without a single execution of its own signature.
			ran := false
			p.Kernel("gemm", 24, 24, 24, 0, 2*24*24*24, func() { ran = true })
			if ran {
				t.Error("unseen signature executed despite a trustworthy family fit")
			}
			if p.ExtrapolatedSkips() == 0 {
				t.Error("no extrapolated skips recorded")
			}
		})
}

func TestExtrapolationDisabledByDefault(t *testing.T) {
	runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.2},
		func(p *Profiler, cc *Comm) {
			for _, n := range []int{8, 16, 32} {
				for i := 0; i < 30; i++ {
					p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
				}
			}
			ran := false
			p.Kernel("gemm", 24, 24, 24, 0, 2*24*24*24, func() { ran = true })
			if !ran {
				t.Error("unseen signature skipped without extrapolation enabled")
			}
		})
}

func TestExtrapolationPredictionStaysAccurate(t *testing.T) {
	// Compare full execution against extrapolated selective execution on
	// a workload with many one-off sizes (the CANDMC-like pattern).
	workload := func(p *Profiler, cc *Comm) {
		// Train sizes executed repeatedly, then a sweep of unique sizes.
		for _, n := range []int{8, 12, 16, 24, 32} {
			for i := 0; i < 20; i++ {
				p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
			}
		}
		for n := 9; n <= 31; n++ {
			p.Kernel("gemm", n, n, n, 0, 2*float64(n*n*n), func() {})
		}
	}
	full := runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0}, workload)
	ext := runProfiled(t, 1, 0.02, Options{Policy: Conditional, Eps: 0.2, Extrapolate: true}, workload)
	if ext.Skipped <= full.Skipped {
		t.Fatal("extrapolation did not increase skipping")
	}
	relErr := math.Abs(ext.Predicted-full.Wall) / full.Wall
	if relErr > 0.1 {
		t.Errorf("extrapolated prediction error %g too large", relErr)
	}
}
