package critter

import (
	"encoding/json"
	"fmt"
	"math"

	"critter/internal/stats"
)

// Persistent kernel profiles: everything a profiling run learns — kernel
// statistics, fitted family models, critical-path frequencies — captured as
// a versioned, JSON-serializable artifact. A Profile exported from one run
// (Profiler.ExportProfile, Tuner results, critter-tune -profile-out)
// warm-starts a later run of the same or a related problem
// (Options.Prior, Tuner.Prior, autotune.WarmStart, -profile-in). Across
// scales only the family extrapolator transfers usefully: kernel signatures
// change with the problem size, but a family's log-log fit predicts any
// flops count within its extrapolation range.

// ProfileSchemaVersion identifies the JSON layout of Profile. Version 1 is
// the initial layout: kernel moments, family points, path frequencies.
const ProfileSchemaVersion = 1

// KernelModel is one kernel signature's serialized duration model: the
// Welford moments (count, mean, sum of squared deviations) that fully
// determine its confidence interval.
type KernelModel struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
	// Pooled marks a model installed by the eager policy's cross-rank
	// aggregation: every rank of the run holds a copy of the same pooled
	// sample set, so same-run rank merges (Profiler.GlobalProfile) keep
	// the highest-count copy instead of summing the shared samples once
	// per rank. The dedup is deliberately conservative: while coverage is
	// still partial, different sub-communicators hold disjoint pools that
	// are indistinguishable from shared copies, and keeping one copy
	// under-counts rather than multiplying shared samples by the world
	// size — a weaker warm-start prior, never a spuriously confident one.
	// Merges across runs (MergeProfiles) pool normally — their sample
	// sets are disjoint.
	Pooled bool `json:"pooled,omitempty"`
}

// FamilyPoint is one (flops, mean-duration) sample of a routine family's
// regression model.
type FamilyPoint struct {
	Flops float64 `json:"flops"`
	Mean  float64 `json:"mean"`
}

// Family is one routine family's serialized extrapolation model: its fitted
// points in ascending flops order (the fit itself is recomputed on load).
type Family struct {
	Points []FamilyPoint `json:"points"`
}

// Profile is the serializable state of a profiling run. Kernels and
// PathFreqs key by the stable text encoding of Key (Key.MarshalText), so
// profiles written by one version remain readable by later ones.
type Profile struct {
	SchemaVersion int    `json:"schemaVersion"`
	Estimator     string `json:"estimator,omitempty"`

	// Kernels holds the per-signature duration models (the set K).
	Kernels map[Key]KernelModel `json:"kernels,omitempty"`
	// Families holds the per-routine-name extrapolation models.
	Families map[string]Family `json:"families,omitempty"`
	// PathFreqs holds critical-path execution counts (the table K-tilde),
	// usable as AprioriFreq seeds and merged by max across runs.
	PathFreqs map[Key]int64 `json:"pathFreqs,omitempty"`
}

// Samples returns the total observation count across all kernel models.
func (p *Profile) Samples() int64 {
	var n int64
	for _, km := range p.Kernels {
		n += km.Count
	}
	return n
}

// FamilyPointCount returns the total number of fitted family points.
func (p *Profile) FamilyPointCount() int {
	n := 0
	for _, fam := range p.Families {
		n += len(fam.Points)
	}
	return n
}

// Merge folds o into p: kernel models pool their samples (Welford merge),
// families take the union of points with o winning on equal flops, and path
// frequencies merge by max. Merging the export of a run that was
// warm-started from p itself is safe: exports exclude prior samples, so
// nothing is counted twice. o may be nil (no-op).
func (p *Profile) Merge(o *Profile) { p.merge(o, false) }

// merge implements Merge. sameRun marks a merge of one run's per-rank
// exports, where kernel models flagged Pooled are copies of a shared
// sample set: the highest-count copy wins instead of re-pooling.
func (p *Profile) merge(o *Profile, sameRun bool) {
	if o == nil {
		return
	}
	if p.Estimator == "" {
		p.Estimator = o.Estimator
	}
	for key, om := range o.Kernels {
		if p.Kernels == nil {
			p.Kernels = make(map[Key]KernelModel, len(o.Kernels))
		}
		km, ok := p.Kernels[key]
		if !ok {
			p.Kernels[key] = om
			continue
		}
		if sameRun && (km.Pooled || om.Pooled) {
			// Shared pooled copies: keep the most informed one. (A rank
			// that kept observing after the pool has the pooled set plus
			// its newest samples, so a higher count is strictly better.)
			if om.Count >= km.Count {
				p.Kernels[key] = om
			}
			continue
		}
		w := welfordOf(km)
		w.Merge(welfordOf(om))
		p.Kernels[key] = KernelModel{
			Count: w.Count(), Mean: w.Mean(), M2: w.M2(),
			Pooled: km.Pooled || om.Pooled,
		}
	}
	for name, ofam := range o.Families {
		if p.Families == nil {
			p.Families = make(map[string]Family, len(o.Families))
		}
		fam, ok := p.Families[name]
		if !ok {
			pts := make([]FamilyPoint, len(ofam.Points))
			copy(pts, ofam.Points)
			p.Families[name] = Family{Points: pts}
			continue
		}
		p.Families[name] = Family{Points: mergePoints(fam.Points, ofam.Points)}
	}
	for key, n := range o.PathFreqs {
		if p.PathFreqs == nil {
			p.PathFreqs = make(map[Key]int64, len(o.PathFreqs))
		}
		p.PathFreqs[key] = max(p.PathFreqs[key], n)
	}
}

// mergePoints unions two ascending-flops point lists; b wins on equal flops.
func mergePoints(a, b []FamilyPoint) []FamilyPoint {
	out := make([]FamilyPoint, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Flops < b[j].Flops:
			out = append(out, a[i])
			i++
		case a[i].Flops > b[j].Flops:
			out = append(out, b[j])
			j++
		default:
			out = append(out, b[j])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// welfordOf reconstructs a kernel model's accumulator.
func welfordOf(km KernelModel) stats.Welford {
	return stats.WelfordFromMoments(km.Count, km.Mean, km.M2)
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{SchemaVersion: p.SchemaVersion, Estimator: p.Estimator}
	out.Merge(p)
	return out
}

// MergeProfiles merges b into a copy of a (either may be nil) and returns
// the result, leaving both inputs untouched.
func MergeProfiles(a, b *Profile) *Profile {
	if a == nil {
		return b.Clone()
	}
	out := a.Clone()
	out.Merge(b)
	return out
}

// mergeProfilesSameRun is MergeProfiles for one run's per-rank exports:
// kernel models flagged Pooled deduplicate instead of re-pooling (see
// KernelModel.Pooled). Used by Profiler.GlobalProfile.
func mergeProfilesSameRun(a, b *Profile) *Profile {
	if a == nil {
		return b.Clone()
	}
	out := a.Clone()
	out.merge(b, true)
	return out
}

// Encode serializes the profile as indented JSON with the current schema
// version stamped in.
func (p *Profile) Encode() ([]byte, error) {
	c := p.Clone()
	c.SchemaVersion = ProfileSchemaVersion
	return json.MarshalIndent(c, "", "  ")
}

// DecodeProfile parses a serialized profile, validating the schema version
// and rejecting entries that could poison a warm-started run (non-positive
// counts, non-finite moments).
func DecodeProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("critter: bad profile: %w", err)
	}
	if p.SchemaVersion < 1 || p.SchemaVersion > ProfileSchemaVersion {
		return nil, fmt.Errorf("critter: unsupported profile schema version %d (this build reads <= %d)",
			p.SchemaVersion, ProfileSchemaVersion)
	}
	for key, km := range p.Kernels {
		if km.Count < 1 || !finite(km.Mean) || !finite(km.M2) || km.Mean < 0 || km.M2 < 0 {
			return nil, fmt.Errorf("critter: bad profile: kernel %s has invalid moments %+v", key, km)
		}
	}
	for name, fam := range p.Families {
		for i, pt := range fam.Points {
			if !finite(pt.Flops) || !finite(pt.Mean) || pt.Flops <= 0 || pt.Mean <= 0 {
				return nil, fmt.Errorf("critter: bad profile: family %q has invalid point %+v", name, pt)
			}
			// Strictly ascending flops is a structural invariant: the
			// point-merge algorithm and the family docs both rely on it.
			if i > 0 && pt.Flops <= fam.Points[i-1].Flops {
				return nil, fmt.Errorf("critter: bad profile: family %q points not strictly ascending by flops at index %d", name, i)
			}
		}
	}
	for key, n := range p.PathFreqs {
		if n < 1 {
			return nil, fmt.Errorf("critter: bad profile: path frequency %d for %s", n, key)
		}
	}
	return &p, nil
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
