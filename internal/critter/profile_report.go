package critter

import (
	"fmt"
	"io"
	"sort"

	"critter/internal/mpi"
)

// Critical-path kernel profiling output: the user-facing report of the
// profiling tool (Section II of the paper: online execution-path analysis
// "identifies performance bottlenecks at scale" by attributing critical-path
// time to individual kernels).

// KernelProfile is one kernel's contribution to an execution path.
type KernelProfile struct {
	Key       Key
	PathTime  float64 // time attributed along the rank's execution path
	PathCount int64   // appearances along the path
	Mean      float64 // modeled mean duration
	Samples   int64   // measured samples backing the model
}

// LocalProfile returns this rank's per-kernel path attribution, sorted by
// descending path time. A kernel is on the rank's path this configuration
// iff its local frequency count is nonzero.
func (p *Profiler) LocalProfile() []KernelProfile {
	out := make([]KernelProfile, 0, len(p.pathKernelTime))
	for id, freq := range p.localFreq {
		if freq == 0 {
			continue
		}
		key := p.keyAt(uint32(id))
		kp := KernelProfile{
			Key:       key,
			PathTime:  p.pathKernelTime[id],
			PathCount: p.path.Kernels.get(uint32(id)),
			Mean:      p.est.Estimate(key),
			Samples:   p.est.Samples(key),
		}
		out = append(out, kp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PathTime != out[j].PathTime {
			return out[i].PathTime > out[j].PathTime
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// criticalProfileMsg carries a rank's exec time and profile table through
// the internal allreduce.
type criticalProfileMsg struct {
	execTime float64
	profile  []KernelProfile
}

// CriticalPathProfile returns the per-kernel profile of the rank owning the
// maximal predicted execution time — the schedule's critical path.
// Collective over the world communicator; every rank receives the same
// table (treat it as read-only).
func (p *Profiler) CriticalPathProfile() []KernelProfile {
	msg := criticalProfileMsg{execTime: p.path.ExecTime, profile: p.LocalProfile()}
	g := mpi.AllreduceMsg(p.world.internal, msg, func(a, b criticalProfileMsg) criticalProfileMsg {
		if b.execTime > a.execTime {
			return b
		}
		return a
	})
	return g.profile
}

// WriteProfile renders the top-k entries of a kernel profile as a table.
func WriteProfile(w io.Writer, prof []KernelProfile, topK int) {
	total := 0.0
	for _, kp := range prof {
		total += kp.PathTime
	}
	fmt.Fprintf(w, "%-44s %12s %7s %8s %12s %8s\n",
		"kernel", "path-time", "share", "count", "mean", "samples")
	for i, kp := range prof {
		if topK > 0 && i >= topK {
			fmt.Fprintf(w, "... %d more kernels\n", len(prof)-topK)
			break
		}
		share := 0.0
		if total > 0 {
			share = 100 * kp.PathTime / total
		}
		fmt.Fprintf(w, "%-44s %12.3e %6.1f%% %8d %12.3e %8d\n",
			kp.Key, kp.PathTime, share, kp.PathCount, kp.Mean, kp.Samples)
	}
	fmt.Fprintf(w, "total attributed path time: %.6e s over %d kernels\n", total, len(prof))
}
