package critter

import (
	"math"
	"sort"
)

// Kernel-model extrapolation, the extension Section VIII of the paper
// proposes as future work: "Extrapolation of individual kernel performance
// models to characterize kernel performance across varying input sizes can
// benefit a wide class of algorithms, including CANDMC's pipelined QR
// factorization algorithm. Such line-fitting approaches can permit kernel
// execution to be more selective."
//
// Each computation-kernel *family* (same routine name, varying input sizes)
// accumulates (flops, mean-duration) points from signatures whose own
// models are already predictable. Once at least three distinct points fit a
// line t = a + b*flops with relative residuals within the confidence
// tolerance, an unseen or under-sampled signature of the family may be
// skipped immediately, its duration estimated from the fit — bypassing the
// execute-at-least-once rule that otherwise forces a sample of every
// distinct signature per configuration. The family models are owned by the
// built-in CI-mean estimator (estimator.go) and serialize into Profiles
// (profile.go), which is how warm-started runs transfer across scales: a
// fitted family predicts any flops count within its extrapolation range,
// even for signatures the prior run never saw.

// familyModel is the per-routine-name regression state. The fit is a
// log-log line, ln t = a + b*ln flops, which captures both the linear
// regime of large kernels and the efficiency roll-off of small ones.
type familyModel struct {
	// points is keyed by the exact bit pattern of the point's flops value:
	// distinct flops must stay distinct points (int truncation collided
	// sub-integer-distinct values and overflowed beyond 2^63).
	points map[uint64]familyPoint
	dirty  bool
	a, b   float64 // fitted ln t = a + b*ln flops
	relErr float64 // max relative residual of the fit
	minF   float64
	maxF   float64
	ok     bool
}

type familyPoint struct {
	flops float64
	mean  float64
}

func newFamilyModel() *familyModel {
	return &familyModel{points: make(map[uint64]familyPoint)}
}

// add records one (flops, mean) point, replacing any previous point at the
// same flops value. An unchanged point leaves the fit alone.
func (fm *familyModel) add(flops, mean float64) {
	key := math.Float64bits(flops)
	if prev, exists := fm.points[key]; exists && prev.mean == mean {
		return
	}
	fm.points[key] = familyPoint{flops: flops, mean: mean}
	fm.dirty = true
}

// sortedPoints returns the points in ascending flops order, making every
// floating-point accumulation over them deterministic regardless of map
// iteration order (profiles and bit-identical reruns depend on it).
func (fm *familyModel) sortedPoints() []familyPoint {
	pts := make([]familyPoint, 0, len(fm.points))
	for _, pt := range fm.points {
		pts = append(pts, pt)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].flops < pts[j].flops })
	return pts
}

// refit recomputes the least-squares log-log line and its quality.
func (fm *familyModel) refit() {
	fm.dirty = false
	fm.ok = false
	if len(fm.points) < 3 {
		return
	}
	pts := fm.sortedPoints()
	var n, sx, sy, sxx, sxy float64
	fm.minF, fm.maxF = math.Inf(1), math.Inf(-1)
	for _, pt := range pts {
		if pt.mean <= 0 || pt.flops <= 0 {
			return
		}
		x, y := math.Log(pt.flops), math.Log(pt.mean)
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		fm.minF = min(fm.minF, pt.flops)
		fm.maxF = max(fm.maxF, pt.flops)
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return
	}
	fm.b = (n*sxy - sx*sy) / det
	fm.a = (sy - fm.b*sx) / n
	fm.relErr = 0
	for _, pt := range pts {
		pred := math.Exp(fm.a + fm.b*math.Log(pt.flops))
		rel := math.Abs(pred-pt.mean) / pt.mean
		fm.relErr = max(fm.relErr, rel)
	}
	fm.ok = fm.b >= 0
}

// predict returns the fitted duration for the given flops when the fit is
// trustworthy at tolerance eps: enough points, residuals within eps, and
// the target within a bounded extrapolation range (up to 4x beyond the
// largest observed kernel and down to a quarter of the smallest).
func (fm *familyModel) predict(flops, eps float64) (float64, bool) {
	if fm.dirty {
		fm.refit()
	}
	if !fm.ok || fm.relErr > eps {
		return 0, false
	}
	if flops > 4*fm.maxF || flops < fm.minF/4 {
		return 0, false
	}
	t := math.Exp(fm.a + fm.b*math.Log(flops))
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, false
	}
	return t, true
}

// FamilyPoints returns how many (flops, mean) points the named kernel
// family has accumulated (for tests and diagnostics). Zero when the active
// estimator does not extrapolate.
func (p *Profiler) FamilyPoints(name string) int {
	if e, ok := p.est.(*ciMean); ok {
		if fm, ok := e.families[name]; ok {
			return len(fm.points)
		}
	}
	return 0
}
