package critter

import "math"

// Kernel-model extrapolation, the extension Section VIII of the paper
// proposes as future work: "Extrapolation of individual kernel performance
// models to characterize kernel performance across varying input sizes can
// benefit a wide class of algorithms, including CANDMC's pipelined QR
// factorization algorithm. Such line-fitting approaches can permit kernel
// execution to be more selective."
//
// Each computation-kernel *family* (same routine name, varying input sizes)
// accumulates (flops, mean-duration) points from signatures whose own
// models are already predictable. Once at least three distinct points fit a
// line t = a + b*flops with relative residuals within the confidence
// tolerance, an unseen or under-sampled signature of the family may be
// skipped immediately, its duration estimated from the fit — bypassing the
// execute-at-least-once rule that otherwise forces a sample of every
// distinct signature per configuration.

// familyModel is the per-routine-name regression state. The fit is a
// log-log line, ln t = a + b*ln flops, which captures both the linear
// regime of large kernels and the efficiency roll-off of small ones.
type familyModel struct {
	points map[int]familyPoint // keyed by flops bucket (exact flops as int)
	dirty  bool
	a, b   float64 // fitted ln t = a + b*ln flops
	relErr float64 // max relative residual of the fit
	minF   float64
	maxF   float64
	ok     bool
}

type familyPoint struct {
	flops float64
	mean  float64
}

// noteFamily feeds a predictable signature's model into its family.
func (p *Profiler) noteFamily(name string, flops float64, ks *kernelStats) {
	if !p.opts.Extrapolate || flops <= 0 || ks.Count() < 2 {
		return
	}
	if !ks.Predictable(p.opts.Eps, 1) {
		return
	}
	fm, ok := p.families[name]
	if !ok {
		fm = &familyModel{points: make(map[int]familyPoint)}
		p.families[name] = fm
	}
	key := int(flops)
	prev, exists := fm.points[key]
	if exists && prev.mean == ks.Mean() {
		return
	}
	fm.points[key] = familyPoint{flops: flops, mean: ks.Mean()}
	fm.dirty = true
}

// refit recomputes the least-squares log-log line and its quality.
func (fm *familyModel) refit() {
	fm.dirty = false
	fm.ok = false
	if len(fm.points) < 3 {
		return
	}
	var n, sx, sy, sxx, sxy float64
	fm.minF, fm.maxF = math.Inf(1), math.Inf(-1)
	for _, pt := range fm.points {
		if pt.mean <= 0 || pt.flops <= 0 {
			return
		}
		x, y := math.Log(pt.flops), math.Log(pt.mean)
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		fm.minF = math.Min(fm.minF, pt.flops)
		fm.maxF = math.Max(fm.maxF, pt.flops)
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return
	}
	fm.b = (n*sxy - sx*sy) / det
	fm.a = (sy - fm.b*sx) / n
	fm.relErr = 0
	for _, pt := range fm.points {
		pred := math.Exp(fm.a + fm.b*math.Log(pt.flops))
		rel := math.Abs(pred-pt.mean) / pt.mean
		if rel > fm.relErr {
			fm.relErr = rel
		}
	}
	fm.ok = fm.b >= 0
}

// predict returns the fitted duration for the given flops when the fit is
// trustworthy at tolerance eps: enough points, residuals within eps, and
// the target within a bounded extrapolation range (up to 4x beyond the
// largest observed kernel and down to a quarter of the smallest).
func (fm *familyModel) predict(flops, eps float64) (float64, bool) {
	if fm.dirty {
		fm.refit()
	}
	if !fm.ok || fm.relErr > eps {
		return 0, false
	}
	if flops > 4*fm.maxF || flops < fm.minF/4 {
		return 0, false
	}
	t := math.Exp(fm.a + fm.b*math.Log(flops))
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, false
	}
	return t, true
}

// extrapolated returns a family-model estimate for a computation kernel
// whose own signature is not yet predictable, when extrapolation is enabled
// and trustworthy.
func (p *Profiler) extrapolated(name string, flops float64) (float64, bool) {
	if !p.opts.Extrapolate || p.opts.Eps <= 0 || flops <= 0 {
		return 0, false
	}
	fm, ok := p.families[name]
	if !ok {
		return 0, false
	}
	return fm.predict(flops, p.opts.Eps)
}

// FamilyPoints returns how many (flops, mean) points the named kernel
// family has accumulated (for tests and diagnostics).
func (p *Profiler) FamilyPoints(name string) int {
	if fm, ok := p.families[name]; ok {
		return len(fm.points)
	}
	return 0
}
