package critter

// Cross-config kernel memoization. A tuning sweep evaluates the same study
// configurations over and over — the reference profiler immediately before
// the selective one, every (policy, eps) sweep after the first, warm
// service jobs after cold ones — and each evaluation used to rebuild the
// exact same config-invariant state from scratch: the kernel-signature
// interner, every rank's Key→id cache, and the estimator's accumulator
// slabs. KernelMemo is the sweep executor's per-worker cache of that
// state. It is strictly observational: every byte of every result is
// identical with a memo attached or not, because the memo only changes
// *how fast* config-invariant facts are recomputed, never their values
// (ids never leave the process, and all result-bearing artifacts are
// rekeyed by Key).
//
// Three things are memoized:
//
//   - Per-configuration kernel tables. The first profiler to finish a
//     configuration publishes its interner (Profiler.Report), keyed by the
//     caller-supplied configuration key (StartConfigKeyed). Every later
//     profiler that starts the same configuration — the selective run
//     right after the reference run, and every run of the configuration
//     in later sweeps — adopts the published table plus an immutable
//     Key→id snapshot, so its steady-state intern path is a read-only map
//     hit: no table lock, no insert, no per-config cache rebuild. Ids
//     stay as compact as the configuration's active kernel set, keeping
//     the copy-on-write path-frequency snapshots small.
//
//   - Retired per-rank arenas. A profiler that will not be used again
//     (Profiler.Retire) donates its dense bookkeeping arrays, private
//     intern cache, and — for the built-in estimator — its Welford
//     accumulator slabs back to the memo; the next profiler built with
//     the same memo adopts them instead of growing fresh ones.
//
//   - Propagation-point predictability outcomes, cached per kernel id
//     inside each profiler (see predCache in profiler.go) and surfaced
//     through the memo's counters. The CI tolerance test is pure in
//     (model state, eps, path frequency) and monotone in the frequency
//     credit, so a converged signature's outcome is replayed without
//     re-deriving the confidence interval. Replayed skip decisions are
//     counted as "memoized kernels" in Report and the sweep stats.
//
// A KernelMemo is safe for concurrent use by every rank of the worlds it
// is threaded through. The sweep executor gives each worker goroutine its
// own memo (alongside its buffer-pool arena), so cross-worker contention
// never occurs; within a world the ranks share the memo's mutex, which is
// touched only at configuration boundaries.

import (
	"hash/fnv"
	"sync"

	"critter/internal/stats"
)

// KernelMemo caches config-invariant profiler state across configurations,
// profilers, and sweeps. The zero value is not usable; create one with
// NewKernelMemo and thread it through Options.Memo.
type KernelMemo struct {
	mu      sync.Mutex
	configs map[uint64]*memoConfig
	arenas  []*memoArena

	// tableHits/tableMisses count StartConfigKeyed lookups (rank-0 only,
	// one per configuration start).
	tableHits   int64
	tableMisses int64
}

// memoConfig is one published configuration: its shared interner plus
// immutable snapshots of the Key→id map and id→Key slice taken at publish
// time. The snapshots are read without locks; a signature interned after
// publication (only possible on a key collision or a nondeterministic
// workload) simply misses the snapshot and falls through to the table.
type memoConfig struct {
	tab  *KernelTable
	idOf map[Key]uint32
	keys []Key
}

// memoArena is the recyclable per-rank state a retiring profiler donates:
// dense per-id tables (zeroed, length 0, capacity kept), the private
// intern cache (cleared), and the built-in estimator's accumulator slabs.
type memoArena struct {
	idOf           map[Key]uint32
	keys           []Key
	k              []kernelStats
	localFreq      []int64
	pathKernelTime []float64
	pred           []predCache
	counts         []int64
	slabs          [][]stats.Welford
}

// NewKernelMemo returns an empty memo.
func NewKernelMemo() *KernelMemo {
	return &KernelMemo{configs: make(map[uint64]*memoConfig)}
}

// ConfigKey derives the memo key for one configuration of a named study.
// Any deterministic hash works — the memo is observationally invisible, so
// even a collision only costs speed, never correctness — but the key must
// include the study identity: one worker's memo may serve sweeps of
// several studies.
func ConfigKey(study string, config int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(study))
	var b [8]byte
	for i := range b {
		b[i] = byte(config >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// lookup returns the published state for a configuration key, nil when the
// configuration has not completed anywhere yet.
func (m *KernelMemo) lookup(key uint64) *memoConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	mc := m.configs[key]
	if mc != nil {
		m.tableHits++
	} else {
		m.tableMisses++
	}
	return mc
}

// publish records tab as the interner of the configuration identified by
// key. First publisher wins: the reference and selective profilers of one
// sweep both finish every configuration, and whichever reports first owns
// the published snapshot (their tables intern the same signature set, so
// the choice is invisible).
func (m *KernelMemo) publish(key uint64, tab *KernelTable) {
	m.mu.Lock()
	if _, ok := m.configs[key]; ok {
		m.mu.Unlock()
		return
	}
	// Reserve the slot before snapshotting so a racing publisher of the
	// same key does not duplicate the copy work, then fill it in. Filling
	// under the lock keeps lookup trivially safe; the snapshot itself is
	// lock-ordered after the table's own RWMutex, which is never held
	// while taking m.mu.
	ids, keys := func() (map[Key]uint32, []Key) {
		m.mu.Unlock()
		defer m.mu.Lock()
		return tab.snapshot()
	}()
	if _, ok := m.configs[key]; !ok {
		m.configs[key] = &memoConfig{tab: tab, idOf: ids, keys: keys}
	}
	m.mu.Unlock()
}

// acquireArena pops a retired arena, nil when none is available.
func (m *KernelMemo) acquireArena() *memoArena {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.arenas); n > 0 {
		a := m.arenas[n-1]
		m.arenas[n-1] = nil
		m.arenas = m.arenas[:n-1]
		return a
	}
	return nil
}

// releaseArena files a retired profiler's arena for reuse. The donor has
// already zeroed the dense arrays and cleared the map (see
// Profiler.Retire), so adoption is O(1).
func (m *KernelMemo) releaseArena(a *memoArena) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.arenas = append(m.arenas, a)
}

// TableHits returns how many StartConfigKeyed lookups found a published
// configuration (and how many missed). Rank 0 performs one lookup per
// configuration start, so these count configurations, not ranks.
func (m *KernelMemo) TableHits() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tableHits, m.tableMisses
}
