package critter

import (
	"sync"
	"testing"
)

// TestKernelTableInterning covers the basic intern/resolve contract.
func TestKernelTableInterning(t *testing.T) {
	tab := NewKernelTable()
	k1 := CompKey("gemm", 8, 8, 8, 0)
	k2 := CommKey("bcast", 64, 8, 1)
	id1 := tab.Intern(k1)
	id2 := tab.Intern(k2)
	if id1 == id2 {
		t.Fatal("distinct keys interned to the same id")
	}
	if got := tab.Intern(k1); got != id1 {
		t.Errorf("re-interning changed the id: %d vs %d", got, id1)
	}
	if tab.KeyOf(id1) != k1 || tab.KeyOf(id2) != k2 {
		t.Error("KeyOf does not invert Intern")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

// TestKernelTableConcurrentIntern hammers one shared table from many
// goroutines (as the ranks of a world do) and checks every rank resolves
// every key to one consistent id.
func TestKernelTableConcurrentIntern(t *testing.T) {
	tab := NewKernelTable()
	const ranks, keys = 16, 200
	ids := make([][]uint32, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ids[r] = make([]uint32, keys)
			for i := 0; i < keys; i++ {
				// Interleave orders per rank so assignment races happen.
				i := (i*7 + r*13) % keys
				ids[r][i] = tab.Intern(CompKey("k", i, 0, 0, 0))
			}
		}(r)
	}
	wg.Wait()
	if tab.Len() != keys {
		t.Fatalf("table interned %d keys, want %d", tab.Len(), keys)
	}
	for r := 1; r < ranks; r++ {
		for i := 0; i < keys; i++ {
			if ids[r][i] != ids[0][i] {
				t.Fatalf("rank %d resolved key %d to id %d, rank 0 to %d", r, i, ids[r][i], ids[0][i])
			}
		}
	}
	for i := 0; i < keys; i++ {
		if got := tab.KeyOf(ids[0][i]); got != CompKey("k", i, 0, 0, 0) {
			t.Fatalf("KeyOf(%d) = %v, want key %d", ids[0][i], got, i)
		}
	}
}
