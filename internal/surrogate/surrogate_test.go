package surrogate

import (
	"math"
	"reflect"
	"testing"
)

// quadObs samples y = (x0 - 0.6)^2 + 0.5 (x1 - 0.2)^2 over a grid, the
// kind of single-trough surface tile-size spaces exhibit.
func quadObs(sizes []int, coords [][]int) []Obs {
	obs := make([]Obs, 0, len(coords))
	for _, c := range coords {
		x0 := float64(c[0]) / float64(sizes[0]-1)
		x1 := float64(c[1]) / float64(sizes[1]-1)
		y := (x0-0.6)*(x0-0.6) + 0.5*(x1-0.2)*(x1-0.2)
		obs = append(obs, Obs{Coords: c, Y: y})
	}
	return obs
}

// TestFitRecoversQuadratic fits the full grid of an exactly quadratic
// surface and requires near-exact interpolation plus the right argmin.
func TestFitRecoversQuadratic(t *testing.T) {
	sizes := []int{5, 4}
	var coords [][]int
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			coords = append(coords, []int{i, j})
		}
	}
	m := New(sizes, 1e-8) // tiny ridge: the surface is exactly representable
	if err := m.Fit(quadObs(sizes, coords)); err != nil {
		t.Fatal(err)
	}
	if !m.Fitted() || m.N() != len(coords) {
		t.Fatalf("fit state: fitted=%v n=%d", m.Fitted(), m.N())
	}
	bestMean, bestC := math.Inf(1), -1
	for i, c := range coords {
		mean, std := m.Predict(c)
		want := quadObs(sizes, [][]int{c})[0].Y
		if math.Abs(mean-want) > 1e-4 {
			t.Errorf("predict%v = %g, want %g", c, mean, want)
		}
		if std < 0 || math.IsNaN(std) {
			t.Errorf("predict%v std = %g", c, std)
		}
		if mean < bestMean {
			bestMean, bestC = mean, i
		}
	}
	// True minimum at x0 = 0.6 (coord 2.4 -> grid point 2 or 3), x1 = 0.2
	// (coord 0.6 -> point 1). Check the model's argmin is adjacent to it.
	c := coords[bestC]
	if c[0] < 2 || c[0] > 3 || c[1] > 1 {
		t.Errorf("model argmin at %v, want near [2..3, 0..1]", c)
	}
}

// TestFitDeterministic requires bit-identical fits and predictions from
// identical observation sequences — the rank-agreement contract.
func TestFitDeterministic(t *testing.T) {
	sizes := []int{5, 3, 2}
	obs := []Obs{
		{Coords: []int{0, 0, 0}, Y: 1.25},
		{Coords: []int{4, 2, 1}, Y: 0.5},
		{Coords: []int{2, 1, 0}, Y: 0.125},
		{Coords: []int{1, 2, 1}, Y: 0.75},
	}
	a, b := New(sizes, 0), New(sizes, 0)
	if err := a.Fit(obs); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(obs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.theta, b.theta) || a.s2 != b.s2 {
		t.Fatal("identical fits diverged")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 2; k++ {
				c := []int{i, j, k}
				am, as := a.Predict(c)
				bm, bs := b.Predict(c)
				if am != bm || as != bs {
					t.Fatalf("prediction at %v diverged: (%v,%v) vs (%v,%v)", c, am, as, bm, bs)
				}
			}
		}
	}
}

// TestFitFewObservations: with fewer observations than features the ridge
// term must keep the system solvable and the predictions finite.
func TestFitFewObservations(t *testing.T) {
	sizes := []int{5, 4, 3}
	m := New(sizes, 0)
	if err := m.Fit([]Obs{{Coords: []int{0, 0, 0}, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	mean, std := m.Predict([]int{4, 3, 2})
	if math.IsNaN(mean) || math.IsInf(mean, 0) || math.IsNaN(std) || math.IsInf(std, 0) {
		t.Fatalf("degenerate prediction: mean=%v std=%v", mean, std)
	}
	// A single observation pins nothing far away: uncertainty must not be
	// smaller there than at the observed point.
	_, stdAt := m.Predict([]int{0, 0, 0})
	if std < stdAt {
		t.Errorf("far point std %g < observed point std %g", std, stdAt)
	}
}

// TestFitIgnoresNonFinite: NaN/Inf responses are dropped, not propagated.
func TestFitIgnoresNonFinite(t *testing.T) {
	m := New([]int{4, 4}, 0)
	err := m.Fit([]Obs{
		{Coords: []int{0, 0}, Y: math.NaN()},
		{Coords: []int{1, 1}, Y: math.Inf(1)},
		{Coords: []int{2, 2}, Y: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1 {
		t.Fatalf("fit kept %d observations, want 1", m.N())
	}
	mean, _ := m.Predict([]int{2, 2})
	if math.IsNaN(mean) {
		t.Fatal("NaN observation leaked into the fit")
	}
	// All-non-finite leaves the model unfitted.
	m2 := New([]int{4, 4}, 0)
	if err := m2.Fit([]Obs{{Coords: []int{0, 0}, Y: math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	if m2.Fitted() {
		t.Fatal("model fitted on zero usable observations")
	}
}

// TestFitCoordMismatch: wrong-arity coordinates are an error, not a panic
// or silent misfit.
func TestFitCoordMismatch(t *testing.T) {
	m := New([]int{4, 4}, 0)
	if err := m.Fit([]Obs{{Coords: []int{1}, Y: 1}}); err == nil {
		t.Fatal("coordinate arity mismatch accepted")
	}
}

// TestExpectedImprovement pins the acquisition's shape: improvement grows
// with lower mean and with higher uncertainty, is non-negative, and
// degenerates correctly at zero std.
func TestExpectedImprovement(t *testing.T) {
	best := 1.0
	if got := ExpectedImprovement(2, 0, best, 0); got != 0 {
		t.Errorf("EI(worse mean, std 0) = %g, want 0", got)
	}
	if got := ExpectedImprovement(0.5, 0, best, 0); got != 0.5 {
		t.Errorf("EI(better mean, std 0) = %g, want 0.5", got)
	}
	low := ExpectedImprovement(1.5, 0.1, best, 0)
	high := ExpectedImprovement(1.5, 1.0, best, 0)
	if !(high > low) {
		t.Errorf("EI must grow with uncertainty: std 1.0 -> %g, std 0.1 -> %g", high, low)
	}
	better := ExpectedImprovement(0.2, 0.5, best, 0)
	worse := ExpectedImprovement(0.8, 0.5, best, 0)
	if !(better > worse) {
		t.Errorf("EI must grow as the mean improves: %g vs %g", better, worse)
	}
	// The exploration margin shrinks the improvement.
	if a, b := ExpectedImprovement(0.5, 0.3, best, 0), ExpectedImprovement(0.5, 0.3, best, 0.2); !(a > b) {
		t.Errorf("xi must reduce EI: %g vs %g", a, b)
	}
	for _, std := range []float64{0, 0.1, 10} {
		if got := ExpectedImprovement(5, std, best, 0); got < 0 || math.IsNaN(got) {
			t.Errorf("EI negative or NaN: %g (std %g)", got, std)
		}
	}
}

// TestInvertIdentity sanity-checks the solver against a known inverse.
func TestInvertIdentity(t *testing.T) {
	a := newMatrix(3)
	a[0][0], a[0][1], a[0][2] = 2, 0, 0
	a[1][0], a[1][1], a[1][2] = 0, 4, 0
	a[2][0], a[2][1], a[2][2] = 0, 0, 8
	inv, ok := invert(a)
	if !ok {
		t.Fatal("diagonal matrix reported singular")
	}
	want := []float64{0.5, 0.25, 0.125}
	for i := range want {
		if inv[i][i] != want[i] {
			t.Errorf("inv[%d][%d] = %g, want %g", i, i, inv[i][i], want[i])
		}
	}
	// Singular input is reported, not mangled.
	z := newMatrix(2)
	if _, ok := invert(z); ok {
		t.Fatal("zero matrix inverted")
	}
}
