// Package surrogate implements the deterministic regression model behind
// the model-guided search strategy (autotune.Surrogate): a ridge-regression
// fit of a low-order polynomial over a configuration space's normalized
// dimension coordinates, with an expected-improvement acquisition function
// over its predictive distribution.
//
// The model is the repo-native cousin of the Bayesian autotuners in the
// related literature (Wu et al.'s BO over PolyBench spaces, the Triton
// autotuner's train_model): observations are the Estimator's cheap
// predicted times — low-fidelity by construction — so a strategy can learn
// the response surface mid-sweep without paying for executed kernels.
//
// Everything here is deterministic and stdlib-only: no wall clock, no
// process-global randomness, float arithmetic in fixed order (the package
// lives in the critterlint-deterministic layer, and every rank of a sweep
// fits an identical copy of the model on identical observations, so the
// fits must agree bit-for-bit across ranks).
package surrogate

import (
	"fmt"
	"math"
)

// Obs is one observation: a configuration's per-dimension coordinates (as
// produced by Space.Decode) and its observed response y. The strategy layer
// feeds log predicted times, which linearizes the multiplicative structure
// of execution-time surfaces.
type Obs struct {
	Coords []int
	Y      float64
}

// Model is a ridge-regression surrogate over a fixed-dimension space. The
// feature map is a full quadratic polynomial of the normalized coordinates
// (intercept, linear, square, and pairwise-interaction terms), so the model
// can represent the single-trough response surfaces block/tile-size spaces
// typically exhibit while staying a few dozen parameters at most.
//
// The zero value is unusable; construct with New. Fit may be called any
// number of times; each call refits from scratch on the observations given.
type Model struct {
	sizes  []int
	lambda float64
	nf     int

	fitted bool
	n      int
	theta  []float64   // fitted coefficients, len nf
	ainv   [][]float64 // (X'X + lambda I)^-1, nf x nf
	s2     float64     // residual variance of the fit
}

// DefaultLambda is the ridge penalty used when New is given lambda <= 0.
// Features are normalized to [0,1] and responses are log-times of order
// one, so a mild penalty stabilizes early fits (fewer observations than
// features) without flattening converged ones.
const DefaultLambda = 1e-2

// New builds a surrogate over a space whose i-th dimension has sizes[i]
// points. lambda <= 0 selects DefaultLambda.
func New(sizes []int, lambda float64) *Model {
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	d := len(sizes)
	return &Model{
		sizes:  append([]int(nil), sizes...),
		lambda: lambda,
		nf:     1 + 2*d + d*(d-1)/2,
	}
}

// NumFeatures returns the dimensionality of the feature map (the number of
// fitted coefficients).
func (m *Model) NumFeatures() int { return m.nf }

// Fitted reports whether the model has been fit on at least one
// observation.
func (m *Model) Fitted() bool { return m.fitted }

// features maps per-dimension coordinates to the quadratic feature vector,
// normalizing each coordinate to [0,1] along its axis (a single-point axis
// contributes the constant 0.5, which the intercept absorbs).
func (m *Model) features(coords []int) []float64 {
	d := len(m.sizes)
	x := make([]float64, d)
	for i, sz := range m.sizes {
		if sz > 1 {
			x[i] = float64(coords[i]) / float64(sz-1)
		} else {
			x[i] = 0.5
		}
	}
	f := make([]float64, 0, m.nf)
	f = append(f, 1)
	f = append(f, x...)
	for i := 0; i < d; i++ {
		f = append(f, x[i]*x[i])
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			f = append(f, x[i]*x[j])
		}
	}
	return f
}

// Fit refits the model on the given observations via the ridge normal
// equations, in the order given (the fold order is part of the determinism
// contract: callers present observations in evaluation order, identical on
// every rank). Observations with non-finite responses are ignored. An
// empty (or all-non-finite) set leaves the model unfitted.
func (m *Model) Fit(obs []Obs) error {
	nf := m.nf
	a := newMatrix(nf)
	b := make([]float64, nf)
	n := 0
	for _, o := range obs {
		if math.IsNaN(o.Y) || math.IsInf(o.Y, 0) {
			continue
		}
		if len(o.Coords) != len(m.sizes) {
			return fmt.Errorf("surrogate: observation has %d coordinates, space has %d dimensions",
				len(o.Coords), len(m.sizes))
		}
		f := m.features(o.Coords)
		for i := 0; i < nf; i++ {
			for j := 0; j < nf; j++ {
				a[i][j] += f[i] * f[j]
			}
			b[i] += f[i] * o.Y
		}
		n++
	}
	if n == 0 {
		m.fitted = false
		return nil
	}
	for i := 0; i < nf; i++ {
		a[i][i] += m.lambda
	}
	ainv, ok := invert(a)
	if !ok {
		// The ridge term makes the normal matrix positive definite, so a
		// singular system means pathological inputs; stay unfitted rather
		// than emit garbage.
		m.fitted = false
		return fmt.Errorf("surrogate: normal equations singular despite ridge term")
	}
	theta := make([]float64, nf)
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			theta[i] += ainv[i][j] * b[j]
		}
	}
	// Residual variance over the fit set (biased estimator: with fewer
	// observations than features the unbiased denominator is meaningless,
	// and the acquisition only needs a consistent scale).
	var rss float64
	for _, o := range obs {
		if math.IsNaN(o.Y) || math.IsInf(o.Y, 0) {
			continue
		}
		f := m.features(o.Coords)
		r := o.Y - dot(f, theta)
		rss += r * r
	}
	m.n, m.theta, m.ainv, m.s2 = n, theta, ainv, rss/float64(n)
	m.fitted = true
	return nil
}

// N returns the number of observations of the last fit.
func (m *Model) N() int { return m.n }

// Predict returns the model's predictive mean and standard deviation at the
// given coordinates. The variance is the ridge-regression predictive
// variance s^2 (1 + f' (X'X + lambda I)^-1 f): residual noise plus
// parameter uncertainty, so points far from the evaluated region carry
// honestly wider bars. Calling Predict on an unfitted model returns (0, 0).
func (m *Model) Predict(coords []int) (mean, std float64) {
	if !m.fitted {
		return 0, 0
	}
	f := m.features(coords)
	mean = dot(f, m.theta)
	q := 0.0
	for i := range f {
		row := m.ainv[i]
		for j := range f {
			q += f[i] * row[j] * f[j]
		}
	}
	v := m.s2 * (1 + q)
	if v > 0 {
		std = math.Sqrt(v)
	}
	return mean, std
}

// ExpectedImprovement is the acquisition value of a candidate with
// predictive (mean, std) against the best (minimal) observed response,
// with exploration margin xi in response units: the expected amount by
// which the candidate beats best - xi under a normal predictive
// distribution. A zero std degenerates to the deterministic improvement
// max(best - xi - mean, 0).
func ExpectedImprovement(mean, std, best, xi float64) float64 {
	imp := best - xi - mean
	if std <= 0 {
		return math.Max(imp, 0)
	}
	z := imp / std
	return imp*normCDF(z) + std*normPDF(z)
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// normPDF is the standard normal density.
func normPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	cells := make([]float64, n*n)
	for i := range m {
		m[i] = cells[i*n : (i+1)*n]
	}
	return m
}

// invert computes the inverse of a via Gauss-Jordan elimination with
// partial pivoting. a is consumed. Deterministic: pivot choice is by
// maximal absolute value with the lowest row winning ties.
func invert(a [][]float64) ([][]float64, bool) {
	n := len(a)
	inv := newMatrix(n)
	for i := range inv {
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot, best := -1, 0.0
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				pivot, best = r, v
			}
		}
		if pivot < 0 || best == 0 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		p := a[col][col]
		for j := 0; j < n; j++ {
			a[col][j] /= p
			inv[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < n; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv, true
}
