package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordAgainstTwoPass(t *testing.T) {
	xs := []float64{3.1, 2.7, 9.4, -1.2, 0.0, 5.5, 5.5, 8.8}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	// Two-pass reference.
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varr := 0.0
	for _, x := range xs {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(xs) - 1)
	if !almostEq(w.Mean(), mean, 1e-12) {
		t.Errorf("mean = %g, want %g", w.Mean(), mean)
	}
	if !almostEq(w.Variance(), varr, 1e-12) {
		t.Errorf("variance = %g, want %g", w.Variance(), varr)
	}
	if w.Count() != int64(len(xs)) {
		t.Errorf("count = %d, want %d", w.Count(), len(xs))
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Count() != 0 {
		t.Error("empty accumulator should be all zero")
	}
	if !math.IsInf(w.CI(), 1) {
		t.Error("empty accumulator CI should be +Inf")
	}
	w.Add(4.2)
	if w.Mean() != 4.2 || w.Variance() != 0 {
		t.Error("single-sample mean/variance wrong")
	}
	if !math.IsInf(w.CI(), 1) {
		t.Error("single-sample CI should be +Inf (never predictable off one sample)")
	}
}

// clampSamples maps arbitrary generated floats into the physical range of
// kernel timings (finite, bounded magnitude) so squared deviations cannot
// overflow; Welford is only ever fed durations in seconds.
func clampSamples(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e9))
	}
	return out
}

func TestWelfordMergeEquivalentToSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		a, b = clampSamples(a), clampSamples(b)
		var wa, wb, wall Welford
		for _, x := range a {
			wa.Add(x)
			wall.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			wall.Add(x)
		}
		wa.Merge(wb)
		return wa.Count() == wall.Count() &&
			almostEq(wa.Mean(), wall.Mean(), 1e-9) &&
			almostEq(wa.Variance(), wall.Variance(), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != a.Mean() || b.Count() != a.Count() {
		t.Error("merging into empty did not copy")
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	var w Welford
	// Alternating samples keep variance fixed while n grows.
	prev := math.Inf(1)
	for i := 0; i < 100; i++ {
		w.Add(10 + float64(i%2))
		if i >= 3 && i%2 == 1 {
			ci := w.CI()
			if ci >= prev {
				t.Fatalf("CI did not shrink at n=%d: %g >= %g", i+1, ci, prev)
			}
			prev = ci
		}
	}
}

func TestScaledCI(t *testing.T) {
	var w Welford
	for _, x := range []float64{9, 10, 11, 10, 9, 11} {
		w.Add(x)
	}
	base := w.CI()
	if got := w.ScaledCI(1); got != base {
		t.Errorf("freq=1 should not scale: %g != %g", got, base)
	}
	if got := w.ScaledCI(4); !almostEq(got, base/2, 1e-12) {
		t.Errorf("freq=4 should halve the CI: %g, want %g", got, base/2)
	}
	if got := w.ScaledCI(0); got != base {
		t.Errorf("freq=0 treated as 1: got %g want %g", got, base)
	}
}

func TestPredictable(t *testing.T) {
	var w Welford
	if w.Predictable(0.5, 1) {
		t.Error("empty kernel must never be predictable")
	}
	for i := 0; i < 50; i++ {
		w.Add(100 + 0.1*float64(i%3))
	}
	if !w.Predictable(0.01, 1) {
		t.Errorf("tight kernel should be predictable: relCI=%g", w.RelCI(1))
	}
	if w.Predictable(1e-9, 1) {
		t.Error("kernel should not be predictable at absurd tolerance")
	}
	// Frequency credit makes a borderline kernel predictable.
	var v Welford
	for i := 0; i < 4; i++ {
		v.Add(10 + float64(i%2)) // high relative spread
	}
	eps := v.RelCI(1) * 0.6 // between scaled (freq 4 -> /2) and unscaled
	if v.Predictable(eps, 1) {
		t.Fatal("test setup: should not be predictable unscaled")
	}
	if !v.Predictable(eps, 4) {
		t.Error("frequency credit sqrt(4)=2 should make kernel predictable")
	}
}

func TestRelCIDegenerateMean(t *testing.T) {
	var w Welford
	w.Add(0)
	w.Add(0)
	if !math.IsInf(w.RelCI(1), 1) {
		t.Error("zero-mean kernel must have infinite relative CI")
	}
	var n Welford
	n.Add(-1)
	n.Add(-2)
	if !math.IsInf(n.RelCI(1), 1) {
		t.Error("negative-mean kernel must have infinite relative CI")
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(110, 100); !almostEq(e, 0.1, 1e-12) {
		t.Errorf("RelErr(110,100) = %g, want 0.1", e)
	}
	if e := RelErr(90, 100); !almostEq(e, 0.1, 1e-12) {
		t.Errorf("RelErr(90,100) = %g, want 0.1", e)
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
}

func TestMeanLogErr(t *testing.T) {
	// Geometric mean of {2^-2, 2^-4} is 2^-3.
	got := MeanLogErr([]float64{0.25, 0.0625})
	if !almostEq(got, -3, 1e-12) {
		t.Errorf("MeanLogErr = %g, want -3", got)
	}
	if !math.IsInf(MeanLogErr(nil), -1) {
		t.Error("empty errors should be -Inf")
	}
	// Zero errors are floored, not -Inf.
	if math.IsInf(MeanLogErr([]float64{0}), -1) {
		t.Error("zero error should be floored")
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Errorf("Max/Min = %g/%g", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("Max/Min of empty should be -Inf/+Inf")
	}
}

func TestWelfordVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		for _, x := range clampSamples(xs) {
			w.Add(x)
		}
		return w.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("Reset did not clear the accumulator")
	}
}
