// Package stats implements the single-pass statistical machinery the
// approximate autotuning framework is built on: Welford mean/variance
// accumulators, normal-theory confidence intervals, and the scaled
// ("critical-path frequency") intervals of Section III-A of the paper, where
// knowledge that a kernel appears alpha times along the current sub-critical
// path shrinks its confidence interval by a factor sqrt(alpha).
package stats

import "math"

// Z95 is the two-sided 95% normal quantile used for all confidence
// intervals in the paper's experiments ("All experiments use a 95%
// confidence level").
const Z95 = 1.959963984540054

// Welford accumulates a sample mean and variance in a single pass.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another accumulator into w (parallel Welford update).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.n += o.n
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// M2 returns the accumulated sum of squared deviations from the mean (the
// second raw moment of Welford's recurrence). Together with Count and Mean it
// fully determines the accumulator state, so the triple serializes a model.
func (w *Welford) M2() float64 { return w.m2 }

// WelfordFromMoments reconstructs an accumulator from its serialized state
// (count, mean, m2), the inverse of the Count/Mean/M2 accessors. Negative
// counts and m2 are clamped to zero so corrupted inputs cannot produce
// negative variances.
func WelfordFromMoments(n int64, mean, m2 float64) Welford {
	if n <= 0 {
		return Welford{}
	}
	if m2 < 0 {
		m2 = 0
	}
	return Welford{n: n, mean: mean, m2: m2}
}

// Reset empties the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// CI returns the half-width of the two-sided 95% confidence interval for the
// mean: z * s / sqrt(n). With fewer than two samples the interval is
// unbounded (returned as +Inf) so callers never deem an unsampled kernel
// predictable.
func (w *Welford) CI() float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return Z95 * w.StdDev() / math.Sqrt(float64(w.n))
}

// ScaledCI returns the confidence interval half-width after crediting the
// kernel's execution count freq along the current sub-critical path. Per
// Section III-A, a kernel appearing alpha times along the path is modeled
// with variance sigma^2/alpha, shrinking the interval by sqrt(alpha).
// freq < 1 is treated as 1.
func (w *Welford) ScaledCI(freq int64) float64 {
	ci := w.CI()
	if freq > 1 && !math.IsInf(ci, 1) {
		ci /= math.Sqrt(float64(freq))
	}
	return ci
}

// RelCI returns the relative confidence interval eps-tilde = CI/mean used for
// the skip decision (eps-tilde <= eps). A zero or negative mean yields +Inf,
// so degenerate kernels are never skipped.
func (w *Welford) RelCI(freq int64) float64 {
	if w.mean <= 0 {
		return math.Inf(1)
	}
	return w.ScaledCI(freq) / w.mean
}

// Predictable reports whether the kernel's execution time is sufficiently
// predictable at confidence tolerance eps, given path frequency freq.
func (w *Welford) Predictable(eps float64, freq int64) bool {
	return w.RelCI(freq) <= eps
}

// RelErr returns |pred-actual| / actual, the relative prediction error metric
// of Section VI-A. A non-positive actual yields 0 when pred equals actual and
// +Inf otherwise.
func RelErr(pred, actual float64) float64 {
	if actual <= 0 {
		if pred == actual {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-actual) / actual
}

// MeanLogErr returns log2 of the geometric mean of the relative errors, the
// "mean log prediction error" plotted in Figures 4 and 5. Zero errors are
// floored at 2^-20 so a perfect prediction does not produce -Inf.
func MeanLogErr(errs []float64) float64 {
	if len(errs) == 0 {
		return math.Inf(-1)
	}
	const floor = 9.5367431640625e-07 // 2^-20
	sum := 0.0
	for _, e := range errs {
		if e < floor {
			e = floor
		}
		sum += math.Log2(e)
	}
	return sum / float64(len(errs))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
