package obs

// Dual-clock run tracing. A Tracer receives span events from every layer
// of a tuning run — job (service/CLI), sweep and config (autotune),
// kernel-propagation rounds (critter/mpi) — and the two clock fields keep
// the determinism contract intact: Virtual is stamped by the emitting
// layer from the simulation's per-rank virtual clock, while WallNanos is
// stamped *by the tracer itself* (Ring/JSONL) from an injected Clock, so
// deterministic layers never read real time. A nil Tracer is the default
// everywhere and costs a single pointer comparison on the hot path.

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceSchemaVersion identifies the JSONL trace file schema; it is the
// first line of every file NewJSONL writes.
const TraceSchemaVersion = 1

// Span event kinds.
const (
	KindJob      = "job"      // one tuning job / CLI run
	KindSweep    = "sweep"    // one (policy, eps) grid cell
	KindConfig   = "config"   // one configuration of a sweep
	KindStrategy = "strategy" // one strategy planning round
	KindRound    = "round"    // one kernel-propagation round (collective or p2p)
)

// Span event phases.
const (
	PhaseBegin = "begin"
	PhaseEnd   = "end"
	PhasePoint = "point" // instantaneous event, no matching begin/end
)

// Event is one trace record. The Kind/Phase pair forms spans (begin/end)
// or instants (point); the remaining fields identify where in the run
// hierarchy the event sits and what it measured. Zero-valued fields are
// omitted from JSON, so round events stay one short line each.
type Event struct {
	// Seq is the tracer-assigned sequence number, unique and ascending
	// within one tracer.
	Seq uint64 `json:"seq"`
	// Kind and Phase classify the event (Kind* and Phase* constants).
	Kind  string `json:"kind"`
	Phase string `json:"phase"`
	// Name carries the kind-specific subject: the workload for job
	// events, the collective/p2p op for round events.
	Name string `json:"name,omitempty"`
	// Job is the owning job ID when the run belongs to a service job.
	Job string `json:"job,omitempty"`
	// Policy and Eps identify the sweep's grid cell (sweep and deeper).
	Policy string  `json:"policy,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	// Config is the 1-based configuration ordinal within its sweep;
	// Round the strategy planning round it belongs to; Configs a
	// strategy round's planned configuration count.
	Config  int `json:"config,omitempty"`
	Round   int `json:"round,omitempty"`
	Configs int `json:"configs,omitempty"`
	// Virtual is the emitting rank's virtual-clock reading in seconds.
	// FullVirtual carries the reference (selective execution off)
	// virtual duration on config/sweep end events.
	Virtual     float64 `json:"virtual,omitempty"`
	FullVirtual float64 `json:"fullVirtual,omitempty"`
	// WallNanos is a wall-clock timestamp in nanoseconds since the Unix
	// epoch, stamped by the receiving tracer when it was built with a
	// Clock; 0 when tracing without wall time.
	WallNanos int64 `json:"wallNanos,omitempty"`
	// Executed and Skipped are cumulative kernel counts on end events.
	Executed int64 `json:"executed,omitempty"`
	Skipped  int64 `json:"skipped,omitempty"`
	// Memoized counts skips whose predictability decision was replayed
	// from the sweep-scoped kernel memo (a subset of Skipped): cumulative
	// on sweep end events, 1 on round point events whose deciding rank's
	// latest skip decision was memo-served.
	Memoized int64 `json:"memoized,omitempty"`
	// AllocBytes is the heap growth attributed to the span (sweep end
	// events, sampled by the executor when tracing is enabled).
	AllocBytes uint64 `json:"allocBytes,omitempty"`
	// Error carries the span's failure, when there is one.
	Error string `json:"error,omitempty"`
}

// Tracer receives trace events. Implementations must be safe for
// concurrent Emit calls: sweeps run on a worker pool. A nil Tracer means
// tracing is off; every emitting layer nil-checks before building an
// Event, which keeps the disabled path free of allocations.
type Tracer interface {
	Emit(Event)
}

// Ring is a bounded in-memory tracer: the last capacity events, oldest
// dropped first. It is the service layer's per-job tracer behind
// GET /v1/jobs/{id}/trace.
type Ring struct {
	clock Clock

	mu      sync.Mutex
	seq     uint64
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// NewRing returns a ring holding at most capacity events (minimum 1).
// clock, when non-nil, stamps WallNanos on every event.
func NewRing(capacity int, clock Clock) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{clock: clock, buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if r.clock != nil {
		ev.WallNanos = r.clock().UnixNano()
	}
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events snapshots the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Dropped reports how many events the ring has overwritten.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	TraceSchemaVersion int `json:"traceSchemaVersion"`
}

// JSONL streams events to a writer as one JSON object per line, prefixed
// by a {"traceSchemaVersion":1} header line. Write errors are sticky and
// reported by Err; Emit never fails the traced run.
type JSONL struct {
	clock Clock

	mu  sync.Mutex
	seq uint64
	enc *json.Encoder
	err error
}

// NewJSONL returns a tracer writing JSON lines to w. clock, when non-nil,
// stamps WallNanos on every event.
func NewJSONL(w io.Writer, clock Clock) *JSONL {
	t := &JSONL{clock: clock, enc: json.NewEncoder(w)}
	t.err = t.enc.Encode(jsonlHeader{TraceSchemaVersion: TraceSchemaVersion})
	return t
}

// Emit implements Tracer.
func (t *JSONL) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	ev.Seq = t.seq
	if t.clock != nil {
		ev.WallNanos = t.clock().UnixNano()
	}
	t.err = t.enc.Encode(ev)
}

// Count reports how many events have been written.
func (t *JSONL) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Err returns the first write error, if any.
func (t *JSONL) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Tee fans events out to every non-nil tracer in ts; it returns nil when
// none are, so the disabled fast path stays a nil check.
func Tee(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []Tracer

func (ts teeTracer) Emit(ev Event) {
	for _, t := range ts {
		t.Emit(ev)
	}
}
