package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock is a deterministic Clock for tests.
func fixedClock() Clock {
	base := time.Unix(1000, 0)
	var mu sync.Mutex
	n := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestRingOrderAndOverflow(t *testing.T) {
	r := NewRing(3, nil)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Kind: KindRound, Phase: PhasePoint, Config: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := i + 3; ev.Config != want {
			t.Errorf("event %d config = %d, want %d (oldest-first order)", i, ev.Config, want)
		}
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Errorf("seqs = %d..%d, want 3..5", evs[0].Seq, evs[2].Seq)
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	if evs[0].WallNanos != 0 {
		t.Error("clockless ring stamped wall time")
	}
}

func TestRingWallStamps(t *testing.T) {
	r := NewRing(4, fixedClock())
	r.Emit(Event{Kind: KindJob, Phase: PhaseBegin})
	r.Emit(Event{Kind: KindJob, Phase: PhaseEnd})
	evs := r.Events()
	if evs[0].WallNanos == 0 || evs[1].WallNanos <= evs[0].WallNanos {
		t.Errorf("wall stamps not increasing: %d, %d", evs[0].WallNanos, evs[1].WallNanos)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var b strings.Builder
	tr := NewJSONL(&b, fixedClock())
	tr.Emit(Event{Kind: KindSweep, Phase: PhaseBegin, Policy: "online", Eps: 0.125})
	tr.Emit(Event{Kind: KindSweep, Phase: PhaseEnd, Policy: "online", Eps: 0.125, Executed: 7, Skipped: 3})
	if err := tr.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if tr.Count() != 2 {
		t.Errorf("Count = %d, want 2", tr.Count())
	}

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.TraceSchemaVersion != TraceSchemaVersion {
		t.Fatalf("header = %q (err %v), want traceSchemaVersion %d", sc.Text(), err, TraceSchemaVersion)
	}
	var seqs []uint64
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		seqs = append(seqs, ev.Seq)
		if ev.WallNanos == 0 {
			t.Error("event missing wall stamp")
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("seqs = %v, want [1 2]", seqs)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live tracers is not nil")
	}
	a, b := NewRing(8, nil), NewRing(8, nil)
	if Tee(a, nil) != Tracer(a) {
		t.Error("Tee of one live tracer is not that tracer")
	}
	tee := Tee(a, b)
	tee.Emit(Event{Kind: KindJob, Phase: PhaseBegin})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("tee delivered %d/%d events, want 1/1", len(a.Events()), len(b.Events()))
	}
}

func TestTracersConcurrent(t *testing.T) {
	r := NewRing(64, fixedClock())
	var discard strings.Builder
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return discard.Write(p)
	})
	j := NewJSONL(safe, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				r.Emit(Event{Kind: KindRound, Phase: PhasePoint})
				j.Emit(Event{Kind: KindRound, Phase: PhasePoint})
			}
		}()
	}
	wg.Wait()
	if got := r.Dropped(); got != 8*200-64 {
		t.Errorf("ring dropped %d, want %d", got, 8*200-64)
	}
	if j.Count() != 8*200 {
		t.Errorf("jsonl wrote %d, want %d", j.Count(), 8*200)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
