package obs

// The single sanctioned wall-clock injection point of the deterministic
// layers. Everything below internal/service is bound by the critterlint
// detrand invariant: no time.Now, no timers — virtual time only. Tracing,
// however, is a dual-clock problem: span events carry *virtual* seconds
// (meaningful inside the simulation) and, when a wall-clocked consumer
// asked for them, *wall* nanoseconds (meaningful for profiling real
// overhead). Rather than exempt all of internal/obs from detrand, this
// one file holds the only wall-clock reference; critterlint allowlists
// exactly "internal/obs/clock.go" and keeps policing every other file in
// the package. Deterministic code never calls a Clock — it only carries
// the value to a tracer constructed by service/cmd code.

import "time"

// Clock supplies wall-clock readings to tracers that stamp events with
// real time. A nil Clock disables wall stamps entirely, which is the
// correct configuration for any tracer whose output feeds deterministic
// comparisons (golden tests diff trace files with wall stamps stripped —
// or simply built without a Clock).
type Clock func() time.Time

// WallClock returns the real wall clock. Call it only from layers that own
// real time (internal/service, cmd/...); hand the resulting Clock to
// NewRing or NewJSONL.
func WallClock() Clock { return time.Now }
