package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("latency_seconds", "latency", 0.1, 1, 10)

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	for _, v := range []float64{0.0625, 0.5, 5, 50} {
		h.Observe(v)
	}

	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("snapshot has %d families, want 3", len(snaps))
	}
	if snaps[0].Name != "reqs_total" || snaps[0].Kind != KindCounter || snaps[0].Metrics[0].Value != 5 {
		t.Errorf("counter snapshot wrong: %+v", snaps[0])
	}
	hs := snaps[2].Metrics[0]
	if hs.Count != 4 || hs.Sum != 55.5625 {
		t.Errorf("histogram count/sum = %d/%v, want 4/55.5625", hs.Count, hs.Sum)
	}
	// Cumulative buckets: ≤0.1 → 1, ≤1 → 2, ≤10 → 3, +Inf → 4.
	wantCum := []int64{1, 2, 3, 4}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
}

func TestVecFamiliesAndFuncs(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("kernels_total", "kernels", "workload", "outcome")
	vec.With("candmc", "executed").Add(7)
	vec.With("candmc", "skipped").Add(3)
	vec.With("candmc", "executed").Inc()

	depth := 42.0
	r.GaugeFunc("live_depth", "sampled", func() float64 { return depth })
	r.GaugeVecFunc("memo_hits", "per-entry hits", []string{"fingerprint"}, func() []Sample {
		return []Sample{{Labels: []string{"abc"}, Value: 2}}
	})

	snaps := r.Snapshot()
	kt := snaps[0]
	if len(kt.Metrics) != 2 {
		t.Fatalf("vec has %d cells, want 2", len(kt.Metrics))
	}
	if kt.Metrics[0].Value != 8 || kt.Metrics[0].Labels[1] != "executed" {
		t.Errorf("first cell = %+v", kt.Metrics[0])
	}
	if snaps[1].Metrics[0].Value != 42 {
		t.Errorf("gauge func = %v, want 42", snaps[1].Metrics[0].Value)
	}
	if got := snaps[2].Metrics[0]; got.Value != 2 || got.Labels[0] != "abc" {
		t.Errorf("gauge vec func cell = %+v", got)
	}

	// Snapshots are JSON-marshalable and stable.
	a, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, _ := json.Marshal(r)
	if string(a) != string(b) {
		t.Error("consecutive snapshots differ")
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "")
	for name, fn := range map[string]func(){
		"duplicate name":  func() { r.Gauge("a_total", "") },
		"bad metric name": func() { r.Counter("0bad", "") },
		"le label":        func() { r.CounterVec("b_total", "", "le") },
		"arity mismatch": func() {
			v := r.CounterVec("c_total", "", "x")
			v.With("1", "2")
		},
		"negative counter": func() {
			c := r.Counter("d_total", "")
			c.Add(-1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_completed_total", "finished jobs").Add(2)
	r.CounterVec("kernels_total", "kernels", "workload").With(`we"ird\nl`).Inc()
	h := r.Histogram("dur_seconds", "durations", 1, 5)
	h.Observe(0.5)
	h.Observe(7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_completed_total counter\n",
		"jobs_completed_total 2\n",
		"# HELP jobs_completed_total finished jobs\n",
		`kernels_total{workload="we\"ird\\nl"} 1` + "\n",
		`dur_seconds_bucket{le="1"} 1` + "\n",
		`dur_seconds_bucket{le="5"} 1` + "\n",
		`dur_seconds_bucket{le="+Inf"} 2` + "\n",
		"dur_seconds_sum 7.5\n",
		"dur_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Every non-comment line is `name{...} value` — a minimal format check.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestConcurrentHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 10, 100)
	vec := r.CounterVec("v_total", "", "k")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(n % 200))
				vec.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	snap := r.Snapshot()
	if snap[2].Metrics[0].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", snap[2].Metrics[0].Count)
	}
	total := snap[3].Metrics[0].Value + snap[3].Metrics[1].Value
	if total != 8000 {
		t.Errorf("vec total = %v, want 8000", total)
	}
}
