// Package obs is the stdlib-only observability layer: a metrics registry
// (counters, gauges, and fixed-bucket histograms, optionally fanned out
// into labeled families) with atomic hot paths and a snapshot API, plus a
// dual-clock tracing facility (trace.go) whose events carry virtual time
// from the deterministic simulation layers and wall time from the service
// layer. The package sits below internal/service in the dependency order
// so the mpi world, the profiler, and the tuner can emit through it, and
// it is itself a critterlint-deterministic layer: the only wall-clock
// reference lives in clock.go, the single sanctioned injection point.
//
// Nothing here writes to the network or the filesystem; the registry
// renders itself as JSON (Snapshot) or Prometheus text exposition format
// (WritePrometheus) and leaves serving to the HTTP layer.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing count. Inc and Add are lock-free
// and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	sumBits atomic.Uint64
	n       atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sample is one labeled value produced by a callback family
// (GaugeVecFunc): the label values (matching the family's label names)
// and the sampled reading.
type Sample struct {
	Labels []string `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// metric is one child of a family: exactly one of the typed cells is set,
// matching the family's kind.
type metric struct {
	labels []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one registered metric name: its metadata plus its children
// (one for unlabeled metrics, one per label-value combination for
// vectors). childOrder keeps snapshots deterministic without sorting at
// render time.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64

	mu         sync.Mutex
	children   map[string]*metric
	childOrder []string

	// fn, when set, makes this a callback family: children are ignored
	// and every snapshot re-samples the callback.
	fn func() []Sample
}

// Registry is a set of metric families. Registration methods panic on
// misuse (duplicate names, bad label cardinality) — metrics are wired at
// construction time, so failing loudly beats serving a corrupt catalog.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register installs a new family, panicking on duplicates or bad names.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	f.children = make(map[string]*metric)
	r.fams[f.name] = f
	r.order = append(r.order, f.name)
	return f
}

// child returns the family's cell for the given label values, creating it
// on first use.
func (f *family) child(values []string) *metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		m = &metric{labels: append([]string(nil), values...)}
		switch f.kind {
		case KindCounter:
			m.c = &Counter{}
		case KindGauge:
			m.g = &Gauge{}
		case KindHistogram:
			h := &Histogram{bounds: f.buckets}
			h.counts = make([]atomic.Int64, len(f.buckets)+1)
			m.h = h
		}
		f.children[key] = m
		f.childOrder = append(f.childOrder, key)
	}
	return m
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: KindCounter})
	return f.child(nil).c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: KindGauge})
	return f.child(nil).g
}

// Histogram registers and returns an unlabeled histogram with the given
// ascending bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	f := r.register(&family{name: name, help: help, kind: KindHistogram, buckets: append([]float64(nil), bounds...)})
	return f.child(nil).h
}

// GaugeFunc registers a gauge sampled by callback at snapshot time — for
// readings that already live elsewhere (queue depths, log sizes) and
// would otherwise need shadow bookkeeping. fn must be safe to call from
// any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindGauge, fn: func() []Sample {
		return []Sample{{Value: fn()}}
	}})
}

// GaugeVecFunc registers a labeled gauge family sampled by callback at
// snapshot time; fn returns one Sample per live label combination and
// must be safe to call from any goroutine.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, kind: KindGauge, labels: append([]string(nil), labels...), fn: fn})
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, kind: KindCounter, labels: append([]string(nil), labels...)})}
}

// With returns the counter cell for the given label values, creating it
// on first use. Hot paths should cache the returned *Counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, kind: KindGauge, labels: append([]string(nil), labels...)})}
}

// With returns the gauge cell for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// BucketSnapshot is one histogram bucket in a snapshot: its inclusive
// upper bound (+Inf rendered as the JSON string "+Inf" by UpperBound's
// marshaling being a float — math.Inf encodes via the text format only;
// JSON snapshots clamp it to math.MaxFloat64) and the cumulative count.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MetricSnapshot is one cell of a family snapshot.
type MetricSnapshot struct {
	Labels  []string         `json:"labels,omitempty"`
	Value   float64          `json:"value"`
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family in a registry snapshot — the JSON
// shape of GET /v1/metrics.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    Kind             `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// snapshotFamily renders one family. Callback families re-sample their
// callback; stored families render children in creation order.
func (f *family) snapshot() FamilySnapshot {
	out := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: append([]string(nil), f.labels...)}
	if f.fn != nil {
		for _, s := range f.fn() {
			out.Metrics = append(out.Metrics, MetricSnapshot{Labels: s.Labels, Value: s.Value})
		}
		if out.Metrics == nil {
			out.Metrics = []MetricSnapshot{}
		}
		return out
	}
	f.mu.Lock()
	children := make([]*metric, 0, len(f.childOrder))
	for _, key := range f.childOrder {
		children = append(children, f.children[key])
	}
	f.mu.Unlock()
	out.Metrics = make([]MetricSnapshot, 0, len(children))
	for _, m := range children {
		ms := MetricSnapshot{Labels: m.labels}
		switch f.kind {
		case KindCounter:
			ms.Value = float64(m.c.Value())
		case KindGauge:
			ms.Value = m.g.Value()
		case KindHistogram:
			var cum int64
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				ub := math.MaxFloat64
				if i < len(m.h.bounds) {
					ub = m.h.bounds[i]
				}
				ms.Buckets = append(ms.Buckets, BucketSnapshot{UpperBound: ub, Count: cum})
			}
			ms.Count = m.h.n.Load()
			ms.Sum = math.Float64frombits(m.h.sumBits.Load())
			ms.Value = float64(ms.Count)
		}
		out.Metrics = append(out.Metrics, ms)
	}
	return out
}

// Snapshot renders every family in registration order. The result is
// JSON-marshalable and stable: families in registration order, cells in
// creation order.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

// MarshalJSON renders the registry as its snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabels renders a {k="v",...} block, empty for no labels. extra is an
// optional trailing label (histograms' le).
func promLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a sample value for the text format.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one sample line per
// cell, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		snap := f.snapshot()
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range snap.Metrics {
			if f.kind == KindHistogram {
				for i, b := range m.Buckets {
					ub := "+Inf"
					if i < len(f.buckets) {
						ub = promFloat(f.buckets[i])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(f.labels, m.Labels, "le", ub), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(f.labels, m.Labels, "", ""), promFloat(m.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(f.labels, m.Labels, "", ""), m.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(f.labels, m.Labels, "", ""), promFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
