package mpi

// Discrete-event scheduler tests: the event mode must produce the same
// virtual clocks as the goroutine mode on the mixed stress workload, unwind
// cleanly when a rank panics while peers are parked on the baton, and prove
// (rather than hang on) deadlocks. Run under -race in CI, these double as
// the scheduler's data-race stress.

import (
	"errors"
	"testing"

	"critter/internal/sim"
)

// TestStressCrossScheduler32 runs the mixed stress workload under both
// concrete schedulers and demands bit-identical per-rank virtual clocks:
// the baton-passing event loop must not change what the free-running
// goroutine mode computes.
func TestStressCrossScheduler32(t *testing.T) {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0.08
	var ref []float64
	for _, sched := range []SchedulerKind{SchedGoroutine, SchedEvent} {
		sums := make([]float64, 32)
		w := NewWorld(32, m, 0xfeed)
		w.SetScheduler(sched)
		if got := w.EffectiveScheduler(); got != sched {
			t.Fatalf("EffectiveScheduler() = %v after SetScheduler(%v)", got, sched)
		}
		if err := w.Run(func(c *Comm) { stressBody(c, sums) }); err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if ref == nil {
			ref = sums
			continue
		}
		for r, v := range sums {
			if v != ref[r] {
				t.Fatalf("%v: rank %d virtual time %v differs from goroutine mode's %v", sched, r, v, ref[r])
			}
		}
	}
}

// TestStressAbortFanoutDES panics one rank mid-workload under the event
// scheduler while its peers are parked waiting for the baton; the abort
// drain must make every parked rank runnable so the world unwinds via
// ErrAborted instead of stalling with no baton holder, and Run must surface
// the original failure.
func TestStressAbortFanoutDES(t *testing.T) {
	boom := errors.New("rank 9 exploded")
	w := NewWorld(32, sim.DefaultMachine(), 7)
	w.SetScheduler(SchedEvent)
	sums := make([]float64, 32)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 9 {
			// Let peers get deep into blocking operations first.
			c.Barrier()
			panic(boom)
		}
		c.Barrier()
		stressBody(c, sums)
	})
	if err == nil {
		t.Fatal("Run returned nil after a rank panic")
	}
	if !errors.Is(err, boom) {
		t.Errorf("Run error %v does not wrap the original panic", err)
	}
}

// TestDESDeadlockDetected pins a provable deadlock (two ranks both
// receiving first) to the event scheduler: with every live rank parked and
// no message in flight, the scheduler must abort the world with its
// deadlock error rather than hang — the property the goroutine mode cannot
// offer.
func TestDESDeadlockDetected(t *testing.T) {
	w := NewWorld(2, sim.DefaultMachine(), 1)
	w.SetScheduler(SchedEvent)
	err := w.Run(func(c *Comm) {
		buf := make([]float64, 1)
		c.Recv(1-c.Rank(), 0, buf) // both ranks wait; nobody sends
	})
	if err == nil {
		t.Fatal("Run returned nil on a deadlocked world")
	}
	if !errors.Is(err, errDeadlock) {
		t.Errorf("Run error %v is not the deadlock abort", err)
	}
}

// TestDESRepeatedAbortDeterminism aborts an event-scheduled world many
// times in a row (fresh world each round, same seed) and checks the error
// keeps surfacing — exercising the abort drain's baton bookkeeping under
// -race across repeated park/ready/finish interleavings.
func TestDESRepeatedAbortDeterminism(t *testing.T) {
	boom := errors.New("round abort")
	for round := 0; round < 25; round++ {
		w := NewWorld(8, sim.DefaultMachine(), uint64(round))
		w.SetScheduler(SchedEvent)
		err := w.Run(func(c *Comm) {
			buf := make([]float64, 4)
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			for i := 0; i < 4; i++ {
				if c.Rank()%2 == 0 {
					c.Send(next, i, buf)
					c.Recv(prev, i, buf)
				} else {
					c.Recv(prev, i, buf)
					c.Send(next, i, buf)
				}
			}
			if c.Rank() == round%8 {
				panic(boom)
			}
			c.Barrier() // parked here when the abort lands
		})
		if !errors.Is(err, boom) {
			t.Fatalf("round %d: error %v does not wrap the abort", round, err)
		}
	}
}
