package mpi

// The typed message fabric: the sharded, allocation-lean core every
// communication path runs on. A World owns one fabric per payload type,
// created on first use; a fabric owns one mailbox per world rank (each with
// its own lock and condition variable) and a fixed set of collective-round
// shards. Point-to-point traffic therefore contends only on the destination
// mailbox and collectives only on their round's shard — there is no
// world-global lock — and a payload is stored as its concrete type end to
// end, so typed messages (the profiler's intMsg piggyback, Split's
// color/key records) never box through interface{}.
//
// Matching is per fabric: a message sent as type T is received as type T.
// SPMD symmetry makes this safe — peers issue the same operation with the
// same payload type on both sides — and the legacy *Any operations are thin
// wrappers over the fabric instantiated at T = any.

import (
	"math/bits"
	"reflect"
	"sync"
)

// fmsg is one in-flight message of a typed fabric.
type fmsg[T any] struct {
	ctx     uint64
	src     int // rank within the communicator
	tag     int
	payload T
	arrive  float64 // virtual time at which the payload is fully available
	// pooled marks a payload buffer owned by the world's buffer pool,
	// recyclable once the receiver has copied it out (data plane only).
	pooled bool
}

// fbox holds in-flight point-to-point messages destined to one world rank,
// guarded by its own lock so senders to different ranks never contend.
type fbox[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []fmsg[T]
}

// round coordinates one collective operation instance. Guarded by its
// shard's lock.
type round[T any] struct {
	arrived  int
	departed int
	maxT     float64
	payloads []T
	clocks   []float64
	done     bool
}

// roundKey identifies a collective round: the communicator's matching
// context and the per-rank sequence number of the operation on it.
type roundKey struct {
	ctx uint64
	seq uint64
}

// roundShardCount is the number of independently locked collective-round
// shards per fabric. Rounds hash to shards by context and sequence, so
// concurrent collectives on different communicators rarely share a lock.
const roundShardCount = 8

// roundShard is one independently locked slice of a fabric's collective
// state.
type roundShard[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rounds map[roundKey]*round[T]
}

// fabric is the per-payload-type message substrate of one World.
type fabric[T any] struct {
	w      *World
	boxes  []fbox[T]
	shards [roundShardCount]roundShard[T]
}

// newFabric builds and wires a fabric for w, registering every condition
// variable with the world's abort machinery.
func newFabric[T any](w *World) *fabric[T] {
	f := &fabric[T]{w: w, boxes: make([]fbox[T], w.size)}
	wakers := make([]waker, 0, w.size+roundShardCount)
	for i := range f.boxes {
		b := &f.boxes[i]
		b.cond = sync.NewCond(&b.mu)
		wakers = append(wakers, waker{mu: &b.mu, cond: b.cond})
	}
	for i := range f.shards {
		s := &f.shards[i]
		s.cond = sync.NewCond(&s.mu)
		s.rounds = make(map[roundKey]*round[T])
		wakers = append(wakers, waker{mu: &s.mu, cond: s.cond})
	}
	w.registerWakers(wakers)
	return f
}

// fabricOf returns w's fabric for payload type T, creating it on first use.
// The steady state is one lock-free map load; creation is serialized by
// fabricMu so exactly one fabric per type is built and registered with the
// abort machinery (a lost LoadOrStore race would leak the loser's waker
// registrations).
func fabricOf[T any](w *World) *fabric[T] {
	key := reflect.TypeFor[T]()
	if f, ok := w.fabrics.Load(key); ok {
		return f.(*fabric[T])
	}
	w.fabricMu.Lock()
	defer w.fabricMu.Unlock()
	if f, ok := w.fabrics.Load(key); ok {
		return f.(*fabric[T])
	}
	f := newFabric[T](w)
	w.fabrics.Store(key, f)
	return f
}

// shardOf maps a round key to its shard.
func (f *fabric[T]) shardOf(key roundKey) *roundShard[T] {
	h := key.ctx*0x9e3779b97f4a7c15 + key.seq
	return &f.shards[(h>>32)%roundShardCount]
}

// post delivers m to world rank dest's mailbox on this fabric.
func (f *fabric[T]) post(dest int, m fmsg[T]) {
	box := &f.boxes[dest]
	box.mu.Lock()
	defer box.mu.Unlock()
	f.w.checkAbort()
	box.queue = append(box.queue, m)
	box.cond.Broadcast()
	if d := f.w.des; d != nil {
		d.ready(dest)
	}
}

// match blocks until a message with (ctx, src, tag) is present in the
// calling rank's mailbox on this fabric and removes it (FIFO among equals).
func (f *fabric[T]) match(c *Comm, src, tag int) fmsg[T] {
	box := &f.boxes[c.state.worldRank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		f.w.checkAbort()
		for i := range box.queue {
			m := &box.queue[i]
			if m.ctx == c.ctx && m.src == src && m.tag == tag {
				out := *m
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				return out
			}
		}
		if d := f.w.des; d != nil {
			d.park(c.state.worldRank, &box.mu)
		} else {
			box.cond.Wait()
		}
	}
}

// gatherRound synchronizes all communicator members at a collective point
// on this fabric, depositing payload and returning every member's payload
// (indexed by comm rank), the maximum participant clock, and the round's
// sequence number. Payloads are shared across ranks after the round: treat
// them as immutable.
func (f *fabric[T]) gatherRound(c *Comm, payload T) ([]T, float64, uint64) {
	seq := c.collSeq
	c.collSeq++
	key := roundKey{c.ctx, seq}
	sh := f.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f.w.checkAbort()
	rd, ok := sh.rounds[key]
	if !ok {
		rd = &round[T]{
			payloads: make([]T, len(c.group)),
			clocks:   make([]float64, len(c.group)),
		}
		sh.rounds[key] = rd
	}
	rd.payloads[c.rank] = payload
	rd.clocks[c.rank] = c.state.clock.Now()
	rd.arrived++
	if rd.arrived == len(c.group) {
		maxT := rd.clocks[0]
		for _, t := range rd.clocks[1:] {
			if t > maxT {
				maxT = t
			}
		}
		rd.maxT = maxT
		rd.done = true
		sh.cond.Broadcast()
		if d := f.w.des; d != nil {
			// Every other member has deposited and parked on this round;
			// route their wakeups explicitly.
			for _, wr := range c.group {
				if wr != c.state.worldRank {
					d.ready(wr)
				}
			}
		}
	}
	for !rd.done {
		f.w.checkAbort()
		if d := f.w.des; d != nil {
			d.park(c.state.worldRank, &sh.mu)
		} else {
			sh.cond.Wait()
		}
	}
	f.w.checkAbort()
	payloads, maxT := rd.payloads, rd.maxT
	rd.departed++
	if rd.departed == len(c.group) {
		delete(sh.rounds, key)
	}
	return payloads, maxT, seq
}

// Lane is a pre-resolved handle on a world's fabric for one payload type:
// the per-operation type-to-fabric lookup is paid once at construction
// (LaneOf) instead of on every message. High-rate typed traffic — the
// profiler's per-operation piggyback messages — should hold a Lane; the
// package-level generic functions resolve the fabric per call and suit
// construction-time or low-rate use.
type Lane[T any] struct {
	f *fabric[T]
}

// LaneOf resolves (creating on first use) w's lane for payload type T.
func LaneOf[T any](w *World) Lane[T] { return Lane[T]{f: fabricOf[T](w)} }

// Send transmits a typed payload to dest under tag without advancing any
// virtual clock. It exists for internal piggyback traffic (the profiler's
// protocol messages), whose overhead the paper treats as negligible. The
// payload is not copied; treat it as immutable after sending.
func (l Lane[T]) Send(c *Comm, dest, tag int, payload T) {
	c.checkPeer(dest)
	l.f.post(c.group[dest], fmsg[T]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: payload,
		arrive:  c.state.clock.Now(),
	})
}

// Recv blocks for a typed payload from src under tag. Clocks are not
// advanced.
func (l Lane[T]) Recv(c *Comm, src, tag int) T {
	c.checkPeer(src)
	return l.f.match(c, src, tag).payload
}

// Exchange sends payload to peer and receives the peer's payload, both
// untimed. Both sides must call it. It is the runtime's analogue of the
// internal PMPI_Sendrecv in Figure 2 of the paper.
func (l Lane[T]) Exchange(c *Comm, peer, tag int, payload T) T {
	l.Send(c, peer, tag, payload)
	return l.Recv(c, peer, tag)
}

// Allreduce folds every member's typed payload with merge (in comm-rank
// order) and returns the result to all members. Clocks are synchronized to
// the maximum participant time but no transfer cost is charged: this is the
// profiler's internal coordination primitive (the PMPI_Allreduce with a
// custom operator in Figure 2 of the paper). merge must be pure; the result
// is shared across ranks and must be treated as immutable.
func (l Lane[T]) Allreduce(c *Comm, payload T, merge func(a, b T) T) T {
	payloads, maxT, _ := l.f.gatherRound(c, payload)
	acc := payloads[0]
	for _, p := range payloads[1:] {
		acc = merge(acc, p)
	}
	c.state.clock.AdvanceTo(maxT)
	return acc
}

// GatherUntimed returns every member's typed payload indexed by comm rank,
// synchronizing clocks to the max participant time without charging cost.
// Used by the profiler for aggregate-channel construction and shared
// interner adoption.
func (l Lane[T]) GatherUntimed(c *Comm, payload T) []T {
	payloads, maxT, _ := l.f.gatherRound(c, payload)
	c.state.clock.AdvanceTo(maxT)
	return payloads
}

// SendMsg transmits a typed payload to dest under tag, untimed. Per-call
// fabric resolution; hot paths should hold a Lane.
func SendMsg[T any](c *Comm, dest, tag int, payload T) {
	LaneOf[T](c.w).Send(c, dest, tag, payload)
}

// RecvMsg blocks for a typed payload from src under tag. Clocks are not
// advanced.
func RecvMsg[T any](c *Comm, src, tag int) T {
	return LaneOf[T](c.w).Recv(c, src, tag)
}

// ExchangeMsg sends payload to peer and receives the peer's payload, both
// untimed. Both sides must call it.
func ExchangeMsg[T any](c *Comm, peer, tag int, payload T) T {
	return LaneOf[T](c.w).Exchange(c, peer, tag, payload)
}

// AllreduceMsg folds every member's typed payload with merge in comm-rank
// order, untimed. See Lane.Allreduce.
func AllreduceMsg[T any](c *Comm, payload T, merge func(a, b T) T) T {
	return LaneOf[T](c.w).Allreduce(c, payload, merge)
}

// GatherMsgUntimed returns every member's typed payload indexed by comm
// rank, synchronizing clocks without charging cost. See Lane.GatherUntimed.
func GatherMsgUntimed[T any](c *Comm, payload T) []T {
	return LaneOf[T](c.w).GatherUntimed(c, payload)
}

// SendAny transmits an arbitrary payload to dest under tag without
// advancing any virtual clock. Thin wrapper over the typed fabric at
// T = any, kept for call sites without a concrete payload type.
func (c *Comm) SendAny(dest, tag int, payload any) { SendMsg(c, dest, tag, payload) }

// RecvAny blocks for an internal payload from src under tag. Clocks are not
// advanced. Thin wrapper over the typed fabric at T = any.
func (c *Comm) RecvAny(src, tag int) any { return RecvMsg[any](c, src, tag) }

// ExchangeAny sends payload to peer and receives the peer's payload, both
// untimed. Thin wrapper over the typed fabric at T = any.
func (c *Comm) ExchangeAny(peer, tag int, payload any) any {
	return ExchangeMsg[any](c, peer, tag, payload)
}

// AllreduceAny folds every member's payload with merge in comm-rank order.
// Thin wrapper over the typed fabric at T = any.
func (c *Comm) AllreduceAny(payload any, merge func(a, b any) any) any {
	return AllreduceMsg(c, payload, merge)
}

// GatherAnyUntimed returns every member's payload indexed by comm rank,
// synchronizing clocks without charging cost. Thin wrapper over the typed
// fabric at T = any.
func (c *Comm) GatherAnyUntimed(payload any) []any {
	return GatherMsgUntimed(c, payload)
}

// BufPool recycles data-plane payload buffers ([]float64) across messages.
// Buffers are filed by power-of-two size class; Get and Put are safe for
// concurrent use (each class holds its freelist under its own mutex, so a
// put never allocates — unlike sync.Pool, whose interface conversion would
// box every slice header). One pool may serve many worlds over its lifetime
// — the sweep executor threads one per worker so consecutive sweeps reuse
// each other's buffers instead of reallocating the same tile-sized payloads
// thousands of times. It lives here with the rest of the data plane's
// locked state: fabric.go and world.go are the only mpi files that may hold
// raw synchronization primitives (enforced by critterlint's fabriclock).
type BufPool struct {
	classes [31]bufClass
}

// bufClass is one size class's freelist.
type bufClass struct {
	mu   sync.Mutex
	free [][]float64
}

// maxPooledPerClass bounds each class's freelist; beyond it buffers fall to
// the garbage collector (a world's in-flight message population is small,
// so the bound only matters after pathological bursts).
const maxPooledPerClass = 256

// NewBufPool returns an empty pool.
func NewBufPool() *BufPool { return &BufPool{} }

// sizeClass returns the smallest c with n <= 1<<c.
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a length-n buffer with unspecified contents.
func (p *BufPool) Get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if c >= len(p.classes) {
		return make([]float64, n)
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if k := len(cl.free); k > 0 {
		b := cl.free[k-1]
		cl.free = cl.free[:k-1]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// Put recycles b. The buffer is filed under the largest power-of-two class
// its capacity fully covers, so a later Get never reslices past capacity.
func (p *BufPool) Put(b []float64) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1
	if c >= len(p.classes) {
		return
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if len(cl.free) < maxPooledPerClass {
		cl.free = append(cl.free, b[:0])
	}
	cl.mu.Unlock()
}
