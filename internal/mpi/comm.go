package mpi

import (
	"fmt"
	"slices"
	"sort"

	"critter/internal/sim"
)

// Comm is one rank's handle on a communicator: an ordered group of world
// ranks with a private matching context. Handles are per-rank values; the
// same logical communicator is represented by size-many handles sharing a
// context id.
type Comm struct {
	w     *World
	ctx   uint64
	rank  int   // my rank within this communicator
	group []int // world rank of each communicator rank, in comm order
	state *rankState

	collSeq uint64 // per-rank count of collectives issued on this comm
	p2pSeq  uint64 // used only to diversify noise streams
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.state.worldRank }

// WorldSize returns the size of the world communicator.
func (c *Comm) WorldSize() int { return c.w.size }

// Group returns the world ranks of the communicator members in comm order.
// The caller must not modify the returned slice.
func (c *Comm) Group() []int { return c.group }

// World returns the underlying world.
func (c *Comm) World() *World { return c.w }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.state.clock.Now() }

// AdvanceClock moves the rank's virtual clock forward by dt seconds.
// It is used by the profiler to charge measured kernel durations.
func (c *Comm) AdvanceClock(dt float64) { c.state.clock.Advance(dt) }

// ResetClock rewinds the rank's virtual clock to zero. All ranks should
// reset collectively (e.g. after a Barrier) between tuning configurations.
func (c *Comm) ResetClock() { c.state.clock.Reset() }

// RNG returns the rank's deterministic noise stream.
func (c *Comm) RNG() *sim.RNG { return c.state.rng }

// Machine returns the world's machine model.
func (c *Comm) Machine() sim.Machine { return c.w.machine }

// Compute advances the rank's clock by the modeled duration of a kernel
// performing the given flops, with multiplicative noise, and returns the
// sampled duration.
func (c *Comm) Compute(flops float64) float64 {
	m := c.w.machine
	dt := m.ComputeTime(flops) * m.Noise(c.state.rng)
	c.state.clock.Advance(dt)
	return dt
}

// ComputeTime returns a sampled duration for a kernel of the given flops
// without advancing the clock (used when the profiler wants to measure
// without committing, e.g. during selective replay).
func (c *Comm) ComputeTime(flops float64) float64 {
	m := c.w.machine
	return m.ComputeTime(flops) * m.Noise(c.state.rng)
}

// Split partitions the communicator by color, ordering each new group by
// (key, parent rank), and returns the caller's handle on its new
// communicator. Ranks passing negative colors receive nil (MPI_UNDEFINED).
// Split is collective over the parent communicator.
func (c *Comm) Split(color, key int) *Comm {
	all, _, seq := fabricOf[splitRecord](c.w).gatherRound(c,
		splitRecord{color, key, c.rank, c.state.worldRank})
	mine := c.state.splitScratch[:0]
	for _, e := range all {
		if e.color == color {
			mine = append(mine, e)
		}
	}
	c.state.splitScratch = mine
	if color < 0 {
		return nil
	}
	// Parent ranks are distinct, so the (key, parentRank) order is total
	// and any comparison sort yields the same permutation.
	slices.SortFunc(mine, func(a, b splitRecord) int {
		if a.key != b.key {
			return a.key - b.key
		}
		return a.parentRank - b.parentRank
	})
	group := make([]int, len(mine))
	myRank := -1
	for i, e := range mine {
		group[i] = e.worldRank
		if e.worldRank == c.state.worldRank {
			myRank = i
		}
	}
	// Deterministic context id, identical across members of the new comm
	// and unique across (parent comm, round, color).
	ctx := sim.Mix(c.ctx, seq, uint64(color)+0x51b7, uint64(group[0])+1)
	return &Comm{
		w:     c.w,
		ctx:   ctx,
		rank:  myRank,
		group: group,
		state: c.state,
	}
}

// splitRecord is the (color, key) deposit of one rank in a Split round.
type splitRecord struct{ color, key, parentRank, worldRank int }

// Dup returns a new communicator with the same group but a distinct matching
// context. Dup is collective; it is used by the profiler to keep internal
// traffic from colliding with application messages.
func (c *Comm) Dup() *Comm {
	_, _, seq := fabricOf[struct{}](c.w).gatherRound(c, struct{}{})
	ctx := sim.Mix(c.ctx, seq, 0xd0bb1e)
	return &Comm{
		w:     c.w,
		ctx:   ctx,
		rank:  c.rank,
		group: c.group,
		state: c.state,
	}
}

// Stride describes a communicator's placement in the world as the offset of
// its first member plus the (stride, size) of each dimension when the group
// forms an arithmetic progression (possibly multi-level). It is the
// parameterization the paper uses to identify communication channels.
type Stride struct {
	Offset int
	Stride int // 0 for a single-member group
}

// GroupStride returns (offset, stride) when the sorted world-rank group forms
// an arithmetic progression, which holds for every fiber/slice communicator
// of a cartesian grid. ok is false otherwise.
func (c *Comm) GroupStride() (s Stride, ok bool) {
	sorted := append([]int(nil), c.group...)
	sort.Ints(sorted)
	s.Offset = sorted[0]
	if len(sorted) == 1 {
		return s, true
	}
	d := sorted[1] - sorted[0]
	for i := 2; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] != d {
			return s, false
		}
	}
	s.Stride = d
	return s, true
}

func (c *Comm) checkPeer(peer int) {
	if peer < 0 || peer >= len(c.group) {
		panic(fmt.Sprintf("mpi: peer rank %d out of range [0,%d)", peer, len(c.group)))
	}
}
