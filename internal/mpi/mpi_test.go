package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"critter/internal/sim"
)

func quietMachine() sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0
	return m
}

func run(t *testing.T, p int, body func(c *Comm)) {
	t.Helper()
	w := NewWorld(p, quietMachine(), 1)
	if err := w.Run(body); err != nil {
		t.Fatalf("world run: %v", err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewWorld(0, quietMachine(), 1)
}

func TestRanksAndSize(t *testing.T) {
	seen := make([]bool, 8)
	var mu sync.Mutex
	run(t, 8, func(c *Comm) {
		if c.Size() != 8 || c.WorldSize() != 8 {
			t.Errorf("size = %d/%d, want 8", c.Size(), c.WorldSize())
		}
		if c.Rank() != c.WorldRank() {
			t.Errorf("world comm rank mismatch: %d vs %d", c.Rank(), c.WorldRank())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
	})
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecvValue(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				t.Errorf("recv got %v", buf)
			}
		}
	})
}

func TestSendBufferReuseSafe(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the in-flight message
			c.Send(1, 1, buf)
		} else {
			b := make([]float64, 1)
			c.Recv(0, 0, b)
			if b[0] != 42 {
				t.Errorf("first message corrupted by sender reuse: %v", b[0])
			}
			c.Recv(0, 1, b)
			if b[0] != -1 {
				t.Errorf("second message wrong: %v", b[0])
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{5})
			c.Send(1, 9, []float64{9})
		} else {
			b := make([]float64, 1)
			// Receive out of send order by tag.
			c.Recv(0, 9, b)
			if b[0] != 9 {
				t.Errorf("tag 9 got %v", b[0])
			}
			c.Recv(0, 5, b)
			if b[0] != 5 {
				t.Errorf("tag 5 got %v", b[0])
			}
		}
	})
}

func TestFIFOAmongEqualTags(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 3, []float64{float64(i)})
			}
		} else {
			b := make([]float64, 1)
			for i := 0; i < 10; i++ {
				c.Recv(0, 3, b)
				if b[0] != float64(i) {
					t.Errorf("message %d out of order: got %v", i, b[0])
				}
			}
		}
	})
}

func TestRecvLengthMismatchPanics(t *testing.T) {
	w := NewWorld(2, quietMachine(), 1)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2})
		} else {
			c.Recv(0, 0, make([]float64, 3))
		}
	})
	if err == nil {
		t.Fatal("expected error from length mismatch")
	}
}

func TestAbortUnblocksPeers(t *testing.T) {
	w := NewWorld(3, quietMachine(), 1)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			panic("deliberate failure")
		}
		// These would deadlock forever without abort propagation.
		c.Recv(0, 99, make([]float64, 1))
	})
	if err == nil {
		t.Fatal("expected error from aborted world")
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	run(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		out := []float64{float64(c.Rank())}
		in := make([]float64, 1)
		c.Sendrecv(peer, 0, out, peer, 0, in)
		if in[0] != float64(peer) {
			t.Errorf("sendrecv got %v, want %d", in[0], peer)
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 4, []float64{3.14})
			if !req.Done() {
				t.Error("isend request should be complete immediately (buffered)")
			}
			req.Wait()
		} else {
			buf := make([]float64, 1)
			req := c.Irecv(0, 4, buf)
			if req.Done() {
				t.Error("irecv should not be done before Wait")
			}
			req.Wait()
			if buf[0] != 3.14 {
				t.Errorf("irecv got %v", buf[0])
			}
		}
	})
}

func TestWaitall(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 5; i++ {
				reqs = append(reqs, c.Isend(1, i, []float64{float64(i * i)}))
			}
			Waitall(reqs)
		} else {
			bufs := make([][]float64, 5)
			var reqs []*Request
			for i := 0; i < 5; i++ {
				bufs[i] = make([]float64, 1)
				reqs = append(reqs, c.Irecv(0, i, bufs[i]))
			}
			Waitall(reqs)
			for i := 0; i < 5; i++ {
				if bufs[i][0] != float64(i*i) {
					t.Errorf("req %d got %v", i, bufs[i][0])
				}
			}
		}
	})
}

func TestBcast(t *testing.T) {
	run(t, 5, func(c *Comm) {
		buf := make([]float64, 4)
		if c.Rank() == 2 {
			for i := range buf {
				buf[i] = float64(10 + i)
			}
		}
		c.Bcast(2, buf)
		for i := range buf {
			if buf[i] != float64(10+i) {
				t.Errorf("rank %d bcast[%d] = %v", c.Rank(), i, buf[i])
			}
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	run(t, 4, func(c *Comm) {
		in := []float64{float64(c.Rank()), 1}
		out := make([]float64, 2)
		c.Reduce(0, in, out, OpSum)
		if c.Rank() == 0 {
			if out[0] != 6 || out[1] != 4 { // 0+1+2+3, 1*4
				t.Errorf("reduce got %v", out)
			}
		}
		all := make([]float64, 2)
		c.Allreduce(in, all, OpMax)
		if all[0] != 3 || all[1] != 1 {
			t.Errorf("allreduce max got %v", all)
		}
		c.Allreduce(in, all, OpMin)
		if all[0] != 0 || all[1] != 1 {
			t.Errorf("allreduce min got %v", all)
		}
	})
}

func TestAllgatherGatherScatter(t *testing.T) {
	run(t, 4, func(c *Comm) {
		in := []float64{float64(c.Rank() * 100), float64(c.Rank()*100 + 1)}
		out := make([]float64, 8)
		c.Allgather(in, out)
		for r := 0; r < 4; r++ {
			if out[2*r] != float64(r*100) || out[2*r+1] != float64(r*100+1) {
				t.Errorf("allgather segment %d wrong: %v", r, out[2*r:2*r+2])
			}
		}
		got := make([]float64, 8)
		c.Gather(3, in, got)
		if c.Rank() == 3 {
			for r := 0; r < 4; r++ {
				if got[2*r] != float64(r*100) {
					t.Errorf("gather segment %d wrong", r)
				}
			}
		}
		var full []float64
		if c.Rank() == 1 {
			full = make([]float64, 8)
			for i := range full {
				full[i] = float64(i)
			}
		}
		seg := make([]float64, 2)
		c.Scatter(1, full, seg)
		if seg[0] != float64(2*c.Rank()) || seg[1] != float64(2*c.Rank()+1) {
			t.Errorf("scatter rank %d got %v", c.Rank(), seg)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	run(t, 4, func(c *Comm) {
		// Skew the clocks, then barrier: all clocks must agree afterwards.
		c.AdvanceClock(float64(c.Rank()) * 0.25)
		c.Barrier()
		after := c.Clock()
		all := make([]float64, 1)
		c.Allreduce([]float64{after}, all, OpMax)
		if math.Abs(all[0]-after) > 1e-12 {
			t.Errorf("rank %d clock %g differs from max %g after barrier", c.Rank(), after, all[0])
		}
		if after < 0.75 {
			t.Errorf("barrier completed at %g, before slowest rank's 0.75", after)
		}
	})
}

func TestVirtualTimeCausality(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.AdvanceClock(1.0) // sender is busy until t=1
			c.Send(1, 0, make([]float64, 1000))
		} else {
			before := c.Clock()
			if before != 0 {
				t.Errorf("receiver should start at 0, got %g", before)
			}
			c.Recv(0, 0, make([]float64, 1000))
			// Message cannot arrive before the sender sent it at t >= 1.
			if c.Clock() < 1.0 {
				t.Errorf("receiver clock %g violates causality (send at t>=1)", c.Clock())
			}
		}
	})
}

func TestDeterministicVirtualTime(t *testing.T) {
	final := func() []float64 {
		m := sim.DefaultMachine() // with noise
		w := NewWorld(4, m, 12345)
		out := make([]float64, 4)
		var mu sync.Mutex
		if err := w.Run(func(c *Comm) {
			buf := make([]float64, 256)
			for iter := 0; iter < 10; iter++ {
				c.Bcast(iter%4, buf)
				peer := (c.Rank() + 1) % 4
				prev := (c.Rank() + 3) % 4
				c.Sendrecv(peer, iter, buf[:16], prev, iter, buf[:16])
				c.Compute(1e5)
			}
			mu.Lock()
			out[c.Rank()] = c.Clock()
			mu.Unlock()
		}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	a, b := final(), final()
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("rank %d virtual time not deterministic: %g vs %g", r, a[r], b[r])
		}
	}
}

func TestSplitRowsAndCols(t *testing.T) {
	// 2x3 grid: color by row, key by col.
	run(t, 6, func(c *Comm) {
		row, col := c.Rank()/3, c.Rank()%3
		rowComm := c.Split(row, col)
		if rowComm.Size() != 3 {
			t.Errorf("row comm size %d, want 3", rowComm.Size())
		}
		if rowComm.Rank() != col {
			t.Errorf("row comm rank %d, want %d", rowComm.Rank(), col)
		}
		// Row communicator group = consecutive world ranks.
		s, ok := rowComm.GroupStride()
		if !ok || s.Stride != 1 || s.Offset != row*3 {
			t.Errorf("row comm stride = %+v ok=%v", s, ok)
		}
		colComm := c.Split(col, row)
		if colComm.Size() != 2 || colComm.Rank() != row {
			t.Errorf("col comm size/rank = %d/%d", colComm.Size(), colComm.Rank())
		}
		s, ok = colComm.GroupStride()
		if !ok || s.Stride != 3 || s.Offset != col {
			t.Errorf("col comm stride = %+v ok=%v", s, ok)
		}
		// Communicate within the split comms to verify isolation.
		sum := make([]float64, 1)
		rowComm.Allreduce([]float64{float64(c.Rank())}, sum, OpSum)
		want := float64(row*3 + row*3 + 1 + row*3 + 2)
		if sum[0] != want {
			t.Errorf("row allreduce got %v want %v", sum[0], want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	run(t, 4, func(c *Comm) {
		color := 0
		if c.Rank()%2 == 1 {
			color = -1
		}
		nc := c.Split(color, c.Rank())
		if c.Rank()%2 == 1 {
			if nc != nil {
				t.Error("negative color should yield nil comm")
			}
			return
		}
		if nc.Size() != 2 {
			t.Errorf("split size %d, want 2", nc.Size())
		}
	})
}

func TestDupIsolation(t *testing.T) {
	run(t, 2, func(c *Comm) {
		d := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			d.Send(1, 0, []float64{2})
		} else {
			b := make([]float64, 1)
			// Receive on dup first: must get the dup message, not the
			// world message with the same (src, tag).
			d.Recv(0, 0, b)
			if b[0] != 2 {
				t.Errorf("dup recv got %v, want 2", b[0])
			}
			c.Recv(0, 0, b)
			if b[0] != 1 {
				t.Errorf("world recv got %v, want 1", b[0])
			}
		}
	})
}

func TestAllreduceAny(t *testing.T) {
	run(t, 4, func(c *Comm) {
		type profile struct{ maxT float64 }
		res := c.AllreduceAny(profile{float64(c.Rank())}, func(a, b any) any {
			pa, pb := a.(profile), b.(profile)
			if pb.maxT > pa.maxT {
				return pb
			}
			return pa
		})
		if res.(profile).maxT != 3 {
			t.Errorf("allreduce-any got %v, want 3", res)
		}
	})
}

func TestGatherAnyUntimed(t *testing.T) {
	run(t, 3, func(c *Comm) {
		vals := c.GatherAnyUntimed(c.Rank() * 11)
		for r, v := range vals {
			if v.(int) != r*11 {
				t.Errorf("gathered[%d] = %v", r, v)
			}
		}
	})
}

func TestExchangeAny(t *testing.T) {
	run(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		got := c.ExchangeAny(peer, 0, fmt.Sprintf("from-%d", c.Rank()))
		want := fmt.Sprintf("from-%d", peer)
		if got.(string) != want {
			t.Errorf("exchange got %q want %q", got, want)
		}
	})
}

func TestGroupStrideNonUniform(t *testing.T) {
	run(t, 4, func(c *Comm) {
		// Group {0,1,3} is not an arithmetic progression.
		color := 0
		if c.Rank() == 2 {
			color = 1
		}
		nc := c.Split(color, c.Rank())
		if c.Rank() == 2 {
			return
		}
		if _, ok := nc.GroupStride(); ok {
			t.Error("non-uniform group should not report a stride")
		}
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	run(t, 1, func(c *Comm) {
		before := c.Clock()
		dt := c.Compute(1e6)
		if dt <= 0 {
			t.Errorf("compute duration %g", dt)
		}
		if c.Clock()-before != dt {
			t.Errorf("clock advance %g != returned %g", c.Clock()-before, dt)
		}
	})
}

func TestCollectiveCostGrowsWithSize(t *testing.T) {
	// Time a bcast of n bytes vs 100n bytes: bigger must take longer.
	duration := func(n int) float64 {
		w := NewWorld(4, quietMachine(), 1)
		var d float64
		var mu sync.Mutex
		if err := w.Run(func(c *Comm) {
			buf := make([]float64, n)
			dt := c.Bcast(0, buf)
			if c.Rank() == 0 {
				mu.Lock()
				d = dt
				mu.Unlock()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	small, large := duration(10), duration(100000)
	if large <= small {
		t.Errorf("bcast of 100000 words (%g) not slower than 10 words (%g)", large, small)
	}
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	run(t, 64, func(c *Comm) {
		sum := make([]float64, 1)
		for iter := 0; iter < 20; iter++ {
			c.Allreduce([]float64{1}, sum, OpSum)
			if sum[0] != 64 {
				t.Errorf("allreduce got %v", sum[0])
			}
			peer := (c.Rank() + 1) % 64
			prev := (c.Rank() + 63) % 64
			out := []float64{float64(c.Rank())}
			in := make([]float64, 1)
			c.Sendrecv(peer, iter, out, prev, iter, in)
			if in[0] != float64(prev) {
				t.Errorf("ring got %v want %d", in[0], prev)
			}
		}
	})
}
