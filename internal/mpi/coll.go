package mpi

import (
	"fmt"
	"math"

	"critter/internal/sim"
)

// ReduceOp is an elementwise reduction operator for the data collectives.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(acc, x float64) float64 {
	switch op {
	case OpSum:
		return acc + x
	case OpMax:
		return math.Max(acc, x)
	case OpMin:
		return math.Min(acc, x)
	}
	panic(fmt.Sprintf("mpi: unknown reduce op %d", op))
}

// gatherData synchronizes all communicator members at a data collective
// point, depositing payload and returning every member's payload (indexed
// by comm rank), the maximum participant clock, and the round's sequence
// number. Payloads are shared across ranks after the round: treat them as
// immutable.
func (c *Comm) gatherData(payload []float64) ([][]float64, float64, uint64) {
	return c.w.dataFab.gatherRound(c, payload)
}

// collKind distinguishes cost shapes of the collectives.
type collKind int

const (
	collSync collKind = iota // barrier: latency only
	collTree                 // bcast/reduce/allreduce: steps*(alpha+beta*n)
	collVol                  // (all)gather/scatter: steps*alpha + beta*total
)

// collCost returns the noiseless virtual duration of a collective moving
// nbytes (per-rank payload for tree ops, total volume for vol ops) among p
// ranks.
func (c *Comm) collCost(kind collKind, nbytes float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	m := c.w.machine
	steps := 1.0
	if m.CollectiveTree {
		steps = math.Ceil(math.Log2(float64(p)))
	}
	switch kind {
	case collSync:
		return steps * m.Alpha
	case collTree:
		return steps * (m.Alpha + m.Beta*nbytes)
	case collVol:
		return steps*m.Alpha + m.Beta*nbytes
	}
	panic("mpi: unknown collective kind")
}

// finishColl advances the rank's clock to the synchronized completion time
// of a collective round: max participant clock plus the modeled cost with a
// per-round shared noise factor (so all members complete together).
func (c *Comm) finishColl(maxT float64, kind collKind, nbytes float64, seq uint64) float64 {
	cost := c.collCost(kind, nbytes, len(c.group))
	m := c.w.machine
	if m.NoiseSigma > 0 {
		rng := sim.NewRNG(sim.Mix(c.w.seed, c.ctx, seq, 0xc0))
		cost *= m.Noise(rng)
	}
	before := c.state.clock.Now()
	c.state.clock.AdvanceTo(maxT + cost)
	return c.state.clock.Now() - before
}

// Barrier blocks until all members arrive and synchronizes virtual clocks.
func (c *Comm) Barrier() float64 {
	_, maxT, seq := c.gatherData(nil)
	return c.finishColl(maxT, collSync, 0, seq)
}

// Bcast copies root's buf into every member's buf. All members must pass
// equal-length buffers.
func (c *Comm) Bcast(root int, buf []float64) float64 {
	c.checkPeer(root)
	var payload []float64
	if c.rank == root {
		payload = append([]float64(nil), buf...)
	}
	payloads, maxT, seq := c.gatherData(payload)
	src := payloads[root]
	if len(src) != len(buf) {
		panic(fmt.Sprintf("mpi: bcast length mismatch: root has %d, rank %d has %d", len(src), c.rank, len(buf)))
	}
	if c.rank != root {
		copy(buf, src)
	}
	return c.finishColl(maxT, collTree, float64(8*len(buf)), seq)
}

// Reduce combines every member's in elementwise with op into root's out.
// out is only written at root and must not alias in there.
func (c *Comm) Reduce(root int, in, out []float64, op ReduceOp) float64 {
	c.checkPeer(root)
	payloads, maxT, seq := c.gatherData(append([]float64(nil), in...))
	if c.rank == root {
		reduceInto(out, payloads, op)
	}
	return c.finishColl(maxT, collTree, float64(8*len(in)), seq)
}

// Allreduce combines every member's in elementwise with op into every
// member's out.
func (c *Comm) Allreduce(in, out []float64, op ReduceOp) float64 {
	payloads, maxT, seq := c.gatherData(append([]float64(nil), in...))
	reduceInto(out, payloads, op)
	return c.finishColl(maxT, collTree, float64(8*len(in)), seq)
}

func reduceInto(out []float64, payloads [][]float64, op ReduceOp) {
	first := payloads[0]
	if len(out) != len(first) {
		panic(fmt.Sprintf("mpi: reduce length mismatch: out %d, in %d", len(out), len(first)))
	}
	copy(out, first)
	for _, v := range payloads[1:] {
		for i, x := range v {
			out[i] = op.apply(out[i], x)
		}
	}
}

// Allgather concatenates every member's in (all of equal length) into out in
// comm-rank order; len(out) must be len(in)*Size().
func (c *Comm) Allgather(in, out []float64) float64 {
	payloads, maxT, seq := c.gatherData(append([]float64(nil), in...))
	c.concatInto(out, payloads, len(in))
	return c.finishColl(maxT, collVol, float64(8*len(in)*(len(c.group)-1)), seq)
}

// Gather concatenates every member's in into root's out.
func (c *Comm) Gather(root int, in, out []float64) float64 {
	c.checkPeer(root)
	payloads, maxT, seq := c.gatherData(append([]float64(nil), in...))
	if c.rank == root {
		c.concatInto(out, payloads, len(in))
	}
	return c.finishColl(maxT, collVol, float64(8*len(in)*(len(c.group)-1)), seq)
}

// Scatter splits root's in into Size() equal segments and delivers the i-th
// segment to comm rank i's out.
func (c *Comm) Scatter(root int, in, out []float64) float64 {
	c.checkPeer(root)
	var payload []float64
	if c.rank == root {
		payload = append([]float64(nil), in...)
	}
	payloads, maxT, seq := c.gatherData(payload)
	full := payloads[root]
	n := len(out)
	if n*len(c.group) != len(full) {
		panic(fmt.Sprintf("mpi: scatter length mismatch: in %d, out %d x %d ranks", len(full), n, len(c.group)))
	}
	copy(out, full[c.rank*n:(c.rank+1)*n])
	return c.finishColl(maxT, collVol, float64(8*n*(len(c.group)-1)), seq)
}

func (c *Comm) concatInto(out []float64, payloads [][]float64, n int) {
	if len(out) != n*len(c.group) {
		panic(fmt.Sprintf("mpi: gather length mismatch: out %d, want %d", len(out), n*len(c.group)))
	}
	for r, v := range payloads {
		if len(v) != n {
			panic(fmt.Sprintf("mpi: gather ragged input: rank %d has %d, want %d", r, len(v), n))
		}
		copy(out[r*n:(r+1)*n], v)
	}
}

// AllreduceUntimed combines every member's in elementwise with op into
// every member's out, synchronizing clocks to the maximum participant time
// without charging transfer cost. Used for profiler bookkeeping reductions
// whose overhead the paper treats as negligible.
func (c *Comm) AllreduceUntimed(in, out []float64, op ReduceOp) {
	payloads, maxT, _ := c.gatherData(append([]float64(nil), in...))
	reduceInto(out, payloads, op)
	c.state.clock.AdvanceTo(maxT)
}
