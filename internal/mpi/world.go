// Package mpi implements a deterministic, in-process message-passing runtime
// with MPI-like semantics and virtual time. It is the substrate on which the
// Critter profiler and the distributed factorization libraries run.
//
// Ranks execute as goroutines. Each rank owns a virtual clock (package sim);
// point-to-point messages and collectives advance clocks according to an
// alpha-beta-gamma machine model with deterministic per-rank noise, so a
// fixed seed reproduces identical virtual timings regardless of goroutine
// scheduling.
//
// The interface mirrors the MPI subset used by the paper's four case-study
// libraries: blocking and nonblocking point-to-point (Send, Recv, Sendrecv,
// Isend, Irecv, Wait), the collectives Bcast, Reduce, Allreduce, Allgather,
// Gather, Scatter, Barrier, and communicator construction via Split and Dup.
// Payloads are []float64 (application data) or typed values via the generic
// message core (SendMsg and friends, used by the profiler's internal
// piggyback messages); the *Any variants remain as thin untyped wrappers.
//
// All traffic runs on sharded typed fabrics (fabric.go): one mailbox lock
// per destination rank and a fixed set of collective-round shards per
// payload type, with no world-global lock on any communication path.
package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"critter/internal/obs"
	"critter/internal/sim"
)

// ErrAborted is the panic value raised in every rank when some rank panics,
// so a single failure cannot deadlock the remaining ranks.
var ErrAborted = fmt.Errorf("mpi: world aborted due to failure on another rank")

// World is a set of P ranks sharing a machine model and a message fabric
// per payload type. Create one with NewWorld and run an SPMD program with
// Run.
type World struct {
	size    int
	machine sim.Machine
	seed    uint64

	ranks []*rankState

	// fabrics maps a payload type (reflect.Type) to its *fabric[T]; the
	// data plane lives at T = []float64 and is cached in dataFab.
	// fabricMu serializes fabric creation (lookups are lock-free).
	fabrics  sync.Map
	fabricMu sync.Mutex
	dataFab  *fabric[[]float64]

	// bufs, when non-nil, recycles data-plane payload buffers across
	// messages (and, via the sweep executor's per-worker scratch, across
	// the worlds a worker runs). See BufPool.
	bufs *BufPool

	// trace, when non-nil, receives span events from the layers running
	// on this world (the profiler's propagation rounds). See SetTracer.
	trace obs.Tracer

	// Abort machinery: aborted flips once, abortE records the first
	// failure, and wakers lists every condition variable a rank may block
	// on so abort can wake the whole world.
	aborted atomic.Bool
	abortMu sync.Mutex
	abortE  any
	wakers  []waker

	// Scheduler selection: schedKind is what the caller asked for
	// (SetScheduler, default SchedAuto); des is non-nil iff Run resolved
	// to the event scheduler (see sched.go).
	schedKind SchedulerKind
	des       *desSched
}

// waker pairs a condition variable with the lock its waiters hold, so abort
// can broadcast without losing a wakeup.
type waker struct {
	mu   *sync.Mutex
	cond *sync.Cond
}

// rankState is the per-rank private state, confined to the rank's
// goroutine.
type rankState struct {
	worldRank int
	clock     sim.Clock
	rng       *sim.RNG
	// splitScratch is reused across this rank's Split calls for the
	// transient sorted-record view (the records are copied into the new
	// communicator's group before Split returns).
	splitScratch []splitRecord
}

// NewWorld creates a world of size ranks with the given machine model and
// noise seed. It panics if size < 1 or the machine fails validation.
func NewWorld(size int, machine sim.Machine, seed uint64) *World {
	if size < 1 {
		panic("mpi: world size must be at least 1")
	}
	if err := machine.Validate(); err != nil {
		panic(err)
	}
	w := &World{
		size:    size,
		machine: machine,
		seed:    seed,
		ranks:   make([]*rankState, size),
	}
	for r := 0; r < size; r++ {
		w.ranks[r] = &rankState{
			worldRank: r,
			rng:       sim.NewRNG(sim.Mix(seed, uint64(r), 0x6d7069)),
		}
	}
	w.dataFab = fabricOf[[]float64](w)
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Machine returns the world's machine model.
func (w *World) Machine() sim.Machine { return w.machine }

// Seed returns the world's noise seed.
func (w *World) Seed() uint64 { return w.seed }

// SetBufPool installs a payload-buffer recycler for the world's data plane.
// Call it before Run; a nil pool (the default) allocates every payload
// fresh. Pools may be shared across worlds that run sequentially (the sweep
// executor threads one per worker), not across concurrently running worlds'
// lifetimes — the pool itself is safe for concurrent use, so sharing is a
// throughput choice, not a safety one.
func (w *World) SetBufPool(p *BufPool) { w.bufs = p }

// BufPoolOf returns the installed payload-buffer recycler (nil when none).
// Workloads running on the world may borrow it for their own transient
// buffers — anything Put must no longer be referenced.
func (w *World) BufPoolOf() *BufPool { return w.bufs }

// SetTracer installs a trace sink for layers running on this world. Call
// it before Run; nil (the default) disables tracing, and every emitter
// nil-checks before building an event, so the disabled path costs one
// branch. Tracing never touches the virtual clocks or RNG streams —
// envelopes are byte-identical with tracing on or off.
func (w *World) SetTracer(t obs.Tracer) { w.trace = t }

// TracerOf returns the installed trace sink (nil when none). Emitters
// conventionally trace from rank 0 only, keeping event streams
// deterministic and volume bounded by the run, not the world size.
func (w *World) TracerOf() obs.Tracer { return w.trace }

// SetScheduler selects the execution mode for Run. Call it before Run; the
// default, SchedAuto, picks the event scheduler for small worlds on
// multi-core hosts (see EffectiveScheduler). Virtual-clock results are
// identical under every mode — the scheduler is a throughput choice, never
// a semantic one.
func (w *World) SetScheduler(k SchedulerKind) { w.schedKind = k }

// EffectiveScheduler resolves the mode Run will use (never SchedAuto).
// Auto picks the discrete-event scheduler only for worlds of at most
// DefaultEventThreshold ranks on hosts running more than one OS thread:
// the event loop exists to keep a small world's ranks from thrashing
// across cores, while under GOMAXPROCS=1 the Go runtime already serializes
// goroutines more cheaply than the baton handoff does.
func (w *World) EffectiveScheduler() SchedulerKind {
	if w.schedKind == SchedAuto {
		if w.size <= DefaultEventThreshold && runtime.GOMAXPROCS(0) > 1 {
			return SchedEvent
		}
		return SchedGoroutine
	}
	return w.schedKind
}

// registerWakers records condition variables the abort broadcast must
// reach.
func (w *World) registerWakers(ws []waker) {
	w.abortMu.Lock()
	w.wakers = append(w.wakers, ws...)
	w.abortMu.Unlock()
}

// Run executes body once per rank, concurrently, passing each rank its world
// communicator. It returns a non-nil error if any rank panicked; the
// remaining ranks are woken and unwound via ErrAborted panics.
// A World must not be reused after Run returns.
func (w *World) Run(body func(c *Comm)) error {
	if w.EffectiveScheduler() == SchedEvent {
		w.des = newDES(w)
	}
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			if w.des != nil {
				w.des.await(rank)
			}
			completed := false
			defer func() {
				if e := recover(); e != nil {
					w.abort(e)
				} else if !completed {
					// The goroutine exited via runtime.Goexit (e.g.
					// t.Fatal inside a rank body); peers must not be
					// left blocked.
					w.abort(fmt.Errorf("rank %d exited abnormally", rank))
				}
				if w.des != nil {
					// After abort bookkeeping, so a drain sees the flag.
					w.des.finish(rank)
				}
			}()
			body(w.worldComm(rank))
			completed = true
		}(r)
	}
	if w.des != nil {
		w.des.start()
	}
	wg.Wait()
	if w.aborted.Load() {
		w.abortMu.Lock()
		defer w.abortMu.Unlock()
		if err, ok := w.abortE.(error); ok {
			return fmt.Errorf("mpi: rank failure: %w", err)
		}
		return fmt.Errorf("mpi: rank failure: %v", w.abortE)
	}
	return nil
}

// abort records the first failure and wakes every blocked rank: the flag is
// published first, then each registered condition variable is broadcast
// under its own lock so a rank between its abort check and its Wait cannot
// miss the wakeup.
func (w *World) abort(e any) {
	w.abortMu.Lock()
	if !w.aborted.Load() {
		w.abortE = e
		w.aborted.Store(true)
	}
	wakers := w.wakers
	w.abortMu.Unlock()
	for _, wk := range wakers {
		wk.mu.Lock()
		wk.cond.Broadcast()
		wk.mu.Unlock()
	}
}

// checkAbort panics with ErrAborted if the world has failed; the panic
// unwinds through the caller's defers. Callers blocked on a condition
// variable hold its lock around both this check and the Wait, which —
// together with abort's lock-and-broadcast — makes the wakeup reliable.
func (w *World) checkAbort() {
	if w.aborted.Load() {
		panic(ErrAborted)
	}
}

// worldComm builds rank's handle on the world communicator (context 0).
func (w *World) worldComm(rank int) *Comm {
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		w:     w,
		ctx:   0,
		rank:  rank,
		group: group,
		state: w.ranks[rank],
	}
}
