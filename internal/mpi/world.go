// Package mpi implements a deterministic, in-process message-passing runtime
// with MPI-like semantics and virtual time. It is the substrate on which the
// Critter profiler and the distributed factorization libraries run.
//
// Ranks execute as goroutines. Each rank owns a virtual clock (package sim);
// point-to-point messages and collectives advance clocks according to an
// alpha-beta-gamma machine model with deterministic per-rank noise, so a
// fixed seed reproduces identical virtual timings regardless of goroutine
// scheduling.
//
// The interface mirrors the MPI subset used by the paper's four case-study
// libraries: blocking and nonblocking point-to-point (Send, Recv, Sendrecv,
// Isend, Irecv, Wait), the collectives Bcast, Reduce, Allreduce, Allgather,
// Gather, Scatter, Barrier, and communicator construction via Split and Dup.
// Payloads are []float64 (application data) or arbitrary values via the
// *Any variants (used by the profiler's internal piggyback messages).
package mpi

import (
	"fmt"
	"sync"

	"critter/internal/sim"
)

// ErrAborted is the panic value raised in every rank when some rank panics,
// so a single failure cannot deadlock the remaining ranks.
var ErrAborted = fmt.Errorf("mpi: world aborted due to failure on another rank")

// World is a set of P ranks sharing a machine model and a mailbox fabric.
// Create one with NewWorld and run an SPMD program with Run.
type World struct {
	size    int
	machine sim.Machine
	seed    uint64

	mu   sync.Mutex
	cond *sync.Cond

	ranks   []*rankState
	boxes   []*mailbox
	rounds  map[roundKey]*collRound
	aborted bool
	abortE  any // first failure, re-raised by Run

	// Hooks let the profiler observe raw traffic without wrapping every
	// call site; unused (nil) in plain runs.
	nextCtx uint64
}

// rankState is the per-rank private state. It is confined to the rank's
// goroutine except for the mailbox, which lives in World.boxes.
type rankState struct {
	worldRank int
	clock     sim.Clock
	rng       *sim.RNG
}

// mailbox holds in-flight point-to-point messages destined to one rank.
// Guarded by World.mu.
type mailbox struct {
	queue []*message
}

// message is one point-to-point transfer.
type message struct {
	ctx    uint64
	src    int // rank within the communicator
	tag    int
	data   []float64 // copied at send time; nil for Any payloads
	any    any
	bytes  int
	arrive float64 // virtual time at which the payload is fully available
}

type roundKey struct {
	ctx uint64
	seq uint64
}

// collRound coordinates one collective operation instance. Guarded by
// World.mu; the condition variable is the world-wide one.
type collRound struct {
	arrived  int
	departed int
	maxT     float64
	payloads []any
	clocks   []float64
	result   any
	done     bool
}

// NewWorld creates a world of size ranks with the given machine model and
// noise seed. It panics if size < 1 or the machine fails validation.
func NewWorld(size int, machine sim.Machine, seed uint64) *World {
	if size < 1 {
		panic("mpi: world size must be at least 1")
	}
	if err := machine.Validate(); err != nil {
		panic(err)
	}
	w := &World{
		size:    size,
		machine: machine,
		seed:    seed,
		ranks:   make([]*rankState, size),
		boxes:   make([]*mailbox, size),
		rounds:  make(map[roundKey]*collRound),
		nextCtx: 1,
	}
	w.cond = sync.NewCond(&w.mu)
	for r := 0; r < size; r++ {
		w.ranks[r] = &rankState{
			worldRank: r,
			rng:       sim.NewRNG(sim.Mix(seed, uint64(r), 0x6d7069)),
		}
		w.boxes[r] = &mailbox{}
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Machine returns the world's machine model.
func (w *World) Machine() sim.Machine { return w.machine }

// Seed returns the world's noise seed.
func (w *World) Seed() uint64 { return w.seed }

// Run executes body once per rank, concurrently, passing each rank its world
// communicator. It returns a non-nil error if any rank panicked; the
// remaining ranks are woken and unwound via ErrAborted panics.
// A World must not be reused after Run returns.
func (w *World) Run(body func(c *Comm)) error {
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			completed := false
			defer func() {
				if e := recover(); e != nil {
					w.abort(e)
				} else if !completed {
					// The goroutine exited via runtime.Goexit (e.g.
					// t.Fatal inside a rank body); peers must not be
					// left blocked.
					w.abort(fmt.Errorf("rank %d exited abnormally", rank))
				}
			}()
			body(w.worldComm(rank))
			completed = true
		}(r)
	}
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		if err, ok := w.abortE.(error); ok {
			return fmt.Errorf("mpi: rank failure: %w", err)
		}
		return fmt.Errorf("mpi: rank failure: %v", w.abortE)
	}
	return nil
}

// abort records the first failure and wakes all blocked ranks.
func (w *World) abort(e any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.aborted {
		w.aborted = true
		w.abortE = e
	}
	w.cond.Broadcast()
}

// checkAbortLocked panics with ErrAborted if the world has failed. Must be
// called with w.mu held; the panic unwinds through the caller's defers.
func (w *World) checkAbortLocked() {
	if w.aborted {
		panic(ErrAborted)
	}
}

// worldComm builds rank's handle on the world communicator (context 0).
func (w *World) worldComm(rank int) *Comm {
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		w:     w,
		ctx:   0,
		rank:  rank,
		group: group,
		state: w.ranks[rank],
	}
}

// round returns (creating if needed) the collective round for key, sized for
// p participants. Caller holds w.mu.
func (w *World) roundLocked(key roundKey, p int) *collRound {
	rd, ok := w.rounds[key]
	if !ok {
		rd = &collRound{
			payloads: make([]any, p),
			clocks:   make([]float64, p),
		}
		w.rounds[key] = rd
	}
	return rd
}
