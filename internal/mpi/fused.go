package mpi

import "fmt"

// Fused messages pair an untimed auxiliary value (protocol metadata) with an
// optional timed data payload, so a protocol layer that would otherwise send
// an untimed control message followed by a timed data message can post both
// as one fabric message. The profiler's committed nonblocking sends use this
// to halve their message count: the sender's vote rides with the data.
//
// Timing is exactly Isend's cost model when data is present — the sender is
// charged the latency alpha, the transfer cost (with multiplicative noise
// drawn at issue) is reflected in the arrival time, and the receiver
// advances to that arrival on match. An aux-only message is untimed on both
// sides: no clock advances, no noise draw. A protocol that replaces an
// {untimed control, timed data} pair with one fused message therefore leaves
// every virtual clock and every RNG stream byte-identical.

// fused is the fabric payload of a FusedLane: aux plus optional data.
// hasData discriminates explicitly so a zero-length timed payload is not
// confused with an aux-only message.
type fused[A any] struct {
	aux     A
	data    []float64
	hasData bool
	pooled  bool
}

// FusedLane is a pre-resolved handle on a world's fabric for fused messages
// with auxiliary type A. Like Lane, high-rate traffic should hold one.
type FusedLane[A any] struct {
	f *fabric[fused[A]]
}

// FusedLaneOf resolves (creating on first use) w's fused lane for auxiliary
// type A.
func FusedLaneOf[A any](w *World) FusedLane[A] {
	return FusedLane[A]{f: fabricOf[fused[A]](w)}
}

// Isend posts aux and a copy of buf as one nonblocking timed message, with
// Isend's exact cost model: the payload is captured immediately (the caller
// may reuse buf), the caller advances by the machine latency alpha, and the
// arrival time carries the sampled transfer cost.
func (l FusedLane[A]) Isend(c *Comm, dest, tag int, aux A, buf []float64) {
	c.checkPeer(dest)
	m := c.w.machine
	nbytes := 8 * len(buf)
	cost := m.PtToPtTime(nbytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(m.Alpha)
	data, pooled := c.w.copyPayload(buf)
	l.f.post(c.group[dest], fmsg[fused[A]]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: fused[A]{aux: aux, data: data, hasData: true, pooled: pooled},
		arrive:  c.state.clock.Now() + cost,
	})
}

// Send posts an aux-only message: untimed on both sides, like Lane.Send.
func (l FusedLane[A]) Send(c *Comm, dest, tag int, aux A) {
	c.checkPeer(dest)
	l.f.post(c.group[dest], fmsg[fused[A]]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: fused[A]{aux: aux},
		arrive:  c.state.clock.Now(),
	})
}

// Recv blocks for a fused message from src under tag. When the message
// carries data it is copied into buf (which must have the exact transmitted
// length), the receiver's clock advances to the arrival time, and dt is the
// sampled local duration — exactly Comm.Recv's contract. For an aux-only
// message buf is untouched, no clock advances, and dt is zero.
func (l FusedLane[A]) Recv(c *Comm, src, tag int, buf []float64) (aux A, dt float64, hasData bool) {
	c.checkPeer(src)
	msg := l.f.match(c, src, tag)
	p := msg.payload
	if !p.hasData {
		return p.aux, 0, false
	}
	if len(p.data) != len(buf) {
		panic(fmt.Sprintf("mpi: fused recv length mismatch: posted %d, message %d (src %d tag %d)",
			len(buf), len(p.data), src, tag))
	}
	copy(buf, p.data)
	if p.pooled {
		c.w.bufs.Put(p.data)
	}
	before := c.state.clock.Now()
	c.state.clock.AdvanceTo(msg.arrive)
	return p.aux, c.state.clock.Now() - before, true
}
