package mpi

import (
	"errors"
	"fmt"
	"testing"

	"critter/internal/sim"
)

// stressBody is a mixed workload over 64 ranks exercising every lock shard
// of the fabric at once: ring p2p (blocking and nonblocking), world
// collectives, typed piggyback messages, and communicator construction via
// Split and Dup, with per-rank virtual-time checksums returned for
// determinism comparison.
func stressBody(c *Comm, sum []float64) {
	p := c.Size()
	me := c.Rank()
	next, prev := (me+1)%p, (me+p-1)%p
	buf := make([]float64, 32)
	in := make([]float64, 32)
	lane := LaneOf[[2]int](c.World())

	rows := c.Split(me/8, me%8)
	defer func() { sum[me] += rows.Clock() }()
	dup := c.Dup()

	for iter := 0; iter < 20; iter++ {
		for i := range buf {
			buf[i] = float64(me*1000 + iter*32 + i)
		}
		// Ring traffic on the world communicator: evens send first.
		if me%2 == 0 {
			c.Send(next, iter, buf)
			c.Recv(prev, iter, in)
		} else {
			c.Recv(prev, iter, in)
			c.Send(next, iter, buf)
		}
		if want := float64(prev*1000 + iter*32); in[0] != want {
			panic(fmt.Sprintf("rank %d iter %d: ring payload %g, want %g", me, iter, in[0], want))
		}
		// Nonblocking pairs on the dup'd communicator (distinct context).
		r1 := dup.Isend(next, 100+iter, buf)
		r2 := dup.Irecv(prev, 100+iter, in)
		Waitall([]*Request{r1, r2})
		// Typed lane exchange with the pairwise partner (both sides must
		// call it), the profiler's piggyback shape.
		got := lane.Exchange(c, me^1, 200+iter, [2]int{me, iter})
		if got[0] != me^1 || got[1] != iter {
			panic(fmt.Sprintf("rank %d: typed exchange got %v", me, got))
		}
		// Row-fiber collectives plus a world barrier every few rounds.
		rows.Allreduce(buf, in, OpSum)
		if iter%5 == 0 {
			c.Barrier()
			c.Allgather(buf[:2], make([]float64, 2*p))
		}
	}
	sum[me] = c.Clock() + dup.Clock()
}

// TestStressDeterminism64 runs the mixed 64-rank workload three times and
// demands bit-identical per-rank virtual clocks: the sharded per-mailbox
// locks and round shards must not leak goroutine scheduling into virtual
// time. Run under -race in CI, this is also the fabric's data-race stress.
func TestStressDeterminism64(t *testing.T) {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0.08
	var ref []float64
	for run := 0; run < 3; run++ {
		sums := make([]float64, 64)
		w := NewWorld(64, m, 0xfeed)
		if err := w.Run(func(c *Comm) { stressBody(c, sums) }); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if ref == nil {
			ref = sums
			continue
		}
		for r, v := range sums {
			if v != ref[r] {
				t.Fatalf("run %d: rank %d virtual time %v differs from run 0's %v", run, r, v, ref[r])
			}
		}
	}
}

// TestStressAbortFanout64 panics one rank mid-workload while 63 peers are
// blocked across mailboxes and round shards; every rank must unwind via
// ErrAborted (no deadlock) and Run must surface the original failure.
func TestStressAbortFanout64(t *testing.T) {
	boom := errors.New("rank 17 exploded")
	w := NewWorld(64, sim.DefaultMachine(), 7)
	done := make(chan error, 1)
	go func() {
		sums := make([]float64, 64)
		done <- w.Run(func(c *Comm) {
			if c.Rank() == 17 {
				// Let peers get deep into blocking operations first.
				c.Barrier()
				panic(boom)
			}
			c.Barrier()
			stressBody(c, sums)
		})
	}()
	err := <-done
	if err == nil {
		t.Fatal("Run returned nil after a rank panic")
	}
	if !errors.Is(err, boom) {
		t.Errorf("Run error %v does not wrap the original panic", err)
	}
}
