package mpi

import (
	"fmt"
)

// copyPayload captures a data payload for an in-flight message, drawing
// from the world's buffer pool when one is installed. The second result
// reports pool ownership (the receiver recycles it after copying out).
func (w *World) copyPayload(buf []float64) ([]float64, bool) {
	if w.bufs == nil || len(buf) == 0 {
		return append([]float64(nil), buf...), false
	}
	data := w.bufs.Get(len(buf))
	copy(data, buf)
	return data, true
}

// Send transmits a copy of buf to peer dest under tag. Sends are buffered
// (they never block on the receiver), matching MPI's eager protocol: the
// sender is charged the injection cost alpha + beta*n with multiplicative
// noise, and the payload becomes available to the receiver one latency after
// the send completes locally. It returns the sampled local duration.
func (c *Comm) Send(dest, tag int, buf []float64) float64 {
	c.checkPeer(dest)
	m := c.w.machine
	nbytes := 8 * len(buf)
	dt := m.PtToPtTime(nbytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(dt)
	data, pooled := c.w.copyPayload(buf)
	c.w.dataFab.post(c.group[dest], fmsg[[]float64]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: data,
		pooled:  pooled,
		arrive:  c.state.clock.Now() + m.Alpha,
	})
	return dt
}

// Recv blocks until a message from src with the given tag arrives, copies its
// payload into buf (which must have the exact transmitted length), and
// advances the receiver's clock to the payload arrival time. It returns the
// sampled local duration (zero if the payload had already arrived in virtual
// time).
func (c *Comm) Recv(src, tag int, buf []float64) float64 {
	c.checkPeer(src)
	msg := c.w.dataFab.match(c, src, tag)
	if len(msg.payload) != len(buf) {
		panic(fmt.Sprintf("mpi: recv length mismatch: posted %d, message %d (src %d tag %d)",
			len(buf), len(msg.payload), src, tag))
	}
	copy(buf, msg.payload)
	if msg.pooled {
		c.w.bufs.Put(msg.payload)
	}
	before := c.state.clock.Now()
	c.state.clock.AdvanceTo(msg.arrive)
	return c.state.clock.Now() - before
}

// Sendrecv performs a combined send to dest and receive from src, as
// MPI_Sendrecv. Because sends are buffered it cannot deadlock.
func (c *Comm) Sendrecv(dest, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) {
	c.Send(dest, sendTag, sendBuf)
	c.Recv(src, recvTag, recvBuf)
}

// Request represents an outstanding nonblocking operation; complete it with
// Wait.
type Request struct {
	c      *Comm
	isSend bool
	src    int
	tag    int
	buf    []float64
	done   bool
}

// completedSend is the request every Isend returns: the payload is captured
// at issue time, so the operation is already complete and the handle is
// immutable (Wait only reads done). Sharing one saves an allocation per
// nonblocking send.
var completedSend = &Request{isSend: true, done: true}

// Isend starts a nonblocking send. The payload is captured immediately (the
// caller may reuse buf); the sender is charged only the latency alpha, with
// the transfer cost reflected in the message arrival time.
func (c *Comm) Isend(dest, tag int, buf []float64) *Request {
	c.checkPeer(dest)
	m := c.w.machine
	nbytes := 8 * len(buf)
	cost := m.PtToPtTime(nbytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(m.Alpha)
	data, pooled := c.w.copyPayload(buf)
	c.w.dataFab.post(c.group[dest], fmsg[[]float64]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: data,
		pooled:  pooled,
		arrive:  c.state.clock.Now() + cost,
	})
	return completedSend
}

// Irecv posts a nonblocking receive; the match occurs when Wait is called.
// buf must remain valid until then.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	c.checkPeer(src)
	return &Request{c: c, isSend: false, src: src, tag: tag, buf: buf}
}

// Wait completes the request, blocking if necessary, and returns the sampled
// local duration attributable to the completion.
func (r *Request) Wait() float64 {
	if r.done {
		return 0
	}
	r.done = true
	return r.c.Recv(r.src, r.tag, r.buf)
}

// Done reports whether the request has been completed by Wait.
func (r *Request) Done() bool { return r.done }

// Waitall completes all requests in order.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
