package mpi

import "fmt"

// Send transmits a copy of buf to peer dest under tag. Sends are buffered
// (they never block on the receiver), matching MPI's eager protocol: the
// sender is charged the injection cost alpha + beta*n with multiplicative
// noise, and the payload becomes available to the receiver one latency after
// the send completes locally. It returns the sampled local duration.
func (c *Comm) Send(dest, tag int, buf []float64) float64 {
	c.checkPeer(dest)
	m := c.w.machine
	bytes := 8 * len(buf)
	dt := m.PtToPtTime(bytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(dt)
	data := append([]float64(nil), buf...)
	c.post(&message{
		ctx:    c.ctx,
		src:    c.rank,
		tag:    tag,
		data:   data,
		bytes:  bytes,
		arrive: c.state.clock.Now() + m.Alpha,
	}, dest)
	return dt
}

// Recv blocks until a message from src with the given tag arrives, copies its
// payload into buf (which must have the exact transmitted length), and
// advances the receiver's clock to the payload arrival time. It returns the
// sampled local duration (zero if the payload had already arrived in virtual
// time).
func (c *Comm) Recv(src, tag int, buf []float64) float64 {
	c.checkPeer(src)
	msg := c.match(src, tag)
	if len(msg.data) != len(buf) {
		panic(fmt.Sprintf("mpi: recv length mismatch: posted %d, message %d (src %d tag %d)",
			len(buf), len(msg.data), src, tag))
	}
	copy(buf, msg.data)
	before := c.state.clock.Now()
	c.state.clock.AdvanceTo(msg.arrive)
	return c.state.clock.Now() - before
}

// Sendrecv performs a combined send to dest and receive from src, as
// MPI_Sendrecv. Because sends are buffered it cannot deadlock.
func (c *Comm) Sendrecv(dest, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) {
	c.Send(dest, sendTag, sendBuf)
	c.Recv(src, recvTag, recvBuf)
}

// Request represents an outstanding nonblocking operation; complete it with
// Wait.
type Request struct {
	c      *Comm
	isSend bool
	src    int
	tag    int
	buf    []float64
	done   bool
}

// Isend starts a nonblocking send. The payload is captured immediately (the
// caller may reuse buf); the sender is charged only the latency alpha, with
// the transfer cost reflected in the message arrival time.
func (c *Comm) Isend(dest, tag int, buf []float64) *Request {
	c.checkPeer(dest)
	m := c.w.machine
	bytes := 8 * len(buf)
	cost := m.PtToPtTime(bytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(m.Alpha)
	data := append([]float64(nil), buf...)
	c.post(&message{
		ctx:    c.ctx,
		src:    c.rank,
		tag:    tag,
		data:   data,
		bytes:  bytes,
		arrive: c.state.clock.Now() + cost,
	}, dest)
	return &Request{c: c, isSend: true, done: true}
}

// Irecv posts a nonblocking receive; the match occurs when Wait is called.
// buf must remain valid until then.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	c.checkPeer(src)
	return &Request{c: c, isSend: false, src: src, tag: tag, buf: buf}
}

// Wait completes the request, blocking if necessary, and returns the sampled
// local duration attributable to the completion.
func (r *Request) Wait() float64 {
	if r.done {
		return 0
	}
	r.done = true
	return r.c.Recv(r.src, r.tag, r.buf)
}

// Done reports whether the request has been completed by Wait.
func (r *Request) Done() bool { return r.done }

// Waitall completes all requests in order.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// SendAny transmits an arbitrary payload to dest under tag without advancing
// any virtual clock. It exists for the profiler's internal piggyback
// messages, whose overhead the paper treats as negligible. The payload is
// not copied; it must be treated as immutable after sending.
func (c *Comm) SendAny(dest, tag int, payload any) {
	c.checkPeer(dest)
	c.post(&message{
		ctx:    c.ctx,
		src:    c.rank,
		tag:    tag,
		any:    payload,
		arrive: c.state.clock.Now(),
	}, dest)
}

// RecvAny blocks for an internal payload from src under tag. Clocks are not
// advanced.
func (c *Comm) RecvAny(src, tag int) any {
	c.checkPeer(src)
	msg := c.match(src, tag)
	return msg.any
}

// ExchangeAny sends payload to peer and receives the peer's payload, both
// untimed. Both sides must call it. It is the runtime's analogue of the
// internal PMPI_Sendrecv in Figure 2 of the paper.
func (c *Comm) ExchangeAny(peer, tag int, payload any) any {
	c.SendAny(peer, tag, payload)
	return c.RecvAny(peer, tag)
}

// post delivers msg to the destination comm-rank's mailbox.
func (c *Comm) post(msg *message, dest int) {
	w := c.w
	worldDest := c.group[dest]
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkAbortLocked()
	box := w.boxes[worldDest]
	box.queue = append(box.queue, msg)
	w.cond.Broadcast()
}

// match blocks until a message with (ctx, src, tag) is present in this
// rank's mailbox and removes it (FIFO among equals).
func (c *Comm) match(src, tag int) *message {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	box := w.boxes[c.state.worldRank]
	for {
		w.checkAbortLocked()
		for i, m := range box.queue {
			if m.ctx == c.ctx && m.src == src && m.tag == tag {
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				return m
			}
		}
		w.cond.Wait()
	}
}
