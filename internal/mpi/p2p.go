package mpi

import (
	"fmt"
	"math/bits"
	"sync"
)

// BufPool recycles data-plane payload buffers ([]float64) across messages.
// Buffers are filed by power-of-two size class; Get and Put are safe for
// concurrent use (each class holds its freelist under its own mutex, so a
// put never allocates — unlike sync.Pool, whose interface conversion would
// box every slice header). One pool may serve many worlds over its lifetime
// — the sweep executor threads one per worker so consecutive sweeps reuse
// each other's buffers instead of reallocating the same tile-sized payloads
// thousands of times.
type BufPool struct {
	classes [31]bufClass
}

// bufClass is one size class's freelist.
type bufClass struct {
	mu   sync.Mutex
	free [][]float64
}

// maxPooledPerClass bounds each class's freelist; beyond it buffers fall to
// the garbage collector (a world's in-flight message population is small,
// so the bound only matters after pathological bursts).
const maxPooledPerClass = 256

// NewBufPool returns an empty pool.
func NewBufPool() *BufPool { return &BufPool{} }

// sizeClass returns the smallest c with n <= 1<<c.
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a length-n buffer with unspecified contents.
func (p *BufPool) Get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if c >= len(p.classes) {
		return make([]float64, n)
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if k := len(cl.free); k > 0 {
		b := cl.free[k-1]
		cl.free = cl.free[:k-1]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// Put recycles b. The buffer is filed under the largest power-of-two class
// its capacity fully covers, so a later Get never reslices past capacity.
func (p *BufPool) Put(b []float64) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1
	if c >= len(p.classes) {
		return
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if len(cl.free) < maxPooledPerClass {
		cl.free = append(cl.free, b[:0])
	}
	cl.mu.Unlock()
}

// copyPayload captures a data payload for an in-flight message, drawing
// from the world's buffer pool when one is installed. The second result
// reports pool ownership (the receiver recycles it after copying out).
func (w *World) copyPayload(buf []float64) ([]float64, bool) {
	if w.bufs == nil || len(buf) == 0 {
		return append([]float64(nil), buf...), false
	}
	data := w.bufs.Get(len(buf))
	copy(data, buf)
	return data, true
}

// Send transmits a copy of buf to peer dest under tag. Sends are buffered
// (they never block on the receiver), matching MPI's eager protocol: the
// sender is charged the injection cost alpha + beta*n with multiplicative
// noise, and the payload becomes available to the receiver one latency after
// the send completes locally. It returns the sampled local duration.
func (c *Comm) Send(dest, tag int, buf []float64) float64 {
	c.checkPeer(dest)
	m := c.w.machine
	nbytes := 8 * len(buf)
	dt := m.PtToPtTime(nbytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(dt)
	data, pooled := c.w.copyPayload(buf)
	c.w.dataFab.post(c.group[dest], fmsg[[]float64]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: data,
		pooled:  pooled,
		arrive:  c.state.clock.Now() + m.Alpha,
	})
	return dt
}

// Recv blocks until a message from src with the given tag arrives, copies its
// payload into buf (which must have the exact transmitted length), and
// advances the receiver's clock to the payload arrival time. It returns the
// sampled local duration (zero if the payload had already arrived in virtual
// time).
func (c *Comm) Recv(src, tag int, buf []float64) float64 {
	c.checkPeer(src)
	msg := c.w.dataFab.match(c, src, tag)
	if len(msg.payload) != len(buf) {
		panic(fmt.Sprintf("mpi: recv length mismatch: posted %d, message %d (src %d tag %d)",
			len(buf), len(msg.payload), src, tag))
	}
	copy(buf, msg.payload)
	if msg.pooled {
		c.w.bufs.Put(msg.payload)
	}
	before := c.state.clock.Now()
	c.state.clock.AdvanceTo(msg.arrive)
	return c.state.clock.Now() - before
}

// Sendrecv performs a combined send to dest and receive from src, as
// MPI_Sendrecv. Because sends are buffered it cannot deadlock.
func (c *Comm) Sendrecv(dest, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) {
	c.Send(dest, sendTag, sendBuf)
	c.Recv(src, recvTag, recvBuf)
}

// Request represents an outstanding nonblocking operation; complete it with
// Wait.
type Request struct {
	c      *Comm
	isSend bool
	src    int
	tag    int
	buf    []float64
	done   bool
}

// completedSend is the request every Isend returns: the payload is captured
// at issue time, so the operation is already complete and the handle is
// immutable (Wait only reads done). Sharing one saves an allocation per
// nonblocking send.
var completedSend = &Request{isSend: true, done: true}

// Isend starts a nonblocking send. The payload is captured immediately (the
// caller may reuse buf); the sender is charged only the latency alpha, with
// the transfer cost reflected in the message arrival time.
func (c *Comm) Isend(dest, tag int, buf []float64) *Request {
	c.checkPeer(dest)
	m := c.w.machine
	nbytes := 8 * len(buf)
	cost := m.PtToPtTime(nbytes) * m.Noise(c.state.rng)
	c.state.clock.Advance(m.Alpha)
	data, pooled := c.w.copyPayload(buf)
	c.w.dataFab.post(c.group[dest], fmsg[[]float64]{
		ctx:     c.ctx,
		src:     c.rank,
		tag:     tag,
		payload: data,
		pooled:  pooled,
		arrive:  c.state.clock.Now() + cost,
	})
	return completedSend
}

// Irecv posts a nonblocking receive; the match occurs when Wait is called.
// buf must remain valid until then.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	c.checkPeer(src)
	return &Request{c: c, isSend: false, src: src, tag: tag, buf: buf}
}

// Wait completes the request, blocking if necessary, and returns the sampled
// local duration attributable to the completion.
func (r *Request) Wait() float64 {
	if r.done {
		return 0
	}
	r.done = true
	return r.c.Recv(r.src, r.tag, r.buf)
}

// Done reports whether the request has been completed by Wait.
func (r *Request) Done() bool { return r.done }

// Waitall completes all requests in order.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
