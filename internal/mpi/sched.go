package mpi

// The discrete-event scheduler: a cooperative, baton-passing alternative to
// the free-running goroutine-per-rank execution mode. Small worlds spend a
// large share of their wall time in condition-variable broadcasts and
// runtime wakeups — every collective round wakes all waiters so that one of
// them can make progress. Under the event scheduler exactly one rank runs
// at any moment: a blocking rank parks itself, the scheduler picks the
// runnable rank with the smallest virtual clock (ties to the lowest world
// rank, keeping the pick deterministic), and hands it the baton over a
// buffered channel. Wakeups are routed explicitly — a posted message
// readies its destination, a completed collective round readies its
// cohort — so there are no spurious wakeups and no thundering herds.
//
// Determinism: the virtual-clock results never depend on which execution
// mode ran the world (clocks, RNG streams, and matching are all
// schedule-independent by construction), so the scheduler is a pure
// throughput choice. The run-queue discipline (min virtual clock) merely
// approximates the causal order a real machine would see, keeping mailbox
// queues short.
//
// All of the scheduler's mutable state lives in this file, guarded by one
// mutex per world; critterlint's fabriclock analyzer confines raw
// synchronization in package mpi to fabric.go, world.go, and sched.go.

import (
	"fmt"
	"strings"
	"sync"
)

// SchedulerKind selects how a World executes its ranks.
type SchedulerKind uint8

const (
	// SchedAuto picks SchedEvent for worlds of at most
	// DefaultEventThreshold ranks and SchedGoroutine above. The default.
	SchedAuto SchedulerKind = iota
	// SchedGoroutine runs every rank as a free goroutine blocking on
	// condition variables — the pre-scheduler behavior, and the right
	// choice when ranks do real CPU work that can overlap.
	SchedGoroutine
	// SchedEvent runs ranks cooperatively under the discrete-event loop:
	// one runnable rank at a time, picked by minimum virtual clock.
	SchedEvent
)

// DefaultEventThreshold is the world size at or below which SchedAuto
// selects the event scheduler. Sweep worlds in the registered studies are
// this size or smaller; the goroutine mode keeps large stress worlds on
// the parallel path.
const DefaultEventThreshold = 32

// String returns the flag-facing spelling of k.
func (k SchedulerKind) String() string {
	switch k {
	case SchedGoroutine:
		return "goroutine"
	case SchedEvent:
		return "event"
	default:
		return "auto"
	}
}

// ParseScheduler parses a -sched flag value: "auto", "goroutine", or
// "event".
func ParseScheduler(s string) (SchedulerKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return SchedAuto, nil
	case "goroutine", "goroutines", "parallel":
		return SchedGoroutine, nil
	case "event", "des", "discrete-event":
		return SchedEvent, nil
	}
	return SchedAuto, fmt.Errorf("mpi: unknown scheduler %q (want auto, goroutine, or event)", s)
}

// SchedulerNames lists the accepted -sched values for usage strings.
func SchedulerNames() string { return "auto, goroutine, event" }

// errDeadlock is the abort cause when every live rank is blocked and no
// wakeup can arrive. The goroutine mode would hang forever in this state;
// the event scheduler proves the hang at the moment it becomes inevitable.
var errDeadlock = fmt.Errorf("mpi: deadlock: every rank is blocked with no message in flight")

// desState is one rank's scheduling state.
type desState uint8

const (
	desRunnable desState = iota // ready to run, waiting for the baton
	desRunning                  // holds the baton (at most one rank)
	desParked                   // blocked at a fabric wait site
	desDone                     // rank body returned or unwound
)

// desSched is the per-world discrete-event run queue. Exactly one rank is
// desRunning at a time; the baton moves only at park, finish, or abort
// drain, each of which picks the next runnable rank under mu.
//
// Lock order: a fabric inner lock (mailbox or shard mutex) may be held
// when acquiring mu; mu never wraps an inner-lock acquisition.
type desSched struct {
	w      *World
	mu     sync.Mutex
	st     []desState
	live   int // ranks not yet desDone
	resume []chan struct{}
}

// newDES builds the scheduler with every rank runnable at virtual time
// zero. Resume channels are buffered so a baton can be handed to a rank
// goroutine the Go runtime has not started yet.
func newDES(w *World) *desSched {
	d := &desSched{
		w:      w,
		st:     make([]desState, w.size),
		live:   w.size,
		resume: make([]chan struct{}, w.size),
	}
	for r := range d.resume {
		d.resume[r] = make(chan struct{}, 1)
	}
	return d
}

// start hands the baton to the first rank (all clocks are zero, so rank 0).
func (d *desSched) start() {
	d.mu.Lock()
	d.handoffLocked()
	d.mu.Unlock()
}

// await blocks the rank goroutine until it first receives the baton.
func (d *desSched) await(rank int) { <-d.resume[rank] }

// pickLocked returns the runnable rank with the smallest virtual clock
// (ties to the lowest rank), or -1 if none is runnable. Parked ranks last
// wrote their clocks before parking under mu, so the reads here are
// ordered by the mutex.
func (d *desSched) pickLocked() int {
	next, bestT := -1, 0.0
	for r, s := range d.st {
		if s != desRunnable {
			continue
		}
		t := d.w.ranks[r].clock.Now()
		if next < 0 || t < bestT {
			next, bestT = r, t
		}
	}
	return next
}

// handoffLocked passes the baton to the next runnable rank. When the world
// has aborted it first drains the parked set (every parked rank becomes
// runnable so it can observe the abort and unwind). It returns false only
// on a genuine deadlock: live ranks remain, none is runnable, and the
// world has not aborted — the caller must abort and kick.
func (d *desSched) handoffLocked() bool {
	next := d.pickLocked()
	if next < 0 && d.live > 0 && d.w.aborted.Load() {
		for r, s := range d.st {
			if s == desParked {
				d.st[r] = desRunnable
			}
		}
		next = d.pickLocked()
	}
	if next >= 0 {
		d.st[next] = desRunning
		d.resume[next] <- struct{}{}
		return true
	}
	return d.live == 0
}

// park blocks the calling rank at a fabric wait site. The caller holds
// inner (the mailbox or shard lock guarding its wait predicate); park
// releases it while blocked and re-acquires it before returning, exactly
// like sync.Cond.Wait. Because the parking rank held the baton, marking it
// parked leaves no rank running, so the handoff below is the world's only
// source of progress — if it finds nothing runnable the world is provably
// deadlocked and is aborted rather than hung.
func (d *desSched) park(rank int, inner *sync.Mutex) {
	d.mu.Lock()
	d.st[rank] = desParked
	ok := d.handoffLocked()
	d.mu.Unlock()
	inner.Unlock()
	if !ok {
		d.w.abort(errDeadlock)
		d.kick()
	}
	<-d.resume[rank]
	inner.Lock()
}

// ready marks a parked rank runnable. Called by the running rank when it
// posts a message to rank's mailbox or completes a collective round rank
// is waiting on; a rank that is running, already runnable, or done is left
// alone (the wakeup it represents will be observed by the wait-site
// predicate re-check).
func (d *desSched) ready(rank int) {
	d.mu.Lock()
	if d.st[rank] == desParked {
		d.st[rank] = desRunnable
	}
	d.mu.Unlock()
}

// finish retires a rank whose body returned or unwound and hands the baton
// on. Called from the rank goroutine's exit path after abort bookkeeping,
// so an abort drain here sees the flag.
func (d *desSched) finish(rank int) {
	d.mu.Lock()
	d.st[rank] = desDone
	d.live--
	ok := d.handoffLocked()
	d.mu.Unlock()
	if !ok {
		d.w.abort(errDeadlock)
		d.kick()
	}
}

// kick re-runs the handoff after an abort raised outside the scheduler's
// locks, making every parked rank runnable so the world drains.
func (d *desSched) kick() {
	d.mu.Lock()
	for r, s := range d.st {
		if s == desParked {
			d.st[r] = desRunnable
		}
	}
	d.handoffLocked()
	d.mu.Unlock()
}
