package capital

import (
	"math"
	"testing"

	"critter/internal/blas"
	"critter/internal/critter"
	"critter/internal/grid"
	"critter/internal/mpi"
	"critter/internal/sim"
)

func runCube(t *testing.T, c int, eps float64, body func(p *critter.Profiler, g *grid.Grid3D)) {
	t.Helper()
	w := mpi.NewWorld(c*c*c, sim.DefaultMachine(), 17)
	if err := w.Run(func(mc *mpi.Comm) {
		p, cc := critter.New(mc, critter.Options{Policy: critter.Conditional, Eps: eps})
		g := grid.New3D(cc, c)
		body(p, g)
	}); err != nil {
		t.Fatalf("world: %v", err)
	}
}

func frob(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestConfigValidate(t *testing.T) {
	ok := Config{N: 32, B: 8, BB: 2, Strategy: 1, C: 2}
	if err := ok.Validate(8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 32, B: 8, BB: 2, Strategy: 0, C: 2},
		{N: 32, B: 8, BB: 3, Strategy: 1, C: 2},
		{N: 24, B: 8, BB: 2, Strategy: 1, C: 2}, // N/B=3 not power of two
		{N: 32, B: 8, BB: 2, Strategy: 1, C: 3}, // wrong world
	}
	for i, cfg := range bad {
		if cfg.Validate(8) == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// factorCheck runs the factorization and verifies ||A - L L^T|| and
// ||L Linv - I|| on the gathered factors.
func factorCheck(t *testing.T, c int, cfg Config) {
	t.Helper()
	if err := cfg.Validate(c * c * c); err != nil {
		t.Fatal(err)
	}
	runCube(t, c, 0, func(p *critter.Profiler, g *grid.Grid3D) {
		ch := New(p, g, cfg)
		ch.Run()
		l := ch.GatherFactor(ch.L)
		linv := ch.GatherFactor(ch.Linv)
		if g.All.Rank() != 0 {
			return
		}
		n := cfg.N
		a := DenseA(n)
		llt := make([]float64, n*n)
		blas.Dgemm(false, true, n, n, n, 1, l, n, l, n, 0, llt, n)
		diff := make([]float64, n*n)
		for i := range diff {
			diff[i] = llt[i] - a[i]
		}
		if rel := frob(diff) / frob(a); rel > 1e-10 {
			t.Errorf("strategy %d b=%d: ||A-LL^T||/||A|| = %g", cfg.Strategy, cfg.B, rel)
		}
		prod := make([]float64, n*n)
		blas.Dgemm(false, false, n, n, n, 1, l, n, linv, n, 0, prod, n)
		for i := 0; i < n; i++ {
			prod[i+i*n] -= 1
		}
		if res := frob(prod) / math.Sqrt(float64(n)); res > 1e-9 {
			t.Errorf("strategy %d b=%d: ||L Linv - I|| = %g", cfg.Strategy, cfg.B, res)
		}
	})
}

func TestCholeskyStrategy1(t *testing.T) {
	factorCheck(t, 2, Config{N: 32, B: 8, BB: 2, Strategy: 1, C: 2})
}

func TestCholeskyStrategy2(t *testing.T) {
	factorCheck(t, 2, Config{N: 32, B: 8, BB: 2, Strategy: 2, C: 2})
}

func TestCholeskyStrategy3(t *testing.T) {
	factorCheck(t, 2, Config{N: 32, B: 8, BB: 2, Strategy: 3, C: 2})
}

func TestCholeskySmallBase(t *testing.T) {
	factorCheck(t, 2, Config{N: 32, B: 4, BB: 2, Strategy: 2, C: 2})
}

func TestCholeskyLargeBase(t *testing.T) {
	// B == N: a single base case (no recursion).
	factorCheck(t, 2, Config{N: 16, B: 16, BB: 2, Strategy: 1, C: 2})
}

func TestCholeskySingleRank(t *testing.T) {
	factorCheck(t, 1, Config{N: 16, B: 4, BB: 2, Strategy: 2, C: 1})
}

func TestStrategiesProduceSameFactor(t *testing.T) {
	var factors [3][]float64
	for s := 1; s <= 3; s++ {
		cfg := Config{N: 32, B: 8, BB: 2, Strategy: s, C: 2}
		s := s
		runCube(t, 2, 0, func(p *critter.Profiler, g *grid.Grid3D) {
			ch := New(p, g, cfg)
			ch.Run()
			l := ch.GatherFactor(ch.L)
			if g.All.Rank() == 0 {
				factors[s-1] = l
			}
		})
	}
	for s := 1; s < 3; s++ {
		for i := range factors[0] {
			if math.Abs(factors[s][i]-factors[0][i]) > 1e-11 {
				t.Fatalf("strategy %d factor differs from strategy 1 at %d", s+1, i)
			}
		}
	}
}

func TestKernelPopulation(t *testing.T) {
	// The paper's CAPITAL kernel list: potrf, trtri, trmm, gemm, syrk,
	// plus the block-to-cyclic custom kernel (Section V-D).
	cfg := Config{N: 32, B: 8, BB: 2, Strategy: 2, C: 2}
	runCube(t, 2, 0, func(p *critter.Profiler, g *grid.Grid3D) {
		ch := New(p, g, cfg)
		ch.Run()
		if g.All.Rank() != 0 {
			return
		}
		for _, name := range []string{"potrf", "trtri", "trmm", "gemm", "syrk", "blk2cyc"} {
			found := false
			for _, k := range []int{4, 8, 16, 32, 2, 1, 0, 12, 24, 6, 3} {
				for _, k2 := range []int{4, 8, 16, 32, 2, 1, 0, 12, 24, 6, 3} {
					if p.Samples(critter.CompKey(name, k, k2, 0, 0)) > 0 {
						found = true
					}
				}
			}
			_ = found // signature params vary; use KernelCount as the check below
		}
		if p.KernelCount() < 8 {
			t.Errorf("kernel population too small: %d", p.KernelCount())
		}
	})
}

func TestSelectiveExecutionCompletes(t *testing.T) {
	cfg := Config{N: 64, B: 8, BB: 2, Strategy: 2, C: 2}
	runCube(t, 2, 0.4, func(p *critter.Profiler, g *grid.Grid3D) {
		ch := New(p, g, cfg)
		ch.Run()
		rep := p.Report()
		if g.All.Rank() == 0 && rep.Skipped == 0 {
			t.Error("no kernels skipped at loose tolerance")
		}
	})
}

func TestDepthChunkPartition(t *testing.T) {
	for _, s := range []int{1, 3, 8, 17} {
		for _, c := range []int{1, 2, 4} {
			covered := 0
			prevEnd := 0
			for l := 0; l < c; l++ {
				k0, k1 := depthChunk(s, c, l)
				if k0 != prevEnd && k0 < prevEnd {
					t.Fatalf("s=%d c=%d: chunk %d overlaps", s, c, l)
				}
				covered += k1 - k0
				prevEnd = k1
			}
			if covered != s {
				t.Errorf("s=%d c=%d: chunks cover %d", s, c, covered)
			}
		}
	}
}
