// Package capital implements a recursive communication-avoiding Cholesky
// factorization with simultaneous triangular inversion on a 3D processor
// grid, modeled on CAPITAL (Hutter & Solomonik), the paper's first case
// study. The matrix is replicated across the c layers of a c x c x c grid
// and distributed by block-cyclic rows within each layer; matrix products
// split their contraction dimension across the depth fibers (allreduce) and
// assemble operands with intra-layer allgathers, reproducing the BSP cost
// structure Theta(alpha*n/b + beta*(n^2/p^(2/3)+nb) + gamma*(n^3/p + nb^2))
// and the kernel population (potrf, trtri, trmm, gemm, syrk; bcast,
// allreduce, allgather, gather, scatter) of Section V-A.
//
// The recursion factors A = L L^T while maintaining L^{-1}:
//
//	L21 = A21 L11^{-T}; A22 <- A22 - L21 L21^T;
//	S21 = -L22^{-1} L21 L11^{-1}.
//
// Base-case blocks (dimension <= B) are factorized with one of the paper's
// three strategies: (1) gather to one rank of layer 0, factor, scatter,
// broadcast along depth; (2) allgather within every layer and factor
// redundantly; (3) allgather within layer 0 only, factor redundantly there,
// broadcast along depth.
package capital

import (
	"fmt"
	"math"

	"critter/internal/blas"
	"critter/internal/critter"
	"critter/internal/grid"
)

// Config parameterizes the factorization: matrix dimension N, base-case
// block size B (the tuning parameter), distribution block rows BB, base-case
// strategy (1-3), and grid edge C (world = C^3). Mirrors the paper's first
// case study (Section V-C: b = 128*2^(v%5), strategy ceil((v+1)/5)).
type Config struct {
	N        int
	B        int
	BB       int
	Strategy int
	C        int
}

// Validate checks alignment constraints: N = B * 2^k, BB | B.
func (c Config) Validate(worldSize int) error {
	switch {
	case c.C*c.C*c.C != worldSize:
		return fmt.Errorf("capital: C^3=%d != world %d", c.C*c.C*c.C, worldSize)
	case c.Strategy < 1 || c.Strategy > 3:
		return fmt.Errorf("capital: strategy %d not in 1..3", c.Strategy)
	case c.B <= 0 || c.BB <= 0 || c.B%c.BB != 0:
		return fmt.Errorf("capital: BB=%d must divide B=%d", c.BB, c.B)
	case c.N%c.B != 0 || (c.N/c.B)&(c.N/c.B-1) != 0:
		return fmt.Errorf("capital: N/B=%d/%d must be a power of two", c.N, c.B)
	}
	return nil
}

// Chol holds one rank's state: the replicated-by-layer, row-cyclic local
// slabs of A, L, and L^{-1} (each rloc x N column-major).
type Chol struct {
	G    *grid.Grid3D
	Cfg  Config
	Rows grid.Cyclic // N rows in BB-blocks over the c^2 layer ranks
	RLoc int
	A    []float64
	L    []float64
	Linv []float64
	p    *critter.Profiler
}

// New allocates the local state and fills A with the deterministic SPD test
// matrix (identical on every layer).
func New(p *critter.Profiler, g *grid.Grid3D, cfg Config) *Chol {
	p2 := cfg.C * cfg.C
	ch := &Chol{
		G: g, Cfg: cfg, p: p,
		Rows: grid.Cyclic{N: cfg.N, BS: cfg.BB, P: p2},
	}
	ch.RLoc = ch.Rows.LocalItems(g.LayerRank)
	ch.A = make([]float64, ch.RLoc*cfg.N)
	ch.L = make([]float64, ch.RLoc*cfg.N)
	ch.Linv = make([]float64, ch.RLoc*cfg.N)
	boost := 4 + 2*math.Log(float64(cfg.N))
	for lb := 0; lb < ch.Rows.LocalBlocks(g.LayerRank); lb++ {
		g0 := ch.Rows.GlobalBlock(g.LayerRank, lb) * cfg.BB
		for r := 0; r < cfg.BB; r++ {
			gi := g0 + r
			li := lb*cfg.BB + r
			for j := 0; j < cfg.N; j++ {
				ch.A[li+j*ch.RLoc] = spdEntry(gi, j, boost)
			}
		}
	}
	return ch
}

func spdEntry(i, j int, boost float64) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	v := 1.0 / float64(1+d)
	if i == j {
		v += boost
	}
	return v
}

// Run performs the full factorization with inverse maintenance.
func (ch *Chol) Run() { ch.cholInv(0, ch.Cfg.N) }

// localBlocksIn returns the local block slots whose global rows lie in
// [r0, r1); both bounds must be BB-aligned.
func (ch *Chol) localBlocksIn(r0, r1 int) []int {
	var out []int
	for lb := 0; lb < ch.Rows.LocalBlocks(ch.G.LayerRank); lb++ {
		g0 := ch.Rows.GlobalBlock(ch.G.LayerRank, lb) * ch.Cfg.BB
		if g0 >= r0 && g0 < r1 {
			out = append(out, lb)
		}
	}
	return out
}

// maxBlocksIn returns the maximum, over layer ranks, of the number of
// BB-blocks of [r0, r1) owned (the allgather padding width).
func (ch *Chol) maxBlocksIn(r0, r1 int) int {
	nb := (r1 - r0) / ch.Cfg.BB
	p2 := ch.Cfg.C * ch.Cfg.C
	return (nb + p2 - 1) / p2
}

// allgatherBlock assembles the dense (r1-r0) x (c1-c0) block of the stored
// matrix mat (A, L, or Linv) on every rank of the layer, via a padded
// intra-layer allgather. Packing and unpacking are profiled as the
// block-to-cyclic redistribution kernel, as the paper does for CAPITAL
// (Section V-D).
func (ch *Chol) allgatherBlock(mat []float64, r0, r1, c0, c1 int) []float64 {
	bb := ch.Cfg.BB
	rows, cols := r1-r0, c1-c0
	maxB := ch.maxBlocksIn(r0, r1)
	contrib := make([]float64, maxB*bb*cols)
	mine := ch.localBlocksIn(r0, r1)
	ch.p.Kernel("blk2cyc", len(mine), cols, 0, 0, float64(len(mine)*bb*cols), func() {
		for bi, lb := range mine {
			for c := 0; c < cols; c++ {
				src := mat[lb*bb+(c0+c)*ch.RLoc : lb*bb+(c0+c)*ch.RLoc+bb]
				copy(contrib[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb], src)
			}
		}
	})
	p2 := ch.Cfg.C * ch.Cfg.C
	out := make([]float64, p2*len(contrib))
	ch.G.Layer.Allgather(contrib, out)
	dense := make([]float64, rows*cols)
	ch.p.Kernel("cyc2blk", rows/bb, cols, 0, 0, float64(rows*cols), func() {
		for owner := 0; owner < p2; owner++ {
			seg := out[owner*len(contrib) : (owner+1)*len(contrib)]
			d := grid.Cyclic{N: ch.Cfg.N, BS: bb, P: p2}
			bi := 0
			for lb := 0; lb < d.LocalBlocks(owner); lb++ {
				g0 := d.GlobalBlock(owner, lb) * bb
				if g0 < r0 || g0 >= r1 {
					continue
				}
				for c := 0; c < cols; c++ {
					copy(dense[g0-r0+c*rows:g0-r0+c*rows+bb], seg[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb])
				}
				bi++
			}
		}
	})
	return dense
}

// writeBlockRows scatters dense rows of a (r1-r0) x cols block back into the
// local cyclic slab of mat at columns [c0, c0+cols).
func (ch *Chol) writeBlockRows(mat, dense []float64, r0, r1, c0, cols int) {
	bb := ch.Cfg.BB
	rows := r1 - r0
	for _, lb := range ch.localBlocksIn(r0, r1) {
		g0 := ch.Rows.GlobalBlock(ch.G.LayerRank, lb) * bb
		for c := 0; c < cols; c++ {
			copy(mat[lb*bb+(c0+c)*ch.RLoc:lb*bb+(c0+c)*ch.RLoc+bb],
				dense[g0-r0+c*rows:g0-r0+c*rows+bb])
		}
	}
}

// cholInv factorizes A[i0:i1, i0:i1], writing L and Linv rows.
func (ch *Chol) cholInv(i0, i1 int) {
	if i1-i0 <= ch.Cfg.B {
		ch.baseCase(i0, i1)
		return
	}
	mid := i0 + (i1-i0)/2
	ch.cholInv(i0, mid)
	s11 := mid - i0
	m2 := i1 - mid

	// L21 = A21 * L11inv^T, contraction split across depth fibers.
	m11inv := ch.allgatherBlock(ch.Linv, i0, mid, i0, mid)
	mine := ch.localBlocksIn(mid, i1)
	bb := ch.Cfg.BB
	m2loc := len(mine) * bb
	l21 := make([]float64, m2loc*s11)
	if m2loc > 0 {
		a21 := ch.packRows(ch.A, mine, i0, s11)
		if ch.Cfg.C == 1 {
			copy(l21, a21)
			ch.p.Trmm(blas.Right, blas.Lower, true, blas.NonUnit, m2loc, s11, 1, m11inv, s11, l21, m2loc)
		} else {
			k0, k1 := depthChunk(s11, ch.Cfg.C, ch.G.MyLayer)
			if k1 > k0 {
				ch.p.Gemm(false, true, m2loc, s11, k1-k0, 1,
					a21[k0*m2loc:], m2loc, m11inv[k0*s11:], s11, 0, l21, m2loc)
			}
		}
	}
	if ch.Cfg.C > 1 {
		sum := make([]float64, len(l21))
		ch.G.Depth.Allreduce(l21, sum, 0)
		l21 = sum
	}
	ch.unpackRows(ch.L, l21, mine, i0, s11)

	// A22 <- A22 - L21 L21^T (lower triangle), per local row block:
	// syrk for the diagonal tile, gemm for the off-diagonal row segment.
	f := ch.allgatherBlock(ch.L, mid, i1, i0, mid) // m2 x s11
	for _, lb := range mine {
		g0 := ch.Rows.GlobalBlock(ch.G.LayerRank, lb) * bb
		frow := make([]float64, bb*s11)
		for c := 0; c < s11; c++ {
			copy(frow[c*bb:(c+1)*bb], f[g0-mid+c*m2:g0-mid+c*m2+bb])
		}
		diag := make([]float64, bb*bb)
		ch.p.Syrk(blas.Lower, false, bb, s11, 1, frow, bb, 0, diag, bb)
		for c := 0; c < bb; c++ {
			for r := c; r < bb; r++ {
				ch.A[lb*bb+r+(g0+c)*ch.RLoc] -= diag[r+c*bb]
			}
		}
		if g0 > mid {
			off := make([]float64, bb*(g0-mid))
			ch.p.Gemm(false, true, bb, g0-mid, s11, 1, frow, bb, f, m2, 0, off, bb)
			for c := 0; c < g0-mid; c++ {
				for r := 0; r < bb; r++ {
					ch.A[lb*bb+r+(mid+c)*ch.RLoc] -= off[r+c*bb]
				}
			}
		}
	}

	ch.cholInv(mid, i1)

	// S21 = -L22inv * (L21 * L11inv): trmm on local rows, allgather, then
	// a redundant full trmm from the left.
	if m2loc > 0 {
		t1 := ch.packRows(ch.L, mine, i0, s11)
		ch.p.Trmm(blas.Right, blas.Lower, false, blas.NonUnit, m2loc, s11, 1, m11inv, s11, t1, m2loc)
		ch.unpackRows(ch.Linv, t1, mine, i0, s11)
	}
	t1full := ch.allgatherBlock(ch.Linv, mid, i1, i0, mid)
	m22inv := ch.allgatherBlock(ch.Linv, mid, i1, mid, i1)
	ch.p.Trmm(blas.Left, blas.Lower, false, blas.NonUnit, m2, s11, -1, m22inv, m2, t1full, m2)
	ch.writeBlockRows(ch.Linv, t1full, mid, i1, i0, s11)
}

// packRows copies the local blocks' columns [c0, c0+cols) into a contiguous
// (len(mine)*BB) x cols matrix.
func (ch *Chol) packRows(mat []float64, mine []int, c0, cols int) []float64 {
	bb := ch.Cfg.BB
	m := len(mine) * bb
	out := make([]float64, m*cols)
	for bi, lb := range mine {
		for c := 0; c < cols; c++ {
			copy(out[bi*bb+c*m:bi*bb+c*m+bb], mat[lb*bb+(c0+c)*ch.RLoc:lb*bb+(c0+c)*ch.RLoc+bb])
		}
	}
	return out
}

// unpackRows writes a packed (len(mine)*BB) x cols matrix back into the
// local slab columns [c0, c0+cols).
func (ch *Chol) unpackRows(mat, packed []float64, mine []int, c0, cols int) {
	bb := ch.Cfg.BB
	m := len(mine) * bb
	for bi, lb := range mine {
		for c := 0; c < cols; c++ {
			copy(mat[lb*bb+(c0+c)*ch.RLoc:lb*bb+(c0+c)*ch.RLoc+bb], packed[bi*bb+c*m:bi*bb+c*m+bb])
		}
	}
}

// depthChunk splits a contraction range of size s into c chunks and returns
// layer l's sub-range.
func depthChunk(s, c, l int) (int, int) {
	per := (s + c - 1) / c
	k0 := l * per
	k1 := k0 + per
	if k0 > s {
		k0 = s
	}
	if k1 > s {
		k1 = s
	}
	return k0, k1
}

// baseCase factorizes (and inverts) the diagonal block [i0, i1) with the
// configured strategy.
func (ch *Chol) baseCase(i0, i1 int) {
	s := i1 - i0
	switch ch.Cfg.Strategy {
	case 1:
		ch.baseGatherScatter(i0, i1, s)
	case 2:
		ch.baseAllgatherAll(i0, i1, s)
	case 3:
		ch.baseAllgatherLayer0(i0, i1, s)
	}
}

// factorDense runs potrf then trtri on a dense s x s block, producing the
// packed pair [L | Linv] (each s x s, lower).
func (ch *Chol) factorDense(block []float64, s int) []float64 {
	if err := ch.p.Potrf(s, block, s); err != nil {
		_ = err // tolerated under selective execution
	}
	pair := make([]float64, 2*s*s)
	copy(pair[:s*s], block)
	inv := pair[s*s:]
	copy(inv, block)
	if err := ch.p.Trtri(s, inv, s); err != nil {
		_ = err
	}
	// Zero strict upper triangles for cleanliness.
	for c := 0; c < s; c++ {
		for r := 0; r < c; r++ {
			pair[r+c*s] = 0
			inv[r+c*s] = 0
		}
	}
	return pair
}

// baseGatherScatter is strategy 1: gather the block onto rank 0 of layer 0,
// factorize there, scatter L and Linv back across the layer, and broadcast
// along the depth fibers.
func (ch *Chol) baseGatherScatter(i0, i1, s int) {
	bb := ch.Cfg.BB
	maxB := ch.maxBlocksIn(i0, i1)
	p2 := ch.Cfg.C * ch.Cfg.C
	contribWords := maxB * bb * s
	slab := make([]float64, 2*contribWords)
	if ch.G.MyLayer == 0 {
		contrib := make([]float64, contribWords)
		mine := ch.localBlocksIn(i0, i1)
		ch.p.Kernel("blk2cyc", len(mine), s, 0, 0, float64(len(mine)*bb*s), func() {
			for bi, lb := range mine {
				for c := 0; c < s; c++ {
					copy(contrib[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb],
						ch.A[lb*bb+(i0+c)*ch.RLoc:lb*bb+(i0+c)*ch.RLoc+bb])
				}
			}
		})
		var gathered []float64
		if ch.G.LayerRank == 0 {
			gathered = make([]float64, p2*contribWords)
		} else {
			gathered = make([]float64, p2*contribWords) // root-significant only
		}
		ch.G.Layer.Gather(0, contrib, gathered)
		var scatterSrc []float64
		if ch.G.LayerRank == 0 {
			dense := ch.assembleDense(gathered, i0, i1, s, maxB)
			pair := ch.factorDense(dense, s)
			scatterSrc = ch.packPairForScatter(pair, i0, i1, s, maxB)
		} else {
			scatterSrc = make([]float64, p2*2*contribWords)
		}
		ch.G.Layer.Scatter(0, scatterSrc, slab)
	}
	ch.G.Depth.Bcast(0, slab)
	ch.unpackPairSlab(slab, i0, i1, s, maxB)
}

// baseAllgatherAll is strategy 2: allgather within every layer and
// factorize redundantly everywhere.
func (ch *Chol) baseAllgatherAll(i0, i1, s int) {
	dense := ch.allgatherBlock(ch.A, i0, i1, i0, i1)
	pair := ch.factorDense(dense, s)
	ch.writePair(pair, i0, i1, s)
}

// baseAllgatherLayer0 is strategy 3: allgather within layer 0 only,
// factorize redundantly across that layer, broadcast along depth.
func (ch *Chol) baseAllgatherLayer0(i0, i1, s int) {
	bb := ch.Cfg.BB
	maxB := ch.maxBlocksIn(i0, i1)
	slab := make([]float64, 2*maxB*bb*s)
	if ch.G.MyLayer == 0 {
		dense := ch.allgatherBlock(ch.A, i0, i1, i0, i1)
		pair := ch.factorDense(dense, s)
		// Pack my rows of both factors for the depth broadcast.
		mine := ch.localBlocksIn(i0, i1)
		for bi, lb := range mine {
			g0 := ch.Rows.GlobalBlock(ch.G.LayerRank, lb) * bb
			for c := 0; c < s; c++ {
				copy(slab[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb], pair[g0-i0+c*s:g0-i0+c*s+bb])
				copy(slab[maxB*bb*s+bi*bb+c*maxB*bb:maxB*bb*s+bi*bb+c*maxB*bb+bb],
					pair[s*s+g0-i0+c*s:s*s+g0-i0+c*s+bb])
			}
		}
	}
	ch.G.Depth.Bcast(0, slab)
	ch.unpackPairSlab(slab, i0, i1, s, maxB)
}

// assembleDense unpacks a gathered padded buffer into a dense s x s block.
func (ch *Chol) assembleDense(gathered []float64, i0, i1, s, maxB int) []float64 {
	bb := ch.Cfg.BB
	p2 := ch.Cfg.C * ch.Cfg.C
	contribWords := maxB * bb * s
	dense := make([]float64, s*s)
	d := grid.Cyclic{N: ch.Cfg.N, BS: bb, P: p2}
	for owner := 0; owner < p2; owner++ {
		seg := gathered[owner*contribWords : (owner+1)*contribWords]
		bi := 0
		for lb := 0; lb < d.LocalBlocks(owner); lb++ {
			g0 := d.GlobalBlock(owner, lb) * bb
			if g0 < i0 || g0 >= i1 {
				continue
			}
			for c := 0; c < s; c++ {
				copy(dense[g0-i0+c*s:g0-i0+c*s+bb], seg[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb])
			}
			bi++
		}
	}
	return dense
}

// packPairForScatter packs [L | Linv] into per-rank padded slabs in layer
// rank order for a Scatter.
func (ch *Chol) packPairForScatter(pair []float64, i0, i1, s, maxB int) []float64 {
	bb := ch.Cfg.BB
	p2 := ch.Cfg.C * ch.Cfg.C
	slabWords := 2 * maxB * bb * s
	out := make([]float64, p2*slabWords)
	d := grid.Cyclic{N: ch.Cfg.N, BS: bb, P: p2}
	for owner := 0; owner < p2; owner++ {
		seg := out[owner*slabWords : (owner+1)*slabWords]
		bi := 0
		for lb := 0; lb < d.LocalBlocks(owner); lb++ {
			g0 := d.GlobalBlock(owner, lb) * bb
			if g0 < i0 || g0 >= i1 {
				continue
			}
			for c := 0; c < s; c++ {
				copy(seg[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb], pair[g0-i0+c*s:g0-i0+c*s+bb])
				copy(seg[maxB*bb*s+bi*bb+c*maxB*bb:maxB*bb*s+bi*bb+c*maxB*bb+bb],
					pair[s*s+g0-i0+c*s:s*s+g0-i0+c*s+bb])
			}
			bi++
		}
	}
	return out
}

// unpackPairSlab writes a padded [L | Linv] slab into the local storage.
func (ch *Chol) unpackPairSlab(slab []float64, i0, i1, s, maxB int) {
	bb := ch.Cfg.BB
	half := maxB * bb * s
	for bi, lb := range ch.localBlocksIn(i0, i1) {
		for c := 0; c < s; c++ {
			copy(ch.L[lb*bb+(i0+c)*ch.RLoc:lb*bb+(i0+c)*ch.RLoc+bb],
				slab[bi*bb+c*maxB*bb:bi*bb+c*maxB*bb+bb])
			copy(ch.Linv[lb*bb+(i0+c)*ch.RLoc:lb*bb+(i0+c)*ch.RLoc+bb],
				slab[half+bi*bb+c*maxB*bb:half+bi*bb+c*maxB*bb+bb])
		}
	}
}

// writePair writes a dense [L | Linv] pair's local rows into storage.
func (ch *Chol) writePair(pair []float64, i0, i1, s int) {
	bb := ch.Cfg.BB
	for _, lb := range ch.localBlocksIn(i0, i1) {
		g0 := ch.Rows.GlobalBlock(ch.G.LayerRank, lb) * bb
		for c := 0; c < s; c++ {
			copy(ch.L[lb*bb+(i0+c)*ch.RLoc:lb*bb+(i0+c)*ch.RLoc+bb], pair[g0-i0+c*s:g0-i0+c*s+bb])
			copy(ch.Linv[lb*bb+(i0+c)*ch.RLoc:lb*bb+(i0+c)*ch.RLoc+bb], pair[s*s+g0-i0+c*s:s*s+g0-i0+c*s+bb])
		}
	}
}

// GatherFactor assembles the full L (or Linv) on world rank 0 from layer 0
// over the raw communicator.
func (ch *Chol) GatherFactor(mat []float64) []float64 {
	raw := ch.G.All.Raw()
	n := ch.Cfg.N
	var full []float64
	if raw.Rank() == 0 {
		full = make([]float64, n*n)
	}
	// Layer-0 ranks send their slabs; world rank 0 assembles.
	if ch.G.MyLayer == 0 && raw.Rank() != 0 {
		raw.Send(0, 1<<22+raw.Rank(), mat)
	}
	if raw.Rank() == 0 {
		p2 := ch.Cfg.C * ch.Cfg.C
		for owner := 0; owner < p2; owner++ {
			var slab []float64
			if owner == 0 {
				slab = mat
			} else {
				d := grid.Cyclic{N: n, BS: ch.Cfg.BB, P: p2}
				slab = make([]float64, d.LocalItems(owner)*n)
				raw.Recv(owner, 1<<22+owner, slab)
			}
			d := grid.Cyclic{N: n, BS: ch.Cfg.BB, P: p2}
			rl := d.LocalItems(owner)
			for lb := 0; lb < d.LocalBlocks(owner); lb++ {
				g0 := d.GlobalBlock(owner, lb) * ch.Cfg.BB
				for c := 0; c < n; c++ {
					copy(full[g0+c*n:g0+c*n+ch.Cfg.BB], slab[lb*ch.Cfg.BB+c*rl:lb*ch.Cfg.BB+c*rl+ch.Cfg.BB])
				}
			}
		}
	}
	return full
}

// DenseA returns the full SPD test matrix (for verification on the root).
func DenseA(n int) []float64 {
	boost := 4 + 2*math.Log(float64(n))
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a[i+j*n] = spdEntry(i, j, boost)
		}
	}
	return a
}
