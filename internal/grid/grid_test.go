package grid

import (
	"testing"
	"testing/quick"

	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/sim"
)

func TestCyclicPartitionProperty(t *testing.T) {
	// Every item is owned by exactly one rank, local indices are dense,
	// and the per-rank counts sum to N.
	f := func(nRaw, bsRaw, pRaw uint8) bool {
		n := 1 + int(nRaw)%200
		bs := 1 + int(bsRaw)%16
		p := 1 + int(pRaw)%8
		d := Cyclic{N: n, BS: bs, P: p}
		total := 0
		for r := 0; r < p; r++ {
			total += d.LocalItems(r)
		}
		if total != n {
			return false
		}
		for i := 0; i < n; i++ {
			owner := d.OwnerOfItem(i)
			if owner < 0 || owner >= p {
				return false
			}
			li := d.LocalIndexOfItem(i)
			if li < 0 || li >= d.LocalItems(owner)+bs { // padded tail allowed
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicRoundTrip(t *testing.T) {
	d := Cyclic{N: 64, BS: 4, P: 3}
	for i := 0; i < 64; i++ {
		owner := d.OwnerOfItem(i)
		li := d.LocalIndexOfItem(i)
		if got := d.GlobalIndexOf(owner, li); got != i {
			t.Fatalf("round trip failed: item %d -> (rank %d, local %d) -> %d", i, owner, li, got)
		}
	}
}

func TestCyclicBlocks(t *testing.T) {
	d := Cyclic{N: 50, BS: 8, P: 2} // 7 blocks, last short (2 items)
	if d.NumBlocks() != 7 {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
	if d.BlockSize(6) != 2 || d.BlockSize(0) != 8 {
		t.Errorf("block sizes: %d, %d", d.BlockSize(0), d.BlockSize(6))
	}
	if d.LocalBlocks(0) != 4 || d.LocalBlocks(1) != 3 {
		t.Errorf("local blocks: %d, %d", d.LocalBlocks(0), d.LocalBlocks(1))
	}
	if d.GlobalBlock(1, 2) != 5 {
		t.Errorf("GlobalBlock(1,2) = %d", d.GlobalBlock(1, 2))
	}
	if d.LocalBlock(5) != 2 {
		t.Errorf("LocalBlock(5) = %d", d.LocalBlock(5))
	}
}

func runWorld(t *testing.T, p int, body func(cc *critter.Comm)) {
	t.Helper()
	w := mpi.NewWorld(p, sim.DefaultMachine(), 5)
	if err := w.Run(func(c *mpi.Comm) {
		_, cc := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: 0})
		body(cc)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DCoordinates(t *testing.T) {
	runWorld(t, 6, func(cc *critter.Comm) {
		g := New2D(cc, 2, 3)
		if g.MyRow != cc.Rank()/3 || g.MyCol != cc.Rank()%3 {
			t.Errorf("rank %d: coords (%d,%d)", cc.Rank(), g.MyRow, g.MyCol)
		}
		if g.Row.Size() != 3 || g.Col.Size() != 2 {
			t.Errorf("fiber sizes %d/%d", g.Row.Size(), g.Col.Size())
		}
		if g.Row.Rank() != g.MyCol || g.Col.Rank() != g.MyRow {
			t.Errorf("fiber ranks inconsistent")
		}
		if g.RankOf(g.MyRow, g.MyCol) != cc.Rank() {
			t.Error("RankOf does not invert coordinates")
		}
	})
}

func TestGrid2DFiberCommunication(t *testing.T) {
	runWorld(t, 6, func(cc *critter.Comm) {
		g := New2D(cc, 2, 3)
		sum := make([]float64, 1)
		g.Row.Allreduce([]float64{float64(g.MyCol)}, sum, mpi.OpSum)
		if sum[0] != 3 { // 0+1+2
			t.Errorf("row sum = %v", sum[0])
		}
		g.Col.Allreduce([]float64{float64(g.MyRow)}, sum, mpi.OpSum)
		if sum[0] != 1 { // 0+1
			t.Errorf("col sum = %v", sum[0])
		}
	})
}

func TestGrid2DSizeMismatchPanics(t *testing.T) {
	w := mpi.NewWorld(4, sim.DefaultMachine(), 5)
	err := w.Run(func(c *mpi.Comm) {
		_, cc := critter.New(c, critter.Options{})
		New2D(cc, 3, 3) // 9 != 4
	})
	if err == nil {
		t.Fatal("expected failure for mismatched grid")
	}
}

func TestGrid3DCoordinates(t *testing.T) {
	runWorld(t, 8, func(cc *critter.Comm) {
		g := New3D(cc, 2)
		if g.MyLayer != cc.Rank()/4 || g.LayerRank != cc.Rank()%4 {
			t.Errorf("rank %d: layer %d lr %d", cc.Rank(), g.MyLayer, g.LayerRank)
		}
		if g.Layer.Size() != 4 || g.Depth.Size() != 2 {
			t.Errorf("layer/depth sizes %d/%d", g.Layer.Size(), g.Depth.Size())
		}
		// Depth fiber rank order follows layer index.
		if g.Depth.Rank() != g.MyLayer {
			t.Errorf("depth rank %d != layer %d", g.Depth.Rank(), g.MyLayer)
		}
		// Communicate along depth: replication check pattern.
		buf := []float64{float64(g.LayerRank)}
		out := make([]float64, 1)
		g.Depth.Allreduce(buf, out, mpi.OpMax)
		if out[0] != float64(g.LayerRank) {
			t.Errorf("depth fiber mixed layer ranks: %v", out[0])
		}
	})
}
