// Package grid provides the processor-grid and data-distribution layers the
// factorization libraries share: 2D grids with row/column fiber
// communicators, 3D grids with layer and depth fibers, and block-cyclic
// index arithmetic.
package grid

import (
	"fmt"

	"critter/internal/critter"
)

// Grid2D is one rank's view of a pr-by-pc process grid. Ranks are laid out
// row-major: rank = row*pc + col. Row and Col are the rank's fiber
// communicators (profiled, so their traffic is intercepted).
type Grid2D struct {
	All   *critter.Comm
	Row   *critter.Comm // my process row: pc ranks
	Col   *critter.Comm // my process column: pr ranks
	PR    int
	PC    int
	MyRow int
	MyCol int
}

// New2D builds the grid from a communicator of exactly pr*pc ranks,
// creating row and column fiber communicators via profiled splits.
func New2D(cc *critter.Comm, pr, pc int) *Grid2D {
	if cc.Size() != pr*pc {
		panic(fmt.Sprintf("grid: comm size %d != %dx%d", cc.Size(), pr, pc))
	}
	r := cc.Rank() / pc
	c := cc.Rank() % pc
	return &Grid2D{
		All:   cc,
		Row:   cc.Split(r, c),
		Col:   cc.Split(c, r),
		PR:    pr,
		PC:    pc,
		MyRow: r,
		MyCol: c,
	}
}

// RankOf returns the grid rank owning grid coordinates (row, col).
func (g *Grid2D) RankOf(row, col int) int { return row*g.PC + col }

// Grid3D is one rank's view of a c-by-c-by-c process grid. Ranks are laid
// out layer-major: rank = layer*c*c + layerRank. Each layer is a flat group
// of c*c ranks; Depth connects the same layer position across layers.
type Grid3D struct {
	All       *critter.Comm
	Layer     *critter.Comm // my layer: c*c ranks
	Depth     *critter.Comm // my depth fiber: c ranks
	C         int
	MyLayer   int // depth coordinate
	LayerRank int // position within the layer
}

// New3D builds a cubic grid from a communicator of exactly c*c*c ranks.
func New3D(cc *critter.Comm, c int) *Grid3D {
	if cc.Size() != c*c*c {
		panic(fmt.Sprintf("grid: comm size %d != %d^3", cc.Size(), c))
	}
	layer := cc.Rank() / (c * c)
	lr := cc.Rank() % (c * c)
	return &Grid3D{
		All:       cc,
		Layer:     cc.Split(layer, lr),
		Depth:     cc.Split(lr, layer),
		C:         c,
		MyLayer:   layer,
		LayerRank: lr,
	}
}

// Cyclic describes a 1D block-cyclic distribution of n items in blocks of
// size bs over p ranks.
type Cyclic struct {
	N  int // global items
	BS int // block size
	P  int // ranks
}

// NumBlocks returns the number of global blocks (the last may be partial).
func (d Cyclic) NumBlocks() int { return (d.N + d.BS - 1) / d.BS }

// Owner returns the rank owning global block b.
func (d Cyclic) Owner(b int) int { return b % d.P }

// BlockSize returns the size of global block b (the last may be short).
func (d Cyclic) BlockSize(b int) int {
	if s := d.N - b*d.BS; s < d.BS {
		return s
	}
	return d.BS
}

// LocalBlocks returns the number of blocks owned by rank r.
func (d Cyclic) LocalBlocks(r int) int {
	nb := d.NumBlocks()
	full := nb / d.P
	if r < nb%d.P {
		full++
	}
	return full
}

// LocalItems returns the number of items owned by rank r.
func (d Cyclic) LocalItems(r int) int {
	total := 0
	for lb := 0; lb < d.LocalBlocks(r); lb++ {
		total += d.BlockSize(d.GlobalBlock(r, lb))
	}
	return total
}

// GlobalBlock returns the global block index of rank r's lb-th local block.
func (d Cyclic) GlobalBlock(r, lb int) int { return lb*d.P + r }

// LocalBlock returns which local slot global block b occupies on its owner.
func (d Cyclic) LocalBlock(b int) int { return b / d.P }

// OwnerOfItem returns the rank owning global item i.
func (d Cyclic) OwnerOfItem(i int) int { return d.Owner(i / d.BS) }

// LocalIndexOfItem returns the local item offset of global item i on its
// owning rank.
func (d Cyclic) LocalIndexOfItem(i int) int {
	b := i / d.BS
	return d.LocalBlock(b)*d.BS + i%d.BS
}

// GlobalIndexOf returns the global item index of rank r's local item li
// (assuming full blocks; callers use it only within valid ranges).
func (d Cyclic) GlobalIndexOf(r, li int) int {
	lb := li / d.BS
	return d.GlobalBlock(r, lb)*d.BS + li%d.BS
}
