package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// at builds a deterministic record timestamp.
func at(i int) time.Time { return time.Unix(int64(1_700_000_000+i), 0).UTC() }

// rec builds a test record.
func rec(kind, key string, i int, body string) Record {
	return Record{Kind: kind, Key: key, At: at(i), Data: json.RawMessage(body)}
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestRoundTrip: records survive close + reopen, in first-append order,
// with latest-per-key replacement semantics.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i, r := range []Record{
		rec("job", "job-1", 0, `{"n":1}`),
		rec("profile", "candmc", 1, `{"p":1}`),
		rec("job", "job-2", 2, `{"n":2}`),
		rec("profile", "candmc", 3, `{"p":2}`), // replaces, keeps slot order
	} {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got := s2.Records()
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3: %+v", len(got), got)
	}
	wantOrder := []string{"job-1", "candmc", "job-2"}
	for i, w := range wantOrder {
		if got[i].Key != w {
			t.Errorf("record %d key %q, want %q", i, got[i].Key, w)
		}
	}
	p, ok := s2.Get("profile", "candmc")
	if !ok || string(p.Data) != `{"p":2}` || !p.At.Equal(at(3)) {
		t.Errorf("Get(profile, candmc) = %+v, %v; want the replacing record", p, ok)
	}
	if _, ok := s2.Get("job", "job-9"); ok {
		t.Error("Get of an absent key succeeded")
	}
}

// TestTombstone: Delete removes the entry, survives reopen, and shields
// against the snapshot resurrecting an older record.
func TestTombstone(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Append(rec("job", "job-1", 0, `{}`)); err != nil {
		t.Fatal(err)
	}
	// Force the record into the snapshot, then tombstone it in the wal.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job", "job-1", at(1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", s.Len())
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get("job", "job-1"); ok {
		t.Error("tombstoned record resurfaced after reopen")
	}
	if n := len(s2.Records()); n != 0 {
		t.Errorf("Records() has %d entries, want 0", n)
	}
}

// TestTornTailTruncated: a crash mid-append (partial frame) loses only the
// torn record; everything before it replays and the store accepts new
// appends.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Append(rec("job", fmt.Sprintf("job-%d", i), i, `{"ok":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate the crash: append half a frame's worth of garbage.
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	if n := s2.Len(); n != 3 {
		t.Fatalf("replayed %d records past a torn tail, want 3", n)
	}
	// The tail was physically truncated and the store keeps working.
	if err := s2.Append(rec("job", "job-3", 3, `{"ok":true}`)); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if n := s3.Len(); n != 4 {
		t.Fatalf("after recovery + append, replayed %d records, want 4", n)
	}
}

// TestCorruptCRCDropped: a bit flip in the last frame fails its CRC; the
// frame is dropped and the log truncated before it.
func TestCorruptCRCDropped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Append(rec("job", "job-1", 0, `{"keep":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("job", "job-2", 1, `{"corrupt":true}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff // flip a payload byte of the last record
	if err := os.WriteFile(wal, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get("job", "job-1"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := s2.Get("job", "job-2"); ok {
		t.Error("CRC-corrupt record replayed")
	}
}

// TestCompaction: crossing the size threshold moves state into the
// snapshot, truncates the log, preserves order, and the result reopens
// identically.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every append compacts almost immediately.
	s := mustOpen(t, dir, Options{CompactBytes: 256})
	var want []string
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("job-%d", i)
		want = append(want, key)
		if err := s.Append(rec("job", key, i, `{"payload":"xxxxxxxxxxxxxxxx"}`)); err != nil {
			t.Fatal(err)
		}
	}
	if size := s.LogSize(); size > 256+1024 {
		t.Errorf("log size %d never compacted", size)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got := s2.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Key != w {
			t.Errorf("record %d key %q, want %q (order not preserved across compaction)", i, got[i].Key, w)
		}
	}
}

// TestCompactStats: explicit compaction reports what it reclaimed, and the
// OnCompact callback observes automatic compactions triggered by commit.
func TestCompactStats(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CompactBytes: -1})
	for i := 0; i < 10; i++ {
		if err := s.Append(rec("profile", "candmc", i, fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	wal := s.LogSize()
	if wal == 0 {
		t.Fatal("wal empty before compaction; test premise broken")
	}
	stats, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsKept != 1 {
		t.Errorf("RecordsKept = %d, want 1", stats.RecordsKept)
	}
	if stats.RecordsDropped != 9 {
		t.Errorf("RecordsDropped = %d, want 9", stats.RecordsDropped)
	}
	if stats.BytesReclaimed != wal {
		t.Errorf("BytesReclaimed = %d, want wal size %d", stats.BytesReclaimed, wal)
	}
	if stats.SnapshotBytes <= 0 {
		t.Errorf("SnapshotBytes = %d, want > 0", stats.SnapshotBytes)
	}
	s.Close()

	// Automatic compaction (tiny threshold) fires the callback outside the
	// store lock; the callback may safely call read-only methods.
	var calls []CompactStats
	s2 := mustOpen(t, dir, Options{CompactBytes: 128})
	s2.SetOnCompact(func(cs CompactStats) {
		_ = s2.Len() // must not deadlock
		calls = append(calls, cs)
	})
	for i := 0; i < 10; i++ {
		if err := s2.Append(rec("profile", "candmc", i, `{"payload":"xxxxxxxxxxxxxxxx"}`)); err != nil {
			t.Fatal(err)
		}
	}
	s2.Close()
	if len(calls) == 0 {
		t.Fatal("OnCompact never invoked despite tiny threshold")
	}
	for i, cs := range calls {
		if cs.BytesReclaimed <= 0 {
			t.Errorf("call %d: BytesReclaimed = %d, want > 0", i, cs.BytesReclaimed)
		}
	}
}

// TestFutureSnapshotRejected: an unknown snapshot schema is a loud error,
// not silently dropped state.
func TestFutureSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	snap := []byte(`{"schemaVersion": 99, "records": []}`)
	if err := os.WriteFile(filepath.Join(dir, snapshotName), snap, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a future snapshot schema")
	}
}

// TestAppendValidation: empty kinds/keys and nil data are rejected at the
// door.
func TestAppendValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Append(Record{Kind: "", Key: "k", Data: json.RawMessage(`1`)}); err == nil {
		t.Error("empty kind accepted")
	}
	if err := s.Append(Record{Kind: "k", Key: "", Data: json.RawMessage(`1`)}); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Append(Record{Kind: "k", Key: "k"}); err == nil {
		t.Error("nil data accepted by Append (tombstones go through Delete)")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("k", "k", 0, `1`)); err == nil {
		t.Error("append after Close accepted")
	}
}

// TestReplaceDoesNotGrowWAL state: replacing a key many times keeps Len at
// 1 and compaction collapses the history.
func TestReplaceAndCompactCollapse(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CompactBytes: -1})
	for i := 0; i < 50; i++ {
		if err := s.Append(rec("profile", "candmc", i, fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if size := s.LogSize(); size != 0 {
		t.Errorf("log size %d after compaction, want 0", size)
	}
	got, ok := s.Get("profile", "candmc")
	if !ok || !bytes.Equal(got.Data, []byte(`{"v":49}`)) {
		t.Errorf("post-compaction Get = %+v, %v", got, ok)
	}
	s.Close()
}
