// Package store is an embedded, crash-safe, append-only record store:
// the durable substrate under the service layer's job history and
// per-workload profile accumulation. It is deliberately tiny and built on
// the standard library alone — length-prefixed JSON frames with a CRC,
// fsync on every commit, and snapshot-based compaction — rather than an
// external KV dependency.
//
// The data model is "latest record per (kind, key)": appending a record
// replaces the previous record with the same kind and key, and appending a
// tombstone (nil Data) deletes it. Replay order is first-append order,
// which survives compaction, so callers that append monotonically (e.g.
// finished jobs) get their history back in the order it was written.
//
// On disk a store directory holds two files:
//
//	snapshot.json — the compacted state, written atomically (temp file +
//	                fsync + rename + directory fsync)
//	wal.log       — records appended since the snapshot, each framed as
//	                [uint32 length][uint32 CRC-32C][JSON payload]
//
// Opening replays the snapshot and then the log. A torn tail — a partial
// frame or a frame whose CRC does not match, the signature of a crash
// mid-append — is truncated away, and everything before it is kept: a
// crash costs at most the record being written, never the store.
//
// The package reads no clocks and iterates no maps in order-sensitive
// ways: record timestamps are supplied by callers, so the store itself
// stays inside the repo's deterministic layer.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record is one durable entry: the latest record per (Kind, Key) is the
// live state. At is caller-supplied (the store never reads a clock). A nil
// Data marks a tombstone: appending it deletes the (Kind, Key) entry.
type Record struct {
	Kind string          `json:"kind"`
	Key  string          `json:"key"`
	At   time.Time       `json:"at"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Options configures Open.
type Options struct {
	// CompactBytes triggers automatic compaction when the log grows past
	// it. 0 means 4 MiB; negative disables automatic compaction (explicit
	// Compact still works).
	CompactBytes int64
	// OnCompact, when set, receives the stats of every compaction —
	// explicit or automatic — after the store's lock is released, so
	// callers can log and count them. The callback must not call back
	// into the store's mutating methods from the same goroutine chain
	// that triggered it (read-only calls like LogSize are fine).
	OnCompact func(CompactStats)
}

// CompactStats describes one compaction: what it dropped and reclaimed.
type CompactStats struct {
	// RecordsKept is the live-record count written into the snapshot;
	// RecordsDropped counts the record versions the compaction discarded —
	// superseded replacements and tombstoned entries, whether they sat in
	// the log or in the previous snapshot.
	RecordsKept    int `json:"recordsKept"`
	RecordsDropped int `json:"recordsDropped"`
	// BytesReclaimed is the write-ahead log size truncated away;
	// SnapshotBytes the size of the freshly written snapshot.
	BytesReclaimed int64 `json:"bytesReclaimed"`
	SnapshotBytes  int64 `json:"snapshotBytes"`
}

const (
	snapshotName = "snapshot.json"
	walName      = "wal.log"

	// frameHeaderLen is the per-record framing overhead: a uint32 payload
	// length followed by a uint32 CRC-32C of the payload.
	frameHeaderLen = 8

	// maxRecordBytes bounds one record's payload. A corrupt length field
	// must not provoke a multi-gigabyte allocation; real records (a job
	// status + envelope, an encoded profile) are far below this.
	maxRecordBytes = 64 << 20

	defaultCompactBytes = 4 << 20

	snapshotSchemaVersion = 1
)

// castagnoli is the CRC-32C table (the polynomial used by modern storage
// systems; hardware-accelerated by hash/crc32).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapshotFile is the JSON layout of snapshot.json.
type snapshotFile struct {
	SchemaVersion int      `json:"schemaVersion"`
	Records       []Record `json:"records"`
}

// Store is an open store directory. All methods are safe for concurrent
// use.
type Store struct {
	dir          string
	compactBytes int64
	onCompact    func(CompactStats)

	mu      sync.Mutex
	wal     *os.File
	walSize int64
	// walRecs counts record versions appended to the log since the last
	// compaction; snapRecs the versions held by the current snapshot. Their
	// sum minus the live count is what a compaction discards.
	walRecs  int
	snapRecs int
	closed   bool
	// recs is the live state in first-append order; deleted entries are
	// compacted out lazily. idx maps kind+"\x00"+key to a position in recs
	// (-1 once deleted).
	recs []Record
	idx  map[string]int
}

// Open opens (creating if needed) the store at dir, replaying the snapshot
// and the write-ahead log. A torn log tail is truncated; any other
// corruption is an error rather than silent data loss.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:          dir,
		compactBytes: opt.CompactBytes,
		onCompact:    opt.OnCompact,
		idx:          make(map[string]int),
	}
	if s.compactBytes == 0 {
		s.compactBytes = defaultCompactBytes
	}

	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadSnapshot reads snapshot.json when present.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	if snap.SchemaVersion != snapshotSchemaVersion {
		return fmt.Errorf("store: snapshot schemaVersion %d, this build reads %d", snap.SchemaVersion, snapshotSchemaVersion)
	}
	for _, rec := range snap.Records {
		s.apply(rec)
	}
	s.snapRecs = len(snap.Records)
	return nil
}

// replayWAL opens the log, applies every intact frame, and truncates a
// torn tail (partial frame, CRC mismatch, or undecodable payload — all
// signatures of a crash mid-write).
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("store: open wal: %w", err)
	}
	good := int64(0)
	header := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			break // clean EOF or partial header: truncate at good
		}
		length := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordBytes {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		s.apply(rec)
		s.walRecs++
		good += frameHeaderLen + int64(length)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("store: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: seek wal: %w", err)
	}
	s.wal = f
	s.walSize = good
	return nil
}

// apply folds one record into the in-memory state.
func (s *Store) apply(rec Record) {
	k := rec.Kind + "\x00" + rec.Key
	if rec.Data == nil { // tombstone
		if i, ok := s.idx[k]; ok {
			s.recs[i] = Record{} // dead slot, dropped at compaction
			delete(s.idx, k)
		}
		return
	}
	if i, ok := s.idx[k]; ok {
		s.recs[i] = rec // replace in place: first-append order is stable
		return
	}
	s.idx[k] = len(s.recs)
	s.recs = append(s.recs, rec)
}

// Append durably commits rec: the frame is written and fsynced before
// Append returns. Appending over an existing (Kind, Key) replaces it.
func (s *Store) Append(rec Record) error {
	if rec.Kind == "" || rec.Key == "" {
		return fmt.Errorf("store: append: empty kind or key")
	}
	if rec.Data == nil {
		return fmt.Errorf("store: append: nil data (use Delete for tombstones)")
	}
	return s.commit(rec)
}

// Delete durably appends a tombstone for (kind, key). Deleting an absent
// entry is a no-op that still commits (the tombstone shields against an
// older record resurfacing from the snapshot).
func (s *Store) Delete(kind, key string, at time.Time) error {
	if kind == "" || key == "" {
		return fmt.Errorf("store: delete: empty kind or key")
	}
	return s.commit(Record{Kind: kind, Key: key, At: at})
}

// commit frames, writes, fsyncs, and applies one record.
func (s *Store) commit(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: record %s/%s is %d bytes, exceeding the %d-byte limit", rec.Kind, rec.Key, len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: append wal: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: fsync wal: %w", err)
	}
	s.walSize += int64(len(frame))
	s.apply(rec)
	s.walRecs++
	var stats CompactStats
	compacted := false
	if s.compactBytes > 0 && s.walSize > s.compactBytes {
		st, err := s.compactLocked()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		stats, compacted = st, true
	}
	cb := s.onCompact
	s.mu.Unlock()
	if compacted && cb != nil {
		cb(stats)
	}
	return nil
}

// Get returns the live record for (kind, key).
func (s *Store) Get(kind, key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[kind+"\x00"+key]
	if !ok {
		return Record{}, false
	}
	return s.recs[i], true
}

// Records returns every live record in first-append order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.idx))
	for _, rec := range s.recs {
		if rec.Kind != "" {
			out = append(out, rec)
		}
	}
	return out
}

// Len reports how many live records the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// LogSize reports the write-ahead log's current size in bytes (what
// compaction will reclaim).
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetOnCompact installs (or replaces) the compaction-stats callback after
// Open; see Options.OnCompact for the callback contract.
func (s *Store) SetOnCompact(fn func(CompactStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCompact = fn
}

// Compact writes the live state into a fresh snapshot (atomically: temp
// file, fsync, rename, directory fsync) and truncates the log, returning
// what the compaction dropped and reclaimed. A crash at any point leaves
// either the old snapshot + full log or the new snapshot + empty log —
// never a half state.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CompactStats{}, fmt.Errorf("store: closed")
	}
	stats, err := s.compactLocked()
	cb := s.onCompact
	s.mu.Unlock()
	if err == nil && cb != nil {
		cb(stats)
	}
	return stats, err
}

func (s *Store) compactLocked() (CompactStats, error) {
	// Drop dead slots while building the snapshot, and rebuild the
	// in-memory state to match, so long-lived stores do not accumulate
	// holes.
	live := make([]Record, 0, len(s.idx))
	for _, rec := range s.recs {
		if rec.Kind != "" {
			live = append(live, rec)
		}
	}
	stats := CompactStats{
		RecordsKept:    len(live),
		RecordsDropped: s.snapRecs + s.walRecs - len(live),
		BytesReclaimed: s.walSize,
	}
	snap := snapshotFile{SchemaVersion: snapshotSchemaVersion, Records: live}
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return CompactStats{}, fmt.Errorf("store: encode snapshot: %w", err)
	}
	stats.SnapshotBytes = int64(len(data))

	tmp, err := os.CreateTemp(s.dir, snapshotName+".tmp-*")
	if err != nil {
		return CompactStats{}, fmt.Errorf("store: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return CompactStats{}, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return CompactStats{}, fmt.Errorf("store: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return CompactStats{}, fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotName)); err != nil {
		cleanup()
		return CompactStats{}, fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return CompactStats{}, err
	}

	// The log's records are now in the snapshot; truncate it.
	if err := s.wal.Truncate(0); err != nil {
		return CompactStats{}, fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return CompactStats{}, fmt.Errorf("store: seek wal: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return CompactStats{}, fmt.Errorf("store: fsync wal: %w", err)
	}
	s.walSize = 0
	s.walRecs = 0
	s.snapRecs = len(live)

	s.recs = live
	s.idx = make(map[string]int, len(live))
	for i, rec := range live {
		s.idx[rec.Kind+"\x00"+rec.Key] = i
	}
	return stats, nil
}

// Close releases the store. Appended records are already durable; Close
// does not compact.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}
