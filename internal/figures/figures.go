// Package figures regenerates the data series of every figure in the
// paper's evaluation (Figures 3, 4, and 5): BSP cost trade-offs and
// execution-time breakdowns per configuration (Figure 3), and tuning time,
// kernel time, and prediction error versus confidence tolerance for each
// selective-execution policy (Figures 4 and 5). Series are printed as plain
// text tables, one row per x-axis point, matching the rows/series the paper
// plots.
package figures

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/sim"
	"critter/internal/workload"
)

// StudiesFor resolves workload names through the workload registry (nil reg
// means the process-global default) and builds each study at the named
// scale preset, resolved against each workload's own declared presets.
// This is the only path from a name to a runnable study in the figures
// layer: figure generation sees exactly what the registry serves.
func StudiesFor(reg *workload.Registry, names []string, scaleName string) ([]autotune.Study, error) {
	studies := make([]autotune.Study, len(names))
	for i, name := range names {
		st, err := workload.ResolveStudy(reg, name, scaleName)
		if err != nil {
			return nil, err
		}
		studies[i] = st
	}
	return studies, nil
}

// Fig3 holds one study's full-execution reports: the per-configuration BSP
// costs and time breakdowns of Figure 3's panels.
type Fig3 struct {
	Study   autotune.Study
	Reports []critter.Report
}

// RunFig3 executes every configuration once with full kernel execution.
func RunFig3(study autotune.Study, machine sim.Machine, seed uint64) (*Fig3, error) {
	reports, err := autotune.FullOnly(study, machine, seed)
	if err != nil {
		return nil, err
	}
	return &Fig3{Study: study, Reports: reports}, nil
}

// RunFig3All executes every study's full-execution pass in study order,
// each parallelized across its configurations on a bounded pool (workers;
// 0 = GOMAXPROCS) — the single pool bound covers the whole run, with no
// nested pools. Cancelling ctx skips the remaining configurations and
// studies. progress, when non-nil, is called after each study completes.
func RunFig3All(ctx context.Context, studies []autotune.Study, machine sim.Machine, seed uint64, workers int, progress func(study string, done, total int)) ([]*Fig3, error) {
	out := make([]*Fig3, len(studies))
	errs := make([]error, len(studies))
	for i, st := range studies {
		reports, err := autotune.FullOnlyCtx(ctx, st, machine, seed, workers)
		if err != nil {
			errs[i] = err
		} else {
			out[i] = &Fig3{Study: st, Reports: reports}
		}
		if progress != nil {
			progress(st.Name, i+1, len(studies))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// Print emits the three panel groups for this study: BSP communication vs
// synchronization (panels a-d), BSP computation vs synchronization (e-h),
// and the execution/computation/communication time breakdown (i-l).
func (f *Fig3) Print(w io.Writer) {
	fmt.Fprintf(w, "# Figure 3: %s (%d configurations)\n", f.Study.Name, f.Study.Size())
	fmt.Fprintf(w, "# BSP cost trade-offs; crit = critical path, vol = volumetric average\n")
	fmt.Fprintf(w, "%-4s %-22s %14s %14s %12s %12s %14s %14s\n",
		"cfg", "params", "comm-crit", "comm-vol", "sync-crit", "sync-vol", "comp-crit", "comp-vol")
	for v, r := range f.Reports {
		fmt.Fprintf(w, "%-4d %-22s %14.4g %14.4g %12.4g %12.4g %14.4g %14.4g\n",
			v, f.Study.Label(v),
			r.BSPCommCrit, r.BSPCommVol, r.BSPSyncCrit, r.BSPSyncVol, r.BSPCompCrit, r.BSPCompVol)
	}
	fmt.Fprintf(w, "# execution time breakdown (seconds, virtual)\n")
	fmt.Fprintf(w, "%-4s %-22s %12s %12s %12s\n", "cfg", "params", "execution", "computation", "communication")
	for v, r := range f.Reports {
		fmt.Fprintf(w, "%-4d %-22s %12.5g %12.5g %12.5g\n",
			v, f.Study.Label(v), r.Wall, r.PredictedComp, r.PredictedComm)
	}
}

// Tuning holds the sweeps behind Figures 4 and 5 for one study.
type Tuning struct {
	Study autotune.Study
	Res   *autotune.Result
}

// RunTuning sweeps the study over the given tolerances for every policy the
// paper evaluates on it, through the concurrent executor at its default
// worker count and the exhaustive strategy.
func RunTuning(study autotune.Study, machine sim.Machine, seed uint64, epsList []float64) (*Tuning, error) {
	tns, err := RunTuningSuite(context.Background(), []autotune.Study{study}, machine, seed, epsList, autotune.Exhaustive{}, 0, nil)
	if err != nil {
		return nil, err
	}
	return tns[0], nil
}

// RunTuningSuite sweeps several studies concurrently through one shared
// pool of Tuners: every (study, policy, eps) cell shares a single pool of
// workers (0 = GOMAXPROCS) and, when progress is non-nil, one suite-wide
// progress stream. strategy selects which configurations each sweep
// evaluates (nil = exhaustive, the paper's protocol); cancelling ctx stops
// the remaining sweeps promptly. The returned slice is aligned with
// studies; any study failure aborts the whole suite with the joined
// per-study errors.
func RunTuningSuite(ctx context.Context, studies []autotune.Study, machine sim.Machine, seed uint64, epsList []float64, strategy autotune.Strategy, workers int, progress func(autotune.Progress)) ([]*Tuning, error) {
	tuners := make([]autotune.Tuner, len(studies))
	for i, st := range studies {
		tuners[i] = autotune.Tuner{
			Study:    st,
			EpsList:  epsList,
			Machine:  machine,
			Seed:     seed,
			Strategy: strategy,
		}
	}
	results, errs := autotune.RunTuners(ctx, tuners, workers, progress)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	tns := make([]*Tuning, len(studies))
	for i, res := range results {
		tns[i] = &Tuning{Study: studies[i], Res: res}
	}
	return tns, nil
}

func (t *Tuning) header(w io.Writer, what string) {
	fmt.Fprintf(w, "# %s: %s\n", what, t.Study.Name)
	fmt.Fprintf(w, "%-10s", "log2(eps)")
	for _, pol := range t.Res.Policies {
		fmt.Fprintf(w, " %14s", pol)
	}
	fmt.Fprintf(w, " %14s\n", "full-exec")
}

// PrintSearchTime emits exhaustive-search execution time versus tolerance
// per policy (Figures 4a, 4b, 5a, 5b). The final column is the
// full-execution baseline (the red line).
func (t *Tuning) PrintSearchTime(w io.Writer) {
	t.header(w, "exhaustive search exec-time (s)")
	for ei, eps := range t.Res.EpsList {
		fmt.Fprintf(w, "%-10.0f", math.Log2(eps))
		var full float64
		for pi := range t.Res.Policies {
			sw := t.Res.Sweeps[pi][ei]
			fmt.Fprintf(w, " %14.5g", sw.TuneWall)
			full = sw.FullWall
		}
		fmt.Fprintf(w, " %14.5g\n", full)
	}
}

// PrintKernelTime emits the executed-kernel time (max over ranks, summed
// over configurations) versus tolerance (Figures 4c, 5c).
func (t *Tuning) PrintKernelTime(w io.Writer) {
	t.header(w, "exhaustive search kernel exec-time (s)")
	for ei, eps := range t.Res.EpsList {
		fmt.Fprintf(w, "%-10.0f", math.Log2(eps))
		var fullKernel float64
		for pi := range t.Res.Policies {
			sw := t.Res.Sweeps[pi][ei]
			fmt.Fprintf(w, " %14.5g", sw.KernelTime)
			if sum := sumFullKernel(sw); sum > fullKernel {
				fullKernel = sum
			}
		}
		fmt.Fprintf(w, " %14.5g\n", fullKernel)
	}
}

func sumFullKernel(sw autotune.SweepResult) float64 {
	s := 0.0
	for _, cr := range sw.Configs {
		s += cr.Full.KernelTime
	}
	return s
}

// PrintExecErr emits the mean log execution-time prediction error versus
// tolerance (Figures 4e, 4f, 5e, 5f). The ideal scaling is the diagonal
// log2(err) = log2(eps).
func (t *Tuning) PrintExecErr(w io.Writer) {
	t.header(w, "mean log2 exec-time prediction error")
	for ei, eps := range t.Res.EpsList {
		fmt.Fprintf(w, "%-10.0f", math.Log2(eps))
		for pi := range t.Res.Policies {
			fmt.Fprintf(w, " %14.3f", t.Res.Sweeps[pi][ei].MeanLogExecErr)
		}
		fmt.Fprintf(w, " %14s\n", "-")
	}
}

// PrintCompErr emits the mean log computation-time prediction error versus
// tolerance (Figures 4d, 5d).
func (t *Tuning) PrintCompErr(w io.Writer) {
	t.header(w, "mean log2 comp-time prediction error")
	for ei, eps := range t.Res.EpsList {
		fmt.Fprintf(w, "%-10.0f", math.Log2(eps))
		for pi := range t.Res.Policies {
			fmt.Fprintf(w, " %14.3f", t.Res.Sweeps[pi][ei].MeanLogCompErr)
		}
		fmt.Fprintf(w, " %14s\n", "-")
	}
}

// PrintPerConfigErr emits per-configuration prediction error (%) at the
// selected tolerance indices for one policy (Figures 4g, 4h, 5g, 5h, which
// evaluate online frequency propagation).
func (t *Tuning) PrintPerConfigErr(w io.Writer, pol critter.Policy, epsIdx []int, comp bool) {
	pi := t.policyIndex(pol)
	if pi < 0 {
		fmt.Fprintf(w, "# policy %s not part of this study\n", pol)
		return
	}
	kind := "exec-time"
	if comp {
		kind = "comp-time kernel"
	}
	fmt.Fprintf(w, "# per-config %s prediction error (%%), policy %s: %s\n", kind, pol, t.Study.Name)
	fmt.Fprintf(w, "%-4s %-22s", "cfg", "params")
	for _, ei := range epsIdx {
		fmt.Fprintf(w, " eps=2^%-7.0f", math.Log2(t.Res.EpsList[ei]))
	}
	fmt.Fprintln(w)
	// Index by configuration: under a subset strategy a sweep's Configs
	// cover only the evaluated part of the space (the last evaluation
	// wins when a rung strategy revisits a configuration).
	byConfig := make([]map[int]autotune.ConfigResult, len(epsIdx))
	for i, ei := range epsIdx {
		byConfig[i] = make(map[int]autotune.ConfigResult)
		for _, cr := range t.Res.Sweeps[pi][ei].Configs {
			byConfig[i][cr.Config] = cr
		}
	}
	for v := 0; v < t.Study.Size(); v++ {
		fmt.Fprintf(w, "%-4d %-22s", v, t.Study.Label(v))
		for i := range epsIdx {
			cr, ok := byConfig[i][v]
			if !ok {
				fmt.Fprintf(w, " %11s", "-")
				continue
			}
			e := cr.ExecErr
			if comp {
				e = cr.CompErr
			}
			fmt.Fprintf(w, " %11.3f", 100*e)
		}
		fmt.Fprintln(w)
	}
}

// PrintSelection emits the configuration-selection quality claim of Section
// VI-C: per policy and tolerance, the selected configuration and its full
// execution time relative to the optimum.
func (t *Tuning) PrintSelection(w io.Writer) {
	fmt.Fprintf(w, "# configuration selection quality: %s\n", t.Study.Name)
	fmt.Fprintf(w, "%-12s %-10s %-8s %-8s %10s\n", "policy", "log2(eps)", "selected", "optimal", "rel-perf")
	for pi, pol := range t.Res.Policies {
		for ei, eps := range t.Res.EpsList {
			sw := t.Res.Sweeps[pi][ei]
			sel, opt := 0.0, 0.0
			for _, cr := range sw.Configs {
				if cr.Config == sw.Selected {
					sel = cr.Full.Wall
				}
				if cr.Config == sw.Optimal {
					opt = cr.Full.Wall
				}
			}
			rel := opt / sel
			fmt.Fprintf(w, "%-12s %-10.0f %-8d %-8d %9.1f%%\n",
				pol, math.Log2(eps), sw.Selected, sw.Optimal, 100*rel)
		}
	}
}

func (t *Tuning) policyIndex(pol critter.Policy) int {
	for i, p := range t.Res.Policies {
		if p == pol {
			return i
		}
	}
	return -1
}

// PrintAll emits every panel this study contributes to its figure.
func (t *Tuning) PrintAll(w io.Writer) {
	t.PrintSearchTime(w)
	t.PrintKernelTime(w)
	t.PrintExecErr(w)
	t.PrintCompErr(w)
	n := len(t.Res.EpsList)
	idx := []int{}
	for i := 2; i <= 5 && i < n; i++ {
		idx = append(idx, i)
	}
	if len(idx) > 0 {
		t.PrintPerConfigErr(w, critter.Online, idx, false)
		t.PrintPerConfigErr(w, critter.Online, idx, true)
	}
	t.PrintSelection(w)
}
