package figures

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/sim"
)

func machine() sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseSigma = 0.05
	return m
}

func TestFig3PrintsAllConfigs(t *testing.T) {
	st := autotune.CapitalCholesky(autotune.QuickScale())
	f3, err := RunFig3(st, machine(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f3.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "BSP cost trade-offs") {
		t.Error("missing BSP header")
	}
	if !strings.Contains(out, "execution time breakdown") {
		t.Error("missing time-breakdown header")
	}
	// One row per configuration in each of the two tables.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "0 ") || strings.HasPrefix(line, "14 ") {
			rows++
		}
	}
	if rows != 4 { // configs 0 and 14, twice each
		t.Errorf("expected boundary configs in both tables, found %d rows", rows)
	}
}

func TestRunFig3AllOrderAndProgress(t *testing.T) {
	sts := []autotune.Study{
		autotune.CapitalCholesky(autotune.QuickScale()),
		autotune.SlateCholesky(autotune.QuickScale()),
	}
	var events []string
	f3s, err := RunFig3All(context.Background(), sts, machine(), 1, 2, func(name string, done, total int) {
		events = append(events, name)
		if total != 2 {
			t.Errorf("progress total %d, want 2", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f3s) != 2 || f3s[0].Study.Name != sts[0].Name || f3s[1].Study.Name != sts[1].Name {
		t.Fatalf("results out of order: %v", f3s)
	}
	if len(events) != 2 {
		t.Errorf("got %d progress events, want 2", len(events))
	}
	// The concurrent pass must match a direct run.
	single, err := RunFig3(sts[0], machine(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Reports) != len(f3s[0].Reports) || single.Reports[0] != f3s[0].Reports[0] {
		t.Error("concurrent fig-3 pass differs from direct RunFig3")
	}
}

func TestTuningPrints(t *testing.T) {
	st := autotune.SlateCholesky(autotune.QuickScale())
	tn, err := RunTuning(st, machine(), 2, []float64{0.5, 0.25, 0.125, 0.0625})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tn.PrintAll(&buf)
	out := buf.String()
	for _, want := range []string{
		"exhaustive search exec-time",
		"kernel exec-time",
		"mean log2 exec-time prediction error",
		"mean log2 comp-time prediction error",
		"per-config exec-time prediction error",
		"configuration selection quality",
		"conditional", "local", "online", "apriori",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPerConfigErrUnknownPolicy(t *testing.T) {
	st := autotune.SlateCholesky(autotune.QuickScale())
	tn, err := RunTuning(st, machine(), 2, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tn.PrintPerConfigErr(&buf, critter.Eager, []int{0}, false)
	if !strings.Contains(buf.String(), "not part of this study") {
		t.Error("expected graceful handling of a policy the study does not evaluate")
	}
}

func TestTuningShapesMatchPaper(t *testing.T) {
	// The qualitative shape targets from DESIGN.md, on the quick scale:
	// tuning time decreases as eps loosens, and is never more than the
	// full-execution baseline (within noise).
	st := autotune.CapitalCholesky(autotune.QuickScale())
	tn, err := RunTuning(st, machine(), 3, []float64{1, 0.125})
	if err != nil {
		t.Fatal(err)
	}
	for pi, pol := range tn.Res.Policies {
		loose := tn.Res.Sweeps[pi][0]
		tight := tn.Res.Sweeps[pi][1]
		if pol == critter.APriori {
			continue // pays an extra full pass by design
		}
		if loose.TuneWall > loose.FullWall*1.1 {
			t.Errorf("%s: tuning at eps=1 (%g) above full execution (%g)",
				pol, loose.TuneWall, loose.FullWall)
		}
		if tight.TuneWall < loose.TuneWall*0.5 {
			t.Errorf("%s: tighter tolerance much cheaper than loose: %g vs %g",
				pol, tight.TuneWall, loose.TuneWall)
		}
	}
	// Eager must be the cheapest policy at loose tolerance (Fig 4a).
	var eagerWall, condWall float64
	for pi, pol := range tn.Res.Policies {
		switch pol {
		case critter.Eager:
			eagerWall = tn.Res.Sweeps[pi][1].TuneWall
		case critter.Conditional:
			condWall = tn.Res.Sweeps[pi][1].TuneWall
		}
	}
	if eagerWall >= condWall {
		t.Errorf("eager (%g) should beat conditional (%g) on CAPITAL", eagerWall, condWall)
	}
}
