package channel

import (
	"testing"
	"testing/quick"
)

func TestFromGroupSingle(t *testing.T) {
	ch, ok := FromGroup([]int{5})
	if !ok || ch.Offset != 5 || len(ch.Dims) != 0 {
		t.Fatalf("single-rank channel: %v ok=%v", ch, ok)
	}
	if ch.Ranks() != 1 {
		t.Errorf("Ranks = %d, want 1", ch.Ranks())
	}
}

func TestFromGroupRow(t *testing.T) {
	ch, ok := FromGroup([]int{8, 9, 10, 11})
	if !ok {
		t.Fatal("row group should have a channel")
	}
	if ch.Offset != 8 || ch.Dims[0] != (Dim{Stride: 1, Size: 4}) {
		t.Errorf("row channel: %v", ch)
	}
}

func TestFromGroupColumnUnsorted(t *testing.T) {
	ch, ok := FromGroup([]int{14, 2, 6, 10})
	if !ok {
		t.Fatal("column group should have a channel")
	}
	if ch.Offset != 2 || ch.Dims[0] != (Dim{Stride: 4, Size: 4}) {
		t.Errorf("column channel: %v", ch)
	}
}

func TestFromGroupNonUniform(t *testing.T) {
	if _, ok := FromGroup([]int{0, 1, 3}); ok {
		t.Error("non-arithmetic group should have no channel")
	}
	if _, ok := FromGroup(nil); ok {
		t.Error("empty group should have no channel")
	}
	if _, ok := FromGroup([]int{0, 0, 1}); ok {
		t.Error("duplicate ranks should have no channel")
	}
}

func TestP2P(t *testing.T) {
	ch := P2P(9, 3)
	if ch.Offset != 3 || ch.Dims[0] != (Dim{Stride: 6, Size: 2}) {
		t.Errorf("p2p channel: %v", ch)
	}
	if P2P(3, 9).Hash() != ch.Hash() {
		t.Error("p2p hash should be symmetric in endpoints")
	}
}

func TestHashIgnoresOffset(t *testing.T) {
	a, _ := FromGroup([]int{0, 1, 2, 3})
	b, _ := FromGroup([]int{4, 5, 6, 7})
	if a.Hash() != b.Hash() {
		t.Error("symmetric fibers should share a hash")
	}
	c, _ := FromGroup([]int{0, 4, 8, 12})
	if a.Hash() == c.Hash() {
		t.Error("row and column channels must differ")
	}
	d, _ := FromGroup([]int{0, 1})
	if a.Hash() == d.Hash() {
		t.Error("different sizes must differ")
	}
}

func TestCombineRowThenColumn(t *testing.T) {
	// 4x4 grid: row fiber stride 1 size 4; column fiber stride 4 size 4.
	row, _ := FromGroup([]int{0, 1, 2, 3})
	col, _ := FromGroup([]int{0, 4, 8, 12})
	agg, ok := Combine(row, col)
	if !ok {
		t.Fatal("row+column should combine")
	}
	if !agg.CoversWorld(16) {
		t.Errorf("row+column should cover 4x4 world: %v", agg)
	}
	if agg.CoversWorld(32) {
		t.Error("aggregate of 16 should not cover 32")
	}
}

func TestCombineThreeD(t *testing.T) {
	// 4x4x4 grid on 64 ranks.
	x, _ := FromGroup([]int{0, 1, 2, 3})
	y, _ := FromGroup([]int{0, 4, 8, 12})
	z, _ := FromGroup([]int{0, 16, 32, 48})
	agg, ok := Combine(x, y)
	if !ok {
		t.Fatal("x+y combine failed")
	}
	if agg.CoversWorld(64) {
		t.Error("x+y alone must not cover 64")
	}
	agg, ok = Combine(agg, z)
	if !ok {
		t.Fatal("xy+z combine failed")
	}
	if !agg.CoversWorld(64) {
		t.Errorf("x+y+z should cover 4^3 world: %v", agg)
	}
}

func TestCombineRejectsInterleaved(t *testing.T) {
	a, _ := FromGroup([]int{0, 1, 2, 3})
	b, _ := FromGroup([]int{0, 2, 4, 6}) // stride 2 interleaves with span 4
	if _, ok := Combine(a, b); ok {
		t.Error("interleaved channels must not combine")
	}
}

func TestCombineIdempotent(t *testing.T) {
	a, _ := FromGroup([]int{0, 1, 2, 3})
	agg, ok := Combine(a, a)
	if !ok {
		t.Fatal("combining a channel with itself should be a no-op")
	}
	if len(agg.Dims) != 1 {
		t.Errorf("self-combine duplicated dims: %v", agg)
	}
}

func TestCombineWithSingleton(t *testing.T) {
	a, _ := FromGroup([]int{0, 1, 2, 3})
	single, _ := FromGroup([]int{7})
	agg, ok := Combine(a, single)
	if !ok || len(agg.Dims) != 1 {
		t.Errorf("singleton should combine trivially: %v ok=%v", agg, ok)
	}
}

func TestCoversWorldDirect(t *testing.T) {
	world, _ := FromGroup([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if !world.CoversWorld(8) {
		t.Error("world channel should cover the world")
	}
	// Offset is ignored (offset-free hashing): a shifted fiber with a
	// complete basis still counts as covering.
	offsetRow, _ := FromGroup([]int{1, 2, 3, 4})
	if !offsetRow.CoversWorld(4) {
		t.Error("offset-free coverage should accept a shifted complete basis")
	}
	sparse, _ := FromGroup([]int{0, 4, 8, 12})
	if sparse.CoversWorld(4) {
		t.Error("stride-4 channel must not cover a 4-rank world")
	}
	var empty Channel
	if !empty.CoversWorld(1) {
		t.Error("empty channel covers a 1-rank world")
	}
	if empty.CoversWorld(2) {
		t.Error("empty channel cannot cover a 2-rank world")
	}
}

func TestContains(t *testing.T) {
	row, _ := FromGroup([]int{0, 1, 2, 3})
	col, _ := FromGroup([]int{0, 4, 8, 12})
	agg, _ := Combine(row, col)
	if !agg.Contains(row) || !agg.Contains(col) {
		t.Error("aggregate should contain its constituents")
	}
	z, _ := FromGroup([]int{0, 16, 32, 48})
	if agg.Contains(z) {
		t.Error("aggregate should not contain an un-merged channel")
	}
}

func TestGridDecompositionProperty(t *testing.T) {
	// For any 2D grid pr x pc, row fiber + column fiber covers the world.
	f := func(prRaw, pcRaw uint8) bool {
		pr := 1 + int(prRaw)%6
		pc := 1 + int(pcRaw)%6
		p := pr * pc
		// Row fiber of rank 0: {0..pc-1}; column fiber: {0, pc, 2pc, ...}.
		rowG := make([]int, pc)
		for i := range rowG {
			rowG[i] = i
		}
		colG := make([]int, pr)
		for i := range colG {
			colG[i] = i * pc
		}
		row, okR := FromGroup(rowG)
		col, okC := FromGroup(colG)
		if !okR || !okC {
			return false
		}
		agg, ok := Combine(row, col)
		if !ok {
			return false
		}
		return agg.CoversWorld(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	row, _ := FromGroup([]int{4, 5, 6, 7})
	if got := row.String(); got != "@4[s1x4]" {
		t.Errorf("String = %q", got)
	}
}
